// Counting-gap example: the paper's §VI future-work construct, .{n,},
// implemented with filter position registers. Rules like "header must be
// followed by a payload marker at least N bytes later" are common in
// exploit signatures (shellcode after a fixed-size header, padding before
// a return address). Expanded into automaton states, an unanchored .{n,}
// costs up to 2^n subset states; as a filter register it costs 8 bytes
// per flow.
//
//	go run ./examples/counting
package main

import (
	"fmt"
	"log"

	"matchfilter"
)

func main() {
	log.SetFlags(0)

	// MSG1 must be followed by MSG2 with at least 16 bytes in between —
	// say, a mandatory fixed-size header section.
	const rule = `MSG1.{16,}MSG2`

	withRegisters := matchfilter.MustCompile([]string{rule}, matchfilter.WithCountingGaps())
	// For comparison: the same rule expanded into automaton states.
	expanded := matchfilter.MustCompile([]string{rule})

	fmt.Printf("rule: %s\n", rule)
	fmt.Printf("  expanded automaton:  %5d states\n", expanded.Stats().DFAStates)
	fmt.Printf("  with gap registers:  %5d states (+1 register, 8 B per flow)\n\n",
		withRegisters.Stats().DFAStates)

	inputs := []string{
		"MSG1" + pad(16) + "MSG2",                   // gap exactly 16: match
		"MSG1" + pad(15) + "MSG2",                   // one byte short: no match
		"MSG1" + pad(100) + "MSG2",                  // long gap: match
		"MSG2" + pad(20) + "MSG1",                   // wrong order: no match
		"MSG1MSG2",                                  // adjacent: no match
		"MSG1" + pad(3) + "MSG1" + pad(16) + "MSG2", // earliest MSG1 is the witness
	}
	for _, input := range inputs {
		a := withRegisters.Scan([]byte(input))
		b := expanded.Scan([]byte(input))
		verdict := "no match"
		if len(a) > 0 {
			verdict = fmt.Sprintf("match at %d", a[0].End)
		}
		agreement := "=="
		if len(a) != len(b) {
			agreement = "!= DISAGREEMENT"
		}
		fmt.Printf("  %-34s %-12s (%s expanded engine)\n", preview(input), verdict, agreement)
	}
}

func pad(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '.'
	}
	return string(out)
}

func preview(s string) string {
	if len(s) > 32 {
		return s[:14] + "..." + s[len(s)-14:]
	}
	return s
}
