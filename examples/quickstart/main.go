// Quickstart: compile a small pattern set and scan both a buffer and a
// stream, printing every confirmed match.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"matchfilter"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// Three patterns exercising the engine's key constructs: a dot-star
	// gap, an anchored line-bounded gap (almost-dot-star), and a plain
	// keyword. The dot-star and almost-dot-star patterns are the ones a
	// plain DFA pays exponential state for; the engine decomposes them
	// and reconstructs matches with a per-flow bit memory instead.
	engine, err := matchfilter.Compile([]string{
		`union.*select`,        // SQL injection shape
		`^GET[^\n]*\.\./\.\./`, // anchored path traversal in a request line
		`xmrig`,                // plain IOC keyword
	})
	if err != nil {
		log.Fatal(err)
	}

	stats := engine.Stats()
	fmt.Printf("compiled %d patterns into %d fragments, %d DFA states, %d memory bits\n",
		stats.Patterns, stats.Fragments, stats.DFAStates, stats.MemoryBits)

	// One-shot scan of a complete payload.
	payload := []byte("GET /a/../../etc/shadow HTTP/1.1\nq=1 UNION of ideas... select none, xmrig")
	fmt.Println("\none-shot scan:")
	for _, m := range engine.Scan(payload) {
		fmt.Printf("  pattern %q ends at offset %d\n", engine.Pattern(m.Pattern), m.End)
	}
	// Note: pattern 0 is case-sensitive, so "UNION ... select" did not
	// match — only the traversal and the keyword did.

	// Streaming scan: the same engine serves any number of flows, each
	// with its own small context; matches fire across write boundaries.
	fmt.Println("\nstreaming scan (3-byte writes):")
	stream := engine.NewStream(func(m matchfilter.Match) {
		fmt.Printf("  pattern %q ends at offset %d\n", engine.Pattern(m.Pattern), m.End)
	})
	data := []byte("a union b selects... union then select!")
	for len(data) > 0 {
		n := 3
		if n > len(data) {
			n = len(data)
		}
		if _, err := stream.Write(data[:n]); err != nil {
			log.Fatal(err)
		}
		data = data[n:]
	}

	// Streams satisfy io.Writer, so payloads can be copied straight in.
	stream.Reset()
	f, err := os.Open(os.Args[0]) // scan this very binary, why not
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	n, err := io.Copy(stream, f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nscanned %d bytes of %s via io.Copy\n", n, os.Args[0])
}
