// IDS example: a miniature intrusion-detection pipeline over a pcap
// capture — the deployment scenario the paper's introduction motivates.
// It synthesizes a multi-flow TCP capture containing two attacks buried
// in benign traffic (unless -pcap supplies a real capture), then decodes,
// reassembles and scans it with a Snort-style rule set, reporting per-rule
// alerts with their flow 5-tuples.
//
//	go run ./examples/ids
//	go run ./examples/ids -pcap capture.pcap
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"matchfilter/internal/core"
	"matchfilter/internal/flow"
	"matchfilter/internal/pcap"
	"matchfilter/internal/regexparse"
	"matchfilter/internal/trace"
)

// rules is a small Snort-flavoured rule set: anchored request-line
// checks, line-bounded header checks, and unanchored content gaps.
var rules = []struct {
	name   string
	source string
}{
	{"sql-injection", `union.*select`},
	{"path-traversal", `/^get[^\n]*\.\.\/\.\.\//i`},
	{"shellcode-nop-sled", `\x90\x90\x90\x90.*\xcd\x80`},
	{"exfil-beacon", `beacon[^\n]*exfil`},
	{"miner-ioc", `stratum\+tcp`},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ids: ")
	pcapPath := flag.String("pcap", "", "scan this capture instead of the synthesized demo traffic")
	flag.Parse()

	engine, sources := compileRules()

	var capture io.Reader
	if *pcapPath != "" {
		f, err := os.Open(*pcapPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		capture = f
	} else {
		capture = bytes.NewReader(synthesizeDemoCapture())
	}

	alerts := 0
	start := time.Now()
	stats, err := flow.ScanPcap(capture, flow.Config{},
		func() flow.Runner { return engine.NewRunner() },
		func(m flow.Match) {
			alerts++
			fmt.Printf("ALERT %-18s flow %s offset %d\n",
				rules[m.ID-1].name, m.Flow, m.Pos)
			_ = sources
		})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("\n%d packets, %d payload bytes, %d out-of-order segments\n",
		stats.Packets, stats.PayloadBytes, stats.OutOfOrder)
	fmt.Printf("scan time %v (%.1f MB/s), %d alerts\n",
		elapsed, float64(stats.PayloadBytes)/(1<<20)/elapsed.Seconds(), alerts)
}

func compileRules() (*core.MFA, []string) {
	coreRules := make([]core.Rule, len(rules))
	sources := make([]string, len(rules))
	for i, r := range rules {
		p, err := regexparse.ParsePCRE(r.source)
		if err != nil {
			log.Fatalf("rule %s: %v", r.name, err)
		}
		coreRules[i] = core.Rule{Pattern: p, ID: int32(i + 1)}
		sources[i] = r.source
	}
	m, err := core.Compile(coreRules, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	st := m.Stats()
	fmt.Printf("compiled %d rules: %d fragments, %d states, %d filter bits, %.1f KB image\n\n",
		st.NumRules, st.NumFragments, st.DFAStates, st.MemBits,
		float64(st.MemoryImageBytes())/1024)
	return m, sources
}

// synthesizeDemoCapture builds a capture with 6 benign flows and 2
// attacks: a SQL injection split across packet boundaries and an
// exfiltration beacon. The attack bytes are deliberately fragmented so
// only stream reassembly can see them.
func synthesizeDemoCapture() []byte {
	var payloads [][]byte
	for i := 0; i < 6; i++ {
		// Benign traffic mentions "union" and "beacon" — the *first*
		// segments of two rules — so it constantly sets filter bits that
		// are never confirmed: the stateful-filter path is exercised
		// without false alerts.
		payloads = append(payloads,
			trace.TextLike(16<<10, int64(100+i), []string{"union", "beacon"}, 0.001))
	}
	attack1 := "GET /search?q=1%27%20union" + strings.Repeat(" benign padding ", 20) + "select passwd from users"
	attack2 := "POST /upload HTTP/1.1\nx: beacon id=7 mode=exfil\n"
	payloads = append(payloads, []byte(attack1), []byte(attack2))

	var buf bytes.Buffer
	// Tiny MSS forces the "union"/"select" bytes apart, proving the
	// per-flow (q, m) context carries matching state between packets.
	if err := pcap.Synthesize(&buf, payloads, 48, 0.15, 42); err != nil {
		log.Fatal(err)
	}
	return buf.Bytes()
}
