// HTTP filter example: line-oriented inspection with almost-dot-star
// patterns, the construct §IV-B of the paper is built around. Rules of
// the form A[^\n]*B match two strings only when they appear on the same
// line — exactly how HTTP request and header rules are written — and the
// engine matches them with one bit of per-flow memory instead of the
// multiplicative DFA states the undecomposed form costs.
//
//	go run ./examples/httpfilter
package main

import (
	"fmt"
	"log"
	"strings"

	"matchfilter"
)

var httpRules = []string{
	// Request-line rules: method and path feature on the same line.
	`/^get[^\r\n]*\.php\?id=/i`,
	`/^post[^\r\n]*wp-admin/i`,
	// Header rules: name and value on one line.
	`/user-agent:[^\r\n]*sqlmap/i`,
	`/x-forwarded-for:[^\r\n]*127\.0\.0\.1/i`,
	// Body rule with an unbounded gap: needs the dot-star decomposition.
	`passwd=.*uid=0`,
}

var requests = []string{
	"GET /index.php?id=1 HTTP/1.1\r\n" +
		"Host: example.com\r\n" +
		"User-Agent: Mozilla/5.0\r\n\r\n",

	"GET /safe.html HTTP/1.1\r\n" +
		"User-Agent: sqlmap/1.7#stable\r\n\r\n",

	// The suspicious value is on a *different* line than the header
	// name it would need to pair with — must NOT alert.
	"GET /ok HTTP/1.1\r\n" +
		"User-Agent: curl/8.0\r\n" +
		"X-Note: sqlmap is a tool name mentioned harmlessly\r\n\r\n",

	"POST /blog/wp-admin/admin-ajax.php HTTP/1.1\r\n" +
		"X-Forwarded-For: 127.0.0.1\r\n" +
		"\r\npasswd=hunter2&note=...&uid=0",
}

func main() {
	log.SetFlags(0)
	engine, err := matchfilter.Compile(httpRules)
	if err != nil {
		log.Fatal(err)
	}
	st := engine.Stats()
	fmt.Printf("%d rules -> %d fragments, %d states, %d bits, %d of %d rules decomposed\n\n",
		st.Patterns, st.Fragments, st.DFAStates, st.MemoryBits, st.Decomposed, st.Patterns)

	for i, req := range requests {
		fmt.Printf("request %d: %s\n", i+1, firstLine(req))
		matches := engine.Scan([]byte(req))
		if len(matches) == 0 {
			fmt.Println("  clean")
			continue
		}
		for _, m := range matches {
			fmt.Printf("  MATCH %s (offset %d)\n", engine.Pattern(m.Pattern), m.End)
		}
	}

	// The almost-dot-star point, explicitly: same bytes, different line
	// structure, different verdict.
	fmt.Println("\nline-boundary semantics:")
	sameLine := "User-Agent: sqlmap"
	crossLine := "User-Agent: x\nsqlmap"
	fmt.Printf("  %-24q -> %d matches\n", sameLine, len(engine.Scan([]byte(sameLine))))
	fmt.Printf("  %-24q -> %d matches\n", crossLine, len(engine.Scan([]byte(crossLine))))
}

func firstLine(s string) string {
	if i := strings.IndexAny(s, "\r\n"); i >= 0 {
		return s[:i]
	}
	return s
}
