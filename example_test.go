package matchfilter_test

import (
	"fmt"
	"strings"

	"matchfilter"
)

func ExampleCompile() {
	engine, err := matchfilter.Compile([]string{
		"attack.*payload",
		`/^get[^\n]*passwd/i`,
	})
	if err != nil {
		fmt.Println("compile:", err)
		return
	}
	for _, m := range engine.Scan([]byte("GET /etc/passwd\nattack with payload")) {
		fmt.Printf("pattern %d (%s) matched at offset %d\n",
			m.Pattern, engine.Pattern(m.Pattern), m.End)
	}
	// Output:
	// pattern 1 (/^get[^\n]*passwd/i) matched at offset 14
	// pattern 0 (attack.*payload) matched at offset 34
}

func ExampleEngine_NewStream() {
	engine := matchfilter.MustCompile([]string{"needle.*haystack"})
	stream := engine.NewStream(func(m matchfilter.Match) {
		fmt.Printf("match ends at %d\n", m.End)
	})
	// The match spans three writes; the per-flow (q, m) context carries
	// the partial state across them.
	for _, chunk := range []string{"a nee", "dle in a hay", "stack!"} {
		stream.Write([]byte(chunk)) //nolint:errcheck // Write never fails
	}
	fmt.Println("scanned", stream.Pos(), "bytes")
	// Output:
	// match ends at 21
	// scanned 23 bytes
}

func ExampleEngine_Stats() {
	// Three dot-star rules: a plain DFA would pay a multiplicative
	// state cost; decomposition keeps it additive with 3 memory bits.
	engine := matchfilter.MustCompile([]string{
		"alpha.*omega", "gamma.*delta", "epsilon.*zeta",
	})
	st := engine.Stats()
	fmt.Printf("%d patterns -> %d fragments, %d decomposed, %d memory bits\n",
		st.Patterns, st.Fragments, st.Decomposed, st.MemoryBits)
	// Output:
	// 3 patterns -> 6 fragments, 3 decomposed, 3 memory bits
}

func ExampleWithCountingGaps() {
	// A minimum-distance constraint: MSG2 at least 8 bytes after MSG1.
	engine := matchfilter.MustCompile([]string{"MSG1.{8,}MSG2"},
		matchfilter.WithCountingGaps())
	fmt.Println("near:", len(engine.Scan([]byte("MSG1..MSG2"))))
	fmt.Println("far: ", len(engine.Scan([]byte("MSG1........MSG2"))))
	// Output:
	// near: 0
	// far:  1
}

func ExampleWithBoundedRepeatCounters() {
	// A bounded-distance constraint (Snort's distance/within): MSG2
	// between 8 and 40 bytes after MSG1. The 40-wide window would cost
	// thousands of expanded DFA states; a counter register costs none.
	engine := matchfilter.MustCompile([]string{"MSG1.{8,40}MSG2"},
		matchfilter.WithBoundedRepeatCounters())
	fmt.Println("near:", len(engine.Scan([]byte("MSG1..MSG2"))))
	fmt.Println("mid: ", len(engine.Scan([]byte("MSG1........MSG2"))))
	far := "MSG1" + strings.Repeat(".", 41) + "MSG2"
	fmt.Println("far: ", len(engine.Scan([]byte(far))))
	// Output:
	// near: 0
	// mid:  1
	// far:  0
}
