// Package matchfilter is a multi-pattern regular-expression matching
// library for network-security workloads, implementing Match Filtering
// Automata (Norige & Liu, "A De-compositional Approach to Regular
// Expression Matching for Network Security Applications", ICDCS 2016).
//
// Patterns containing state-exploding gap constructs (.* and [^X]*) are
// decomposed into simple fragments matched by one shared DFA; a stateful
// filter engine with a few bits of per-flow memory reconstructs exactly
// the matches of the original patterns. The result combines DFA-class
// scan speed with NFA-class memory:
//
//	engine, err := matchfilter.Compile([]string{
//		`attack.*payload`,
//		`/^GET[^\n]*passwd/i`,
//	})
//	if err != nil { ... }
//	for _, m := range engine.Scan(packet) {
//		fmt.Printf("pattern %d matched ending at %d\n", m.Pattern, m.End)
//	}
//
// For streaming and flow-multiplexed use, obtain one Stream per flow:
// each holds only the paper's (q, m) context — a DFA state and a small
// bit memory — so millions of concurrent flows are practical.
package matchfilter

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"matchfilter/internal/core"
	"matchfilter/internal/dfa"
	"matchfilter/internal/regexparse"
)

// ErrTooManyStates is returned when the automaton would exceed the
// configured state budget even after decomposition.
var ErrTooManyStates = dfa.ErrTooManyStates

// ErrUnsupported wraps pattern syntax the engine does not implement
// (back-references, look-around, $ anchors). Use errors.Is to detect it
// and skip such rules.
var ErrUnsupported = regexparse.ErrUnsupported

// Match is one confirmed pattern match.
type Match struct {
	// Pattern is the index of the matched pattern in the Compile slice.
	Pattern int
	// End is the 0-based offset of the last byte of the match within the
	// flow (cumulative across Stream writes).
	End int64
}

// Option configures Compile.
type Option func(*config)

type config struct {
	core core.Options
}

// WithMaxStates caps DFA construction at n states (default 2^17). The
// cap bounds worst-case memory; Compile returns ErrTooManyStates (wrapped)
// when exceeded.
func WithMaxStates(n int) Option {
	return func(c *config) { c.core.DFA.MaxStates = n }
}

// WithoutDecomposition disables match-filter decomposition entirely,
// compiling a plain multi-pattern DFA. Exposed for measurement and
// debugging; it reproduces exactly the state explosion the decomposition
// exists to avoid.
func WithoutDecomposition() Option {
	return func(c *config) {
		c.core.Splitter.DisableDotStar = true
		c.core.Splitter.DisableAlmostDotStar = true
	}
}

// WithClassSizeThreshold overrides the almost-dot-star class-size
// threshold (default 128): a gap [^X]* is only decomposed when |X| is
// below the threshold, keeping filter-event pressure bounded.
func WithClassSizeThreshold(n int) Option {
	return func(c *config) { c.core.Splitter.MaxClassSize = n }
}

// WithCountingGaps enables the counting-condition extension (the paper's
// §VI future work): gaps of the form .{n,} are decomposed using filter
// position registers instead of being expanded into n automaton states,
// provided the segment after the gap has a fixed length.
func WithCountingGaps() Option {
	return func(c *config) { c.core.Splitter.EnableCounting = true }
}

// WithBoundedRepeatCounters enables the counter-register extension:
// bounded gaps of the form X{n,m} (with m at or above the splitter's
// counter threshold) are compiled to per-flow counter registers instead
// of being expanded into up to m copies of automaton states, provided
// the segment after the gap has a fixed length. Wide windows that make
// subset construction infeasible under WithMaxStates become compilable;
// match streams are unchanged.
func WithBoundedRepeatCounters() Option {
	return func(c *config) { c.core.Splitter.EnableCounters = true }
}

// WithMinimization enables DFA minimization after subset construction,
// trading compile time for a smaller table.
func WithMinimization() Option {
	return func(c *config) { c.core.DFA.Minimize = true }
}

// Engine is a compiled, immutable pattern set. It is safe for concurrent
// use; per-flow state lives in Stream.
type Engine struct {
	mfa      *core.MFA
	patterns []string
}

// Compile builds an engine for the given patterns. Each pattern is either
// a bare regex ("a.*b") or a slashed Snort-style form with flags
// ("/a[^\n]*b/i"). Matches report the pattern's index in this slice.
func Compile(patternSources []string, opts ...Option) (*Engine, error) {
	if len(patternSources) == 0 {
		return nil, errors.New("matchfilter: no patterns")
	}
	var cfg config
	for _, opt := range opts {
		opt(&cfg)
	}
	rules := make([]core.Rule, len(patternSources))
	for i, src := range patternSources {
		p, err := regexparse.ParsePCRE(src)
		if err != nil {
			return nil, fmt.Errorf("matchfilter: pattern %d: %w", i, err)
		}
		rules[i] = core.Rule{Pattern: p, ID: int32(i + 1)}
	}
	m, err := core.Compile(rules, cfg.core)
	if err != nil {
		return nil, fmt.Errorf("matchfilter: %w", err)
	}
	return &Engine{mfa: m, patterns: append([]string(nil), patternSources...)}, nil
}

// MustCompile is Compile that panics on error, for static pattern sets.
func MustCompile(patternSources []string, opts ...Option) *Engine {
	e, err := Compile(patternSources, opts...)
	if err != nil {
		panic(err)
	}
	return e
}

// Pattern returns the source of the i-th pattern.
func (e *Engine) Pattern(i int) string { return e.patterns[i] }

// NumPatterns returns the number of compiled patterns.
func (e *Engine) NumPatterns() int { return len(e.patterns) }

// Scan matches data as one complete flow and returns every match in
// order of occurrence.
func (e *Engine) Scan(data []byte) []Match {
	var out []Match
	s := e.NewStream(func(m Match) { out = append(out, m) })
	_, _ = s.Write(data)
	return out
}

// Stats describes the compiled automaton.
type Stats struct {
	// Patterns is the number of input patterns; Fragments the number of
	// decomposed sub-patterns the DFA actually matches.
	Patterns  int
	Fragments int
	// DFAStates is the size of the character DFA; MemoryBits the per-flow
	// filter memory width w.
	DFAStates  int
	MemoryBits int
	// ImageBytes is the static memory image (transition table, decision
	// sets and filter program).
	ImageBytes int
	// Decomposed counts patterns that were split; the rest are matched
	// whole.
	Decomposed int
}

// Stats returns compilation statistics.
func (e *Engine) Stats() Stats {
	st := e.mfa.Stats()
	return Stats{
		Patterns:   st.NumRules,
		Fragments:  st.NumFragments,
		DFAStates:  st.DFAStates,
		MemoryBits: st.MemBits,
		ImageBytes: st.MemoryImageBytes(),
		Decomposed: st.Split.RulesDecomposed,
	}
}

// Stream is one flow's matching context. It implements io.Writer: bytes
// written are scanned incrementally and the handler receives matches as
// they complete, even across write boundaries. A Stream is not safe for
// concurrent use.
type Stream struct {
	runner  *core.Runner
	handler func(Match)
}

// NewStream returns a fresh flow context whose matches are delivered to
// handler (which may be nil to discard).
func (e *Engine) NewStream(handler func(Match)) *Stream {
	return &Stream{runner: e.mfa.NewRunner(), handler: handler}
}

// Write scans p as the next bytes of the flow. It never fails; the error
// is always nil and exists to satisfy io.Writer.
func (s *Stream) Write(p []byte) (int, error) {
	if s.handler == nil {
		s.runner.Feed(p, func(int32, int64) {})
		return len(p), nil
	}
	s.runner.Feed(p, func(id int32, pos int64) {
		s.handler(Match{Pattern: int(id) - 1, End: pos})
	})
	return len(p), nil
}

// Pos returns the total number of bytes scanned so far.
func (s *Stream) Pos() int64 { return s.runner.Pos() }

// Reset rewinds the stream for reuse on a new flow.
func (s *Stream) Reset() { s.runner.Reset() }

// Save serializes the compiled engine (automaton, filter program and
// pattern sources) so it can be loaded by Load without recompiling.
// Compile-time statistics other than sizes are not preserved.
func (e *Engine) Save(w io.Writer) error {
	if err := core.WriteStrings(w, e.patterns); err != nil {
		return fmt.Errorf("matchfilter: save: %w", err)
	}
	if _, err := e.mfa.WriteTo(w); err != nil {
		return fmt.Errorf("matchfilter: save: %w", err)
	}
	return nil
}

// Load deserializes an engine written by Save. The format is validated
// structurally, so a corrupt or truncated file returns an error rather
// than an engine that misbehaves.
func Load(r io.Reader) (*Engine, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	patterns, err := core.ReadStrings(br)
	if err != nil {
		return nil, fmt.Errorf("matchfilter: load: %w", err)
	}
	m, err := core.ReadMFA(br)
	if err != nil {
		return nil, fmt.Errorf("matchfilter: load: %w", err)
	}
	return &Engine{mfa: m, patterns: patterns}, nil
}
