package core

// Tests for the counter-register extension (DESIGN.md §19): bounded gaps
// of the form X{n,m} decomposed via filter counters. As with the .{n,}
// counting extension, the ground truth is the undecomposed DFA, which
// handles {n,m} by repeat expansion — so exact stream equivalence is
// checkable wherever the expanded automaton still builds.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"matchfilter/internal/dfa"
	"matchfilter/internal/splitter"
)

// counterOpts enables counter compilation with no size threshold, so
// even small {n,m} gaps — the only kind the expanded ground truth can
// build — take the counter path.
func counterOpts() Options {
	return Options{Splitter: splitter.Options{EnableCounters: true, CounterThreshold: 1}}
}

// assertCounterEquivalent compiles the rules with counters enabled and
// checks the match stream against the undecomposed DFA on every input.
func assertCounterEquivalent(t *testing.T, sources []string, inputs [][]byte) {
	t.Helper()
	rules := mustRules(t, sources...)
	m, err := Compile(rules, counterOpts())
	if err != nil {
		t.Fatal(err)
	}
	gt := groundTruth(t, rules)
	for _, input := range inputs {
		got := mfaEvents(m, input)
		want := dfaEvents(gt, input)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("rules %v input %q:\nMFA  %v\ntruth %v", sources, input, got, want)
		}
	}
}

func TestCounterGapSplit(t *testing.T) {
	m := compileMFA(t, counterOpts(), "aa.{3,9}bb")
	st := m.Stats()
	if st.Split.CounterSplits != 1 {
		t.Fatalf("stats: %+v", st.Split)
	}
	if st.Counters != 1 {
		t.Fatalf("Counters = %d", st.Counters)
	}
	if st.NumFragments != 2 {
		t.Fatalf("fragments = %d", st.NumFragments)
	}
	// The decomposed automaton is far smaller than the expanded one.
	// (Much wider windows do not build at all by expansion — the subset
	// construction exceeds the state budget; see the heavy pattern sets.)
	plain := compileMFA(t, Options{}, "aa.{10,14}bb")
	counted := compileMFA(t, counterOpts(), "aa.{10,14}bb")
	if counted.Stats().DFAStates*4 > plain.Stats().DFAStates {
		t.Errorf("counters should shrink the automaton: %d vs %d",
			counted.Stats().DFAStates, plain.Stats().DFAStates)
	}
}

func TestCounterGapSemantics(t *testing.T) {
	// aa.{3,5}bb: between 3 and 5 bytes strictly between aa and bb.
	m := compileMFA(t, counterOpts(), "aa.{3,5}bb")
	for input, want := range map[string]int{
		"aabb":         0, // gap 0
		"aa..bb":       0, // gap 2
		"aa...bb":      1, // gap 3 = n
		"aa....bb":     1,
		"aa.....bb":    1, // gap 5 = m
		"aa......bb":   0, // gap 6 > m
		"aa...bb...bb": 1, // second bb is at gap 8, outside the window
		"bb aa...bb":   1,
		"aaa..bb":      1, // second aa-match end makes the gap exactly 3
	} {
		if got := m.Run([]byte(input)); len(got) != want {
			t.Errorf("%q: %d matches, want %d (%v)", input, len(got), want, got)
		}
	}
}

func TestCounterEquivalenceFixed(t *testing.T) {
	assertCounterEquivalent(t,
		[]string{"aa.{3,5}bb"},
		[][]byte{
			[]byte("aabb"), []byte("aa..bb"), []byte("aa...bb"), []byte("aa.....bb"),
			[]byte("aa......bb"), []byte("aa...bb...bb"), []byte("aa aa bb bb"),
			[]byte("aaxbbyaa....bb"), []byte(strings.Repeat("aa..bb", 10)),
			[]byte("aaa..bb"), []byte("aaaa.bb"), []byte("aa...bbbb"),
		})
	// Witness-set property: with two A occurrences, position 5 is
	// satisfied only by the older witness and a later position only by
	// the newer — a scalar counter would fail one of them.
	assertCounterEquivalent(t,
		[]string{"xy.{2,4}zw"},
		[][]byte{
			[]byte("xyxy..zw"),    // young witness at gap 2, old at 4: both qualify
			[]byte("xyxy....zw"),  // only the young witness qualifies
			[]byte("xy....xyzw"),  // neither (old expired, young gap 0)
			[]byte("xyxyxy...zw"), // three witnesses
			[]byte("xy..zw..zw"),  // second zw out of window
			[]byte("xy...zwzwzw"), // overlapping zw
		})
}

func TestCounterClassedGap(t *testing.T) {
	// aa[^x]{2,4}bb: an x anywhere in the gap invalidates the witness.
	assertCounterEquivalent(t,
		[]string{"aa[^x]{2,4}bb"},
		[][]byte{
			[]byte("aa..bb"), []byte("aa....bb"), []byte("aa.....bb"),
			[]byte("aa.x.bb"), // x in the gap kills it
			[]byte("aax..bb"), // x immediately after aa
			[]byte("aa..xbb"), // x immediately before bb
			[]byte("aa..bb aa.x..bb"),
			[]byte("aaxaa..bb"), // second aa unpoisoned
			[]byte("aa..aax.bb"),
			[]byte("xxaa..bbxx"),
		})
	// Forbidden byte that is also A's final byte: the witness recorded at
	// the same position must survive the reset.
	assertCounterEquivalent(t,
		[]string{"ax[^x]{2,4}bb"},
		[][]byte{
			[]byte("ax..bb"), []byte("axx..bb"), []byte("ax.x.bb"),
			[]byte("axax..bb"), []byte("ax....bb"),
		})
}

func TestCounterDoubleGap(t *testing.T) {
	assertCounterEquivalent(t,
		[]string{"aa.{2,4}bb.{3,5}cc"},
		[][]byte{
			[]byte("aa..bb...cc"),
			[]byte("aa..bb..cc"),     // second gap too small
			[]byte("aa.bb...cc"),     // first gap too small
			[]byte("aa.....bb...cc"), // first gap too large
			[]byte("bb aa..bb...cc"),
			[]byte("aa..bbbb...cc"),
			[]byte("cc aa...bb....cc cc"),
		})
	// Mixed chain: unbounded dot-star, bounded gap, counting gap.
	assertCounterEquivalent(t,
		[]string{"hd.*aa.{2,4}bb"},
		[][]byte{
			[]byte("hd aa...bb"),
			[]byte("aa...bb hd"),
			[]byte("hd aabb"),
			[]byte("aa hd aa...bb"),
			[]byte("hd..aa..aa...bb"),
		})
}

func TestCounterXInBRefused(t *testing.T) {
	// The forbidden class contains b, which occurs in B = "bb": the gap
	// cannot take the counter path (a reset would fire inside B's own
	// bytes) and the rule must compile whole — and still match exactly.
	rules := mustRules(t, "aa[^b]{3,9}bb")
	m, err := Compile(rules, counterOpts())
	if err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Split.CounterSplits != 0 || st.Split.RefusedCounterXInB != 1 {
		t.Fatalf("stats: %+v", st.Split)
	}
	assertCounterEquivalent(t,
		[]string{"aa[^b]{3,9}bb"},
		[][]byte{
			[]byte("aa...bb"), []byte("aa.b.bb"), []byte("aabbbb"),
			[]byte("aa.........bb"), []byte("aa..........bb"),
		})
}

func TestCounterVariableLengthRefused(t *testing.T) {
	// B = b+c has variable length: the window arithmetic is undefined, so
	// the split is refused and the rule compiled whole (still correct).
	m := compileMFA(t, counterOpts(), "aa.{3,9}b+c")
	st := m.Stats()
	if st.Split.CounterSplits != 0 || st.Split.RefusedVarLength != 1 {
		t.Fatalf("stats: %+v", st.Split)
	}
	assertCounterEquivalent(t,
		[]string{"aa.{3,9}b+c"},
		[][]byte{
			[]byte("aa...bc"), []byte("aa...bbbbc"), []byte("aa.bc"),
			[]byte("aabbbc"), []byte("aa.........bbc"),
		})
}

func TestCounterThresholdGate(t *testing.T) {
	// Below the threshold the gap stays on the expansion path.
	opts := Options{Splitter: splitter.Options{EnableCounters: true, CounterThreshold: 10}}
	m := compileMFA(t, opts, "aa.{2,4}bb")
	if st := m.Stats(); st.Split.CounterSplits != 0 || st.Counters != 0 {
		t.Fatalf("gap below threshold took the counter path: %+v", st.Split)
	}
	m = compileMFA(t, opts, "aa.{2,14}bb")
	if st := m.Stats(); st.Split.CounterSplits != 1 || st.Counters != 1 {
		t.Fatalf("gap above threshold stayed on expansion: %+v", st.Split)
	}
}

func TestCounterDisabledByDefault(t *testing.T) {
	m := compileMFA(t, Options{}, "aa.{3,9}bb")
	if st := m.Stats(); st.Split.CounterSplits != 0 || st.Counters != 0 {
		t.Fatalf("counters must be opt-in: %+v", st.Split)
	}
	// EnableCounting alone must not flip bounded gaps either.
	m = compileMFA(t, countingOpts(), "aa.{3,9}bb")
	if st := m.Stats(); st.Split.CounterSplits != 0 || st.Counters != 0 {
		t.Fatalf("EnableCounting must not enable counters: %+v", st.Split)
	}
}

func TestCounterContextRoundTrip(t *testing.T) {
	// Counter state is part of the flow context: a witness recorded before
	// the save must satisfy the window after a restore into a fresh runner.
	m := compileMFA(t, counterOpts(), "aa.{3,5}bb")
	r := m.NewRunner()
	var got []event
	collect := func(id int32, pos int64) { got = append(got, event{id, pos}) }
	r.Feed([]byte("aa.."), collect)
	state, mem, regs, ctrs := r.Context()
	pos := r.Pos()

	r.Reset()
	r.Feed([]byte(".bb"), collect)
	if len(got) != 0 {
		t.Fatalf("fresh flow must not match: %v", got)
	}
	r2 := m.NewRunner()
	if err := r2.SetContext(state, mem, regs, ctrs, pos); err != nil {
		t.Fatal(err)
	}
	r2.Feed([]byte(".bb"), collect)
	if len(got) != 1 || got[0].pos != 6 {
		t.Fatalf("restored flow: %v", got)
	}

	// The saved context is a snapshot: mutating the donor runner after
	// Context() must not corrupt it.
	if len(ctrs) == 0 {
		t.Fatal("context carries no counter state")
	}
}

func TestCounterBadContext(t *testing.T) {
	m := compileMFA(t, counterOpts(), "aa.{3,5}bb")
	r := m.NewRunner()
	_, _, _, ctrs := r.Context()
	if len(ctrs) == 0 {
		t.Fatal("no counter state to corrupt")
	}
	bad := ctrs.Clone()
	bad[0] = 99 // base word beyond the restore position
	if err := m.NewRunner().SetContext(0, nil, nil, bad, 10); err == nil {
		t.Fatal("future-based counter context accepted")
	}
	// After a rejected restore the runner is reset and usable.
	r3 := m.NewRunner()
	_ = r3.SetContext(0, nil, nil, bad, 10)
	if evs := r3.Pos(); evs != 0 {
		t.Fatalf("runner not reset after bad context: pos %d", evs)
	}
	// A base at the restore position is legal.
	bad[0] = 10
	if err := m.NewRunner().SetContext(0, nil, nil, bad, 10); err != nil {
		t.Fatalf("base at pos rejected: %v", err)
	}
	// Truncated counter images are zero-extended, not rejected.
	if err := m.NewRunner().SetContext(0, nil, nil, ctrs[:1], 5); err != nil {
		t.Fatalf("truncated counter image rejected: %v", err)
	}
	// Oversized images are rejected.
	huge := make([]uint64, len(ctrs)+1)
	if err := m.NewRunner().SetContext(0, nil, nil, huge, 5); err == nil {
		t.Fatal("oversized counter image accepted")
	}
}

// TestCounterEquivalenceRandom is the satellite property test: random
// rules over bounded gaps (plain and classed), random rule subsets,
// random inputs — the counter-compiled MFA must emit a byte-identical
// (id, pos) match stream to the undecomposed expanded DFA, whole-payload
// and under random chunking, in every table layout, and through the
// lockstep batcher. Runs under -race in CI.
func TestCounterEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	words := []string{"aa", "bb", "cc", "xy"}
	gaps := []string{".{2,4}", ".{3,7}", ".{5,12}", "[^x]{2,6}", "[^\n]{3,8}", ".{4,}", ".*"}
	layouts := []dfa.Layout{dfa.LayoutFlat, dfa.LayoutClassed, dfa.LayoutClassed2}
	trials := 25
	if testing.Short() {
		trials = 5
	}

	for trial := 0; trial < trials; trial++ {
		// 1–3 random rules, each word-gap-word[-gap-word].
		numRules := 1 + rng.Intn(3)
		var sources []string
		for ri := 0; ri < numRules; ri++ {
			var sb strings.Builder
			numSegs := 2 + rng.Intn(2)
			for si := 0; si < numSegs; si++ {
				if si > 0 {
					sb.WriteString(gaps[rng.Intn(len(gaps))])
				}
				sb.WriteString(words[rng.Intn(len(words))])
			}
			sources = append(sources, sb.String())
		}
		rules := mustRules(t, sources...)
		gt := groundTruth(t, rules)

		var inputs [][]byte
		for ii := 0; ii < 6; ii++ {
			var in strings.Builder
			for in.Len() < 20+rng.Intn(120) {
				switch rng.Intn(5) {
				case 0:
					in.WriteString(words[rng.Intn(len(words))])
				case 1:
					in.WriteByte('.')
				case 2:
					in.WriteByte('x')
				case 3:
					in.WriteByte('\n')
				default:
					in.WriteString("..")
				}
			}
			inputs = append(inputs, []byte(in.String()))
		}

		for _, layout := range layouts {
			opts := counterOpts()
			opts.DFA = dfa.Options{Layout: layout}
			m, err := Compile(rules, opts)
			if err != nil {
				t.Fatalf("trial %d layout %v rules %v: %v", trial, layout, sources, err)
			}
			for ii, input := range inputs {
				want := dfaEvents(gt, input)
				if got := mfaEvents(m, input); fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("trial %d layout %v rules %v input %q:\nMFA  %v\ntruth %v",
						trial, layout, sources, input, got, want)
				}
				// Same payload in random odd-biased chunks: counter state
				// must carry across Feed boundaries identically.
				r := m.NewRunner()
				var stream []event
				for off := 0; off < len(input); {
					n := 1 + rng.Intn(9)
					if off+n > len(input) {
						n = len(input) - off
					}
					r.Feed(input[off:off+n], func(id int32, pos int64) {
						stream = append(stream, event{id, pos})
					})
					off += n
				}
				sortEvents(stream)
				if fmt.Sprint(stream) != fmt.Sprint(want) {
					t.Fatalf("trial %d layout %v input %d: chunked stream diverges from truth",
						trial, layout, ii)
				}
				// Mid-stream context round trip through a second runner.
				r1 := m.NewRunner()
				var roundTrip []event
				cb := func(id int32, pos int64) { roundTrip = append(roundTrip, event{id, pos}) }
				half := len(input) / 2
				r1.Feed(input[:half], cb)
				state, mem, regs, ctrs := r1.Context()
				r2 := m.NewRunner()
				if err := r2.SetContext(state, mem, regs, ctrs, r1.Pos()); err != nil {
					t.Fatalf("trial %d: mid-stream restore: %v", trial, err)
				}
				r2.Feed(input[half:], cb)
				sortEvents(roundTrip)
				if fmt.Sprint(roundTrip) != fmt.Sprint(want) {
					t.Fatalf("trial %d layout %v input %d: context round trip diverges\ngot  %v\ntruth %v",
						trial, layout, ii, roundTrip, want)
				}
			}
		}

		// Batched lockstep: all inputs as concurrent flows through one
		// FlowBatcher must reproduce each flow's sequential stream.
		opts := counterOpts()
		m, err := Compile(rules, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 3, MaxBatchFlows} {
			b := NewFlowBatcher(k)
			frs := make([]*Runner, len(inputs))
			streams := make([][]event, len(inputs))
			offs := make([]int, len(inputs))
			cbs := make([]MatchFunc, len(inputs))
			for fi := range inputs {
				frs[fi] = m.NewRunner()
				fi := fi
				cbs[fi] = func(id int32, pos int64) {
					streams[fi] = append(streams[fi], event{id, pos})
				}
			}
			for done := false; !done; {
				done = true
				for fi, input := range inputs {
					if offs[fi] >= len(input) {
						continue
					}
					done = false
					n := 1 + rng.Intn(30)
					if offs[fi]+n > len(input) {
						n = len(input) - offs[fi]
					}
					if !b.Add(frs[fi], fi, input[offs[fi]:offs[fi]+n], cbs[fi]) {
						t.Fatalf("trial %d: batcher refused a runner", trial)
					}
					offs[fi] += n
				}
			}
			b.Flush()
			for fi, input := range inputs {
				want := dfaEvents(gt, input)
				sortEvents(streams[fi])
				if fmt.Sprint(streams[fi]) != fmt.Sprint(want) {
					t.Fatalf("trial %d k=%d flow %d: batched stream diverges\ngot  %v\ntruth %v",
						trial, k, fi, streams[fi], want)
				}
			}
		}
	}
}
