package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"matchfilter/internal/dfa"
	"matchfilter/internal/nfa"
	"matchfilter/internal/regexparse"
	"matchfilter/internal/splitter"
)

func mustRules(t *testing.T, sources ...string) []Rule {
	t.Helper()
	rules := make([]Rule, len(sources))
	for i, src := range sources {
		p, err := regexparse.ParsePCRE(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		rules[i] = Rule{Pattern: p, ID: int32(i + 1)}
	}
	return rules
}

func compileMFA(t *testing.T, opts Options, sources ...string) *MFA {
	t.Helper()
	m, err := Compile(mustRules(t, sources...), opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// groundTruth builds the undecomposed DFA over the original rules: the
// reference the MFA must agree with on every input.
func groundTruth(t *testing.T, rules []Rule) *dfa.Engine {
	t.Helper()
	nfaRules := make([]nfa.Rule, len(rules))
	for i, r := range rules {
		nfaRules[i] = nfa.Rule{Pattern: r.Pattern, MatchID: int(r.ID)}
	}
	n, err := nfa.Build(nfaRules)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dfa.FromNFA(n, dfa.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return dfa.NewEngine(d)
}

type event struct {
	id  int32
	pos int64
}

func sortEvents(evs []event) {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].pos != evs[j].pos {
			return evs[i].pos < evs[j].pos
		}
		return evs[i].id < evs[j].id
	})
}

func mfaEvents(m *MFA, input []byte) []event {
	var out []event
	for _, ev := range m.Run(input) {
		out = append(out, event{ev.RuleID, ev.Pos})
	}
	sortEvents(out)
	return out
}

func dfaEvents(e *dfa.Engine, input []byte) []event {
	var out []event
	for _, ev := range e.Run(input) {
		out = append(out, event{ev.ID, ev.Pos})
	}
	sortEvents(out)
	return out
}

// assertEquivalent checks the MFA match stream equals ground truth.
func assertEquivalent(t *testing.T, sources []string, inputs [][]byte) {
	t.Helper()
	rules := mustRules(t, sources...)
	m, err := Compile(rules, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gt := groundTruth(t, rules)
	for _, input := range inputs {
		got := mfaEvents(m, input)
		want := dfaEvents(gt, input)
		if len(got) != len(want) {
			t.Fatalf("rules %v input %q:\nMFA  %v\ntruth %v", sources, input, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("rules %v input %q event %d:\nMFA  %v\ntruth %v", sources, input, i, got, want)
			}
		}
	}
}

func TestSectionICExample(t *testing.T) {
	// Tables I-III: the R1 rules on the running-example input. The MFA
	// must confirm exactly R1's matches: emacs, the second gnu, xyz.
	sources := []string{"vi.*emacs", "bsd.*gnu", "abc.*mm?o.*xyz"}
	input := []byte("vi.emacs.gnu.bsd.gnu.abc.mo.xyz")

	m := compileMFA(t, Options{}, sources...)
	got := mfaEvents(m, input)
	want := []event{{1, 7}, {2, 19}, {3, 30}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// And it agrees with ground truth on this and related inputs.
	assertEquivalent(t, sources, [][]byte{
		input,
		[]byte("emacs.vi.gnu.bsd"),            // wrong order: nothing
		[]byte("vi emacs vi emacs"),           // repeated matches
		[]byte("abc mo xyz"),                  // 3-segment rule
		[]byte("abc mmo xyz abc xyz"),         // optional m, second xyz confirms too
		[]byte(strings.Repeat("bsd gnu ", 8)), // persistent bit
	})
}

func TestTableIVWalkthrough(t *testing.T) {
	// §IV-B Table IV: .*abc[^\n]*xyz on "abc:\n:xyz\nabc:xyz\n". The raw
	// fragment matches are 1a,1b,1,1b,1a,1 and only the final one is
	// confirmed.
	m := compileMFA(t, Options{}, `abc[^\n]*xyz`)
	input := []byte("abc:\n:xyz\nabc:xyz\n")

	// Raw (unfiltered) match ids from the character DFA.
	var raw []event
	r := dfa.NewEngine(m.DFA()).NewRunner()
	r.Feed(input, func(id int32, pos int64) { raw = append(raw, event{id, pos}) })
	// ids: 1 = abc (Set), 2 = xyz (Test to Match), 3 = the shared [\n]
	// gap fragment (Clear), which the splitter emits after all rules.
	wantRaw := []event{{1, 2}, {3, 4}, {2, 8}, {3, 9}, {1, 12}, {2, 16}, {3, 17}}
	if fmt.Sprint(raw) != fmt.Sprint(wantRaw) {
		t.Fatalf("raw matches:\ngot  %v\nwant %v", raw, wantRaw)
	}

	// Filtered: only the third-line xyz.
	got := mfaEvents(m, input)
	if len(got) != 1 || got[0] != (event{1, 16}) {
		t.Fatalf("filtered matches: %v", got)
	}
}

func TestUnsafeDecompositionFalseMatch(t *testing.T) {
	// §IV-A: force-decomposing .*abc.*bcd wrongly matches "abcd". With
	// safety checks on, the rule stays whole and "abcd" is rejected.
	rules := mustRules(t, "abc.*bcd")
	unsafe, err := Compile(rules, Options{
		Splitter: splitter.Options{DisableSafetyChecks: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := unsafe.Run([]byte("abcd")); len(got) != 1 {
		t.Fatalf("unsafe decomposition should produce the false match: %v", got)
	}
	safe := compileMFA(t, Options{}, "abc.*bcd")
	if got := safe.Run([]byte("abcd")); len(got) != 0 {
		t.Fatalf("safe MFA must reject abcd: %v", got)
	}
	if got := safe.Run([]byte("abc bcd")); len(got) != 1 {
		t.Fatalf("safe MFA must still match the real pattern: %v", got)
	}
}

func TestEquivalenceAnchored(t *testing.T) {
	assertEquivalent(t,
		[]string{"^hdr.*abc.*xyz", "^GET[^\\n]*HTTP"},
		[][]byte{
			[]byte("hdr abc xyz"),
			[]byte("xhdr abc xyz"),
			[]byte("hdr xyz abc xyz"),
			[]byte("GET /index.html HTTP/1.1\r\n"),
			[]byte("POST GET HTTP"),
			[]byte("GET /a\nHTTP"),
		})
}

func TestEquivalenceAlmostDotStar(t *testing.T) {
	assertEquivalent(t,
		[]string{`foo[^\n]*bar`, `a:[^;]*;end`},
		[][]byte{
			[]byte("foo bar"),
			[]byte("foo\nbar"),
			[]byte("foo foo\nfoo bar bar"),
			[]byte("a: x;end"),
			[]byte("a: ;x;end"),
			[]byte("a:\n;end;end"),
			[]byte("foo bar foo\nbar foo bar"),
		})
}

func TestEquivalenceMultiRuleShared(t *testing.T) {
	// Rules sharing literals stress decision-set merging.
	assertEquivalent(t,
		[]string{"alpha.*omega", "omega.*alpha", "alpha", "omega"},
		[][]byte{
			[]byte("alpha omega alpha omega"),
			[]byte("omega alpha"),
			[]byte("alphaomega"),
			[]byte(strings.Repeat("alpha", 5)),
		})
}

// TestEquivalenceRandom is the central correctness property: on randomly
// generated safe-and-unsafe rule sets and random inputs, the MFA match
// stream must equal the undecomposed ground-truth DFA stream exactly.
func TestEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2016))
	words := []string{"ab", "cde", "fgh", "xyz", "qq", "lmn", "uvw", "rst"}
	gaps := []string{".*", "[^\\n]*", "[^#]*"}

	for trial := 0; trial < 60; trial++ {
		numRules := 1 + rng.Intn(4)
		sources := make([]string, 0, numRules)
		for ri := 0; ri < numRules; ri++ {
			numSegs := 1 + rng.Intn(3)
			var sb strings.Builder
			if rng.Intn(6) == 0 {
				sb.WriteByte('^')
			}
			for si := 0; si < numSegs; si++ {
				if si > 0 {
					sb.WriteString(gaps[rng.Intn(len(gaps))])
				}
				sb.WriteString(words[rng.Intn(len(words))])
			}
			sources = append(sources, sb.String())
		}

		inputs := make([][]byte, 0, 6)
		for ii := 0; ii < 6; ii++ {
			var sb strings.Builder
			for sb.Len() < 10+rng.Intn(120) {
				switch rng.Intn(5) {
				case 0:
					sb.WriteString(words[rng.Intn(len(words))])
				case 1:
					sb.WriteByte('\n')
				case 2:
					sb.WriteByte('#')
				default:
					sb.WriteByte("abcdefghlmnqrstuvwxyz "[rng.Intn(22)])
				}
			}
			inputs = append(inputs, []byte(sb.String()))
		}
		assertEquivalent(t, sources, inputs)
	}
}

func TestStats(t *testing.T) {
	// The §V-C filter-fraction claim is stated against the paper's flat
	// transition table; pin that layout so the ratio check keeps
	// measuring what the paper measured. Layout stats are checked on a
	// default (byte-class) build below.
	m := compileMFA(t, Options{DFA: dfa.Options{Layout: dfa.LayoutFlat}},
		"vi.*emacs", "bsd.*gnu", "abc.*mm?o.*xyz")
	st := m.Stats()
	if st.NumRules != 3 || st.NumFragments != 7 {
		t.Errorf("rules=%d fragments=%d", st.NumRules, st.NumFragments)
	}
	if st.MemBits != 4 {
		t.Errorf("MemBits = %d, want 4", st.MemBits)
	}
	if st.InternalIDs != 7 {
		t.Errorf("InternalIDs = %d, want 7", st.InternalIDs)
	}
	if st.DFAStates <= 0 || st.NFAStates <= 0 {
		t.Errorf("state counts: %+v", st)
	}
	if st.BuildTime <= 0 {
		t.Errorf("BuildTime = %v", st.BuildTime)
	}
	if st.MemoryImageBytes() != st.DFABytes+st.FilterBytes {
		t.Errorf("image bytes inconsistent: %+v", st)
	}
	// The filter must be a tiny fraction of the image (§V-C: <0.2%).
	if frac := float64(st.FilterBytes) / float64(st.MemoryImageBytes()); frac > 0.05 {
		t.Errorf("filter fraction %f too large", frac)
	}
	if st.DFALayout != "flat" || st.DFAClasses != 256 {
		t.Errorf("flat build stats: layout=%q classes=%d", st.DFALayout, st.DFAClasses)
	}

	// The default build applies byte-class compression: far fewer than
	// 256 classes, a proportionally smaller table, identical matching.
	md := compileMFA(t, Options{}, "vi.*emacs", "bsd.*gnu", "abc.*mm?o.*xyz")
	std := md.Stats()
	if std.DFALayout != "classed" {
		t.Fatalf("default layout = %q, want classed", std.DFALayout)
	}
	if std.DFAClasses <= 0 || std.DFAClasses >= 256 {
		t.Errorf("classed build used %d classes", std.DFAClasses)
	}
	if std.DFATableBytes >= st.DFATableBytes {
		t.Errorf("classed table %d B not smaller than flat %d B", std.DFATableBytes, st.DFATableBytes)
	}
}

func TestMFASmallerThanDFA(t *testing.T) {
	// The point of the paper: on dot-star-heavy sets the MFA's DFA is
	// far smaller than the undecomposed DFA.
	var sources []string
	for i := 0; i < 6; i++ {
		sources = append(sources, fmt.Sprintf("pat%da.*end%db", i, i))
	}
	rules := mustRules(t, sources...)
	m, err := Compile(rules, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gt := groundTruth(t, rules)
	mfaStates := m.Stats().DFAStates
	dfaStates := gt.DFA().NumStates()
	if mfaStates*4 > dfaStates {
		t.Errorf("MFA should be much smaller: MFA=%d DFA=%d", mfaStates, dfaStates)
	}
	t.Logf("6 dot-star rules: MFA=%d states, DFA=%d states (%.1fx)",
		mfaStates, dfaStates, float64(dfaStates)/float64(mfaStates))
}

func TestRunnerStreamingAndContext(t *testing.T) {
	m := compileMFA(t, Options{}, "abc.*xyz")
	r := m.NewRunner()
	var got []event
	collect := func(id int32, pos int64) { got = append(got, event{id, pos}) }

	// Split across feeds, including mid-fragment.
	r.Feed([]byte("ab"), collect)
	r.Feed([]byte("c..x"), collect)
	r.Feed([]byte("yz"), collect)
	if len(got) != 1 || got[0] != (event{1, 7}) {
		t.Fatalf("streaming: %v", got)
	}

	// Context save/restore mimics flow multiplexing.
	r.Reset()
	got = nil
	r.Feed([]byte("abc"), collect)
	state, mem, regs, ctrs := r.Context()
	pos := r.Pos()
	r.Reset()
	r.Feed([]byte("xyz"), collect) // fresh flow: no match
	if len(got) != 0 {
		t.Fatalf("fresh flow must not match: %v", got)
	}
	if err := r.SetContext(state, mem, regs, ctrs, pos); err != nil {
		t.Fatal(err)
	}
	r.Feed([]byte("xyz"), collect) // restored flow: match
	if len(got) != 1 || got[0] != (event{1, 5}) {
		t.Fatalf("restored flow: %v", got)
	}
}

func TestFeedCount(t *testing.T) {
	m := compileMFA(t, Options{}, "ab.*cd")
	input := []byte(strings.Repeat("ab cd ", 30))
	var n int64
	r := m.NewRunner()
	r.Feed(input, func(int32, int64) { n++ })
	r2 := m.NewRunner()
	if c := r2.FeedCount(input); c != n {
		t.Fatalf("FeedCount=%d, Feed events=%d", c, n)
	}
	if n == 0 {
		t.Fatal("expected matches")
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile([]Rule{{Pattern: nil, ID: 1}}, Options{}); err == nil {
		t.Error("nil pattern must fail")
	}
	p, err := regexparse.Parse("abc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile([]Rule{{Pattern: p, ID: 0}}, Options{}); err == nil {
		t.Error("rule id 0 must fail")
	}
}

func TestDFAStateCapPropagates(t *testing.T) {
	// A rule set the splitter cannot help (overlapping dot-stars) with a
	// tiny DFA budget must surface ErrTooManyStates.
	var sources []string
	for i := 0; i < 10; i++ {
		// Identical prefixes create overlap, refusing decomposition.
		sources = append(sources, fmt.Sprintf("ov%dx.*xov%d", i, i))
	}
	_, err := Compile(mustRules(t, sources...), Options{DFA: dfa.Options{MaxStates: 100}})
	if err == nil {
		t.Fatal("expected state-budget error")
	}
}

// TestPrependAnchorsEquivalence checks that the paper's §IV-C anchored
// scheme and our default produce identical match streams, while the
// default stays smaller — the deviation DESIGN.md §7 documents.
func TestPrependAnchorsEquivalence(t *testing.T) {
	sources := []string{"^hdr.*abc.*xyz", "^GET[^\\n]*HTTP", "^aa.*bb", "plain"}
	rules := mustRules(t, sources...)
	def, err := Compile(rules, Options{})
	if err != nil {
		t.Fatal(err)
	}
	paper, err := Compile(rules, Options{Splitter: splitter.Options{PrependAnchors: true}})
	if err != nil {
		t.Fatal(err)
	}
	inputs := [][]byte{
		[]byte("hdr abc xyz"),
		[]byte("xhdr abc xyz"),
		[]byte("GET /x HTTP plain"),
		[]byte("abc xyz hdr"),
		[]byte("aa bb hdr abc xyz GET HTTP"),
		[]byte(strings.Repeat("hdr abc xyz ", 5)),
	}
	for _, input := range inputs {
		a, b := mfaEvents(def, input), mfaEvents(paper, input)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("input %q: default %v vs prepended %v", input, a, b)
		}
	}
	if def.Stats().DFAStates > paper.Stats().DFAStates {
		t.Errorf("default should be no larger: %d vs %d",
			def.Stats().DFAStates, paper.Stats().DFAStates)
	}
	t.Logf("anchored handling: default=%d states, paper-prepend=%d states",
		def.Stats().DFAStates, paper.Stats().DFAStates)
}
