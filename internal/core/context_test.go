package core

// Flow-context save/restore correctness: SetContext is the one door
// through which external state (a serialized flow table, a handoff
// between processes, a corrupted or hostile snapshot) re-enters the
// matcher, so it must validate what it is given and must never leave the
// runner with residue from its previous flow.

import (
	"errors"
	"fmt"
	"testing"

	"matchfilter/internal/dfa"
	"matchfilter/internal/trace"
)

func feedEvents(r *Runner, data []byte) []event {
	var out []event
	r.Feed(data, func(id int32, pos int64) { out = append(out, event{id, pos}) })
	return out
}

// Corrupt contexts are rejected with ErrBadContext and leave the runner
// serviceable from the initial state.
func TestSetContextRejectsCorrupt(t *testing.T) {
	m := compileMFA(t, countingOpts(), "attack.*payload", "aa.{3,}bb")
	states := uint32(m.Stats().DFAStates)

	cases := []struct {
		name string
		call func(r *Runner) error
	}{
		{"state out of range", func(r *Runner) error {
			return r.SetContext(states, nil, nil, nil, 0)
		}},
		{"state far out of range", func(r *Runner) error {
			return r.SetContext(^uint32(0), nil, nil, nil, 0)
		}},
		{"negative position", func(r *Runner) error {
			return r.SetContext(0, nil, nil, nil, -1)
		}},
		{"oversized memory", func(r *Runner) error {
			_, mem, _, _ := r.Context()
			return r.SetContext(0, append(mem, 0), nil, nil, 0)
		}},
		{"oversized registers", func(r *Runner) error {
			_, _, regs, _ := r.Context()
			return r.SetContext(0, nil, append(regs, 0), nil, 0)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := m.NewRunner()
			err := tc.call(r)
			if !errors.Is(err, ErrBadContext) {
				t.Fatalf("err = %v, want ErrBadContext", err)
			}
			// The runner was reset, not wedged: it still matches from q0.
			evs := feedEvents(r, []byte("attack ... payload"))
			if len(evs) != 1 || evs[0].id != 1 {
				t.Fatalf("runner unusable after rejected context: %v", evs)
			}
		})
	}

	// A context a runner actually produced is always accepted.
	r := m.NewRunner()
	r.Feed([]byte("attack at"), nil)
	state, mem, regs, ctrs := r.Context()
	if err := m.NewRunner().SetContext(state, mem, regs, ctrs, r.Pos()); err != nil {
		t.Fatalf("genuine context rejected: %v", err)
	}
}

// Restoring a context must REPLACE the runner's state, not merge with
// it: a short (or nil) memory image means "those bits are zero", so a
// runner that had progressed must forget that progress entirely.
func TestSetContextClearsStaleState(t *testing.T) {
	m := compileMFA(t, Options{}, "ab.*cd")

	// Advance past the prefix: the split's test-bit for "ab" is now set.
	r := m.NewRunner()
	r.Feed([]byte("ab"), nil)

	// Restore a start-of-flow context (fresh runner's own snapshot, with
	// nil mem — the sparse spelling of "all zero").
	fresh := m.NewRunner()
	state, _, _, _ := fresh.Context()
	if err := r.SetContext(state, nil, nil, nil, 0); err != nil {
		t.Fatal(err)
	}
	if evs := feedEvents(r, []byte("cd")); len(evs) != 0 {
		t.Fatalf("stale prefix memory survived SetContext: %v", evs)
	}
	// The restored runner still works as a fresh flow.
	if evs := feedEvents(r, []byte("ab..cd")); len(evs) != 1 {
		t.Fatalf("restored runner broken: %v", evs)
	}
}

// Same property for counting state: position registers from the old flow
// must not leak through a restore that doesn't mention them.
func TestSetContextClearsStaleRegisters(t *testing.T) {
	m := compileMFA(t, countingOpts(), "aa.{3,}bb")

	r := m.NewRunner()
	r.Feed([]byte("aaxxxxx"), nil) // register armed, gap satisfied

	fresh := m.NewRunner()
	state, _, _, _ := fresh.Context()
	if err := r.SetContext(state, nil, nil, nil, 0); err != nil {
		t.Fatal(err)
	}
	if evs := feedEvents(r, []byte("bb")); len(evs) != 0 {
		t.Fatalf("stale position register survived SetContext: %v", evs)
	}
	if evs := feedEvents(r, []byte("aaxxxbb")); len(evs) != 1 {
		t.Fatalf("restored runner broken: %v", evs)
	}
}

// A context saved under one table layout restores into a runner of the
// other layout: state numbering and filter state are layout-independent,
// which is what lets a hot reload swap a flat build for a classed one
// (or vice versa) under live flows that reset onto it.
func TestCrossLayoutContextRoundTrip(t *testing.T) {
	sources := []string{"attack.*payload", "evil(roo|admin)t?", "GET /[a-z]+"}
	flat := compileMFA(t, Options{DFA: dfa.Options{Layout: dfa.LayoutFlat}}, sources...)
	classed := compileMFA(t, Options{DFA: dfa.Options{Layout: dfa.LayoutClassed}}, sources...)

	gen := trace.NewGenerator(flat.DFA(), 7)
	input := gen.Generate(nil, 8192, 0.5)
	half := len(input) / 2

	layouts := []struct {
		name     string
		src, dst *MFA
	}{
		{"flat to classed", flat, classed},
		{"classed to flat", classed, flat},
	}
	for _, lo := range layouts {
		t.Run(lo.name, func(t *testing.T) {
			// One runner scans the whole input on the source layout...
			cont := lo.src.NewRunner()
			cont.Feed(input[:half], func(int32, int64) {})
			state, mem, regs, ctrs := cont.Context()
			pos := cont.Pos()
			wantTail := feedEvents(cont, input[half:])

			// ...and a runner on the destination layout picks up its
			// mid-stream context. The tail streams must be identical.
			moved := lo.dst.NewRunner()
			if err := moved.SetContext(state, mem, regs, ctrs, pos); err != nil {
				t.Fatal(err)
			}
			gotTail := feedEvents(moved, input[half:])
			if fmt.Sprint(gotTail) != fmt.Sprint(wantTail) {
				t.Fatalf("tail streams differ after cross-layout restore:\nsrc: %v\ndst: %v",
					wantTail, gotTail)
			}
		})
	}
}

// SelfCheck accepts healthy builds of both layouts (the reload gate must
// not reject good automata) and its trace is deterministic.
func TestSelfCheckPasses(t *testing.T) {
	for _, opts := range []Options{
		{},
		{DFA: dfa.Options{Layout: dfa.LayoutFlat}},
		countingOpts(),
	} {
		m := compileMFA(t, opts, "attack.*payload", "evil", "aa.{3,}bb")
		if err := m.SelfCheck(); err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
	}
	if string(selfCheckTrace()) != string(selfCheckTrace()) {
		t.Fatal("self-check trace is not deterministic")
	}
}
