package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"matchfilter/internal/dfa"
	"matchfilter/internal/filter"
)

// Serialization of compiled MFAs: a header, the character DFA and the
// filter program, so engines can be compiled once (cmd/mfabuild -o) and
// loaded by scanners without reparsing or re-running subset construction.
const mfaMagic = "MFAUT1\n"

// ErrBadFormat is returned (wrapped) when decoding unrecognized or
// corrupt data.
var ErrBadFormat = errors.New("core: bad serialized format")

// WriteTo serializes the compiled automaton. It implements io.WriterTo.
// Construction statistics are not preserved — a loaded engine reports
// zero build time and split counters, but identical matching behaviour
// and sizes.
func (m *MFA) WriteTo(w io.Writer) (int64, error) {
	var total int64
	n, err := io.WriteString(w, mfaMagic)
	total += int64(n)
	if err != nil {
		return total, err
	}
	n64, err := m.engine.DFA().WriteTo(w)
	total += n64
	if err != nil {
		return total, err
	}
	n64, err = m.prog.WriteTo(w)
	total += n64
	return total, err
}

// ReadMFA deserializes an automaton written by WriteTo. The stream is
// buffered once here and handed to the section readers, which read
// exactly their own bytes.
func ReadMFA(r io.Reader) (*MFA, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	return readMFA(br)
}

func readMFA(r io.Reader) (*MFA, error) {
	magic := make([]byte, len(mfaMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(magic) != mfaMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadFormat, magic)
	}
	d, err := dfa.ReadDFA(r)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	prog, err := filter.ReadProgram(r)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	// Cross-validate: every decision-set id must have an action slot.
	for s := d.AcceptStart(); s < uint32(d.NumStates()); s++ {
		for _, id := range d.Matches(s) {
			if id <= 0 || int(id) >= prog.NumIDs() {
				return nil, fmt.Errorf("%w: decision id %d outside program (%d ids)",
					ErrBadFormat, id, prog.NumIDs())
			}
		}
	}
	trans, classOf, stride := d.ScanTable()
	trans2, stride2 := d.PairTable()
	return &MFA{
		engine:      dfa.NewEngine(d),
		prog:        prog,
		trans:       trans,
		classOf:     classOf,
		stride:      stride,
		trans2:      trans2,
		stride2:     stride2,
		acceptStart: d.AcceptStart(),
		accepts:     d.AcceptSets(),
		stats: BuildStats{
			DFAStates:     d.NumStates(),
			MemBits:       prog.MemBits(),
			PosRegs:       prog.NumRegs(),
			Counters:      prog.NumCounters(),
			InternalIDs:   prog.NumIDs() - 1,
			DFABytes:      d.MemoryImageBytes(),
			FilterBytes:   prog.MemoryImageBytes(),
			DFATableBytes: d.TableBytes(),
			DFAClasses:    d.NumClasses(),
			DFALayout:     d.Layout().String(),
		},
	}, nil
}

// writeString writes a length-prefixed string; readString reverses it.
// Used by the public API to persist pattern sources alongside the
// automaton.
func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader, maxLen int) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if int(n) > maxLen {
		return "", fmt.Errorf("%w: string length %d", ErrBadFormat, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// WriteStrings persists a list of pattern sources.
func WriteStrings(w io.Writer, ss []string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(ss))); err != nil {
		return err
	}
	for _, s := range ss {
		if err := writeString(w, s); err != nil {
			return err
		}
	}
	return nil
}

// ReadStrings reverses WriteStrings.
func ReadStrings(r io.Reader) ([]string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("%w: %d strings", ErrBadFormat, n)
	}
	out := make([]string, n)
	for i := range out {
		s, err := readString(r, 1<<20)
		if err != nil {
			return nil, fmt.Errorf("%w: string %d: %v", ErrBadFormat, i, err)
		}
		out[i] = s
	}
	return out, nil
}
