package core

// Batched lockstep multi-flow scanning. The single-flow Feed loop is a
// serial dependency chain — each transition-table load must retire
// before the next can issue — so on table-resident working sets the
// core sits latency-bound, not bandwidth-bound. A FlowBatcher collects
// the deferred scan work of up to MaxBatchFlows *independent* flows and
// steps them in lockstep: the inner loop advances every lane by one
// input position per round, so K independent table lookups are in
// flight per iteration and the loads' latencies overlap (the Hyperflex
// observation, realized without SIMD). Per-lane bookkeeping loads are
// off the carried chain; only each lane's own table load is on it.
//
// Match-equivalence invariant: lockstep reorders work ACROSS flows,
// never within one. Each lane consumes its own chunks strictly in
// order, runs its own filter memory/registers, and reports through its
// own callback, so every flow's (ruleID, pos) stream is byte-identical
// to what the sequential scanner produces — property-tested in
// batch_test.go and layout_equiv_test.go across all three layouts.
//
// A batch may mix runners from different MFAs (multi-tenant shards,
// cross-generation drains): lanes carry their own table views and are
// partitioned by layout, lockstepping flat, classed, and classed2
// lanes separately. Whenever a partition holds a single lane the
// batcher falls through to the plain Feed loop, so fewer-than-K ready
// flows never pay lockstep overhead.

// MaxBatchFlows caps the lockstep width. 16 lanes saturate the
// load-miss parallelism of current cores (10–16 outstanding L1 misses)
// while keeping per-lane cursors within the L1 working set; wider
// batches add bookkeeping without more overlap.
const MaxBatchFlows = 16

// batchLane is one flow's deferred scan work plus its lockstep cursor.
type batchLane struct {
	r    *Runner
	tag  any
	cb   MatchFunc
	data []byte   // chunk currently being scanned
	more [][]byte // further chunks queued by Add, in arrival order

	// Views resolved at flush time from r's MFA, cached in the lane so
	// the round loop never chases r→mfa→field pointers.
	trans   []uint32
	trans2  []uint32
	classOf []uint8
	k       uint32 // 1-byte row stride (1 for flat: states are unscaled)
	k2      uint32 // pair-row stride (classed2 only)
	div     uint32 // st → plain state divisor at write-back

	st           uint32 // layout-internal cursor: state, row base, or pair-row base
	pos          int64
	i            int // bytes of data consumed
	scaledAccept uint32
	scaled2      uint32 // classed2: acceptStart × k2

	// dead marks a lane whose match callback (or filter program)
	// panicked: the lane stops stepping, its remaining chunks are
	// dropped and its runner state is not written back (the flow is
	// about to be quarantined). Sibling lanes finish their window.
	dead bool
}

// FlowBatcher implements batched lockstep scanning over core Runners.
// It satisfies the flow.Batcher interface without importing it. Not
// safe for concurrent use: like the Runners it drives, a batcher
// belongs to one shard goroutine.
type FlowBatcher struct {
	k     int
	lanes []batchLane
	cur   any // tag of the flow whose accept path is executing, for panic attribution

	// Stashed first panic of the current flush (reap): re-raised by
	// finish once every healthy lane has completed its window, so one
	// hostile callback cannot cost sibling flows their deferred scans.
	panicked bool
	pv       any
	deadTag  any
}

// NewFlowBatcher returns a batcher stepping up to k flows in lockstep;
// k is clamped to [1, MaxBatchFlows].
func NewFlowBatcher(k int) *FlowBatcher {
	if k < 1 {
		k = 1
	}
	if k > MaxBatchFlows {
		k = MaxBatchFlows
	}
	return &FlowBatcher{k: k, lanes: make([]batchLane, 0, k)}
}

// Add defers data for runner, reporting matches through onMatch at the
// next Flush. It returns false — meaning the caller must scan inline —
// when runner is not a *core.Runner (e.g. a test decorator). A second
// Add for a runner already in the batch queues the chunk behind the
// first, preserving the flow's byte order; between flushes a runner
// must keep belonging to the same flow (flush before recycling). When
// the batch is full, Add flushes it and starts the next one.
func (b *FlowBatcher) Add(runner, tag any, data []byte, onMatch func(int32, int64)) bool {
	r, ok := runner.(*Runner)
	if !ok {
		return false
	}
	for i := range b.lanes {
		if b.lanes[i].r == r {
			b.lanes[i].more = append(b.lanes[i].more, data)
			return true
		}
	}
	if len(b.lanes) >= b.k {
		b.Flush()
	}
	b.lanes = append(b.lanes, batchLane{r: r, tag: tag, cb: onMatch, data: data})
	return true
}

// Len returns the number of flows with pending deferred work.
func (b *FlowBatcher) Len() int { return len(b.lanes) }

// Scanning returns the tag of the flow whose match path raised the
// panic unwinding out of Flush; shards use it to quarantine the
// offending flow, mirroring the single-flow path. The tag survives the
// unwind (it is cleared on normal completion and at the start of the
// next Flush), so the shard's own deferred recover can still read it.
func (b *FlowBatcher) Scanning() any { return b.cur }

// Contains reports whether runner has pending deferred work. Flow
// lifecycle events (teardown, restart, recycle) must Flush when this is
// true, or the batch would later scan into a reset or reassigned runner.
func (b *FlowBatcher) Contains(runner any) bool {
	r, ok := runner.(*Runner)
	if !ok {
		return false
	}
	for i := range b.lanes {
		if b.lanes[i].r == r {
			return true
		}
	}
	return false
}

// Flush scans all deferred work and empties the batch. Fault isolation
// matches the single-flow path: a panic raised by one flow's match
// callback (or filter program) kills only that flow's lane — every
// sibling lane still completes its window, matches delivered and state
// written back — and the panic is then re-raised from Flush with
// Scanning reporting the offending flow's tag, so the shard's recover
// path can quarantine exactly that flow. The batch is empty afterwards
// either way and the batcher stays reusable.
func (b *FlowBatcher) Flush() {
	work := b.lanes
	b.lanes = b.lanes[:0]
	b.cur = nil
	if len(work) == 0 {
		return
	}
	if len(work) == 1 {
		b.feedLane(&work[0])
		b.finish()
		return
	}
	var flat, classed, pairs [MaxBatchFlows]*batchLane
	nf, nc, np := 0, 0, 0
	for i := range work {
		la := &work[i]
		switch m := la.r.mfa; {
		case m.trans2 != nil:
			pairs[np] = la
			np++
		case m.classOf != nil:
			classed[nc] = la
			nc++
		default:
			flat[nf] = la
			nf++
		}
	}
	if np == 1 {
		b.feedLane(pairs[0])
	} else if np > 1 {
		b.lockstepPairs(pairs[:np])
	}
	if nc == 1 {
		b.feedLane(classed[0])
	} else if nc > 1 {
		b.lockstepClassed(classed[:nc])
	}
	if nf == 1 {
		b.feedLane(flat[0])
	} else if nf > 1 {
		b.lockstepFlat(flat[:nf])
	}
	b.finish()
}

// finish ends a flush: on a clean window it clears the Scanning tag; if
// reap stashed a panic it restores the dead flow's tag for Scanning and
// re-raises, after every healthy lane has already finished.
func (b *FlowBatcher) finish() {
	b.cur = nil
	if !b.panicked {
		return
	}
	pv := b.pv
	b.cur = b.deadTag
	b.panicked, b.pv, b.deadTag = false, nil, nil
	panic(pv)
}

// reap must be deferred around every call that runs user code (match
// callbacks via accept paths, filter programs): it converts a panic
// into lane death, stashing the first panic's value and tag for finish
// to re-raise once the window completes.
func (b *FlowBatcher) reap(la *batchLane) {
	r := recover()
	if r == nil {
		return
	}
	la.dead = true
	if !b.panicked {
		b.panicked, b.pv, b.deadTag = true, r, la.tag
	}
}

// feedLane scans one lane through the ordinary single-flow loop.
func (b *FlowBatcher) feedLane(la *batchLane) {
	defer b.reap(la)
	b.cur = la.tag
	la.r.Feed(la.data, la.cb)
	for _, d := range la.more {
		la.r.Feed(d, la.cb)
	}
}

// minRemaining returns the shortest current-chunk remainder across
// active lanes — the number of positions the next lockstep round steps
// every lane by.
func minRemaining(active []*batchLane) int {
	l := len(active[0].data) - active[0].i
	for _, la := range active[1:] {
		if r := len(la.data) - la.i; r < l {
			l = r
		}
	}
	return l
}

// advance moves every active lane past an L-byte round, rolling
// exhausted lanes onto their next queued chunk and retiring lanes with
// nothing left (writing the plain state number and position back into
// the lane's runner). It returns the still-active lanes.
func advance(active []*batchLane, l int) []*batchLane {
	n := 0
	for _, la := range active {
		if la.dead {
			continue // no write-back: the flow is being quarantined
		}
		la.i += l
		la.pos += int64(l)
		for la.i == len(la.data) && len(la.more) > 0 {
			la.data, la.more = la.more[0], la.more[1:]
			la.i = 0
		}
		if la.i == len(la.data) {
			la.r.dfa.SetState(la.st/la.div, la.pos)
		} else {
			active[n] = la
			n++
		}
	}
	return active[:n]
}

// retireInto hands a lone surviving lane back to the single-flow loop:
// once only one lane is active, lockstep has no overlap to exploit and
// the plain Feed loop is strictly faster.
func (b *FlowBatcher) retireInto(la *batchLane) {
	defer b.reap(la)
	la.r.dfa.SetState(la.st/la.div, la.pos)
	b.cur = la.tag
	la.r.Feed(la.data[la.i:], la.cb)
	for _, d := range la.more {
		la.r.Feed(d, la.cb)
	}
}

// acceptScaled runs the filter program for an accepting row base st
// (pre-scaled by la.k; for flat lanes k is 1 and st a plain state).
func (b *FlowBatcher) acceptScaled(la *batchLane, st uint32, pos int64) {
	defer b.reap(la)
	b.cur = la.tag
	r := la.r
	m := r.mfa
	for _, id := range m.accepts[(st-la.scaledAccept)/la.k] {
		if ruleID, ok := m.prog.ApplyAll(r.mem, r.regs, r.ctrs, id, pos); ok {
			la.cb(ruleID, pos)
		}
	}
}

// sameMFA reports whether every lane runs the same automaton — the
// dominant single-tenant case, where the lockstep loop can hoist the
// table views into locals instead of re-reading them from the lane
// structs at every step.
func sameMFA(lanes []*batchLane) bool {
	m := lanes[0].r.mfa
	for _, la := range lanes[1:] {
		if la.r.mfa != m {
			return false
		}
	}
	return true
}

// batchBlock is the strip length of the homogeneous lockstep loops: each
// lane advances batchBlock bytes before the loop moves on to the next
// lane. Per-lane bookkeeping (cursor loads, window slice headers)
// amortizes over the strip while the out-of-order window still spans
// several lanes' strips, keeping multiple independent table-load chains
// in flight. Must stay even (the pair loop steps two bytes at a time).
const batchBlock = 8

// lockstepClassed steps ≥2 classed-layout lanes in lockstep. The inner
// loop is lane-inner/position-outer: each iteration issues one table
// load per lane, and the lanes' loads are mutually independent.
func (b *FlowBatcher) lockstepClassed(lanes []*batchLane) {
	for _, la := range lanes {
		m := la.r.mfa
		la.trans = m.trans
		la.classOf = m.classOf
		la.k = uint32(m.stride)
		la.div = la.k
		la.scaledAccept = m.acceptStart * la.k
		la.st = la.r.dfa.State() * la.k
		la.pos = la.r.dfa.Pos()
	}
	if sameMFA(lanes) {
		b.lockstepClassedShared(lanes, lanes[0].r.mfa)
		return
	}
	active := lanes
	for len(active) > 0 {
		if len(active) == 1 {
			b.retireInto(active[0])
			return
		}
		l := minRemaining(active)
		for j := 0; j < l; j++ {
			for _, la := range active {
				if la.dead {
					continue
				}
				st := la.trans[la.st+uint32(la.classOf[la.data[la.i+j]])]
				la.st = st
				if st >= la.scaledAccept {
					b.acceptScaled(la, st, la.pos+int64(j))
				}
			}
		}
		active = advance(active, l)
	}
}

// lockstepClassedShared is lockstepClassed for lanes sharing one MFA:
// table views live in locals, lane states in a small array, and the
// round is strip-mined in batchBlock-byte blocks per lane.
func (b *FlowBatcher) lockstepClassedShared(active []*batchLane, m *MFA) {
	trans, classOf := m.trans, m.classOf
	scaledAccept := m.acceptStart * uint32(m.stride)
	for len(active) > 1 {
		l := minRemaining(active)
		n := len(active)
		var st [MaxBatchFlows]uint32
		var win [MaxBatchFlows][]byte
		for x := 0; x < n; x++ {
			la := active[x]
			st[x] = la.st
			win[x] = la.data[la.i : la.i+l]
		}
		for j0 := 0; j0 < l; j0 += batchBlock {
			je := j0 + batchBlock
			if je > l {
				je = l
			}
			for x := 0; x < n; x++ {
				w := win[x]
				if w == nil { // lane died mid-window
					continue
				}
				s := st[x]
				for bi, c := range w[j0:je] {
					s = trans[s+uint32(classOf[c])]
					if s >= scaledAccept {
						la := active[x]
						b.acceptScaled(la, s, la.pos+int64(j0+bi))
						if la.dead {
							win[x] = nil
							break
						}
					}
				}
				if win[x] != nil {
					st[x] = s
				}
			}
		}
		for x := 0; x < n; x++ {
			if la := active[x]; !la.dead {
				la.st = st[x]
			}
		}
		active = advance(active, l)
	}
	if len(active) == 1 {
		b.retireInto(active[0])
	}
}

// lockstepFlat is lockstepClassed over the flat layout: plain state
// numbers, one load per byte, no class map.
func (b *FlowBatcher) lockstepFlat(lanes []*batchLane) {
	for _, la := range lanes {
		m := la.r.mfa
		la.trans = m.trans
		la.k = 1
		la.div = 1
		la.scaledAccept = m.acceptStart
		la.st = la.r.dfa.State()
		la.pos = la.r.dfa.Pos()
	}
	if sameMFA(lanes) {
		b.lockstepFlatShared(lanes, lanes[0].r.mfa)
		return
	}
	active := lanes
	for len(active) > 0 {
		if len(active) == 1 {
			b.retireInto(active[0])
			return
		}
		l := minRemaining(active)
		for j := 0; j < l; j++ {
			for _, la := range active {
				if la.dead {
					continue
				}
				st := la.trans[int(la.st)<<8|int(la.data[la.i+j])]
				la.st = st
				if st >= la.scaledAccept {
					b.acceptScaled(la, st, la.pos+int64(j))
				}
			}
		}
		active = advance(active, l)
	}
}

// lockstepFlatShared is lockstepFlat for lanes sharing one MFA.
func (b *FlowBatcher) lockstepFlatShared(active []*batchLane, m *MFA) {
	trans := m.trans
	acceptStart := m.acceptStart
	for len(active) > 1 {
		l := minRemaining(active)
		n := len(active)
		var st [MaxBatchFlows]uint32
		var win [MaxBatchFlows][]byte
		for x := 0; x < n; x++ {
			la := active[x]
			st[x] = la.st
			win[x] = la.data[la.i : la.i+l]
		}
		for j0 := 0; j0 < l; j0 += batchBlock {
			je := j0 + batchBlock
			if je > l {
				je = l
			}
			for x := 0; x < n; x++ {
				w := win[x]
				if w == nil {
					continue
				}
				s := st[x]
				for bi, c := range w[j0:je] {
					s = trans[int(s)<<8|int(c)]
					if s >= acceptStart {
						la := active[x]
						b.acceptScaled(la, s, la.pos+int64(j0+bi))
						if la.dead {
							win[x] = nil
							break
						}
					}
				}
				if win[x] != nil {
					st[x] = s
				}
			}
		}
		for x := 0; x < n; x++ {
			if la := active[x]; !la.dead {
				la.st = st[x]
			}
		}
		active = advance(active, l)
	}
	if len(active) == 1 {
		b.retireInto(active[0])
	}
}

// lockstepPairs steps ≥2 classed2 lanes two bytes per round position
// over their pair tables; a round of odd length finishes with one
// 1-byte step per lane on the retained classed table. Pair boundaries
// may therefore shift between rounds — harmless, because acceptance is
// checked at every byte position regardless of how positions pair up.
func (b *FlowBatcher) lockstepPairs(lanes []*batchLane) {
	for _, la := range lanes {
		m := la.r.mfa
		la.trans = m.trans
		la.trans2 = m.trans2
		la.classOf = m.classOf
		la.k = uint32(m.stride)
		la.k2 = uint32(m.stride2)
		la.div = la.k2
		la.scaledAccept = m.acceptStart * la.k
		la.scaled2 = m.acceptStart * la.k2
		la.st = la.r.dfa.State() * la.k2
		la.pos = la.r.dfa.Pos()
	}
	if sameMFA(lanes) {
		b.lockstepPairsShared(lanes, lanes[0].r.mfa)
		return
	}
	active := lanes
	for len(active) > 0 {
		if len(active) == 1 {
			b.retireInto(active[0])
			return
		}
		l := minRemaining(active)
		p := l &^ 1
		for j := 0; j < p; j += 2 {
			for _, la := range active {
				if la.dead {
					continue
				}
				i := la.i + j
				nxt := la.trans2[la.st+uint32(la.classOf[la.data[i]])*la.k+uint32(la.classOf[la.data[i+1]])]
				if nxt >= la.scaled2 {
					nxt = b.pairSlowLane(la, j)
				}
				la.st = nxt
			}
		}
		if p < l { // odd round: a 1-byte classed step keeps the lanes aligned
			for _, la := range active {
				if la.dead {
					continue
				}
				base := la.trans[(la.st/la.k2)*la.k+uint32(la.classOf[la.data[la.i+p]])]
				if base >= la.scaledAccept {
					b.oddAccept(la, base, la.pos+int64(p))
				}
				la.st = (base / la.k) * la.k2
			}
		}
		active = advance(active, l)
	}
}

// lockstepPairsShared is lockstepPairs for lanes sharing one MFA. Only
// the even-length body of each round is strip-mined; the odd tail step
// (at most one byte per round) stays on the lane fields.
func (b *FlowBatcher) lockstepPairsShared(active []*batchLane, m *MFA) {
	trans2, classOf := m.trans2, m.classOf
	k := uint32(m.stride)
	k2 := uint32(m.stride2)
	scaled2 := m.acceptStart * k2
	for len(active) > 1 {
		l := minRemaining(active)
		p := l &^ 1
		n := len(active)
		var st [MaxBatchFlows]uint32
		var win [MaxBatchFlows][]byte
		for x := 0; x < n; x++ {
			la := active[x]
			st[x] = la.st
			win[x] = la.data[la.i : la.i+l]
		}
		for j0 := 0; j0 < p; j0 += batchBlock {
			je := j0 + batchBlock
			if je > p {
				je = p
			}
			for x := 0; x < n; x++ {
				w := win[x]
				if w == nil {
					continue
				}
				s := st[x]
				for j := j0; j < je; j += 2 {
					nxt := trans2[s+uint32(classOf[w[j]])*k+uint32(classOf[w[j+1]])]
					if nxt >= scaled2 {
						la := active[x]
						la.st = s // pairSlow replays from the pre-step state
						nxt = b.pairSlowLane(la, j)
						if la.dead {
							win[x] = nil
							break
						}
					}
					s = nxt
				}
				if win[x] != nil {
					st[x] = s
				}
			}
		}
		for x := 0; x < n; x++ {
			if la := active[x]; !la.dead {
				la.st = st[x]
			}
		}
		if p < l { // odd round: a 1-byte classed step keeps the lanes aligned
			for _, la := range active {
				if la.dead {
					continue
				}
				base := la.trans[(la.st/la.k2)*la.k+uint32(la.classOf[la.data[la.i+p]])]
				if base >= la.scaledAccept {
					b.oddAccept(la, base, la.pos+int64(p))
				}
				la.st = (base / la.k) * la.k2
			}
		}
		active = advance(active, l)
	}
	if len(active) == 1 {
		b.retireInto(active[0])
	}
}

// pairSlowLane replays one accepting pair through the lane runner's
// filter-aware slow path, under the lane's panic guard.
func (b *FlowBatcher) pairSlowLane(la *batchLane, j int) uint32 {
	defer b.reap(la)
	b.cur = la.tag
	i := la.i + j
	return la.r.pairSlow(la.st/la.k2, la.data[i], la.data[i+1], la.pos+int64(j), la.cb)
}

// oddAccept runs the filter program for an accepting 1-byte tail step
// of a classed2 lane, under the lane's panic guard.
func (b *FlowBatcher) oddAccept(la *batchLane, base uint32, pos int64) {
	defer b.reap(la)
	b.cur = la.tag
	r := la.r
	m := r.mfa
	for _, id := range m.accepts[(base-la.scaledAccept)/la.k] {
		if ruleID, ok := m.prog.ApplyAll(r.mem, r.regs, r.ctrs, id, pos); ok {
			la.cb(ruleID, pos)
		}
	}
}
