package core

// Tests for the counting-condition extension (§VI future work): gaps of
// the form .{n,} decomposed via filter position registers. The ground
// truth is the undecomposed DFA, which handles .{n,} by bounded repeat
// expansion — so exact stream equivalence is checkable.

import (
	"math/rand"
	"strings"
	"testing"

	"matchfilter/internal/splitter"
)

func countingOpts() Options {
	return Options{Splitter: splitter.Options{EnableCounting: true}}
}

// assertCountingEquivalent is assertEquivalent with the extension on.
func assertCountingEquivalent(t *testing.T, sources []string, inputs [][]byte) {
	t.Helper()
	rules := mustRules(t, sources...)
	m, err := Compile(rules, countingOpts())
	if err != nil {
		t.Fatal(err)
	}
	gt := groundTruth(t, rules)
	for _, input := range inputs {
		got := mfaEvents(m, input)
		want := dfaEvents(gt, input)
		if len(got) != len(want) {
			t.Fatalf("rules %v input %q:\nMFA  %v\ntruth %v", sources, input, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("rules %v input %q:\nMFA  %v\ntruth %v", sources, input, got, want)
			}
		}
	}
}

func TestCountingGapSplit(t *testing.T) {
	m, err := Compile(mustRules(t, "aa.{3,}bb"), countingOpts())
	if err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Split.CountingSplits != 1 {
		t.Fatalf("stats: %+v", st.Split)
	}
	if st.PosRegs != 1 {
		t.Fatalf("PosRegs = %d", st.PosRegs)
	}
	if st.NumFragments != 2 {
		t.Fatalf("fragments = %d", st.NumFragments)
	}
	// The decomposed automaton is far smaller than the expanded one.
	plain, err := Compile(mustRules(t, "aa.{10,}bb"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	counted, err := Compile(mustRules(t, "aa.{10,}bb"), countingOpts())
	if err != nil {
		t.Fatal(err)
	}
	if counted.Stats().DFAStates*4 > plain.Stats().DFAStates {
		t.Errorf("counting should shrink the automaton: %d vs %d",
			counted.Stats().DFAStates, plain.Stats().DFAStates)
	}
}

func TestCountingGapSemantics(t *testing.T) {
	// aa.{3,}bb: at least 3 bytes strictly between aa and bb.
	m, err := Compile(mustRules(t, "aa.{3,}bb"), countingOpts())
	if err != nil {
		t.Fatal(err)
	}
	for input, want := range map[string]int{
		"aabb":       0, // gap 0
		"aa.bb":      0, // gap 1
		"aa..bb":     0, // gap 2
		"aa...bb":    1, // gap 3: first qualifying match
		"aa....bb":   1,
		"aa...bb bb": 2, // both bb qualify
		"bb aa...bb": 1, // early bb dropped
		"aaa..bb":    1, // second aa-match end makes the gap exactly 3
	} {
		if got := m.Run([]byte(input)); len(got) != want {
			t.Errorf("%q: %d matches, want %d (%v)", input, len(got), want, got)
		}
	}
}

func TestCountingEquivalenceFixed(t *testing.T) {
	assertCountingEquivalent(t,
		[]string{"aa.{3,}bb"},
		[][]byte{
			[]byte("aabb"), []byte("aa.bb"), []byte("aa..bb"), []byte("aa...bb"),
			[]byte("aa.......bb"), []byte("bb...aa"), []byte("aa aa bb bb"),
			[]byte("aaxbbyaa...bb"), []byte(strings.Repeat("aa.bb.", 10)),
			[]byte("aaa..bb"), []byte("aaaa.bb"),
		})
	// Earliest-witness property: a later closer A must not mask an
	// earlier qualifying one.
	assertCountingEquivalent(t,
		[]string{"xy.{5,}zw"},
		[][]byte{
			[]byte("xy......xyzw"), // first xy qualifies, second does not
			[]byte("xyxy......zw"), // both qualify
			[]byte("xyzw......xy"), // nothing after the gap
		})
}

func TestCountingChainWithDotStar(t *testing.T) {
	// Mixed chain: dot-star guard followed by a counting gap and vice
	// versa.
	assertCountingEquivalent(t,
		[]string{"hd.*aa.{4,}bb"},
		[][]byte{
			[]byte("hd aa....bb"),
			[]byte("aa....bb hd"),      // hd after: no match
			[]byte("hd aabb"),          // gap too small
			[]byte("aa hd aa....bb"),   // early aa before hd is not a witness
			[]byte("hd..aa..aa....bb"), // two aa candidates
		})
	assertCountingEquivalent(t,
		[]string{"aa.{4,}bb.*tl"},
		[][]byte{
			[]byte("aa....bb tl"),
			[]byte("aa....tl bb"),
			[]byte("aabb....tl"),
			[]byte("aa....bb aa tl"),
		})
}

func TestCountingDoubleGap(t *testing.T) {
	assertCountingEquivalent(t,
		[]string{"aa.{2,}bb.{3,}cc"},
		[][]byte{
			[]byte("aa..bb...cc"),
			[]byte("aa..bb..cc"), // second gap too small
			[]byte("aa.bb...cc"), // first gap too small
			[]byte("bb aa..bb...cc"),
			[]byte("aa..bbbb...cc"), // later bb also a witness
			[]byte("cc aa..bb...cc cc"),
		})
}

func TestCountingVariableLengthRefused(t *testing.T) {
	// B = b+ has variable length: the gap arithmetic is undefined, so the
	// split must be refused and the rule compiled whole (still correct).
	m, err := Compile(mustRules(t, "aa.{3,}b+c"), countingOpts())
	if err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Split.CountingSplits != 0 || st.Split.RefusedVarLength != 1 {
		t.Fatalf("stats: %+v", st.Split)
	}
	assertCountingEquivalent(t,
		[]string{"aa.{3,}b+c"},
		[][]byte{
			[]byte("aa...bc"), []byte("aa...bbbbc"), []byte("aa.bc"),
			[]byte("aabbbc"), []byte("aa....bbc"),
		})
}

func TestCountingDisabledByDefault(t *testing.T) {
	m, err := Compile(mustRules(t, "aa.{3,}bb"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats().Split.CountingSplits != 0 || m.Stats().PosRegs != 0 {
		t.Fatalf("counting must be opt-in: %+v", m.Stats().Split)
	}
}

func TestCountingLeadingGapNotTrimmed(t *testing.T) {
	// .{5,}bb requires bb to end at offset >= 6; a leading counting gap
	// must not be trimmed like a leading .*.
	assertCountingEquivalent(t,
		[]string{".{5,}bb"},
		[][]byte{
			[]byte("bb"), []byte("...bb"), []byte(".....bb"), []byte("....bb"),
			[]byte("bbbbbbbb"),
		})
}

func TestCountingContextRoundTrip(t *testing.T) {
	// Registers are part of the flow context: save/restore must preserve
	// the recorded position.
	m, err := Compile(mustRules(t, "aa.{3,}bb"), countingOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := m.NewRunner()
	var got []event
	collect := func(id int32, pos int64) { got = append(got, event{id, pos}) }
	r.Feed([]byte("aa.."), collect)
	state, mem, regs, ctrs := r.Context()
	pos := r.Pos()

	r.Reset()
	r.Feed([]byte(".bb"), collect)
	if len(got) != 0 {
		t.Fatalf("fresh flow must not match: %v", got)
	}
	if err := r.SetContext(state, mem, regs, ctrs, pos); err != nil {
		t.Fatal(err)
	}
	r.Feed([]byte(".bb"), collect)
	if len(got) != 1 || got[0].pos != 6 {
		t.Fatalf("restored flow: %v", got)
	}
}

func TestCountingEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	words := []string{"aa", "bb", "cc", "xy"}
	gaps := []string{".*", ".{2,}", ".{4,}", "[^\\n]*"}
	for trial := 0; trial < 40; trial++ {
		var sb strings.Builder
		numSegs := 2 + rng.Intn(2)
		for si := 0; si < numSegs; si++ {
			if si > 0 {
				sb.WriteString(gaps[rng.Intn(len(gaps))])
			}
			sb.WriteString(words[rng.Intn(len(words))])
		}
		source := sb.String()

		var inputs [][]byte
		for ii := 0; ii < 8; ii++ {
			var in strings.Builder
			for in.Len() < 10+rng.Intn(60) {
				switch rng.Intn(4) {
				case 0:
					in.WriteString(words[rng.Intn(len(words))])
				case 1:
					in.WriteByte('.')
				case 2:
					in.WriteByte('\n')
				default:
					in.WriteString("..")
				}
			}
			inputs = append(inputs, []byte(in.String()))
		}
		assertCountingEquivalent(t, []string{source}, inputs)
	}
}
