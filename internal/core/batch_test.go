package core

import (
	"fmt"
	"strings"
	"testing"

	"matchfilter/internal/dfa"
	"matchfilter/internal/regexparse"
)

func compileTest(t testing.TB, layout dfa.Layout, sources ...string) *MFA {
	t.Helper()
	rules := make([]Rule, len(sources))
	for i, src := range sources {
		p, err := regexparse.ParsePCRE(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		rules[i] = Rule{Pattern: p, ID: int32(i + 1)}
	}
	m, err := Compile(rules, Options{DFA: dfa.Options{Layout: layout}})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestBatcherSameRunnerChunkOrder checks that multiple Adds for one
// flow inside a single batch scan in arrival order: a match spanning
// the chunk boundary must be found exactly as in a sequential scan.
func TestBatcherSameRunnerChunkOrder(t *testing.T) {
	for _, layout := range []dfa.Layout{dfa.LayoutFlat, dfa.LayoutClassed, dfa.LayoutClassed2} {
		m := compileTest(t, layout, "attack.*payload", "abc")
		input := []byte("xx abc attack with payload yy")
		want := fmt.Sprint(m.Run(input))

		b := NewFlowBatcher(8)
		r := m.NewRunner()
		var got []MatchEvent
		cb := func(id int32, pos int64) { got = append(got, MatchEvent{RuleID: id, Pos: pos}) }
		// Split mid-"attack" and mid-"payload": both chunks must land in
		// the same lane, in order. Add a second flow so Flush actually
		// locksteps rather than falling back to the single-lane path.
		r2 := m.NewRunner()
		b.Add(r, "f1", input[:9], cb)
		b.Add(r2, "f2", []byte("no matches here"), func(int32, int64) {})
		b.Add(r, "f1", input[9:23], cb)
		b.Add(r, "f1", input[23:], cb)
		if b.Len() != 2 {
			t.Fatalf("layout %v: Len = %d, want 2 lanes", layout, b.Len())
		}
		if !b.Contains(r) || b.Contains(m.NewRunner()) {
			t.Fatalf("layout %v: Contains misreports", layout)
		}
		b.Flush()
		if fmt.Sprint(got) != want {
			t.Fatalf("layout %v: batched %v, want %s", layout, got, want)
		}
	}
}

// TestBatcherMixedLayouts puts runners of all three layouts (three
// distinct MFAs) into one batch — the multi-tenant shard case — and
// checks every flow's stream against its own sequential reference.
func TestBatcherMixedLayouts(t *testing.T) {
	sources := []string{"attack.*payload", "abc", "x[0-9]+y"}
	mfas := []*MFA{
		compileTest(t, dfa.LayoutFlat, sources...),
		compileTest(t, dfa.LayoutClassed, sources...),
		compileTest(t, dfa.LayoutClassed2, sources...),
	}
	inputs := [][]byte{
		[]byte("xx abc attack with payload x12y"),
		[]byte("abcabcabc x999y zz"),
		[]byte(strings.Repeat("attack payload ", 5)),
		[]byte("no hits at all......"),
		[]byte("x1y"),
		[]byte("attack abc payload"),
	}
	b := NewFlowBatcher(MaxBatchFlows)
	streams := make([][]MatchEvent, len(inputs))
	for fi, input := range inputs {
		m := mfas[fi%len(mfas)]
		fi := fi
		b.Add(m.NewRunner(), fi, input, func(id int32, pos int64) {
			streams[fi] = append(streams[fi], MatchEvent{RuleID: id, Pos: pos})
		})
	}
	b.Flush()
	for fi, input := range inputs {
		want := fmt.Sprint(mfas[fi%len(mfas)].Run(input))
		if got := fmt.Sprint(streams[fi]); got != want {
			t.Fatalf("flow %d: got %s, want %s", fi, got, want)
		}
	}
}

// TestBatcherMixedMFAsSameLayout puts runners of two *different* MFAs
// sharing one layout into a batch, so the partition is heterogeneous
// and the generic (per-lane table view) lockstep loop runs rather than
// the shared-table fast path. Every flow's stream must still match its
// own sequential reference.
func TestBatcherMixedMFAsSameLayout(t *testing.T) {
	for _, layout := range []dfa.Layout{dfa.LayoutFlat, dfa.LayoutClassed, dfa.LayoutClassed2} {
		mfas := []*MFA{
			compileTest(t, layout, "attack.*payload", "abc"),
			compileTest(t, layout, "x[0-9]+y", "payload"),
		}
		inputs := [][]byte{
			[]byte("xx abc attack with payload x12y"),
			[]byte("abc x999y payload zz"),
			[]byte(strings.Repeat("attack payload x1y ", 4)),
			[]byte("no hits at all. odd len"),
		}
		b := NewFlowBatcher(MaxBatchFlows)
		streams := make([][]MatchEvent, len(inputs))
		for fi, input := range inputs {
			fi := fi
			b.Add(mfas[fi%2].NewRunner(), fi, input, func(id int32, pos int64) {
				streams[fi] = append(streams[fi], MatchEvent{RuleID: id, Pos: pos})
			})
		}
		b.Flush()
		for fi, input := range inputs {
			want := fmt.Sprint(mfas[fi%2].Run(input))
			if got := fmt.Sprint(streams[fi]); got != want {
				t.Fatalf("layout %v flow %d: got %s, want %s", layout, fi, got, want)
			}
		}
	}
}

// TestBatcherRejectsForeignRunner checks the inline-fallback contract:
// a runner that is not a *core.Runner (e.g. a fault-injection
// decorator) is refused so the caller scans it inline.
func TestBatcherRejectsForeignRunner(t *testing.T) {
	b := NewFlowBatcher(4)
	if b.Add(struct{ any }{}, "tag", []byte("data"), func(int32, int64) {}) {
		t.Fatal("batcher accepted a non-core runner")
	}
	if b.Contains(struct{ any }{}) {
		t.Fatal("Contains true for a non-core runner")
	}
	if b.Len() != 0 {
		t.Fatal("refused Add left residue")
	}
}

// TestBatcherFullBatchSelfFlush checks that Add beyond the batch width
// flushes the pending lanes first — no silent eviction, no lost work.
func TestBatcherFullBatchSelfFlush(t *testing.T) {
	m := compileTest(t, dfa.LayoutClassed2, "abc")
	b := NewFlowBatcher(2)
	var total int
	cb := func(int32, int64) { total++ }
	for i := 0; i < 5; i++ {
		b.Add(m.NewRunner(), i, []byte("xabcx"), cb)
	}
	if b.Len() != 1 { // 2+2 flushed, fifth pending
		t.Fatalf("Len = %d after 5 adds at width 2, want 1", b.Len())
	}
	b.Flush()
	if total != 5 {
		t.Fatalf("got %d matches across self-flushed batches, want 5", total)
	}
}

// TestBatcherPanicLeavesBatchEmpty checks the fault-isolation contract
// the shard depends on: a panic in one flow's match callback kills only
// that lane — sibling lanes still deliver all their matches and write
// back state — then the panic re-raises out of Flush with Scanning
// identifying the offending flow's tag, and the batcher is left empty.
func TestBatcherPanicLeavesBatchEmpty(t *testing.T) {
	m := compileTest(t, dfa.LayoutClassed2, "abc")
	var ok1, ok2 int
	b := NewFlowBatcher(8)
	b.Add(m.NewRunner(), "ok-1", []byte("abc abc"), func(int32, int64) { ok1++ })
	b.Add(m.NewRunner(), "boom", []byte("xx abc"), func(int32, int64) { panic("hostile callback") })
	b.Add(m.NewRunner(), "ok-2", []byte("abc"), func(int32, int64) { ok2++ })

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
			if got := b.Scanning(); got != "boom" {
				t.Fatalf("Scanning() = %v mid-unwind, want \"boom\"", got)
			}
		}()
		b.Flush()
	}()
	if b.Len() != 0 {
		t.Fatalf("batcher holds %d lanes after panic, want 0", b.Len())
	}
	if ok1 != 2 || ok2 != 1 {
		t.Fatalf("sibling lanes lost matches to the panic: ok1=%d ok2=%d, want 2,1", ok1, ok2)
	}
	// The batcher must be reusable afterwards.
	var n int
	b.Add(m.NewRunner(), "after", []byte("abc"), func(int32, int64) { n++ })
	b.Flush()
	if n != 1 {
		t.Fatalf("post-panic batch scanned %d matches, want 1", n)
	}
}

// TestBatcherWriteBackState checks that after a flush every runner
// holds the same (state, pos) context it would after sequential Feeds —
// the property flow teardown and hot reload rely on when they capture
// contexts from recently batched runners.
func TestBatcherWriteBackState(t *testing.T) {
	for _, layout := range []dfa.Layout{dfa.LayoutFlat, dfa.LayoutClassed, dfa.LayoutClassed2} {
		m := compileTest(t, layout, "attack.*payload", "abc")
		inputs := [][]byte{
			[]byte("xx abc attack wi"),  // even length
			[]byte("odd abc attack wi."), // odd length
			[]byte("attack with paylo"),
		}
		b := NewFlowBatcher(8)
		batched := make([]*Runner, len(inputs))
		for fi, input := range inputs {
			batched[fi] = m.NewRunner()
			b.Add(batched[fi], fi, input, func(int32, int64) {})
		}
		b.Flush()
		for fi, input := range inputs {
			seq := m.NewRunner()
			seq.Feed(input, func(int32, int64) {})
			bs, _, _, _ := batched[fi].Context()
			ss, _, _, _ := seq.Context()
			if bs != ss || batched[fi].Pos() != seq.Pos() {
				t.Fatalf("layout %v flow %d: batched context (%d,%d) != sequential (%d,%d)",
					layout, fi, bs, batched[fi].Pos(), ss, seq.Pos())
			}
			if bs >= uint32(m.Stats().DFAStates) {
				t.Fatalf("layout %v flow %d: written-back state %d is not a plain state number", layout, fi, bs)
			}
		}
	}
}
