package core

import (
	"fmt"
	"math/rand"
	"testing"

	"matchfilter/internal/dfa"
	"matchfilter/internal/patterns"
	"matchfilter/internal/trace"
)

// TestLayoutEquivalence is the tentpole's end-to-end property test:
// for random subsets of the named pattern sets, flat-, classed- and
// classed2-layout MFAs must emit byte-identical (id, pos) match streams
// on both uniform-random payloads and trace-generated (match-seeking)
// payloads, including when the payload arrives in arbitrary Feed chunks
// — odd-length chunks included, which exercise the classed2 1-byte tail
// path at every boundary. It runs under -race in CI.
func TestLayoutEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	sets := []string{"C7p", "C8", "C10", "S24"}
	trials := 3
	if testing.Short() {
		trials = 1
	}

	for _, set := range sets {
		all, err := patterns.Load(set)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < trials; trial++ {
			// Random non-empty subset of the set's rules, original ids kept.
			var rules []Rule
			for _, r := range all {
				if rng.Intn(2) == 0 {
					rules = append(rules, Rule{Pattern: r.Pattern, ID: r.ID})
				}
			}
			if len(rules) == 0 {
				rules = append(rules, Rule{Pattern: all[0].Pattern, ID: all[0].ID})
			}

			flat, err := Compile(rules, Options{DFA: dfa.Options{Layout: dfa.LayoutFlat}})
			if err != nil {
				t.Fatalf("%s/%d: flat compile: %v", set, trial, err)
			}
			classed, err := Compile(rules, Options{DFA: dfa.Options{Layout: dfa.LayoutClassed}})
			if err != nil {
				t.Fatalf("%s/%d: classed compile: %v", set, trial, err)
			}
			if got := classed.Stats().DFALayout; got != "classed" {
				t.Fatalf("%s/%d: classed build reports layout %q", set, trial, got)
			}
			classed2, err := Compile(rules, Options{DFA: dfa.Options{Layout: dfa.LayoutClassed2}})
			if err != nil {
				t.Fatalf("%s/%d: classed2 compile: %v", set, trial, err)
			}
			if got := classed2.Stats().DFALayout; got != "classed2" {
				t.Fatalf("%s/%d: classed2 build reports layout %q", set, trial, got)
			}
			variants := []*MFA{classed, classed2}
			names := []string{"classed", "classed2"}

			seed := int64(set[0])*1000 + int64(trial)
			gen := trace.NewGenerator(flat.DFA(), seed)
			inputs := [][]byte{
				trace.Random(4095, seed), // odd length: whole-payload tail path
				gen.Generate(nil, 4096, 0.35), // drives the automaton toward accepts
				gen.Generate(nil, 4096, 0.95), // near-adversarial: maximal match density
			}
			for ii, input := range inputs {
				want := fmt.Sprint(flat.Run(input))
				for vi, m := range variants {
					if got := fmt.Sprint(m.Run(input)); got != want {
						t.Fatalf("%s/%d input %d: match streams differ\nflat:    %s\n%s: %s",
							set, trial, ii, want, names[vi], got)
					}
				}

				// Same payload delivered in random chunks — odd lengths
				// forced on half the chunks: per-flow context must carry
				// across Feed calls identically in every layout.
				runners := []*Runner{flat.NewRunner(), classed.NewRunner(), classed2.NewRunner()}
				streams := make([][]MatchEvent, len(runners))
				for off := 0; off < len(input); {
					n := 1 + rng.Intn(700)
					if rng.Intn(2) == 0 {
						n |= 1
					}
					if off+n > len(input) {
						n = len(input) - off
					}
					for ri, r := range runners {
						ri := ri
						r.Feed(input[off:off+n], func(id int32, pos int64) {
							streams[ri] = append(streams[ri], MatchEvent{RuleID: id, Pos: pos})
						})
					}
					off += n
				}
				for ri := range runners {
					if got := fmt.Sprint(streams[ri]); got != want {
						t.Fatalf("%s/%d input %d: chunked stream %d differs from whole-payload stream",
							set, trial, ii, ri)
					}
				}
			}

			// Batched lockstep: the three inputs become three concurrent
			// flows through one FlowBatcher per layout; every flow's stream
			// must equal its flat sequential reference, for every batch
			// width including K=1 (degenerate, exercises the full-batch
			// self-flush in Add).
			for _, k := range []int{1, 2, 3, MaxBatchFlows} {
				for vi, m := range append([]*MFA{flat}, variants...) {
					name := append([]string{"flat"}, names...)[vi]
					b := NewFlowBatcher(k)
					frs := make([]*Runner, len(inputs))
					streams := make([][]MatchEvent, len(inputs))
					offs := make([]int, len(inputs))
					cbs := make([]MatchFunc, len(inputs))
					for fi := range inputs {
						frs[fi] = m.NewRunner()
						fi := fi
						cbs[fi] = func(id int32, pos int64) {
							streams[fi] = append(streams[fi], MatchEvent{RuleID: id, Pos: pos})
						}
					}
					for done := false; !done; {
						done = true
						for fi, input := range inputs {
							if offs[fi] >= len(input) {
								continue
							}
							done = false
							n := 1 + rng.Intn(1200)
							if rng.Intn(2) == 0 {
								n |= 1
							}
							if offs[fi]+n > len(input) {
								n = len(input) - offs[fi]
							}
							if !b.Add(frs[fi], fi, input[offs[fi]:offs[fi]+n], cbs[fi]) {
								t.Fatalf("%s/%d: batcher refused a core runner", set, trial)
							}
							offs[fi] += n
						}
					}
					b.Flush()
					if b.Len() != 0 || b.Scanning() != nil {
						t.Fatalf("%s/%d %s k=%d: batcher not empty after flush", set, trial, name, k)
					}
					for fi, input := range inputs {
						if got, want := fmt.Sprint(streams[fi]), fmt.Sprint(flat.Run(input)); got != want {
							t.Fatalf("%s/%d %s k=%d flow %d: batched stream differs\nwant: %s\ngot:  %s",
								set, trial, name, k, fi, want, got)
						}
					}
				}
			}
		}
	}
}
