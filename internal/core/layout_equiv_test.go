package core

import (
	"fmt"
	"math/rand"
	"testing"

	"matchfilter/internal/dfa"
	"matchfilter/internal/patterns"
	"matchfilter/internal/trace"
)

// TestLayoutEquivalence is the tentpole's end-to-end property test:
// for random subsets of the named pattern sets, a flat-layout MFA and a
// classed-layout MFA must emit byte-identical (id, pos) match streams on
// both uniform-random payloads and trace-generated (match-seeking)
// payloads, including when the payload arrives in arbitrary Feed chunks.
// It runs under -race in CI.
func TestLayoutEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	sets := []string{"C7p", "C8", "C10", "S24"}
	trials := 3
	if testing.Short() {
		trials = 1
	}

	for _, set := range sets {
		all, err := patterns.Load(set)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < trials; trial++ {
			// Random non-empty subset of the set's rules, original ids kept.
			var rules []Rule
			for _, r := range all {
				if rng.Intn(2) == 0 {
					rules = append(rules, Rule{Pattern: r.Pattern, ID: r.ID})
				}
			}
			if len(rules) == 0 {
				rules = append(rules, Rule{Pattern: all[0].Pattern, ID: all[0].ID})
			}

			flat, err := Compile(rules, Options{DFA: dfa.Options{Layout: dfa.LayoutFlat}})
			if err != nil {
				t.Fatalf("%s/%d: flat compile: %v", set, trial, err)
			}
			classed, err := Compile(rules, Options{DFA: dfa.Options{Layout: dfa.LayoutClassed}})
			if err != nil {
				t.Fatalf("%s/%d: classed compile: %v", set, trial, err)
			}
			if got := classed.Stats().DFALayout; got != "classed" {
				t.Fatalf("%s/%d: classed build reports layout %q", set, trial, got)
			}

			seed := int64(set[0])*1000 + int64(trial)
			gen := trace.NewGenerator(flat.DFA(), seed)
			inputs := [][]byte{
				trace.Random(4096, seed),
				gen.Generate(nil, 4096, 0.35), // drives the automaton toward accepts
				gen.Generate(nil, 4096, 0.95), // near-adversarial: maximal match density
			}
			for ii, input := range inputs {
				want := fmt.Sprint(flat.Run(input))
				if got := fmt.Sprint(classed.Run(input)); got != want {
					t.Fatalf("%s/%d input %d: match streams differ\nflat:    %s\nclassed: %s",
						set, trial, ii, want, got)
				}

				// Same payload delivered in random chunks: per-flow context
				// must carry across Feed calls identically in both layouts.
				fr, cr := flat.NewRunner(), classed.NewRunner()
				var fe, ce []MatchEvent
				for off := 0; off < len(input); {
					n := 1 + rng.Intn(700)
					if off+n > len(input) {
						n = len(input) - off
					}
					fr.Feed(input[off:off+n], func(id int32, pos int64) {
						fe = append(fe, MatchEvent{RuleID: id, Pos: pos})
					})
					cr.Feed(input[off:off+n], func(id int32, pos int64) {
						ce = append(ce, MatchEvent{RuleID: id, Pos: pos})
					})
					off += n
				}
				if fmt.Sprint(fe) != fmt.Sprint(ce) {
					t.Fatalf("%s/%d input %d: chunked match streams differ", set, trial, ii)
				}
				if fmt.Sprint(fe) != want {
					t.Fatalf("%s/%d input %d: chunked stream differs from whole-payload stream", set, trial, ii)
				}
			}
		}
	}
}
