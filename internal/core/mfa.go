// Package core implements the Match Filtering Automaton (MFA), the
// paper's primary contribution: a multi-match DFA over decomposed regex
// fragments whose match stream is post-processed by a stateful filter
// engine to yield exactly the matches of the original rules.
//
// Formally (§III-A) an MFA is the 9-tuple (Q, Σ, δ, q0, Di, Dq, w, D, f):
// Q, Σ, δ, q0 and the decision structure Di, Dq come from the DFA built
// over the splitter's fragments; w, D and f are the filter program. The
// per-flow matching context is the pair (q, m) — one DFA state and one
// w-bit memory — so multiplexing many flows costs a few bytes per flow
// (§III-B).
//
// Layout-independence invariant: the DFA's transition-table layout
// (flat, classed, or classed2 — dfa.Options.Layout) changes only memory
// footprint and load pattern, never behaviour. Feed produces
// byte-identical (ruleID, pos) match streams in every layout, and the
// contexts exchanged through Runner.Context/SetContext carry plain DFA
// state numbers — never layout-internal scaled row bases or pair-table
// positions — so a context saved under one layout (or one generation of
// a hot-reloaded rule set compiled with another layout) restores
// correctly, and can never resume in the middle of a classed2 byte
// pair. FlowBatcher (batch.go) preserves the same invariant: batched
// lockstep scanning reorders work across flows, never within one.
package core

import (
	"errors"
	"fmt"
	"time"

	"matchfilter/internal/dfa"
	"matchfilter/internal/filter"
	"matchfilter/internal/nfa"
	"matchfilter/internal/regexparse"
	"matchfilter/internal/splitter"
)

// Rule is one input regex and the id reported when it matches.
type Rule struct {
	Pattern *regexparse.Pattern
	ID      int32
}

// Options configures MFA compilation. The zero value is the paper's
// configuration: both decompositions enabled, safety checks on, subset
// construction without minimization.
type Options struct {
	Splitter splitter.Options
	DFA      dfa.Options
}

// BuildStats records what compilation produced, feeding the Table V and
// Figure 2/3 experiments.
type BuildStats struct {
	Split        splitter.Stats
	NumRules     int
	NumFragments int
	NFAStates    int
	DFAStates    int // the "MFA Qs" column of Table V
	MemBits      int // w
	PosRegs      int // counting-extension position registers
	Counters     int // counter registers of the bounded-repeat extension
	InternalIDs  int // |Di|
	// BuildTime is the wall-clock construction time (Figure 3).
	BuildTime time.Duration
	// SplitTime and DFATime break BuildTime down; almost all of it is
	// standard DFA construction, as §I-D claims.
	SplitTime time.Duration
	DFATime   time.Duration
	// DFABytes and FilterBytes are the memory image split of Figure 2;
	// the paper reports filters averaging under 0.2% of the image.
	DFABytes    int
	FilterBytes int
	// DFATableBytes is the transition table's share of DFABytes in its
	// actual layout (classed tables include the 256-byte class map;
	// classed2 includes the pair table plus the retained 1-byte table);
	// DFAClasses is the byte equivalence-class count (256 when flat) and
	// DFALayout names the layout ("flat", "classed" or "classed2").
	// Exposed to telemetry so /metrics and /statsz report what the scan
	// loop is actually walking.
	DFATableBytes int
	DFAClasses    int
	DFALayout     string
}

// MemoryImageBytes is the total static image (Figure 2).
func (s BuildStats) MemoryImageBytes() int { return s.DFABytes + s.FilterBytes }

// MFA is a compiled match filtering automaton. It is immutable and safe
// for concurrent use by any number of flows; per-flow state lives in
// Runner.
type MFA struct {
	engine *dfa.Engine
	prog   *filter.Program
	stats  BuildStats

	// Hot-loop views of the DFA, cached so Runner.Feed runs the
	// table-walk inline instead of through dfa.Runner callbacks.
	// classOf is nil for the flat layout; stride is the table's row
	// width (256 flat, the class count otherwise); trans2/stride2 are
	// the 2-byte-stride pair table and its row width (nil/0 unless the
	// layout is classed2). Runner.Feed branches on the layout once per
	// call, never per byte.
	trans       []uint32
	classOf     []uint8
	stride      int
	trans2      []uint32
	stride2     int
	acceptStart uint32
	accepts     [][]int32
}

// MatchFunc receives a confirmed match: the original rule id and the
// 0-based offset of the byte at which the match completed.
type MatchFunc = func(ruleID int32, pos int64)

// Compile builds the MFA for a rule set: regex splitting (Algorithm 1),
// standard subset construction over the fragments, and filter-program
// assembly.
func Compile(rules []Rule, opts Options) (*MFA, error) {
	startAll := time.Now()

	srules := make([]splitter.Rule, len(rules))
	for i, r := range rules {
		if r.Pattern == nil {
			return nil, fmt.Errorf("core: rule %d has nil pattern", r.ID)
		}
		srules[i] = splitter.Rule{Pattern: r.Pattern, RuleID: r.ID}
	}
	res, err := splitter.Split(srules, opts.Splitter)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	splitTime := time.Since(startAll)

	nfaRules := make([]nfa.Rule, len(res.Fragments))
	for i, f := range res.Fragments {
		nfaRules[i] = nfa.Rule{Pattern: f.Pattern, MatchID: int(f.InternalID)}
	}
	n, err := nfa.Build(nfaRules)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	startDFA := time.Now()
	d, err := dfa.FromNFA(n, opts.DFA)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	dfaTime := time.Since(startDFA)

	prog := res.Program()
	trans, classOf, stride := d.ScanTable()
	trans2, stride2 := d.PairTable()
	m := &MFA{
		engine:      dfa.NewEngine(d),
		prog:        prog,
		trans:       trans,
		classOf:     classOf,
		stride:      stride,
		trans2:      trans2,
		stride2:     stride2,
		acceptStart: d.AcceptStart(),
		accepts:     d.AcceptSets(),
		stats: BuildStats{
			Split:        res.Stats,
			NumRules:     len(rules),
			NumFragments: len(res.Fragments),
			NFAStates:    n.NumStates(),
			DFAStates:    d.NumStates(),
			MemBits:      res.MemBits,
			PosRegs:      res.NumRegs,
			Counters:     prog.NumCounters(),
			InternalIDs:  prog.NumIDs() - 1,
			BuildTime:    time.Since(startAll),
			SplitTime:    splitTime,
			DFATime:      dfaTime,
			DFABytes:      d.MemoryImageBytes(),
			FilterBytes:   prog.MemoryImageBytes(),
			DFATableBytes: d.TableBytes(),
			DFAClasses:    d.NumClasses(),
			DFALayout:     d.Layout().String(),
		},
	}
	return m, nil
}

// Stats returns the compilation statistics.
func (m *MFA) Stats() BuildStats { return m.stats }

// Program returns the filter program (w, D, f of the 9-tuple).
func (m *MFA) Program() *filter.Program { return m.prog }

// DFA returns the character DFA (Q, Σ, δ, q0, Di, Dq of the 9-tuple).
func (m *MFA) DFA() *dfa.DFA { return m.engine.DFA() }

// Runner is one flow's matching context: the (q, m) pair of §III-B, plus
// the position registers of the counting extension and the counter
// registers of the bounded-repeat extension when the pattern set uses
// them.
type Runner struct {
	mfa  *MFA
	dfa  *dfa.Runner
	mem  filter.Memory
	regs filter.Registers
	ctrs filter.Counters
}

// NewRunner returns a runner positioned at the start of a fresh flow,
// with DFA state q0, all-zero filter memory and unset registers.
func (m *MFA) NewRunner() *Runner {
	return &Runner{
		mfa:  m,
		dfa:  m.engine.NewRunner(),
		mem:  m.prog.NewMemory(),
		regs: m.prog.NewRegisters(),
		ctrs: m.prog.NewCounters(),
	}
}

// Reset rewinds the runner for a new flow.
func (r *Runner) Reset() {
	r.dfa.Reset()
	r.mem.Reset()
	r.regs.Reset()
	r.ctrs.Reset()
}

// Pos returns the number of bytes consumed so far.
func (r *Runner) Pos() int64 { return r.dfa.Pos() }

// Context returns the flow's saved state: the DFA state and copies of the
// filter memory, position registers and counter state (regs and ctrs are
// nil when the pattern set uses no counting gaps or counters). Together
// with Pos these fully capture parsing state, so multiplexed flows need
// only store this tuple (§III-B).
func (r *Runner) Context() (state uint32, mem filter.Memory, regs filter.Registers, ctrs filter.Counters) {
	return r.dfa.State(), r.mem.Clone(), r.regs.Clone(), r.ctrs.Clone()
}

// ErrBadContext is returned (wrapped) by SetContext when a saved flow
// context cannot belong to this automaton.
var ErrBadContext = errors.New("core: invalid flow context")

// SetContext restores a previously saved flow context, validating it
// first: a DFA state outside the automaton, a negative position,
// memory/register/counter images wider than this automaton's, or a
// counter base outside [0, pos] are rejected with an error wrapping
// ErrBadContext and the runner Reset to start-of-flow — a corrupted or
// cross-generation context must never reach the inlined Feed loop, where
// an out-of-range state would index the transition table out of bounds
// and panic, and a counter based beyond the restore position would break
// the record path's window arithmetic. Shorter or nil memory, register
// and counter images are accepted as zero-extended: the runner's own
// state is Reset before copying, so stale bits from its previous flow
// cannot survive into the restored one.
func (r *Runner) SetContext(state uint32, mem filter.Memory, regs filter.Registers, ctrs filter.Counters, pos int64) error {
	if state >= uint32(r.mfa.stats.DFAStates) || pos < 0 ||
		len(mem) > len(r.mem) || len(regs) > len(r.regs) || len(ctrs) > len(r.ctrs) {
		r.Reset()
		return fmt.Errorf("%w: state %d (of %d), pos %d, mem %d/%d words, regs %d/%d, ctrs %d/%d",
			ErrBadContext, state, r.mfa.stats.DFAStates, pos,
			len(mem), len(r.mem), len(regs), len(r.regs), len(ctrs), len(r.ctrs))
	}
	if err := r.mfa.prog.ValidateCounters(ctrs, pos); err != nil {
		r.Reset()
		return fmt.Errorf("%w: %v", ErrBadContext, err)
	}
	r.mem.Reset()
	copy(r.mem, mem)
	r.regs.Reset()
	copy(r.regs, regs)
	r.ctrs.Reset()
	copy(r.ctrs, ctrs)
	r.dfa.SetState(state, pos)
	return nil
}

// Feed advances the flow over data. Every possible match from the DFA is
// passed through the filter; onMatch is invoked only for confirmed
// matches of original rules. The DFA walk is inlined here — with the
// table layout resolved once per call, not per byte — so the composite
// engine's hot loop matches a bare DFA until a possible match needs
// filtering: one table load and compare per byte on the flat layout,
// plus one load from the always-cached 256-byte class map on the
// byte-class layout; the classed2 layout walks the δ² pair table (one
// dependent load per two bytes), taking the slow path only for pairs
// that end accepting or cross an accepting mid state, and finishing an
// odd-length chunk with a single 1-byte step.
func (r *Runner) Feed(data []byte, onMatch MatchFunc) {
	m := r.mfa
	prog := m.prog
	mem := r.mem
	regs := r.regs
	ctrs := r.ctrs
	trans := m.trans
	acceptStart := m.acceptStart
	state := r.dfa.State()
	pos := r.dfa.Pos()
	if trans2 := m.trans2; trans2 != nil {
		k := uint32(m.stride)
		s2 := uint32(m.stride2)
		classOf := m.classOf
		scaledAccept2 := acceptStart * s2
		st2 := state * s2
		n := len(data) &^ 1
		for i := 0; i < n; i += 2 {
			nxt := trans2[st2+uint32(classOf[data[i]])*k+uint32(classOf[data[i+1]])]
			if nxt >= scaledAccept2 {
				nxt = r.pairSlow(st2/s2, data[i], data[i+1], pos, onMatch)
			}
			st2 = nxt
			pos += 2
		}
		state = st2 / s2
		if n < len(data) { // odd tail: one 1-byte classed step
			base := trans[state*k+uint32(classOf[data[n]])]
			if base >= acceptStart*k {
				for _, id := range m.accepts[(base-acceptStart*k)/k] {
					if ruleID, ok := prog.ApplyAll(mem, regs, ctrs, id, pos); ok {
						onMatch(ruleID, pos)
					}
				}
			}
			state = base / k
			pos++
		}
	} else if classOf := m.classOf; classOf != nil {
		// Classed tables hold pre-scaled row bases (see dfa.ScanTable):
		// the walk is a single add per byte; state numbers are recovered
		// only at accept events and at the end of the call.
		k := uint32(m.stride)
		st := state * k
		scaledAccept := acceptStart * k
		for i := 0; i < len(data); i++ {
			st = trans[st+uint32(classOf[data[i]])]
			if st >= scaledAccept {
				for _, id := range m.accepts[(st-scaledAccept)/k] {
					if ruleID, ok := prog.ApplyAll(mem, regs, ctrs, id, pos); ok {
						onMatch(ruleID, pos)
					}
				}
			}
			pos++
		}
		state = st / k
	} else {
		for i := 0; i < len(data); i++ {
			state = trans[int(state)<<8|int(data[i])]
			if state >= acceptStart {
				for _, id := range m.accepts[state-acceptStart] {
					if ruleID, ok := prog.ApplyAll(mem, regs, ctrs, id, pos); ok {
						onMatch(ruleID, pos)
					}
				}
			}
			pos++
		}
	}
	r.dfa.SetState(state, pos)
}

// pairSlow replays one classed2 pair through the 1-byte table, running
// the filter program at the exact offset of each accepting state the
// pair visits. It is the cold path behind the pair loop's single accept
// compare; state is a plain state number, pos the offset of b1, and the
// return value is the resulting pair-row base.
func (r *Runner) pairSlow(state uint32, b1, b2 byte, pos int64, onMatch MatchFunc) uint32 {
	m := r.mfa
	k := uint32(m.stride)
	scaledAccept := m.acceptStart * k
	midBase := m.trans[state*k+uint32(m.classOf[b1])]
	if midBase >= scaledAccept {
		for _, id := range m.accepts[(midBase-scaledAccept)/k] {
			if ruleID, ok := m.prog.ApplyAll(r.mem, r.regs, r.ctrs, id, pos); ok {
				onMatch(ruleID, pos)
			}
		}
	}
	finBase := m.trans[midBase+uint32(m.classOf[b2])]
	if finBase >= scaledAccept {
		for _, id := range m.accepts[(finBase-scaledAccept)/k] {
			if ruleID, ok := m.prog.ApplyAll(r.mem, r.regs, r.ctrs, id, pos+1); ok {
				onMatch(ruleID, pos+1)
			}
		}
	}
	return (finBase / k) * uint32(m.stride2)
}

// FeedCount advances the flow and returns only the number of confirmed
// matches; the benchmark loop, free of callback allocation.
func (r *Runner) FeedCount(data []byte) int64 {
	var count int64
	r.Feed(data, func(int32, int64) { count++ })
	return count
}

// MatchEvent records one confirmed match.
type MatchEvent struct {
	RuleID int32
	Pos    int64
}

// Run scans data as one fresh flow and returns all confirmed matches in
// order; a convenience for tests and one-shot scans.
func (m *MFA) Run(data []byte) []MatchEvent {
	var out []MatchEvent
	r := m.NewRunner()
	r.Feed(data, func(id int32, pos int64) {
		out = append(out, MatchEvent{RuleID: id, Pos: pos})
	})
	return out
}
