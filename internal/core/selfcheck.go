// Pre-swap validation of compiled automata.
//
// A daemon that hot-reloads its pattern set must never let a bad image
// take down live traffic: decoding (ReadMFA) proves the bytes parse,
// but only actually *scanning* proves the transition table, decision
// sets and filter program cooperate without walking out of bounds.
// SelfCheck is that gate — it drives a runner over a built-in
// deterministic trace under a panic guard and verifies the §III-B
// context contract (save mid-stream, restore into a fresh runner,
// identical match tail) before the caller swaps the automaton in.

package core

import (
	"fmt"

	"matchfilter/internal/filter"
)

// selfCheckBytes is the built-in trace length. Large enough to push a
// runner through many states (including accept paths for protocol-ish
// rules seeded by the ASCII overlay), small enough that a reload
// validation costs well under a millisecond on the sets of Table V.
const selfCheckBytes = 64 << 10

// selfCheckTrace builds the deterministic validation input: xorshift
// noise covering the full byte alphabet, periodically interleaved with
// protocol-flavoured ASCII so rule sets anchored on printable text also
// visit their accept states.
func selfCheckTrace() []byte {
	const overlay = "GET /index.html HTTP/1.1\r\nHost: example.com\r\nUser-Agent: selfcheck\r\n\r\n" +
		"attack evil root admin select union passwd cmd.exe /bin/sh 0123456789 "
	buf := make([]byte, 0, selfCheckBytes)
	s := uint64(0x9e3779b97f4a7c15)
	for len(buf) < selfCheckBytes {
		for i := 0; i < 97 && len(buf) < selfCheckBytes; i++ {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			buf = append(buf, byte(s>>33))
		}
		buf = append(buf, overlay...)
	}
	return buf[:selfCheckBytes]
}

// SelfCheck validates that the automaton can serve: it scans the
// built-in trace start to finish (any panic — e.g. a corrupt transition
// entry escaping the decode-time checks — is caught and returned as an
// error), and verifies the flow-context round trip that multiplexed
// serving depends on: a context saved mid-stream and restored into a
// fresh runner must reproduce the exact remaining match stream, and an
// out-of-range context must be rejected. A nil return means the image
// is safe to swap into live shards.
func (m *MFA) SelfCheck() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: self-check panic: %v", r)
		}
	}()

	data := selfCheckTrace()
	half := len(data) / 2
	r := m.NewRunner()
	var full []MatchEvent
	collect := func(out *[]MatchEvent) MatchFunc {
		return func(id int32, pos int64) {
			*out = append(*out, MatchEvent{RuleID: id, Pos: pos})
		}
	}
	r.Feed(data[:half], collect(&full))
	state, mem, regs, ctrs := r.Context()
	pos := r.Pos()
	headMatches := len(full)
	r.Feed(data[half:], collect(&full))

	r2 := m.NewRunner()
	if err := r2.SetContext(state, mem, regs, ctrs, pos); err != nil {
		return fmt.Errorf("core: self-check: restoring a just-saved context: %w", err)
	}
	var tail []MatchEvent
	r2.Feed(data[half:], collect(&tail))
	want := full[headMatches:]
	if len(tail) != len(want) {
		return fmt.Errorf("core: self-check: context round trip produced %d matches, want %d",
			len(tail), len(want))
	}
	for i := range want {
		if tail[i] != want[i] {
			return fmt.Errorf("core: self-check: context round trip diverged at match %d: got %v want %v",
				i, tail[i], want[i])
		}
	}

	if err := m.NewRunner().SetContext(uint32(m.stats.DFAStates), nil, nil, nil, 0); err == nil {
		return fmt.Errorf("core: self-check: out-of-range context was not rejected")
	}
	if n := m.prog.CountersLen(); n > 0 {
		// A counter image claiming a base beyond the restore position must
		// be rejected — it would break the record path's window arithmetic
		// in the hot loop.
		bad := make(filter.Counters, n)
		bad[0] = 1 // base = 1, restored at pos 0
		if err := m.NewRunner().SetContext(0, nil, nil, bad, 0); err == nil {
			return fmt.Errorf("core: self-check: future-based counter context was not rejected")
		}
	}
	return nil
}
