package core

// Regression tests for decomposition-soundness holes that the paper's
// literally-stated conditions miss. Each case was (or would be) a false
// match under a naive implementation; the splitter must refuse the
// dangerous split so the MFA agrees with ground truth.

import (
	"math/rand"
	"strings"
	"testing"
)

// TestRepeatedSegmentSoundness: qq.*xyz.*xyz — the xyz/xyz split is
// refused (identical suffix/prefix), and the qq split must cascade-refuse
// too: a trailing fragment "xyz.*xyz" could otherwise satisfy its guard
// using an xyz occurring before qq.
func TestRepeatedSegmentSoundness(t *testing.T) {
	assertEquivalent(t, []string{"qq.*xyz.*xyz"}, [][]byte{
		[]byte("xyz qq xyz"),     // the false-match input: xyz before qq
		[]byte("qq xyz xyz"),     // the true match
		[]byte("qq xyz"),         // only one xyz
		[]byte("xyz xyz qq"),     // everything before qq
		[]byte("qq xyz xyz xyz"), // extra tail matches
		[]byte("xyzqqxyzxyz"),    // adjacent
	})
}

// TestInfixSoundness: .*b.*abc — "b" occurs inside "abc", so input "abc"
// alone must not match even though b's match (offset 1) precedes abc's
// match (offset 2). The paper's suffix/prefix condition does not catch
// this; the infix condition must.
func TestInfixSoundness(t *testing.T) {
	assertEquivalent(t, []string{"b.*abc"}, [][]byte{
		[]byte("abc"),     // the false-match input
		[]byte("b abc"),   // the true match
		[]byte("abc abc"), // first abc supplies the b for the second
		[]byte("ab abc"),
	})
}

// TestWildcardGapSoundness: ab.*x..z — "ab" can sit inside the wildcard
// positions of "x..z" (input "xabz"), again invisible to suffix/prefix
// analysis.
func TestWildcardGapSoundness(t *testing.T) {
	assertEquivalent(t, []string{"ab.*x..z"}, [][]byte{
		[]byte("xabz"),    // the false-match input
		[]byte("ab xqqz"), // the true match
		[]byte("xqqz ab"), // wrong order
		[]byte("ab xabz"), // both: matches
	})
}

// TestMidRefusalCascade: A.*B.*C.*D where only the B/C split is unsafe.
// All splits at or left of the failure must be refused; the C/D split can
// stand. (B="on", C="onx": "on" is a prefix — and infix — of "onx".)
func TestMidRefusalCascade(t *testing.T) {
	assertEquivalent(t, []string{"aq.*on.*onx.*dz"}, [][]byte{
		[]byte("on aq onx dz"), // guard content before aq: no match
		[]byte("aq on onx dz"), // true match
		[]byte("aq onx dz"),    // B missing: no match ("onx" supplies on!)
		[]byte("onx aq on dz"), // reordered: no match
		[]byte("aq on onx onx dz"),
		[]byte("dz aq on onx"),
	})
}

// TestAlmostDotStarGapSoundness mirrors the repeated-segment case for
// [^X]* separators.
func TestAlmostDotStarGapSoundness(t *testing.T) {
	assertEquivalent(t, []string{"qq[^\\n]*xyz[^\\n]*xyz"}, [][]byte{
		[]byte("xyz qq xyz"),
		[]byte("qq xyz xyz"),
		[]byte("qq xyz\nxyz"),
		[]byte("xyz\nqq xyz xyz"),
	})
}

// TestSegmentPermutationRandom generates rules whose segments are then
// emitted into inputs in random orders and densities — the adversarial
// shape for guard-bit schemes, where out-of-order segment occurrences
// must never produce a confirmed match that ground truth rejects.
func TestSegmentPermutationRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	// Word pool with deliberate prefix/suffix/infix relations.
	words := []string{"ab", "abc", "bc", "xyz", "yz", "qq", "q", "onx", "on"}
	gaps := []string{".*", "[^\\n]*"}

	for trial := 0; trial < 80; trial++ {
		numSegs := 2 + rng.Intn(3)
		segs := make([]string, numSegs)
		var sb strings.Builder
		for i := range segs {
			segs[i] = words[rng.Intn(len(words))]
			if i > 0 {
				sb.WriteString(gaps[rng.Intn(len(gaps))])
			}
			sb.WriteString(segs[i])
		}
		source := sb.String()

		inputs := make([][]byte, 0, 8)
		for ii := 0; ii < 8; ii++ {
			// Emit the rule's own segments in a random order with random
			// separators, plus occasional noise.
			var in strings.Builder
			for k := 0; k < numSegs+rng.Intn(4); k++ {
				switch rng.Intn(6) {
				case 0:
					in.WriteByte('\n')
				case 1:
					in.WriteString(" ")
				case 2:
					in.WriteString(words[rng.Intn(len(words))])
				default:
					in.WriteString(segs[rng.Intn(numSegs)])
				}
			}
			inputs = append(inputs, []byte(in.String()))
		}
		assertEquivalent(t, []string{source}, inputs)
	}
}
