package patterns

import (
	"errors"
	"strings"
	"testing"

	"matchfilter/internal/core"
	"matchfilter/internal/dfa"
	"matchfilter/internal/nfa"
	"matchfilter/internal/splitter"
)

func TestNamesAndDescribe(t *testing.T) {
	names := Names()
	if len(names) != 7 {
		t.Fatalf("want 7 sets, got %v", names)
	}
	infos := Describe()
	if len(infos) != len(names) {
		t.Fatalf("Describe length %d", len(infos))
	}
	for i, info := range infos {
		if info.Name != names[i] || info.NumRules == 0 || info.Description == "" {
			t.Errorf("info %+v", info)
		}
	}
}

func TestUnknownSet(t *testing.T) {
	if _, err := Load("nope"); err == nil {
		t.Fatal("unknown set must error")
	}
}

func TestRuleCounts(t *testing.T) {
	want := map[string]int{
		"B217p": 224, "C7p": 11, "C8": 8, "C10": 10,
		"S24": 24, "S31p": 40, "S34": 34,
	}
	for name, n := range want {
		rules, err := Load(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rules) != n {
			t.Errorf("%s: %d rules, want %d (Table V)", name, len(rules), n)
		}
		for i, r := range rules {
			if r.ID != int32(i+1) {
				t.Fatalf("%s: rule %d has id %d", name, i, r.ID)
			}
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	for _, name := range Names() {
		a, err := Sources(name)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := Sources(name)
		if strings.Join(a, "\n") != strings.Join(b, "\n") {
			t.Fatalf("%s: generation is not deterministic", name)
		}
	}
}

func TestWordScheme(t *testing.T) {
	seen := map[string]bool{}
	for n := 0; n < 300; n++ {
		w := word('x', n, n%4)
		if seen[w] {
			t.Fatalf("duplicate word %q at n=%d", w, n)
		}
		seen[w] = true
	}
}

func TestAllWords(t *testing.T) {
	words, err := AllWords("C7p")
	if err != nil {
		t.Fatal(err)
	}
	if len(words) < 10 {
		t.Fatalf("too few literals: %v", words)
	}
	for i := 1; i < len(words); i++ {
		if words[i] <= words[i-1] {
			t.Fatal("words not sorted/deduped")
		}
	}
}

// buildCounts compiles a set every way and returns (NFA Qs, DFA Qs or -1
// on budget failure, MFA Qs), reproducing a Table V row.
func buildCounts(t *testing.T, name string) (nfaQ, dfaQ, mfaQ int) {
	t.Helper()
	rules, err := Load(name)
	if err != nil {
		t.Fatal(err)
	}
	nfaRules := make([]nfa.Rule, len(rules))
	coreRules := make([]core.Rule, len(rules))
	for i, r := range rules {
		nfaRules[i] = nfa.Rule{Pattern: r.Pattern, MatchID: int(r.ID)}
		coreRules[i] = core.Rule{Pattern: r.Pattern, ID: r.ID}
	}
	n, err := nfa.Build(nfaRules)
	if err != nil {
		t.Fatal(err)
	}
	nfaQ = n.NumStates()

	d, err := dfa.FromNFA(n, dfa.Options{})
	switch {
	case errors.Is(err, dfa.ErrTooManyStates):
		dfaQ = -1
	case err != nil:
		t.Fatal(err)
	default:
		dfaQ = d.NumStates()
	}

	m, err := core.Compile(coreRules, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mfaQ = m.Stats().DFAStates
	return nfaQ, dfaQ, mfaQ
}

// TestTableVShape verifies the qualitative Table V claims on every set:
// the MFA stays NFA-scale while the DFA explodes (or fails outright for
// B217p).
func TestTableVShape(t *testing.T) {
	if testing.Short() {
		t.Skip("constructs every automaton")
	}
	for _, name := range Names() {
		nfaQ, dfaQ, mfaQ := buildCounts(t, name)
		t.Logf("%-6s NFA=%6d DFA=%8d MFA=%6d", name, nfaQ, dfaQ, mfaQ)
		if name == "B217p" {
			if dfaQ != -1 {
				t.Errorf("B217p: DFA should exceed its budget, got %d states", dfaQ)
			}
			continue
		}
		if dfaQ <= 0 {
			t.Errorf("%s: DFA should construct", name)
			continue
		}
		if mfaQ*2 > dfaQ {
			t.Errorf("%s: MFA (%d) should be far smaller than DFA (%d)", name, mfaQ, dfaQ)
		}
		if mfaQ > 12*nfaQ {
			t.Errorf("%s: MFA (%d) should stay NFA-scale (NFA=%d)", name, mfaQ, nfaQ)
		}
	}
}

// TestCSetsExplosive checks the C-set characterization: C7p's DFA is
// dramatically larger relative to its rule count.
func TestCSetsExplosive(t *testing.T) {
	if testing.Short() {
		t.Skip("constructs large automata")
	}
	_, dfaQ, mfaQ := buildCounts(t, "C7p")
	if dfaQ < 50*mfaQ {
		t.Errorf("C7p should explode: DFA=%d MFA=%d", dfaQ, mfaQ)
	}
}

// TestCounterSets verifies the bounded-repeat sets' defining claims:
// CTR8 builds under both encodings (and counters shrink it); CTR24 is
// expansion-infeasible — subset construction exceeds its state budget —
// while the counter-register path compiles it at NFA scale.
func TestCounterSets(t *testing.T) {
	if testing.Short() {
		t.Skip("constructs large automata")
	}
	load := func(name string) []core.Rule {
		rules, err := Load(name)
		if err != nil {
			t.Fatal(err)
		}
		coreRules := make([]core.Rule, len(rules))
		for i, r := range rules {
			coreRules[i] = core.Rule{Pattern: r.Pattern, ID: r.ID}
		}
		return coreRules
	}
	counterOpts := core.Options{Splitter: splitter.Options{EnableCounters: true}}

	// CTR8: both encodings build; the counter build uses counters and is
	// smaller.
	expanded, err := core.Compile(load("CTR8"), core.Options{})
	if err != nil {
		t.Fatalf("CTR8 expanded: %v", err)
	}
	counted, err := core.Compile(load("CTR8"), counterOpts)
	if err != nil {
		t.Fatalf("CTR8 counters: %v", err)
	}
	if counted.Stats().Counters != 8 || counted.Stats().Split.CounterSplits != 8 {
		t.Fatalf("CTR8 counter build stats: %+v", counted.Stats().Split)
	}
	t.Logf("CTR8 expanded=%d states, counters=%d states",
		expanded.Stats().DFAStates, counted.Stats().DFAStates)
	if counted.Stats().DFAStates*2 > expanded.Stats().DFAStates {
		t.Errorf("CTR8: counters should shrink the automaton: %d vs %d",
			counted.Stats().DFAStates, expanded.Stats().DFAStates)
	}

	// CTR24: expansion must fail on the state budget, counters must build.
	// The budget is capped below the default here so the doomed subset
	// construction fails in seconds instead of minutes (under -race the
	// full 2^17 walk alone blows the package test timeout); the
	// default-budget failure is the bench experiment's claim
	// (EXPERIMENTS.md "Bounded repeats") and CI's counter-report guard.
	capped := core.Options{}
	capped.DFA.MaxStates = 1 << 14
	if _, err := core.Compile(load("CTR24"), capped); !errors.Is(err, dfa.ErrTooManyStates) {
		t.Fatalf("CTR24 expanded build: want ErrTooManyStates, got %v", err)
	}
	big, err := core.Compile(load("CTR24"), counterOpts)
	if err != nil {
		t.Fatalf("CTR24 counters: %v", err)
	}
	st := big.Stats()
	if st.Counters != 24 || st.Split.CounterSplits != 24 {
		t.Fatalf("CTR24 counter build stats: Counters=%d %+v", st.Counters, st.Split)
	}
	t.Logf("CTR24 counters: %d states, %d counters, %d B image",
		st.DFAStates, st.Counters, st.MemoryImageBytes())
}
