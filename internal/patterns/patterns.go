// Package patterns provides the seven named rule sets of the paper's
// evaluation (Table V): B217p, C7p, C8, C10, S24, S31p and S34.
//
// The original sets are not reproducible — the C patterns are proprietary
// vendor rules, and the cited Snort/Bro snapshots are no longer published
// — so these are synthetic sets generated deterministically to match the
// paper's §V-A characterization of each family:
//
//   - C sets: few rules, heavy dot-star and almost-dot-star use, often
//     multiple separators per rule; the worst DFA state explosion.
//   - S sets: Snort-style; many almost-dot-star rules and long literal
//     strings, a few dot-stars, and a large anchored fraction.
//   - B217p: Bro-style; hundreds of unanchored literal strings with a
//     small number of dot-star rules mixed in — enough, by design, that
//     the plain DFA exceeds its construction budget ("could not be
//     constructed", Table V).
//
// Every set is a fixed function of its name: generation uses a counter-
// based word scheme, not a random source, so state counts and benchmark
// results are stable across runs and machines.
package patterns

import (
	"fmt"
	"sort"
	"strings"

	"matchfilter/internal/regexparse"
)

// Rule is one generated pattern with its 1-based rule id.
type Rule struct {
	ID      int32
	Source  string
	Pattern *regexparse.Pattern
}

// Info describes a named set.
type Info struct {
	Name        string
	Description string
	NumRules    int
}

// Names returns the available set names in the paper's Table V order.
// The bounded-repeat sets (CounterNames) are deliberately excluded: the
// default harness builds every named set by expansion, which CTR24 is
// designed to defeat.
func Names() []string {
	return []string{"B217p", "C7p", "C8", "C10", "S24", "S31p", "S34"}
}

// CounterNames returns the heavy bounded-repeat sets of the counter
// experiment. CTR8's windows are small enough that the state-expanded
// encoding still builds, giving a direct size/throughput comparison;
// CTR24's windows make subset construction track which of the last ~200
// positions ended an A-match, so its expanded DFA exceeds any practical
// state budget and only the counter-register path can compile it.
func CounterNames() []string {
	return []string{"CTR8", "CTR24"}
}

// Describe returns metadata for every named set.
func Describe() []Info {
	out := make([]Info, 0, len(Names()))
	for _, name := range Names() {
		rules, err := Load(name)
		if err != nil {
			// Generation of built-in sets cannot fail; a failure here is
			// a programming error in this package.
			panic(fmt.Sprintf("patterns: built-in set %s: %v", name, err))
		}
		out = append(out, Info{
			Name:        name,
			Description: describe(name),
			NumRules:    len(rules),
		})
	}
	return out
}

func describe(name string) string {
	switch name {
	case "B217p":
		return "Bro-style: many unanchored strings plus dot-stars; DFA-infeasible"
	case "C7p":
		return "vendor-style: few rules, multiple dot-star/almost-dot-star each"
	case "C8":
		return "vendor-style: small mixed set"
	case "C10":
		return "vendor-style: dot-star heavy, tiny MFA"
	case "S24":
		return "Snort-style: anchored almost-dot-star rules and long strings"
	case "S31p":
		return "Snort-style: larger mix with restored commented rules"
	case "S34":
		return "Snort-style: medium mix"
	case "CTR8":
		return "bounded-repeat: small windows, buildable both ways"
	case "CTR24":
		return "bounded-repeat: wide windows, expansion-infeasible"
	default:
		return ""
	}
}

// Load generates and parses the named set. Rule ids are 1..n in order.
func Load(name string) ([]Rule, error) {
	sources, err := Sources(name)
	if err != nil {
		return nil, err
	}
	rules := make([]Rule, len(sources))
	for i, src := range sources {
		p, err := regexparse.ParsePCRE(src)
		if err != nil {
			return nil, fmt.Errorf("patterns: set %s rule %d: %w", name, i+1, err)
		}
		rules[i] = Rule{ID: int32(i + 1), Source: src, Pattern: p}
	}
	return rules, nil
}

// Sources returns the regex sources of the named set.
func Sources(name string) ([]string, error) {
	switch name {
	case "B217p":
		return b217p(), nil
	case "C7p":
		return c7p(), nil
	case "C8":
		return c8(), nil
	case "C10":
		return c10(), nil
	case "S24":
		return s24(), nil
	case "S31p":
		return s31p(), nil
	case "S34":
		return s34(), nil
	case "CTR8":
		return ctr8(), nil
	case "CTR24":
		return ctr24(), nil
	default:
		return nil, fmt.Errorf("patterns: unknown set %q (known: %s)",
			name, strings.Join(Names(), ", "))
	}
}

// word generates the n-th synthetic keyword of a family. Words from
// different indices share no prefix, suffix or infix relations that would
// block decomposition: each is consonant-framed with a unique two-letter
// core, e.g. "kab", "kacem", ... The fam byte keeps families disjoint.
func word(fam byte, n, extra int) string {
	const letters = "bcdfghjklmnpqrstvwz"
	var sb strings.Builder
	sb.WriteByte(fam)
	sb.WriteByte('a' + byte(n%26))
	sb.WriteByte(letters[(n/26)%len(letters)])
	for i := 0; i < extra; i++ {
		sb.WriteByte('a' + byte((n+7*i+13)%26))
		sb.WriteByte(letters[(n*3+5*i+1)%len(letters)])
	}
	return sb.String()
}

// longWord builds a long literal (Snort "content"-style) of 2k+3 bytes.
func longWord(fam byte, n, k int) string { return word(fam, n, k) }

// c7p: 11 rules — the paper's worst DFA blowup relative to size. Nine
// unanchored gap separators multiply the DFA by ~2^9 over its string
// base while the MFA keeps every fragment additive.
func c7p() []string {
	var out []string
	// Three rules with two dot-stars (three segments) each.
	for i := 0; i < 3; i++ {
		out = append(out, fmt.Sprintf("%s.*%s.*%s",
			word('c', 3*i, 1), word('c', 3*i+1, 1), word('c', 3*i+2, 1)))
	}
	// One rule mixing a dot-star with an almost-dot-star gap.
	out = append(out, fmt.Sprintf(`%s.*%s[^\n]*%s`,
		word('d', 0, 1), word('d', 1, 1), word('d', 2, 1)))
	// One single almost-dot-star rule.
	out = append(out, fmt.Sprintf(`%s[^\n]*%s`, word('d', 3, 1), word('d', 4, 1)))
	// Six plain keyword rules.
	for i := 0; i < 6; i++ {
		out = append(out, word('f', i, 1))
	}
	return out
}

// c8: 8 milder rules (paper: 3,786 DFA states).
func c8() []string {
	var out []string
	for i := 0; i < 4; i++ {
		out = append(out, fmt.Sprintf("%s.*%s", word('g', 2*i, 1), word('g', 2*i+1, 1)))
	}
	for i := 0; i < 2; i++ {
		out = append(out, fmt.Sprintf(`%s[^\n]*%s`, word('h', 2*i, 2), word('h', 2*i+1, 2)))
	}
	out = append(out, longWord('j', 0, 6))
	out = append(out, fmt.Sprintf("%s[0-9]{4}%s", word('j', 1, 1), word('j', 2, 1)))
	return out
}

// c10: 10 dot-star-heavy rules over very short words, whose decomposition
// leaves almost nothing (paper: 19,508 DFA states but only 81 MFA states
// — fewer than the NFA).
func c10() []string {
	var out []string
	for i := 0; i < 3; i++ {
		out = append(out, fmt.Sprintf("%s.*%s.*%s",
			word('k', 3*i, 0), word('k', 3*i+1, 0), word('k', 3*i+2, 0)))
	}
	for i := 0; i < 4; i++ {
		out = append(out, fmt.Sprintf("%s.*%s", word('l', 2*i, 0), word('l', 2*i+1, 0)))
	}
	for i := 0; i < 3; i++ {
		out = append(out, word('m', i, 0))
	}
	return out
}

// sFamily builds a Snort-style mix: anchored header rules with
// almost-dot-star line gaps (cheap for the DFA — at most one anchored
// head is live per flow), long content strings, and a small number of
// unanchored gap rules that drive the DFA growth.
func sFamily(fam byte, anchored, almost, long, dotstar, insens int) []string {
	var out []string
	n := 0
	for i := 0; i < anchored; i++ {
		out = append(out, fmt.Sprintf(`^%s[^\n]*%s`, word(fam, n, 1), word(fam, n+1, 1)))
		n += 2
	}
	for i := 0; i < almost; i++ {
		out = append(out, fmt.Sprintf(`%s[^\n]*%s`, word(fam, n, 1), word(fam, n+1, 1)))
		n += 2
	}
	for i := 0; i < long; i++ {
		out = append(out, longWord(fam, n, 8))
		n++
	}
	for i := 0; i < dotstar; i++ {
		out = append(out, fmt.Sprintf("%s.*%s", word(fam, n, 2), word(fam, n+1, 2)))
		n += 2
	}
	for i := 0; i < insens; i++ {
		out = append(out, fmt.Sprintf(`/^%s[^\r\n]*%s/i`, word(fam, n, 1), word(fam, n+1, 1)))
		n += 2
	}
	return out
}

func s24() []string { return sFamily('p', 8, 2, 9, 2, 3) }

func s31p() []string { return sFamily('q', 17, 2, 13, 2, 6) }

func s34() []string { return sFamily('r', 13, 2, 12, 2, 5) }

// ctr8: 8 Snort-style bounded-repeat rules A.{n,m}B / A[^\n]{n,m}B with
// windows small enough (m <= 12) that repeat expansion still builds a
// DFA: the comparison set for measuring what counter compilation saves
// when both encodings exist.
func ctr8() []string {
	var out []string
	for i := 0; i < 4; i++ {
		out = append(out, fmt.Sprintf("%s.{%d,%d}%s",
			word('y', 2*i, 1), 4+i, 9+i, word('y', 2*i+1, 1)))
	}
	for i := 0; i < 3; i++ {
		out = append(out, fmt.Sprintf(`%s[^\n]{%d,%d}%s`,
			word('z', 2*i, 1), 3+i, 10+i, word('z', 2*i+1, 1)))
	}
	out = append(out, fmt.Sprintf("%s.{5,12}%s", word('y', 8, 2), word('y', 9, 2)))
	return out
}

// ctr24: 24 bounded-repeat rules whose windows reach into the hundreds —
// Snort distance/within-style constraints. An unanchored A.{n,m}B forces
// the subset construction to track which of the last m positions ended
// an A-match (exponentially many subsets), so the expanded DFA blows
// through its state budget and only counter registers can compile the
// set.
func ctr24() []string {
	var out []string
	for i := 0; i < 12; i++ {
		n := 40 + 15*i
		out = append(out, fmt.Sprintf("%s.{%d,%d}%s",
			word('y', 20+2*i, 1), n, n+60+5*i, word('y', 21+2*i, 1)))
	}
	for i := 0; i < 8; i++ {
		n := 30 + 20*i
		out = append(out, fmt.Sprintf(`%s[^\n]{%d,%d}%s`,
			word('z', 20+2*i, 1), n, n+80, word('z', 21+2*i, 1)))
	}
	// Four chained rules: dot-star guard into a wide bounded window.
	for i := 0; i < 4; i++ {
		out = append(out, fmt.Sprintf("%s.*%s.{%d,%d}%s",
			word('y', 50+3*i, 1), word('y', 51+3*i, 1), 50+10*i, 160+10*i, word('y', 52+3*i, 1)))
	}
	return out
}

// b217p: 224 rules, mostly unanchored strings; the 24 dot-star rules arm
// ~32 independent gap flags, so the undecomposed DFA must exceed any
// practical construction budget (Table V reports exactly this failure).
func b217p() []string {
	var out []string
	for i := 0; i < 200; i++ {
		out = append(out, word('t', i, 1+i%3))
	}
	for i := 0; i < 16; i++ {
		out = append(out, fmt.Sprintf("%s.*%s", word('v', 2*i, 1), word('v', 2*i+1, 1)))
	}
	for i := 0; i < 8; i++ {
		out = append(out, fmt.Sprintf("%s.*%s.*%s",
			word('w', 3*i, 1), word('w', 3*i+1, 1), word('w', 3*i+2, 1)))
	}
	return out
}

// AllWords returns the distinct literal segments used by a set, sorted.
// The trace synthesizer uses them to embed partial and full matches.
func AllWords(name string) ([]string, error) {
	sources, err := Sources(name)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	for _, src := range sources {
		for _, tok := range splitLiterals(src) {
			if len(tok) >= 2 {
				seen[tok] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for w := range seen {
		out = append(out, w)
	}
	sort.Strings(out)
	return out, nil
}

// splitLiterals extracts maximal lowercase-letter runs from a source.
func splitLiterals(src string) []string {
	var out []string
	var cur strings.Builder
	for i := 0; i < len(src); i++ {
		c := src[i]
		if c >= 'a' && c <= 'z' {
			cur.WriteByte(c)
			continue
		}
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}
