package filter

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

// buildProgram constructs a program with every action feature in use.
func buildProgram(t testing.TB) *Program {
	t.Helper()
	p := NewProgramRegs(8, 70, 2) // 70 bits: exercises the 2-word mask path
	g := p.AddClearGroup([]int16{0, 3, 64, 69})
	p.SetAction(1, Action{Test: NoBit, Set: 0, Clear: NoBit})
	p.SetAction(2, Action{Test: 0, Set: NoBit, Clear: NoBit, Report: 7})
	p.SetAction(3, Action{Test: NoBit, Set: NoBit, Clear: 69})
	p.SetAction(4, Action{Test: NoBit, Set: NoBit, Clear: NoBit, SetPos: 1})
	p.SetAction(5, Action{Test: NoBit, Set: NoBit, Clear: NoBit, GapReg: 1, MinGap: 12, Report: 9})
	p.SetAction(6, Action{Test: NoBit, Set: NoBit, Clear: NoBit, ClearGroup: g})
	return p
}

func TestProgramRoundTrip(t *testing.T) {
	p := buildProgram(t)
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadProgram(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(q.actions) != len(p.actions) || q.memBits != p.memBits || q.numRegs != p.numRegs {
		t.Fatalf("dimensions: got (%d,%d,%d), want (%d,%d,%d)",
			len(q.actions), q.memBits, q.numRegs, len(p.actions), p.memBits, p.numRegs)
	}
	for id := range p.actions {
		if p.actions[id] != q.actions[id] {
			t.Errorf("action %d: got %+v, want %+v", id, q.actions[id], p.actions[id])
		}
	}
	if len(q.clearGroups) != len(p.clearGroups) {
		t.Fatalf("clear groups: %d vs %d", len(q.clearGroups), len(p.clearGroups))
	}
	for g := range p.clearGroups {
		if len(q.clearGroups[g]) != len(p.clearGroups[g]) {
			t.Fatalf("group %d op count", g)
		}
		for i := range p.clearGroups[g] {
			if p.clearGroups[g][i] != q.clearGroups[g][i] {
				t.Errorf("group %d op %d: %+v vs %+v", g, i, q.clearGroups[g][i], p.clearGroups[g][i])
			}
		}
	}
}

// corrupt writes v little-endian at off in a copy of data.
func corrupt(data []byte, off int, v int16) []byte {
	out := append([]byte{}, data...)
	binary.LittleEndian.PutUint16(out[off:], uint16(v))
	return out
}

// TestDecodeValidatesEagerly: each corrupted action field is rejected
// with a descriptive ErrBadFormat error that names the offending action
// — not a recovered panic, not a silent acceptance.
func TestDecodeValidatesEagerly(t *testing.T) {
	p := buildProgram(t)
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Layout: magic(7) + header(12) + records(24 bytes each, id 0 first):
	// 5×int16 + pad + MinGap(4) + Report(4) + ClearGroup(4).
	const recBase = 7 + 12
	const recSize = 24
	rec := func(id int) int { return recBase + id*recSize }

	cases := []struct {
		name string
		data []byte
		want string // substring expected in the error
	}{
		{"bad test bit", corrupt(data, rec(1)+0, 70), "memory bit 70"},
		{"bad set bit", corrupt(data, rec(1)+2, -5), "memory bit -5"},
		{"bad clear bit", corrupt(data, rec(3)+4, 1000), "memory bit 1000"},
		{"bad setpos register", corrupt(data, rec(4)+6, 3), "register 3"},
		{"bad gap register", corrupt(data, rec(5)+8, -2), "register -2"},
		{"bad clear group", func() []byte {
			out := append([]byte{}, data...)
			binary.LittleEndian.PutUint32(out[rec(6)+20:], 99)
			return out
		}(), "clear group 99"},
		{"gap without mingap", func() []byte {
			out := append([]byte{}, data...)
			binary.LittleEndian.PutUint32(out[rec(5)+12:], 0) // MinGap = 0
			return out
		}(), "MinGap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadProgram(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("corrupt program decoded without error")
			}
			if !errors.Is(err, ErrBadFormat) {
				t.Fatalf("err = %v, not ErrBadFormat", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err %q does not name the corruption (%q)", err, tc.want)
			}
		})
	}
}

// TestDecodeTruncated: cutting the stream at any byte yields a clean
// error, never a panic.
func TestDecodeTruncated(t *testing.T) {
	p := buildProgram(t)
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut++ {
		if _, err := ReadProgram(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d decoded without error", cut, len(data))
		}
	}
}

// buildProgramV2 is buildProgram plus counter registers, forcing the v2
// wire format.
func buildProgramV2(t testing.TB) *Program {
	t.Helper()
	p := NewProgramRegs(8, 70, 2)
	g := p.AddClearGroup([]int16{0, 3, 64, 69})
	c1 := p.AddCounter(3, 12)
	c2 := p.AddCounter(1, MaxCounterGap)
	p.SetAction(1, Action{Test: NoBit, Set: 0, Clear: NoBit, SetCtr: c1})
	p.SetAction(2, Action{Test: 0, Set: NoBit, Clear: NoBit, TestCtr: c1, Report: 7})
	p.SetAction(3, Action{Test: NoBit, Set: NoBit, Clear: 69, ResetCtr: c2})
	p.SetAction(4, Action{Test: NoBit, Set: NoBit, Clear: NoBit, SetPos: 1, SetCtr: c2})
	p.SetAction(5, Action{Test: NoBit, Set: NoBit, Clear: NoBit, GapReg: 1, MinGap: 12, Report: 9})
	p.SetAction(6, Action{Test: NoBit, Set: NoBit, Clear: NoBit, ClearGroup: g})
	return p
}

func TestProgramRoundTripV2(t *testing.T) {
	p := buildProgramV2(t)
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if got := string(buf.Bytes()[:7]); got != programMagicV2 {
		t.Fatalf("program with counters serialized with magic %q", got)
	}
	q, err := ReadProgram(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(q.actions) != len(p.actions) || q.memBits != p.memBits || q.numRegs != p.numRegs {
		t.Fatalf("dimensions: got (%d,%d,%d), want (%d,%d,%d)",
			len(q.actions), q.memBits, q.numRegs, len(p.actions), p.memBits, p.numRegs)
	}
	for id := range p.actions {
		if p.actions[id] != q.actions[id] {
			t.Errorf("action %d: got %+v, want %+v", id, q.actions[id], p.actions[id])
		}
	}
	if q.NumCounters() != p.NumCounters() || q.CountersLen() != p.CountersLen() {
		t.Fatalf("counters: got (%d,%d words), want (%d,%d words)",
			q.NumCounters(), q.CountersLen(), p.NumCounters(), p.CountersLen())
	}
	for i := range p.counters {
		if p.counters[i] != q.counters[i] {
			t.Errorf("counter %d: got %+v, want %+v", i, q.counters[i], p.counters[i])
		}
	}
}

// TestCounterFreeProgramStaysV1: programs without counters keep the v1
// magic so pre-counter images and readers stay compatible byte for byte.
func TestCounterFreeProgramStaysV1(t *testing.T) {
	p := buildProgram(t)
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if got := string(buf.Bytes()[:7]); got != programMagic {
		t.Fatalf("counter-free program serialized with magic %q", got)
	}
}

// corrupt32 writes v little-endian at off in a copy of data.
func corrupt32(data []byte, off int, v uint32) []byte {
	out := append([]byte{}, data...)
	binary.LittleEndian.PutUint32(out[off:], v)
	return out
}

// TestDecodeHeaderRange: headers declaring dimensions beyond what the
// int16 action slots can address are rejected with ErrHeaderRange, in
// both wire versions. (Header layout: magic(7), then u32 numIDs, u32
// memBits, u32 numRegs[, u32 numCtrs].)
func TestDecodeHeaderRange(t *testing.T) {
	var v1, v2 bytes.Buffer
	if _, err := buildProgram(t).WriteTo(&v1); err != nil {
		t.Fatal(err)
	}
	if _, err := buildProgramV2(t).WriteTo(&v2); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"v1 memBits over int16", corrupt32(v1.Bytes(), 7+4, maxMemBits+1)},
		{"v1 numRegs over int16", corrupt32(v1.Bytes(), 7+8, maxRegs+1)},
		{"v2 memBits over int16", corrupt32(v2.Bytes(), 7+4, 1<<20)},
		{"v2 numRegs over int16", corrupt32(v2.Bytes(), 7+8, 1<<31)},
		{"v2 counters over cap", corrupt32(v2.Bytes(), 7+12, MaxCounters+1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadProgram(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("out-of-range header decoded without error")
			}
			if !errors.Is(err, ErrHeaderRange) {
				t.Fatalf("err = %v, not ErrHeaderRange", err)
			}
			if !errors.Is(err, ErrBadFormat) {
				t.Fatalf("err = %v, not ErrBadFormat", err)
			}
		})
	}
	// The maxima themselves remain decodable header values (the header
	// checks are exclusive bounds; record validation still applies).
	ok := corrupt32(v1.Bytes(), 7+8, maxRegs)
	if _, err := ReadProgram(bytes.NewReader(ok)); err != nil {
		t.Fatalf("numRegs = maxRegs rejected: %v", err)
	}
}

// TestDecodeValidatesEagerlyV2: corrupted v2 counter bounds and action
// counter slots are rejected with descriptive ErrBadFormat errors.
func TestDecodeValidatesEagerlyV2(t *testing.T) {
	p := buildProgramV2(t)
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Layout: magic(7) + header(16) + records(28 bytes each, id 0 first):
	// 8×int16 + MinGap(4) + Report(4) + ClearGroup(4); then counter
	// bounds (2×int32 each).
	const recBase = 7 + 16
	const recSize = 28
	rec := func(id int) int { return recBase + id*recSize }
	ctrBase := recBase + len(p.actions)*recSize

	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"bad setctr slot", corrupt(data, rec(1)+10, 99), "counter 99"},
		{"bad testctr slot", corrupt(data, rec(2)+12, -3), "counter -3"},
		{"bad resetctr slot", corrupt(data, rec(3)+14, 3), "counter 3"},
		{"bad test bit", corrupt(data, rec(1)+0, 70), "memory bit 70"},
		{"zero counter mingap", corrupt32(data, ctrBase+0, 0), "counter window"},
		{"inverted counter window", corrupt32(data, ctrBase+4, 1), "counter window"},
		{"counter gap over cap", corrupt32(data, ctrBase+8+4, MaxCounterGap+1), "counter window"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadProgram(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("corrupt program decoded without error")
			}
			if !errors.Is(err, ErrBadFormat) {
				t.Fatalf("err = %v, not ErrBadFormat", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err %q does not name the corruption (%q)", err, tc.want)
			}
		})
	}
}

// TestDecodeTruncatedV2: cutting a v2 stream at any byte yields a clean
// error, never a panic.
func TestDecodeTruncatedV2(t *testing.T) {
	p := buildProgramV2(t)
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut++ {
		if _, err := ReadProgram(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d decoded without error", cut, len(data))
		}
	}
}

// FuzzReadProgramV2 fuzzes the program decoder from valid v1 and v2
// seeds: any mutation must either decode to a program whose every action
// applies cleanly (probed against fresh flow state) or fail with the
// typed ErrBadFormat — no panics, no out-of-range memory, register or
// counter accesses. Run by the CI fuzz-smoke job.
func FuzzReadProgramV2(f *testing.F) {
	for _, build := range []func(testing.TB) *Program{buildProgram, buildProgramV2} {
		p := build(f)
		var buf bytes.Buffer
		if _, err := p.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadProgram(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadFormat) {
				t.Fatalf("non-typed decode error: %v", err)
			}
			return
		}
		// Whatever decoded must run: apply every action id at a few
		// positions against fresh per-flow state without panicking.
		m := p.NewMemory()
		regs := p.NewRegisters()
		cs := p.NewCounters()
		for id := int32(0); id < int32(p.NumIDs()); id++ {
			for _, pos := range []int64{0, 1, 100, 1 << 40} {
				p.ApplyAll(m, regs, cs, id, pos)
			}
		}
		if err := p.ValidateCounters(cs, 1<<40); err != nil {
			t.Fatalf("state produced by decoded program fails validation: %v", err)
		}
	})
}
