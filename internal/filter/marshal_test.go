package filter

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

// buildProgram constructs a program with every action feature in use.
func buildProgram(t *testing.T) *Program {
	t.Helper()
	p := NewProgramRegs(8, 70, 2) // 70 bits: exercises the 2-word mask path
	g := p.AddClearGroup([]int16{0, 3, 64, 69})
	p.SetAction(1, Action{Test: NoBit, Set: 0, Clear: NoBit})
	p.SetAction(2, Action{Test: 0, Set: NoBit, Clear: NoBit, Report: 7})
	p.SetAction(3, Action{Test: NoBit, Set: NoBit, Clear: 69})
	p.SetAction(4, Action{Test: NoBit, Set: NoBit, Clear: NoBit, SetPos: 1})
	p.SetAction(5, Action{Test: NoBit, Set: NoBit, Clear: NoBit, GapReg: 1, MinGap: 12, Report: 9})
	p.SetAction(6, Action{Test: NoBit, Set: NoBit, Clear: NoBit, ClearGroup: g})
	return p
}

func TestProgramRoundTrip(t *testing.T) {
	p := buildProgram(t)
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadProgram(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(q.actions) != len(p.actions) || q.memBits != p.memBits || q.numRegs != p.numRegs {
		t.Fatalf("dimensions: got (%d,%d,%d), want (%d,%d,%d)",
			len(q.actions), q.memBits, q.numRegs, len(p.actions), p.memBits, p.numRegs)
	}
	for id := range p.actions {
		if p.actions[id] != q.actions[id] {
			t.Errorf("action %d: got %+v, want %+v", id, q.actions[id], p.actions[id])
		}
	}
	if len(q.clearGroups) != len(p.clearGroups) {
		t.Fatalf("clear groups: %d vs %d", len(q.clearGroups), len(p.clearGroups))
	}
	for g := range p.clearGroups {
		if len(q.clearGroups[g]) != len(p.clearGroups[g]) {
			t.Fatalf("group %d op count", g)
		}
		for i := range p.clearGroups[g] {
			if p.clearGroups[g][i] != q.clearGroups[g][i] {
				t.Errorf("group %d op %d: %+v vs %+v", g, i, q.clearGroups[g][i], p.clearGroups[g][i])
			}
		}
	}
}

// corrupt writes v little-endian at off in a copy of data.
func corrupt(data []byte, off int, v int16) []byte {
	out := append([]byte{}, data...)
	binary.LittleEndian.PutUint16(out[off:], uint16(v))
	return out
}

// TestDecodeValidatesEagerly: each corrupted action field is rejected
// with a descriptive ErrBadFormat error that names the offending action
// — not a recovered panic, not a silent acceptance.
func TestDecodeValidatesEagerly(t *testing.T) {
	p := buildProgram(t)
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Layout: magic(7) + header(12) + records(24 bytes each, id 0 first):
	// 5×int16 + pad + MinGap(4) + Report(4) + ClearGroup(4).
	const recBase = 7 + 12
	const recSize = 24
	rec := func(id int) int { return recBase + id*recSize }

	cases := []struct {
		name string
		data []byte
		want string // substring expected in the error
	}{
		{"bad test bit", corrupt(data, rec(1)+0, 70), "memory bit 70"},
		{"bad set bit", corrupt(data, rec(1)+2, -5), "memory bit -5"},
		{"bad clear bit", corrupt(data, rec(3)+4, 1000), "memory bit 1000"},
		{"bad setpos register", corrupt(data, rec(4)+6, 3), "register 3"},
		{"bad gap register", corrupt(data, rec(5)+8, -2), "register -2"},
		{"bad clear group", func() []byte {
			out := append([]byte{}, data...)
			binary.LittleEndian.PutUint32(out[rec(6)+20:], 99)
			return out
		}(), "clear group 99"},
		{"gap without mingap", func() []byte {
			out := append([]byte{}, data...)
			binary.LittleEndian.PutUint32(out[rec(5)+12:], 0) // MinGap = 0
			return out
		}(), "MinGap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadProgram(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("corrupt program decoded without error")
			}
			if !errors.Is(err, ErrBadFormat) {
				t.Fatalf("err = %v, not ErrBadFormat", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err %q does not name the corruption (%q)", err, tc.want)
			}
		})
	}
}

// TestDecodeTruncated: cutting the stream at any byte yields a clean
// error, never a panic.
func TestDecodeTruncated(t *testing.T) {
	p := buildProgram(t)
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut++ {
		if _, err := ReadProgram(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d decoded without error", cut, len(data))
		}
	}
}
