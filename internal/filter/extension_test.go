package filter

// Tests for the two filter-engine extensions: position registers
// (counting conditions, §VI) and word-mask clear groups (cross-rule gap
// fragment sharing).

import (
	"testing"
)

func TestApplyAtGapCondition(t *testing.T) {
	p := NewProgramRegs(4, 1, 2)
	p.SetAction(1, Action{Test: NoBit, Set: NoBit, Clear: NoBit, SetPos: 1})
	p.SetAction(2, Action{Test: NoBit, Set: NoBit, Clear: NoBit, GapReg: 1, MinGap: 5, Report: 9})

	m := p.NewMemory()
	regs := p.NewRegisters()
	if len(regs) != 2 {
		t.Fatalf("registers: %d", len(regs))
	}

	// Gap test against an unset register: drop.
	if _, ok := p.ApplyAt(m, regs, 2, 100); ok {
		t.Fatal("unset register must fail the gap test")
	}
	// Record position 10 (earliest).
	p.ApplyAt(m, regs, 1, 10)
	if regs[0] != 11 {
		t.Fatalf("register should hold pos+1: %d", regs[0])
	}
	// A later occurrence must not overwrite the earliest.
	p.ApplyAt(m, regs, 1, 50)
	if regs[0] != 11 {
		t.Fatalf("earliest-match register overwritten: %d", regs[0])
	}
	// Gap 4 (pos 14): 14-10 = 4 < 5 -> drop.
	if _, ok := p.ApplyAt(m, regs, 2, 14); ok {
		t.Fatal("gap below MinGap must drop")
	}
	// Gap 5 (pos 15): confirm.
	if id, ok := p.ApplyAt(m, regs, 2, 15); !ok || id != 9 {
		t.Fatalf("gap at MinGap: (%d,%v)", id, ok)
	}
}

func TestApplyAtGapWithBitGuard(t *testing.T) {
	// Combined condition: bit guard AND gap test, as produced for chains
	// like A.*B.{n,}C.
	p := NewProgramRegs(3, 2, 1)
	p.SetAction(1, Action{Test: 0, Set: NoBit, Clear: NoBit, GapReg: 1, MinGap: 3, Report: 5})
	m := p.NewMemory()
	regs := p.NewRegisters()
	regs[0] = 1 // recorded at pos 0

	if _, ok := p.ApplyAt(m, regs, 1, 10); ok {
		t.Fatal("bit guard unset: drop even though gap passes")
	}
	m.setBit(0)
	if id, ok := p.ApplyAt(m, regs, 1, 10); !ok || id != 5 {
		t.Fatalf("both conditions met: (%d,%v)", id, ok)
	}
}

func TestApplyWithoutRegistersDropsGapActions(t *testing.T) {
	p := NewProgramRegs(2, 1, 1)
	p.SetAction(1, Action{Test: NoBit, Set: NoBit, Clear: NoBit, GapReg: 1, MinGap: 2, Report: 7})
	m := p.NewMemory()
	if _, ok := p.Apply(m, 1); ok {
		t.Fatal("Apply (no registers) must drop gap actions")
	}
}

func TestRegisterValidation(t *testing.T) {
	p := NewProgramRegs(3, 1, 1)
	cases := []Action{
		{Test: NoBit, Set: NoBit, Clear: NoBit, SetPos: 2},            // out of range
		{Test: NoBit, Set: NoBit, Clear: NoBit, SetPos: -1},           // negative
		{Test: NoBit, Set: NoBit, Clear: NoBit, GapReg: 1, MinGap: 0}, // gap without distance
	}
	for _, a := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetAction(%+v) should panic", a)
				}
			}()
			p.SetAction(1, a)
		}()
	}
	if p.NumRegs() != 1 {
		t.Errorf("NumRegs = %d", p.NumRegs())
	}
}

func TestRegistersResetClone(t *testing.T) {
	p := NewProgramRegs(2, 1, 3)
	regs := p.NewRegisters()
	regs[0], regs[2] = 5, 9
	c := regs.Clone()
	regs.Reset()
	if regs[0] != 0 || regs[2] != 0 {
		t.Error("Reset must zero registers")
	}
	if c[0] != 5 || c[2] != 9 {
		t.Error("Clone must be independent")
	}
	// Programs without registers return nil register files.
	if NewProgram(2, 1).NewRegisters() != nil {
		t.Error("no-register program should return nil")
	}
	var nilRegs Registers
	if nilRegs.Clone() != nil {
		t.Error("nil Clone should stay nil")
	}
}

func TestClearGroups(t *testing.T) {
	p := NewProgram(3, 130) // memory spans three words
	g := p.AddClearGroup([]int16{0, 63, 64, 129})
	if g != 1 || p.NumClearGroups() != 1 {
		t.Fatalf("group index %d, count %d", g, p.NumClearGroups())
	}
	ops := p.ClearGroupOps(g)
	if len(ops) != 3 {
		t.Fatalf("ops: %+v", ops)
	}
	p.SetAction(1, Action{Test: NoBit, Set: NoBit, Clear: NoBit, ClearGroup: g})

	m := p.NewMemory()
	for _, b := range []int16{0, 1, 63, 64, 100, 129} {
		m.setBit(b)
	}
	p.Apply(m, 1)
	for _, b := range []int16{0, 63, 64, 129} {
		if m.Bit(b) {
			t.Errorf("bit %d should be cleared", b)
		}
	}
	for _, b := range []int16{1, 100} {
		if !m.Bit(b) {
			t.Errorf("bit %d should survive", b)
		}
	}
}

func TestClearGroupValidation(t *testing.T) {
	p := NewProgram(2, 2)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range group bit should panic")
			}
		}()
		p.AddClearGroup([]int16{5})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unknown ClearGroup should panic")
			}
		}()
		p.SetAction(1, Action{Test: NoBit, Set: NoBit, Clear: NoBit, ClearGroup: 3})
	}()
}

func TestExtensionActionStrings(t *testing.T) {
	p := NewProgramRegs(2, 1, 2)
	_ = p
	tests := []struct {
		a    Action
		want string
	}{
		{Action{Test: NoBit, Set: NoBit, Clear: NoBit, SetPos: 1}, "Record 1"},
		{Action{Test: NoBit, Set: NoBit, Clear: NoBit, GapReg: 2, MinGap: 7, Report: 3},
			"Gap(2) >= 7 to Match"},
		{Action{Test: 0, Set: NoBit, Clear: NoBit, GapReg: 1, MinGap: 4, Report: 3},
			"Test 0 and Gap(1) >= 4 to Match"},
		{Action{Test: NoBit, Set: NoBit, Clear: NoBit, ClearGroup: 2}, "ClearGroup 2"},
	}
	for _, tt := range tests {
		if got := tt.a.String(); got != tt.want {
			t.Errorf("%+v: got %q, want %q", tt.a, got, tt.want)
		}
	}
}
