package filter

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Serialization of filter programs, versioned alongside the DFA format:
//
//	v1: magic "MFFLT1\n", u32 numIDs, u32 memBits, u32 numRegs
//	    numIDs × action records (i16 test/set/clear/setpos/gapreg,
//	    i32 mingap, i32 report, i32 cleargroup)
//	    u32 numGroups, then per group: u32 count, count × (i16 word, u64 mask)
//
//	v2: magic "MFFLT2\n", u32 numIDs, u32 memBits, u32 numRegs, u32 numCtrs
//	    numIDs × wide action records (i16 test/set/clear/setpos/gapreg/
//	    setctr/testctr/resetctr, i32 mingap, i32 report, i32 cleargroup)
//	    numCtrs × (i32 minGap, i32 maxGap)
//	    u32 numGroups, groups as in v1
//
// Programs without counter registers are written in v1 so pre-counter
// images stay byte-identical; both versions are always readable.
const (
	programMagic   = "MFFLT1\n"
	programMagicV2 = "MFFLT2\n"
)

// ErrBadFormat is returned (wrapped) when decoding unrecognized or
// corrupt data.
var ErrBadFormat = errors.New("filter: bad serialized format")

// ErrHeaderRange is returned (wrapped, alongside ErrBadFormat) when a
// header declares dimensions outside what Action's int16 slots can
// address: memory bits above 1<<15, or register/counter counts above
// their addressable maxima. Such a header is not merely implausible — no
// valid action could ever reference the excess, and the allocation it
// demands is untrusted.
var ErrHeaderRange = errors.New("filter: header dimension exceeds addressable range")

// Addressable maxima: bits are 0-based int16 indices (memBits may reach
// 1<<15 since the highest bit index is 32767); registers and counters are
// 1-based int16 indices, so their counts are capped at 32767.
const (
	maxMemBits = 1 << 15
	maxRegs    = 1<<15 - 1
)

// actionRecord is the fixed-width on-disk form of Action in v1.
type actionRecord struct {
	Test, Set, Clear, SetPos, GapReg int16
	_                                int16
	MinGap                           int32
	Report                           int32
	ClearGroup                       int32
}

// actionRecordV2 is the wide on-disk form carrying the counter slots.
type actionRecordV2 struct {
	Test, Set, Clear, SetPos, GapReg, SetCtr, TestCtr, ResetCtr int16
	MinGap                                                      int32
	Report                                                      int32
	ClearGroup                                                  int32
}

// WriteTo serializes the program. It implements io.WriterTo.
func (p *Program) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	werr := func(v any) error { return binary.Write(bw, binary.LittleEndian, v) }
	n := func() int64 { return cw.n }

	v2 := len(p.counters) > 0
	magic := programMagic
	if v2 {
		magic = programMagicV2
	}
	if _, err := bw.WriteString(magic); err != nil {
		return n(), err
	}
	header := []uint32{uint32(len(p.actions)), uint32(p.memBits), uint32(p.numRegs)}
	if v2 {
		header = append(header, uint32(len(p.counters)))
	}
	if err := werr(header); err != nil {
		return n(), err
	}
	for _, a := range p.actions {
		var rec any
		if v2 {
			rec = actionRecordV2{
				Test: a.Test, Set: a.Set, Clear: a.Clear,
				SetPos: a.SetPos, GapReg: a.GapReg,
				SetCtr: a.SetCtr, TestCtr: a.TestCtr, ResetCtr: a.ResetCtr,
				MinGap: a.MinGap, Report: a.Report, ClearGroup: a.ClearGroup,
			}
		} else {
			rec = actionRecord{
				Test: a.Test, Set: a.Set, Clear: a.Clear,
				SetPos: a.SetPos, GapReg: a.GapReg,
				MinGap: a.MinGap, Report: a.Report, ClearGroup: a.ClearGroup,
			}
		}
		if err := werr(rec); err != nil {
			return n(), err
		}
	}
	if v2 {
		for _, c := range p.counters {
			if err := werr([]int32{c.MinGap, c.MaxGap}); err != nil {
				return n(), err
			}
		}
	}
	if err := werr(uint32(len(p.clearGroups))); err != nil {
		return n(), err
	}
	for _, ops := range p.clearGroups {
		if err := werr(uint32(len(ops))); err != nil {
			return n(), err
		}
		for _, op := range ops {
			if err := werr(op.Word); err != nil {
				return n(), err
			}
			if err := werr(op.Mask); err != nil {
				return n(), err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return n(), err
	}
	return n(), nil
}

// countingWriter tracks bytes written to the underlying writer.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// ReadProgram deserializes a program written by WriteTo (either version),
// re-validating every action so corrupt data cannot address out-of-range
// bits, registers or counters. It never reads past the end of the
// serialized program; callers should pass an already-buffered reader.
func ReadProgram(r io.Reader) (*Program, error) {
	br := r
	magic := make([]byte, len(programMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	var v2 bool
	switch string(magic) {
	case programMagic:
	case programMagicV2:
		v2 = true
	default:
		return nil, fmt.Errorf("%w: magic %q", ErrBadFormat, magic)
	}
	headerLen := 3
	if v2 {
		headerLen = 4
	}
	header := make([]uint32, headerLen)
	if err := binary.Read(br, binary.LittleEndian, header); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadFormat, err)
	}
	numIDs, memBits, numRegs := header[0], header[1], header[2]
	var numCtrs uint32
	if v2 {
		numCtrs = header[3]
	}
	if numIDs == 0 || numIDs > 1<<20 {
		return nil, fmt.Errorf("%w: implausible header %v", ErrBadFormat, header)
	}
	// Action bit and register slots are int16: memory past bit 32767 and
	// registers past 32767 could never be referenced, so a header
	// declaring them is corrupt, not merely generous.
	if memBits > maxMemBits || numRegs > maxRegs {
		return nil, fmt.Errorf("%w: %w: header %v", ErrBadFormat, ErrHeaderRange, header)
	}
	if numCtrs > MaxCounters {
		return nil, fmt.Errorf("%w: %w: %d counters above %d", ErrBadFormat, ErrHeaderRange, numCtrs, MaxCounters)
	}

	p := NewProgramRegs(int(numIDs), int(memBits), int(numRegs))
	records := make([]actionRecordV2, numIDs)
	if v2 {
		if err := binary.Read(br, binary.LittleEndian, records); err != nil {
			return nil, fmt.Errorf("%w: actions: %v", ErrBadFormat, err)
		}
		for c := uint32(0); c < numCtrs; c++ {
			var bounds [2]int32
			if err := binary.Read(br, binary.LittleEndian, &bounds); err != nil {
				return nil, fmt.Errorf("%w: counter %d: %v", ErrBadFormat, c, err)
			}
			ctr := Counter{MinGap: bounds[0], MaxGap: bounds[1]}
			if err := checkCounter(ctr); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
			}
			p.counters = append(p.counters, ctr)
		}
		p.ctrLayout()
	} else {
		v1 := make([]actionRecord, numIDs)
		if err := binary.Read(br, binary.LittleEndian, v1); err != nil {
			return nil, fmt.Errorf("%w: actions: %v", ErrBadFormat, err)
		}
		for i, rec := range v1 {
			records[i] = actionRecordV2{
				Test: rec.Test, Set: rec.Set, Clear: rec.Clear,
				SetPos: rec.SetPos, GapReg: rec.GapReg,
				MinGap: rec.MinGap, Report: rec.Report, ClearGroup: rec.ClearGroup,
			}
		}
	}
	var numGroups uint32
	if err := binary.Read(br, binary.LittleEndian, &numGroups); err != nil {
		return nil, fmt.Errorf("%w: groups: %v", ErrBadFormat, err)
	}
	if numGroups > 1<<20 {
		return nil, fmt.Errorf("%w: %d clear groups", ErrBadFormat, numGroups)
	}

	for g := uint32(0); g < numGroups; g++ {
		var count uint32
		if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
			return nil, fmt.Errorf("%w: group %d: %v", ErrBadFormat, g, err)
		}
		words := (int(memBits) + 63) / 64
		if int(count) > words {
			return nil, fmt.Errorf("%w: group %d has %d ops", ErrBadFormat, g, count)
		}
		ops := make([]ClearOp, count)
		for i := range ops {
			if err := binary.Read(br, binary.LittleEndian, &ops[i].Word); err != nil {
				return nil, fmt.Errorf("%w: group %d: %v", ErrBadFormat, g, err)
			}
			if err := binary.Read(br, binary.LittleEndian, &ops[i].Mask); err != nil {
				return nil, fmt.Errorf("%w: group %d: %v", ErrBadFormat, g, err)
			}
			if int(ops[i].Word) >= words || ops[i].Word < 0 {
				return nil, fmt.Errorf("%w: group %d word %d", ErrBadFormat, g, ops[i].Word)
			}
		}
		p.clearGroups = append(p.clearGroups, ops)
	}

	// Validate every action eagerly against the decoded dimensions —
	// corrupt data surfaces as a descriptive decode error naming the
	// offending action and field, not a recovered panic.
	for id := 1; id < int(numIDs); id++ {
		rec := records[id]
		a := Action{
			Test: rec.Test, Set: rec.Set, Clear: rec.Clear,
			SetPos: rec.SetPos, GapReg: rec.GapReg,
			SetCtr: rec.SetCtr, TestCtr: rec.TestCtr, ResetCtr: rec.ResetCtr,
			MinGap: rec.MinGap, Report: rec.Report, ClearGroup: rec.ClearGroup,
		}
		if err := p.CheckAction(int32(id), a); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
		p.actions[id] = a
	}
	return p, nil
}
