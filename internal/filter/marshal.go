package filter

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Serialization of filter programs, versioned alongside the DFA format:
//
//	magic "MFFLT1\n", u32 numIDs, u32 memBits, u32 numRegs
//	numIDs × action records (i16 test/set/clear/setpos/gapreg,
//	i32 mingap, i32 report, i32 cleargroup)
//	u32 numGroups, then per group: u32 count, count × (i16 word, u64 mask)
const programMagic = "MFFLT1\n"

// ErrBadFormat is returned (wrapped) when decoding unrecognized or
// corrupt data.
var ErrBadFormat = errors.New("filter: bad serialized format")

// actionRecord is the fixed-width on-disk form of Action.
type actionRecord struct {
	Test, Set, Clear, SetPos, GapReg int16
	_                                int16
	MinGap                           int32
	Report                           int32
	ClearGroup                       int32
}

// WriteTo serializes the program. It implements io.WriterTo.
func (p *Program) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	werr := func(v any) error { return binary.Write(bw, binary.LittleEndian, v) }
	n := func() int64 { return cw.n }

	if _, err := bw.WriteString(programMagic); err != nil {
		return n(), err
	}
	header := []uint32{uint32(len(p.actions)), uint32(p.memBits), uint32(p.numRegs)}
	if err := werr(header); err != nil {
		return n(), err
	}
	for _, a := range p.actions {
		rec := actionRecord{
			Test: a.Test, Set: a.Set, Clear: a.Clear,
			SetPos: a.SetPos, GapReg: a.GapReg,
			MinGap: a.MinGap, Report: a.Report, ClearGroup: a.ClearGroup,
		}
		if err := werr(rec); err != nil {
			return n(), err
		}
	}
	if err := werr(uint32(len(p.clearGroups))); err != nil {
		return n(), err
	}
	for _, ops := range p.clearGroups {
		if err := werr(uint32(len(ops))); err != nil {
			return n(), err
		}
		for _, op := range ops {
			if err := werr(op.Word); err != nil {
				return n(), err
			}
			if err := werr(op.Mask); err != nil {
				return n(), err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return n(), err
	}
	return n(), nil
}

// countingWriter tracks bytes written to the underlying writer.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// ReadProgram deserializes a program written by WriteTo, re-validating
// every action so corrupt data cannot address out-of-range bits. It
// never reads past the end of the serialized program; callers should
// pass an already-buffered reader.
func ReadProgram(r io.Reader) (*Program, error) {
	br := r
	magic := make([]byte, len(programMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(magic) != programMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadFormat, magic)
	}
	var header [3]uint32
	if err := binary.Read(br, binary.LittleEndian, &header); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadFormat, err)
	}
	numIDs, memBits, numRegs := header[0], header[1], header[2]
	if numIDs == 0 || numIDs > 1<<20 || memBits > 1<<16 || numRegs > 1<<16 {
		return nil, fmt.Errorf("%w: implausible header %v", ErrBadFormat, header)
	}

	records := make([]actionRecord, numIDs)
	if err := binary.Read(br, binary.LittleEndian, records); err != nil {
		return nil, fmt.Errorf("%w: actions: %v", ErrBadFormat, err)
	}
	var numGroups uint32
	if err := binary.Read(br, binary.LittleEndian, &numGroups); err != nil {
		return nil, fmt.Errorf("%w: groups: %v", ErrBadFormat, err)
	}
	if numGroups > 1<<20 {
		return nil, fmt.Errorf("%w: %d clear groups", ErrBadFormat, numGroups)
	}

	p := NewProgramRegs(int(numIDs), int(memBits), int(numRegs))
	for g := uint32(0); g < numGroups; g++ {
		var count uint32
		if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
			return nil, fmt.Errorf("%w: group %d: %v", ErrBadFormat, g, err)
		}
		words := (int(memBits) + 63) / 64
		if int(count) > words {
			return nil, fmt.Errorf("%w: group %d has %d ops", ErrBadFormat, g, count)
		}
		ops := make([]ClearOp, count)
		for i := range ops {
			if err := binary.Read(br, binary.LittleEndian, &ops[i].Word); err != nil {
				return nil, fmt.Errorf("%w: group %d: %v", ErrBadFormat, g, err)
			}
			if err := binary.Read(br, binary.LittleEndian, &ops[i].Mask); err != nil {
				return nil, fmt.Errorf("%w: group %d: %v", ErrBadFormat, g, err)
			}
			if int(ops[i].Word) >= words || ops[i].Word < 0 {
				return nil, fmt.Errorf("%w: group %d word %d", ErrBadFormat, g, ops[i].Word)
			}
		}
		p.clearGroups = append(p.clearGroups, ops)
	}

	// Validate every action eagerly against the decoded dimensions —
	// corrupt data surfaces as a descriptive decode error naming the
	// offending action and field, not a recovered panic.
	for id := 1; id < int(numIDs); id++ {
		rec := records[id]
		a := Action{
			Test: rec.Test, Set: rec.Set, Clear: rec.Clear,
			SetPos: rec.SetPos, GapReg: rec.GapReg,
			MinGap: rec.MinGap, Report: rec.Report, ClearGroup: rec.ClearGroup,
		}
		if err := p.CheckAction(int32(id), a); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
		p.actions[id] = a
	}
	return p, nil
}
