package filter

import "fmt"

// Counter registers (DESIGN.md §19) extend the filter machine so that
// bounded gaps A X{n,m} B compile to per-flow counters instead of
// duplicated automaton states. The ISSUE-level op vocabulary — `inc c`,
// `test c>=n / c<=m`, `reset c` — is realized positionally: a counter
// holds the set of positions ("witnesses") where its recording fragment
// matched, each byte of traffic implicitly increments every witness's
// age, `test` asks whether any witness's age lies in [MinGap, MaxGap],
// and `reset` kills witnesses invalidated by a forbidden gap byte.
//
// A single scalar counter cannot reproduce exact regex semantics here:
// keeping only the earliest witness fails once it ages past MaxGap while
// a younger witness still qualifies, and keeping only the latest misses
// an older witness that already satisfies MinGap. Each counter therefore
// stores a base position plus a sliding bitmap of recent witnesses —
// bounded by the counter's MaxGap, so the per-flow cost is
// ceil((MaxGap+1)/64)+1 words of bitmap plus one base word.

// NoCtr marks an unused counter slot in an Action. Counters are numbered
// from 1, like position registers, so the zero value means "unused" and
// pre-counter Action literals remain valid.
const NoCtr = 0

// MaxCounterGap bounds a counter's MaxGap. It caps the per-flow bitmap at
// 66 words and, at decode time, keeps a hostile stream from declaring
// counters whose per-flow state would be unbounded. Comfortably above
// regexparse.MaxRepeatCount plus any realistic trailing-segment length.
const MaxCounterGap = 1 << 12

// MaxCounters bounds how many counters one program may declare: the
// Action slots addressing them are int16, and each counter costs per-flow
// state, so the cap also bounds what a decoded program can demand.
const MaxCounters = 4096

// Counter is the static descriptor of one counter register: the inclusive
// window, in bytes of gap distance, within which a recorded witness
// satisfies the counter's test. For a rule A X{n,m} B with fixed B-length
// L, MinGap = n + L and MaxGap = m + L.
type Counter struct {
	MinGap int32
	MaxGap int32
}

// spanWords returns the number of bitmap words a counter's per-flow block
// needs. The extra word guarantees that rebasing by whole words (the only
// rebase granularity) can always bring a new witness position in range
// without dropping an unexpired one: (spanWords-1)*64 >= MaxGap+1.
func (c Counter) spanWords() int {
	return int(c.MaxGap+1+63)/64 + 1
}

// AddCounter registers a counter with the given witness window, returning
// its 1-based index for use in Action.SetCtr/TestCtr/ResetCtr. It panics
// on out-of-range bounds: the splitter derives them, so a bad value is a
// construction bug. Untrusted inputs are validated by ReadProgram.
func (p *Program) AddCounter(minGap, maxGap int32) int16 {
	if err := checkCounter(Counter{MinGap: minGap, MaxGap: maxGap}); err != nil {
		panic(err.Error())
	}
	if len(p.counters) >= MaxCounters {
		panic(fmt.Sprintf("filter: more than %d counters", MaxCounters))
	}
	p.counters = append(p.counters, Counter{MinGap: minGap, MaxGap: maxGap})
	p.ctrLayout()
	return int16(len(p.counters))
}

// checkCounter validates one counter descriptor; shared by the
// construction panic path and the decode error path.
func checkCounter(c Counter) error {
	if c.MinGap < 1 || c.MaxGap < c.MinGap || c.MaxGap > MaxCounterGap {
		return fmt.Errorf("filter: counter window [%d,%d] outside [1,%d]", c.MinGap, c.MaxGap, MaxCounterGap)
	}
	return nil
}

// ctrLayout recomputes the flattened per-flow block offsets. Block i holds
// one base word followed by spanWords bitmap words.
func (p *Program) ctrLayout() {
	p.ctrOff = p.ctrOff[:0]
	total := 0
	for _, c := range p.counters {
		p.ctrOff = append(p.ctrOff, int32(total))
		total += 1 + c.spanWords()
	}
	p.ctrTotal = total
}

// NumCounters returns the number of counter registers the program uses.
func (p *Program) NumCounters() int { return len(p.counters) }

// CounterBounds returns the descriptor of the 1-based counter c.
func (p *Program) CounterBounds(c int16) Counter { return p.counters[c-1] }

// CountersLen returns the per-flow counter-state size in words — the
// length NewCounters allocates and SetContext accepts.
func (p *Program) CountersLen() int { return p.ctrTotal }

// Counters is one flow's counter state: the concatenated per-counter
// blocks (base word, then bitmap words). Like Memory and Registers it is
// owned by one flow at a time and not safe for concurrent use.
type Counters []uint64

// NewCounters allocates zeroed counter state for the program, or nil when
// the program uses no counters.
func (p *Program) NewCounters() Counters {
	if p.ctrTotal == 0 {
		return nil
	}
	return make(Counters, p.ctrTotal)
}

// Reset zeroes the counter state for reuse on a new flow.
func (c Counters) Reset() {
	for i := range c {
		c[i] = 0
	}
}

// Clone returns an independent copy, used when flow contexts are saved.
func (c Counters) Clone() Counters {
	if c == nil {
		return nil
	}
	out := make(Counters, len(c))
	copy(out, c)
	return out
}

// ValidateCounters checks a restored (possibly truncated, zero-extended)
// counter image against the program's layout: every counter base word
// present in cs must lie in [0, pos]. Bases only ever hold positions the
// flow has passed, so anything else marks a corrupted or foreign context;
// a base beyond pos would additionally break ctrRecord's window
// arithmetic. Bitmap bits are not constrained — stray witnesses cannot
// index out of range, only report matches the context claimed.
func (p *Program) ValidateCounters(cs Counters, pos int64) error {
	for i := range p.counters {
		off := int(p.ctrOff[i])
		if off >= len(cs) {
			break
		}
		if base := int64(cs[off]); base < 0 || base > pos {
			return fmt.Errorf("filter: counter %d base %d outside [0,%d]", i+1, base, pos)
		}
	}
	return nil
}

// ctrRecord records a witness at pos in counter c, rebasing the bitmap
// window forward (in whole words) when pos has outrun it. Rebasing drops
// only positions whose age already exceeds MaxGap+1 at pos — and ages
// only grow — so no witness that could still satisfy a future test is
// lost.
func (p *Program) ctrRecord(cs Counters, c int16, pos int64) {
	off := p.ctrOff[c-1]
	w := p.counters[c-1].spanWords()
	base := int64(cs[off])
	bm := cs[off+1 : int(off)+1+w]
	idx := pos - base
	if idx < 0 {
		// Unreachable under the SetContext invariant (base <= restore
		// position, and positions only grow); dropping the witness is the
		// safe degradation if it ever breaks.
		return
	}
	if idx >= int64(w)*64 {
		shift := idx/64 - int64(w-1)
		if shift >= int64(w) {
			for i := range bm {
				bm[i] = 0
			}
		} else {
			copy(bm, bm[shift:])
			for i := int64(w) - shift; i < int64(w); i++ {
				bm[i] = 0
			}
		}
		base += shift * 64
		cs[off] = uint64(base)
		idx = pos - base
	}
	bm[idx>>6] |= 1 << uint(idx&63)
}

// ctrTest reports whether counter c holds a witness whose distance from
// pos lies within the counter's [MinGap, MaxGap] window.
func (p *Program) ctrTest(cs Counters, c int16, pos int64) bool {
	ctr := p.counters[c-1]
	off := p.ctrOff[c-1]
	w := ctr.spanWords()
	base := int64(cs[off])
	bm := cs[off+1 : int(off)+1+w]
	lo := pos - int64(ctr.MaxGap)
	hi := pos - int64(ctr.MinGap)
	if hi < base || lo >= base+int64(w)*64 {
		return false
	}
	if lo < base {
		lo = base
	}
	if hi >= base+int64(w)*64 {
		hi = base + int64(w)*64 - 1
	}
	loIdx, hiIdx := lo-base, hi-base
	loWord, hiWord := int(loIdx>>6), int(hiIdx>>6)
	loMask := ^uint64(0) << uint(loIdx&63)
	hiMask := ^uint64(0) >> uint(63-hiIdx&63)
	if loWord == hiWord {
		return bm[loWord]&loMask&hiMask != 0
	}
	if bm[loWord]&loMask != 0 || bm[hiWord]&hiMask != 0 {
		return true
	}
	for i := loWord + 1; i < hiWord; i++ {
		if bm[i] != 0 {
			return true
		}
	}
	return false
}

// ctrReset kills every witness recorded strictly before pos. It
// implements the classed-gap invalidation rule: a byte outside the gap
// class at pos invalidates every witness whose gap would contain that
// byte, while a witness recorded at pos itself (the forbidden byte being
// the recording fragment's final byte, not a gap byte) survives.
func (p *Program) ctrReset(cs Counters, c int16, pos int64) {
	off := p.ctrOff[c-1]
	w := p.counters[c-1].spanWords()
	base := int64(cs[off])
	bm := cs[off+1 : int(off)+1+w]
	idx := pos - base
	if idx <= 0 {
		return
	}
	if idx >= int64(w)*64 {
		for i := range bm {
			bm[i] = 0
		}
		return
	}
	word := int(idx >> 6)
	for i := 0; i < word; i++ {
		bm[i] = 0
	}
	bm[word] &= ^uint64(0) << uint(idx&63)
}
