package filter

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestZeroActionDrops(t *testing.T) {
	p := NewProgram(4, 2)
	m := p.NewMemory()
	if id, ok := p.Apply(m, 1); ok || id != 0 {
		t.Fatalf("uninstalled action must drop, got (%d,%v)", id, ok)
	}
	// Out-of-range and reserved ids drop too.
	for _, id := range []int32{0, -1, 99} {
		if _, ok := p.Apply(m, id); ok {
			t.Fatalf("id %d must drop", id)
		}
	}
}

func TestSetTestChain(t *testing.T) {
	// The dot-star filter pair of §IV-A: 1a: Set 0, 1: Test 0 to Match.
	p := NewProgram(3, 1)
	p.SetAction(2, Action{Test: NoBit, Set: 0, Clear: NoBit})            // id 1a
	p.SetAction(1, Action{Test: 0, Set: NoBit, Clear: NoBit, Report: 1}) // id 1

	m := p.NewMemory()
	// B before A: dropped.
	if _, ok := p.Apply(m, 1); ok {
		t.Fatal("match before Set must be dropped")
	}
	// A sets the bit but confirms nothing.
	if _, ok := p.Apply(m, 2); ok {
		t.Fatal("intermediate id must never confirm")
	}
	// Now B confirms with the original rule id.
	if id, ok := p.Apply(m, 1); !ok || id != 1 {
		t.Fatalf("want (1,true), got (%d,%v)", id, ok)
	}
	// Memory is persistent: a second B confirms again.
	if _, ok := p.Apply(m, 1); !ok {
		t.Fatal("bit should stay set")
	}
}

func TestClearAction(t *testing.T) {
	// The almost-dot-star filter triple of §IV-B:
	// 1a: Set 0, 1b: Clear 0, 1: Test 0 to Match.
	p := NewProgram(4, 1)
	p.SetAction(2, Action{Test: NoBit, Set: 0, Clear: NoBit})
	p.SetAction(3, Action{Test: NoBit, Set: NoBit, Clear: 0})
	p.SetAction(1, Action{Test: 0, Set: NoBit, Clear: NoBit, Report: 7})

	m := p.NewMemory()
	p.Apply(m, 2) // A matched
	p.Apply(m, 3) // X seen: clears
	if _, ok := p.Apply(m, 1); ok {
		t.Fatal("cleared bit must drop the match")
	}
	p.Apply(m, 2)
	if id, ok := p.Apply(m, 1); !ok || id != 7 {
		t.Fatalf("want (7,true), got (%d,%v)", id, ok)
	}
}

func TestMergedTestToSet(t *testing.T) {
	// §IV-C merged bytecode: "Test bit 1 to set bit 2" — the two-dot-star
	// chain of Table III, action 7.
	p := NewProgram(5, 4)
	p.SetAction(1, Action{Test: NoBit, Set: 2, Clear: NoBit}) // 6: Set 2
	p.SetAction(2, Action{Test: 2, Set: 3, Clear: NoBit})     // 7: Test 2 to Set 3
	p.SetAction(3, Action{Test: 3, Set: NoBit, Clear: NoBit, Report: 3})

	m := p.NewMemory()
	if _, ok := p.Apply(m, 2); ok || m.Bit(3) {
		t.Fatal("test must fail before bit 2 is set")
	}
	p.Apply(m, 1)
	p.Apply(m, 2)
	if !m.Bit(3) {
		t.Fatal("chained set failed")
	}
	if id, ok := p.Apply(m, 3); !ok || id != 3 {
		t.Fatalf("final action: (%d,%v)", id, ok)
	}
}

func TestFailedTestHasNoSideEffects(t *testing.T) {
	p := NewProgram(2, 3)
	p.SetAction(1, Action{Test: 0, Set: 1, Clear: 2, Report: 9})
	m := p.NewMemory()
	m.setBit(2)
	if _, ok := p.Apply(m, 1); ok {
		t.Fatal("test should fail")
	}
	if m.Bit(1) || !m.Bit(2) {
		t.Fatal("failed test must leave memory untouched")
	}
}

func TestMemoryWidths(t *testing.T) {
	for _, w := range []int{1, 63, 64, 65, 128, 200} {
		p := NewProgram(2, w)
		m := p.NewMemory()
		if len(m) != (w+63)/64 {
			t.Fatalf("w=%d: memory words=%d", w, len(m))
		}
		last := int16(w - 1)
		m.setBit(last)
		if !m.Bit(last) {
			t.Fatalf("w=%d: cannot address last bit", w)
		}
		m.clearBit(last)
		if m.Bit(last) {
			t.Fatalf("w=%d: clear failed", w)
		}
	}
}

func TestMemoryResetAndClone(t *testing.T) {
	p := NewProgram(2, 70)
	m := p.NewMemory()
	m.setBit(0)
	m.setBit(69)
	c := m.Clone()
	m.Reset()
	if m.Bit(0) || m.Bit(69) {
		t.Fatal("Reset must zero all bits")
	}
	if !c.Bit(0) || !c.Bit(69) {
		t.Fatal("Clone must be independent")
	}
}

func TestSetActionValidation(t *testing.T) {
	p := NewProgram(3, 2)
	for _, tc := range []struct {
		id int32
		a  Action
	}{
		{0, Action{Test: NoBit, Set: NoBit, Clear: NoBit}},
		{3, Action{Test: NoBit, Set: NoBit, Clear: NoBit}},
		{1, Action{Test: 2, Set: NoBit, Clear: NoBit}},
		{1, Action{Test: NoBit, Set: -5, Clear: NoBit}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetAction(%d,%+v) should panic", tc.id, tc.a)
				}
			}()
			p.SetAction(tc.id, tc.a)
		}()
	}
}

func TestActionString(t *testing.T) {
	tests := []struct {
		a    Action
		want string
	}{
		{Action{Test: NoBit, Set: 0, Clear: NoBit}, "Set 0"},
		{Action{Test: NoBit, Set: NoBit, Clear: 0}, "Clear 0"},
		{Action{Test: 0, Set: NoBit, Clear: NoBit, Report: 1}, "Test 0 to Match"},
		{Action{Test: 2, Set: 3, Clear: NoBit}, "Test 2 to Set 3"},
		{DropAction, "Drop"},
	}
	for _, tt := range tests {
		if got := tt.a.String(); got != tt.want {
			t.Errorf("%+v: got %q, want %q", tt.a, got, tt.want)
		}
	}
}

func TestProgramString(t *testing.T) {
	p := NewProgram(3, 1)
	p.SetAction(1, Action{Test: 0, Set: NoBit, Clear: NoBit, Report: 1})
	p.SetAction(2, Action{Test: NoBit, Set: 0, Clear: NoBit})
	s := p.String()
	if !strings.Contains(s, "1: Test 0 to Match") || !strings.Contains(s, "2: Set 0") {
		t.Errorf("program rendering:\n%s", s)
	}
}

func TestStats(t *testing.T) {
	p := NewProgram(10, 5)
	p.SetAction(3, Action{Test: NoBit, Set: 1, Clear: NoBit})
	if p.NumActiveActions() != 1 {
		t.Errorf("NumActiveActions = %d", p.NumActiveActions())
	}
	if p.MemBits() != 5 || p.NumIDs() != 10 {
		t.Errorf("MemBits=%d NumIDs=%d", p.MemBits(), p.NumIDs())
	}
	if p.MemoryImageBytes() != 160 {
		t.Errorf("image = %d, want 160", p.MemoryImageBytes())
	}
}

// TestBitOpsQuick property-checks that set/clear/test behave as an
// independent bit array for arbitrary operation sequences.
func TestBitOpsQuick(t *testing.T) {
	const w = 96
	f := func(ops []uint16) bool {
		p := NewProgram(2, w)
		m := p.NewMemory()
		ref := make([]bool, w)
		for _, op := range ops {
			bit := int16(op % w)
			switch (op / w) % 2 {
			case 0:
				m.setBit(bit)
				ref[bit] = true
			case 1:
				m.clearBit(bit)
				ref[bit] = false
			}
		}
		for i := int16(0); i < w; i++ {
			if m.Bit(i) != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
