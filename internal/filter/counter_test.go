package filter

import (
	"strings"
	"testing"
)

// ctrProg builds a single-counter program for direct window testing.
func ctrProg(t *testing.T, minGap, maxGap int32) (*Program, int16, Counters) {
	t.Helper()
	p := NewProgram(2, 1)
	c := p.AddCounter(minGap, maxGap)
	return p, c, p.NewCounters()
}

func TestCounterWindow(t *testing.T) {
	p, c, cs := ctrProg(t, 3, 5)
	if p.ctrTest(cs, c, 100) {
		t.Fatal("empty counter passed a test")
	}
	p.ctrRecord(cs, c, 10)
	for _, tc := range []struct {
		pos  int64
		want bool
	}{
		{10, false}, // gap 0
		{12, false}, // gap 2 < MinGap
		{13, true},  // gap 3 = MinGap
		{14, true},
		{15, true},  // gap 5 = MaxGap
		{16, false}, // gap 6 > MaxGap
		{500, false},
	} {
		if got := p.ctrTest(cs, c, tc.pos); got != tc.want {
			t.Errorf("test at pos %d: got %v, want %v", tc.pos, got, tc.want)
		}
	}
}

// TestCounterMultipleWitnesses is the case that proves a scalar counter
// (earliest-only or latest-only witness) cannot implement bounded
// windows: with witnesses at 0 and 4 and window [3,5], position 5 is
// satisfied only by the older witness and position 7 only by the newer.
func TestCounterMultipleWitnesses(t *testing.T) {
	p, c, cs := ctrProg(t, 3, 5)
	p.ctrRecord(cs, c, 0)
	p.ctrRecord(cs, c, 4)
	for _, tc := range []struct {
		pos  int64
		want bool
	}{
		{5, true},  // witness 0 (gap 5); witness 4 too young
		{6, false}, // witness 0 expired (gap 6), witness 4 gap 2 < 3
		{7, true},  // witness 4 (gap 3); witness 0 long expired
		{9, true},  // witness 4 (gap 5)
		{10, false},
	} {
		if got := p.ctrTest(cs, c, tc.pos); got != tc.want {
			t.Errorf("test at pos %d: got %v, want %v", tc.pos, got, tc.want)
		}
	}
}

// TestCounterRebase drives a witness stream far past the bitmap span and
// checks that whole-word rebasing never drops an unexpired witness.
func TestCounterRebase(t *testing.T) {
	p, c, cs := ctrProg(t, 1, 100) // spanWords = 3, bitmap covers 192 positions
	w := p.counters[c-1].spanWords()
	if got := (w - 1) * 64; got < 101 {
		t.Fatalf("spanWords invariant violated: (w-1)*64 = %d < MaxGap+1", got)
	}

	p.ctrRecord(cs, c, 150)
	p.ctrRecord(cs, c, 200) // idx 200 >= 192 forces a rebase; witness 150 must survive
	if base := cs[0]; base == 0 {
		t.Fatal("recording at 200 did not rebase the window")
	}
	if !p.ctrTest(cs, c, 250) { // gap 100 from witness 150
		t.Error("rebase dropped the unexpired witness at 150")
	}
	if !p.ctrTest(cs, c, 300) { // gap 100 from witness 200
		t.Error("witness at 200 missing after rebase")
	}
	if p.ctrTest(cs, c, 301) {
		t.Error("expired witnesses passed the test")
	}

	// A jump far beyond the span zeroes the whole bitmap, keeping only
	// the new witness.
	p.ctrRecord(cs, c, 100_000)
	if p.ctrTest(cs, c, 100_000+99) != true || p.ctrTest(cs, c, 100_000) != false {
		t.Error("far-jump rebase produced wrong window")
	}
	for pos := int64(100_001); pos <= 100_100; pos++ {
		if !p.ctrTest(cs, c, pos) {
			t.Fatalf("witness at 100000 missing at pos %d after far rebase", pos)
		}
	}
}

// TestCounterRebaseDense records every position across several spans and
// cross-checks ctrTest against a naive witness list.
func TestCounterRebaseDense(t *testing.T) {
	p, c, cs := ctrProg(t, 7, 40)
	var witnesses []int64
	naive := func(pos int64) bool {
		for _, w := range witnesses {
			if gap := pos - w; gap >= 7 && gap <= 40 {
				return true
			}
		}
		return false
	}
	// A fixed xorshift stream: record at ~1/3 of positions.
	s := uint64(12345)
	for pos := int64(0); pos < 2000; pos++ {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		if s%3 == 0 {
			p.ctrRecord(cs, c, pos)
			witnesses = append(witnesses, pos)
		}
		if got, want := p.ctrTest(cs, c, pos), naive(pos); got != want {
			t.Fatalf("pos %d: ctrTest = %v, naive = %v", pos, got, want)
		}
	}
}

func TestCounterReset(t *testing.T) {
	p, c, cs := ctrProg(t, 1, 50)
	p.ctrRecord(cs, c, 5)
	p.ctrRecord(cs, c, 10)
	p.ctrRecord(cs, c, 12)
	p.ctrReset(cs, c, 12) // kills strictly-before-12: witness at 12 survives
	if p.ctrTest(cs, c, 6) || p.ctrTest(cs, c, 11) {
		t.Error("witnesses 5/10 survived reset at 12")
	}
	if !p.ctrTest(cs, c, 13) { // gap 1 from the surviving witness at 12
		t.Error("witness recorded at the reset position did not survive")
	}

	// Reset far beyond the span zeroes everything.
	p.ctrRecord(cs, c, 20)
	p.ctrReset(cs, c, 100_000)
	for pos := int64(0); pos < 200; pos++ {
		if p.ctrTest(cs, c, pos) {
			t.Fatalf("witness survived a far reset (pos %d)", pos)
		}
	}

	// Reset at or before base is a no-op.
	p.ctrRecord(cs, c, 100_100)
	p.ctrReset(cs, c, 0)
	if !p.ctrTest(cs, c, 100_101) {
		t.Error("reset at pos 0 killed a later witness")
	}
}

func TestApplyAllCounters(t *testing.T) {
	p := NewProgram(4, 1)
	c := p.AddCounter(3, 5)
	p.SetAction(1, Action{Test: NoBit, Set: NoBit, Clear: NoBit, SetCtr: c})
	p.SetAction(2, Action{Test: NoBit, Set: NoBit, Clear: NoBit, TestCtr: c, Report: 42})
	p.SetAction(3, Action{Test: NoBit, Set: NoBit, Clear: NoBit, ResetCtr: c})
	m := p.NewMemory()
	cs := p.NewCounters()

	if id, ok := p.ApplyAll(m, nil, cs, 2, 10); ok || id != 0 {
		t.Fatal("empty counter confirmed a match")
	}
	p.ApplyAll(m, nil, cs, 1, 10) // record witness at 10
	if id, ok := p.ApplyAll(m, nil, cs, 2, 12); ok || id != 0 {
		t.Error("gap 2 below MinGap confirmed")
	}
	if id, ok := p.ApplyAll(m, nil, cs, 2, 14); !ok || id != 42 {
		t.Error("gap 4 inside window did not confirm")
	}
	p.ApplyAll(m, nil, cs, 3, 12) // reset kills the witness at 10
	if id, ok := p.ApplyAll(m, nil, cs, 2, 14); ok || id != 0 {
		t.Error("reset did not kill the witness")
	}

	// Nil counter state: tests fail, updates are dropped, nothing panics
	// (mirrors nil Registers for gap conditions).
	p.ApplyAll(m, nil, nil, 1, 10)
	if _, ok := p.ApplyAll(m, nil, nil, 2, 14); ok {
		t.Error("nil counter state passed a counter test")
	}
}

func TestValidateCounters(t *testing.T) {
	p := NewProgram(2, 1)
	p.AddCounter(1, 10)
	p.AddCounter(1, 10)
	cs := p.NewCounters()
	if err := p.ValidateCounters(cs, 0); err != nil {
		t.Fatalf("fresh counters rejected: %v", err)
	}
	cs[0] = 5
	if err := p.ValidateCounters(cs, 4); err == nil {
		t.Error("base beyond pos accepted")
	}
	if err := p.ValidateCounters(cs, 5); err != nil {
		t.Errorf("base at pos rejected: %v", err)
	}
	// Second block's base checked too.
	off := int(p.ctrOff[1])
	cs[off] = ^uint64(0) // negative as int64
	if err := p.ValidateCounters(cs, 1<<40); err == nil {
		t.Error("negative base accepted")
	}
	cs[off] = 0
	// A truncated image validates only the bases it contains.
	if err := p.ValidateCounters(cs[:1], 10); err != nil {
		t.Errorf("truncated image rejected: %v", err)
	}
	if err := p.ValidateCounters(nil, 0); err != nil {
		t.Errorf("nil image rejected: %v", err)
	}
}

func TestCountersCloneReset(t *testing.T) {
	p := NewProgram(2, 1)
	c := p.AddCounter(1, 1) // window [1,1]: each witness satisfies exactly one position
	cs := p.NewCounters()
	p.ctrRecord(cs, c, 3)
	cl := cs.Clone()
	p.ctrRecord(cs, c, 5)
	if !p.ctrTest(cl, c, 4) {
		t.Error("Clone lost the witness at 3")
	}
	if p.ctrTest(cl, c, 6) { // witness 5 must not leak into the clone
		t.Error("Clone shares storage with the original")
	}
	cs.Reset()
	for i, w := range cs {
		if w != 0 {
			t.Fatalf("Reset left word %d = %#x", i, w)
		}
	}
	if Counters(nil).Clone() != nil {
		t.Error("nil Clone not nil")
	}
}

func TestAddCounterPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			f()
		})
	}
	mustPanic("zero mingap", func() { NewProgram(2, 1).AddCounter(0, 5) })
	mustPanic("inverted window", func() { NewProgram(2, 1).AddCounter(6, 5) })
	mustPanic("excessive maxgap", func() { NewProgram(2, 1).AddCounter(1, MaxCounterGap+1) })
}

func TestCheckActionCounters(t *testing.T) {
	p := NewProgram(4, 1)
	c := p.AddCounter(1, 10)
	ok := Action{Test: NoBit, Set: NoBit, Clear: NoBit, SetCtr: c, TestCtr: c, ResetCtr: c}
	if err := p.CheckAction(1, ok); err != nil {
		t.Fatalf("valid counter action rejected: %v", err)
	}
	for _, bad := range []Action{
		{Test: NoBit, Set: NoBit, Clear: NoBit, SetCtr: 2},
		{Test: NoBit, Set: NoBit, Clear: NoBit, TestCtr: -1},
		{Test: NoBit, Set: NoBit, Clear: NoBit, ResetCtr: 99},
	} {
		if err := p.CheckAction(1, bad); err == nil {
			t.Errorf("out-of-range counter slot accepted: %+v", bad)
		}
	}
}

func TestCounterActionString(t *testing.T) {
	p := NewProgram(4, 1)
	c := p.AddCounter(2, 9)
	a := Action{Test: NoBit, Set: 0, Clear: NoBit, SetCtr: c}
	if s := a.String(); !strings.Contains(s, "Inc 1") {
		t.Errorf("SetCtr action renders %q", s)
	}
	a = Action{Test: NoBit, Set: NoBit, Clear: NoBit, TestCtr: c, Report: 3}
	if s := a.String(); !strings.Contains(s, "Ctr(1) in window") || !strings.Contains(s, "Match") {
		t.Errorf("TestCtr action renders %q", s)
	}
	a = Action{Test: NoBit, Set: NoBit, Clear: NoBit, ResetCtr: c}
	if s := a.String(); !strings.Contains(s, "Reset 1") {
		t.Errorf("ResetCtr action renders %q", s)
	}
}
