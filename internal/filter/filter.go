// Package filter implements the stateful match-filtering component of the
// MFA 9-tuple: the w-bit memory M = 2^w and the filtering transition
// function f : M × Di → M × {Confirm, Drop}.
//
// Each internal match id produced by the DFA triggers one Action, a
// 4-integer bytecode exactly as described in §IV-C of the paper: a memory
// bit that must be set for the action to take effect (test), a bit to set,
// a bit to clear, and a match id to report. Set and clear are applied and
// the report emitted only when the test passes; a failed test drops the
// match with no memory change.
//
// Concurrency: a Program is mutated only during construction (SetAction,
// AddClearGroup); once handed to an engine it is treated as immutable and
// is safe for concurrent use by any number of flows. All per-flow mutable
// state lives in Memory and Registers, which belong to exactly one flow
// and are not safe for concurrent use.
package filter

import (
	"fmt"
	"strings"
)

// NoBit marks an unused test/set/clear slot in an Action.
const NoBit = -1

// NoReg marks an unused position-register slot in an Action. Unlike the
// bit indices, registers are numbered from 1 so that the zero value of
// the new fields means "unused" and pre-extension Action literals remain
// valid.
const NoReg = 0

// NoReport marks an Action that never confirms a match. Internal match
// ids introduced by decomposition (the paper's 1a, 1b, ...) use it: they
// exist only to update memory and must always be filtered.
const NoReport = 0

// Action is the per-match-id filter bytecode.
type Action struct {
	// Test is the memory bit that must be 1 for this action to take
	// effect, or NoBit for an unconditional action.
	Test int16
	// Set is the memory bit to set when the action takes effect, or NoBit.
	Set int16
	// Clear is the memory bit to clear when the action takes effect, or
	// NoBit. The splitter never emits an action that both sets and clears;
	// the engine applies set before clear if one ever does.
	Clear int16
	// Report is the original rule id to confirm when the action takes
	// effect, or NoReport.
	Report int32

	// The remaining fields implement the counting-condition extension the
	// paper's §VI leaves as future work ("tracking the offsets of
	// previous matches"). They extend f with position registers: per-flow
	// int64 slots recording where a fragment first matched.

	// SetPos is the 1-based register that records the current match
	// position — only on its first (earliest) qualifying match — or
	// NoReg. The earliest occurrence is the optimal witness for a
	// minimum-gap constraint, so later matches never overwrite it.
	SetPos int16
	// GapReg is the 1-based register whose recorded position must precede
	// the current one by at least MinGap bytes for this action to take
	// effect, or NoReg. An unset register fails the condition.
	GapReg int16
	// MinGap is the required distance (current position minus recorded
	// position) when GapReg is in use. For a gap rule A.{n,}B with a
	// fixed B-length L, MinGap = n + L.
	MinGap int32

	// ClearGroup is the 1-based index of a word-mask clear group to
	// apply, or 0 for none. Groups implement the §IV-C action merging at
	// set scale: rules sharing an identical almost-dot-star gap class
	// share one [X] fragment whose single action clears every member
	// rule's guard bit with a handful of mask operations, instead of one
	// match event per rule per gap byte.
	ClearGroup int32

	// The counter-register extension (DESIGN.md §19) compiles bounded
	// gaps A X{n,m} B without state expansion. Counters are 1-based like
	// position registers; NoCtr (0) means unused.

	// SetCtr records the current match position as a witness in the
	// counter, or NoCtr.
	SetCtr int16
	// TestCtr requires the counter to hold a witness within its
	// [MinGap, MaxGap] window of the current position for this action to
	// take effect, or NoCtr. An empty counter fails the condition.
	TestCtr int16
	// ResetCtr kills every witness recorded strictly before the current
	// position, or NoCtr. Emitted on the forbidden-class fragment of a
	// classed bounded gap A [^X]{n,m} B: an X byte invalidates every
	// witness whose gap would contain it.
	ResetCtr int16
}

// DropAction is the action that unconditionally drops a match with no
// memory effect. Action-table slots without an installed action hold it.
var DropAction = Action{Test: NoBit, Set: NoBit, Clear: NoBit, Report: NoReport}

// IsDrop reports whether the action is the no-effect drop action.
func (a Action) IsDrop() bool {
	return a == DropAction
}

// String renders the action in the paper's pseudocode style, e.g.
// "Test 0 to Set 1" or "Test 2 to Match".
func (a Action) String() string {
	var parts []string
	if a.Set != NoBit {
		parts = append(parts, fmt.Sprintf("Set %d", a.Set))
	}
	if a.Clear != NoBit {
		parts = append(parts, fmt.Sprintf("Clear %d", a.Clear))
	}
	if a.Report != NoReport {
		parts = append(parts, "Match")
	}
	if a.ClearGroup != 0 {
		parts = append(parts, fmt.Sprintf("ClearGroup %d", a.ClearGroup))
	}
	if a.SetPos != NoReg {
		parts = append(parts, fmt.Sprintf("Record %d", a.SetPos))
	}
	if a.SetCtr != NoCtr {
		parts = append(parts, fmt.Sprintf("Inc %d", a.SetCtr))
	}
	if a.ResetCtr != NoCtr {
		parts = append(parts, fmt.Sprintf("Reset %d", a.ResetCtr))
	}
	body := strings.Join(parts, " and ")
	if body == "" {
		body = "Drop"
	}
	var conds []string
	if a.GapReg != NoReg {
		conds = append(conds, fmt.Sprintf("Gap(%d) >= %d", a.GapReg, a.MinGap))
	}
	if a.TestCtr != NoCtr {
		conds = append(conds, fmt.Sprintf("Ctr(%d) in window", a.TestCtr))
	}
	if len(conds) > 0 {
		cond := strings.Join(conds, " and ")
		if body == "Drop" {
			return cond
		}
		body = fmt.Sprintf("%s to %s", cond, body)
		if a.Test == NoBit {
			return body
		}
		return fmt.Sprintf("Test %d and %s", a.Test, body)
	}
	if a.Test != NoBit {
		if len(parts) > 0 {
			return fmt.Sprintf("Test %d to %s", a.Test, body)
		}
		return fmt.Sprintf("Test %d", a.Test)
	}
	return body
}

// ClearOp clears the masked bits of one memory word.
type ClearOp struct {
	Word int16
	Mask uint64
}

// Program is the compiled filter: the action table indexed by internal
// match id (Di), the memory width w, and the number of position
// registers the counting extension uses. Internal id 0 is reserved and
// never used, so the table's entry 0 stays the drop action.
//
// A Program is immutable after construction (the SetAction/AddClearGroup
// phase) and safe for concurrent use; Apply and ApplyAt mutate only the
// Memory and Registers passed in, never the Program itself.
type Program struct {
	actions     []Action
	memBits     int
	numRegs     int
	clearGroups [][]ClearOp // 1-based via ClearGroup-1

	// Counter registers (counter.go): static descriptors plus the
	// precomputed flattened layout of per-flow counter blocks.
	counters []Counter
	ctrOff   []int32 // block offset of each counter in a Counters slice
	ctrTotal int     // total words of per-flow counter state
}

// NewProgram returns a program with capacity for internal ids
// 1..numIDs-1, a w-bit memory and no position registers.
func NewProgram(numIDs, memBits int) *Program {
	return NewProgramRegs(numIDs, memBits, 0)
}

// NewProgramRegs is NewProgram with numRegs position registers for
// counting-gap actions.
func NewProgramRegs(numIDs, memBits, numRegs int) *Program {
	actions := make([]Action, numIDs)
	for i := range actions {
		actions[i] = DropAction
	}
	return &Program{
		actions: actions,
		memBits: memBits,
		numRegs: numRegs,
	}
}

// CheckAction validates an action against the program's dimensions and
// returns a descriptive error naming the offending field. It is the
// shared validator behind SetAction (which panics, for construction-time
// bugs) and decoding (which returns errors, for untrusted input).
func (p *Program) CheckAction(id int32, a Action) error {
	if id <= 0 || int(id) >= len(p.actions) {
		return fmt.Errorf("filter: action id %d out of range [1,%d)", id, len(p.actions))
	}
	for _, bit := range []int16{a.Test, a.Set, a.Clear} {
		if bit != NoBit && (bit < 0 || int(bit) >= p.memBits) {
			return fmt.Errorf("filter: action %d: memory bit %d out of range [0,%d)", id, bit, p.memBits)
		}
	}
	for _, reg := range []int16{a.SetPos, a.GapReg} {
		if reg != NoReg && (reg < 1 || int(reg) > p.numRegs) {
			return fmt.Errorf("filter: action %d: register %d out of range [1,%d]", id, reg, p.numRegs)
		}
	}
	if a.GapReg != NoReg && a.MinGap < 1 {
		return fmt.Errorf("filter: action %d: gap action needs MinGap >= 1, got %d", id, a.MinGap)
	}
	for _, ctr := range []int16{a.SetCtr, a.TestCtr, a.ResetCtr} {
		if ctr != NoCtr && (ctr < 1 || int(ctr) > len(p.counters)) {
			return fmt.Errorf("filter: action %d: counter %d out of range [1,%d]", id, ctr, len(p.counters))
		}
	}
	if a.ClearGroup < 0 || int(a.ClearGroup) > len(p.clearGroups) {
		return fmt.Errorf("filter: action %d: clear group %d out of range [0,%d]", id, a.ClearGroup, len(p.clearGroups))
	}
	return nil
}

// SetAction installs the action for an internal match id. It panics on an
// out-of-range id or memory bit: the splitter allocates both, so a bad
// value is a construction bug, not an input error. Untrusted inputs go
// through CheckAction instead.
func (p *Program) SetAction(id int32, a Action) {
	if err := p.CheckAction(id, a); err != nil {
		panic(err.Error())
	}
	p.actions[id] = a
}

// AddClearGroup registers a word-mask clear group, returning its 1-based
// index for use in Action.ClearGroup. Bits must be valid memory bits.
func (p *Program) AddClearGroup(bits []int16) int32 {
	words := (p.memBits + 63) / 64
	masks := make([]uint64, words)
	for _, bit := range bits {
		if bit < 0 || int(bit) >= p.memBits {
			panic(fmt.Sprintf("filter: clear-group bit %d out of range [0,%d)", bit, p.memBits))
		}
		masks[bit>>6] |= 1 << (bit & 63)
	}
	ops := make([]ClearOp, 0, 2)
	for w, m := range masks {
		if m != 0 {
			ops = append(ops, ClearOp{Word: int16(w), Mask: m})
		}
	}
	p.clearGroups = append(p.clearGroups, ops)
	return int32(len(p.clearGroups))
}

// Action returns the action for an internal match id, or DropAction for
// unknown ids.
func (p *Program) Action(id int32) Action {
	if id <= 0 || int(id) >= len(p.actions) {
		return DropAction
	}
	return p.actions[id]
}

// NumIDs returns the size of the action table, including the reserved
// entry 0.
func (p *Program) NumIDs() int { return len(p.actions) }

// MemBits returns w, the number of memory bits a flow context needs.
func (p *Program) MemBits() int { return p.memBits }

// NumRegs returns the number of position registers a flow context needs.
func (p *Program) NumRegs() int { return p.numRegs }

// NumActiveActions returns how many non-drop actions are installed.
func (p *Program) NumActiveActions() int {
	n := 0
	for _, a := range p.actions {
		if !a.IsDrop() {
			n++
		}
	}
	return n
}

// MemoryImageBytes returns the static storage the filter engine needs:
// the action table at 16 bytes per entry (five int16 indices, an int32
// report id and an int32 gap, with alignment), mirroring the paper's
// bytecode layout discussion extended with the counting registers. A
// program with counter registers pays the wider 24-byte action record
// (three more int16 slots, with alignment) plus 8 bytes per counter
// descriptor.
func (p *Program) MemoryImageBytes() int {
	if len(p.counters) == 0 {
		return len(p.actions) * 16
	}
	return len(p.actions)*24 + len(p.counters)*8
}

// String renders the whole program in the style of the paper's Table III.
func (p *Program) String() string {
	var sb strings.Builder
	for id, a := range p.actions {
		if a.IsDrop() {
			continue
		}
		fmt.Fprintf(&sb, "%d: %s\n", id, a.String())
	}
	return sb.String()
}

// Memory is one flow's w-bit filter memory, initialized to all zeros by
// convention (§III-A). It is the (m) half of the paper's (q, m) pair.
// Like any per-flow context it is owned by one flow at a time and not
// safe for concurrent use.
type Memory []uint64

// NewMemory allocates a zeroed memory for the program's width.
func (p *Program) NewMemory() Memory {
	return make(Memory, (p.memBits+63)/64)
}

// Reset zeroes the memory for reuse on a new flow.
func (m Memory) Reset() {
	for i := range m {
		m[i] = 0
	}
}

// Bit reports the value of bit i.
func (m Memory) Bit(i int16) bool {
	return m[i>>6]&(1<<(i&63)) != 0
}

// setBit sets bit i.
func (m Memory) setBit(i int16) {
	m[i>>6] |= 1 << (i & 63)
}

// clearBit clears bit i.
func (m Memory) clearBit(i int16) {
	m[i>>6] &^= 1 << (i & 63)
}

// Clone returns an independent copy, used when flow contexts are saved.
func (m Memory) Clone() Memory {
	out := make(Memory, len(m))
	copy(out, m)
	return out
}

// NumClearGroups returns the number of registered clear groups.
func (p *Program) NumClearGroups() int { return len(p.clearGroups) }

// ClearGroupOps returns the mask operations of the 1-based clear group g.
// The returned slice is shared and must not be modified.
func (p *Program) ClearGroupOps(g int32) []ClearOp {
	return p.clearGroups[g-1]
}

// Registers are one flow's position registers for counting-gap actions.
// Slot values store position+1 so the zero value means "unset"; a fresh
// flow starts all-unset.
type Registers []int64

// NewRegisters allocates a zeroed register file for the program.
func (p *Program) NewRegisters() Registers {
	if p.numRegs == 0 {
		return nil
	}
	return make(Registers, p.numRegs)
}

// Reset clears all registers for reuse on a new flow.
func (r Registers) Reset() {
	for i := range r {
		r[i] = 0
	}
}

// Clone returns an independent copy, used when flow contexts are saved.
func (r Registers) Clone() Registers {
	if r == nil {
		return nil
	}
	out := make(Registers, len(r))
	copy(out, r)
	return out
}

// Apply runs the action for internal match id against memory m,
// returning the confirmed original rule id and true, or 0 and false when
// the match is dropped. This is f : M × Di → M × {Confirm, Drop} for
// programs without counting registers; programs that use them must go
// through ApplyAt (Apply treats every gap condition as failed).
func (p *Program) Apply(m Memory, id int32) (reportID int32, confirmed bool) {
	return p.ApplyAt(m, nil, id, 0)
}

// ApplyAt is Apply extended with the counting-condition state: the flow's
// position registers and the current match position. Programs with
// counter registers must go through ApplyAll (ApplyAt treats every
// counter test as failed).
func (p *Program) ApplyAt(m Memory, regs Registers, id int32, pos int64) (reportID int32, confirmed bool) {
	return p.ApplyAll(m, regs, nil, id, pos)
}

// ApplyAll is the full filtering transition function: ApplyAt extended
// with the flow's counter state. A nil cs fails every counter test and
// drops counter updates, mirroring how a nil regs fails gap conditions.
func (p *Program) ApplyAll(m Memory, regs Registers, cs Counters, id int32, pos int64) (reportID int32, confirmed bool) {
	a := p.Action(id)
	if a.Test != NoBit && !m.Bit(a.Test) {
		return 0, false
	}
	if a.GapReg != NoReg {
		if regs == nil {
			return 0, false
		}
		recorded := regs[a.GapReg-1]
		if recorded == 0 || pos+1-recorded < int64(a.MinGap) {
			return 0, false
		}
	}
	if a.TestCtr != NoCtr {
		if cs == nil || !p.ctrTest(cs, a.TestCtr, pos) {
			return 0, false
		}
	}
	if a.SetPos != NoReg && regs != nil && regs[a.SetPos-1] == 0 {
		regs[a.SetPos-1] = pos + 1
	}
	if a.SetCtr != NoCtr && cs != nil {
		p.ctrRecord(cs, a.SetCtr, pos)
	}
	if a.ResetCtr != NoCtr && cs != nil {
		p.ctrReset(cs, a.ResetCtr, pos)
	}
	if a.Set != NoBit {
		m.setBit(a.Set)
	}
	if a.Clear != NoBit {
		m.clearBit(a.Clear)
	}
	if a.ClearGroup != 0 {
		for _, op := range p.clearGroups[a.ClearGroup-1] {
			m[op.Word] &^= op.Mask
		}
	}
	if a.Report != NoReport {
		return a.Report, true
	}
	return 0, false
}
