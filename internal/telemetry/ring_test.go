package telemetry

import (
	"sync"
	"testing"
)

func TestEventRingOverwriteOldest(t *testing.T) {
	r := NewEventRing(4)
	for i := 0; i < 10; i++ {
		r.Add(Event{Pattern: int32(i)})
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	tail := r.Tail(0)
	if len(tail) != 4 {
		t.Fatalf("Tail(0) held %d, want 4", len(tail))
	}
	// The retained window is the newest 4, oldest first, seq contiguous.
	for i, e := range tail {
		wantSeq := int64(7 + i)
		if e.Seq != wantSeq || e.Pattern != int32(wantSeq-1) {
			t.Errorf("tail[%d] = seq %d pattern %d, want seq %d pattern %d",
				i, e.Seq, e.Pattern, wantSeq, wantSeq-1)
		}
		if e.TimeUnixNano == 0 {
			t.Errorf("tail[%d] not timestamped", i)
		}
	}
	// Bounded tail returns the newest n.
	last2 := r.Tail(2)
	if len(last2) != 2 || last2[0].Seq != 9 || last2[1].Seq != 10 {
		t.Errorf("Tail(2) = %+v, want seqs 9,10", last2)
	}
	// Asking for more than buffered returns what's there.
	if got := r.Tail(100); len(got) != 4 {
		t.Errorf("Tail(100) held %d, want 4", len(got))
	}
}

func TestEventRingPartialFill(t *testing.T) {
	r := NewEventRing(8)
	r.Add(Event{Flow: "a", Pattern: 1, Offset: 5})
	r.Add(Event{Flow: "b", Pattern: 2, Offset: 9})
	tail := r.Tail(0)
	if len(tail) != 2 || tail[0].Flow != "a" || tail[1].Flow != "b" {
		t.Fatalf("Tail = %+v", tail)
	}
	if tail[0].Seq != 1 || tail[1].Seq != 2 {
		t.Errorf("seqs = %d,%d want 1,2", tail[0].Seq, tail[1].Seq)
	}
}

// TestEventRingConcurrent proves Add/Tail safety under -race and checks
// the invariants that survive interleaving: totals match adds, tails are
// seq-ordered and contiguous.
func TestEventRingConcurrent(t *testing.T) {
	r := NewEventRing(64)
	const writers, per = 8, 500
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // concurrent reader
		defer close(readerDone)
		for {
			tail := r.Tail(0)
			for i := 1; i < len(tail); i++ {
				if tail[i].Seq != tail[i-1].Seq+1 {
					t.Errorf("tail seqs not contiguous: %d then %d", tail[i-1].Seq, tail[i].Seq)
					return
				}
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Add(Event{Pattern: int32(i)})
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-readerDone
	if r.Total() != writers*per {
		t.Errorf("Total = %d, want %d", r.Total(), writers*per)
	}
}
