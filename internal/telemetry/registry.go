// Package telemetry is the observability layer of the serving path: a
// zero-dependency metrics registry (atomic counters, gauges, fixed-bucket
// histograms), a bounded match-event ring buffer, Prometheus-text and
// JSON exposition writers, and an admin HTTP surface (admin.go) that
// serves them alongside net/http/pprof.
//
// Design constraints, in order:
//
//  1. The hot path pays atomics, nothing else. Counter.Add and
//     Gauge.Add/Set are single atomic ops; Histogram.Observe is one
//     branchless bucket search plus two atomic adds. No locks, no maps,
//     no allocation after registration.
//  2. Readers never perturb writers. Snapshot walks the registry under a
//     registration lock (registration is cold), but reads every value
//     with the same atomics the writers use — an exposition scrape
//     cannot stall a shard.
//  3. Callback metrics bridge existing counters. The engine already
//     maintains dozens of atomic counters in its Stats plumbing;
//     CounterFunc/GaugeFunc expose them without double-counting or a
//     parallel increment discipline.
//
// Snapshot semantics: a Snapshot is a point-in-time copy, internally
// consistent per metric (each value read once, histograms sum their own
// bucket copies) but not across metrics — two counters incremented
// together may be captured one apart. That is the standard exposition
// contract (Prometheus scrapes have the same property) and is exact once
// the instrumented component has quiesced, e.g. after engine.Close.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value dimension of a metric. Metrics with the same
// name and different labels form a family and render as one Prometheus
// family with per-series label sets.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind discriminates metric behaviour for exposition.
type Kind uint8

const (
	KindCounter Kind = iota // monotonically non-decreasing
	KindGauge               // free-moving instantaneous value
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "unknown"
	}
}

// Counter is a monotonic atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter. Negative deltas are a programming error
// (counters are monotonic) and are ignored.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous atomic value (int64: every gauge in this
// system is a count — flows, queued segments, bytes, a tier index).
type Gauge struct{ v atomic.Int64 }

// Set stores an absolute value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by a (possibly negative) delta.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// metric is one registered series.
type metric struct {
	name   string
	help   string
	labels []Label
	kind   Kind

	counter   *Counter
	gauge     *Gauge
	valueFn   func() float64 // CounterFunc / GaugeFunc
	histogram *Histogram
}

// Registry holds registered metrics. Registration is idempotent for
// owned metrics (Counter/Gauge/Histogram return the existing instance on
// a repeat registration with the same kind) and a panic for kind
// conflicts — a conflict is always a programming error, and failing loud
// at startup beats silently splitting a series. All methods are safe for
// concurrent use.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	index   map[string]*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*metric)}
}

// seriesKey identifies a series: name plus labels in sorted order, so
// the same labels in a different argument order hit the same series.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// sortLabels returns a sorted copy so registration order of labels never
// leaks into identity or output.
func sortLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// register inserts m or returns the existing series with the same key.
// The bool reports whether m itself was inserted.
func (r *Registry) register(m *metric) (*metric, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := seriesKey(m.name, m.labels)
	if old, ok := r.index[key]; ok {
		if old.kind != m.kind {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s (was %s)", m.name, m.kind, old.kind))
		}
		return old, false
	}
	r.index[key] = m
	r.metrics = append(r.metrics, m)
	return m, true
}

// Counter registers (or returns the existing) monotonic counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m, _ := r.register(&metric{name: name, help: help, labels: sortLabels(labels), kind: KindCounter, counter: &Counter{}})
	if m.counter == nil {
		panic(fmt.Sprintf("telemetry: %s is a counter callback, not an owned counter", name))
	}
	return m.counter
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m, _ := r.register(&metric{name: name, help: help, labels: sortLabels(labels), kind: KindGauge, gauge: &Gauge{}})
	if m.gauge == nil {
		panic(fmt.Sprintf("telemetry: %s is a gauge callback, not an owned gauge", name))
	}
	return m.gauge
}

// CounterFunc registers a callback-backed counter: fn must report a
// monotonically non-decreasing value (typically bridging an atomic
// counter the component already maintains). fn is called at snapshot
// time and must be safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	_, inserted := r.register(&metric{name: name, help: help, labels: sortLabels(labels), kind: KindCounter, valueFn: fn})
	if !inserted {
		panic(fmt.Sprintf("telemetry: duplicate registration of %s", name))
	}
}

// GaugeFunc registers a callback-backed gauge. fn is called at snapshot
// time and must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	_, inserted := r.register(&metric{name: name, help: help, labels: sortLabels(labels), kind: KindGauge, valueFn: fn})
	if !inserted {
		panic(fmt.Sprintf("telemetry: duplicate registration of %s", name))
	}
}

// Histogram registers (or returns the existing) fixed-bucket histogram.
// bounds are strictly increasing upper bounds; a +Inf bucket is implicit.
// nil bounds select LatencyBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	m, _ := r.register(&metric{name: name, help: help, labels: sortLabels(labels), kind: KindHistogram, histogram: newHistogram(bounds)})
	if m.histogram == nil {
		panic(fmt.Sprintf("telemetry: %s registered with a different kind", name))
	}
	return m.histogram
}

// MetricSnapshot is one series captured at a point in time.
type MetricSnapshot struct {
	Name   string
	Help   string
	Labels []Label
	Kind   Kind
	// Value carries counter/gauge readings; Hist carries histograms.
	Value float64
	Hist  *HistogramSnapshot
}

// Snapshot is a captured metric set, sorted by name then label set, so
// exposition output is deterministic.
type Snapshot []MetricSnapshot

// Snapshot captures every registered series.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	metrics := make([]*metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()

	out := make(Snapshot, 0, len(metrics))
	for _, m := range metrics {
		s := MetricSnapshot{Name: m.name, Help: m.help, Labels: m.labels, Kind: m.kind}
		switch {
		case m.counter != nil:
			s.Value = float64(m.counter.Value())
		case m.gauge != nil:
			s.Value = float64(m.gauge.Value())
		case m.valueFn != nil:
			s.Value = m.valueFn()
		case m.histogram != nil:
			h := m.histogram.Snapshot()
			s.Hist = &h
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelString(out[i].Labels) < labelString(out[j].Labels)
	})
	return out
}

// Value sums every series of the named metric — the natural reading for
// families split by label (e.g. per-shard counters). Missing names read
// as zero.
func (s Snapshot) Value(name string) float64 {
	var sum float64
	for i := range s {
		if s[i].Name == name {
			sum += s[i].Value
		}
	}
	return sum
}

// Get finds one exact series by name and label set.
func (s Snapshot) Get(name string, labels ...Label) (MetricSnapshot, bool) {
	want := seriesKey(name, sortLabels(labels))
	for i := range s {
		if seriesKey(s[i].Name, s[i].Labels) == want {
			return s[i], true
		}
	}
	return MetricSnapshot{}, false
}

// labelString renders a label set in Prometheus form: {k="v",k2="v2"} or
// "" when empty.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies the Prometheus label-value escapes.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
