// Admin HTTP surface.
//
// One handler serves everything an operator (or a scraper, or a load
// balancer) asks a running daemon:
//
//	/metrics  Prometheus text exposition of the registry
//	/statsz   JSON application snapshot (whatever Statsz returns)
//	/healthz  200 "ok" (or 200 "degraded: ..." from Degraded) / 503
//	          with the failure reason, from Health
//	/events   JSON tail of the match-event ring (?n= bounds the tail)
//	/reload   POST: validate and hot-swap the pattern set (when wired)
//	/debug/pprof/...  the standard net/http/pprof profiling handlers
//
// The surface is read-only with one deliberate exception: POST /reload
// (enabled only when the Reload callback is set) asks the daemon to
// re-load and swap its pattern set. It answers 405 to every other
// method, so scrapers, crawlers and GET health probes can never trigger
// a swap. Health is a callback so the daemon keys it to the same rule
// as its exit code — the two must never disagree, or a supervisor
// restarting on 503 and one restarting on exit status would fight.

package telemetry

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Admin bundles the pieces the admin surface serves. Any field may be
// nil; the corresponding endpoint then answers 404 (health answers 200,
// the right default for a daemon that defines no health rule).
type Admin struct {
	// Registry backs /metrics.
	Registry *Registry
	// Events backs /events.
	Events *EventRing
	// Health backs /healthz: nil error means healthy. The callback must
	// implement the same predicate as the process's unhealthy exit code.
	Health func() error
	// Degraded, when non-nil, lets /healthz distinguish "up but impaired"
	// from healthy without changing the 503 predicate: if Health passes
	// but Degraded returns a non-empty reason (open circuit breakers, a
	// recent watchdog recovery), the endpoint still answers 200 — load
	// balancers must not evict a self-healing daemon — but the body reads
	// "degraded: <reason>" so probes and operators can see it.
	Degraded func() string
	// Statsz backs /statsz with any JSON-serializable snapshot.
	Statsz func() any
	// Reload, when non-nil, enables POST /reload: one call per request,
	// expected to validate and swap the serving pattern set, returning
	// the new generation id. A returned error means the swap was
	// rejected and the running set is untouched (the endpoint answers
	// 500 with the reason).
	Reload func() (generation uint64, err error)
	// Tenants, when non-nil, serves the tenant CRUD surface under
	// /tenants (tenant.Registry.AdminHandler builds one). It is the only
	// other mutating surface besides /reload; PUT /tenants/<id>/rules
	// follows /reload's rejection semantics.
	Tenants http.Handler
}

// Handler builds the admin mux.
func (a *Admin) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if a.Registry == nil {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = a.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, req *http.Request) {
		if a.Statsz == nil {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = WriteJSONValue(w, a.Statsz())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		if a.Health != nil {
			if err := a.Health(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if a.Degraded != nil {
			if reason := a.Degraded(); reason != "" {
				fmt.Fprintf(w, "degraded: %s\n", reason)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, req *http.Request) {
		if a.Events == nil {
			http.NotFound(w, req)
			return
		}
		n := 0 // 0 = everything buffered
		if q := req.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/json")
		_ = WriteJSONValue(w, struct {
			Total  int64   `json:"total"`
			Events []Event `json:"events"`
		}{Total: a.Events.Total(), Events: a.Events.Tail(n)})
	})
	mux.HandleFunc("/reload", func(w http.ResponseWriter, req *http.Request) {
		if a.Reload == nil {
			http.NotFound(w, req)
			return
		}
		if req.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			http.Error(w, "reload requires POST", http.StatusMethodNotAllowed)
			return
		}
		gen, err := a.Reload()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"generation\":%d}\n", gen)
	})
	if a.Tenants != nil {
		mux.Handle("/tenants", a.Tenants)
		mux.Handle("/tenants/", a.Tenants)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "mfa admin\n/metrics\n/statsz\n/healthz\n/events\n/reload (POST)\n/tenants\n/debug/pprof/\n")
	})
	return mux
}

// Server is a started admin listener.
type Server struct {
	srv *http.Server
	ln  net.Listener
	err chan error
}

// Start listens on addr and serves the admin surface in a background
// goroutine. The returned Server reports the bound address (useful with
// ":0") and shuts down gracefully.
func (a *Admin) Start(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: admin listen %s: %w", addr, err)
	}
	s := &Server{
		srv: &http.Server{Handler: a.Handler(), ReadHeaderTimeout: 5 * time.Second},
		ln:  ln,
		err: make(chan error, 1),
	}
	go func() { s.err <- s.srv.Serve(ln) }()
	return s, nil
}

// Addr reports the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown stops the server gracefully: in-flight requests get until ctx
// expires, then remaining connections are closed. Always returns once
// the server no longer accepts connections.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	if err != nil {
		_ = s.srv.Close()
	}
	<-s.err // Serve has returned (http.ErrServerClosed on the clean path)
	return err
}
