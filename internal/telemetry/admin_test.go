package telemetry

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func testAdmin(healthy *atomic.Bool) *Admin {
	reg := NewRegistry()
	reg.Counter("mfa_demo_total", "demo").Add(42)
	ring := NewEventRing(8)
	ring.Add(Event{Flow: "1.2.3.4:80->5.6.7.8:99", Pattern: 7, Offset: 1234})
	return &Admin{
		Registry: reg,
		Events:   ring,
		Health: func() error {
			if healthy.Load() {
				return nil
			}
			return errors.New("2 shard(s) unhealthy")
		},
		Statsz: func() any { return map[string]int{"packets": 10} },
	}
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s read: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminEndpoints(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	srv := httptest.NewServer(testAdmin(&healthy).Handler())
	defer srv.Close()

	if code, body := get(t, srv, "/metrics"); code != 200 || !strings.Contains(body, "mfa_demo_total 42") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if code, body := get(t, srv, "/statsz"); code != 200 || !strings.Contains(body, `"packets": 10`) {
		t.Errorf("/statsz = %d %q", code, body)
	}
	if code, body := get(t, srv, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}

	// Health flips with the callback — the exit-code-parity contract.
	healthy.Store(false)
	if code, body := get(t, srv, "/healthz"); code != 503 || !strings.Contains(body, "unhealthy") {
		t.Errorf("unhealthy /healthz = %d %q, want 503", code, body)
	}

	code, body := get(t, srv, "/events?n=5")
	if code != 200 {
		t.Fatalf("/events = %d", code)
	}
	var ev struct {
		Total  int64   `json:"total"`
		Events []Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &ev); err != nil {
		t.Fatalf("/events JSON: %v in %q", err, body)
	}
	if ev.Total != 1 || len(ev.Events) != 1 || ev.Events[0].Pattern != 7 || ev.Events[0].Offset != 1234 {
		t.Errorf("/events = %+v", ev)
	}
	if code, _ := get(t, srv, "/events?n=-1"); code != 400 {
		t.Errorf("/events?n=-1 = %d, want 400", code)
	}

	if code, body := get(t, srv, "/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
	if code, body := get(t, srv, "/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("index = %d %q", code, body)
	}
	if code, _ := get(t, srv, "/nope"); code != 404 {
		t.Errorf("unknown path = %d, want 404", code)
	}
}

// TestAdminDegraded pins the three-way health contract: healthy is
// 200 "ok", degraded is still 200 (a self-healing daemon must not be
// evicted) but says so, and Health failing wins over Degraded with 503.
func TestAdminDegraded(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	var reason atomic.Value
	reason.Store("")
	a := testAdmin(&healthy)
	a.Degraded = func() string { return reason.Load().(string) }
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()

	if code, body := get(t, srv, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("healthy /healthz = %d %q", code, body)
	}
	reason.Store("1 circuit breaker open")
	if code, body := get(t, srv, "/healthz"); code != 200 || !strings.Contains(body, "degraded: 1 circuit breaker open") {
		t.Errorf("degraded /healthz = %d %q, want 200 with reason", code, body)
	}
	healthy.Store(false)
	if code, body := get(t, srv, "/healthz"); code != 503 || !strings.Contains(body, "unhealthy") {
		t.Errorf("unhealthy+degraded /healthz = %d %q, want 503", code, body)
	}
}

func TestAdminNilPieces(t *testing.T) {
	srv := httptest.NewServer((&Admin{}).Handler())
	defer srv.Close()
	for _, path := range []string{"/metrics", "/statsz", "/events"} {
		if code, _ := get(t, srv, path); code != 404 {
			t.Errorf("%s with nil backing = %d, want 404", path, code)
		}
	}
	// No health rule defined: default healthy.
	if code, _ := get(t, srv, "/healthz"); code != 200 {
		t.Errorf("/healthz with nil Health = %d, want 200", code)
	}
}

func TestStartAndGracefulShutdown(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	a := testAdmin(&healthy)
	s, err := a.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("GET on started server: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("status = %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Get("http://" + s.Addr() + "/metrics"); err == nil {
		t.Error("server still accepting connections after Shutdown")
	}
}

// POST /reload drives the callback; every other method is refused so
// crawlers and health probes can never trigger a swap.
func TestReloadEndpoint(t *testing.T) {
	var fail atomic.Bool
	gen := atomic.Uint64{}
	gen.Store(1)
	a := &Admin{
		Reload: func() (uint64, error) {
			if fail.Load() {
				return 0, errors.New("bad rules file")
			}
			return gen.Add(1), nil
		},
	}
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()

	post := func() (int, string) {
		t.Helper()
		resp, err := srv.Client().Post(srv.URL+"/reload", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := post(); code != 200 || strings.TrimSpace(body) != `{"generation":2}` {
		t.Errorf("POST /reload = %d %q", code, body)
	}

	// A rejected reload surfaces the reason with a 500.
	fail.Store(true)
	if code, body := post(); code != 500 || !strings.Contains(body, "bad rules file") {
		t.Errorf("failed POST /reload = %d %q", code, body)
	}

	// GET must not reload.
	if code, _ := get(t, srv, "/reload"); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /reload allowed")
	}
	if gen.Load() != 2 {
		t.Errorf("GET/failed POST bumped the generation to %d", gen.Load())
	}

	// Without the callback the endpoint does not exist.
	bare := httptest.NewServer((&Admin{}).Handler())
	defer bare.Close()
	resp, err := bare.Client().Post(bare.URL+"/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("POST /reload with nil callback = %d, want 404", resp.StatusCode)
	}
}
