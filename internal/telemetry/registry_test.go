package telemetry

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
	snap := r.Snapshot()
	if v := snap.Value("c_total"); v != 5 {
		t.Errorf("snapshot c_total = %v, want 5", v)
	}
	if v := snap.Value("g"); v != 7 {
		t.Errorf("snapshot g = %v, want 7", v)
	}
}

func TestRegistrationIdempotentAndConflicts(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	if a != b {
		t.Error("repeat counter registration returned a different instance")
	}
	// Same name, different labels: distinct series, one family.
	s0 := r.Counter("shard_total", "s", L("shard", "0"))
	s1 := r.Counter("shard_total", "s", L("shard", "1"))
	if s0 == s1 {
		t.Error("differently-labeled series share an instance")
	}
	// Label order must not matter for identity.
	p := r.Gauge("m", "m", L("a", "1"), L("b", "2"))
	q := r.Gauge("m", "m", L("b", "2"), L("a", "1"))
	if p != q {
		t.Error("label order changed series identity")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind conflict did not panic")
		}
	}()
	r.Gauge("x_total", "now a gauge")
}

func TestSnapshotValueSumsAcrossLabels(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 4; i++ {
		c := r.Counter("pk_total", "per shard", L("shard", strconv.Itoa(i)))
		c.Add(int64(i + 1))
	}
	if v := r.Snapshot().Value("pk_total"); v != 10 {
		t.Errorf("summed family = %v, want 10", v)
	}
	if m, ok := r.Snapshot().Get("pk_total", L("shard", "2")); !ok || m.Value != 3 {
		t.Errorf("Get(shard=2) = %+v ok=%v, want value 3", m, ok)
	}
}

func TestHistogramBucketsAndSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005) // bucket 0
	h.Observe(0.001)  // still bucket 0 (le is inclusive)
	h.Observe(0.05)   // bucket 2
	h.Observe(5)      // +Inf
	s := h.Snapshot()
	want := []uint64{2, 0, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 4 {
		t.Errorf("count = %d, want 4", s.Count)
	}
	if math.Abs(s.Sum-5.0515) > 1e-9 {
		t.Errorf("sum = %v, want 5.0515", s.Sum)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("mfa_x_total", "things", L("shard", "0")).Add(3)
	r.Counter("mfa_x_total", "things", L("shard", "1")).Add(4)
	r.GaugeFunc("mfa_tier", "tier", func() float64 { return 2 })
	h := r.Histogram("mfa_lat_seconds", "lat", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(3)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE mfa_x_total counter",
		`mfa_x_total{shard="0"} 3`,
		`mfa_x_total{shard="1"} 4`,
		"# TYPE mfa_tier gauge",
		"mfa_tier 2",
		"# TYPE mfa_lat_seconds histogram",
		`mfa_lat_seconds_bucket{le="0.5"} 1`,
		`mfa_lat_seconds_bucket{le="1"} 2`,
		`mfa_lat_seconds_bucket{le="+Inf"} 3`,
		"mfa_lat_seconds_sum 4",
		"mfa_lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// HELP/TYPE must appear exactly once per family, not per series.
	if n := strings.Count(out, "# TYPE mfa_x_total"); n != 1 {
		t.Errorf("TYPE header emitted %d times, want 1", n)
	}
}

func TestJSONExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a").Add(7)
	r.Histogram("h_seconds", "h", []float64{1}).Observe(0.5)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"a_total"`, `"value": 7`, `"h_seconds"`, `"count": 1`, `"inf": true`} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("JSON missing %q in:\n%s", want, b.String())
		}
	}
}

// TestConcurrentUse hammers registration, observation, and exposition
// from many goroutines at once; run under -race this is the registry's
// thread-safety proof.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", "hits")
	g := r.Gauge("depth", "depth")
	h := r.Histogram("lat_seconds", "lat", nil)
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%10) * 1e-6)
				if i%100 == 0 {
					// Concurrent registration of the same and new series.
					r.Counter("hits_total", "hits").Inc()
					r.Counter("w_total", "per worker", L("w", strconv.Itoa(w)))
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	wantHits := float64(workers*per + workers*(per/100))
	if v := snap.Value("hits_total"); v != wantHits {
		t.Errorf("hits_total = %v, want %v", v, wantHits)
	}
	if v := snap.Value("depth"); v != 0 {
		t.Errorf("depth = %v, want 0", v)
	}
	m, ok := snap.Get("lat_seconds")
	if !ok || m.Hist == nil || m.Hist.Count != workers*per {
		t.Errorf("lat_seconds count = %+v, want %d observations", m.Hist, workers*per)
	}
	var b strings.Builder
	if err := snap.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
}
