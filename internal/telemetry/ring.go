// Bounded match-event ring buffer.
//
// Match reports are the one telemetry signal where the *instances*
// matter, not just a count: an operator chasing a rule misfire needs the
// last N (flow, pattern, offset) triples, not a counter. The ring keeps
// a fixed window of the most recent events, overwriting the oldest —
// memory is bounded no matter how match-heavy the traffic, and a burst
// simply advances the window. Every event ever added gets a monotonic
// sequence number, so a reader tailing the ring can detect exactly how
// many events it lost between polls (first seq seen minus last seq read
// minus one).

package telemetry

import (
	"sync"
	"time"
)

// Event is one confirmed match as the ring records it.
type Event struct {
	// Seq numbers events from 1 in admission order; gaps never occur
	// (overwritten events disappear from the buffer, not the numbering).
	Seq int64 `json:"seq"`
	// TimeUnixNano is the event timestamp. Add stamps it at admission
	// when zero; a producer on a hot path may pre-stamp with a coarser
	// clock (e.g. once per scanned segment) to save a clock read per
	// event.
	TimeUnixNano int64 `json:"time_unix_nano"`
	// Flow is the flow key in its canonical string form.
	Flow string `json:"flow"`
	// Pattern is the matched rule id.
	Pattern int32 `json:"pattern"`
	// Offset is the byte offset of the match in the flow's stream.
	Offset int64 `json:"offset"`
}

// EventRing is a fixed-capacity overwrite-oldest event buffer, safe for
// concurrent Add and Tail.
type EventRing struct {
	mu    sync.Mutex
	buf   []Event
	total int64 // events ever admitted == last assigned Seq
}

// NewEventRing creates a ring holding the most recent size events.
// size <= 0 selects 1024.
func NewEventRing(size int) *EventRing {
	if size <= 0 {
		size = 1024
	}
	return &EventRing{buf: make([]Event, 0, size)}
}

// Add admits one event, stamping its sequence number (and, when the
// producer left it zero, its timestamp) and overwriting the oldest
// event if the ring is full.
func (r *EventRing) Add(e Event) {
	if e.TimeUnixNano == 0 {
		e.TimeUnixNano = time.Now().UnixNano()
	}
	r.mu.Lock()
	r.total++
	e.Seq = r.total
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[int((r.total-1)%int64(cap(r.buf)))] = e
	}
	r.mu.Unlock()
}

// Tail returns up to n of the most recent events, oldest first. n <= 0
// returns everything buffered.
func (r *EventRing) Tail(n int) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	held := len(r.buf)
	if n <= 0 || n > held {
		n = held
	}
	out := make([]Event, 0, n)
	// Oldest retained event is total-held+1; we want the last n of the
	// retained window.
	for i := held - n; i < held; i++ {
		idx := int((r.total - int64(held) + int64(i)) % int64(cap(r.buf)))
		out = append(out, r.buf[idx])
	}
	return out
}

// Total reports how many events were ever admitted (the Seq of the
// newest event).
func (r *EventRing) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Cap reports the ring's fixed capacity.
func (r *EventRing) Cap() int { return cap(r.buf) }
