// Process-level metrics: Go runtime gauges and uptime.
//
// These are callback gauges evaluated at scrape time only — ReadMemStats
// costs a brief stop-the-world, which is fine on an exposition path hit
// a few times a minute and would not be fine per segment.

package telemetry

import (
	"runtime"
	"time"
)

// RegisterRuntimeMetrics adds process-level gauges to the registry:
// goroutine count, heap usage, GC totals, GOMAXPROCS, and uptime
// relative to start.
func RegisterRuntimeMetrics(r *Registry, start time.Time) {
	r.GaugeFunc("mfa_go_goroutines", "Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("mfa_go_gomaxprocs", "GOMAXPROCS at scrape time.",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
	r.GaugeFunc("mfa_go_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 { var m runtime.MemStats; runtime.ReadMemStats(&m); return float64(m.HeapAlloc) })
	r.GaugeFunc("mfa_go_sys_bytes", "Bytes obtained from the OS.",
		func() float64 { var m runtime.MemStats; runtime.ReadMemStats(&m); return float64(m.Sys) })
	r.CounterFunc("mfa_go_gc_cycles_total", "Completed GC cycles.",
		func() float64 { var m runtime.MemStats; runtime.ReadMemStats(&m); return float64(m.NumGC) })
	r.CounterFunc("mfa_process_uptime_seconds", "Seconds since the process started serving.",
		func() float64 { return time.Since(start).Seconds() })
}
