// Fixed-bucket histogram with lock-free observation.
//
// The serving path observes one latency per scanned segment, so Observe
// must cost no more than the atomics it commits: a binary search over a
// small immutable bound slice, one bucket increment, and one CAS-loop
// float add for the sum. There is no resizing, no per-observation
// allocation, and no lock anywhere.

package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// LatencyBuckets is the default bucket ladder for per-segment scan
// latencies: 500ns to 100ms, roughly 2.5x steps. A 1460-byte MSS segment
// scans in single-digit microseconds on the MFA hot path, so the ladder
// puts most of its resolution there while still separating "a slow
// pattern set" (hundreds of µs) from "a wedged matcher" (tens of ms).
var LatencyBuckets = []float64{
	500e-9, 1e-6, 2.5e-6, 5e-6, 10e-6, 25e-6, 50e-6, 100e-6,
	250e-6, 500e-6, 1e-3, 2.5e-3, 10e-3, 100e-3,
}

// Histogram counts observations into fixed buckets. Observe is safe for
// unlimited concurrency; Snapshot may run at any time.
type Histogram struct {
	bounds []float64 // immutable after construction, strictly increasing
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-added
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{
		bounds: b,
		counts: make([]atomic.Uint64, len(b)+1), // last = +Inf overflow
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound admits v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds, the unit every latency
// histogram in this repository uses.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistogramSnapshot is a point-in-time copy. Counts are per-bucket (not
// cumulative); Counts[len(Bounds)] is the +Inf overflow bucket. Count is
// the sum of the captured buckets, so Count and Counts are always
// mutually consistent even if observations land mid-snapshot; Sum is
// read once and may trail Count by in-flight observations (exact once
// the writer has quiesced).
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot captures the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds, // immutable, safe to share
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}
