// Exposition writers: Prometheus text format and JSON.
//
// Both render a Snapshot, so a scrape costs one registry walk however
// many formats are mounted, and both are deterministic (sorted by name
// then label set) so diffs in tests and CI are stable.

package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one HELP/TYPE header per family, one line per
// series, histograms as cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}

// WritePrometheus renders a captured snapshot.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	lastFamily := ""
	for i := range s {
		m := &s[i]
		if m.Name != lastFamily {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.Name, m.Help, m.Name, m.Kind); err != nil {
				return err
			}
			lastFamily = m.Name
		}
		if m.Hist != nil {
			if err := writePromHistogram(w, m); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", m.Name, labelString(m.Labels), formatValue(m.Value)); err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, m *MetricSnapshot) error {
	h := m.Hist
	cum := uint64(0)
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			m.Name, labelStringWith(m.Labels, Label{"le", formatValue(bound)}), cum); err != nil {
			return err
		}
	}
	cum += h.Counts[len(h.Bounds)]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		m.Name, labelStringWith(m.Labels, Label{"le", "+Inf"}), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.Name, labelString(m.Labels), formatValue(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.Name, labelString(m.Labels), cum)
	return err
}

// labelStringWith renders labels plus one extra (the histogram "le").
func labelStringWith(labels []Label, extra Label) string {
	all := make([]Label, 0, len(labels)+1)
	all = append(all, labels...)
	all = append(all, extra)
	return labelString(all)
}

// formatValue renders a float the way Prometheus clients do: integers
// without a decimal point, everything else in shortest round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// jsonMetric is the JSON shape of one series.
type jsonMetric struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  *float64          `json:"value,omitempty"`
	Hist   *jsonHistogram    `json:"histogram,omitempty"`
}

type jsonHistogram struct {
	Count   uint64       `json:"count"`
	Sum     float64      `json:"sum"`
	Buckets []jsonBucket `json:"buckets"`
}

type jsonBucket struct {
	LE    float64 `json:"le"` // upper bound; the overflow bucket sets Inf instead (JSON has no +Inf literal)
	Inf   bool    `json:"inf,omitempty"`
	Count uint64  `json:"count"` // per-bucket (not cumulative)
}

// WriteJSON renders the registry as one JSON document:
// {"metrics":[{name, kind, labels, value|histogram}, ...]}.
func (r *Registry) WriteJSON(w io.Writer) error {
	return r.Snapshot().WriteJSON(w)
}

// WriteJSON renders a captured snapshot as JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	out := struct {
		Metrics []jsonMetric `json:"metrics"`
	}{Metrics: make([]jsonMetric, 0, len(s))}
	for i := range s {
		m := &s[i]
		jm := jsonMetric{Name: m.Name, Kind: m.Kind.String()}
		if len(m.Labels) > 0 {
			jm.Labels = make(map[string]string, len(m.Labels))
			for _, l := range m.Labels {
				jm.Labels[l.Key] = l.Value
			}
		}
		if m.Hist != nil {
			jh := &jsonHistogram{Count: m.Hist.Count, Sum: m.Hist.Sum}
			for bi, bound := range m.Hist.Bounds {
				jh.Buckets = append(jh.Buckets, jsonBucket{LE: bound, Count: m.Hist.Counts[bi]})
			}
			jh.Buckets = append(jh.Buckets, jsonBucket{Inf: true, Count: m.Hist.Counts[len(m.Hist.Bounds)]})
			jm.Hist = jh
		} else {
			v := m.Value
			jm.Value = &v
		}
		out.Metrics = append(out.Metrics, jm)
	}
	return WriteJSONValue(w, out)
}

// WriteJSONValue writes any JSON-serializable value indented with a
// trailing newline — the one JSON emitter shared by /statsz, /events,
// mfascan -stats-json and mfabench -json, so every machine-readable
// surface in the repository formats alike.
func WriteJSONValue(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
