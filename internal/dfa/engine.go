package dfa

// MatchFunc receives a match event: the rule's match id and the 0-based
// offset of the byte at which the match completed.
type MatchFunc = func(id int32, pos int64)

// Engine wraps a DFA for scanning. It is immutable and safe for
// concurrent use by any number of goroutines; per-flow state lives in
// Runner. The engine works identically over both table layouts — the
// scan loops specialize on layout once per Feed call, never per byte.
type Engine struct {
	d *DFA
}

// NewEngine returns a matcher over d.
func NewEngine(d *DFA) *Engine { return &Engine{d: d} }

// DFA returns the underlying automaton.
func (e *Engine) DFA() *DFA { return e.d }

// Runner is the per-flow context of a DFA scan: a single automaton state
// and the running byte offset — the (q) half of the paper's (q, m) pair.
//
// Lifecycle: obtain one per flow from Engine.NewRunner, Feed it the
// flow's bytes in order (split across calls at any boundary), and either
// Reset it for a new flow or save/restore its position with
// State/SetState when flows are multiplexed. A Runner is not safe for
// concurrent use; any number of Runners may share one Engine.
type Runner struct {
	e     *Engine
	state uint32
	pos   int64
}

// NewRunner returns a runner positioned at the start of a flow.
func (e *Engine) NewRunner() *Runner {
	return &Runner{e: e, state: e.d.start}
}

// Reset rewinds the runner to the start of a new flow.
func (r *Runner) Reset() {
	r.state = r.e.d.start
	r.pos = 0
}

// Pos returns the number of bytes consumed so far.
func (r *Runner) Pos() int64 { return r.pos }

// State returns the current DFA state, exposed so composite engines (the
// MFA) can persist and restore per-flow contexts. State numbering is a
// property of the automaton, not the table layout: a state saved from a
// classed engine restores into a flat one built from the same NFA, and
// vice versa.
func (r *Runner) State() uint32 { return r.state }

// SetState restores a previously saved state.
func (r *Runner) SetState(s uint32, pos int64) {
	r.state = s
	r.pos = pos
}

// Feed advances the runner over data, invoking onMatch for every element
// of the decision set of each visited accepting state. This is the hot
// loop of the whole system. The layout is resolved once per call: the
// flat loop is one table load and one compare per byte; the classed loop
// adds one load from the 256-byte class map (always L1-resident) in
// exchange for the much smaller — and therefore cache-resident — state
// table; the classed2 loop steps the pair table once per two bytes,
// finishing an odd-length chunk with a single classed step. The classed
// walks run over pre-scaled row bases (st = trans[st+classOf[b]], no
// multiply per byte); conversion to and from state numbers happens once
// per call, so State/SetState stay layout-independent and a saved
// context can never point inside a classed2 byte pair.
func (r *Runner) Feed(data []byte, onMatch MatchFunc) {
	d := r.e.d
	state := r.state
	pos := r.pos
	trans := d.trans
	acceptStart := d.acceptStart
	if trans2 := d.trans2; trans2 != nil {
		k := uint32(d.numClasses)
		s2 := uint32(d.stride2)
		classOf := d.classOf
		scaledAccept2 := acceptStart * s2
		st2 := state * s2
		n := len(data) &^ 1
		for i := 0; i < n; i += 2 {
			nxt := trans2[st2+uint32(classOf[data[i]])*k+uint32(classOf[data[i+1]])]
			if nxt >= scaledAccept2 {
				// Final state accepting, or the pair crossed an accepting
				// mid state (flag bit): replay through the 1-byte table
				// for exact match offsets.
				nxt = d.pairStepSlow(st2/s2, data[i], data[i+1], pos, onMatch)
			}
			st2 = nxt
			pos += 2
		}
		state = st2 / s2
		if n < len(data) { // odd tail: one 1-byte classed step
			base := trans[state*k+uint32(classOf[data[n]])]
			if base >= acceptStart*k {
				for _, id := range d.accepts[(base-acceptStart*k)/k] {
					onMatch(id, pos)
				}
			}
			state = base / k
			pos++
		}
	} else if classOf := d.classOf; classOf != nil {
		k := uint32(d.numClasses)
		st := state * k
		scaledAccept := acceptStart * k
		for i := 0; i < len(data); i++ {
			st = trans[st+uint32(classOf[data[i]])]
			if st >= scaledAccept {
				for _, id := range d.accepts[(st-scaledAccept)/k] {
					onMatch(id, pos)
				}
			}
			pos++
		}
		state = st / k
	} else {
		for i := 0; i < len(data); i++ {
			state = trans[int(state)<<8|int(data[i])]
			if state >= acceptStart {
				for _, id := range d.accepts[state-acceptStart] {
					onMatch(id, pos)
				}
			}
			pos++
		}
	}
	r.state = state
	r.pos = pos
}

// FeedCount advances the runner over data without reporting individual
// events, returning only the number of match events. It is the
// measurement loop used by throughput benchmarks, where the cost of a
// callback per event would distort engine comparisons.
func (r *Runner) FeedCount(data []byte) int64 {
	d := r.e.d
	state := r.state
	trans := d.trans
	acceptStart := d.acceptStart
	var count int64
	if trans2 := d.trans2; trans2 != nil {
		k := uint32(d.numClasses)
		s2 := uint32(d.stride2)
		classOf := d.classOf
		scaledAccept2 := acceptStart * s2
		scaledAccept := acceptStart * k
		st2 := state * s2
		n := len(data) &^ 1
		for i := 0; i < n; i += 2 {
			nxt := trans2[st2+uint32(classOf[data[i]])*k+uint32(classOf[data[i+1]])]
			if nxt >= scaledAccept2 {
				midBase := trans[(st2/s2)*k+uint32(classOf[data[i]])]
				if midBase >= scaledAccept {
					count += int64(len(d.accepts[(midBase-scaledAccept)/k]))
				}
				finBase := trans[midBase+uint32(classOf[data[i+1]])]
				if finBase >= scaledAccept {
					count += int64(len(d.accepts[(finBase-scaledAccept)/k]))
				}
				nxt = (finBase / k) * s2
			}
			st2 = nxt
		}
		state = st2 / s2
		if n < len(data) {
			base := trans[state*k+uint32(classOf[data[n]])]
			if base >= scaledAccept {
				count += int64(len(d.accepts[(base-scaledAccept)/k]))
			}
			state = base / k
		}
	} else if classOf := d.classOf; classOf != nil {
		k := uint32(d.numClasses)
		st := state * k
		scaledAccept := acceptStart * k
		for i := 0; i < len(data); i++ {
			st = trans[st+uint32(classOf[data[i]])]
			if st >= scaledAccept {
				count += int64(len(d.accepts[(st-scaledAccept)/k]))
			}
		}
		state = st / k
	} else {
		for i := 0; i < len(data); i++ {
			state = trans[int(state)<<8|int(data[i])]
			if state >= acceptStart {
				count += int64(len(d.accepts[state-acceptStart]))
			}
		}
	}
	r.state = state
	r.pos += int64(len(data))
	return count
}

// MatchEvent records one reported match.
type MatchEvent struct {
	ID  int32
	Pos int64
}

// Run scans data from the start of a fresh flow and returns all matches
// in order; a convenience for tests and one-shot scans.
func (e *Engine) Run(data []byte) []MatchEvent {
	var out []MatchEvent
	r := e.NewRunner()
	r.Feed(data, func(id int32, pos int64) {
		out = append(out, MatchEvent{ID: id, Pos: pos})
	})
	return out
}
