package dfa

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// classed2Sources is a pattern set whose automaton exercises mid-pair
// accepting states (short literal "abc" completes at both odd and even
// offsets depending on alignment) alongside dot-star segments.
var classed2Sources = []string{"attack.*payload", "abc", "x[0-9]+y", `/^get[^\n]*passwd/i`}

// TestClassed2PairTableIsDeltaSquared checks the defining property of
// the pair table against the 1-byte classed table: for every state and
// byte pair, the pair entry's target is δ(δ(s,b1),b2), and its flag bit
// is set iff δ(s,b1) is accepting.
func TestClassed2PairTableIsDeltaSquared(t *testing.T) {
	d, err := FromNFA(buildNFA(t, classed2Sources...), Options{Layout: LayoutClassed2})
	if err != nil {
		t.Fatal(err)
	}
	if d.Layout() != LayoutClassed2 {
		t.Fatalf("layout = %v, want classed2", d.Layout())
	}
	trans2, stride2 := d.PairTable()
	k := d.numClasses
	if stride2 != k*k || len(trans2) != d.numStates*stride2 {
		t.Fatalf("pair table %d entries stride %d, want %d × %d", len(trans2), stride2, d.numStates, k*k)
	}
	for s := uint32(0); s < uint32(d.numStates); s++ {
		for c1 := 0; c1 < k; c1++ {
			// Any representative byte of the class works; find one.
			b1 := classRep(d.classOf, uint8(c1))
			mid := d.Next(s, b1)
			for c2 := 0; c2 < k; c2++ {
				b2 := classRep(d.classOf, uint8(c2))
				want := d.Next(mid, b2)
				e := trans2[int(s)*stride2+c1*k+c2]
				if got := (e &^ pairAcceptFlag) / uint32(stride2); got != want {
					t.Fatalf("state %d pair (%#x,%#x): pair table → %d, δ² → %d", s, b1, b2, got, want)
				}
				if flagged := e&pairAcceptFlag != 0; flagged != (mid >= d.acceptStart) {
					t.Fatalf("state %d pair (%#x,%#x): flag %v, mid accepting %v", s, b1, b2, flagged, mid >= d.acceptStart)
				}
			}
		}
	}
}

func classRep(classOf []uint8, c uint8) byte {
	for b := 0; b < 256; b++ {
		if classOf[b] == c {
			return byte(b)
		}
	}
	panic("class with no member byte")
}

// TestClassed2EquivalenceRandom property-checks the tentpole invariant:
// flat and classed2 engines built from the same NFA produce identical
// (id, pos) match streams on random inputs fed in random chunks —
// including odd-length chunks, which force the 1-byte tail path at
// every chunk boundary.
func TestClassed2EquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	words := []string{"ab", "abc", "bc", "ca", "aab", "cc", "GET", "pass", "xy"}

	for trial := 0; trial < 40; trial++ {
		var sources []string
		for ri := 0; ri < 1+rng.Intn(4); ri++ {
			var sb strings.Builder
			if rng.Intn(4) == 0 {
				sb.WriteByte('^')
			}
			sb.WriteString(words[rng.Intn(len(words))])
			switch rng.Intn(4) {
			case 0:
				sb.WriteString("|" + words[rng.Intn(len(words))])
			case 1:
				sb.WriteString("?" + words[rng.Intn(len(words))])
			case 2:
				sb.WriteString(".*" + words[rng.Intn(len(words))])
			}
			sources = append(sources, sb.String())
		}

		n := buildNFA(t, sources...)
		flat, err := FromNFA(n, Options{Layout: LayoutFlat, Minimize: trial%2 == 0})
		if err != nil {
			t.Fatal(err)
		}
		c2, err := FromNFA(n, Options{Layout: LayoutClassed2, Minimize: trial%2 == 0})
		if err != nil {
			t.Fatal(err)
		}
		if c2.Layout() != LayoutClassed2 {
			t.Fatalf("rules %v: layout fell back to %v", sources, c2.Layout())
		}
		for ii := 0; ii < 5; ii++ {
			input := make([]byte, 11+rng.Intn(121)) // often odd-length
			for i := range input {
				input[i] = "abcGETpsxy "[rng.Intn(11)]
			}
			want := NewEngine(flat).Run(input)

			// Whole-payload scan.
			if got := NewEngine(c2).Run(input); fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("rules %v input %q: classed2 %v vs flat %v", sources, input, got, want)
			}

			// Random chunking, odd splits included: every boundary takes
			// the tail path and the next Feed re-enters the pair loop.
			var got []MatchEvent
			r := NewEngine(c2).NewRunner()
			for rest := input; len(rest) > 0; {
				n := 1 + rng.Intn(len(rest))
				r.Feed(rest[:n], func(id int32, pos int64) {
					got = append(got, MatchEvent{ID: id, Pos: pos})
				})
				rest = rest[n:]
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("rules %v input %q chunked: classed2 %v vs flat %v", sources, input, got, want)
			}
		}
	}
}

// TestClassed2FeedCountMatchesFeed checks the benchmark loop agrees with
// the reporting loop under the pair table, including odd-length data.
func TestClassed2FeedCountMatchesFeed(t *testing.T) {
	d, err := FromNFA(buildNFA(t, classed2Sources...), Options{Layout: LayoutClassed2})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(d)
	for _, input := range []string{
		"xx abc attack with payload x129y",
		"GET /etc/passwd abcabcabc",
		"a", "", "ab", "abc",
	} {
		var events int64
		r := e.NewRunner()
		r.Feed([]byte(input), func(int32, int64) { events++ })
		if got := e.NewRunner().FeedCount([]byte(input)); got != events {
			t.Fatalf("%q: FeedCount %d, Feed reported %d", input, got, events)
		}
	}
}

// TestClassed2StateRoundTrip is the mid-pair regression test for the
// context/save-restore audit: a context captured after an odd number of
// bytes (so the pair walk stopped on a tail step) must restore into any
// layout and continue identically — state numbers are whole-byte
// aligned by construction, never pair-table row bases.
func TestClassed2StateRoundTrip(t *testing.T) {
	n := buildNFA(t, classed2Sources...)
	c2, err := FromNFA(n, Options{Layout: LayoutClassed2})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := FromNFA(n, Options{Layout: LayoutFlat})
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("xx abc attack with payload x129y GET passwd")
	want := NewEngine(flat).Run(input)

	for _, split := range []int{1, 3, 7, 20, 41} { // odd splits: mid-pair capture points
		r1 := NewEngine(c2).NewRunner()
		var got []MatchEvent
		cb := func(id int32, pos int64) { got = append(got, MatchEvent{ID: id, Pos: pos}) }
		r1.Feed(input[:split], cb)
		st, pos := r1.State(), r1.Pos()
		if st >= uint32(c2.NumStates()) {
			t.Fatalf("split %d: saved state %d is not a plain state number", split, st)
		}

		// Resume in a fresh classed2 runner and, independently, a flat
		// runner — the layout-independence contract for contexts.
		r2 := NewEngine(c2).NewRunner()
		r2.SetState(st, pos)
		got2 := append([]MatchEvent(nil), got...)
		r2.Feed(input[split:], func(id int32, pos int64) { got2 = append(got2, MatchEvent{ID: id, Pos: pos}) })
		if fmt.Sprint(got2) != fmt.Sprint(want) {
			t.Fatalf("split %d resumed in classed2: %v, want %v", split, got2, want)
		}

		rf := NewEngine(flat).NewRunner()
		rf.SetState(st, pos)
		rf.Feed(input[split:], cb)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("split %d resumed in flat: %v, want %v", split, got, want)
		}
	}
}

// TestClassed2FallsBackWhenTooLarge checks the size gate: an automaton
// whose pair table would exceed the budget keeps the classed layout
// (and still matches identically) instead of failing or allocating.
func TestClassed2FallsBackWhenTooLarge(t *testing.T) {
	d, err := FromNFA(buildNFA(t, classed2Sources...), Options{Layout: LayoutClassed})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a pair table over budget by inflating the entry count
	// check inputs: a copy with a huge synthetic state count would be
	// fragile, so instead verify the arithmetic gate directly and that
	// withPairs honours it via a shrunken budget boundary.
	entries := int64(d.numStates) * int64(d.numClasses) * int64(d.numClasses)
	if entries*4 > Classed2MaxTableBytes {
		t.Skipf("test set unexpectedly over budget (%d entries)", entries)
	}
	got := d.withPairs()
	if got.Layout() != LayoutClassed2 {
		t.Fatalf("under-budget set did not build pairs: %v", got.Layout())
	}
	// The receiver must be untouched (immutability of *DFA).
	if d.trans2 != nil || d.Layout() != LayoutClassed {
		t.Fatal("withPairs mutated its receiver")
	}
}

// TestMarshalV3RoundTrip pins the v3 framing: classed2 automata write
// the MFDFA3 magic with layout code 2, carry only the 1-byte table, and
// decode back to classed2 with an identical rebuilt pair table.
func TestMarshalV3RoundTrip(t *testing.T) {
	d, err := FromNFA(buildNFA(t, classed2Sources...), Options{Layout: LayoutClassed2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if !bytes.HasPrefix(raw, []byte(dfaMagicV3)) {
		t.Fatalf("classed2 image starts %q, want v3 magic", raw[:8])
	}
	// Image size must reflect the 1-byte table, not the pair table.
	if len(raw) > d.numStates*d.numClasses*4+4096 {
		t.Fatalf("v3 image is %d bytes — pair table leaked onto the wire?", len(raw))
	}
	got, err := ReadDFA(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.Layout() != LayoutClassed2 {
		t.Fatalf("decoded layout %v, want classed2", got.Layout())
	}
	t2a, s2a := d.PairTable()
	t2b, s2b := got.PairTable()
	if s2a != s2b || !slicesEqualU32(t2a, t2b) {
		t.Fatal("rebuilt pair table differs from original")
	}
	input := []byte("zz attack with payload x129y abc")
	if fmt.Sprint(NewEngine(got).Run(input)) != fmt.Sprint(NewEngine(d).Run(input)) {
		t.Fatal("decoded classed2 engine disagrees with original")
	}
}

func slicesEqualU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMarshalV3CorruptStreams drives the v3 decoder with targeted
// corruptions: layout code 2 inside a v2 frame, truncation at every
// section boundary, and bad class maps must all fail with ErrBadFormat
// — never panic, never yield an automaton that scans out of bounds.
func TestMarshalV3CorruptStreams(t *testing.T) {
	d, err := FromNFA(buildNFA(t, classed2Sources...), Options{Layout: LayoutClassed2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Layout code 2 demoted into a v2 frame: the versioning contract
	// says v2 readers (and therefore v2 frames) know nothing of it.
	demoted := bytes.Clone(raw)
	copy(demoted, dfaMagicV2)
	if _, err := ReadDFA(bytes.NewReader(demoted)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("classed2 in v2 frame: got %v, want ErrBadFormat", err)
	}

	// Truncations at a spread of offsets, including mid-header,
	// mid-class-map, mid-table and mid-accept-sets.
	for _, cut := range []int{0, 3, 7, 11, 19, 20, 24, 150, 24 + 256 + 4, len(raw) / 2, len(raw) - 1} {
		if cut >= len(raw) {
			continue
		}
		if _, err := ReadDFA(bytes.NewReader(raw[:cut])); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("truncated at %d: got %v, want ErrBadFormat", cut, err)
		}
	}

	// Class map entry out of range.
	badMap := bytes.Clone(raw)
	badMap[len(dfaMagicV3)+12+1+4] = byte(d.NumClasses())
	if _, err := ReadDFA(bytes.NewReader(badMap)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("bad class map: got %v, want ErrBadFormat", err)
	}

	// Transition entry out of range (first table word, after the map and
	// length field).
	badTrans := bytes.Clone(raw)
	transOff := len(dfaMagicV3) + 12 + 1 + 4 + 256 + 4
	badTrans[transOff] = 0xff
	badTrans[transOff+1] = 0xff
	badTrans[transOff+2] = 0xff
	badTrans[transOff+3] = 0xff
	if _, err := ReadDFA(bytes.NewReader(badTrans)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("out-of-range transition: got %v, want ErrBadFormat", err)
	}
}

// FuzzReadDFAV3 fuzzes the decoder from a valid v3 seed: any mutation
// must either decode to a structurally valid automaton (probed by a
// short scan) or fail with a typed error — no panics, no out-of-range
// state visits. Run by the CI fuzz-smoke job.
func FuzzReadDFAV3(f *testing.F) {
	d, err := FromNFA(buildNFA(f, "attack.*payload", "abc"), Options{Layout: LayoutClassed2})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	var flatBuf bytes.Buffer
	if flat, err := FromNFA(buildNFA(f, "abc"), Options{Layout: LayoutFlat}); err == nil {
		flat.WriteTo(&flatBuf)
		f.Add(flatBuf.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadDFA(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadFormat) {
				t.Fatalf("non-typed decode error: %v", err)
			}
			return
		}
		// Whatever decoded must scan without panicking.
		NewEngine(got).Run([]byte("xx abc attack with payload yy"))
	})
}
