package dfa

// 2-byte-stride ("classed2") transition tables. The classed hot loop is
// still a serial dependency chain: each table load waits for the
// previous one, so throughput is bounded by load latency, not
// bandwidth. The pair table halves the chain length by precomputing the
// two-step successor function δ²: a numStates × numClasses² table whose
// entry for (state, class₁, class₂) is the state reached after
// consuming both bytes — one dependent load per *two* input bytes.
//
// Entries are pre-scaled like the classed table's (next × stride2, the
// successor's pair-row base), so the per-pair step is two adds and one
// load with no multiply on the carried chain:
//
//	st2 = trans2[st2 + classOf[b1]*k + classOf[b2]]
//
// The classOf lookups and the c1*k multiply are off the chain — they
// depend only on the input bytes, so the CPU resolves them while the
// previous table load is still in flight.
//
// Acceptance cannot be tested only at pair boundaries: the automaton
// may pass through an accepting state after the first byte of a pair
// ("mid-pair"), and the match-equivalence invariant requires every
// match at its exact byte offset. Entries whose mid state is accepting
// carry pairAcceptFlag (bit 31); because every legitimate row base is
// < numStates×stride2 < 2³¹ (a build precondition), a single unsigned
// compare st2 >= acceptStart×stride2 detects *both* a flagged entry and
// a final-accepting successor, keeping the hot loop at one compare per
// pair. The slow path then replays the pair through the 1-byte classed
// table — kept alongside trans2 — to emit matches at exact offsets.
// Odd-length inputs finish with one 1-byte step on the same classed
// table (the "tail path"); the pair walk converts to and from plain
// state numbers at Feed boundaries, so saved contexts are always
// whole-byte-aligned state numbers and can never resume mid-pair.
const (
	// pairAcceptFlag marks a pair-table entry whose intermediate state
	// (after the pair's first byte) is accepting.
	pairAcceptFlag = uint32(1) << 31

	// Classed2MaxTableBytes caps the pair table: LayoutClassed2 requests
	// whose table would exceed it fall back to LayoutClassed (the built
	// DFA's Layout() reports what was actually applied). The cap also
	// guarantees every row base fits below pairAcceptFlag. 64 MiB covers
	// every shipped pattern set (B217p, the largest, needs ~28 MiB)
	// while refusing pathological automata whose pair table would blow
	// the cache hierarchy the layout exists to exploit.
	Classed2MaxTableBytes = 64 << 20
)

// withPairs returns the classed2 form of a classed-layout DFA, adding
// the δ² pair table alongside the 1-byte classed table (which the tail
// and mid-pair accept paths still need). The successor function is
// untouched, so match streams stay byte-identical. If the pair table
// would exceed Classed2MaxTableBytes the receiver is returned
// unchanged — i.e. the layout falls back to classed.
func (d *DFA) withPairs() *DFA {
	if d.trans2 != nil {
		return d
	}
	k := d.numClasses
	stride2 := k * k
	entries := int64(d.numStates) * int64(stride2)
	if entries*4 > Classed2MaxTableBytes || entries >= int64(pairAcceptFlag) {
		return d
	}
	t2 := make([]uint32, int(entries))
	for s := 0; s < d.numStates; s++ {
		row := d.trans[s*k : (s+1)*k]
		out := t2[s*stride2 : (s+1)*stride2]
		for c1 := 0; c1 < k; c1++ {
			midBase := int(row[c1]) // pre-scaled: midState*k
			var flag uint32
			if uint32(midBase/k) >= d.acceptStart {
				flag = pairAcceptFlag
			}
			midRow := d.trans[midBase : midBase+k]
			pout := out[c1*k : (c1+1)*k]
			for c2 := 0; c2 < k; c2++ {
				next := midRow[c2] / uint32(k)
				pout[c2] = next*uint32(stride2) | flag
			}
		}
	}
	d2 := *d // trans, classOf, accepts are immutable and shared
	d2.trans2 = t2
	d2.stride2 = stride2
	return &d2
}

// pairStepSlow replays one pair through the 1-byte classed table,
// invoking onMatch for any accepting state visited after either byte.
// It is the cold path behind the hot loop's single accept compare,
// taken only when the pair ends accepting or passes through an
// accepting mid state; it returns the resulting pair-row base. state is
// a plain state number, pos the offset of b1.
func (d *DFA) pairStepSlow(state uint32, b1, b2 byte, pos int64, onMatch MatchFunc) uint32 {
	k := uint32(d.numClasses)
	scaledAccept := d.acceptStart * k
	midBase := d.trans[state*k+uint32(d.classOf[b1])]
	if midBase >= scaledAccept {
		for _, id := range d.accepts[(midBase-scaledAccept)/k] {
			onMatch(id, pos)
		}
	}
	finBase := d.trans[midBase+uint32(d.classOf[b2])]
	if finBase >= scaledAccept {
		for _, id := range d.accepts[(finBase-scaledAccept)/k] {
			onMatch(id, pos+1)
		}
	}
	return (finBase / k) * uint32(d.stride2)
}
