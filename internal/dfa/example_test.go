package dfa_test

import (
	"fmt"

	"matchfilter/internal/dfa"
	"matchfilter/internal/nfa"
	"matchfilter/internal/regexparse"
)

// ExampleFromNFA compiles a small pattern set, scans a payload as one
// flow, and shows the effect of the byte-class table layout: the classed
// automaton matches identically while its transition table stores one
// column per byte equivalence class instead of one per byte value.
func ExampleFromNFA() {
	sources := []string{"attack.*payload", "abc"}
	rules := make([]nfa.Rule, len(sources))
	for i, src := range sources {
		p, err := regexparse.ParsePCRE(src)
		if err != nil {
			fmt.Println("parse:", err)
			return
		}
		rules[i] = nfa.Rule{Pattern: p, MatchID: i + 1}
	}
	n, err := nfa.Build(rules)
	if err != nil {
		fmt.Println("nfa:", err)
		return
	}

	flat, err := dfa.FromNFA(n, dfa.Options{Layout: dfa.LayoutFlat})
	if err != nil {
		fmt.Println("dfa:", err)
		return
	}
	classed, err := dfa.FromNFA(n, dfa.Options{}) // LayoutAuto compresses
	if err != nil {
		fmt.Println("dfa:", err)
		return
	}

	for _, m := range dfa.NewEngine(classed).Run([]byte("xx abc attack with payload")) {
		fmt.Printf("match id %d at offset %d\n", m.ID, m.Pos)
	}
	fmt.Println("layouts:", flat.Layout(), "vs", classed.Layout())
	fmt.Println("classed table smaller:", classed.TableBytes() < flat.TableBytes())
	// Output:
	// match id 2 at offset 5
	// match id 1 at offset 25
	// layouts: flat vs classed
	// classed table smaller: true
}

// ExampleLayoutClassed2 opts into the 2-byte-stride pair table and
// shows the layout-independence invariant in action: the classed2
// engine reports the identical (id, pos) match stream — including on an
// odd-length payload, which exercises the 1-byte tail step — and a
// context saved from it restores into a flat engine built from the same
// NFA, because every layout speaks plain state numbers at its API
// boundary.
func ExampleLayoutClassed2() {
	sources := []string{"attack.*payload", "abc"}
	rules := make([]nfa.Rule, len(sources))
	for i, src := range sources {
		p, err := regexparse.ParsePCRE(src)
		if err != nil {
			fmt.Println("parse:", err)
			return
		}
		rules[i] = nfa.Rule{Pattern: p, MatchID: i + 1}
	}
	n, err := nfa.Build(rules)
	if err != nil {
		fmt.Println("nfa:", err)
		return
	}

	flat, err := dfa.FromNFA(n, dfa.Options{Layout: dfa.LayoutFlat})
	if err != nil {
		fmt.Println("dfa:", err)
		return
	}
	paired, err := dfa.FromNFA(n, dfa.Options{Layout: dfa.LayoutClassed2})
	if err != nil {
		fmt.Println("dfa:", err)
		return
	}

	payload := []byte("xx abc attack with payload!") // 27 bytes: odd, tail path taken
	fmt.Println("layout:", paired.Layout())
	fmt.Println("streams equal:",
		fmt.Sprint(dfa.NewEngine(paired).Run(payload)) == fmt.Sprint(dfa.NewEngine(flat).Run(payload)))

	// Save a context mid-flow from the classed2 engine, restore it into
	// the flat one, and finish the scan there.
	r := dfa.NewEngine(paired).NewRunner()
	r.Feed(payload[:9], func(id int32, pos int64) { fmt.Printf("match id %d at offset %d\n", id, pos) })
	r2 := dfa.NewEngine(flat).NewRunner()
	r2.SetState(r.State(), r.Pos())
	r2.Feed(payload[9:], func(id int32, pos int64) { fmt.Printf("match id %d at offset %d\n", id, pos) })
	// Output:
	// layout: classed2
	// streams equal: true
	// match id 2 at offset 5
	// match id 1 at offset 25
}
