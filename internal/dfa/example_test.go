package dfa_test

import (
	"fmt"

	"matchfilter/internal/dfa"
	"matchfilter/internal/nfa"
	"matchfilter/internal/regexparse"
)

// ExampleFromNFA compiles a small pattern set, scans a payload as one
// flow, and shows the effect of the byte-class table layout: the classed
// automaton matches identically while its transition table stores one
// column per byte equivalence class instead of one per byte value.
func ExampleFromNFA() {
	sources := []string{"attack.*payload", "abc"}
	rules := make([]nfa.Rule, len(sources))
	for i, src := range sources {
		p, err := regexparse.ParsePCRE(src)
		if err != nil {
			fmt.Println("parse:", err)
			return
		}
		rules[i] = nfa.Rule{Pattern: p, MatchID: i + 1}
	}
	n, err := nfa.Build(rules)
	if err != nil {
		fmt.Println("nfa:", err)
		return
	}

	flat, err := dfa.FromNFA(n, dfa.Options{Layout: dfa.LayoutFlat})
	if err != nil {
		fmt.Println("dfa:", err)
		return
	}
	classed, err := dfa.FromNFA(n, dfa.Options{}) // LayoutAuto compresses
	if err != nil {
		fmt.Println("dfa:", err)
		return
	}

	for _, m := range dfa.NewEngine(classed).Run([]byte("xx abc attack with payload")) {
		fmt.Printf("match id %d at offset %d\n", m.ID, m.Pos)
	}
	fmt.Println("layouts:", flat.Layout(), "vs", classed.Layout())
	fmt.Println("classed table smaller:", classed.TableBytes() < flat.TableBytes())
	// Output:
	// match id 2 at offset 5
	// match id 1 at offset 25
	// layouts: flat vs classed
	// classed table smaller: true
}
