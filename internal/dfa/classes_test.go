package dfa

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// TestClassMapIsExactQuotient checks the defining property of the byte
// equivalence classes against the flat table: two bytes share a class
// iff every state maps them to the same successor — no over-merging
// (which would corrupt matching) and no under-splitting (which would
// waste table space).
func TestClassMapIsExactQuotient(t *testing.T) {
	sources := [][]string{
		{"abc"},
		{"a|b|c", "ca"},
		{`/^GET[^\n]*passwd/i`, "attack.*payload"},
		{"vi.*emacs", "bsd.*gnu", "abc.*mm?o.*xyz"},
		{"[0-9]+[a-f]*xyz", "zz.*[^q]*end"},
	}
	for _, srcs := range sources {
		flat, err := FromNFA(buildNFA(t, srcs...), Options{Layout: LayoutFlat})
		if err != nil {
			t.Fatal(err)
		}
		classOf, k := computeClasses(flat.trans, flat.numStates)
		if k < 1 || k > 256 {
			t.Fatalf("%v: %d classes", srcs, k)
		}
		for b1 := 0; b1 < 256; b1++ {
			for b2 := b1 + 1; b2 < 256; b2++ {
				same := true
				for s := 0; s < flat.numStates && same; s++ {
					same = flat.trans[s*256+b1] == flat.trans[s*256+b2]
				}
				if got := classOf[b1] == classOf[b2]; got != same {
					t.Fatalf("%v: bytes %#x,%#x: same class %v, same columns %v",
						srcs, b1, b2, got, same)
				}
			}
		}
	}
}

// TestClassedNextMatchesFlat checks the repacked table pointwise: for
// every (state, byte), the classed automaton's successor equals the flat
// one's.
func TestClassedNextMatchesFlat(t *testing.T) {
	srcs := []string{"attack.*payload", `/^get[^\n]*passwd/i`, "[0-9]{2}x"}
	flat, err := FromNFA(buildNFA(t, srcs...), Options{Layout: LayoutFlat})
	if err != nil {
		t.Fatal(err)
	}
	classed, err := FromNFA(buildNFA(t, srcs...), Options{Layout: LayoutClassed})
	if err != nil {
		t.Fatal(err)
	}
	if classed.Layout() != LayoutClassed || flat.Layout() != LayoutFlat {
		t.Fatalf("layouts: flat=%v classed=%v", flat.Layout(), classed.Layout())
	}
	if classed.NumStates() != flat.NumStates() {
		t.Fatalf("state counts differ: %d vs %d", classed.NumStates(), flat.NumStates())
	}
	for s := uint32(0); s < uint32(flat.NumStates()); s++ {
		for b := 0; b < 256; b++ {
			if f, c := flat.Next(s, byte(b)), classed.Next(s, byte(b)); f != c {
				t.Fatalf("state %d byte %#x: flat→%d classed→%d", s, b, f, c)
			}
		}
	}
	// The expansion path must reproduce the flat table exactly.
	ft, ct := flat.TransitionTable(), classed.TransitionTable()
	for i := range ft {
		if ft[i] != ct[i] {
			t.Fatalf("expanded table differs at %d: %d vs %d", i, ft[i], ct[i])
		}
	}
}

// TestLayoutEquivalenceRandom property-checks the tentpole invariant at
// the dfa level: flat and classed engines built from the same NFA
// produce identical (id, pos) match streams on random inputs, across
// random rule sets, with and without minimization.
func TestLayoutEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	words := []string{"ab", "abc", "bc", "ca", "aab", "cc", "GET", "pass"}

	for trial := 0; trial < 40; trial++ {
		var sources []string
		for ri := 0; ri < 1+rng.Intn(4); ri++ {
			var sb strings.Builder
			if rng.Intn(4) == 0 {
				sb.WriteByte('^')
			}
			sb.WriteString(words[rng.Intn(len(words))])
			switch rng.Intn(4) {
			case 0:
				sb.WriteString("|" + words[rng.Intn(len(words))])
			case 1:
				sb.WriteString("?" + words[rng.Intn(len(words))])
			case 2:
				sb.WriteString(".*" + words[rng.Intn(len(words))])
			}
			sources = append(sources, sb.String())
		}
		minimize := trial%2 == 0

		n := buildNFA(t, sources...)
		flat, err := FromNFA(n, Options{Layout: LayoutFlat, Minimize: minimize})
		if err != nil {
			t.Fatal(err)
		}
		classed, err := FromNFA(n, Options{Layout: LayoutClassed, Minimize: minimize})
		if err != nil {
			t.Fatal(err)
		}
		flatE, classedE := NewEngine(flat), NewEngine(classed)
		for ii := 0; ii < 5; ii++ {
			input := make([]byte, 10+rng.Intn(120))
			for i := range input {
				input[i] = "abcGETps "[rng.Intn(9)]
			}
			if fmt.Sprint(flatE.Run(input)) != fmt.Sprint(classedE.Run(input)) {
				t.Fatalf("rules %v input %q: flat %v vs classed %v",
					sources, input, flatE.Run(input), classedE.Run(input))
			}
		}
	}
}

// TestLayoutAutoPicksClassed checks the Auto policy: pattern sets with
// few distinct byte behaviours compress and Auto keeps the classed form.
func TestLayoutAutoPicksClassed(t *testing.T) {
	d, err := FromNFA(buildNFA(t, "abc.*def", "xy?z"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Layout() != LayoutClassed {
		t.Fatalf("auto layout = %v, want classed", d.Layout())
	}
	if d.NumClasses() > autoClassThreshold {
		t.Fatalf("%d classes exceeds the auto threshold yet classed was kept", d.NumClasses())
	}
	if got := d.TableBytes(); got >= d.NumStates()*256*4 {
		t.Fatalf("classed table %d B not smaller than flat %d B", got, d.NumStates()*256*4)
	}
}

// TestMarshalRoundTripBothLayouts checks WriteTo/ReadDFA over all three
// layouts: the decoded automaton must preserve layout, class map and
// match behaviour exactly (for classed2 the pair table is rebuilt on
// decode rather than carried on the wire).
func TestMarshalRoundTripBothLayouts(t *testing.T) {
	for _, layout := range []Layout{LayoutFlat, LayoutClassed, LayoutClassed2} {
		d, err := FromNFA(buildNFA(t, "attack.*payload", "x[0-9]+y"), Options{Layout: layout})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := d.WriteTo(&buf); err != nil {
			t.Fatalf("%v: write: %v", layout, err)
		}
		got, err := ReadDFA(&buf)
		if err != nil {
			t.Fatalf("%v: read: %v", layout, err)
		}
		if got.Layout() != layout || got.NumClasses() != d.NumClasses() {
			t.Fatalf("%v: round-trip layout=%v classes=%d, want classes=%d",
				layout, got.Layout(), got.NumClasses(), d.NumClasses())
		}
		if !bytes.Equal(got.ClassMap(), d.ClassMap()) {
			t.Fatalf("%v: class map changed across round trip", layout)
		}
		input := []byte("zz attack with payload x129y zz")
		if fmt.Sprint(NewEngine(got).Run(input)) != fmt.Sprint(NewEngine(d).Run(input)) {
			t.Fatalf("%v: decoded engine disagrees with original", layout)
		}
	}
}

// TestMarshalTableSizeValidated is the regression test for the silent
// table-length acceptance: a v2 stream whose declared table length
// disagrees with numStates × numClasses must fail with ErrTableSize
// (and ErrBadFormat for callers matching the broader class), not decode
// shifted.
func TestMarshalTableSizeValidated(t *testing.T) {
	d, err := FromNFA(buildNFA(t, "abc"), Options{Layout: LayoutClassed})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// The u32 table length sits after magic(7) + 3×u32 header + layout
	// byte + u32 numClasses + 256-byte class map.
	off := len(dfaMagicV2) + 12 + 1 + 4 + 256
	corrupt := bytes.Clone(raw)
	corrupt[off]++ // declare one extra entry
	_, err = ReadDFA(bytes.NewReader(corrupt))
	if !errors.Is(err, ErrTableSize) {
		t.Fatalf("length mismatch: got %v, want ErrTableSize", err)
	}
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("ErrTableSize must also match ErrBadFormat, got %v", err)
	}

	// The encoder guards the same invariant: an inconsistent in-memory
	// automaton is refused rather than written undecodably.
	bad := &DFA{numStates: 2, numClasses: 7, trans: make([]uint32, 13), accepts: nil}
	if _, err := bad.WriteTo(&bytes.Buffer{}); !errors.Is(err, ErrTableSize) {
		t.Fatalf("encode of inconsistent table: got %v, want ErrTableSize", err)
	}
}

// TestMarshalRejectsBadClassMap checks that a class map referencing a
// class beyond numClasses — which would index past the table rows at
// scan time — is rejected at decode.
func TestMarshalRejectsBadClassMap(t *testing.T) {
	d, err := FromNFA(buildNFA(t, "abc"), Options{Layout: LayoutClassed})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	mapOff := len(dfaMagicV2) + 12 + 1 + 4
	raw[mapOff] = byte(d.NumClasses()) // class id == numClasses: out of range
	if _, err := ReadDFA(bytes.NewReader(raw)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("bad class map: got %v, want ErrBadFormat", err)
	}
}

// TestReadV1Format checks that flat v1 images written before the layout
// header keep decoding (the versioned-header compatibility contract).
func TestReadV1Format(t *testing.T) {
	d, err := FromNFA(buildNFA(t, "ab.*cd"), Options{Layout: LayoutFlat})
	if err != nil {
		t.Fatal(err)
	}
	// Re-frame the flat automaton in the v1 layout by hand.
	var buf bytes.Buffer
	buf.WriteString(dfaMagicV1)
	le := func(v uint32) { buf.Write([]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}) }
	le(uint32(d.numStates))
	le(d.start)
	le(d.acceptStart)
	for _, to := range d.trans {
		le(to)
	}
	le(uint32(len(d.accepts)))
	for _, ids := range d.accepts {
		le(uint32(len(ids)))
		for _, id := range ids {
			le(uint32(id))
		}
	}
	got, err := ReadDFA(&buf)
	if err != nil {
		t.Fatalf("v1 decode: %v", err)
	}
	if got.Layout() != LayoutFlat || got.NumClasses() != 256 {
		t.Fatalf("v1 decode: layout=%v classes=%d", got.Layout(), got.NumClasses())
	}
	input := []byte("xx ab 123 cd yy")
	if fmt.Sprint(NewEngine(got).Run(input)) != fmt.Sprint(NewEngine(d).Run(input)) {
		t.Fatal("v1-decoded engine disagrees with original")
	}
}
