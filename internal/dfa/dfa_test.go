package dfa

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"matchfilter/internal/nfa"
	"matchfilter/internal/regexparse"
)

func buildNFA(t testing.TB, sources ...string) *nfa.NFA {
	t.Helper()
	rules := make([]nfa.Rule, len(sources))
	for i, src := range sources {
		p, err := regexparse.ParsePCRE(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		rules[i] = nfa.Rule{Pattern: p, MatchID: i + 1}
	}
	n, err := nfa.Build(rules)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func buildDFA(t *testing.T, opts Options, sources ...string) *Engine {
	t.Helper()
	d, err := FromNFA(buildNFA(t, sources...), opts)
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(d)
}

func TestBasicMatch(t *testing.T) {
	e := buildDFA(t, Options{}, "abc")
	got := e.Run([]byte("xxabcxabc"))
	want := []MatchEvent{{1, 4}, {1, 8}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestMultiMatchDecisionSet(t *testing.T) {
	// Two rules accepting at the same position must both be reported
	// from one state's decision set.
	e := buildDFA(t, Options{}, "abc", "bc")
	got := e.Run([]byte("abc"))
	if len(got) != 2 {
		t.Fatalf("want 2 events, got %v", got)
	}
	ids := map[int32]bool{got[0].ID: true, got[1].ID: true}
	if !ids[1] || !ids[2] {
		t.Fatalf("want ids {1,2}, got %v", got)
	}
	if got[0].Pos != 2 || got[1].Pos != 2 {
		t.Fatalf("both matches end at 2: %v", got)
	}
}

func TestAnchored(t *testing.T) {
	e := buildDFA(t, Options{}, "^abc")
	if got := e.Run([]byte("xabc")); len(got) != 0 {
		t.Fatalf("anchored matched mid-flow: %v", got)
	}
	if got := e.Run([]byte("abc")); len(got) != 1 {
		t.Fatalf("anchored should match at start: %v", got)
	}
}

// equivEvents compares NFA and DFA match streams, which must be identical
// by construction.
func equivEvents(t *testing.T, sources []string, inputs []string) {
	t.Helper()
	n := buildNFA(t, sources...)
	ne := nfa.NewEngine(n)
	d, err := FromNFA(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, min := range []bool{false, true} {
		de := NewEngine(d)
		if min {
			dm, err := FromNFA(n, Options{Minimize: true})
			if err != nil {
				t.Fatal(err)
			}
			de = NewEngine(dm)
		}
		for _, input := range inputs {
			nGot := ne.Run([]byte(input))
			dGot := de.Run([]byte(input))
			if len(nGot) != len(dGot) {
				t.Fatalf("min=%v input %q: NFA %v vs DFA %v", min, input, nGot, dGot)
			}
			for i := range nGot {
				if int32(nGot[i].ID) != dGot[i].ID || nGot[i].Pos != dGot[i].Pos {
					t.Fatalf("min=%v input %q event %d: NFA %v vs DFA %v", min, input, i, nGot, dGot)
				}
			}
		}
	}
}

func TestNFAEquivalenceFixed(t *testing.T) {
	equivEvents(t,
		[]string{"vi.*emacs", "bsd.*gnu", "abc.*mm?o.*xyz"},
		[]string{
			"vi.emacs.bsd.gnu.abc.mo.xyz",
			"emacs vi gnu bsd",
			"vi vi emacs emacs",
			"abcmoxyz", "abcmmoxyz", "abcmmmoxyz",
			strings.Repeat("vi emacs ", 20),
		})
}

func TestNFAEquivalenceRandom(t *testing.T) {
	sources := []string{"ab+c", "x[yz]{2}w", "foo|bar", "^hdr[0-9]+", "a.c"}
	rng := rand.New(rand.NewSource(7))
	alphabet := "abcxyzw fo0123hdr"
	inputs := make([]string, 0, 40)
	for i := 0; i < 40; i++ {
		var sb strings.Builder
		for j := 0; j < 5+rng.Intn(80); j++ {
			sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		inputs = append(inputs, sb.String())
	}
	equivEvents(t, sources, inputs)
}

func TestStateExplosionAndCap(t *testing.T) {
	// k dot-star patterns over disjoint strings force ~2^k subset growth.
	var sources []string
	for i := 0; i < 12; i++ {
		sources = append(sources, fmt.Sprintf("s%02da.*e%02db", i, i))
	}
	n := buildNFA(t, sources...)
	_, err := FromNFA(n, Options{MaxStates: 2000})
	if !errors.Is(err, ErrTooManyStates) {
		t.Fatalf("want ErrTooManyStates, got %v", err)
	}
}

func TestDotStarMultiplicativeGrowth(t *testing.T) {
	// Adding a dot-star rule multiplies DFA size; adding its split parts
	// only adds states. This is the heart of Table I.
	base := []string{"alpha.*beta"}
	with := append([]string{}, base...)
	with = append(with, "gamma.*delta")
	split := append([]string{}, base...)
	split = append(split, "gamma", "delta")

	sizeOf := func(srcs []string) int {
		d, err := FromNFA(buildNFA(t, srcs...), Options{Minimize: true})
		if err != nil {
			t.Fatal(err)
		}
		return d.NumStates()
	}
	nBase, nWith, nSplit := sizeOf(base), sizeOf(with), sizeOf(split)
	if nWith < 2*nBase-4 {
		t.Errorf("dot-star rule should ~double states: base=%d with=%d", nBase, nWith)
	}
	if nSplit >= nWith {
		t.Errorf("split rules should be cheaper: split=%d with=%d", nSplit, nWith)
	}
}

func TestTableIStateRatio(t *testing.T) {
	// Table I: R1 (the dot-star forms) needs several times the DFA states
	// of R2 (the split segments). The paper reports 106 vs 23.
	r1 := []string{"vi.*emacs", "bsd.*gnu", "abc.*mm?o.*xyz"}
	r2 := []string{"emacs", "gnu", "xyz", "vi", "bsd", "abc", "mm?o"}
	d1, err := FromNFA(buildNFA(t, r1...), Options{Minimize: true})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := FromNFA(buildNFA(t, r2...), Options{Minimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if d1.NumStates() <= 2*d2.NumStates() {
		t.Errorf("R1 should need far more states than R2: %d vs %d",
			d1.NumStates(), d2.NumStates())
	}
	t.Logf("Table I reproduction: R1=%d states, R2=%d states (paper: 106 vs 23)",
		d1.NumStates(), d2.NumStates())
}

func TestMinimizeReducesStates(t *testing.T) {
	n := buildNFA(t, "ab|ac|ad", "xy?z")
	raw, err := FromNFA(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	min, err := FromNFA(n, Options{Minimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if min.NumStates() > raw.NumStates() {
		t.Fatalf("minimize grew the automaton: %d -> %d", raw.NumStates(), min.NumStates())
	}
}

func TestAcceptTailInvariant(t *testing.T) {
	for _, minimize := range []bool{false, true} {
		d, err := FromNFA(buildNFA(t, "abc", "a+b", "q.*r"), Options{Minimize: minimize})
		if err != nil {
			t.Fatal(err)
		}
		for s := uint32(0); s < uint32(d.NumStates()); s++ {
			hasIDs := len(d.Matches(s)) > 0
			if hasIDs != d.Accepting(s) {
				t.Fatalf("min=%v state %d: Accepting=%v but Matches=%v",
					minimize, s, d.Accepting(s), d.Matches(s))
			}
		}
	}
}

func TestRunnerStreaming(t *testing.T) {
	e := buildDFA(t, Options{}, "needle")
	r := e.NewRunner()
	var got []MatchEvent
	collect := func(id int32, pos int64) { got = append(got, MatchEvent{id, pos}) }
	r.Feed([]byte("nee"), collect)
	r.Feed([]byte("dle"), collect)
	if len(got) != 1 || got[0].Pos != 5 {
		t.Fatalf("streaming match: %v", got)
	}
	// Save/restore context, as flow multiplexing does.
	state, pos := r.State(), r.Pos()
	r.Reset()
	r.Feed([]byte("ne"), collect)
	r.SetState(state, pos)
	r.Feed([]byte("needle"), collect)
	if len(got) != 2 {
		t.Fatalf("after restore: %v", got)
	}
}

func TestFeedCountMatchesFeed(t *testing.T) {
	e := buildDFA(t, Options{}, "ab", "b+c")
	input := []byte(strings.Repeat("abbc x", 50))
	var n int64
	e.NewRunner().Feed(input, func(int32, int64) { n++ })
	if c := e.NewRunner().FeedCount(input); c != n {
		t.Fatalf("FeedCount=%d, Feed events=%d", c, n)
	}
}

func TestMemoryImage(t *testing.T) {
	flat, err := FromNFA(buildNFA(t, "abcdef"), Options{Layout: LayoutFlat})
	if err != nil {
		t.Fatal(err)
	}
	if want := flat.NumStates() * 256 * 4; flat.MemoryImageBytes() < want {
		t.Fatalf("flat image %d smaller than bare table %d", flat.MemoryImageBytes(), want)
	}
	classed, err := FromNFA(buildNFA(t, "abcdef"), Options{Layout: LayoutClassed})
	if err != nil {
		t.Fatal(err)
	}
	if want := classed.NumStates() * classed.NumClasses() * 4; classed.MemoryImageBytes() < want {
		t.Fatalf("classed image %d smaller than bare table %d", classed.MemoryImageBytes(), want)
	}
	if classed.MemoryImageBytes() >= flat.MemoryImageBytes() {
		t.Fatalf("classed image %d not smaller than flat %d (only %d classes used)",
			classed.MemoryImageBytes(), flat.MemoryImageBytes(), classed.NumClasses())
	}
}
