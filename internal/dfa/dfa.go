// Package dfa implements subset construction from an NFA into a flat
// transition-table deterministic automaton with multi-match decision sets
// (the Dq: Q → 2^Di component of the paper's 9-tuple), plus a fast
// matching engine and an optional minimization pass.
//
// The transition table is a single []uint32 indexed by state*256+byte, so
// advancing the automaton is one load per input byte. States are
// renumbered so that all accepting states form a contiguous tail, making
// the per-byte "did we match" test a single integer compare.
package dfa

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"slices"

	"matchfilter/internal/nfa"
	"matchfilter/internal/regexparse"
)

// DefaultMaxStates is the construction budget used when Options.MaxStates
// is zero. A state costs 1 KiB of transition table, so the default bounds
// the table at 128 MiB — comfortably above every constructible pattern
// set shipped in internal/patterns, and exceeded (by design) by the
// B217p-style sets.
const DefaultMaxStates = 1 << 17

// ErrTooManyStates is returned (wrapped) when subset construction exceeds
// the state budget; the paper's Table V reports exactly this outcome for
// B217p ("could not be constructed as a DFA").
var ErrTooManyStates = errors.New("dfa: state budget exceeded")

// Options configures construction.
type Options struct {
	// MaxStates caps subset construction; 0 means DefaultMaxStates.
	MaxStates int
	// Minimize runs a Moore partition-refinement pass after construction.
	// Distinct match-id sets are kept distinguishable, so minimization
	// never merges states that report different matches.
	Minimize bool
}

// DFA is a deterministic multi-match automaton.
type DFA struct {
	numStates   int
	start       uint32
	trans       []uint32  // numStates*256, row-major
	acceptStart uint32    // states >= acceptStart are accepting
	accepts     [][]int32 // match ids for states >= acceptStart, indexed by state-acceptStart
}

// FromNFA runs subset construction on n.
func FromNFA(n *nfa.NFA, opts Options) (*DFA, error) {
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}

	c := newConstructor(n, maxStates)
	if err := c.run(); err != nil {
		return nil, err
	}
	d := c.finish()
	if opts.Minimize {
		d = d.minimize()
	}
	return d, nil
}

// constructor holds the working state of subset construction.
type constructor struct {
	n         *nfa.NFA
	maxStates int

	seen   []bool            // scratch for epsilon closures
	subset map[string]uint32 // closure key -> DFA state
	queue  []closureEntry    // worklist of unexplored states

	trans   [][]uint32 // per explored state: 256 targets
	accepts [][]int32  // per state: sorted match ids (nil if none)
}

type closureEntry struct {
	id      uint32
	closure []nfa.StateID
}

func newConstructor(n *nfa.NFA, maxStates int) *constructor {
	return &constructor{
		n:         n,
		maxStates: maxStates,
		seen:      make([]bool, n.NumStates()),
		subset:    make(map[string]uint32, 1024),
	}
}

// intern returns the DFA state for a closure, creating it if new.
func (c *constructor) intern(closure []nfa.StateID) (uint32, error) {
	key := closureKey(closure)
	if id, ok := c.subset[key]; ok {
		return id, nil
	}
	if len(c.accepts) >= c.maxStates {
		return 0, fmt.Errorf("%w: more than %d states", ErrTooManyStates, c.maxStates)
	}
	id := uint32(len(c.accepts))
	c.subset[key] = id
	c.accepts = append(c.accepts, matchSet(c.n, closure))
	c.queue = append(c.queue, closureEntry{id: id, closure: closure})
	return id, nil
}

func (c *constructor) run() error {
	startClosure := c.n.EpsClosure([]nfa.StateID{c.n.Start}, c.seen)
	if _, err := c.intern(startClosure); err != nil {
		return err
	}

	var buckets [regexparse.AlphabetSize][]nfa.StateID
	for len(c.queue) > 0 {
		entry := c.queue[0]
		c.queue = c.queue[1:]

		for i := range buckets {
			buckets[i] = buckets[i][:0]
		}
		for _, s := range entry.closure {
			for _, t := range c.n.States[s].Trans {
				to := t.To
				forEachClassByte(t.Class, func(b byte) {
					buckets[b] = append(buckets[b], to)
				})
			}
		}

		row := make([]uint32, regexparse.AlphabetSize)
		// Bytes with identical raw target sets share the same successor;
		// cache on the raw-set key to skip redundant closure work.
		local := make(map[string]uint32, 8)
		for b := 0; b < regexparse.AlphabetSize; b++ {
			targets := buckets[b]
			slices.Sort(targets)
			targets = slices.Compact(targets)
			rawKey := closureKey(targets)
			if id, ok := local[rawKey]; ok {
				row[b] = id
				continue
			}
			closure := c.n.EpsClosure(targets, c.seen)
			id, err := c.intern(closure)
			if err != nil {
				return err
			}
			local[rawKey] = id
			row[b] = id
		}
		c.trans = append(c.trans, row)
	}
	return nil
}

// finish renumbers states so accepting ones form a contiguous tail and
// packs the transition rows into one flat array.
func (c *constructor) finish() *DFA {
	numStates := len(c.trans)
	perm := make([]uint32, numStates) // old -> new
	numAccept := 0
	for _, m := range c.accepts {
		if m != nil {
			numAccept++
		}
	}
	acceptStart := uint32(numStates - numAccept)
	nextPlain, nextAccept := uint32(0), acceptStart
	for s, m := range c.accepts {
		if m == nil {
			perm[s] = nextPlain
			nextPlain++
		} else {
			perm[s] = nextAccept
			nextAccept++
		}
	}

	d := &DFA{
		numStates:   numStates,
		start:       perm[0], // state 0 was interned first from the start closure
		trans:       make([]uint32, numStates*regexparse.AlphabetSize),
		acceptStart: acceptStart,
		accepts:     make([][]int32, numAccept),
	}
	for old, row := range c.trans {
		base := int(perm[old]) * regexparse.AlphabetSize
		for b, to := range row {
			d.trans[base+b] = perm[to]
		}
		if m := c.accepts[old]; m != nil {
			d.accepts[perm[old]-acceptStart] = m
		}
	}
	return d
}

// matchSet returns the sorted, deduplicated match ids of a closure, or nil
// when the closure is not accepting.
func matchSet(n *nfa.NFA, closure []nfa.StateID) []int32 {
	var ids []int32
	for _, s := range closure {
		for _, id := range n.States[s].Matches {
			ids = append(ids, int32(id))
		}
	}
	if ids == nil {
		return nil
	}
	slices.Sort(ids)
	return slices.Compact(ids)
}

// closureKey encodes a sorted state list as a map key.
func closureKey(states []nfa.StateID) string {
	buf := make([]byte, 4*len(states))
	for i, s := range states {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(s))
	}
	return string(buf)
}

// forEachClassByte invokes fn for every byte in the class, scanning the
// bitmap words directly to avoid a temporary slice.
func forEachClassByte(cl regexparse.Class, fn func(b byte)) {
	for w := 0; w < 4; w++ {
		word := cl[w]
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			fn(byte(w*64 + bit))
			word &^= 1 << bit
		}
	}
}

// NumStates returns the number of DFA states, the "DFA Qs" column of
// Table V.
func (d *DFA) NumStates() int { return d.numStates }

// Start returns the initial state.
func (d *DFA) Start() uint32 { return d.start }

// Next returns δ(state, c).
func (d *DFA) Next(state uint32, c byte) uint32 {
	return d.trans[int(state)*regexparse.AlphabetSize+int(c)]
}

// Accepting reports whether a state has a non-empty decision set.
func (d *DFA) Accepting(state uint32) bool { return state >= d.acceptStart }

// Matches returns the decision set Dq(state), nil for non-accepting
// states. The returned slice must not be modified.
func (d *DFA) Matches(state uint32) []int32 {
	if state < d.acceptStart {
		return nil
	}
	return d.accepts[state-d.acceptStart]
}

// TransitionTable returns the flat row-major transition table
// (NumStates×256). It is shared, not copied: callers must treat it as
// read-only. The HFA and XFA baselines repack it into their own layouts.
func (d *DFA) TransitionTable() []uint32 { return d.trans }

// AcceptStart returns the first accepting state id; states in
// [AcceptStart, NumStates) are exactly the accepting states.
func (d *DFA) AcceptStart() uint32 { return d.acceptStart }

// AcceptSets returns the decision sets of the accepting states, indexed
// by state-AcceptStart. Shared, read-only: composite engines use it to
// inline the scan loop without a per-state method call.
func (d *DFA) AcceptSets() [][]int32 { return d.accepts }

// MemoryImageBytes returns the contiguous memory needed for matching: the
// flat transition table plus the accept-set arrays and their index.
func (d *DFA) MemoryImageBytes() int {
	total := len(d.trans) * 4
	total += len(d.accepts) * 8 // offset/length index per accepting state
	for _, m := range d.accepts {
		total += len(m) * 4
	}
	return total
}
