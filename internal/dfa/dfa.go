// Package dfa implements subset construction from an NFA into a
// transition-table deterministic automaton with multi-match decision sets
// (the Dq: Q → 2^Di component of the paper's 9-tuple), plus a fast
// matching engine and an optional minimization pass.
//
// Three table layouts are supported, selected by Options.Layout:
//
//   - Flat: a single []uint32 indexed by state*256+byte, so advancing
//     the automaton is one load per input byte.
//   - Classed (the default via LayoutAuto): a 256-byte equivalence-class
//     map plus a numStates×numClasses table indexed by
//     state*numClasses+classOf[byte] — two dependent loads per byte, but
//     a table typically 5–20× smaller that stays cache-resident as state
//     counts grow. See classes.go.
//   - Classed2 (explicit opt-in): the classed layout plus a
//     numStates×numClasses² pair table encoding δ², so the loop-carried
//     dependency chain is one table load per two input bytes, with a
//     1-byte tail step at chunk boundaries. See pairtable.go.
//
// Layout-independence invariant: every layout encodes the identical
// successor function and produces byte-for-byte identical (id, pos)
// match streams; only memory footprint and load pattern differ. All
// APIs that cross the package boundary — Next, Runner.State/SetState,
// Matches, and the wire format — speak plain state numbers, never
// layout-internal scaled row bases, so a context saved from a flat
// engine restores into a classed or classed2 one built from the same
// NFA (and vice versa), and contexts can never encode a position inside
// a classed2 byte pair. In every layout states are renumbered so that
// all accepting states form a contiguous tail, making the per-byte "did
// we match" test a single integer compare.
//
// Concurrency: a *DFA and the Engine wrapping it are immutable after
// construction and safe for unlimited concurrent readers. All mutable
// scan state lives in Runner, which serves exactly one flow at a time.
package dfa

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"slices"

	"matchfilter/internal/nfa"
	"matchfilter/internal/regexparse"
)

// DefaultMaxStates is the construction budget used when Options.MaxStates
// is zero. A state costs 1 KiB of transition table, so the default bounds
// the table at 128 MiB — comfortably above every constructible pattern
// set shipped in internal/patterns, and exceeded (by design) by the
// B217p-style sets.
const DefaultMaxStates = 1 << 17

// ErrTooManyStates is returned (wrapped) when subset construction exceeds
// the state budget; the paper's Table V reports exactly this outcome for
// B217p ("could not be constructed as a DFA").
var ErrTooManyStates = errors.New("dfa: state budget exceeded")

// Options configures construction.
type Options struct {
	// MaxStates caps subset construction; 0 means DefaultMaxStates.
	MaxStates int
	// Minimize runs a Moore partition-refinement pass after construction.
	// Distinct match-id sets are kept distinguishable, so minimization
	// never merges states that report different matches.
	Minimize bool
	// Layout selects the transition-table representation. The zero value
	// (LayoutAuto) applies byte-class compression whenever it shrinks the
	// table at least 2×; LayoutFlat forces the paper's one-load-per-byte
	// table and exists so baselines and equivalence tests can compare the
	// two layouts on identical automata.
	Layout Layout
}

// DFA is a deterministic multi-match automaton. It is immutable after
// construction and safe for concurrent use by any number of goroutines;
// per-flow scan state lives in Runner. The slices returned by accessors
// are shared views that callers must treat as read-only.
type DFA struct {
	numStates int
	start     uint32
	// trans is the row-major transition table: numStates*256 for the
	// flat layout, numStates*numClasses for the classed layout. Classed
	// entries are pre-scaled row bases (next*numClasses, see classes.go);
	// flat entries are plain state numbers.
	trans []uint32
	// numClasses is the row stride: 256 for flat, the byte
	// equivalence-class count for classed.
	numClasses int
	// classOf maps each input byte to its equivalence class; nil marks
	// the flat layout (the discriminant every hot loop branches on once
	// per Feed call, never per byte).
	classOf []uint8
	// trans2 is the optional 2-byte-stride pair table
	// (numStates×numClasses², entries are pre-scaled pair-row bases,
	// possibly carrying pairAcceptFlag — see pairtable.go); nil unless
	// the layout is classed2. When present, trans and classOf are also
	// kept for the odd-byte tail and mid-pair accept paths.
	trans2 []uint32
	// stride2 is the pair-table row stride numClasses²; 0 unless classed2.
	stride2     int
	acceptStart uint32    // states >= acceptStart are accepting
	accepts     [][]int32 // match ids for states >= acceptStart, indexed by state-acceptStart
}

// FromNFA runs subset construction on n. Construction always builds the
// flat table first (minimization also operates on it); the requested
// layout is applied as a final repacking step, so layout choice can
// never change the automaton's language or decision sets.
func FromNFA(n *nfa.NFA, opts Options) (*DFA, error) {
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}

	c := newConstructor(n, maxStates)
	if err := c.run(); err != nil {
		return nil, err
	}
	d := c.finish()
	if opts.Minimize {
		d = d.minimize()
	}
	return d.applyLayout(opts.Layout), nil
}

// constructor holds the working state of subset construction.
type constructor struct {
	n         *nfa.NFA
	maxStates int

	seen   []bool            // scratch for epsilon closures
	subset map[string]uint32 // closure key -> DFA state
	queue  []closureEntry    // worklist of unexplored states

	trans   [][]uint32 // per explored state: 256 targets
	accepts [][]int32  // per state: sorted match ids (nil if none)
}

type closureEntry struct {
	id      uint32
	closure []nfa.StateID
}

func newConstructor(n *nfa.NFA, maxStates int) *constructor {
	return &constructor{
		n:         n,
		maxStates: maxStates,
		seen:      make([]bool, n.NumStates()),
		subset:    make(map[string]uint32, 1024),
	}
}

// intern returns the DFA state for a closure, creating it if new.
func (c *constructor) intern(closure []nfa.StateID) (uint32, error) {
	key := closureKey(closure)
	if id, ok := c.subset[key]; ok {
		return id, nil
	}
	if len(c.accepts) >= c.maxStates {
		return 0, fmt.Errorf("%w: more than %d states", ErrTooManyStates, c.maxStates)
	}
	id := uint32(len(c.accepts))
	c.subset[key] = id
	c.accepts = append(c.accepts, matchSet(c.n, closure))
	c.queue = append(c.queue, closureEntry{id: id, closure: closure})
	return id, nil
}

func (c *constructor) run() error {
	startClosure := c.n.EpsClosure([]nfa.StateID{c.n.Start}, c.seen)
	if _, err := c.intern(startClosure); err != nil {
		return err
	}

	var buckets [regexparse.AlphabetSize][]nfa.StateID
	for len(c.queue) > 0 {
		entry := c.queue[0]
		c.queue = c.queue[1:]

		for i := range buckets {
			buckets[i] = buckets[i][:0]
		}
		for _, s := range entry.closure {
			for _, t := range c.n.States[s].Trans {
				to := t.To
				forEachClassByte(t.Class, func(b byte) {
					buckets[b] = append(buckets[b], to)
				})
			}
		}

		row := make([]uint32, regexparse.AlphabetSize)
		// Bytes with identical raw target sets share the same successor;
		// cache on the raw-set key to skip redundant closure work.
		local := make(map[string]uint32, 8)
		for b := 0; b < regexparse.AlphabetSize; b++ {
			targets := buckets[b]
			slices.Sort(targets)
			targets = slices.Compact(targets)
			rawKey := closureKey(targets)
			if id, ok := local[rawKey]; ok {
				row[b] = id
				continue
			}
			closure := c.n.EpsClosure(targets, c.seen)
			id, err := c.intern(closure)
			if err != nil {
				return err
			}
			local[rawKey] = id
			row[b] = id
		}
		c.trans = append(c.trans, row)
	}
	return nil
}

// finish renumbers states so accepting ones form a contiguous tail and
// packs the transition rows into one flat array.
func (c *constructor) finish() *DFA {
	numStates := len(c.trans)
	perm := make([]uint32, numStates) // old -> new
	numAccept := 0
	for _, m := range c.accepts {
		if m != nil {
			numAccept++
		}
	}
	acceptStart := uint32(numStates - numAccept)
	nextPlain, nextAccept := uint32(0), acceptStart
	for s, m := range c.accepts {
		if m == nil {
			perm[s] = nextPlain
			nextPlain++
		} else {
			perm[s] = nextAccept
			nextAccept++
		}
	}

	d := &DFA{
		numStates:   numStates,
		start:       perm[0], // state 0 was interned first from the start closure
		trans:       make([]uint32, numStates*regexparse.AlphabetSize),
		numClasses:  regexparse.AlphabetSize,
		acceptStart: acceptStart,
		accepts:     make([][]int32, numAccept),
	}
	for old, row := range c.trans {
		base := int(perm[old]) * regexparse.AlphabetSize
		for b, to := range row {
			d.trans[base+b] = perm[to]
		}
		if m := c.accepts[old]; m != nil {
			d.accepts[perm[old]-acceptStart] = m
		}
	}
	return d
}

// matchSet returns the sorted, deduplicated match ids of a closure, or nil
// when the closure is not accepting.
func matchSet(n *nfa.NFA, closure []nfa.StateID) []int32 {
	var ids []int32
	for _, s := range closure {
		for _, id := range n.States[s].Matches {
			ids = append(ids, int32(id))
		}
	}
	if ids == nil {
		return nil
	}
	slices.Sort(ids)
	return slices.Compact(ids)
}

// closureKey encodes a sorted state list as a map key.
func closureKey(states []nfa.StateID) string {
	buf := make([]byte, 4*len(states))
	for i, s := range states {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(s))
	}
	return string(buf)
}

// forEachClassByte invokes fn for every byte in the class, scanning the
// bitmap words directly to avoid a temporary slice.
func forEachClassByte(cl regexparse.Class, fn func(b byte)) {
	for w := 0; w < 4; w++ {
		word := cl[w]
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			fn(byte(w*64 + bit))
			word &^= 1 << bit
		}
	}
}

// NumStates returns the number of DFA states, the "DFA Qs" column of
// Table V.
func (d *DFA) NumStates() int { return d.numStates }

// Start returns the initial state.
func (d *DFA) Start() uint32 { return d.start }

// Next returns δ(state, c), resolving the table layout per call. Hot
// loops should not use it; they read the layout once via ScanTable (or
// for the dfa package itself, the specialized loops in Runner.Feed).
func (d *DFA) Next(state uint32, c byte) uint32 {
	if d.classOf == nil {
		return d.trans[int(state)*regexparse.AlphabetSize+int(c)]
	}
	return d.trans[int(state)*d.numClasses+int(d.classOf[c])] / uint32(d.numClasses)
}

// Accepting reports whether a state has a non-empty decision set.
func (d *DFA) Accepting(state uint32) bool { return state >= d.acceptStart }

// Matches returns the decision set Dq(state), nil for non-accepting
// states. The returned slice must not be modified.
func (d *DFA) Matches(state uint32) []int32 {
	if state < d.acceptStart {
		return nil
	}
	return d.accepts[state-d.acceptStart]
}

// TransitionTable returns a flat row-major transition table
// (NumStates×256) regardless of layout: for a flat DFA it is the table
// itself (shared — callers must treat it as read-only), for a classed
// DFA it is a freshly materialized expansion through the class map. The
// HFA and XFA baselines repack it into their own layouts; they compile
// with LayoutFlat so the expansion copy never happens in practice.
func (d *DFA) TransitionTable() []uint32 { return d.flattened() }

// ScanTable returns the hot-loop view of the transition function: the
// raw table, the byte→class map, and the row stride. classOf is nil for
// the flat layout (stride 256, index state*256+b, entries are state
// numbers). For the classed layout the walk runs over pre-scaled row
// bases: st starts at state*stride, steps as st = trans[st+classOf[b]],
// and st/stride recovers the state number (for accept-set indexing and
// context save/restore). All three are shared, read-only views;
// composite engines (the MFA) cache them once and inline the walk.
func (d *DFA) ScanTable() (trans []uint32, classOf []uint8, stride int) {
	return d.trans, d.classOf, d.numClasses
}

// Layout reports the table representation actually applied: LayoutFlat,
// LayoutClassed, or LayoutClassed2 (never LayoutAuto — Auto resolves at
// construction time; a LayoutClassed2 request whose pair table exceeds
// Classed2MaxTableBytes resolves to LayoutClassed).
func (d *DFA) Layout() Layout {
	switch {
	case d.classOf == nil:
		return LayoutFlat
	case d.trans2 != nil:
		return LayoutClassed2
	default:
		return LayoutClassed
	}
}

// NumClasses returns the number of byte equivalence classes, which is
// also the table's row stride: 256 for the flat layout.
func (d *DFA) NumClasses() int { return d.numClasses }

// ClassMap returns the 256-entry byte→class map of a classed DFA, or
// nil for the flat layout. Shared, read-only.
func (d *DFA) ClassMap() []uint8 { return d.classOf }

// TableBytes returns the size of the transition table(s) plus, for the
// classed layouts, the class map — the footprint the layout choice
// trades against scan-loop load count. For classed2 this includes both
// the pair table and the retained 1-byte table.
func (d *DFA) TableBytes() int {
	n := (len(d.trans) + len(d.trans2)) * 4
	if d.classOf != nil {
		n += len(d.classOf)
	}
	return n
}

// PairTable returns the hot-loop view of the classed2 pair table: the
// δ² table and its row stride numClasses². Both are nil/0 unless
// Layout() == LayoutClassed2. Entries are pre-scaled pair-row bases
// (next×stride2), with bit 31 set when the pair's intermediate state is
// accepting; a walk therefore steps st2 = trans2[st2 +
// classOf[b1]*NumClasses + classOf[b2]] and treats any entry ≥
// AcceptStart×stride2 as "consult the 1-byte table for exact match
// offsets" (see pairtable.go). Shared, read-only.
func (d *DFA) PairTable() (trans2 []uint32, stride2 int) {
	return d.trans2, d.stride2
}

// AcceptStart returns the first accepting state id; states in
// [AcceptStart, NumStates) are exactly the accepting states.
func (d *DFA) AcceptStart() uint32 { return d.acceptStart }

// AcceptSets returns the decision sets of the accepting states, indexed
// by state-AcceptStart. Shared, read-only: composite engines use it to
// inline the scan loop without a per-state method call.
func (d *DFA) AcceptSets() [][]int32 { return d.accepts }

// MemoryImageBytes returns the contiguous memory needed for matching:
// the transition table in its actual layout (plus class map), and the
// accept-set arrays with their index.
func (d *DFA) MemoryImageBytes() int {
	total := d.TableBytes()
	total += len(d.accepts) * 8 // offset/length index per accepting state
	for _, m := range d.accepts {
		total += len(m) * 4
	}
	return total
}
