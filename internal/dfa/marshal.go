package dfa

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Serialization of compiled automata. The format is a simple
// little-endian framing, versioned so stored engines fail loudly rather
// than misbehave after an incompatible change:
//
//	magic "MFDFA1\n", u32 numStates, u32 start, u32 acceptStart
//	numStates*256 × u32 transition table
//	u32 numAccept, then per accepting state: u32 count, count × i32 ids
const dfaMagic = "MFDFA1\n"

// ErrBadFormat is returned (wrapped) when decoding unrecognized or
// corrupt data.
var ErrBadFormat = errors.New("dfa: bad serialized format")

// WriteTo serializes the automaton. It implements io.WriterTo.
func (d *DFA) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriterSize(w, 1<<16)}
	write := func(v any) {
		if cw.err == nil {
			cw.err = binary.Write(cw, binary.LittleEndian, v)
		}
	}
	if _, err := cw.Write([]byte(dfaMagic)); err != nil {
		return cw.n, err
	}
	write(uint32(d.numStates))
	write(d.start)
	write(d.acceptStart)
	write(d.trans)
	write(uint32(len(d.accepts)))
	for _, ids := range d.accepts {
		write(uint32(len(ids)))
		write(ids)
	}
	if cw.err == nil {
		cw.err = cw.w.(*bufio.Writer).Flush()
	}
	return cw.n, cw.err
}

// ReadDFA deserializes an automaton written by WriteTo, validating
// structural invariants so a corrupt file cannot produce out-of-range
// states at scan time.
//
// ReadDFA never reads past the end of the serialized automaton, so it
// composes with further sections on the same stream; callers should pass
// an already-buffered reader (it performs many small reads).
func ReadDFA(r io.Reader) (*DFA, error) {
	br := r
	magic := make([]byte, len(dfaMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(magic) != dfaMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadFormat, magic)
	}
	var numStates, start, acceptStart uint32
	for _, v := range []*uint32{&numStates, &start, &acceptStart} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("%w: header: %v", ErrBadFormat, err)
		}
	}
	// Engines beyond twice the default construction budget are rejected:
	// the bound keeps a corrupt header from demanding a multi-gigabyte
	// allocation before any data is validated.
	const maxStates = 2 * DefaultMaxStates
	if numStates == 0 || numStates > maxStates ||
		start >= numStates || acceptStart > numStates {
		return nil, fmt.Errorf("%w: implausible header (states=%d start=%d acceptStart=%d)",
			ErrBadFormat, numStates, start, acceptStart)
	}
	d := &DFA{
		numStates:   int(numStates),
		start:       start,
		acceptStart: acceptStart,
	}
	// Read the table in bounded chunks, growing with the data actually
	// present, so a corrupt header on a truncated stream fails after at
	// most one chunk instead of allocating the full claimed table.
	total := int(numStates) * 256
	d.trans = make([]uint32, 0, min(total, 1<<18))
	chunk := make([]uint32, 1<<18)
	for len(d.trans) < total {
		k := min(total-len(d.trans), len(chunk))
		if err := binary.Read(br, binary.LittleEndian, chunk[:k]); err != nil {
			return nil, fmt.Errorf("%w: transition table: %v", ErrBadFormat, err)
		}
		d.trans = append(d.trans, chunk[:k]...)
	}
	for _, to := range d.trans {
		if to >= numStates {
			return nil, fmt.Errorf("%w: transition to state %d of %d", ErrBadFormat, to, numStates)
		}
	}
	var numAccept uint32
	if err := binary.Read(br, binary.LittleEndian, &numAccept); err != nil {
		return nil, fmt.Errorf("%w: accept count: %v", ErrBadFormat, err)
	}
	if numAccept != numStates-acceptStart {
		return nil, fmt.Errorf("%w: accept count %d != %d", ErrBadFormat, numAccept, numStates-acceptStart)
	}
	d.accepts = make([][]int32, numAccept)
	for i := range d.accepts {
		var count uint32
		if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
			return nil, fmt.Errorf("%w: accept set %d: %v", ErrBadFormat, i, err)
		}
		if count == 0 || count > 1<<20 {
			return nil, fmt.Errorf("%w: accept set %d has %d ids", ErrBadFormat, i, count)
		}
		ids := make([]int32, count)
		if err := binary.Read(br, binary.LittleEndian, ids); err != nil {
			return nil, fmt.Errorf("%w: accept set %d: %v", ErrBadFormat, i, err)
		}
		d.accepts[i] = ids
	}
	return d, nil
}

// countingWriter tracks bytes written and latches the first error.
type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	if cw.err != nil {
		return 0, cw.err
	}
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	cw.err = err
	return n, err
}
