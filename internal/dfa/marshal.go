package dfa

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Serialization of compiled automata. The format is a simple
// little-endian framing, versioned so stored engines fail loudly rather
// than misbehave after an incompatible change.
//
// Version 3 (written for classed2 automata; identical framing to v2
// with layout code 2 allowed):
//
//	magic "MFDFA3\n", then the v2 body with u8 layout = 2. The pair
//	table is NEVER serialized — it is a pure function of the 1-byte
//	classed table (δ² = δ∘δ) and is rebuilt on decode, so images stay
//	small and the per-entry bounds check stays meaningful.
//
// Version 2 (written by WriteTo for flat and classed automata, so
// images those older readers can use keep the older magic):
//
//	magic "MFDFA2\n", u32 numStates, u32 start, u32 acceptStart
//	u8 layout (0 = flat, 1 = classed), u32 numClasses
//	classed only: 256 × u8 byte→class map
//	u32 tableLen — must equal numStates × numClasses (ErrTableSize)
//	tableLen × u32 transition table
//	u32 numAccept, then per accepting state: u32 count, count × i32 ids
//
// Version 1 (flat only, still readable so images written by older
// mfabuild binaries keep loading):
//
//	magic "MFDFA1\n", u32 numStates, u32 start, u32 acceptStart
//	numStates*256 × u32 transition table
//	u32 numAccept, then per accepting state: u32 count, count × i32 ids
const (
	dfaMagicV1 = "MFDFA1\n"
	dfaMagicV2 = "MFDFA2\n"
	dfaMagicV3 = "MFDFA3\n"
)

// Layout wire codes of the v2/v3 header.
const (
	wireLayoutFlat     = 0
	wireLayoutClassed  = 1
	wireLayoutClassed2 = 2
)

// ErrBadFormat is returned (wrapped) when decoding unrecognized or
// corrupt data.
var ErrBadFormat = errors.New("dfa: bad serialized format")

// ErrTableSize is returned (wrapped, alongside ErrBadFormat) when a
// serialized transition table's declared length disagrees with
// numStates × numClasses. Before the explicit length field, such a
// mismatch silently shifted the decode frame and produced an automaton
// that misbehaved at scan time; now it is a typed decode failure, in the
// style of the internal/pcap error taxonomy.
var ErrTableSize = errors.New("dfa: transition table size mismatch")

// WriteTo serializes the automaton: v2 format for flat and classed
// layouts, v3 for classed2 (same framing, newer magic, layout code 2;
// only the 1-byte table travels — the pair table is rebuilt on decode).
// It implements io.WriterTo. An internally inconsistent receiver (table
// length not equal to numStates × numClasses — impossible for automata
// built by this package, but conceivable for a hand-assembled one) is
// rejected with ErrTableSize rather than written as an undecodable
// stream.
func (d *DFA) WriteTo(w io.Writer) (int64, error) {
	if len(d.trans) != d.numStates*d.numClasses {
		return 0, fmt.Errorf("%w: table has %d entries, want %d states × %d classes = %d",
			ErrTableSize, len(d.trans), d.numStates, d.numClasses, d.numStates*d.numClasses)
	}
	cw := &countingWriter{w: bufio.NewWriterSize(w, 1<<16)}
	write := func(v any) {
		if cw.err == nil {
			cw.err = binary.Write(cw, binary.LittleEndian, v)
		}
	}
	magic := dfaMagicV2
	if d.trans2 != nil {
		magic = dfaMagicV3
	}
	if _, err := cw.Write([]byte(magic)); err != nil {
		return cw.n, err
	}
	write(uint32(d.numStates))
	write(d.start)
	write(d.acceptStart)
	// The wire format always carries plain state numbers: classed tables
	// are unscaled on encode (their in-memory entries are pre-scaled row
	// bases) and rescaled on decode, keeping stored images portable and
	// the per-entry bounds check meaningful.
	wireTrans := d.trans
	if d.classOf == nil {
		write(uint8(wireLayoutFlat))
		write(uint32(d.numClasses))
	} else {
		if d.trans2 != nil {
			write(uint8(wireLayoutClassed2))
		} else {
			write(uint8(wireLayoutClassed))
		}
		write(uint32(d.numClasses))
		write(d.classOf)
		wireTrans = make([]uint32, len(d.trans))
		for i, to := range d.trans {
			wireTrans[i] = to / uint32(d.numClasses)
		}
	}
	write(uint32(len(wireTrans)))
	write(wireTrans)
	write(uint32(len(d.accepts)))
	for _, ids := range d.accepts {
		write(uint32(len(ids)))
		write(ids)
	}
	if cw.err == nil {
		cw.err = cw.w.(*bufio.Writer).Flush()
	}
	return cw.n, cw.err
}

// ReadDFA deserializes an automaton written by WriteTo (either format
// version), validating structural invariants so a corrupt file cannot
// produce out-of-range states or classes at scan time.
//
// ReadDFA never reads past the end of the serialized automaton, so it
// composes with further sections on the same stream; callers should pass
// an already-buffered reader (it performs many small reads).
func ReadDFA(r io.Reader) (*DFA, error) {
	magic := make([]byte, len(dfaMagicV2))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	var version int
	switch string(magic) {
	case dfaMagicV1:
		version = 1
	case dfaMagicV2:
		version = 2
	case dfaMagicV3:
		version = 3
	default:
		return nil, fmt.Errorf("%w: magic %q", ErrBadFormat, magic)
	}

	var numStates, start, acceptStart uint32
	for _, v := range []*uint32{&numStates, &start, &acceptStart} {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("%w: header: %v", ErrBadFormat, err)
		}
	}
	// Engines beyond twice the default construction budget are rejected:
	// the bound keeps a corrupt header from demanding a multi-gigabyte
	// allocation before any data is validated.
	const maxStates = 2 * DefaultMaxStates
	if numStates == 0 || numStates > maxStates ||
		start >= numStates || acceptStart > numStates {
		return nil, fmt.Errorf("%w: implausible header (states=%d start=%d acceptStart=%d)",
			ErrBadFormat, numStates, start, acceptStart)
	}
	d := &DFA{
		numStates:   int(numStates),
		start:       start,
		numClasses:  256,
		acceptStart: acceptStart,
	}

	declaredLen := int(numStates) * 256
	wantPairs := false
	if version >= 2 {
		var layout uint8
		if err := binary.Read(r, binary.LittleEndian, &layout); err != nil {
			return nil, fmt.Errorf("%w: layout: %v", ErrBadFormat, err)
		}
		var numClasses uint32
		if err := binary.Read(r, binary.LittleEndian, &numClasses); err != nil {
			return nil, fmt.Errorf("%w: class count: %v", ErrBadFormat, err)
		}
		switch layout {
		case wireLayoutFlat:
			if numClasses != 256 {
				return nil, fmt.Errorf("%w: flat layout with %d classes", ErrBadFormat, numClasses)
			}
		case wireLayoutClassed, wireLayoutClassed2:
			if layout == wireLayoutClassed2 {
				if version < 3 {
					return nil, fmt.Errorf("%w: classed2 layout in a v%d stream", ErrBadFormat, version)
				}
				wantPairs = true
			}
			if numClasses == 0 || numClasses > 256 {
				return nil, fmt.Errorf("%w: implausible class count %d", ErrBadFormat, numClasses)
			}
			d.numClasses = int(numClasses)
			d.classOf = make([]uint8, 256)
			if _, err := io.ReadFull(r, d.classOf); err != nil {
				return nil, fmt.Errorf("%w: class map: %v", ErrBadFormat, err)
			}
			for b, c := range d.classOf {
				if int(c) >= d.numClasses {
					return nil, fmt.Errorf("%w: byte %#x maps to class %d of %d", ErrBadFormat, b, c, d.numClasses)
				}
			}
		default:
			return nil, fmt.Errorf("%w: unknown layout code %d", ErrBadFormat, layout)
		}
		var tableLen uint32
		if err := binary.Read(r, binary.LittleEndian, &tableLen); err != nil {
			return nil, fmt.Errorf("%w: table length: %v", ErrBadFormat, err)
		}
		if int(tableLen) != int(numStates)*d.numClasses {
			return nil, fmt.Errorf("%w: %w: declared %d entries, want %d states × %d classes = %d",
				ErrBadFormat, ErrTableSize, tableLen, numStates, d.numClasses, int(numStates)*d.numClasses)
		}
		declaredLen = int(tableLen)
	}

	// Read the table in bounded chunks, growing with the data actually
	// present, so a corrupt header on a truncated stream fails after at
	// most one chunk instead of allocating the full claimed table.
	d.trans = make([]uint32, 0, min(declaredLen, 1<<18))
	chunk := make([]uint32, 1<<18)
	for len(d.trans) < declaredLen {
		k := min(declaredLen-len(d.trans), len(chunk))
		if err := binary.Read(r, binary.LittleEndian, chunk[:k]); err != nil {
			return nil, fmt.Errorf("%w: transition table: %v", ErrBadFormat, err)
		}
		d.trans = append(d.trans, chunk[:k]...)
	}
	for _, to := range d.trans {
		if to >= numStates {
			return nil, fmt.Errorf("%w: transition to state %d of %d", ErrBadFormat, to, numStates)
		}
	}
	if d.classOf != nil {
		// Restore the in-memory pre-scaled form (entries are row bases).
		for i := range d.trans {
			d.trans[i] *= uint32(d.numClasses)
		}
	}
	var numAccept uint32
	if err := binary.Read(r, binary.LittleEndian, &numAccept); err != nil {
		return nil, fmt.Errorf("%w: accept count: %v", ErrBadFormat, err)
	}
	if numAccept != numStates-acceptStart {
		return nil, fmt.Errorf("%w: accept count %d != %d", ErrBadFormat, numAccept, numStates-acceptStart)
	}
	d.accepts = make([][]int32, numAccept)
	for i := range d.accepts {
		var count uint32
		if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
			return nil, fmt.Errorf("%w: accept set %d: %v", ErrBadFormat, i, err)
		}
		if count == 0 || count > 1<<20 {
			return nil, fmt.Errorf("%w: accept set %d has %d ids", ErrBadFormat, i, count)
		}
		ids := make([]int32, count)
		if err := binary.Read(r, binary.LittleEndian, ids); err != nil {
			return nil, fmt.Errorf("%w: accept set %d: %v", ErrBadFormat, i, err)
		}
		d.accepts[i] = ids
	}
	if wantPairs {
		// The pair table is δ∘δ of the validated 1-byte table — rebuild
		// rather than trust serialized bytes. A stream whose class count
		// would blow Classed2MaxTableBytes (impossible for images this
		// package wrote, since WriteTo only emits layout 2 when the table
		// was buildable) degrades to the classed layout, which is
		// match-equivalent.
		d = d.withPairs()
	}
	return d, nil
}

// countingWriter tracks bytes written and latches the first error.
type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	if cw.err != nil {
		return 0, cw.err
	}
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	cw.err = err
	return n, err
}
