package dfa

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// TestMinimizeEquivalenceRandom property-checks minimization: for random
// rule sets, the minimized DFA must (a) be no larger, (b) produce the
// identical match stream on random inputs, and (c) be a fixed point —
// minimizing twice changes nothing.
func TestMinimizeEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	words := []string{"ab", "abc", "bc", "ca", "aab", "cc"}

	for trial := 0; trial < 40; trial++ {
		var sources []string
		for ri := 0; ri < 1+rng.Intn(4); ri++ {
			var sb strings.Builder
			if rng.Intn(4) == 0 {
				sb.WriteByte('^')
			}
			sb.WriteString(words[rng.Intn(len(words))])
			switch rng.Intn(4) {
			case 0:
				sb.WriteString("|" + words[rng.Intn(len(words))])
			case 1:
				sb.WriteString("?" + words[rng.Intn(len(words))])
			case 2:
				sb.WriteString(".*" + words[rng.Intn(len(words))])
			}
			sources = append(sources, sb.String())
		}

		n := buildNFA(t, sources...)
		raw, err := FromNFA(n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		min, err := FromNFA(n, Options{Minimize: true})
		if err != nil {
			t.Fatal(err)
		}
		if min.NumStates() > raw.NumStates() {
			t.Fatalf("rules %v: minimize grew %d -> %d", sources, raw.NumStates(), min.NumStates())
		}
		again := min.minimize()
		if again.NumStates() != min.NumStates() {
			t.Fatalf("rules %v: minimization not a fixed point: %d -> %d",
				sources, min.NumStates(), again.NumStates())
		}

		rawE, minE := NewEngine(raw), NewEngine(min)
		for ii := 0; ii < 5; ii++ {
			input := make([]byte, 10+rng.Intn(80))
			for i := range input {
				input[i] = "abc "[rng.Intn(4)]
			}
			if fmt.Sprint(rawE.Run(input)) != fmt.Sprint(minE.Run(input)) {
				t.Fatalf("rules %v input %q: raw %v vs min %v",
					sources, input, rawE.Run(input), minE.Run(input))
			}
		}
	}
}

// TestMinimizeKnownReductions checks concrete cases with known minimal
// sizes.
func TestMinimizeKnownReductions(t *testing.T) {
	// a|b|c as three separate alternates has redundant accept states that
	// minimization must merge to one.
	n := buildNFA(t, "a|b|c")
	min, err := FromNFA(n, Options{Minimize: true})
	if err != nil {
		t.Fatal(err)
	}
	// Minimal unanchored single-byte-class matcher: start state plus one
	// accepting state.
	if min.NumStates() != 2 {
		t.Errorf("a|b|c should minimize to 2 states, got %d", min.NumStates())
	}
}

// TestMinimizePreservesDistinctMatchIDs ensures states reporting
// different rule ids are never merged even when their languages are
// isomorphic.
func TestMinimizePreservesDistinctMatchIDs(t *testing.T) {
	n := buildNFA(t, "ax", "bx")
	min, err := FromNFA(n, Options{Minimize: true})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(min)
	got := e.Run([]byte("ax bx"))
	if len(got) != 2 || got[0].ID == got[1].ID {
		t.Fatalf("distinct ids must survive minimization: %v", got)
	}
}
