package dfa

import "fmt"

// Byte-class (alphabet equivalence-class) compression of the transition
// table. Two input bytes are equivalent iff every state maps them to the
// same successor; security pattern sets distinguish far fewer than 256
// byte behaviours (case-folded letters, digits, the handful of separator
// bytes the rules mention, and "everything else"), so the 256-wide flat
// rows are mostly duplicate columns. The classed layout stores the
// quotient: a 256-byte class map plus a numStates × numClasses table.
// Scanning pays one extra L1-resident load per byte
// (trans[st+classOf[b]] instead of trans[state*256+b]) in exchange for a
// table that is typically 5–20× smaller and therefore actually cacheable
// as state counts grow — the Hyperflex observation that cache-conscious
// layout, not instruction count, dominates software DPI throughput.
//
// Classed table entries are PRE-SCALED: they store next*numClasses, the
// row base of the successor, not the state number itself. The per-byte
// step is then a single add (st + classOf[b]) with no multiply on the
// loop-carried dependency chain, matching the flat loop's shift. Every
// API that exposes state numbers (Next, State/SetState, Matches, the
// wire format) converts at the boundary, so state numbering stays a
// property of the automaton, never of the layout.

// Layout selects the transition-table representation of a DFA.
type Layout uint8

const (
	// LayoutAuto lets the constructor choose: byte-class compression is
	// applied when it shrinks the table at least 2× (numClasses ≤ 128),
	// otherwise the flat layout is kept. Every shipped pattern set
	// compresses far better than 2×, so Auto means Classed in practice;
	// the escape hatch exists for adversarial sets where the class map's
	// extra load would buy nothing.
	LayoutAuto Layout = iota
	// LayoutFlat stores the full numStates × 256 row-major table:
	// one load per input byte.
	LayoutFlat
	// LayoutClassed stores a 256-byte class map and a numStates ×
	// numClasses table: two dependent loads per input byte, the first of
	// which hits a single always-cached 256-byte array.
	LayoutClassed
	// LayoutClassed2 extends the classed layout with a 2-byte-stride
	// table: a numStates × numClasses² table whose entry for (state,
	// class₁, class₂) is the state reached after consuming both bytes,
	// so the loop-carried dependency chain is one table load per *two*
	// input bytes. The 1-byte classed table is kept alongside it for
	// odd-length tails at Feed-chunk boundaries and for the rare
	// accepting pairs (see pairtable.go). Explicit opt-in only: the pair
	// table is numClasses× larger than the classed one, so LayoutAuto
	// never chooses it, and sets whose pair table would exceed
	// Classed2MaxTableBytes fall back to LayoutClassed (check the built
	// DFA's Layout()).
	LayoutClassed2
)

// String names the layout for stats, telemetry and reports.
func (l Layout) String() string {
	switch l {
	case LayoutAuto:
		return "auto"
	case LayoutFlat:
		return "flat"
	case LayoutClassed:
		return "classed"
	case LayoutClassed2:
		return "classed2"
	default:
		return "unknown"
	}
}

// ParseLayout resolves a layout name as used by command-line flags and
// reports ("auto", "flat", "classed", "classed2").
func ParseLayout(s string) (Layout, error) {
	switch s {
	case "", "auto":
		return LayoutAuto, nil
	case "flat":
		return LayoutFlat, nil
	case "classed":
		return LayoutClassed, nil
	case "classed2":
		return LayoutClassed2, nil
	}
	return LayoutAuto, fmt.Errorf("dfa: unknown layout %q (want auto, flat, classed or classed2)", s)
}

// autoClassThreshold is the LayoutAuto cutoff: compression is kept when
// numClasses ≤ 128, i.e. the table shrinks at least 2×.
const autoClassThreshold = 128

// computeClasses partitions the byte alphabet into equivalence classes
// over a flat (256-wide) transition table: classOf[b1] == classOf[b2]
// iff trans[s*256+b1] == trans[s*256+b2] for every state s. Classes are
// numbered deterministically by first occurrence (classOf[0] == 0), so
// identical automata always produce identical maps.
//
// The partition is refined one state row at a time: after processing row
// s, two bytes share a class iff they agreed on rows 0..s. Each step is
// exact, so a single pass over all rows yields the full equivalence; the
// loop exits early once all 256 classes are distinct.
func computeClasses(trans []uint32, numStates int) (classOf []uint8, numClasses int) {
	cur := make([]int, 256) // all bytes start equivalent
	next := make([]int, 256)
	numClasses = 1
	refined := make(map[uint64]int, 64)
	for s := 0; s < numStates && numClasses < 256; s++ {
		row := trans[s*256 : (s+1)*256]
		clear(refined)
		n := 0
		for b := 0; b < 256; b++ {
			key := uint64(cur[b])<<32 | uint64(row[b])
			id, ok := refined[key]
			if !ok {
				id = n
				n++
				refined[key] = id
			}
			next[b] = id
		}
		cur, next = next, cur
		numClasses = n
	}
	classOf = make([]uint8, 256)
	for b, c := range cur {
		classOf[b] = uint8(c)
	}
	return classOf, numClasses
}

// compressed returns the byte-class form of a flat-layout DFA. The
// successor function is preserved exactly — for every state and byte,
// Next is unchanged — so match streams are byte-for-byte identical; only
// the storage layout differs. Decision sets are shared with the
// receiver, which stays valid: both views are immutable.
func (d *DFA) compressed() *DFA {
	if d.classOf != nil {
		return d
	}
	classOf, k := computeClasses(d.trans, d.numStates)
	// One representative byte per class; any member works because the
	// class is defined by column equality.
	rep := make([]int, k)
	for b := 255; b >= 0; b-- {
		rep[classOf[b]] = b
	}
	ct := make([]uint32, d.numStates*k)
	for s := 0; s < d.numStates; s++ {
		row := d.trans[s*256 : (s+1)*256]
		out := ct[s*k : (s+1)*k]
		for c, b := range rep {
			out[c] = row[b] * uint32(k) // pre-scaled: successor row base
		}
	}
	return &DFA{
		numStates:   d.numStates,
		start:       d.start,
		trans:       ct,
		numClasses:  k,
		classOf:     classOf,
		acceptStart: d.acceptStart,
		accepts:     d.accepts,
	}
}

// flattened returns a flat 256-wide row-major table equivalent to the
// receiver's, expanding a classed table through its class map and
// unscaling its pre-scaled entries back to state numbers. For a flat DFA
// it returns the table itself (shared, read-only).
func (d *DFA) flattened() []uint32 {
	if d.classOf == nil {
		return d.trans
	}
	k := uint32(d.numClasses)
	out := make([]uint32, d.numStates*256)
	for s := 0; s < d.numStates; s++ {
		row := d.trans[s*d.numClasses : (s+1)*d.numClasses]
		flat := out[s*256 : (s+1)*256]
		for b := 0; b < 256; b++ {
			flat[b] = row[d.classOf[b]] / k
		}
	}
	return out
}

// applyLayout resolves the requested layout against the flat automaton
// the constructor and minimizer produce.
func (d *DFA) applyLayout(l Layout) *DFA {
	switch l {
	case LayoutFlat:
		return d
	case LayoutClassed:
		return d.compressed()
	case LayoutClassed2:
		// Falls back to classed when the pair table would exceed
		// Classed2MaxTableBytes; Layout() on the result tells which.
		return d.compressed().withPairs()
	default: // LayoutAuto
		c := d.compressed()
		if c.numClasses <= autoClassThreshold {
			return c
		}
		return d
	}
}
