package dfa

import (
	"encoding/binary"
	"hash/maphash"
	"slices"

	"matchfilter/internal/regexparse"
)

// minimize returns an equivalent DFA with the minimum number of states,
// using Moore partition refinement. The initial partition separates states
// by their exact decision set, so multi-match semantics are preserved: two
// states merge only if they report identical match-id sets and have
// pairwise-equivalent successors on every byte.
//
// minimize is layout-preserving: the refinement itself runs on the flat
// table (FromNFA calls it before applyLayout), and a classed receiver is
// flattened, minimized, and re-compressed. Byte-class compression is a
// column quotient and commutes with this row quotient, so the order
// loses nothing.
func (d *DFA) minimize() *DFA {
	if d.classOf != nil {
		flat := &DFA{
			numStates:   d.numStates,
			start:       d.start,
			trans:       d.flattened(),
			numClasses:  regexparse.AlphabetSize,
			acceptStart: d.acceptStart,
			accepts:     d.accepts,
		}
		return flat.minimize().compressed()
	}
	n := d.numStates
	group := make([]uint32, n)

	// Initial partition: group by decision set.
	acceptGroups := make(map[string]uint32)
	numGroups := uint32(1) // group 0 = non-accepting
	for s := 0; s < n; s++ {
		if !d.Accepting(uint32(s)) {
			group[s] = 0
			continue
		}
		key := int32sKey(d.Matches(uint32(s)))
		g, ok := acceptGroups[key]
		if !ok {
			g = numGroups
			numGroups++
			acceptGroups[key] = g
		}
		group[s] = g
	}

	// Refine: a state's signature is its group plus the groups of its 256
	// successors. Iterate until the number of groups stabilizes.
	seed := maphash.MakeSeed()
	next := make([]uint32, n)
	sig := make([]byte, 4+4*regexparse.AlphabetSize)
	for {
		buckets := make(map[uint64][]int, numGroups*2)
		var order []uint64 // deterministic group numbering
		for s := 0; s < n; s++ {
			binary.LittleEndian.PutUint32(sig[0:], group[s])
			base := s * regexparse.AlphabetSize
			for b := 0; b < regexparse.AlphabetSize; b++ {
				binary.LittleEndian.PutUint32(sig[4+4*b:], group[d.trans[base+b]])
			}
			h := maphash.Bytes(seed, sig)
			if _, ok := buckets[h]; !ok {
				order = append(order, h)
			}
			buckets[h] = append(buckets[h], s)
		}
		// Hash collisions would merge inequivalent states; with a 64-bit
		// hash over <2^20 states this is vanishingly unlikely, and any
		// collision is caught by the cross-engine equivalence tests.
		newNum := uint32(0)
		for _, h := range order {
			for _, s := range buckets[h] {
				next[s] = newNum
			}
			newNum++
		}
		if newNum == numGroups {
			break
		}
		numGroups = newNum
		group, next = next, group
	}

	return d.rebuild(group, int(numGroups))
}

// rebuild materializes the quotient automaton given a state→group map.
func (d *DFA) rebuild(group []uint32, numGroups int) *DFA {
	rep := make([]int, numGroups) // a representative state per group
	for i := range rep {
		rep[i] = -1
	}
	for s := 0; s < d.numStates; s++ {
		if rep[group[s]] == -1 {
			rep[group[s]] = s
		}
	}

	// Renumber groups so accepting ones form a contiguous tail, keeping
	// the fast accept test of the engine.
	perm := make([]uint32, numGroups)
	numAccept := 0
	for _, r := range rep {
		if d.Accepting(uint32(r)) {
			numAccept++
		}
	}
	acceptStart := uint32(numGroups - numAccept)
	nextPlain, nextAccept := uint32(0), acceptStart
	for g, r := range rep {
		if d.Accepting(uint32(r)) {
			perm[g] = nextAccept
			nextAccept++
		} else {
			perm[g] = nextPlain
			nextPlain++
		}
	}

	out := &DFA{
		numStates:   numGroups,
		start:       perm[group[d.start]],
		trans:       make([]uint32, numGroups*regexparse.AlphabetSize),
		numClasses:  regexparse.AlphabetSize,
		acceptStart: acceptStart,
		accepts:     make([][]int32, numAccept),
	}
	for g, r := range rep {
		base := int(perm[g]) * regexparse.AlphabetSize
		rbase := r * regexparse.AlphabetSize
		for b := 0; b < regexparse.AlphabetSize; b++ {
			out.trans[base+b] = perm[group[d.trans[rbase+b]]]
		}
		if m := d.Matches(uint32(r)); m != nil {
			out.accepts[perm[g]-acceptStart] = slices.Clone(m)
		}
	}
	return out
}

func int32sKey(ids []int32) string {
	buf := make([]byte, 4*len(ids))
	for i, id := range ids {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(id))
	}
	return string(buf)
}
