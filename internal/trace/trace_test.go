package trace

import (
	"bytes"
	"testing"

	"matchfilter/internal/core"
	"matchfilter/internal/dfa"
	"matchfilter/internal/regexparse"
)

func buildDFA(t *testing.T, sources ...string) *dfa.DFA {
	t.Helper()
	rules := make([]core.Rule, len(sources))
	for i, src := range sources {
		p, err := regexparse.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		rules[i] = core.Rule{Pattern: p, ID: int32(i + 1)}
	}
	m, err := core.Compile(rules, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m.DFA()
}

func TestGenerateLength(t *testing.T) {
	d := buildDFA(t, "attack.*vector")
	g := NewGenerator(d, 1)
	out := g.Generate(nil, 1000, 0.5)
	if len(out) != 1000 {
		t.Fatalf("length %d", len(out))
	}
	out = g.Generate(out, 500, 0.5)
	if len(out) != 1500 {
		t.Fatalf("appended length %d", len(out))
	}
}

func TestDeterministic(t *testing.T) {
	d := buildDFA(t, "attack.*vector")
	a := NewGenerator(d, 7).Generate(nil, 2048, 0.75)
	b := NewGenerator(d, 7).Generate(nil, 2048, 0.75)
	if !bytes.Equal(a, b) {
		t.Error("same seed must give same trace")
	}
	c := NewGenerator(d, 8).Generate(nil, 2048, 0.75)
	if bytes.Equal(a, c) {
		t.Error("different seeds should differ")
	}
}

// TestMaliciousnessMonotone is the core property of the Becchi generator:
// higher pM drives the automaton deeper and produces more match events.
func TestMaliciousnessMonotone(t *testing.T) {
	d := buildDFA(t, "badword.*payload", "exploit", "rootkit.*shell")
	e := dfa.NewEngine(d)
	const n = 200_000
	counts := make([]int64, 0, 3)
	for _, pM := range []float64{0.0, 0.55, 0.95} {
		data := NewGenerator(d, 99).Generate(nil, n, pM)
		counts = append(counts, e.NewRunner().FeedCount(data))
	}
	if !(counts[0] <= counts[1] && counts[1] <= counts[2]) {
		t.Errorf("match counts should grow with pM: %v", counts)
	}
	if counts[2] == 0 {
		t.Error("pM=0.95 should produce matches")
	}
}

func TestRandomBaseline(t *testing.T) {
	a := Random(4096, 1)
	b := Random(4096, 1)
	if !bytes.Equal(a, b) {
		t.Error("Random must be deterministic in seed")
	}
	if len(a) != 4096 {
		t.Fatalf("length %d", len(a))
	}
	// Rough uniformity: all four quadrants of the byte space occur.
	var quad [4]int
	for _, c := range a {
		quad[c>>6]++
	}
	for i, q := range quad {
		if q < 512 {
			t.Errorf("quadrant %d underrepresented: %d", i, q)
		}
	}
}

func TestTextLike(t *testing.T) {
	words := []string{"alpha", "beta"}
	data := TextLike(10_000, 3, words, 0.02)
	if len(data) != 10_000 {
		t.Fatalf("length %d", len(data))
	}
	if !bytes.Contains(data, []byte("alpha")) && !bytes.Contains(data, []byte("beta")) {
		t.Error("salted words should appear")
	}
	for _, c := range data {
		if c != '\n' && c != ' ' && !(c >= '0' && c <= '9') && !(c >= 'a' && c <= 'z') {
			t.Fatalf("non-text byte %#x", c)
		}
	}
	// Deterministic.
	if !bytes.Equal(data, TextLike(10_000, 3, words, 0.02)) {
		t.Error("TextLike must be deterministic in seed")
	}
}

func TestGeneratorReset(t *testing.T) {
	d := buildDFA(t, "abc.*def")
	g := NewGenerator(d, 5)
	g.Generate(nil, 100, 0.9)
	g.Reset()
	// After Reset the walk restarts from q0; generation still works.
	out := g.Generate(nil, 100, 0.9)
	if len(out) != 100 {
		t.Fatalf("length %d", len(out))
	}
}
