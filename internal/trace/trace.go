// Package trace reimplements the synthetic-traffic generator of Becchi,
// Franklin and Crowley, "A workload for evaluating deep packet inspection
// architectures" (IISWC 2008), the tool the paper uses for its Figure 5
// experiment ("this tool takes as input a collection of regular
// expressions and can create trace files with varying difficulties").
//
// The generator walks an automaton built from the rule set. For every
// output byte, with probability pM ("maliciousness") it emits a byte that
// advances the automaton to a deeper state — driving traffic toward
// matches and partial matches — and otherwise a uniformly random byte.
// pM = 0.35/0.55/0.75/0.95 are the difficulties the paper tests, plus a
// purely random baseline.
package trace

import (
	"math/rand"

	"matchfilter/internal/dfa"
	"matchfilter/internal/regexparse"
)

// Generator produces synthetic payloads against a fixed automaton.
// It is not safe for concurrent use; create one per goroutine.
type Generator struct {
	d     *dfa.DFA
	depth []int32
	rng   *rand.Rand
	state uint32
	// deeper[s] lists, for each state, the bytes whose transition strictly
	// increases depth; precomputed so generation is O(1) per byte.
	deeper [][]byte
}

// NewGenerator builds a generator over d, seeded deterministically.
func NewGenerator(d *dfa.DFA, seed int64) *Generator {
	g := &Generator{
		d:     d,
		depth: computeDepths(d),
		rng:   rand.New(rand.NewSource(seed)),
		state: d.Start(),
	}
	g.deeper = make([][]byte, d.NumStates())
	for s := 0; s < d.NumStates(); s++ {
		var ds []byte
		for c := 0; c < regexparse.AlphabetSize; c++ {
			if g.depth[d.Next(uint32(s), byte(c))] > g.depth[s] {
				ds = append(ds, byte(c))
			}
		}
		g.deeper[s] = ds
	}
	return g
}

// computeDepths returns each state's BFS distance from the start state.
func computeDepths(d *dfa.DFA) []int32 {
	depth := make([]int32, d.NumStates())
	for i := range depth {
		depth[i] = -1
	}
	start := d.Start()
	depth[start] = 0
	queue := []uint32{start}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for c := 0; c < regexparse.AlphabetSize; c++ {
			t := d.Next(s, byte(c))
			if depth[t] == -1 {
				depth[t] = depth[s] + 1
				queue = append(queue, t)
			}
		}
	}
	// Unreachable states (possible after minimization edge cases) sit at
	// depth 0 so comparisons stay well-defined.
	for i := range depth {
		if depth[i] == -1 {
			depth[i] = 0
		}
	}
	return depth
}

// Reset rewinds the automaton walk (but not the random stream).
func (g *Generator) Reset() { g.state = g.d.Start() }

// Generate appends n bytes of difficulty-pM traffic to dst and returns
// the extended slice. The automaton walk persists across calls so long
// streams can be built incrementally.
func (g *Generator) Generate(dst []byte, n int, pM float64) []byte {
	for i := 0; i < n; i++ {
		var c byte
		if ds := g.deeper[g.state]; len(ds) > 0 && g.rng.Float64() < pM {
			c = ds[g.rng.Intn(len(ds))]
		} else {
			c = byte(g.rng.Intn(regexparse.AlphabetSize))
		}
		dst = append(dst, c)
		g.state = g.d.Next(g.state, c)
	}
	return dst
}

// Random returns n uniformly random bytes, the paper's non-matching
// baseline trace.
func Random(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rng.Intn(regexparse.AlphabetSize))
	}
	return out
}

// TextLike returns n bytes resembling protocol text: printable ASCII with
// spaces and line breaks, optionally salted with occurrences of the given
// words at the given per-byte probability. It is the payload model for
// the synthesized "real-life" pcap traces of the Figure 4 experiment.
func TextLike(n int, seed int64, words []string, wordProb float64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, 0, n)
	for len(out) < n {
		if len(words) > 0 && rng.Float64() < wordProb {
			out = append(out, words[rng.Intn(len(words))]...)
			continue
		}
		switch r := rng.Intn(20); {
		case r < 2:
			out = append(out, '\n')
		case r < 5:
			out = append(out, ' ')
		case r < 8:
			out = append(out, byte('0'+rng.Intn(10)))
		default:
			out = append(out, byte('a'+rng.Intn(26)))
		}
	}
	return out[:n]
}
