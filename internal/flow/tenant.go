// Per-tenant serving state.
//
// Multi-tenant serving (internal/tenant) generalizes generations from
// "one current pattern set" to one current pattern set *per tenant*:
// every flow key carries a tenant tag (pcap.FlowKey.Tenant, 0 for the
// default rule set), and the assembler keeps an independent current
// generation and recycled-runner free list for each tenant it serves.
// The free lists must be separate — runners compiled for one tenant's
// automaton can never serve another tenant's flow — and the per-tenant
// quota accounting lives here because the assembler is the only layer
// that knows exactly when a flow is created or a byte is buffered.
//
// An assembler that only ever sees tenant-0 traffic allocates none of
// this: the tenants map stays nil and the default tenant's accounting
// hooks are no-op gauges.

package flow

import (
	"sync/atomic"

	"matchfilter/internal/telemetry"
)

// TenantAcct is one tenant's cross-shard accounting and quota block.
// One instance is shared by every assembler serving the tenant (the
// gauges are atomics, adds compose), so quotas are enforced against the
// tenant's *global* occupancy, not per shard. All pointer fields may be
// nil; quota fields read zero mean "unlimited".
type TenantAcct struct {
	// LiveFlows counts the tenant's live flows across all assemblers.
	LiveFlows *telemetry.Gauge
	// BufferedBytes counts the tenant's out-of-order payload bytes held
	// in reassembly buffers across all assemblers.
	BufferedBytes *telemetry.Gauge
	// MaxFlows, when > 0, caps LiveFlows: segments that would create a
	// flow beyond the cap are dropped and counted in FlowQuotaDrops.
	MaxFlows atomic.Int64
	// MaxBufferedBytes, when > 0, caps BufferedBytes: out-of-order
	// segments that would buffer beyond the cap are dropped and counted
	// in ByteQuotaDrops. In-order traffic is never buffered and so never
	// hits this quota.
	MaxBufferedBytes atomic.Int64
	// FlowQuotaDrops / ByteQuotaDrops count segments refused by the two
	// quotas, attributed to this tenant.
	FlowQuotaDrops *telemetry.Counter
	ByteQuotaDrops *telemetry.Counter
}

func (t *TenantAcct) countFlowDrop() {
	if t.FlowQuotaDrops != nil {
		t.FlowQuotaDrops.Inc()
	}
}

func (t *TenantAcct) countByteDrop() {
	if t.ByteQuotaDrops != nil {
		t.ByteQuotaDrops.Inc()
	}
}

// tenantState is one tenant's per-assembler serving state: the
// generation its new flows start on, its private recycled-runner free
// list, and this assembler's contribution to the shared accounting.
type tenantState struct {
	id   uint32
	cur  *genState // generation new flows start on; nil once dropped
	free []Runner  // recycled runners of cur — never cross-tenant
	acct *TenantAcct
	// Contribution tracking against acct's shared gauges (nil-safe
	// no-ops for the default tenant, which has no acct).
	gLive  gaugeAcct
	gBytes gaugeAcct
}

// tenantOf resolves a segment's tenant tag to serving state. Tag 0 is
// always the default tenant; a nonzero tag is known only after
// SetTenantGeneration installed the tenant (internal/engine delivers
// that command to every shard before it admits the tenant's traffic).
// nil means "unknown tenant": the caller drops the segment.
func (a *Assembler) tenantOf(id uint32) *tenantState {
	if id == 0 {
		return a.def
	}
	return a.tenants[id]
}

// admitFlow enforces the tenant's flow quota at flow creation.
func (a *Assembler) admitFlow(ts *tenantState) bool {
	acct := ts.acct
	if acct == nil {
		return true
	}
	if max := acct.MaxFlows.Load(); max > 0 && acct.LiveFlows != nil && acct.LiveFlows.Value() >= max {
		acct.countFlowDrop()
		return false
	}
	return true
}

// SetTenantGeneration installs pattern generation g as tenant ten's
// current generation, creating the tenant's serving state on first use
// (acct, which may be nil, is bound then and shared for the tenant's
// lifetime). Semantics per tenant match SetGeneration exactly: the
// tenant's free list is emptied, resetExisting restarts only *this
// tenant's* live flows on g, other tenants are untouched. Generation
// IDs must be unique across tenants (internal/engine packs the tenant
// index into the high 32 bits). Returns the number of flows moved.
func (a *Assembler) SetTenantGeneration(ten uint32, g Generation, acct *TenantAcct, resetExisting bool) int {
	if ten == 0 {
		return a.setTenantGen(a.def, g, resetExisting)
	}
	ts := a.tenants[ten]
	if ts == nil {
		ts = &tenantState{id: ten, acct: acct}
		if acct != nil {
			ts.gLive.g = acct.LiveFlows
			ts.gBytes.g = acct.BufferedBytes
		}
		if a.tenants == nil {
			a.tenants = make(map[uint32]*tenantState)
		}
		a.tenants[ten] = ts
	}
	return a.setTenantGen(ts, g, resetExisting)
}

// DropTenant removes tenant ten entirely: every one of its live flows
// is torn down (runners discarded, never recycled — they belong to a
// dead automaton), its free list is emptied, and its serving state is
// forgotten, so subsequent segments carrying the tag are dropped as
// unknown-tenant. Returns the number of flows removed. Dropping the
// default tenant (0) or an unknown tenant is a no-op.
func (a *Assembler) DropTenant(ten uint32) int {
	if ten == 0 {
		return 0
	}
	ts := a.tenants[ten]
	if ts == nil {
		return 0
	}
	// Scan what's pending before the tenant's runners are discarded.
	a.FlushBatch()
	n := 0
	for _, ctx := range a.flows {
		if ctx.ten != ts {
			continue
		}
		delete(a.flows, ctx.key)
		a.lru.Remove(ctx.elem)
		a.releaseFlowGauges(ctx)
		ctx.gen.flows--
		ctx.gen.live.add(-1)
		ctx.runner = nil
		n++
	}
	for i := range ts.free {
		ts.free[i] = nil
	}
	ts.free = nil
	ts.cur = nil
	for id, g := range a.gens {
		if g.owner == ts && g.flows == 0 {
			delete(a.gens, id)
		}
	}
	delete(a.tenants, ten)
	return n
}
