// Live reassembly gauges.
//
// The Assembler is single-threaded by design, but its occupancy numbers
// are exactly what an operator watches while it runs: how many flows are
// live, how much out-of-order data is parked waiting for gaps to fill.
// Stats() answers that only from the owning goroutine; gauges answer it
// from anywhere, because telemetry.Gauge is a bare atomic the assembler
// updates in place.
//
// Several assemblers (one per engine shard) may share one Gauges set —
// atomic adds compose — so the engine exposes a single aggregate family
// instead of per-shard reassembly series. Each assembler tracks its own
// net contribution per gauge, and ReleaseGauges subtracts exactly that:
// when a shard discards a corrupt assembler during a rebuild, the shared
// gauges shed the dead assembler's occupancy without ever walking its
// (possibly inconsistent) tables.

package flow

import "matchfilter/internal/telemetry"

// Gauges is the set of live-occupancy gauges an Assembler maintains.
// Any field may be nil. See Config.Gauges.
type Gauges struct {
	// LiveFlows tracks currently live flows.
	LiveFlows *telemetry.Gauge
	// PendingSegments tracks buffered out-of-order segments.
	PendingSegments *telemetry.Gauge
	// BufferedBytes tracks payload bytes held in out-of-order buffers.
	BufferedBytes *telemetry.Gauge
}

// gaugeAcct wraps one shared gauge with this assembler's running
// contribution, so the contribution can be withdrawn wholesale without
// consulting assembler state.
type gaugeAcct struct {
	g       *telemetry.Gauge
	contrib int64
}

func (ga *gaugeAcct) add(n int64) {
	if ga.g != nil {
		ga.g.Add(n)
		ga.contrib += n
	}
}

func (ga *gaugeAcct) release() {
	if ga.g != nil && ga.contrib != 0 {
		ga.g.Add(-ga.contrib)
		ga.contrib = 0
	}
}

// ReleaseGauges withdraws this assembler's entire contribution from the
// shared gauges. Call it when discarding an assembler without tearing
// down its flows one by one — the shard rebuild path — so shared gauges
// do not leak the dead assembler's occupancy. Safe even if the
// assembler's tables are corrupt: only the tracked contributions are
// read. Idempotent.
func (a *Assembler) ReleaseGauges() {
	a.gLive.release()
	a.gPending.release()
	a.gBytes.release()
	for _, g := range a.gens {
		g.live.release()
	}
	for _, ts := range a.tenants {
		ts.gLive.release()
		ts.gBytes.release()
	}
}
