package flow

import (
	"fmt"
	"math/rand"
	"testing"

	"matchfilter/internal/pcap"
)

// TestReassemblyEquivalenceRandom is the reassembler's central property:
// however a flow's payload is segmented, duplicated and reordered (within
// the buffering bound), the engine must observe exactly the bytes of the
// original stream — so the match stream equals a direct whole-payload
// scan.
func TestReassemblyEquivalenceRandom(t *testing.T) {
	m := buildMFA(t, "ab.*yz", "needle", `q:[^\n]*r`)
	rng := rand.New(rand.NewSource(31))
	alphabet := "abnedlyzq:r \n"

	for trial := 0; trial < 200; trial++ {
		// Random payload with embedded rule content.
		n := 20 + rng.Intn(400)
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = alphabet[rng.Intn(len(alphabet))]
		}

		// Ground truth: single-flow direct scan.
		var want []string
		r := m.NewRunner()
		r.Feed(payload, func(id int32, pos int64) {
			want = append(want, fmt.Sprintf("%d@%d", id, pos))
		})

		// Random segmentation.
		type seg struct {
			seq     uint32
			payload []byte
		}
		var segs []seg
		off := 0
		for off < n {
			l := 1 + rng.Intn(24)
			if off+l > n {
				l = n - off
			}
			segs = append(segs, seg{seq: uint32(1 + off), payload: payload[off : off+l]})
			off += l
		}
		// Local reordering: random adjacent swaps, bounded so the
		// 64-segment pending buffer never overflows.
		for i := 0; i < len(segs)/2; i++ {
			j := rng.Intn(len(segs) - 1)
			segs[j], segs[j+1] = segs[j+1], segs[j]
		}
		// Random duplications.
		for i := 0; i < 3 && len(segs) > 0; i++ {
			j := rng.Intn(len(segs))
			segs = append(segs, segs[j])
		}

		var got []string
		a := NewAssembler(Config{}, func() Runner { return m.NewRunner() },
			func(mt Match) { got = append(got, fmt.Sprintf("%d@%d", mt.ID, mt.Pos)) })
		k := key(trial)
		a.HandleSegment(pcap.Segment{Key: k, Seq: 0, Flags: pcap.FlagSYN})
		for _, s := range segs {
			a.HandleSegment(pcap.Segment{Key: k, Seq: s.seq, Flags: pcap.FlagACK, Payload: s.payload})
		}

		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("trial %d: reassembled matches diverge\npayload %q\ngot  %v\nwant %v",
				trial, payload, got, want)
		}
		if a.Stats().PayloadBytes != int64(n) {
			t.Fatalf("trial %d: delivered %d bytes, want %d", trial, a.Stats().PayloadBytes, n)
		}
	}
}
