package flow

import (
	"testing"

	"matchfilter/internal/pcap"
	"matchfilter/internal/telemetry"
)

type countRunner struct{ fed int64 }

func (r *countRunner) Feed(data []byte, onMatch func(int32, int64)) { r.fed += int64(len(data)) }
func (r *countRunner) Reset()                                       { r.fed = 0 }

func gaugeSet() (*Gauges, func() (live, pend, bytes int64)) {
	reg := telemetry.NewRegistry()
	g := &Gauges{
		LiveFlows:       reg.Gauge("live", ""),
		PendingSegments: reg.Gauge("pend", ""),
		BufferedBytes:   reg.Gauge("bytes", ""),
	}
	return g, func() (int64, int64, int64) {
		return g.LiveFlows.Value(), g.PendingSegments.Value(), g.BufferedBytes.Value()
	}
}

func seg(key pcap.FlowKey, seq uint32, flags uint8, payload string) pcap.Segment {
	return pcap.Segment{Key: key, Seq: seq, Flags: flags, Payload: []byte(payload)}
}

// TestGaugesTrackLifecycle walks a flow through creation, out-of-order
// buffering, gap fill, and FIN teardown, asserting the gauges mirror
// Stats-visible state at every step.
func TestGaugesTrackLifecycle(t *testing.T) {
	g, read := gaugeSet()
	a := NewAssembler(Config{Gauges: g}, func() Runner { return &countRunner{} }, nil)
	k := pcap.FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4}

	a.HandleSegment(seg(k, 100, pcap.FlagSYN, ""))
	if live, pend, by := read(); live != 1 || pend != 0 || by != 0 {
		t.Fatalf("after SYN: live=%d pend=%d bytes=%d, want 1,0,0", live, pend, by)
	}

	// Out-of-order segment parks in the pending buffer.
	a.HandleSegment(seg(k, 106, pcap.FlagACK, "world"))
	if live, pend, by := read(); live != 1 || pend != 1 || by != 5 {
		t.Fatalf("after OOO: live=%d pend=%d bytes=%d, want 1,1,5", live, pend, by)
	}

	// The gap filler releases the parked segment.
	a.HandleSegment(seg(k, 101, pcap.FlagACK, "hello"))
	if live, pend, by := read(); live != 1 || pend != 0 || by != 0 {
		t.Fatalf("after fill: live=%d pend=%d bytes=%d, want 1,0,0", live, pend, by)
	}

	a.HandleSegment(seg(k, 111, pcap.FlagFIN, ""))
	if live, pend, by := read(); live != 0 || pend != 0 || by != 0 {
		t.Fatalf("after FIN: live=%d pend=%d bytes=%d, want all zero", live, pend, by)
	}
}

// TestGaugesOnEvictionAndTrim covers the paths where buffered state is
// destroyed rather than delivered: cap eviction, overflow drop of the
// oldest pending segment, SetMaxBuffered trims, and DropFlow quarantine.
func TestGaugesOnEvictionAndTrim(t *testing.T) {
	g, read := gaugeSet()
	a := NewAssembler(Config{MaxFlows: 2, MaxBufferedSegments: 2, Gauges: g},
		func() Runner { return &countRunner{} }, nil)
	k1 := pcap.FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4}
	k2 := pcap.FlowKey{SrcIP: 5, DstIP: 6, SrcPort: 7, DstPort: 8}
	k3 := pcap.FlowKey{SrcIP: 9, DstIP: 10, SrcPort: 11, DstPort: 12}

	// k1 accumulates two pending segments (at the cap).
	a.HandleSegment(seg(k1, 100, pcap.FlagSYN, ""))
	a.HandleSegment(seg(k1, 110, pcap.FlagACK, "aaaa"))
	a.HandleSegment(seg(k1, 120, pcap.FlagACK, "bb"))
	if live, pend, by := read(); live != 1 || pend != 2 || by != 6 {
		t.Fatalf("k1 buffered: live=%d pend=%d bytes=%d, want 1,2,6", live, pend, by)
	}
	// A third future segment overflows the buffer: the oldest (4 bytes)
	// is dropped to admit it.
	a.HandleSegment(seg(k1, 130, pcap.FlagACK, "ccc"))
	if live, pend, by := read(); live != 1 || pend != 2 || by != 5 {
		t.Fatalf("after overflow: live=%d pend=%d bytes=%d, want 1,2,5", live, pend, by)
	}
	// Shrinking the buffer trims down to one pending segment.
	a.SetMaxBuffered(1)
	if live, pend, by := read(); live != 1 || pend != 1 || by != 3 {
		t.Fatalf("after trim: live=%d pend=%d bytes=%d, want 1,1,3", live, pend, by)
	}

	// Two more flows: k1 is LRU-evicted with its pending data.
	a.HandleSegment(seg(k2, 100, pcap.FlagSYN, ""))
	a.HandleSegment(seg(k3, 100, pcap.FlagSYN, ""))
	if live, pend, by := read(); live != 2 || pend != 0 || by != 0 {
		t.Fatalf("after cap evict: live=%d pend=%d bytes=%d, want 2,0,0", live, pend, by)
	}

	// Quarantine path.
	if !a.DropFlow(k2) {
		t.Fatal("DropFlow(k2) = false")
	}
	if live, _, _ := read(); live != 1 {
		t.Fatalf("after DropFlow: live=%d, want 1", live)
	}

	// Wholesale release (the shard-rebuild path) zeroes the rest.
	a.ReleaseGauges()
	if live, pend, by := read(); live != 0 || pend != 0 || by != 0 {
		t.Fatalf("after ReleaseGauges: live=%d pend=%d bytes=%d, want zeros", live, pend, by)
	}
	// Idempotent: releasing again must not go negative.
	a.ReleaseGauges()
	if live, _, _ := read(); live != 0 {
		t.Fatalf("ReleaseGauges not idempotent: live=%d", live)
	}
}

// TestGaugesSharedAcrossAssemblers: two assemblers feeding one gauge set
// compose by atomic addition, and each releases only its own share.
func TestGaugesSharedAcrossAssemblers(t *testing.T) {
	g, read := gaugeSet()
	mk := func() *Assembler {
		return NewAssembler(Config{Gauges: g}, func() Runner { return &countRunner{} }, nil)
	}
	a1, a2 := mk(), mk()
	k := pcap.FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4}
	a1.HandleSegment(seg(k, 100, pcap.FlagSYN, ""))
	a2.HandleSegment(seg(k, 100, pcap.FlagSYN, ""))
	a2.HandleSegment(seg(k, 110, pcap.FlagACK, "zzz"))
	if live, pend, by := read(); live != 2 || pend != 1 || by != 3 {
		t.Fatalf("shared: live=%d pend=%d bytes=%d, want 2,1,3", live, pend, by)
	}
	a2.ReleaseGauges()
	if live, pend, by := read(); live != 1 || pend != 0 || by != 0 {
		t.Fatalf("after a2 release: live=%d pend=%d bytes=%d, want 1,0,0", live, pend, by)
	}
	a1.ReleaseGauges()
	if live, _, _ := read(); live != 0 {
		t.Fatalf("after both released: live=%d, want 0", live)
	}
}
