// Package flow reassembles TCP streams from packet captures and drives a
// matching engine over each flow's in-order payload. This is the §III-B
// "multiplexed flows" path of the paper: the scanner keeps one small
// context per flow — for the MFA, the (q, m) pair — and packets of many
// interleaved connections advance their own flow's context independently.
package flow

import (
	"errors"
	"fmt"
	"io"

	"matchfilter/internal/pcap"
)

// Runner is the per-flow matching context every engine in this repository
// provides (dfa, core, hfa, xfa all satisfy it).
type Runner interface {
	// Feed advances the flow over in-order payload bytes.
	Feed(data []byte, onMatch func(id int32, pos int64))
	// Reset rewinds the context for reuse on a new flow.
	Reset()
}

// Match is one confirmed match attributed to a flow.
type Match struct {
	Flow pcap.FlowKey
	ID   int32
	Pos  int64
}

// Config bounds the reassembler.
type Config struct {
	// MaxBufferedSegments caps out-of-order segments held per flow;
	// overflow drops the oldest. 0 means 64.
	MaxBufferedSegments int
	// MaxFlows caps tracked flows; 0 means unlimited.
	MaxFlows int
}

// Assembler demultiplexes TCP segments into flows, restores byte order,
// and feeds each flow's stream to a Runner obtained from the factory.
type Assembler struct {
	cfg       Config
	newRunner func() Runner
	flows     map[pcap.FlowKey]*flowCtx
	onMatch   func(Match)
	// Stats.
	packets       int64
	payloadBytes  int64
	outOfOrder    int64
	droppedSegs   int64
	skippedFrames int64
}

type flowCtx struct {
	runner  Runner
	nextSeq uint32
	started bool
	// pending holds out-of-order segments keyed by sequence number.
	pending map[uint32][]byte
	order   []uint32 // insertion order, for bounded eviction
}

// NewAssembler creates an assembler. newRunner is called once per new
// flow; onMatch (may be nil) receives every confirmed match.
func NewAssembler(cfg Config, newRunner func() Runner, onMatch func(Match)) *Assembler {
	if cfg.MaxBufferedSegments <= 0 {
		cfg.MaxBufferedSegments = 64
	}
	return &Assembler{
		cfg:       cfg,
		newRunner: newRunner,
		flows:     make(map[pcap.FlowKey]*flowCtx),
		onMatch:   onMatch,
	}
}

// Stats reports reassembly counters.
type Stats struct {
	Packets       int64
	PayloadBytes  int64
	Flows         int
	OutOfOrder    int64
	DroppedSegs   int64
	SkippedFrames int64
}

// Stats returns the counters accumulated so far.
func (a *Assembler) Stats() Stats {
	return Stats{
		Packets:       a.packets,
		PayloadBytes:  a.payloadBytes,
		Flows:         len(a.flows),
		OutOfOrder:    a.outOfOrder,
		DroppedSegs:   a.droppedSegs,
		SkippedFrames: a.skippedFrames,
	}
}

// HandleFrame decodes one Ethernet frame and advances its flow. Non-TCP
// frames are counted and skipped; decode errors on TCP frames are
// returned.
func (a *Assembler) HandleFrame(frame []byte) error {
	seg, err := pcap.DecodeTCP(frame)
	if err != nil {
		if errors.Is(err, pcap.ErrNotTCP) {
			a.skippedFrames++
			return nil
		}
		return err
	}
	a.packets++
	a.handleSegment(seg)
	return nil
}

func (a *Assembler) handleSegment(seg pcap.Segment) {
	ctx, ok := a.flows[seg.Key]
	if !ok {
		if a.cfg.MaxFlows > 0 && len(a.flows) >= a.cfg.MaxFlows {
			return
		}
		ctx = &flowCtx{
			runner:  a.newRunner(),
			pending: make(map[uint32][]byte),
		}
		a.flows[seg.Key] = ctx
	}

	if seg.Flags&pcap.FlagSYN != 0 {
		ctx.nextSeq = seg.Seq + 1
		ctx.started = true
		return
	}
	if !ctx.started {
		// Mid-stream pickup (no SYN observed): adopt the first data
		// segment's sequence as the stream origin.
		ctx.nextSeq = seg.Seq
		ctx.started = true
	}
	if len(seg.Payload) > 0 {
		a.deliver(seg.Key, ctx, seg.Seq, seg.Payload)
	}
	if seg.Flags&(pcap.FlagFIN|pcap.FlagRST) != 0 {
		// Flow teardown: drop the context. (Its runner state is no longer
		// needed; a production system would recycle it through a pool.)
		delete(a.flows, seg.Key)
	}
}

// deliver handles one data segment: in-order data feeds the engine
// immediately, future data is buffered, stale/duplicate data is trimmed
// or dropped.
func (a *Assembler) deliver(key pcap.FlowKey, ctx *flowCtx, seq uint32, payload []byte) {
	switch {
	case seq == ctx.nextSeq:
		a.feed(key, ctx, payload)
	case seqAfter(seq, ctx.nextSeq):
		// Future segment: buffer until the gap fills.
		a.outOfOrder++
		if len(ctx.pending) >= a.cfg.MaxBufferedSegments {
			oldest := ctx.order[0]
			ctx.order = ctx.order[1:]
			delete(ctx.pending, oldest)
			a.droppedSegs++
		}
		if _, dup := ctx.pending[seq]; !dup {
			buf := make([]byte, len(payload))
			copy(buf, payload)
			ctx.pending[seq] = buf
			ctx.order = append(ctx.order, seq)
		}
		return
	default:
		// Stale or overlapping: trim the already-delivered prefix.
		skip := ctx.nextSeq - seq
		if uint32(len(payload)) <= skip {
			a.droppedSegs++
			return
		}
		a.feed(key, ctx, payload[skip:])
	}
	// Drain any buffered segments that are now in order.
	for {
		p, ok := ctx.pending[ctx.nextSeq]
		if !ok {
			return
		}
		seq := ctx.nextSeq
		delete(ctx.pending, seq)
		removeSeq(&ctx.order, seq)
		a.feed(key, ctx, p)
	}
}

func (a *Assembler) feed(key pcap.FlowKey, ctx *flowCtx, data []byte) {
	ctx.nextSeq += uint32(len(data))
	a.payloadBytes += int64(len(data))
	if a.onMatch == nil {
		ctx.runner.Feed(data, func(int32, int64) {})
		return
	}
	ctx.runner.Feed(data, func(id int32, pos int64) {
		a.onMatch(Match{Flow: key, ID: id, Pos: pos})
	})
}

// seqAfter reports whether a is after b in 32-bit sequence space.
func seqAfter(a, b uint32) bool { return int32(a-b) > 0 }

func removeSeq(order *[]uint32, seq uint32) {
	for i, s := range *order {
		if s == seq {
			*order = append((*order)[:i], (*order)[i+1:]...)
			return
		}
	}
}

// ScanPcap reads a full capture from r and runs every TCP payload byte
// through engines built by newRunner, returning the reassembly stats.
// This is the measurement path of the Figure 4 experiment.
func ScanPcap(r io.Reader, cfg Config, newRunner func() Runner, onMatch func(Match)) (Stats, error) {
	pr, err := pcap.NewReader(r)
	if err != nil {
		return Stats{}, err
	}
	a := NewAssembler(cfg, newRunner, onMatch)
	for {
		pkt, err := pr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return a.Stats(), fmt.Errorf("flow: %w", err)
		}
		if err := a.HandleFrame(pkt.Data); err != nil {
			return a.Stats(), fmt.Errorf("flow: %w", err)
		}
	}
	return a.Stats(), nil
}
