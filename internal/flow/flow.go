// Package flow reassembles TCP streams from packet captures and drives a
// matching engine over each flow's in-order payload. This is the §III-B
// "multiplexed flows" path of the paper: the scanner keeps one small
// context per flow — for the MFA, the (q, m) pair — and packets of many
// interleaved connections advance their own flow's context independently.
//
// An Assembler is deliberately single-threaded: it owns a private flow
// table with no locks anywhere on its hot path. Concurrency is layered on
// top by internal/engine, which runs one Assembler per shard and routes
// every segment of a flow to the same shard.
package flow

import (
	"container/list"
	"errors"
	"fmt"
	"io"

	"matchfilter/internal/pcap"
)

// Runner is the per-flow matching context every engine in this repository
// provides (dfa, core, hfa, xfa all satisfy it).
type Runner interface {
	// Feed advances the flow over in-order payload bytes.
	Feed(data []byte, onMatch func(id int32, pos int64))
	// Reset rewinds the context for reuse on a new flow.
	Reset()
}

// Match is one confirmed match attributed to a flow.
type Match struct {
	Flow pcap.FlowKey
	ID   int32
	Pos  int64
}

// Batcher defers per-flow scan work so many flows can be stepped in
// lockstep (core.FlowBatcher is the implementation; the interface keeps
// this package engine-agnostic). The contract the assembler depends on:
//
//   - Add either takes ownership of data until the next Flush and
//     returns true, or returns false, in which case the caller scans
//     inline. Chunks Added for one runner scan in arrival order.
//   - Flush scans everything pending and empties the batch even if a
//     callback panics — and isolates such a panic to the offending
//     flow's lane: sibling flows in the window still complete, then the
//     panic re-raises with Scanning() identifying the offender, so a
//     shard's recover path can tear down exactly that flow and carry on.
//   - Contains reports pending work for a runner; the assembler flushes
//     before any lifecycle event that would Reset, recycle or discard a
//     runner Contains reports true for.
//
// Deferred data must stay valid until the flush: the assembler passes
// either payload slices whose backing buffers the caller keeps alive
// across the flush (internal/engine holds its arena leases until after
// FlushBatch) or its own heap-copied out-of-order buffers.
type Batcher interface {
	Add(runner, tag any, data []byte, onMatch func(id int32, pos int64)) bool
	Len() int
	Flush()
	Scanning() any
	Contains(runner any) bool
}

// Config bounds the reassembler.
type Config struct {
	// MaxBufferedSegments caps out-of-order segments held per flow;
	// overflow drops the oldest. 0 means 64.
	MaxBufferedSegments int
	// MaxFlows caps tracked flows; 0 means unlimited. When the table is
	// full, a new flow evicts the least-recently-seen one (counted in
	// Stats.EvictedCap) rather than being silently rejected.
	MaxFlows int
	// Gauges, when non-nil, receives live occupancy updates (flows,
	// buffered out-of-order segments and bytes) as the assembler works.
	// The gauges are atomics, so they may be read from any goroutine and
	// shared between assemblers; see gauges.go.
	Gauges *Gauges
	// NewBatcher, when non-nil, supplies a Batcher per assembler and
	// switches in-order payload delivery from scan-on-arrival to
	// deferred batched lockstep scanning. Callers that hand the
	// assembler transient payload buffers must then keep them alive
	// until FlushBatch returns.
	NewBatcher func() Batcher
}

// Assembler demultiplexes TCP segments into flows, restores byte order,
// and feeds each flow's stream to a Runner obtained from the factory.
// Torn-down flows return their runner to a pool, so long-running
// assemblers allocate one runner per *concurrent* flow, not per
// connection. An Assembler is not safe for concurrent use.
type Assembler struct {
	cfg   Config
	flows map[pcap.FlowKey]*flowCtx
	lru   *list.List // *flowCtx; front = most recently seen
	// def is the default tenant (tag 0): its free list recycles Reset
	// runners of its *current* generation across flows. The assembler is
	// single-threaded, so a plain bounded slice beats sync.Pool and makes
	// generation hygiene trivial: a generation swap empties the list, so
	// a stale runner can never serve a new-generation flow.
	def *tenantState
	// tenants holds nonzero-tagged tenants' serving state (tenant.go);
	// nil until SetTenantGeneration installs one, so the single-tenant
	// path never pays for multi-tenancy.
	tenants map[uint32]*tenantState
	gens    map[uint64]*genState // generations with live flows (plus currents)
	onMatch func(Match)
	// batch, when non-nil, receives in-order payload for deferred
	// lockstep scanning instead of the immediate per-segment Feed. Every
	// runner-lifecycle path (teardown, restart, quarantine, generation
	// and tenant swaps) flushes first when the affected runner has
	// pending work, so a deferred scan can never run against a reset,
	// recycled or reassigned runner.
	batch Batcher
	now   int64 // logical clock: segments handled so far
	// Stats.
	packets       int64
	payloadBytes  int64
	outOfOrder    int64
	droppedSegs   int64
	skippedFrames int64
	flowsTotal    int64
	evictedCap    int64
	evictedIdle   int64
	runnersReused int64
	flowRestarts  int64
	staleRunners  int64
	tenantDrops   int64
	// Live gauge accounting (gauges.go); no-ops when Config.Gauges is nil.
	gLive    gaugeAcct
	gPending gaugeAcct
	gBytes   gaugeAcct
}

// maxFreeRunners bounds the recycled-runner free list. sync.Pool shed
// entries on GC; a slice does not, so a burst of concurrent flows must
// not pin runner memory forever.
const maxFreeRunners = 4096

type flowCtx struct {
	key    pcap.FlowKey
	runner Runner
	ten    *tenantState // tenant the flow is served under (def for tag 0)
	gen    *genState    // generation the runner was built for
	// cb is the flow's match callback, built once at flow creation so
	// neither the scan-on-arrival path nor the batcher allocates a
	// closure per segment.
	cb       func(id int32, pos int64)
	nextSeq  uint32
	started  bool
	lastSeen int64 // assembler clock at the flow's latest segment
	elem     *list.Element
	// pending holds out-of-order segments keyed by sequence number.
	pending map[uint32][]byte
	order   []uint32 // insertion order, for bounded eviction
	// pendingBytes is the payload total held in pending, maintained so
	// gauge accounting never has to walk the map.
	pendingBytes int64
}

// NewAssembler creates an assembler. newRunner supplies per-flow contexts
// (recycled through an internal pool across flows); onMatch (may be nil)
// receives every confirmed match.
func NewAssembler(cfg Config, newRunner func() Runner, onMatch func(Match)) *Assembler {
	if cfg.MaxBufferedSegments <= 0 {
		cfg.MaxBufferedSegments = 64
	}
	a := &Assembler{
		cfg:     cfg,
		flows:   make(map[pcap.FlowKey]*flowCtx),
		lru:     list.New(),
		onMatch: onMatch,
	}
	a.def = &tenantState{}
	a.def.cur = &genState{gen: Generation{ID: 0, New: newRunner}, owner: a.def}
	a.gens = map[uint64]*genState{0: a.def.cur}
	if cfg.NewBatcher != nil {
		a.batch = cfg.NewBatcher()
	}
	if g := cfg.Gauges; g != nil {
		a.gLive.g = g.LiveFlows
		a.gPending.g = g.PendingSegments
		a.gBytes.g = g.BufferedBytes
	}
	return a
}

// Stats reports reassembly counters.
type Stats struct {
	Packets       int64
	PayloadBytes  int64
	Flows         int
	OutOfOrder    int64
	DroppedSegs   int64
	SkippedFrames int64
	// FlowsTotal counts every flow ever created (live + finished).
	FlowsTotal int64
	// EvictedCap counts flows displaced by the MaxFlows cap — the flows
	// that before this counter existed were silently dropped.
	EvictedCap int64
	// EvictedIdle counts flows reclaimed by EvictIdle sweeps.
	EvictedIdle int64
	// RunnersReused counts new flows served from the runner pool instead
	// of a fresh newRunner allocation.
	RunnersReused int64
	// FlowRestarts counts 4-tuple reuse: a SYN arriving on a live flow
	// restarts it as a fresh connection (runner reset, out-of-order
	// buffer cleared) instead of bleeding the old connection's state.
	FlowRestarts int64
	// StaleRunners counts old-generation runners discarded instead of
	// recycled after a SetGeneration swap.
	StaleRunners int64
	// TenantDrops counts segments refused by tenant policy: an unknown
	// tenant tag, or a tenant over its flow/buffered-bytes quota (the
	// per-tenant split lives in each tenant's TenantAcct counters).
	TenantDrops int64
	// Generation is the generation id new flows start on; FlowsByGen
	// maps generation id to its live flows. FlowsByGen is nil until
	// SetGeneration has been called (the sequential scan path never
	// pays for it).
	Generation uint64
	FlowsByGen map[uint64]int64
}

// Stats returns the counters accumulated so far.
func (a *Assembler) Stats() Stats {
	st := Stats{
		Packets:       a.packets,
		PayloadBytes:  a.payloadBytes,
		Flows:         len(a.flows),
		OutOfOrder:    a.outOfOrder,
		DroppedSegs:   a.droppedSegs,
		SkippedFrames: a.skippedFrames,
		FlowsTotal:    a.flowsTotal,
		EvictedCap:    a.evictedCap,
		EvictedIdle:   a.evictedIdle,
		RunnersReused: a.runnersReused,
		FlowRestarts:  a.flowRestarts,
		StaleRunners:  a.staleRunners,
		TenantDrops:   a.tenantDrops,
		Generation:    a.def.cur.gen.ID,
	}
	if a.def.cur.gen.ID != 0 || len(a.gens) > 1 {
		st.FlowsByGen = make(map[uint64]int64, len(a.gens))
		for id, g := range a.gens {
			st.FlowsByGen[id] = g.flows
		}
	}
	return st
}

// HandleFrame decodes one Ethernet frame and advances its flow. Non-TCP
// frames are counted and skipped; decode errors on TCP frames are
// returned.
func (a *Assembler) HandleFrame(frame []byte) error {
	seg, err := pcap.DecodeTCP(frame)
	if err != nil {
		if errors.Is(err, pcap.ErrNotTCP) {
			a.skippedFrames++
			return nil
		}
		return err
	}
	a.HandleSegment(seg)
	return nil
}

// HandleSegment advances one decoded TCP segment's flow. It is exported
// so callers that decode frames themselves — internal/engine's shards —
// can drive reassembly directly.
func (a *Assembler) HandleSegment(seg pcap.Segment) {
	a.packets++
	a.now++
	ctx, ok := a.flows[seg.Key]
	if !ok {
		ts := a.tenantOf(seg.Key.Tenant)
		if ts == nil || !a.admitFlow(ts) {
			// Unknown tenant (e.g. a segment that raced a tenant DELETE
			// through a shard queue) or tenant over its flow quota.
			a.tenantDrops++
			return
		}
		if a.cfg.MaxFlows > 0 && len(a.flows) >= a.cfg.MaxFlows {
			a.evictOldest()
		}
		ctx = &flowCtx{
			key:     seg.Key,
			ten:     ts,
			runner:  a.getRunner(ts),
			gen:     ts.cur,
			cb:      a.matchCB(seg.Key),
			pending: make(map[uint32][]byte),
		}
		ctx.elem = a.lru.PushFront(ctx)
		a.flows[seg.Key] = ctx
		a.flowsTotal++
		ts.cur.flows++
		ts.cur.live.add(1)
		a.gLive.add(1)
		ts.gLive.add(1)
	} else {
		a.lru.MoveToFront(ctx.elem)
	}
	ctx.lastSeen = a.now

	if seg.Flags&pcap.FlagSYN != 0 {
		if ok {
			// 4-tuple reuse: the previous connection's FIN/RST was missed
			// and the key is back in service. Without a full restart the
			// old connection's DFA state, filter memory and out-of-order
			// buffer would bleed into the new one (false test-bit
			// confirmations on bytes the new connection never sent).
			a.restartFlow(ctx)
		}
		ctx.nextSeq = seg.Seq + 1
		ctx.started = true
		return
	}
	if !ctx.started {
		// Mid-stream pickup (no SYN observed): adopt the first data
		// segment's sequence as the stream origin.
		ctx.nextSeq = seg.Seq
		ctx.started = true
	}
	if len(seg.Payload) > 0 {
		a.deliver(seg.Key, ctx, seg.Seq, seg.Payload)
	}
	if seg.Flags&(pcap.FlagFIN|pcap.FlagRST) != 0 {
		// Flow teardown: the context is dropped and its runner recycled
		// through the pool for the next flow.
		a.removeFlow(ctx)
	}
}

// getRunner takes a recycled runner from the tenant's free list or
// allocates a fresh one from the tenant's current generation.
// Free-listed runners were Reset when put and always belong to that
// tenant's current generation (a generation swap empties the list), so
// they are start-of-flow.
func (a *Assembler) getRunner(ts *tenantState) Runner {
	if n := len(ts.free); n > 0 {
		r := ts.free[n-1]
		ts.free[n-1] = nil
		ts.free = ts.free[:n-1]
		a.runnersReused++
		return r
	}
	return ts.cur.gen.New()
}

// removeFlow forgets a flow and recycles its runner — unless the runner
// belongs to a superseded generation, in which case it is discarded
// (counted in Stats.StaleRunners) so it can never serve a new flow.
func (a *Assembler) removeFlow(ctx *flowCtx) {
	a.flushIfBatched(ctx.runner)
	delete(a.flows, ctx.key)
	a.lru.Remove(ctx.elem)
	a.releaseFlowGauges(ctx)
	ctx.gen.flows--
	ctx.gen.live.add(-1)
	if ctx.gen == ctx.ten.cur {
		if len(ctx.ten.free) < maxFreeRunners {
			ctx.runner.Reset()
			ctx.ten.free = append(ctx.ten.free, ctx.runner)
		}
	} else {
		a.staleRunners++
	}
	a.pruneGen(ctx.gen)
	ctx.runner = nil
}

// restartFlow rewinds a live flow for a brand-new connection on the same
// 4-tuple: matching state restarts from the initial state (on the
// current generation — a stale runner is replaced, not reset) and the
// previous connection's buffered out-of-order segments are discarded
// with their gauge contribution withdrawn.
func (a *Assembler) restartFlow(ctx *flowCtx) {
	a.flushIfBatched(ctx.runner)
	a.flowRestarts++
	if len(ctx.pending) > 0 {
		a.gPending.add(-int64(len(ctx.pending)))
		a.gBytes.add(-ctx.pendingBytes)
		ctx.ten.gBytes.add(-ctx.pendingBytes)
		ctx.pending = make(map[uint32][]byte)
		ctx.order = ctx.order[:0]
		ctx.pendingBytes = 0
	}
	if ctx.gen == ctx.ten.cur {
		ctx.runner.Reset()
		return
	}
	a.staleRunners++
	a.moveFlowGen(ctx, ctx.ten.cur)
	ctx.runner = a.getRunner(ctx.ten)
}

// releaseFlowGauges withdraws one flow's gauge contribution as it leaves
// the table.
func (a *Assembler) releaseFlowGauges(ctx *flowCtx) {
	a.gLive.add(-1)
	ctx.ten.gLive.add(-1)
	a.gPending.add(-int64(len(ctx.pending)))
	a.gBytes.add(-ctx.pendingBytes)
	ctx.ten.gBytes.add(-ctx.pendingBytes)
	ctx.pendingBytes = 0
}

// DropFlow forgets a flow without recycling its runner. This is the
// quarantine path: after a runner panic the context may be mid-mutation,
// so the runner must not re-enter the pool where a future flow would
// inherit its corrupt state. Returns false if the flow is unknown.
//
// DropFlow is safe to call after a panic escaped HandleSegment: the
// assembler mutates its flow map and LRU list only before it calls into
// the runner, so those structures are consistent at every point a
// user-supplied Feed can panic.
func (a *Assembler) DropFlow(key pcap.FlowKey) bool {
	ctx, ok := a.flows[key]
	if !ok {
		return false
	}
	// A post-panic batch is already empty (Flush empties even when a
	// callback panics), so this only fires on administrative drops of a
	// healthy flow with deferred payload.
	a.flushIfBatched(ctx.runner)
	delete(a.flows, key)
	a.lru.Remove(ctx.elem)
	a.releaseFlowGauges(ctx)
	ctx.gen.flows--
	ctx.gen.live.add(-1)
	a.pruneGen(ctx.gen)
	ctx.runner = nil // do NOT pool: state is suspect
	return true
}

// SetMaxBuffered adjusts the per-flow out-of-order buffer cap at runtime
// and eagerly trims every flow's pending set down to the new cap (oldest
// first, counted in Stats.DroppedSegs). The degradation ladder uses this
// to shed reassembly memory under pressure; passing the original cap
// restores normal buffering (already-trimmed segments stay dropped).
func (a *Assembler) SetMaxBuffered(n int) {
	if n <= 0 {
		n = 64
	}
	shrink := n < a.cfg.MaxBufferedSegments
	a.cfg.MaxBufferedSegments = n
	if !shrink {
		return
	}
	for _, ctx := range a.flows {
		for len(ctx.order) > n {
			oldest := ctx.order[0]
			ctx.order = ctx.order[1:]
			a.removePending(ctx, oldest)
			a.droppedSegs++
		}
	}
}

// removePending deletes one buffered segment and settles its gauge and
// byte accounting.
func (a *Assembler) removePending(ctx *flowCtx, seq uint32) {
	n := int64(len(ctx.pending[seq]))
	delete(ctx.pending, seq)
	ctx.pendingBytes -= n
	a.gPending.add(-1)
	a.gBytes.add(-n)
	ctx.ten.gBytes.add(-n)
}

// MaxBuffered reports the current per-flow out-of-order buffer cap.
func (a *Assembler) MaxBuffered() int { return a.cfg.MaxBufferedSegments }

// evictOldest reclaims the least-recently-seen flow to make room under
// MaxFlows.
func (a *Assembler) evictOldest() {
	back := a.lru.Back()
	if back == nil {
		return
	}
	a.removeFlow(back.Value.(*flowCtx))
	a.evictedCap++
}

// EvictIdle reclaims every flow whose last segment is more than maxAge
// segments in the past (on the assembler's logical clock, which ticks
// once per HandleSegment). It returns the number of flows evicted.
// Periodic sweeps keep the table bounded when connections vanish without
// FIN/RST — the common case for scanned or half-open traffic.
func (a *Assembler) EvictIdle(maxAge int64) int {
	n := 0
	for {
		back := a.lru.Back()
		if back == nil {
			break
		}
		ctx := back.Value.(*flowCtx)
		if a.now-ctx.lastSeen <= maxAge {
			break
		}
		a.removeFlow(ctx)
		a.evictedIdle++
		n++
	}
	return n
}

// deliver handles one data segment: in-order data feeds the engine
// immediately, future data is buffered, stale/duplicate data is trimmed
// or dropped.
func (a *Assembler) deliver(key pcap.FlowKey, ctx *flowCtx, seq uint32, payload []byte) {
	switch {
	case seq == ctx.nextSeq:
		a.feed(key, ctx, payload)
	case seqAfter(seq, ctx.nextSeq):
		// Future segment: buffer until the gap fills.
		a.outOfOrder++
		if acct := ctx.ten.acct; acct != nil {
			if max := acct.MaxBufferedBytes.Load(); max > 0 &&
				acct.BufferedBytes != nil && acct.BufferedBytes.Value()+int64(len(payload)) > max {
				// Tenant over its buffered-bytes quota: shed this
				// segment rather than grow the tenant's reassembly
				// footprint. Other tenants buffer unaffected.
				acct.countByteDrop()
				a.tenantDrops++
				return
			}
		}
		if len(ctx.pending) >= a.cfg.MaxBufferedSegments {
			oldest := ctx.order[0]
			ctx.order = ctx.order[1:]
			a.removePending(ctx, oldest)
			a.droppedSegs++
		}
		if _, dup := ctx.pending[seq]; !dup {
			buf := make([]byte, len(payload))
			copy(buf, payload)
			ctx.pending[seq] = buf
			ctx.order = append(ctx.order, seq)
			ctx.pendingBytes += int64(len(buf))
			a.gPending.add(1)
			a.gBytes.add(int64(len(buf)))
			ctx.ten.gBytes.add(int64(len(buf)))
		}
		return
	default:
		// Stale or overlapping: trim the already-delivered prefix.
		skip := ctx.nextSeq - seq
		if uint32(len(payload)) <= skip {
			a.droppedSegs++
			return
		}
		a.feed(key, ctx, payload[skip:])
	}
	// Drain any buffered segments that are now in order.
	for {
		p, ok := ctx.pending[ctx.nextSeq]
		if !ok {
			return
		}
		seq := ctx.nextSeq
		a.removePending(ctx, seq)
		removeSeq(&ctx.order, seq)
		a.feed(key, ctx, p)
	}
}

func (a *Assembler) feed(key pcap.FlowKey, ctx *flowCtx, data []byte) {
	ctx.nextSeq += uint32(len(data))
	a.payloadBytes += int64(len(data))
	if a.batch != nil && a.batch.Add(ctx.runner, ctx.key, data, ctx.cb) {
		return // deferred: scanned in lockstep at the next flush
	}
	ctx.runner.Feed(data, ctx.cb)
}

// matchCB builds a flow's per-match callback once, at flow creation.
func (a *Assembler) matchCB(key pcap.FlowKey) func(id int32, pos int64) {
	if a.onMatch == nil {
		return func(int32, int64) {}
	}
	return func(id int32, pos int64) {
		a.onMatch(Match{Flow: key, ID: id, Pos: pos})
	}
}

// FlushBatch scans all deferred payload now. It is a no-op without a
// configured Batcher. Callers that lease payload buffers to the
// assembler may reclaim them once this returns.
func (a *Assembler) FlushBatch() {
	if a.batch != nil {
		a.batch.Flush()
	}
}

// BatchLen reports how many flows currently have deferred payload.
func (a *Assembler) BatchLen() int {
	if a.batch == nil {
		return 0
	}
	return a.batch.Len()
}

// BatchScanning exposes the batcher's Scanning tag (the pcap.FlowKey of
// the flow whose callback is running) for panic attribution in shard
// recover paths; nil when no flush is in progress.
func (a *Assembler) BatchScanning() any {
	if a.batch == nil {
		return nil
	}
	return a.batch.Scanning()
}

// flushIfBatched flushes deferred work before a lifecycle event on
// ctx.runner (teardown, restart, quarantine), so the batcher never
// scans a reset or recycled runner.
func (a *Assembler) flushIfBatched(r Runner) {
	if a.batch != nil && a.batch.Contains(r) {
		a.batch.Flush()
	}
}

// seqAfter reports whether a is after b in 32-bit sequence space.
func seqAfter(a, b uint32) bool { return int32(a-b) > 0 }

func removeSeq(order *[]uint32, seq uint32) {
	for i, s := range *order {
		if s == seq {
			*order = append((*order)[:i], (*order)[i+1:]...)
			return
		}
	}
}

// ScanPcap reads a full capture from r and runs every TCP payload byte
// through engines built by newRunner, returning the reassembly stats.
// This is the measurement path of the Figure 4 experiment. For the
// concurrent counterpart see internal/engine.ScanPcap.
func ScanPcap(r io.Reader, cfg Config, newRunner func() Runner, onMatch func(Match)) (Stats, error) {
	pr, err := pcap.NewReader(r)
	if err != nil {
		return Stats{}, err
	}
	a := NewAssembler(cfg, newRunner, onMatch)
	for {
		pkt, err := pr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return a.Stats(), fmt.Errorf("flow: %w", err)
		}
		if err := a.HandleFrame(pkt.Data); err != nil {
			return a.Stats(), fmt.Errorf("flow: %w", err)
		}
	}
	a.FlushBatch()
	return a.Stats(), nil
}
