// Package flow reassembles TCP streams from packet captures and drives a
// matching engine over each flow's in-order payload. This is the §III-B
// "multiplexed flows" path of the paper: the scanner keeps one small
// context per flow — for the MFA, the (q, m) pair — and packets of many
// interleaved connections advance their own flow's context independently.
//
// An Assembler is deliberately single-threaded: it owns a private flow
// table with no locks anywhere on its hot path. Concurrency is layered on
// top by internal/engine, which runs one Assembler per shard and routes
// every segment of a flow to the same shard.
package flow

import (
	"container/list"
	"errors"
	"fmt"
	"io"
	"sync"

	"matchfilter/internal/pcap"
)

// Runner is the per-flow matching context every engine in this repository
// provides (dfa, core, hfa, xfa all satisfy it).
type Runner interface {
	// Feed advances the flow over in-order payload bytes.
	Feed(data []byte, onMatch func(id int32, pos int64))
	// Reset rewinds the context for reuse on a new flow.
	Reset()
}

// Match is one confirmed match attributed to a flow.
type Match struct {
	Flow pcap.FlowKey
	ID   int32
	Pos  int64
}

// Config bounds the reassembler.
type Config struct {
	// MaxBufferedSegments caps out-of-order segments held per flow;
	// overflow drops the oldest. 0 means 64.
	MaxBufferedSegments int
	// MaxFlows caps tracked flows; 0 means unlimited. When the table is
	// full, a new flow evicts the least-recently-seen one (counted in
	// Stats.EvictedCap) rather than being silently rejected.
	MaxFlows int
	// Gauges, when non-nil, receives live occupancy updates (flows,
	// buffered out-of-order segments and bytes) as the assembler works.
	// The gauges are atomics, so they may be read from any goroutine and
	// shared between assemblers; see gauges.go.
	Gauges *Gauges
}

// Assembler demultiplexes TCP segments into flows, restores byte order,
// and feeds each flow's stream to a Runner obtained from the factory.
// Torn-down flows return their runner to a pool, so long-running
// assemblers allocate one runner per *concurrent* flow, not per
// connection. An Assembler is not safe for concurrent use.
type Assembler struct {
	cfg       Config
	newRunner func() Runner
	flows     map[pcap.FlowKey]*flowCtx
	lru       *list.List // *flowCtx; front = most recently seen
	pool      sync.Pool  // recycled Runners, already Reset
	onMatch   func(Match)
	now       int64 // logical clock: segments handled so far
	// Stats.
	packets       int64
	payloadBytes  int64
	outOfOrder    int64
	droppedSegs   int64
	skippedFrames int64
	flowsTotal    int64
	evictedCap    int64
	evictedIdle   int64
	runnersReused int64
	// Live gauge accounting (gauges.go); no-ops when Config.Gauges is nil.
	gLive    gaugeAcct
	gPending gaugeAcct
	gBytes   gaugeAcct
}

type flowCtx struct {
	key      pcap.FlowKey
	runner   Runner
	nextSeq  uint32
	started  bool
	lastSeen int64 // assembler clock at the flow's latest segment
	elem     *list.Element
	// pending holds out-of-order segments keyed by sequence number.
	pending map[uint32][]byte
	order   []uint32 // insertion order, for bounded eviction
	// pendingBytes is the payload total held in pending, maintained so
	// gauge accounting never has to walk the map.
	pendingBytes int64
}

// NewAssembler creates an assembler. newRunner supplies per-flow contexts
// (recycled through an internal pool across flows); onMatch (may be nil)
// receives every confirmed match.
func NewAssembler(cfg Config, newRunner func() Runner, onMatch func(Match)) *Assembler {
	if cfg.MaxBufferedSegments <= 0 {
		cfg.MaxBufferedSegments = 64
	}
	a := &Assembler{
		cfg:       cfg,
		newRunner: newRunner,
		flows:     make(map[pcap.FlowKey]*flowCtx),
		lru:       list.New(),
		onMatch:   onMatch,
	}
	if g := cfg.Gauges; g != nil {
		a.gLive.g = g.LiveFlows
		a.gPending.g = g.PendingSegments
		a.gBytes.g = g.BufferedBytes
	}
	return a
}

// Stats reports reassembly counters.
type Stats struct {
	Packets       int64
	PayloadBytes  int64
	Flows         int
	OutOfOrder    int64
	DroppedSegs   int64
	SkippedFrames int64
	// FlowsTotal counts every flow ever created (live + finished).
	FlowsTotal int64
	// EvictedCap counts flows displaced by the MaxFlows cap — the flows
	// that before this counter existed were silently dropped.
	EvictedCap int64
	// EvictedIdle counts flows reclaimed by EvictIdle sweeps.
	EvictedIdle int64
	// RunnersReused counts new flows served from the runner pool instead
	// of a fresh newRunner allocation.
	RunnersReused int64
}

// Stats returns the counters accumulated so far.
func (a *Assembler) Stats() Stats {
	return Stats{
		Packets:       a.packets,
		PayloadBytes:  a.payloadBytes,
		Flows:         len(a.flows),
		OutOfOrder:    a.outOfOrder,
		DroppedSegs:   a.droppedSegs,
		SkippedFrames: a.skippedFrames,
		FlowsTotal:    a.flowsTotal,
		EvictedCap:    a.evictedCap,
		EvictedIdle:   a.evictedIdle,
		RunnersReused: a.runnersReused,
	}
}

// HandleFrame decodes one Ethernet frame and advances its flow. Non-TCP
// frames are counted and skipped; decode errors on TCP frames are
// returned.
func (a *Assembler) HandleFrame(frame []byte) error {
	seg, err := pcap.DecodeTCP(frame)
	if err != nil {
		if errors.Is(err, pcap.ErrNotTCP) {
			a.skippedFrames++
			return nil
		}
		return err
	}
	a.HandleSegment(seg)
	return nil
}

// HandleSegment advances one decoded TCP segment's flow. It is exported
// so callers that decode frames themselves — internal/engine's shards —
// can drive reassembly directly.
func (a *Assembler) HandleSegment(seg pcap.Segment) {
	a.packets++
	a.now++
	ctx, ok := a.flows[seg.Key]
	if !ok {
		if a.cfg.MaxFlows > 0 && len(a.flows) >= a.cfg.MaxFlows {
			a.evictOldest()
		}
		ctx = &flowCtx{
			key:     seg.Key,
			runner:  a.getRunner(),
			pending: make(map[uint32][]byte),
		}
		ctx.elem = a.lru.PushFront(ctx)
		a.flows[seg.Key] = ctx
		a.flowsTotal++
		a.gLive.add(1)
	} else {
		a.lru.MoveToFront(ctx.elem)
	}
	ctx.lastSeen = a.now

	if seg.Flags&pcap.FlagSYN != 0 {
		ctx.nextSeq = seg.Seq + 1
		ctx.started = true
		return
	}
	if !ctx.started {
		// Mid-stream pickup (no SYN observed): adopt the first data
		// segment's sequence as the stream origin.
		ctx.nextSeq = seg.Seq
		ctx.started = true
	}
	if len(seg.Payload) > 0 {
		a.deliver(seg.Key, ctx, seg.Seq, seg.Payload)
	}
	if seg.Flags&(pcap.FlagFIN|pcap.FlagRST) != 0 {
		// Flow teardown: the context is dropped and its runner recycled
		// through the pool for the next flow.
		a.removeFlow(ctx)
	}
}

// getRunner takes a recycled runner from the pool or allocates a fresh
// one. Pooled runners were Reset when put, so they are start-of-flow.
func (a *Assembler) getRunner() Runner {
	if r, ok := a.pool.Get().(Runner); ok {
		a.runnersReused++
		return r
	}
	return a.newRunner()
}

// removeFlow forgets a flow and recycles its runner.
func (a *Assembler) removeFlow(ctx *flowCtx) {
	delete(a.flows, ctx.key)
	a.lru.Remove(ctx.elem)
	a.releaseFlowGauges(ctx)
	ctx.runner.Reset()
	a.pool.Put(ctx.runner)
	ctx.runner = nil
}

// releaseFlowGauges withdraws one flow's gauge contribution as it leaves
// the table.
func (a *Assembler) releaseFlowGauges(ctx *flowCtx) {
	a.gLive.add(-1)
	a.gPending.add(-int64(len(ctx.pending)))
	a.gBytes.add(-ctx.pendingBytes)
	ctx.pendingBytes = 0
}

// DropFlow forgets a flow without recycling its runner. This is the
// quarantine path: after a runner panic the context may be mid-mutation,
// so the runner must not re-enter the pool where a future flow would
// inherit its corrupt state. Returns false if the flow is unknown.
//
// DropFlow is safe to call after a panic escaped HandleSegment: the
// assembler mutates its flow map and LRU list only before it calls into
// the runner, so those structures are consistent at every point a
// user-supplied Feed can panic.
func (a *Assembler) DropFlow(key pcap.FlowKey) bool {
	ctx, ok := a.flows[key]
	if !ok {
		return false
	}
	delete(a.flows, key)
	a.lru.Remove(ctx.elem)
	a.releaseFlowGauges(ctx)
	ctx.runner = nil // do NOT pool: state is suspect
	return true
}

// SetMaxBuffered adjusts the per-flow out-of-order buffer cap at runtime
// and eagerly trims every flow's pending set down to the new cap (oldest
// first, counted in Stats.DroppedSegs). The degradation ladder uses this
// to shed reassembly memory under pressure; passing the original cap
// restores normal buffering (already-trimmed segments stay dropped).
func (a *Assembler) SetMaxBuffered(n int) {
	if n <= 0 {
		n = 64
	}
	shrink := n < a.cfg.MaxBufferedSegments
	a.cfg.MaxBufferedSegments = n
	if !shrink {
		return
	}
	for _, ctx := range a.flows {
		for len(ctx.order) > n {
			oldest := ctx.order[0]
			ctx.order = ctx.order[1:]
			a.removePending(ctx, oldest)
			a.droppedSegs++
		}
	}
}

// removePending deletes one buffered segment and settles its gauge and
// byte accounting.
func (a *Assembler) removePending(ctx *flowCtx, seq uint32) {
	n := int64(len(ctx.pending[seq]))
	delete(ctx.pending, seq)
	ctx.pendingBytes -= n
	a.gPending.add(-1)
	a.gBytes.add(-n)
}

// MaxBuffered reports the current per-flow out-of-order buffer cap.
func (a *Assembler) MaxBuffered() int { return a.cfg.MaxBufferedSegments }

// evictOldest reclaims the least-recently-seen flow to make room under
// MaxFlows.
func (a *Assembler) evictOldest() {
	back := a.lru.Back()
	if back == nil {
		return
	}
	a.removeFlow(back.Value.(*flowCtx))
	a.evictedCap++
}

// EvictIdle reclaims every flow whose last segment is more than maxAge
// segments in the past (on the assembler's logical clock, which ticks
// once per HandleSegment). It returns the number of flows evicted.
// Periodic sweeps keep the table bounded when connections vanish without
// FIN/RST — the common case for scanned or half-open traffic.
func (a *Assembler) EvictIdle(maxAge int64) int {
	n := 0
	for {
		back := a.lru.Back()
		if back == nil {
			break
		}
		ctx := back.Value.(*flowCtx)
		if a.now-ctx.lastSeen <= maxAge {
			break
		}
		a.removeFlow(ctx)
		a.evictedIdle++
		n++
	}
	return n
}

// deliver handles one data segment: in-order data feeds the engine
// immediately, future data is buffered, stale/duplicate data is trimmed
// or dropped.
func (a *Assembler) deliver(key pcap.FlowKey, ctx *flowCtx, seq uint32, payload []byte) {
	switch {
	case seq == ctx.nextSeq:
		a.feed(key, ctx, payload)
	case seqAfter(seq, ctx.nextSeq):
		// Future segment: buffer until the gap fills.
		a.outOfOrder++
		if len(ctx.pending) >= a.cfg.MaxBufferedSegments {
			oldest := ctx.order[0]
			ctx.order = ctx.order[1:]
			a.removePending(ctx, oldest)
			a.droppedSegs++
		}
		if _, dup := ctx.pending[seq]; !dup {
			buf := make([]byte, len(payload))
			copy(buf, payload)
			ctx.pending[seq] = buf
			ctx.order = append(ctx.order, seq)
			ctx.pendingBytes += int64(len(buf))
			a.gPending.add(1)
			a.gBytes.add(int64(len(buf)))
		}
		return
	default:
		// Stale or overlapping: trim the already-delivered prefix.
		skip := ctx.nextSeq - seq
		if uint32(len(payload)) <= skip {
			a.droppedSegs++
			return
		}
		a.feed(key, ctx, payload[skip:])
	}
	// Drain any buffered segments that are now in order.
	for {
		p, ok := ctx.pending[ctx.nextSeq]
		if !ok {
			return
		}
		seq := ctx.nextSeq
		a.removePending(ctx, seq)
		removeSeq(&ctx.order, seq)
		a.feed(key, ctx, p)
	}
}

func (a *Assembler) feed(key pcap.FlowKey, ctx *flowCtx, data []byte) {
	ctx.nextSeq += uint32(len(data))
	a.payloadBytes += int64(len(data))
	if a.onMatch == nil {
		ctx.runner.Feed(data, func(int32, int64) {})
		return
	}
	ctx.runner.Feed(data, func(id int32, pos int64) {
		a.onMatch(Match{Flow: key, ID: id, Pos: pos})
	})
}

// seqAfter reports whether a is after b in 32-bit sequence space.
func seqAfter(a, b uint32) bool { return int32(a-b) > 0 }

func removeSeq(order *[]uint32, seq uint32) {
	for i, s := range *order {
		if s == seq {
			*order = append((*order)[:i], (*order)[i+1:]...)
			return
		}
	}
}

// ScanPcap reads a full capture from r and runs every TCP payload byte
// through engines built by newRunner, returning the reassembly stats.
// This is the measurement path of the Figure 4 experiment. For the
// concurrent counterpart see internal/engine.ScanPcap.
func ScanPcap(r io.Reader, cfg Config, newRunner func() Runner, onMatch func(Match)) (Stats, error) {
	pr, err := pcap.NewReader(r)
	if err != nil {
		return Stats{}, err
	}
	a := NewAssembler(cfg, newRunner, onMatch)
	for {
		pkt, err := pr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return a.Stats(), fmt.Errorf("flow: %w", err)
		}
		if err := a.HandleFrame(pkt.Data); err != nil {
			return a.Stats(), fmt.Errorf("flow: %w", err)
		}
	}
	return a.Stats(), nil
}
