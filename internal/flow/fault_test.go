// Robustness tests for the assembler's quarantine and degradation
// surface (external test package: faultinject imports flow, so these
// tests cannot live in package flow).
package flow_test

import (
	"bytes"
	"testing"

	"matchfilter/internal/faultinject"
	"matchfilter/internal/flow"
	"matchfilter/internal/pcap"
	"matchfilter/internal/trace"
)

func fkey(i int) pcap.FlowKey {
	return pcap.FlowKey{SrcIP: uint32(i), DstIP: 0xc0a80101, SrcPort: uint16(1000 + i), DstPort: 80}
}

// countingRunner counts feeds and remembers total bytes.
type countingRunner struct{ feeds, bytes int }

func (r *countingRunner) Feed(data []byte, _ func(int32, int64)) { r.feeds++; r.bytes += len(data) }
func (r *countingRunner) Reset()                                 {}

// TestDropFlowExcisesWithoutPooling: DropFlow removes the flow and its
// runner never re-enters the pool (a poisoned runner must not serve a
// future flow).
func TestDropFlowExcisesWithoutPooling(t *testing.T) {
	allocs := 0
	a := flow.NewAssembler(flow.Config{}, func() flow.Runner { allocs++; return &countingRunner{} }, nil)

	a.HandleSegment(pcap.Segment{Key: fkey(1), Seq: 1, Flags: pcap.FlagACK, Payload: []byte("abc")})
	if !a.DropFlow(fkey(1)) {
		t.Fatal("DropFlow did not find the live flow")
	}
	if a.DropFlow(fkey(1)) {
		t.Fatal("DropFlow found an already-dropped flow")
	}
	if st := a.Stats(); st.Flows != 0 {
		t.Fatalf("flow still tracked after DropFlow: %+v", st)
	}
	// A new flow must get a fresh runner, not the suspect one.
	a.HandleSegment(pcap.Segment{Key: fkey(2), Seq: 1, Flags: pcap.FlagACK, Payload: []byte("xy")})
	if allocs != 2 {
		t.Errorf("allocs = %d, want 2 (dropped runner must not be pooled)", allocs)
	}
	if st := a.Stats(); st.RunnersReused != 0 {
		t.Errorf("suspect runner was reused: %+v", st)
	}
	// The quarantined flow's key can return as a brand-new flow.
	a.HandleSegment(pcap.Segment{Key: fkey(1), Seq: 50, Flags: pcap.FlagACK, Payload: []byte("z")})
	if st := a.Stats(); st.Flows != 2 || st.FlowsTotal != 3 {
		t.Errorf("re-adding a dropped key: %+v", st)
	}
}

// TestSetMaxBufferedShrinksEagerly: lowering the cap trims existing
// out-of-order buffers oldest-first with accounting, and raising it back
// restores capacity for future segments.
func TestSetMaxBufferedShrinksEagerly(t *testing.T) {
	r := &countingRunner{}
	a := flow.NewAssembler(flow.Config{MaxBufferedSegments: 8}, func() flow.Runner { return r }, nil)
	k := fkey(1)
	// Establish origin at seq 1, then send 6 future segments (a gap at 2).
	a.HandleSegment(pcap.Segment{Key: k, Seq: 1, Flags: pcap.FlagACK, Payload: []byte("a")})
	for i := 0; i < 6; i++ {
		a.HandleSegment(pcap.Segment{Key: k, Seq: uint32(10 + i), Flags: pcap.FlagACK, Payload: []byte("b")})
	}
	if st := a.Stats(); st.OutOfOrder != 6 || st.DroppedSegs != 0 {
		t.Fatalf("setup: %+v", st)
	}
	a.SetMaxBuffered(2)
	if got := a.MaxBuffered(); got != 2 {
		t.Fatalf("MaxBuffered = %d, want 2", got)
	}
	if st := a.Stats(); st.DroppedSegs != 4 {
		t.Fatalf("eager trim dropped %d, want 4", st.DroppedSegs)
	}
	a.SetMaxBuffered(8)
	if st := a.Stats(); st.DroppedSegs != 4 {
		t.Fatalf("restoring the cap must not drop more: %+v", st)
	}
}

// TestAssemblerSurvivesMangledCapture: a deterministically mangled
// capture (truncation, corruption, reordering, drops) must never panic
// the assembler; malformed frames surface as typed errors and everything
// else is scanned.
func TestAssemblerSurvivesMangledCapture(t *testing.T) {
	payloads := make([][]byte, 6)
	for i := range payloads {
		payloads[i] = trace.TextLike(4<<10, int64(i+1), []string{"needle"}, 0.05)
	}
	var buf bytes.Buffer
	if err := pcap.Synthesize(&buf, payloads, 256, 0.1, 5); err != nil {
		t.Fatal(err)
	}
	pr, err := pcap.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(faultinject.Config{
		Seed: 17, TruncateProb: 0.2, CorruptProb: 0.2, ReorderProb: 0.1, DropProb: 0.05,
	})
	a := flow.NewAssembler(flow.Config{}, func() flow.Runner { return &countingRunner{} }, nil)
	var malformed int
	feed := func(frames [][]byte) {
		for _, f := range frames {
			if err := a.HandleFrame(f); err != nil {
				malformed++
			}
		}
	}
	for {
		pkt, err := pr.Next()
		if err != nil {
			break
		}
		feed(inj.Frame(pkt.Data))
	}
	feed(inj.Flush())
	ist := inj.Stats()
	if ist.Truncated == 0 || ist.Corrupted == 0 {
		t.Fatalf("schedule applied no faults: %+v", ist)
	}
	if malformed == 0 {
		t.Error("expected some malformed frames from a truncating schedule")
	}
	if st := a.Stats(); st.Packets == 0 {
		t.Errorf("nothing scanned: %+v", st)
	}
}
