// Pattern-set generations.
//
// The paper's flow model (§III-B) makes the per-flow matching context a
// tiny opaque value the assembler merely stores — which is exactly what
// makes the *automaton* swappable under live traffic: a new compiled
// pattern set is just a new runner factory, and each flow's context
// stays valid as long as the flow keeps using the runner it started
// with. A Generation bundles one such factory with an identity, and the
// assembler tracks which generation every live flow belongs to, so a
// hot reload can choose per policy whether existing flows drain on the
// automaton they started on or restart on the new one. Stale runners —
// contexts compiled for a superseded automaton — are never recycled
// into new flows (their state layout may not even fit the new
// automaton; see core.Runner.SetContext's bounds checks for what
// happens when one is forced).
//
// internal/engine drives this per shard; a standalone Assembler that
// never calls SetGeneration runs entirely on the implicit generation 0
// and pays nothing for any of it.

package flow

import "matchfilter/internal/telemetry"

// Generation identifies one loaded pattern generation.
type Generation struct {
	// ID distinguishes generations; a swap to the current ID is a no-op.
	ID uint64
	// New allocates a start-of-flow runner compiled for this generation.
	New func() Runner
	// Live, when non-nil, counts this generation's live flows. The gauge
	// may be shared by many assemblers (one per engine shard — atomic
	// adds compose); each assembler tracks its own contribution so
	// ReleaseGauges can withdraw it wholesale after corruption.
	Live *telemetry.Gauge
}

// genState is one generation's per-assembler bookkeeping.
type genState struct {
	gen   Generation
	owner *tenantState // tenant whose flows this generation serves
	flows int64        // live flows of this generation in this assembler
	live  gaugeAcct    // this assembler's contribution to gen.Live
}

// SetGeneration switches the default tenant to pattern generation g:
// flows created from now on use g.New, and the recycled-runner free
// list is emptied so no previous-generation runner can serve a new
// flow. When resetExisting is true every live flow's matching state
// restarts on g immediately (TCP reassembly state — nextSeq and
// buffered out-of-order segments — is preserved; only the matcher
// context restarts); when false, live flows drain on the generation
// they started with. Applying the current generation again is a no-op.
// Returns the number of live flows moved onto g. For nonzero tenants
// see SetTenantGeneration (tenant.go).
func (a *Assembler) SetGeneration(g Generation, resetExisting bool) int {
	return a.setTenantGen(a.def, g, resetExisting)
}

// setTenantGen is the tenant-scoped generation swap behind both
// SetGeneration and SetTenantGeneration: only ts's free list is
// emptied and only ts's flows are reset — every other tenant serves on
// undisturbed.
func (a *Assembler) setTenantGen(ts *tenantState, g Generation, resetExisting bool) int {
	if ts.cur != nil && g.ID == ts.cur.gen.ID {
		return 0
	}
	// Deferred scans must not outlive the runners they reference: a
	// resetExisting swap replaces runners wholesale, and even a draining
	// swap recycles through a free list this call is about to empty.
	a.FlushBatch()
	for i := range ts.free {
		ts.free[i] = nil
	}
	ts.free = ts.free[:0]
	old := ts.cur
	ngen, ok := a.gens[g.ID]
	if !ok {
		ngen = &genState{gen: g, owner: ts}
		ngen.live.g = g.Live
		a.gens[g.ID] = ngen
	}
	ts.cur = ngen
	moved := 0
	if resetExisting {
		for _, ctx := range a.flows {
			if ctx.ten != ts || ctx.gen == ngen {
				continue
			}
			a.staleRunners++
			a.moveFlowGen(ctx, ngen)
			ctx.runner = a.getRunner(ts)
			moved++
		}
	}
	if old != nil {
		a.pruneGen(old)
	}
	return moved
}

// moveFlowGen reassigns a live flow from its generation to another,
// settling both generations' flow counts and live gauges. The caller is
// responsible for replacing the flow's runner.
func (a *Assembler) moveFlowGen(ctx *flowCtx, to *genState) {
	from := ctx.gen
	from.flows--
	from.live.add(-1)
	ctx.gen = to
	to.flows++
	to.live.add(1)
	a.pruneGen(from)
}

// pruneGen forgets a superseded generation once its last flow is gone,
// so a long-lived assembler's generation table stays O(generations with
// live flows), not O(reloads ever). A generation is superseded when it
// is no longer its owning tenant's current one (a dropped tenant's
// generations have no current and always prune).
func (a *Assembler) pruneGen(g *genState) {
	if g.flows == 0 && (g.owner == nil || g.owner.cur != g) {
		delete(a.gens, g.gen.ID)
	}
}
