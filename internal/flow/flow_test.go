package flow

import (
	"bytes"
	"strings"
	"testing"

	"matchfilter/internal/core"
	"matchfilter/internal/pcap"
	"matchfilter/internal/regexparse"
)

func buildMFA(t *testing.T, sources ...string) *core.MFA {
	t.Helper()
	rules := make([]core.Rule, len(sources))
	for i, src := range sources {
		p, err := regexparse.ParsePCRE(src)
		if err != nil {
			t.Fatal(err)
		}
		rules[i] = core.Rule{Pattern: p, ID: int32(i + 1)}
	}
	m, err := core.Compile(rules, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func key(i int) pcap.FlowKey {
	return pcap.FlowKey{SrcIP: 0x0a000000 | uint32(i), DstIP: 1, SrcPort: uint16(i), DstPort: 80}
}

func newAsm(m *core.MFA, matches *[]Match) *Assembler {
	return NewAssembler(Config{}, func() Runner { return m.NewRunner() },
		func(mt Match) { *matches = append(*matches, mt) })
}

func TestInOrderDelivery(t *testing.T) {
	m := buildMFA(t, "attack.*payload")
	var matches []Match
	a := newAsm(m, &matches)

	k := key(1)
	a.HandleSegment(pcap.Segment{Key: k, Seq: 0, Flags: pcap.FlagSYN})
	a.HandleSegment(pcap.Segment{Key: k, Seq: 1, Flags: pcap.FlagACK, Payload: []byte("attack then ")})
	a.HandleSegment(pcap.Segment{Key: k, Seq: 13, Flags: pcap.FlagACK, Payload: []byte("payload")})
	if len(matches) != 1 {
		t.Fatalf("matches: %v", matches)
	}
	if matches[0].Flow != k || matches[0].ID != 1 {
		t.Fatalf("match: %+v", matches[0])
	}
	st := a.Stats()
	if st.PayloadBytes != 19 || st.Flows != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestOutOfOrderReassembly(t *testing.T) {
	m := buildMFA(t, "needle")
	var matches []Match
	a := newAsm(m, &matches)

	k := key(2)
	// Segments delivered 3,1,2 (seq 1 is "nee", 4 is "dle").
	a.HandleSegment(pcap.Segment{Key: k, Seq: 0, Flags: pcap.FlagSYN})
	a.HandleSegment(pcap.Segment{Key: k, Seq: 4, Flags: pcap.FlagACK, Payload: []byte("dle")})
	if len(matches) != 0 {
		t.Fatal("future segment must be buffered, not fed")
	}
	a.HandleSegment(pcap.Segment{Key: k, Seq: 1, Flags: pcap.FlagACK, Payload: []byte("nee")})
	if len(matches) != 1 {
		t.Fatalf("reordered match: %v", matches)
	}
	if a.Stats().OutOfOrder != 1 {
		t.Errorf("stats: %+v", a.Stats())
	}
}

func TestDuplicateAndOverlap(t *testing.T) {
	m := buildMFA(t, "abcd")
	var matches []Match
	a := newAsm(m, &matches)

	k := key(3)
	a.HandleSegment(pcap.Segment{Key: k, Seq: 0, Flags: pcap.FlagSYN})
	a.HandleSegment(pcap.Segment{Key: k, Seq: 1, Flags: pcap.FlagACK, Payload: []byte("ab")})
	// Retransmission with overlap: seq 1 again carrying "abcd".
	a.HandleSegment(pcap.Segment{Key: k, Seq: 1, Flags: pcap.FlagACK, Payload: []byte("abcd")})
	if len(matches) != 1 {
		t.Fatalf("overlap-trimmed match: %v", matches)
	}
	// Full duplicate of already-delivered data: dropped.
	a.HandleSegment(pcap.Segment{Key: k, Seq: 1, Flags: pcap.FlagACK, Payload: []byte("ab")})
	if a.Stats().DroppedSegs != 1 {
		t.Errorf("stats: %+v", a.Stats())
	}
}

func TestMultiplexedFlows(t *testing.T) {
	// Two flows interleaved; each must match independently via its own
	// (q, m) context, and a cross-flow split must NOT match.
	m := buildMFA(t, "aa.*zz")
	var matches []Match
	a := newAsm(m, &matches)

	k1, k2 := key(4), key(5)
	a.HandleSegment(pcap.Segment{Key: k1, Seq: 1, Flags: pcap.FlagACK, Payload: []byte("aa..")})
	a.HandleSegment(pcap.Segment{Key: k2, Seq: 1, Flags: pcap.FlagACK, Payload: []byte("zz..")})
	if len(matches) != 0 {
		t.Fatalf("cross-flow contamination: %v", matches)
	}
	a.HandleSegment(pcap.Segment{Key: k1, Seq: 5, Flags: pcap.FlagACK, Payload: []byte("zz")})
	if len(matches) != 1 || matches[0].Flow != k1 {
		t.Fatalf("flow 1 should match: %v", matches)
	}
	a.HandleSegment(pcap.Segment{Key: k2, Seq: 5, Flags: pcap.FlagACK, Payload: []byte("aa..zz")})
	if len(matches) != 2 || matches[1].Flow != k2 {
		t.Fatalf("flow 2 should match: %v", matches)
	}
}

func TestFinTeardown(t *testing.T) {
	m := buildMFA(t, "ab.*cd")
	var matches []Match
	a := newAsm(m, &matches)
	k := key(6)
	a.HandleSegment(pcap.Segment{Key: k, Seq: 1, Flags: pcap.FlagACK, Payload: []byte("ab")})
	a.HandleSegment(pcap.Segment{Key: k, Seq: 3, Flags: pcap.FlagFIN})
	if a.Stats().Flows != 0 {
		t.Errorf("flow must be dropped after FIN: %+v", a.Stats())
	}
	// A new flow with the same key starts fresh: no stale guard bit.
	a.HandleSegment(pcap.Segment{Key: k, Seq: 1, Flags: pcap.FlagACK, Payload: []byte("cd")})
	if len(matches) != 0 {
		t.Fatalf("stale context after teardown: %v", matches)
	}
}

func TestMaxFlowsCap(t *testing.T) {
	m := buildMFA(t, "x")
	a := NewAssembler(Config{MaxFlows: 2}, func() Runner { return m.NewRunner() }, nil)
	for i := 0; i < 5; i++ {
		a.HandleSegment(pcap.Segment{Key: key(i), Seq: 1, Flags: pcap.FlagACK, Payload: []byte("y")})
	}
	st := a.Stats()
	if st.Flows != 2 {
		t.Errorf("flow cap: %+v", st)
	}
	// Cap pressure is counted, not silent: 3 of the 5 flows displaced.
	if st.EvictedCap != 3 || st.FlowsTotal != 5 {
		t.Errorf("eviction accounting: %+v", st)
	}
}

func TestMaxFlowsEvictsOldestNotNewest(t *testing.T) {
	// Regression for the silent reject-new behavior: at the cap, the
	// *least recently seen* flow must be evicted so new traffic is still
	// scanned, and surviving flows keep their matching context.
	m := buildMFA(t, "aa.*zz")
	var matches []Match
	a := NewAssembler(Config{MaxFlows: 2}, func() Runner { return m.NewRunner() },
		func(mt Match) { matches = append(matches, mt) })

	k1, k2, k3 := key(1), key(2), key(3)
	a.HandleSegment(pcap.Segment{Key: k1, Seq: 1, Flags: pcap.FlagACK, Payload: []byte("aa..")})
	a.HandleSegment(pcap.Segment{Key: k2, Seq: 1, Flags: pcap.FlagACK, Payload: []byte("....")})
	// Touch k1 so k2 becomes the LRU victim.
	a.HandleSegment(pcap.Segment{Key: k1, Seq: 5, Flags: pcap.FlagACK, Payload: []byte("..")})
	// k3 arrives at the cap: k2 must go, k1 must survive.
	a.HandleSegment(pcap.Segment{Key: k3, Seq: 1, Flags: pcap.FlagACK, Payload: []byte("zz")})
	if st := a.Stats(); st.Flows != 2 || st.EvictedCap != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// k1's context survived eviction pressure: completing the pattern
	// still matches.
	a.HandleSegment(pcap.Segment{Key: k1, Seq: 7, Flags: pcap.FlagACK, Payload: []byte("zz")})
	if len(matches) != 1 || matches[0].Flow != k1 {
		t.Fatalf("surviving flow lost its context: %v", matches)
	}
}

func TestRunnerRecycledThroughPool(t *testing.T) {
	m := buildMFA(t, "ab.*cd")
	allocs := 0
	a := NewAssembler(Config{}, func() Runner { allocs++; return m.NewRunner() }, nil)

	// Tear down and recreate flows repeatedly. The assertion is
	// statistical rather than exact-count because sync.Pool deliberately
	// drops a fraction of items under the race detector; across this many
	// cycles at least one reuse is certain on both build modes.
	const cycles = 32
	for i := 0; i < cycles; i++ {
		k := key(100 + i)
		a.HandleSegment(pcap.Segment{Key: k, Seq: 1, Flags: pcap.FlagACK, Payload: []byte("ab")})
		a.HandleSegment(pcap.Segment{Key: k, Seq: 3, Flags: pcap.FlagFIN})
	}
	st := a.Stats()
	if st.RunnersReused == 0 {
		t.Errorf("no runner reuse across %d teardown/recreate cycles: %+v", cycles, st)
	}
	if int64(allocs)+st.RunnersReused != cycles {
		t.Errorf("allocs %d + reused %d != %d flows", allocs, st.RunnersReused, cycles)
	}
}

func TestEvictIdle(t *testing.T) {
	m := buildMFA(t, "x")
	a := NewAssembler(Config{}, func() Runner { return m.NewRunner() }, nil)

	a.HandleSegment(pcap.Segment{Key: key(1), Seq: 1, Flags: pcap.FlagACK, Payload: []byte("y")})
	// 10 segments of other traffic age flow 1 out.
	for i := 0; i < 10; i++ {
		a.HandleSegment(pcap.Segment{Key: key(2), Seq: uint32(1 + i), Flags: pcap.FlagACK, Payload: []byte("y")})
	}
	if n := a.EvictIdle(5); n != 1 {
		t.Fatalf("EvictIdle = %d, want 1", n)
	}
	st := a.Stats()
	if st.Flows != 1 || st.EvictedIdle != 1 {
		t.Errorf("stats: %+v", st)
	}
	// The active flow stays.
	if n := a.EvictIdle(5); n != 0 {
		t.Errorf("active flow evicted: %d", n)
	}
}

func TestBufferedSegmentCap(t *testing.T) {
	m := buildMFA(t, "x")
	a := NewAssembler(Config{MaxBufferedSegments: 4}, func() Runner { return m.NewRunner() }, nil)
	k := key(7)
	for i := 0; i < 10; i++ {
		a.HandleSegment(pcap.Segment{Key: k, Seq: uint32(100 + 10*i), Flags: pcap.FlagACK, Payload: []byte("zzz")})
	}
	if a.Stats().DroppedSegs == 0 {
		t.Error("buffer cap should drop segments")
	}
}

func TestScanPcapEndToEnd(t *testing.T) {
	// Synthesize a capture whose flows contain a split-across-packets
	// match, scan it, and verify reassembly finds it.
	m := buildMFA(t, "evil.*string", "benign")
	payloads := [][]byte{
		[]byte("some evil stuff followed by a string of text"),
		[]byte(strings.Repeat("nothing to see ", 50)),
		[]byte("completely benign content"),
	}
	var buf bytes.Buffer
	if err := pcap.Synthesize(&buf, payloads, 16, 0.2, 11); err != nil {
		t.Fatal(err)
	}

	var matches []Match
	stats, err := ScanPcap(bytes.NewReader(buf.Bytes()), Config{},
		func() Runner { return m.NewRunner() },
		func(mt Match) { matches = append(matches, mt) })
	if err != nil {
		t.Fatal(err)
	}

	wantBytes := int64(0)
	for _, p := range payloads {
		wantBytes += int64(len(p))
	}
	if stats.PayloadBytes != wantBytes {
		t.Errorf("payload bytes: %d, want %d", stats.PayloadBytes, wantBytes)
	}
	var evil, benign int
	for _, mt := range matches {
		switch mt.ID {
		case 1:
			evil++
		case 2:
			benign++
		}
	}
	if evil != 1 || benign != 1 {
		t.Fatalf("matches: evil=%d benign=%d (%v)", evil, benign, matches)
	}
}
