package flow

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"matchfilter/internal/core"
	"matchfilter/internal/dfa"
	"matchfilter/internal/pcap"
	"matchfilter/internal/regexparse"
	"matchfilter/internal/trace"
)

func buildLayoutMFA(t *testing.T, layout dfa.Layout, sources ...string) *core.MFA {
	t.Helper()
	rules := make([]core.Rule, len(sources))
	for i, src := range sources {
		p, err := regexparse.ParsePCRE(src)
		if err != nil {
			t.Fatal(err)
		}
		rules[i] = core.Rule{Pattern: p, ID: int32(i + 1)}
	}
	m, err := core.Compile(rules, core.Options{DFA: dfa.Options{Layout: layout}})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func batchedCfg(k int) Config {
	return Config{NewBatcher: func() Batcher { return core.NewFlowBatcher(k) }}
}

// sortedMatches canonicalizes a match list for cross-assembler
// comparison: batched flushes interleave flows, so the global emission
// order differs from scan-on-arrival even though every flow's own
// (id, pos) stream is identical.
func sortedMatches(ms []Match) string {
	out := append([]Match(nil), ms...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Flow != out[j].Flow {
			return fmt.Sprint(out[i].Flow) < fmt.Sprint(out[j].Flow)
		}
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].ID < out[j].ID
	})
	return fmt.Sprint(out)
}

// TestBatchedAssemblerEquivalence drives identical interleaved traffic
// through a scan-on-arrival assembler and batched assemblers of several
// widths and layouts: the match sets must agree exactly, and per-flow
// emission order must be position-sorted within each flow.
func TestBatchedAssemblerEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	sources := []string{"attack.*payload", "abc", "x[0-9]+y"}
	for _, layout := range []dfa.Layout{dfa.LayoutClassed, dfa.LayoutClassed2} {
		m := buildLayoutMFA(t, layout, sources...)
		// Per-flow byte streams, odd lengths included.
		flows := make([][]byte, 5)
		gen := trace.NewGenerator(m.DFA(), 7)
		for i := range flows {
			flows[i] = gen.Generate(nil, 2047+i, 0.6)
		}

		// Segment schedule: random interleave of random-size chunks.
		type segment struct {
			fi  int
			off int
			n   int
		}
		var sched []segment
		offs := make([]int, len(flows))
		for {
			remaining := false
			for fi := range flows {
				if offs[fi] < len(flows[fi]) {
					remaining = true
					n := 1 + rng.Intn(400)
					if rng.Intn(2) == 0 {
						n |= 1
					}
					if offs[fi]+n > len(flows[fi]) {
						n = len(flows[fi]) - offs[fi]
					}
					sched = append(sched, segment{fi, offs[fi], n})
					offs[fi] += n
				}
			}
			if !remaining {
				break
			}
		}

		run := func(cfg Config) []Match {
			var ms []Match
			a := NewAssembler(cfg, func() Runner { return m.NewRunner() },
				func(mt Match) { ms = append(ms, mt) })
			for fi := range flows {
				a.HandleSegment(pcap.Segment{Key: key(fi), Flags: pcap.FlagSYN, Seq: 0})
			}
			for _, s := range sched {
				a.HandleSegment(pcap.Segment{
					Key: key(s.fi), Seq: 1 + uint32(s.off), Flags: pcap.FlagACK,
					Payload: flows[s.fi][s.off : s.off+s.n],
				})
			}
			a.FlushBatch()
			if a.BatchLen() != 0 || a.BatchScanning() != nil {
				t.Fatal("batch not drained after FlushBatch")
			}
			return ms
		}

		want := sortedMatches(run(Config{}))
		for _, k := range []int{1, 4, core.MaxBatchFlows} {
			got := run(batchedCfg(k))
			if sortedMatches(got) != want {
				t.Fatalf("layout %v k=%d: batched match set differs from sequential", layout, k)
			}
			// Per-flow position order must be preserved.
			last := map[pcap.FlowKey]int64{}
			for _, mt := range got {
				if mt.Pos < last[mt.Flow] {
					t.Fatalf("layout %v k=%d: flow %v positions out of order", layout, k, mt.Flow)
				}
				last[mt.Flow] = mt.Pos
			}
		}
	}
}

// TestBatchFlushOnFin checks the teardown path: payload and FIN in the
// same batch window must still deliver the match (flush-before-recycle),
// and the recycled runner must be start-of-flow for the next connection.
func TestBatchFlushOnFin(t *testing.T) {
	m := buildLayoutMFA(t, dfa.LayoutClassed2, "attack.*payload")
	var ms []Match
	a := NewAssembler(batchedCfg(8), func() Runner { return m.NewRunner() },
		func(mt Match) { ms = append(ms, mt) })

	k := key(1)
	a.HandleSegment(pcap.Segment{Key: k, Seq: 0, Flags: pcap.FlagSYN})
	a.HandleSegment(pcap.Segment{Key: k, Seq: 1, Flags: pcap.FlagACK, Payload: []byte("attack then payload")})
	if len(ms) != 0 {
		t.Fatalf("match fired before flush: %v", ms)
	}
	a.HandleSegment(pcap.Segment{Key: k, Seq: 20, Flags: pcap.FlagFIN})
	if len(ms) != 1 || ms[0].Flow != k {
		t.Fatalf("FIN teardown lost the deferred match: %v", ms)
	}
	// The pooled runner must not bleed "attack" prefix state into a new
	// connection on the same key.
	ms = nil
	a.HandleSegment(pcap.Segment{Key: k, Seq: 100, Flags: pcap.FlagSYN})
	a.HandleSegment(pcap.Segment{Key: k, Seq: 101, Flags: pcap.FlagACK, Payload: []byte(" payload")})
	a.FlushBatch()
	if len(ms) != 0 {
		t.Fatalf("recycled runner carried old state: %v", ms)
	}
	if a.Stats().RunnersReused != 1 {
		t.Fatalf("stats: %+v", a.Stats())
	}
}

// TestBatchFlushOnSynRestart checks 4-tuple reuse: the old connection's
// deferred payload scans (and matches) before the restart resets the
// runner.
func TestBatchFlushOnSynRestart(t *testing.T) {
	m := buildLayoutMFA(t, dfa.LayoutClassed2, "attack.*payload")
	var ms []Match
	a := NewAssembler(batchedCfg(8), func() Runner { return m.NewRunner() },
		func(mt Match) { ms = append(ms, mt) })

	k := key(1)
	a.HandleSegment(pcap.Segment{Key: k, Seq: 0, Flags: pcap.FlagSYN})
	a.HandleSegment(pcap.Segment{Key: k, Seq: 1, Flags: pcap.FlagACK, Payload: []byte("attack payload")})
	a.HandleSegment(pcap.Segment{Key: k, Seq: 500, Flags: pcap.FlagSYN}) // restart
	if len(ms) != 1 {
		t.Fatalf("restart lost the deferred match: %v", ms)
	}
	a.HandleSegment(pcap.Segment{Key: k, Seq: 501, Flags: pcap.FlagACK, Payload: []byte("payload only")})
	a.FlushBatch()
	if len(ms) != 1 {
		t.Fatalf("restarted flow inherited old state: %v", ms)
	}
}

// TestBatchFlushOnGenerationSwap checks hot reload: deferred payload is
// scanned on the generation that buffered it before resetExisting moves
// flows to the new automaton.
func TestBatchFlushOnGenerationSwap(t *testing.T) {
	m1 := buildLayoutMFA(t, dfa.LayoutClassed2, "attack.*payload")
	m2 := buildLayoutMFA(t, dfa.LayoutClassed2, "abc")
	var ms []Match
	a := NewAssembler(batchedCfg(8), func() Runner { return m1.NewRunner() },
		func(mt Match) { ms = append(ms, mt) })

	k := key(1)
	a.HandleSegment(pcap.Segment{Key: k, Seq: 0, Flags: pcap.FlagSYN})
	a.HandleSegment(pcap.Segment{Key: k, Seq: 1, Flags: pcap.FlagACK, Payload: []byte("attack then payload")})
	moved := a.SetGeneration(Generation{ID: 1, New: func() Runner { return m2.NewRunner() }}, true)
	if moved != 1 {
		t.Fatalf("moved = %d", moved)
	}
	if len(ms) != 1 || ms[0].ID != 1 {
		t.Fatalf("generation swap lost the deferred match: %v", ms)
	}
	a.HandleSegment(pcap.Segment{Key: k, Seq: 20, Flags: pcap.FlagACK, Payload: []byte("abc")})
	a.FlushBatch()
	if len(ms) != 2 || ms[1].ID != 1 {
		t.Fatalf("post-swap flow not on new generation: %v", ms)
	}
}

// TestBatchFlushOnDropPaths checks DropFlow and DropTenant flush
// deferred work before discarding runners.
func TestBatchFlushOnDropPaths(t *testing.T) {
	m := buildLayoutMFA(t, dfa.LayoutClassed2, "attack.*payload")
	var ms []Match
	a := NewAssembler(batchedCfg(8), func() Runner { return m.NewRunner() },
		func(mt Match) { ms = append(ms, mt) })

	k := key(1)
	a.HandleSegment(pcap.Segment{Key: k, Seq: 0, Flags: pcap.FlagSYN})
	a.HandleSegment(pcap.Segment{Key: k, Seq: 1, Flags: pcap.FlagACK, Payload: []byte("attack payload")})
	if !a.DropFlow(k) {
		t.Fatal("DropFlow refused a live flow")
	}
	if len(ms) != 1 {
		t.Fatalf("DropFlow lost the deferred match: %v", ms)
	}

	// Tenant drop: install a tenant, defer payload, drop the tenant.
	a.SetTenantGeneration(7, Generation{ID: 1 << 32, New: func() Runner { return m.NewRunner() }}, nil, false)
	tk := key(2)
	tk.Tenant = 7
	ms = nil
	a.HandleSegment(pcap.Segment{Key: tk, Seq: 0, Flags: pcap.FlagSYN})
	a.HandleSegment(pcap.Segment{Key: tk, Seq: 1, Flags: pcap.FlagACK, Payload: []byte("attack payload")})
	if n := a.DropTenant(7); n != 1 {
		t.Fatalf("DropTenant removed %d flows", n)
	}
	if len(ms) != 1 || ms[0].Flow != tk {
		t.Fatalf("DropTenant lost the deferred match: %v", ms)
	}
}
