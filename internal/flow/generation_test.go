package flow

import (
	"testing"

	"matchfilter/internal/pcap"
	"matchfilter/internal/telemetry"
)

// --- 4-tuple reuse (SYN on a live flow) ---

// A SYN landing on an already-tracked key is a brand-new connection: the
// old connection's matcher state must not bleed into it. "ab" from the
// old connection plus "cd" from the new one must NOT complete "ab.*cd".
func TestSynReuseResetsMatchState(t *testing.T) {
	m := buildMFA(t, "ab.*cd")
	var matches []Match
	a := newAsm(m, &matches)
	k := key(1)

	a.HandleSegment(pcap.Segment{Key: k, Seq: 0, Flags: pcap.FlagSYN})
	a.HandleSegment(pcap.Segment{Key: k, Seq: 1, Flags: pcap.FlagACK, Payload: []byte("ab")})

	// Same 4-tuple, new connection (old FIN was missed on the wire).
	a.HandleSegment(pcap.Segment{Key: k, Seq: 100, Flags: pcap.FlagSYN})
	a.HandleSegment(pcap.Segment{Key: k, Seq: 101, Flags: pcap.FlagACK, Payload: []byte("cd")})
	if len(matches) != 0 {
		t.Fatalf("stale \"ab\" completed a match across connections: %v", matches)
	}

	// The restarted flow still matches on its own bytes.
	a.HandleSegment(pcap.Segment{Key: k, Seq: 103, Flags: pcap.FlagACK, Payload: []byte("ab..cd")})
	if len(matches) != 1 {
		t.Fatalf("restarted flow matches: %v", matches)
	}

	st := a.Stats()
	if st.FlowRestarts != 1 {
		t.Errorf("FlowRestarts = %d, want 1", st.FlowRestarts)
	}
	if st.FlowsTotal != 1 || st.Flows != 1 {
		t.Errorf("restart must reuse the flow entry: total=%d live=%d", st.FlowsTotal, st.Flows)
	}
}

// The restart must also discard the old connection's out-of-order buffer
// and withdraw its gauge contribution: those bytes belong to a stream
// that no longer exists.
func TestSynReuseClearsPending(t *testing.T) {
	m := buildMFA(t, "needle")
	var matches []Match
	g := &Gauges{
		LiveFlows:       &telemetry.Gauge{},
		PendingSegments: &telemetry.Gauge{},
		BufferedBytes:   &telemetry.Gauge{},
	}
	a := NewAssembler(Config{Gauges: g}, func() Runner { return m.NewRunner() },
		func(mt Match) { matches = append(matches, mt) })
	k := key(2)

	a.HandleSegment(pcap.Segment{Key: k, Seq: 0, Flags: pcap.FlagSYN})
	// Future segment: buffered, not delivered.
	a.HandleSegment(pcap.Segment{Key: k, Seq: 50, Flags: pcap.FlagACK, Payload: []byte("dle")})
	if g.PendingSegments.Value() != 1 || g.BufferedBytes.Value() != 3 {
		t.Fatalf("setup: pending=%d bytes=%d", g.PendingSegments.Value(), g.BufferedBytes.Value())
	}

	a.HandleSegment(pcap.Segment{Key: k, Seq: 200, Flags: pcap.FlagSYN})
	if g.PendingSegments.Value() != 0 || g.BufferedBytes.Value() != 0 {
		t.Fatalf("after restart: pending=%d bytes=%d, want zeros",
			g.PendingSegments.Value(), g.BufferedBytes.Value())
	}
	if g.LiveFlows.Value() != 1 {
		t.Fatalf("after restart: live=%d, want 1", g.LiveFlows.Value())
	}

	// The new connection must not see the discarded bytes: fill the gap
	// the old buffer was waiting on and confirm nothing fires.
	a.HandleSegment(pcap.Segment{Key: k, Seq: 201, Flags: pcap.FlagACK, Payload: []byte("nee")})
	if len(matches) != 0 {
		t.Fatalf("discarded pending bytes were delivered: %v", matches)
	}
}

// --- generations ---

// TestSetGenerationDrain: existing flows keep matching on the automaton
// they started with; flows created after the swap use the new one.
func TestSetGenerationDrain(t *testing.T) {
	m1 := buildMFA(t, "aaa")
	m2 := buildMFA(t, "bbb")
	var matches []Match
	a := newAsm(m1, &matches)

	k1, k2 := key(1), key(2)
	a.HandleSegment(pcap.Segment{Key: k1, Seq: 0, Flags: pcap.FlagSYN})
	a.HandleSegment(pcap.Segment{Key: k1, Seq: 1, Flags: pcap.FlagACK, Payload: []byte("aa")})

	moved := a.SetGeneration(Generation{ID: 1, New: func() Runner { return m2.NewRunner() }}, false)
	if moved != 0 {
		t.Fatalf("drain swap moved %d flows, want 0", moved)
	}

	// The in-flight flow completes its old-generation match.
	a.HandleSegment(pcap.Segment{Key: k1, Seq: 3, Flags: pcap.FlagACK, Payload: []byte("a")})
	if len(matches) != 1 || matches[0].Flow != k1 {
		t.Fatalf("draining flow lost its old-generation match: %v", matches)
	}

	// A new flow runs the new rules: "aaa" is dead, "bbb" fires.
	a.HandleSegment(pcap.Segment{Key: k2, Seq: 0, Flags: pcap.FlagSYN})
	a.HandleSegment(pcap.Segment{Key: k2, Seq: 1, Flags: pcap.FlagACK, Payload: []byte("aaabbb")})
	if len(matches) != 2 || matches[1].Flow != k2 {
		t.Fatalf("new flow on new generation: %v", matches)
	}

	st := a.Stats()
	if st.Generation != 1 {
		t.Errorf("Generation = %d, want 1", st.Generation)
	}
	if st.FlowsByGen[0] != 1 || st.FlowsByGen[1] != 1 {
		t.Errorf("FlowsByGen = %v, want {0:1 1:1}", st.FlowsByGen)
	}
}

// TestSetGenerationReset: existing flows restart matching on the new
// generation; partial old-generation progress is discarded but TCP
// reassembly state survives.
func TestSetGenerationReset(t *testing.T) {
	m := buildMFA(t, "ab.*cd")
	var matches []Match
	a := newAsm(m, &matches)
	k := key(1)

	a.HandleSegment(pcap.Segment{Key: k, Seq: 0, Flags: pcap.FlagSYN})
	a.HandleSegment(pcap.Segment{Key: k, Seq: 1, Flags: pcap.FlagACK, Payload: []byte("ab")})

	moved := a.SetGeneration(Generation{ID: 1, New: func() Runner { return m.NewRunner() }}, true)
	if moved != 1 {
		t.Fatalf("reset swap moved %d flows, want 1", moved)
	}

	// Pre-swap progress is gone: "cd" alone must not complete "ab.*cd".
	// Sequencing still works — the segment is delivered in order.
	a.HandleSegment(pcap.Segment{Key: k, Seq: 3, Flags: pcap.FlagACK, Payload: []byte("cd")})
	if len(matches) != 0 {
		t.Fatalf("reset flow kept pre-swap matcher state: %v", matches)
	}
	a.HandleSegment(pcap.Segment{Key: k, Seq: 5, Flags: pcap.FlagACK, Payload: []byte("ab_cd")})
	if len(matches) != 1 {
		t.Fatalf("reset flow must match on post-swap bytes: %v", matches)
	}

	st := a.Stats()
	if st.StaleRunners != 1 {
		t.Errorf("StaleRunners = %d, want 1", st.StaleRunners)
	}
	if len(st.FlowsByGen) != 1 || st.FlowsByGen[1] != 1 {
		t.Errorf("FlowsByGen = %v, want {1:1}", st.FlowsByGen)
	}
}

// Superseded-generation runners must never be recycled into new flows,
// and the free list itself is emptied by the swap.
func TestStaleRunnersNotRecycled(t *testing.T) {
	m := buildMFA(t, "x")
	var matches []Match
	a := newAsm(m, &matches)

	// Keep one generation-0 flow live across the swap.
	k2 := key(2)
	a.HandleSegment(pcap.Segment{Key: k2, Seq: 0, Flags: pcap.FlagSYN})

	// Pool a generation-0 runner via normal FIN teardown.
	k1 := key(1)
	a.HandleSegment(pcap.Segment{Key: k1, Seq: 0, Flags: pcap.FlagSYN})
	a.HandleSegment(pcap.Segment{Key: k1, Seq: 1, Flags: pcap.FlagFIN})

	a.SetGeneration(Generation{ID: 1, New: func() Runner { return m.NewRunner() }}, false)

	// A new flow must get a fresh generation-1 runner, not the pooled
	// generation-0 one.
	k3 := key(3)
	a.HandleSegment(pcap.Segment{Key: k3, Seq: 0, Flags: pcap.FlagSYN})
	if st := a.Stats(); st.RunnersReused != 0 {
		t.Errorf("RunnersReused = %d, want 0 (free list must be emptied by swap)", st.RunnersReused)
	}

	// The draining generation-0 flow's runner is discarded at teardown,
	// not pooled: still no reuse possible afterwards.
	a.HandleSegment(pcap.Segment{Key: k2, Seq: 1, Flags: pcap.FlagFIN})
	k4 := key(4)
	a.HandleSegment(pcap.Segment{Key: k4, Seq: 0, Flags: pcap.FlagSYN})
	st := a.Stats()
	if st.RunnersReused != 0 {
		t.Errorf("RunnersReused = %d, want 0 (stale runner must not be pooled)", st.RunnersReused)
	}
	if st.StaleRunners != 1 {
		t.Errorf("StaleRunners = %d, want 1", st.StaleRunners)
	}
}

// Per-generation live gauges track each generation's flows exactly,
// through drain, reset and teardown.
func TestGenerationLiveGauges(t *testing.T) {
	m := buildMFA(t, "x")
	a := NewAssembler(Config{}, func() Runner { return m.NewRunner() }, nil)

	g1, g2 := &telemetry.Gauge{}, &telemetry.Gauge{}
	a.SetGeneration(Generation{ID: 1, New: func() Runner { return m.NewRunner() }, Live: g1}, false)

	k1, k2 := key(1), key(2)
	a.HandleSegment(pcap.Segment{Key: k1, Seq: 0, Flags: pcap.FlagSYN})
	a.HandleSegment(pcap.Segment{Key: k2, Seq: 0, Flags: pcap.FlagSYN})
	if g1.Value() != 2 {
		t.Fatalf("gen1 live = %d, want 2", g1.Value())
	}

	// Drain swap: flows stay counted on their own generation.
	a.SetGeneration(Generation{ID: 2, New: func() Runner { return m.NewRunner() }, Live: g2}, false)
	if g1.Value() != 2 || g2.Value() != 0 {
		t.Fatalf("after drain swap: gen1=%d gen2=%d, want 2/0", g1.Value(), g2.Value())
	}

	// One flow ends; the other is moved by a reset swap back to gen 2.
	a.HandleSegment(pcap.Segment{Key: k1, Seq: 1, Flags: pcap.FlagFIN})
	if g1.Value() != 1 {
		t.Fatalf("after FIN: gen1=%d, want 1", g1.Value())
	}
	a.SetGeneration(Generation{ID: 3, New: func() Runner { return m.NewRunner() }, Live: g2}, true)
	if g1.Value() != 0 || g2.Value() != 1 {
		t.Fatalf("after reset swap: gen1=%d gen2=%d, want 0/1", g1.Value(), g2.Value())
	}

	// ReleaseGauges withdraws the per-generation contributions too.
	a.ReleaseGauges()
	if g1.Value() != 0 || g2.Value() != 0 {
		t.Fatalf("after ReleaseGauges: gen1=%d gen2=%d, want zeros", g1.Value(), g2.Value())
	}
}

// Re-applying the current generation is a no-op: the free list survives
// and nothing moves.
func TestSetGenerationSameIDNoop(t *testing.T) {
	m := buildMFA(t, "x")
	a := NewAssembler(Config{}, func() Runner { return m.NewRunner() }, nil)

	k1 := key(1)
	a.HandleSegment(pcap.Segment{Key: k1, Seq: 0, Flags: pcap.FlagSYN})
	a.HandleSegment(pcap.Segment{Key: k1, Seq: 1, Flags: pcap.FlagFIN})

	if moved := a.SetGeneration(Generation{ID: 0, New: func() Runner { return m.NewRunner() }}, true); moved != 0 {
		t.Fatalf("same-ID swap moved %d flows", moved)
	}
	k2 := key(2)
	a.HandleSegment(pcap.Segment{Key: k2, Seq: 0, Flags: pcap.FlagSYN})
	if st := a.Stats(); st.RunnersReused != 1 {
		t.Errorf("RunnersReused = %d, want 1 (no-op swap must keep the free list)", st.RunnersReused)
	}
}
