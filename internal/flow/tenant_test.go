package flow

import (
	"testing"

	"matchfilter/internal/core"
	"matchfilter/internal/pcap"
	"matchfilter/internal/telemetry"
)

// tkey is key(i) tagged with a tenant.
func tkey(ten uint32, i int) pcap.FlowKey {
	k := key(i)
	k.Tenant = ten
	return k
}

// packTestGen mirrors the engine's (tenant, generation) id packing so
// assembler-level tests use realistic, collision-free generation ids.
func packTestGen(ten uint32, gen uint64) uint64 { return uint64(ten)<<32 | gen }

func newAcct() *TenantAcct {
	return &TenantAcct{
		LiveFlows:      &telemetry.Gauge{},
		BufferedBytes:  &telemetry.Gauge{},
		FlowQuotaDrops: &telemetry.Counter{},
		ByteQuotaDrops: &telemetry.Counter{},
	}
}

// installTenant is the shard-side install: tenant ten serves automaton m.
func installTenant(a *Assembler, ten uint32, m *core.MFA, acct *TenantAcct) {
	a.SetTenantGeneration(ten, Generation{ID: packTestGen(ten, 1), New: func() Runner { return m.NewRunner() }}, acct, false)
}

// Two tenants with disjoint rule sets on one assembler: each tenant's
// flows match only its own rules, and the default set serves untagged
// traffic unchanged.
func TestTenantRuleSetIsolation(t *testing.T) {
	mDef := buildMFA(t, "default")
	mA := buildMFA(t, "alpha")
	mB := buildMFA(t, "bravo")
	var matches []Match
	a := newAsm(mDef, &matches)
	installTenant(a, 1, mA, newAcct())
	installTenant(a, 2, mB, newAcct())

	payload := []byte("default alpha bravo")
	for _, k := range []pcap.FlowKey{key(1), tkey(1, 2), tkey(2, 3)} {
		a.HandleSegment(pcap.Segment{Key: k, Seq: 0, Flags: pcap.FlagSYN})
		a.HandleSegment(pcap.Segment{Key: k, Seq: 1, Flags: pcap.FlagACK, Payload: payload})
	}
	if len(matches) != 3 {
		t.Fatalf("got %d matches, want 3 (one per flow): %v", len(matches), matches)
	}
	for _, m := range matches {
		// Every rule set has exactly one rule (id 1); the isolation claim
		// is that each flow fired exactly once — its own tenant's rule —
		// not three times against a merged set.
		if m.ID != 1 {
			t.Errorf("flow %v matched rule %d", m.Flow, m.ID)
		}
	}
}

// A tagged segment whose tenant was never installed must be dropped and
// counted, not scanned against the default rule set.
func TestUnknownTenantDropped(t *testing.T) {
	m := buildMFA(t, "needle")
	var matches []Match
	a := newAsm(m, &matches)

	k := tkey(7, 1)
	a.HandleSegment(pcap.Segment{Key: k, Seq: 0, Flags: pcap.FlagSYN})
	a.HandleSegment(pcap.Segment{Key: k, Seq: 1, Flags: pcap.FlagACK, Payload: []byte("needle")})
	if len(matches) != 0 {
		t.Fatalf("unknown tenant's traffic was scanned: %v", matches)
	}
	st := a.Stats()
	if st.TenantDrops != 2 {
		t.Errorf("TenantDrops = %d, want 2", st.TenantDrops)
	}
	if st.FlowsTotal != 0 {
		t.Errorf("unknown tenant created a flow: FlowsTotal = %d", st.FlowsTotal)
	}
}

// Recycled runners must never cross tenants: a runner compiled for one
// tenant's automaton cannot serve another tenant's flow.
func TestTenantFreeListIsolation(t *testing.T) {
	mDef := buildMFA(t, "default")
	mA := buildMFA(t, "alpha")
	mB := buildMFA(t, "bravo")
	var matches []Match
	a := newAsm(mDef, &matches)
	installTenant(a, 1, mA, newAcct())
	installTenant(a, 2, mB, newAcct())

	// Open and close a tenant-1 flow: its runner lands on tenant 1's
	// free list.
	k1 := tkey(1, 1)
	a.HandleSegment(pcap.Segment{Key: k1, Seq: 0, Flags: pcap.FlagSYN})
	a.HandleSegment(pcap.Segment{Key: k1, Seq: 1, Flags: pcap.FlagFIN})
	if st := a.Stats(); st.RunnersReused != 0 {
		t.Fatalf("setup: RunnersReused = %d", st.RunnersReused)
	}

	// A new tenant-2 flow must NOT pick that runner up.
	k2 := tkey(2, 2)
	a.HandleSegment(pcap.Segment{Key: k2, Seq: 0, Flags: pcap.FlagSYN})
	if st := a.Stats(); st.RunnersReused != 0 {
		t.Fatalf("tenant 2 reused tenant 1's runner: RunnersReused = %d", st.RunnersReused)
	}

	// A new tenant-1 flow does.
	k3 := tkey(1, 3)
	a.HandleSegment(pcap.Segment{Key: k3, Seq: 0, Flags: pcap.FlagSYN})
	if st := a.Stats(); st.RunnersReused != 1 {
		t.Fatalf("tenant 1 did not reuse its own runner: RunnersReused = %d", st.RunnersReused)
	}
}

// MaxFlows quota: flows beyond the cap are refused at creation, counted
// under the tenant, and other tenants are untouched.
func TestTenantFlowQuota(t *testing.T) {
	mDef := buildMFA(t, "default")
	mA := buildMFA(t, "alpha")
	var matches []Match
	a := newAsm(mDef, &matches)
	acct := newAcct()
	acct.MaxFlows.Store(2)
	installTenant(a, 1, mA, acct)

	for i := 1; i <= 3; i++ {
		k := tkey(1, i)
		a.HandleSegment(pcap.Segment{Key: k, Seq: 0, Flags: pcap.FlagSYN})
	}
	if got := acct.LiveFlows.Value(); got != 2 {
		t.Errorf("LiveFlows = %d, want 2", got)
	}
	if got := acct.FlowQuotaDrops.Value(); got != 1 {
		t.Errorf("FlowQuotaDrops = %d, want 1", got)
	}
	if st := a.Stats(); st.TenantDrops != 1 {
		t.Errorf("TenantDrops = %d, want 1", st.TenantDrops)
	}

	// The default tenant admits freely while tenant 1 is at quota.
	a.HandleSegment(pcap.Segment{Key: key(9), Seq: 0, Flags: pcap.FlagSYN})
	a.HandleSegment(pcap.Segment{Key: key(9), Seq: 1, Flags: pcap.FlagACK, Payload: []byte("default")})
	if len(matches) != 1 {
		t.Errorf("default tenant impaired by tenant 1's quota: %v", matches)
	}

	// Quota frees up when a flow ends.
	a.HandleSegment(pcap.Segment{Key: tkey(1, 1), Seq: 1, Flags: pcap.FlagFIN})
	a.HandleSegment(pcap.Segment{Key: tkey(1, 4), Seq: 0, Flags: pcap.FlagSYN})
	if got := acct.LiveFlows.Value(); got != 2 {
		t.Errorf("after FIN+new: LiveFlows = %d, want 2", got)
	}
}

// MaxBufferedBytes quota: out-of-order bytes beyond the cap are refused
// at buffering time.
func TestTenantByteQuota(t *testing.T) {
	mA := buildMFA(t, "alpha")
	var matches []Match
	a := newAsm(buildMFA(t, "default"), &matches)
	acct := newAcct()
	acct.MaxBufferedBytes.Store(4)
	installTenant(a, 1, mA, acct)

	k := tkey(1, 1)
	a.HandleSegment(pcap.Segment{Key: k, Seq: 0, Flags: pcap.FlagSYN})
	// Two future segments: 3 bytes fit, 3 more would exceed the 4-byte cap.
	a.HandleSegment(pcap.Segment{Key: k, Seq: 50, Flags: pcap.FlagACK, Payload: []byte("abc")})
	if got := acct.BufferedBytes.Value(); got != 3 {
		t.Fatalf("BufferedBytes = %d, want 3", got)
	}
	a.HandleSegment(pcap.Segment{Key: k, Seq: 60, Flags: pcap.FlagACK, Payload: []byte("def")})
	if got := acct.BufferedBytes.Value(); got != 3 {
		t.Errorf("BufferedBytes = %d, want 3 (second segment refused)", got)
	}
	if got := acct.ByteQuotaDrops.Value(); got != 1 {
		t.Errorf("ByteQuotaDrops = %d, want 1", got)
	}
	if st := a.Stats(); st.TenantDrops != 1 {
		t.Errorf("TenantDrops = %d, want 1", st.TenantDrops)
	}
}

// DropTenant tears down exactly the tenant's flows and makes its tag
// unknown; other tenants and the default set keep serving.
func TestDropTenant(t *testing.T) {
	mDef := buildMFA(t, "default")
	mA := buildMFA(t, "alpha")
	var matches []Match
	a := newAsm(mDef, &matches)
	acct := newAcct()
	installTenant(a, 1, mA, acct)

	a.HandleSegment(pcap.Segment{Key: tkey(1, 1), Seq: 0, Flags: pcap.FlagSYN})
	a.HandleSegment(pcap.Segment{Key: tkey(1, 2), Seq: 0, Flags: pcap.FlagSYN})
	a.HandleSegment(pcap.Segment{Key: key(3), Seq: 0, Flags: pcap.FlagSYN})
	if got := acct.LiveFlows.Value(); got != 2 {
		t.Fatalf("setup: LiveFlows = %d", got)
	}

	if n := a.DropTenant(1); n != 2 {
		t.Errorf("DropTenant removed %d flows, want 2", n)
	}
	if got := acct.LiveFlows.Value(); got != 0 {
		t.Errorf("after drop: LiveFlows = %d, want 0", got)
	}

	// The tag is now unknown: later segments drop.
	a.HandleSegment(pcap.Segment{Key: tkey(1, 1), Seq: 1, Flags: pcap.FlagACK, Payload: []byte("alpha")})
	if len(matches) != 0 {
		t.Errorf("dropped tenant still matching: %v", matches)
	}

	// The default flow is untouched.
	a.HandleSegment(pcap.Segment{Key: key(3), Seq: 1, Flags: pcap.FlagACK, Payload: []byte("default")})
	if len(matches) != 1 {
		t.Errorf("default tenant lost service across DropTenant: %v", matches)
	}

	// Dropping again, or dropping the default tenant, is a no-op.
	if n := a.DropTenant(1); n != 0 {
		t.Errorf("second DropTenant removed %d flows", n)
	}
	if n := a.DropTenant(0); n != 0 {
		t.Errorf("DropTenant(0) removed %d flows", n)
	}
}

// A per-tenant reset swap restarts only that tenant's flows; other
// tenants' in-flight match state is untouched.
func TestTenantResetScoped(t *testing.T) {
	mDef := buildMFA(t, "ab.*cd")
	mA := buildMFA(t, "ab.*cd")
	var matches []Match
	a := newAsm(mDef, &matches)
	acct := newAcct()
	installTenant(a, 1, mA, acct)

	kDef, kA := key(1), tkey(1, 2)
	for _, k := range []pcap.FlowKey{kDef, kA} {
		a.HandleSegment(pcap.Segment{Key: k, Seq: 0, Flags: pcap.FlagSYN})
		a.HandleSegment(pcap.Segment{Key: k, Seq: 1, Flags: pcap.FlagACK, Payload: []byte("ab")})
	}

	// Tenant 1 swaps generations with reset; the default tenant must not
	// be disturbed.
	moved := a.SetTenantGeneration(1, Generation{ID: packTestGen(1, 2), New: func() Runner { return mA.NewRunner() }}, acct, true)
	if moved != 1 {
		t.Fatalf("reset moved %d flows, want 1 (only tenant 1's)", moved)
	}

	// Tenant 1's flow restarted: "cd" does not complete the old "ab".
	a.HandleSegment(pcap.Segment{Key: kA, Seq: 3, Flags: pcap.FlagACK, Payload: []byte("cd")})
	if len(matches) != 0 {
		t.Errorf("tenant flow kept pre-reset match state: %v", matches)
	}
	// The default flow still completes.
	a.HandleSegment(pcap.Segment{Key: kDef, Seq: 3, Flags: pcap.FlagACK, Payload: []byte("cd")})
	if len(matches) != 1 {
		t.Errorf("default flow lost its match state to a tenant reset: %v", matches)
	}
}
