//go:build chaos

package chaos

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"matchfilter/internal/core"
	"matchfilter/internal/engine"
	"matchfilter/internal/faultinject"
	"matchfilter/internal/flow"
	"matchfilter/internal/guard"
	"matchfilter/internal/input"
	"matchfilter/internal/leakcheck"
	"matchfilter/internal/pcap"
	"matchfilter/internal/regexparse"
)

func buildMFA(t testing.TB, sources ...string) *core.MFA {
	t.Helper()
	rules := make([]core.Rule, len(sources))
	for i, src := range sources {
		p, err := regexparse.ParsePCRE(src)
		if err != nil {
			t.Fatal(err)
		}
		rules[i] = core.Rule{Pattern: p, ID: int32(i + 1)}
	}
	m, err := core.Compile(rules, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func chaosKey(n int) pcap.FlowKey {
	return pcap.FlowKey{
		SrcIP:   0x0a000000 | uint32(n+1),
		DstIP:   0xc0a80101,
		SrcPort: uint16(10000 + n),
		DstPort: 80,
	}
}

// waitFor polls cond with a generous wall bound; the individual tests
// assert the tighter timing invariants themselves.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// assertIdentity is the bookkeeping invariant every scenario ends on:
// each successfully dispatched segment is scanned or counted in exactly
// one drop bucket.
func assertIdentity(t *testing.T, st engine.Stats, sent int64) {
	t.Helper()
	accounted := st.Packets + st.QueueDrops + st.HardDrops +
		st.PoisonedDrops + st.UnhealthyDrops + st.WedgeDrops
	if accounted != sent {
		t.Fatalf("accounting identity broken: sent %d, accounted %d (%+v)", sent, accounted, st)
	}
}

func scaled(n int) int {
	if testing.Short() {
		return n / 4
	}
	return n
}

// TestStallStorm drives several flows into mid-scan stalls under
// background load: the watchdog must detect each stuck scan within its
// deadline, sibling traffic must keep flowing, and once the stalls
// clear the offending flows are quarantined, the engine returns to
// healthy, and the books balance.
func TestStallStorm(t *testing.T) {
	leakcheck.Check(t)
	m := buildMFA(t, "attack")
	gate := make(chan struct{})
	const deadline = 10 * time.Millisecond
	e := engine.New(engine.Config{
		Shards: 4, QueueDepth: 64, DropWhenFull: true,
		StallDeadline: deadline, WedgeAfter: time.Hour,
	}, func() flow.Runner {
		return faultinject.StallOn([]byte("LOCKUP"), gate, m.NewRunner())
	}, nil)

	var sent atomic.Int64
	send := func(key pcap.FlowKey, seq uint32, payload string) {
		err := e.HandleSegment(pcap.Segment{Key: key, Seq: seq, Flags: pcap.FlagACK, Payload: []byte(payload)})
		if err == nil {
			sent.Add(1)
		} else if !errors.Is(err, engine.ErrClosed) {
			t.Errorf("HandleSegment: %v", err)
		}
	}

	// Background load on clean flows, poison pills on four others.
	bg := scaled(1600)
	for i := 0; i < 4; i++ {
		send(chaosKey(100+i), 0, "about to LOCKUP hard")
	}
	detect := time.Now()
	for i := 0; i < bg; i++ {
		send(chaosKey(i%16), uint32(i/16*24), "background attack data....")
	}

	waitFor(t, "watchdog fire", func() bool { return e.Stats().StallFires >= 1 })
	if took := time.Since(detect); took > 40*deadline {
		t.Fatalf("watchdog took %v to fire with a %v deadline", took, deadline)
	}
	st := e.Stats()
	if st.StallsRecovered != 0 {
		t.Fatalf("stall recovered while still stuck: %+v", st)
	}

	close(gate)
	waitFor(t, "stall recovery", func() bool {
		st := e.Stats()
		return st.StallsRecovered >= 1 && st.QueuedBytes == 0
	})
	// Recovered: fresh traffic on a clean flow still scans. Stats
	// snapshots publish every 64 segments per shard, so send a full
	// batch to observe the progress.
	before := e.Stats().Packets
	for i := 0; i < 256; i++ {
		send(chaosKey(77+i%4), uint32(i/4*20), "post-recovery attack")
	}
	waitFor(t, "post-recovery scan", func() bool { return e.Stats().Packets > before })

	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if st.UnhealthyShards != 0 || st.WedgedShards != 0 || st.ShardPanics != 0 {
		t.Fatalf("did not recover to healthy: %+v", st)
	}
	if st.PoisonedFlows < 1 || st.PoisonedFlows != st.StallsRecovered {
		t.Fatalf("stalled flows not quarantined 1:1 with recoveries: %+v", st)
	}
	assertIdentity(t, st, sent.Load())
}

// TestPanicStorm hits the crash-recovery path from many flows at once:
// every panicking flow is quarantined exactly once, clean flows keep
// matching, shards stay healthy under the budget, and the books
// balance.
func TestPanicStorm(t *testing.T) {
	leakcheck.Check(t)
	m := buildMFA(t, "attack")
	e := engine.New(engine.Config{
		Shards: 2, QueueDepth: 64, DropWhenFull: true, CrashBudget: 1 << 20,
	}, func() flow.Runner {
		return faultinject.PanicOn([]byte("BOOM"), m.NewRunner())
	}, nil)

	var sent int64
	const bad = 8
	rounds := scaled(40)
	for r := 0; r < rounds; r++ {
		for i := 0; i < 32; i++ {
			payload := "clean attack payload......"
			if i < bad && r == 0 {
				payload = "this one goes BOOM now...."
			}
			seg := pcap.Segment{Key: chaosKey(i), Seq: uint32(r * 26), Flags: pcap.FlagACK, Payload: []byte(payload)}
			if err := e.HandleSegment(seg); err != nil {
				t.Fatal(err)
			}
			sent++
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.ShardPanics != bad || st.PoisonedFlows != bad {
		t.Fatalf("want %d panics quarantining %d flows, got %d/%d", bad, bad, st.ShardPanics, st.PoisonedFlows)
	}
	if st.UnhealthyShards != 0 {
		t.Fatalf("shards went unhealthy under a huge crash budget: %+v", st)
	}
	if st.Matches == 0 {
		t.Fatal("clean flows stopped matching during the panic storm")
	}
	assertIdentity(t, st, sent)
}

// TestMalformedBurst feeds a seeded wire-fault schedule — truncation,
// bit flips, reordering, drops — through the frame-decode entry point.
// The engine must never panic: bad frames are rejected or skipped and
// counted, surviving frames are scanned, and the books balance.
func TestMalformedBurst(t *testing.T) {
	leakcheck.Check(t)
	m := buildMFA(t, "attack")
	e := engine.New(engine.Config{Shards: 2, QueueDepth: 64, DropWhenFull: true},
		func() flow.Runner { return m.NewRunner() }, nil)
	inj := faultinject.New(faultinject.Config{
		Seed: 42, TruncateProb: 0.2, CorruptProb: 0.2, ReorderProb: 0.1, DropProb: 0.1,
	})

	var accepted, rejected int64
	feed := func(frame []byte) {
		if err := e.HandleFrame(frame); err != nil {
			rejected++
		} else {
			accepted++
		}
	}
	frames := scaled(2000)
	for i := 0; i < frames; i++ {
		frame := pcap.EncodeTCP(chaosKey(i%8), uint32(i/8*20), pcap.FlagACK, []byte("burst attack payload"))
		for _, f := range inj.Frame(frame) {
			feed(f)
		}
	}
	for _, f := range inj.Flush() {
		feed(f)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	ist := inj.Stats()
	if ist.Truncated == 0 || ist.Corrupted == 0 || ist.Dropped == 0 {
		t.Fatalf("schedule applied no faults — test is vacuous: %+v", ist)
	}
	st := e.Stats()
	if st.ShardPanics != 0 || st.UnhealthyShards != 0 {
		t.Fatalf("malformed input crashed the engine: %+v", st)
	}
	if st.Matches == 0 {
		t.Fatal("no surviving frame matched; corruption rates ate the whole burst")
	}
	// Accepted frames were dispatched as segments or skipped as non-TCP.
	assertIdentity(t, st, accepted-st.SkippedFrames)
	_ = rejected // rejected frames never reached a shard; nothing to account
}

// TestReloadUnderPressure hot-swaps the pattern generation repeatedly
// while producers hammer the engine: every reload must land (monotonic
// generations), traffic must keep scanning throughout, and the books
// balance at the end.
func TestReloadUnderPressure(t *testing.T) {
	leakcheck.Check(t)
	m1 := buildMFA(t, "aaa")
	m2 := buildMFA(t, "bbb")
	e := engine.New(engine.Config{Shards: 2, QueueDepth: 64, DropWhenFull: true},
		func() flow.Runner { return m1.NewRunner() }, nil)

	var sent atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			payload := []byte("aaa and bbb both here...")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				seg := pcap.Segment{Key: chaosKey(p), Seq: uint32(i * len(payload)), Flags: pcap.FlagACK, Payload: payload}
				switch err := e.HandleSegment(seg); {
				case err == nil:
					sent.Add(1)
				case errors.Is(err, engine.ErrClosed):
					return
				default:
					t.Errorf("HandleSegment: %v", err)
					return
				}
			}
		}(p)
	}

	reloads := scaled(20)
	lastGen := e.Generation()
	for i := 0; i < reloads; i++ {
		m := m1
		if i%2 == 0 {
			m = m2
		}
		gen, err := e.Reload(func() flow.Runner { return m.NewRunner() }, engine.ReloadReset)
		if err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
		if gen <= lastGen {
			t.Fatalf("reload %d: generation went %d -> %d", i, lastGen, gen)
		}
		lastGen = gen
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Matches == 0 {
		t.Fatal("no matches across the reload storm")
	}
	if st.ShardPanics != 0 || st.UnhealthyShards != 0 {
		t.Fatalf("reload storm broke a shard: %+v", st)
	}
	assertIdentity(t, st, sent.Load())
}

// flappingSource is an infinite source that fails its first failBefore
// runs, then serves a burst of leased segments into the engine.
type flappingSource struct {
	name       string
	failBefore int32
	segs       int
	payload    string
	attempts   atomic.Int32
}

func (f *flappingSource) Describe() input.Description {
	return input.Description{Name: f.name, Kind: "mem", Detail: "chaos", Finite: false}
}

func (f *flappingSource) Run(ctx context.Context, em *input.Emitter) error {
	if f.attempts.Add(1) <= f.failBefore {
		return fmt.Errorf("flap %d", f.attempts.Load())
	}
	key := chaosKey(int(f.attempts.Load()))
	for i := 0; i < f.segs; i++ {
		lease := em.Lease(len(f.payload))
		copy(lease.Data(), f.payload)
		seg := pcap.Segment{Key: key, Seq: uint32(i * len(f.payload)), Flags: pcap.FlagACK, Payload: lease.Data()}
		if err := em.Segment(seg, lease); err != nil {
			return err
		}
	}
	return nil
}

// TestFlappingSourceBreaker runs the full pipeline — supervisor, arena,
// engine — with a source that flaps past its restart budget: the
// breaker must open, probe half-open, and re-enter service; the burst
// it finally delivers is scanned end to end.
func TestFlappingSourceBreaker(t *testing.T) {
	leakcheck.Check(t)
	m := buildMFA(t, "attack")
	e := engine.New(engine.Config{Shards: 2, QueueDepth: 64},
		func() flow.Runner { return m.NewRunner() }, nil)
	const payload = "flapping source attack burst...."
	src := &flappingSource{name: "flap", failBefore: 4, segs: scaled(64), payload: payload}
	sup := input.NewSupervisor(input.Config{
		Sink: e, RestartBudget: 2,
		BackoffBase: time.Microsecond, BackoffMax: time.Millisecond,
		BreakerOpenBase: 2 * time.Millisecond, BreakerOpenMax: 8 * time.Millisecond,
	})
	sup.Add(src)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sup.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	row := sup.Stats()[0]
	if row.State != "done" || row.Breaker != "closed" {
		t.Fatalf("source did not re-enter service: %+v", row)
	}
	if row.BreakerOpens == 0 {
		t.Fatalf("breaker never opened — flap schedule too gentle: %+v", row)
	}
	st := e.Stats()
	if want := int64(src.segs * len(payload)); st.PayloadBytes != want {
		t.Fatalf("engine scanned %d payload bytes, want %d", st.PayloadBytes, want)
	}
	if st.Matches == 0 {
		t.Fatal("delivered burst produced no matches")
	}
	if bal := sup.Arena().Stats(); bal.Leases != bal.Releases {
		t.Fatalf("lease imbalance after recovery: %+v", bal)
	}
	assertIdentity(t, st, row.Segments)
}

// burstSource leases hard and fast on one flow — the memory-pressure
// generator for the governor scenario.
type burstSource struct {
	name  string
	segs  int
	lease int
}

func (b *burstSource) Describe() input.Description {
	return input.Description{Name: b.name, Kind: "mem", Detail: "chaos", Finite: true}
}

func (b *burstSource) Run(ctx context.Context, em *input.Emitter) error {
	key := chaosKey(1)
	for i := 0; i < b.segs; i++ {
		lease := em.Lease(b.lease)
		seg := pcap.Segment{Key: key, Seq: uint32(i * b.lease), Flags: pcap.FlagACK, Payload: lease.Data()}
		if err := em.Segment(seg, lease); err != nil {
			return err
		}
	}
	return nil
}

// TestGovernorPlateauUnderStall is the -max-memory acceptance scenario
// end to end: the engine is wedged mid-scan, a source bursts far more
// payload than the ceiling, and the governor must pause leasing at the
// admission gate so total buffered memory plateaus below the limit —
// then everything drains once the stall clears.
func TestGovernorPlateauUnderStall(t *testing.T) {
	leakcheck.Check(t)
	const limit = 256 << 10
	gate := make(chan struct{})
	// Deep queues: with the shard stalled, leased segments pile up in
	// the shard and handoff queues — the queues alone could hold ~1M of
	// leases, so only the governor keeps the plateau under the ceiling.
	e := engine.New(engine.Config{Shards: 1, QueueDepth: 256, SoftWatermark: 1.1, HardWatermark: 1.2},
		func() flow.Runner { return faultinject.Stall(gate, faultinject.Discard) }, nil)
	arena := &input.Arena{}
	gov := guard.NewGovernor(guard.GovernorConfig{Limit: limit, PauseAt: 0.5, Poll: time.Millisecond})
	gov.Register("arena", arena.BytesLeased)
	gov.Register("engine", e.MemoryUsage)

	// 4x the ceiling worth of leases.
	src := &burstSource{name: "burst", segs: scaled(512), lease: 2 << 10}
	sup := input.NewSupervisor(input.Config{Sink: e, Arena: arena, Governor: gov, QueueDepth: 256})
	sup.Add(src)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- sup.Run(ctx) }()

	waitFor(t, "governor pause", func() bool { return gov.Stats().Pauses >= 1 })
	if usage := gov.Usage(); usage > limit {
		t.Fatalf("buffered memory %d exceeded the %d ceiling while paused", usage, limit)
	}

	// Clear the stall; sample the plateau while the burst drains.
	close(gate)
	var maxUsage int64
	for {
		if u := gov.Usage(); u > maxUsage {
			maxUsage = u
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
			if maxUsage > limit {
				t.Fatalf("buffered memory peaked at %d, above the %d ceiling", maxUsage, limit)
			}
			if leased := arena.BytesLeased(); leased != 0 {
				t.Fatalf("arena still holds %d bytes after drain", leased)
			}
			st := e.Stats()
			if st.QueuedBytes != 0 {
				t.Fatalf("engine still accounts %d queued bytes after Close", st.QueuedBytes)
			}
			assertIdentity(t, st, sup.Stats()[0].Segments)
			return
		case <-time.After(time.Millisecond):
		}
	}
}
