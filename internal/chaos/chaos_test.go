//go:build chaos

package chaos

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"matchfilter/internal/core"
	"matchfilter/internal/engine"
	"matchfilter/internal/faultinject"
	"matchfilter/internal/flow"
	"matchfilter/internal/guard"
	"matchfilter/internal/input"
	"matchfilter/internal/leakcheck"
	"matchfilter/internal/pcap"
	"matchfilter/internal/regexparse"
	"matchfilter/internal/tenant"
)

func buildMFA(t testing.TB, sources ...string) *core.MFA {
	t.Helper()
	rules := make([]core.Rule, len(sources))
	for i, src := range sources {
		p, err := regexparse.ParsePCRE(src)
		if err != nil {
			t.Fatal(err)
		}
		rules[i] = core.Rule{Pattern: p, ID: int32(i + 1)}
	}
	m, err := core.Compile(rules, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func chaosKey(n int) pcap.FlowKey {
	return pcap.FlowKey{
		SrcIP:   0x0a000000 | uint32(n+1),
		DstIP:   0xc0a80101,
		SrcPort: uint16(10000 + n),
		DstPort: 80,
	}
}

// waitFor polls cond with a generous wall bound; the individual tests
// assert the tighter timing invariants themselves.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// assertIdentity is the bookkeeping invariant every scenario ends on:
// each successfully dispatched segment is scanned or counted in exactly
// one drop bucket.
func assertIdentity(t *testing.T, st engine.Stats, sent int64) {
	t.Helper()
	accounted := st.Packets + st.QueueDrops + st.HardDrops +
		st.PoisonedDrops + st.UnhealthyDrops + st.WedgeDrops
	if accounted != sent {
		t.Fatalf("accounting identity broken: sent %d, accounted %d (%+v)", sent, accounted, st)
	}
}

func scaled(n int) int {
	if testing.Short() {
		return n / 4
	}
	return n
}

// TestStallStorm drives several flows into mid-scan stalls under
// background load: the watchdog must detect each stuck scan within its
// deadline, sibling traffic must keep flowing, and once the stalls
// clear the offending flows are quarantined, the engine returns to
// healthy, and the books balance.
func TestStallStorm(t *testing.T) {
	leakcheck.Check(t)
	m := buildMFA(t, "attack")
	gate := make(chan struct{})
	const deadline = 10 * time.Millisecond
	e := engine.New(engine.Config{
		Shards: 4, QueueDepth: 64, DropWhenFull: true,
		StallDeadline: deadline, WedgeAfter: time.Hour,
	}, func() flow.Runner {
		return faultinject.StallOn([]byte("LOCKUP"), gate, m.NewRunner())
	}, nil)

	var sent atomic.Int64
	send := func(key pcap.FlowKey, seq uint32, payload string) {
		err := e.HandleSegment(pcap.Segment{Key: key, Seq: seq, Flags: pcap.FlagACK, Payload: []byte(payload)})
		if err == nil {
			sent.Add(1)
		} else if !errors.Is(err, engine.ErrClosed) {
			t.Errorf("HandleSegment: %v", err)
		}
	}

	// Background load on clean flows, poison pills on four others.
	bg := scaled(1600)
	for i := 0; i < 4; i++ {
		send(chaosKey(100+i), 0, "about to LOCKUP hard")
	}
	detect := time.Now()
	for i := 0; i < bg; i++ {
		send(chaosKey(i%16), uint32(i/16*24), "background attack data....")
	}

	waitFor(t, "watchdog fire", func() bool { return e.Stats().StallFires >= 1 })
	if took := time.Since(detect); took > 40*deadline {
		t.Fatalf("watchdog took %v to fire with a %v deadline", took, deadline)
	}
	st := e.Stats()
	if st.StallsRecovered != 0 {
		t.Fatalf("stall recovered while still stuck: %+v", st)
	}

	close(gate)
	waitFor(t, "stall recovery", func() bool {
		st := e.Stats()
		return st.StallsRecovered >= 1 && st.QueuedBytes == 0
	})
	// Recovered: fresh traffic on a clean flow still scans. Stats
	// snapshots publish every 64 segments per shard, so send a full
	// batch to observe the progress.
	before := e.Stats().Packets
	for i := 0; i < 256; i++ {
		send(chaosKey(77+i%4), uint32(i/4*20), "post-recovery attack")
	}
	waitFor(t, "post-recovery scan", func() bool { return e.Stats().Packets > before })

	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if st.UnhealthyShards != 0 || st.WedgedShards != 0 || st.ShardPanics != 0 {
		t.Fatalf("did not recover to healthy: %+v", st)
	}
	if st.PoisonedFlows < 1 || st.PoisonedFlows != st.StallsRecovered {
		t.Fatalf("stalled flows not quarantined 1:1 with recoveries: %+v", st)
	}
	assertIdentity(t, st, sent.Load())
}

// TestPanicStorm hits the crash-recovery path from many flows at once:
// every panicking flow is quarantined exactly once, clean flows keep
// matching, shards stay healthy under the budget, and the books
// balance.
func TestPanicStorm(t *testing.T) {
	leakcheck.Check(t)
	m := buildMFA(t, "attack")
	e := engine.New(engine.Config{
		Shards: 2, QueueDepth: 64, DropWhenFull: true, CrashBudget: 1 << 20,
	}, func() flow.Runner {
		return faultinject.PanicOn([]byte("BOOM"), m.NewRunner())
	}, nil)

	var sent int64
	const bad = 8
	rounds := scaled(40)
	for r := 0; r < rounds; r++ {
		for i := 0; i < 32; i++ {
			payload := "clean attack payload......"
			if i < bad && r == 0 {
				payload = "this one goes BOOM now...."
			}
			seg := pcap.Segment{Key: chaosKey(i), Seq: uint32(r * 26), Flags: pcap.FlagACK, Payload: []byte(payload)}
			if err := e.HandleSegment(seg); err != nil {
				t.Fatal(err)
			}
			sent++
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.ShardPanics != bad || st.PoisonedFlows != bad {
		t.Fatalf("want %d panics quarantining %d flows, got %d/%d", bad, bad, st.ShardPanics, st.PoisonedFlows)
	}
	if st.UnhealthyShards != 0 {
		t.Fatalf("shards went unhealthy under a huge crash budget: %+v", st)
	}
	if st.Matches == 0 {
		t.Fatal("clean flows stopped matching during the panic storm")
	}
	assertIdentity(t, st, sent)
}

// TestMalformedBurst feeds a seeded wire-fault schedule — truncation,
// bit flips, reordering, drops — through the frame-decode entry point.
// The engine must never panic: bad frames are rejected or skipped and
// counted, surviving frames are scanned, and the books balance.
func TestMalformedBurst(t *testing.T) {
	leakcheck.Check(t)
	m := buildMFA(t, "attack")
	e := engine.New(engine.Config{Shards: 2, QueueDepth: 64, DropWhenFull: true},
		func() flow.Runner { return m.NewRunner() }, nil)
	inj := faultinject.New(faultinject.Config{
		Seed: 42, TruncateProb: 0.2, CorruptProb: 0.2, ReorderProb: 0.1, DropProb: 0.1,
	})

	var accepted, rejected int64
	feed := func(frame []byte) {
		if err := e.HandleFrame(frame); err != nil {
			rejected++
		} else {
			accepted++
		}
	}
	frames := scaled(2000)
	for i := 0; i < frames; i++ {
		frame := pcap.EncodeTCP(chaosKey(i%8), uint32(i/8*20), pcap.FlagACK, []byte("burst attack payload"))
		for _, f := range inj.Frame(frame) {
			feed(f)
		}
	}
	for _, f := range inj.Flush() {
		feed(f)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	ist := inj.Stats()
	if ist.Truncated == 0 || ist.Corrupted == 0 || ist.Dropped == 0 {
		t.Fatalf("schedule applied no faults — test is vacuous: %+v", ist)
	}
	st := e.Stats()
	if st.ShardPanics != 0 || st.UnhealthyShards != 0 {
		t.Fatalf("malformed input crashed the engine: %+v", st)
	}
	if st.Matches == 0 {
		t.Fatal("no surviving frame matched; corruption rates ate the whole burst")
	}
	// Accepted frames were dispatched as segments or skipped as non-TCP.
	assertIdentity(t, st, accepted-st.SkippedFrames)
	_ = rejected // rejected frames never reached a shard; nothing to account
}

// TestReloadUnderPressure hot-swaps the pattern generation repeatedly
// while producers hammer the engine: every reload must land (monotonic
// generations), traffic must keep scanning throughout, and the books
// balance at the end.
func TestReloadUnderPressure(t *testing.T) {
	leakcheck.Check(t)
	m1 := buildMFA(t, "aaa")
	m2 := buildMFA(t, "bbb")
	e := engine.New(engine.Config{Shards: 2, QueueDepth: 64, DropWhenFull: true},
		func() flow.Runner { return m1.NewRunner() }, nil)

	var sent atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			payload := []byte("aaa and bbb both here...")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				seg := pcap.Segment{Key: chaosKey(p), Seq: uint32(i * len(payload)), Flags: pcap.FlagACK, Payload: payload}
				switch err := e.HandleSegment(seg); {
				case err == nil:
					sent.Add(1)
				case errors.Is(err, engine.ErrClosed):
					return
				default:
					t.Errorf("HandleSegment: %v", err)
					return
				}
			}
		}(p)
	}

	reloads := scaled(20)
	lastGen := e.Generation()
	for i := 0; i < reloads; i++ {
		m := m1
		if i%2 == 0 {
			m = m2
		}
		gen, err := e.Reload(func() flow.Runner { return m.NewRunner() }, engine.ReloadReset)
		if err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
		if gen <= lastGen {
			t.Fatalf("reload %d: generation went %d -> %d", i, lastGen, gen)
		}
		lastGen = gen
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Matches == 0 {
		t.Fatal("no matches across the reload storm")
	}
	if st.ShardPanics != 0 || st.UnhealthyShards != 0 {
		t.Fatalf("reload storm broke a shard: %+v", st)
	}
	assertIdentity(t, st, sent.Load())
}

// flappingSource is an infinite source that fails its first failBefore
// runs, then serves a burst of leased segments into the engine.
type flappingSource struct {
	name       string
	failBefore int32
	segs       int
	payload    string
	attempts   atomic.Int32
}

func (f *flappingSource) Describe() input.Description {
	return input.Description{Name: f.name, Kind: "mem", Detail: "chaos", Finite: false}
}

func (f *flappingSource) Run(ctx context.Context, em *input.Emitter) error {
	if f.attempts.Add(1) <= f.failBefore {
		return fmt.Errorf("flap %d", f.attempts.Load())
	}
	key := chaosKey(int(f.attempts.Load()))
	for i := 0; i < f.segs; i++ {
		lease := em.Lease(len(f.payload))
		copy(lease.Data(), f.payload)
		seg := pcap.Segment{Key: key, Seq: uint32(i * len(f.payload)), Flags: pcap.FlagACK, Payload: lease.Data()}
		if err := em.Segment(seg, lease); err != nil {
			return err
		}
	}
	return nil
}

// TestFlappingSourceBreaker runs the full pipeline — supervisor, arena,
// engine — with a source that flaps past its restart budget: the
// breaker must open, probe half-open, and re-enter service; the burst
// it finally delivers is scanned end to end.
func TestFlappingSourceBreaker(t *testing.T) {
	leakcheck.Check(t)
	m := buildMFA(t, "attack")
	e := engine.New(engine.Config{Shards: 2, QueueDepth: 64},
		func() flow.Runner { return m.NewRunner() }, nil)
	const payload = "flapping source attack burst...."
	src := &flappingSource{name: "flap", failBefore: 4, segs: scaled(64), payload: payload}
	sup := input.NewSupervisor(input.Config{
		Sink: e, RestartBudget: 2,
		BackoffBase: time.Microsecond, BackoffMax: time.Millisecond,
		BreakerOpenBase: 2 * time.Millisecond, BreakerOpenMax: 8 * time.Millisecond,
	})
	sup.Add(src)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sup.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	row := sup.Stats()[0]
	if row.State != "done" || row.Breaker != "closed" {
		t.Fatalf("source did not re-enter service: %+v", row)
	}
	if row.BreakerOpens == 0 {
		t.Fatalf("breaker never opened — flap schedule too gentle: %+v", row)
	}
	st := e.Stats()
	if want := int64(src.segs * len(payload)); st.PayloadBytes != want {
		t.Fatalf("engine scanned %d payload bytes, want %d", st.PayloadBytes, want)
	}
	if st.Matches == 0 {
		t.Fatal("delivered burst produced no matches")
	}
	if bal := sup.Arena().Stats(); bal.Leases != bal.Releases {
		t.Fatalf("lease imbalance after recovery: %+v", bal)
	}
	assertIdentity(t, st, row.Segments)
}

// burstSource leases hard and fast on one flow — the memory-pressure
// generator for the governor scenario.
type burstSource struct {
	name  string
	segs  int
	lease int
}

func (b *burstSource) Describe() input.Description {
	return input.Description{Name: b.name, Kind: "mem", Detail: "chaos", Finite: true}
}

func (b *burstSource) Run(ctx context.Context, em *input.Emitter) error {
	key := chaosKey(1)
	for i := 0; i < b.segs; i++ {
		lease := em.Lease(b.lease)
		seg := pcap.Segment{Key: key, Seq: uint32(i * b.lease), Flags: pcap.FlagACK, Payload: lease.Data()}
		if err := em.Segment(seg, lease); err != nil {
			return err
		}
	}
	return nil
}

// TestGovernorPlateauUnderStall is the -max-memory acceptance scenario
// end to end: the engine is wedged mid-scan, a source bursts far more
// payload than the ceiling, and the governor must pause leasing at the
// admission gate so total buffered memory plateaus below the limit —
// then everything drains once the stall clears.
func TestGovernorPlateauUnderStall(t *testing.T) {
	leakcheck.Check(t)
	const limit = 256 << 10
	gate := make(chan struct{})
	// Deep queues: with the shard stalled, leased segments pile up in
	// the shard and handoff queues — the queues alone could hold ~1M of
	// leases, so only the governor keeps the plateau under the ceiling.
	e := engine.New(engine.Config{Shards: 1, QueueDepth: 256, SoftWatermark: 1.1, HardWatermark: 1.2},
		func() flow.Runner { return faultinject.Stall(gate, faultinject.Discard) }, nil)
	arena := &input.Arena{}
	gov := guard.NewGovernor(guard.GovernorConfig{Limit: limit, PauseAt: 0.5, Poll: time.Millisecond})
	gov.Register("arena", arena.BytesLeased)
	gov.Register("engine", e.MemoryUsage)

	// 4x the ceiling worth of leases.
	src := &burstSource{name: "burst", segs: scaled(512), lease: 2 << 10}
	sup := input.NewSupervisor(input.Config{Sink: e, Arena: arena, Governor: gov, QueueDepth: 256})
	sup.Add(src)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- sup.Run(ctx) }()

	waitFor(t, "governor pause", func() bool { return gov.Stats().Pauses >= 1 })
	if usage := gov.Usage(); usage > limit {
		t.Fatalf("buffered memory %d exceeded the %d ceiling while paused", usage, limit)
	}

	// Clear the stall; sample the plateau while the burst drains.
	close(gate)
	var maxUsage int64
	for {
		if u := gov.Usage(); u > maxUsage {
			maxUsage = u
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
			if maxUsage > limit {
				t.Fatalf("buffered memory peaked at %d, above the %d ceiling", maxUsage, limit)
			}
			if leased := arena.BytesLeased(); leased != 0 {
				t.Fatalf("arena still holds %d bytes after drain", leased)
			}
			st := e.Stats()
			if st.QueuedBytes != 0 {
				t.Fatalf("engine still accounts %d queued bytes after Close", st.QueuedBytes)
			}
			assertIdentity(t, st, sup.Stats()[0].Segments)
			return
		case <-time.After(time.Millisecond):
		}
	}
}

// TestNoisyTenantIsolation is the multi-tenant blast-radius scenario:
// one tenant floods far past its flow and byte quotas while a quiet
// tenant's deterministic stream rides the same shards. The quiet
// tenant's match stream must be exactly what a single-tenant daemon
// produces for the same schedule, the noisy tenant's overrun must be
// shed under its own label, global service must stay at tier 0, and
// the books — now including the tenant drop buckets — must balance.
func TestNoisyTenantIsolation(t *testing.T) {
	leakcheck.Check(t)
	def := buildMFA(t, "attack")
	noisyM := buildMFA(t, "flood")
	quietM := buildMFA(t, "attack")

	// The quiet schedule is fixed up front so a reference single-tenant
	// engine can establish the expected match stream.
	type quietSeg struct {
		flowN   int
		seq     uint32
		payload string
	}
	quietFlows := 8
	segsPerFlow := scaled(200)
	var schedule []quietSeg
	for i := 0; i < segsPerFlow; i++ {
		for f := 0; f < quietFlows; f++ {
			schedule = append(schedule, quietSeg{
				flowN:   f,
				seq:     uint32(i * 26),
				payload: "quiet attack continues....",
			})
		}
	}

	type matchRec struct {
		flowN int
		id    int32
		pos   int64
	}
	collect := func(ms []engine.Match, ten uint32) map[pcap.FlowKey][]matchRec {
		out := make(map[pcap.FlowKey][]matchRec)
		for _, m := range ms {
			if m.Flow.Tenant != ten {
				continue
			}
			k := m.Flow
			k.Tenant = 0
			out[k] = append(out[k], matchRec{id: m.ID, pos: m.Pos})
		}
		return out
	}

	// Reference: the quiet schedule alone on a single-tenant daemon.
	var refMu sync.Mutex
	var ref []engine.Match
	refE := engine.New(engine.Config{Shards: 4}, func() flow.Runner { return quietM.NewRunner() },
		func(m engine.Match) { refMu.Lock(); ref = append(ref, m); refMu.Unlock() })
	for _, qs := range schedule {
		seg := pcap.Segment{Key: chaosKey(500 + qs.flowN), Seq: qs.seq, Flags: pcap.FlagACK, Payload: []byte(qs.payload)}
		if err := refE.HandleSegment(seg); err != nil {
			t.Fatal(err)
		}
	}
	if err := refE.Close(); err != nil {
		t.Fatal(err)
	}
	if len(ref) == 0 {
		t.Fatal("reference schedule produced no matches; test would be vacuous")
	}

	// The daemon under chaos: quiet and noisy tenants on one engine.
	var mu sync.Mutex
	var got []engine.Match
	treg := tenant.NewRegistry(tenant.Config{})
	e := engine.New(engine.Config{Shards: 4, QueueDepth: 1024, Tenants: treg},
		func() flow.Runner { return def.NewRunner() },
		func(m engine.Match) { mu.Lock(); got = append(got, m); mu.Unlock() })
	treg.Bind(e)
	quiet, _, err := treg.Put("quiet", tenant.PutSpec{NewRunner: func() flow.Runner { return quietM.NewRunner() }})
	if err != nil {
		t.Fatal(err)
	}
	noisy, _, err := treg.Put("noisy", tenant.PutSpec{
		NewRunner: func() flow.Runner { return noisyM.NewRunner() },
		Quota:     tenant.Quota{MaxFlows: 8, MaxBufferedBytes: 4 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}

	var sent atomic.Int64
	send := func(key pcap.FlowKey, seq uint32, payload string) {
		if err := e.HandleSegment(pcap.Segment{Key: key, Seq: seq, Flags: pcap.FlagACK, Payload: []byte(payload)}); err != nil {
			t.Errorf("HandleSegment: %v", err)
			return
		}
		sent.Add(1)
	}

	// Seed the noisy tenant's full flow quota first so the flood below
	// deterministically targets admitted flows.
	for f := 0; f < 8; f++ {
		key := chaosKey(f)
		key.Tenant = noisy.Index()
		send(key, 0, "flood seed.")
	}
	// Dispatch is asynchronous; wait until the shards have admitted all
	// eight before the churn competes for the quota.
	waitFor(t, "noisy quota seeded", func() bool { return noisy.Stats().LiveFlows == 8 })

	// Noisy producers hammer concurrently: a flow churn far past the
	// 8-flow quota, plus a gapper spraying unique out-of-order segments
	// at the admitted flows to overrun the byte quota.
	var wg sync.WaitGroup
	noisySegs := scaled(4000)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < noisySegs; i++ {
			key := chaosKey(8 + i%512)
			key.Tenant = noisy.Index()
			send(key, uint32(i/512*26), "flood flood flood flood...")
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		gap := make([]byte, 256)
		copy(gap, "gapped flood payload")
		for j := 0; j < scaled(400); j++ {
			key := chaosKey(j % 8)
			key.Tenant = noisy.Index()
			if err := e.HandleSegment(pcap.Segment{Key: key, Seq: uint32(1<<20 + j*256), Flags: pcap.FlagACK, Payload: gap}); err != nil {
				t.Errorf("HandleSegment: %v", err)
				return
			}
			sent.Add(1)
		}
	}()
	// The quiet schedule interleaves with the flood.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, qs := range schedule {
			key := chaosKey(500 + qs.flowN)
			key.Tenant = quiet.Index()
			send(key, qs.seq, qs.payload)
		}
	}()
	wg.Wait()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// The quiet tenant's stream is byte-identical to the reference
	// daemon's: same flows, same (id, pos) sequence per flow.
	want, have := collect(ref, 0), collect(got, quiet.Index())
	if len(want) != len(have) {
		t.Fatalf("quiet tenant matched on %d flows, reference on %d", len(have), len(want))
	}
	for k, w := range want {
		h := have[k]
		if len(h) != len(w) {
			t.Fatalf("quiet flow %v: %d matches, reference %d", k, len(h), len(w))
		}
		for i := range w {
			if h[i] != w[i] {
				t.Fatalf("quiet flow %v diverges at %d: %+v vs %+v", k, i, h[i], w[i])
			}
		}
	}

	nst, qst := noisy.Stats(), quiet.Stats()
	if nst.FlowQuotaDrops == 0 || nst.ByteQuotaDrops == 0 {
		t.Fatalf("flood did not overrun both quotas — scenario too gentle: %+v", nst)
	}
	if qst.FlowQuotaDrops != 0 || qst.ByteQuotaDrops != 0 {
		t.Fatalf("quiet tenant took quota drops: %+v", qst)
	}
	if nst.LiveFlows > 8 {
		t.Fatalf("noisy tenant holds %d flows past its quota of 8", nst.LiveFlows)
	}
	st := e.Stats()
	if st.Tier != engine.TierNormal {
		t.Fatalf("noisy tenant degraded global service to tier %v", st.Tier)
	}
	if st.ShardPanics != 0 || st.UnhealthyShards != 0 || st.WedgedShards != 0 {
		t.Fatalf("tenant flood broke a shard: %+v", st)
	}
	if st.TenantDrops != nst.FlowQuotaDrops+nst.ByteQuotaDrops {
		t.Fatalf("engine tenant-drop bucket %d does not mirror the noisy tenant's %d+%d quota drops",
			st.TenantDrops, nst.FlowQuotaDrops, nst.ByteQuotaDrops)
	}
	// Books balance with the tenant buckets in: every dispatched segment
	// was scanned or counted in exactly one drop bucket. (Flow-quota
	// refusals are inside Packets; unknown-tenant dispatch drops are
	// their own bucket and must be zero here — both tenants stayed
	// published throughout.)
	if st.UnknownTenantDrops != 0 {
		t.Fatalf("published tenants took unknown-tenant drops: %+v", st)
	}
	assertIdentity(t, st, sent.Load())
}
