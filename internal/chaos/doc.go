// Package chaos is the standing chaos harness: a build-tagged test
// suite that composes the deterministic faults of internal/faultinject
// with the recovery machinery grown across the serving stack — stall
// watchdog, flow quarantine, crash budgets, source circuit breakers,
// the memory governor, hot reload — and asserts the global invariants
// hold while everything misbehaves at once:
//
//   - Accounting identity: every segment handed to the engine is
//     scanned or counted in exactly one drop bucket.
//   - Liveness: the watchdog detects a stuck scan within its deadline,
//     the stalled flow is quarantined, and sibling shards keep serving.
//   - Recovery: flapping sources re-enter service through half-open
//     probing, wedged shards return to healthy, and a memory burst
//     plateaus below -max-memory instead of growing without bound.
//   - Hygiene: no goroutine leaks (internal/leakcheck) and no data
//     races (the suite is meant to run under -race).
//
// The suite lives behind a build tag so ordinary `go test ./...` stays
// fast; run it with:
//
//	go test -tags chaos -race ./internal/chaos
//
// CI runs the same invocation with -short as the chaos-smoke job.
package chaos
