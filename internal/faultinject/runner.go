// Matcher-fault wrappers: flow.Runner decorators that fail on demand.
// They stand in for the two real-world shard killers — a matcher bug
// tripped by hostile bytes (panic) and a matcher wedged in user code
// (stall) — with deterministic triggers so tests can aim a fault at one
// specific flow and assert the blast radius stops there.
package faultinject

import (
	"bytes"
	"fmt"

	"matchfilter/internal/flow"
)

// PanicOn wraps inner so that Feed panics when token appears in the
// flow's byte stream, including when the token straddles a segment
// boundary. Feeding the poisoned bytes to the wrapper panics before
// inner sees them — the shard supervisor is expected to quarantine the
// flow. A nil or empty token never fires.
func PanicOn(token []byte, inner flow.Runner) flow.Runner {
	return &panicOnRunner{token: token, inner: inner}
}

type panicOnRunner struct {
	token []byte
	inner flow.Runner
	// tail holds the last len(token)-1 bytes seen, for straddle checks.
	tail []byte
}

func (r *panicOnRunner) Feed(data []byte, onMatch func(int32, int64)) {
	if len(r.token) > 0 {
		joined := data
		if len(r.tail) > 0 {
			joined = append(append([]byte{}, r.tail...), data...)
		}
		if bytes.Contains(joined, r.token) {
			panic(fmt.Sprintf("faultinject: poison token %q", r.token))
		}
		keep := len(r.token) - 1
		if len(joined) < keep {
			keep = len(joined)
		}
		r.tail = append(r.tail[:0], joined[len(joined)-keep:]...)
	}
	r.inner.Feed(data, onMatch)
}

func (r *panicOnRunner) Reset() {
	r.tail = r.tail[:0]
	r.inner.Reset()
}

// PanicAfter wraps inner so that the nth Feed call on this runner (1-based)
// panics before delivering its data: "forced shard panic at the Nth
// segment". The counter survives Reset so pooled reuse cannot disarm a
// pending fault; n <= 0 never fires.
func PanicAfter(n int, inner flow.Runner) flow.Runner {
	return &panicAfterRunner{n: n, inner: inner}
}

type panicAfterRunner struct {
	n     int
	feeds int
	inner flow.Runner
}

func (r *panicAfterRunner) Feed(data []byte, onMatch func(int32, int64)) {
	r.feeds++
	if r.n > 0 && r.feeds == r.n {
		panic(fmt.Sprintf("faultinject: forced panic at feed %d", r.feeds))
	}
	r.inner.Feed(data, onMatch)
}

func (r *panicAfterRunner) Reset() { r.inner.Reset() }

// Stall wraps inner so every Feed first blocks until gate is closed (or
// receives). Tests use it to wedge a shard — filling its queue for
// queue-full pulses and deadline-shutdown scenarios — then release it by
// closing the gate.
func Stall(gate <-chan struct{}, inner flow.Runner) flow.Runner {
	return &stallRunner{gate: gate, inner: inner}
}

type stallRunner struct {
	gate  <-chan struct{}
	inner flow.Runner
}

func (r *stallRunner) Feed(data []byte, onMatch func(int32, int64)) {
	<-r.gate
	r.inner.Feed(data, onMatch)
}

func (r *stallRunner) Reset() { r.inner.Reset() }

// StallOn wraps inner so Feed blocks on gate only when token appears in
// the flow's byte stream (straddle-aware, like PanicOn): the one flow
// carrying the token wedges its shard mid-scan while every other flow —
// and every other shard — keeps moving. This is the targeted trigger
// for stall-watchdog scenarios; the untargeted Stall wedges every
// runner it decorates. A nil or empty token never fires.
func StallOn(token []byte, gate <-chan struct{}, inner flow.Runner) flow.Runner {
	return &stallOnRunner{token: token, gate: gate, inner: inner}
}

type stallOnRunner struct {
	token []byte
	gate  <-chan struct{}
	inner flow.Runner
	tail  []byte
}

func (r *stallOnRunner) Feed(data []byte, onMatch func(int32, int64)) {
	if len(r.token) > 0 {
		joined := data
		if len(r.tail) > 0 {
			joined = append(append([]byte{}, r.tail...), data...)
		}
		hit := bytes.Contains(joined, r.token)
		keep := len(r.token) - 1
		if len(joined) < keep {
			keep = len(joined)
		}
		r.tail = append(r.tail[:0], joined[len(joined)-keep:]...)
		if hit {
			<-r.gate
		}
	}
	r.inner.Feed(data, onMatch)
}

func (r *stallOnRunner) Reset() {
	r.tail = r.tail[:0]
	r.inner.Reset()
}

// Discard is a no-op Runner, the innermost layer when a test only needs
// the fault behaviour.
var Discard flow.Runner = discardRunner{}

type discardRunner struct{}

func (discardRunner) Feed([]byte, func(int32, int64)) {}
func (discardRunner) Reset()                          {}
