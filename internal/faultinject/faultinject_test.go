package faultinject

import (
	"bytes"
	"fmt"
	"testing"
)

// TestInjectorDeterminism: equal seeds and inputs give byte-identical
// outputs and identical stats — the property that lets a failing fuzz or
// soak run replay exactly.
func TestInjectorDeterminism(t *testing.T) {
	mkFrames := func() [][]byte {
		frames := make([][]byte, 64)
		for i := range frames {
			frames[i] = bytes.Repeat([]byte{byte(i)}, 20+i)
		}
		return frames
	}
	run := func() ([][]byte, Stats) {
		in := New(Config{Seed: 7, TruncateProb: 0.2, CorruptProb: 0.2, ReorderProb: 0.2, DropProb: 0.1})
		var out [][]byte
		for _, f := range mkFrames() {
			out = append(out, in.Frame(f)...)
		}
		out = append(out, in.Flush()...)
		return out, in.Stats()
	}
	a, sa := run()
	b, sb := run()
	if sa != sb {
		t.Fatalf("stats diverge: %+v vs %+v", sa, sb)
	}
	if len(a) != len(b) {
		t.Fatalf("output length diverges: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("frame %d diverges", i)
		}
	}
	if sa.Truncated == 0 || sa.Corrupted == 0 || sa.Reordered == 0 || sa.Dropped == 0 {
		t.Errorf("schedule applied no faults of some kind: %+v", sa)
	}
	if sa.Frames != 64 {
		t.Errorf("Frames = %d, want 64", sa.Frames)
	}
}

// TestInjectorConservation: without drops and after Flush, every frame
// comes out exactly once (reordering permutes, never loses).
func TestInjectorConservation(t *testing.T) {
	in := New(Config{Seed: 3, ReorderProb: 0.5})
	var out [][]byte
	const total = 100
	for i := 0; i < total; i++ {
		out = append(out, in.Frame([]byte{byte(i)})...)
	}
	out = append(out, in.Flush()...)
	if len(out) != total {
		t.Fatalf("got %d frames out, want %d", len(out), total)
	}
	seen := make(map[byte]bool)
	for _, f := range out {
		if seen[f[0]] {
			t.Fatalf("frame %d emitted twice", f[0])
		}
		seen[f[0]] = true
	}
}

// TestInjectorCorruptionCopies: corruption must not scribble on the
// caller's buffer (captures may reuse or alias frame storage).
func TestInjectorCorruptionCopies(t *testing.T) {
	in := New(Config{Seed: 1, CorruptProb: 1})
	orig := bytes.Repeat([]byte{0xAA}, 32)
	frame := append([]byte{}, orig...)
	out := in.Frame(frame)
	if !bytes.Equal(frame, orig) {
		t.Fatal("injector mutated the caller's buffer")
	}
	if len(out) != 1 || bytes.Equal(out[0], orig) {
		t.Fatal("corruption did not apply to the emitted frame")
	}
}

// TestPanicOnStraddle: the poison token fires even when split across
// Feed boundaries, and a clean stream never fires.
func TestPanicOnStraddle(t *testing.T) {
	mustPanic := func(t *testing.T, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		fn()
	}
	r := PanicOn([]byte("BOOM"), Discard)
	r.Feed([]byte("harmless"), nil)
	r.Feed([]byte("still harmless BO"), nil)
	mustPanic(t, func() { r.Feed([]byte("OM lands here"), nil) })

	clean := PanicOn([]byte("BOOM"), Discard)
	for i := 0; i < 100; i++ {
		clean.Feed([]byte(fmt.Sprintf("chunk %d BO OM", i)), nil)
	}
}

// TestPanicAfter: fires on exactly the nth feed, and Reset does not
// disarm it.
func TestPanicAfter(t *testing.T) {
	r := PanicAfter(3, Discard)
	r.Feed([]byte("a"), nil)
	r.Reset()
	r.Feed([]byte("b"), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on feed 3")
		}
	}()
	r.Feed([]byte("c"), nil)
}
