// Package faultinject provides deterministic, seedable fault schedules
// for exercising the serving stack's recovery machinery. Every recovery
// path in internal/engine and internal/flow — flow quarantine, crash
// budgets, degradation tiers, malformed-capture skipping — is tested by
// injecting the corresponding fault here rather than trusted to work.
//
// Two families of faults:
//
//   - Wire faults (Injector): truncation, corruption, and reordering of
//     raw capture frames, driven by a seeded PRNG so a failing schedule
//     replays exactly from its seed.
//   - Matcher faults (runner.go): flow.Runner wrappers that panic on a
//     trigger token or after a segment count, or stall on a gate —
//     forcing shard panics and queue-full pulses on demand.
package faultinject

import (
	"math/rand"
)

// Config is a wire-fault schedule. Probabilities are per frame and
// independent; zero values disable that fault.
type Config struct {
	// Seed makes the schedule deterministic: equal seeds and equal frame
	// sequences produce byte-identical fault decisions.
	Seed int64
	// TruncateProb truncates the frame to a random strict prefix
	// (possibly empty).
	TruncateProb float64
	// CorruptProb flips a random bit in a random byte.
	CorruptProb float64
	// ReorderProb holds the frame back and emits it after its successor.
	// At most one frame is held at a time; a held frame is never held
	// again.
	ReorderProb float64
	// DropProb discards the frame entirely.
	DropProb float64
}

// Stats counts the faults an Injector actually applied.
type Stats struct {
	Frames    int64 // frames offered to the injector
	Truncated int64
	Corrupted int64
	Reordered int64
	Dropped   int64
}

// Injector applies a Config's schedule to a frame sequence.
type Injector struct {
	cfg  Config
	rng  *rand.Rand
	held [][]byte
	st   Stats
}

// New returns an injector for the given schedule.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats reports the faults applied so far.
func (in *Injector) Stats() Stats { return in.st }

// Frame runs one frame through the schedule and returns the frames to
// emit in its place: usually one, zero when dropped or held for
// reordering, two when a held frame is released behind this one. The
// returned slices alias or copy the input as needed; callers may emit
// them directly.
func (in *Injector) Frame(frame []byte) [][]byte {
	in.st.Frames++
	if in.cfg.DropProb > 0 && in.rng.Float64() < in.cfg.DropProb {
		in.st.Dropped++
		return in.flush(nil)
	}
	if in.cfg.TruncateProb > 0 && in.rng.Float64() < in.cfg.TruncateProb && len(frame) > 0 {
		in.st.Truncated++
		frame = frame[:in.rng.Intn(len(frame))]
	}
	if in.cfg.CorruptProb > 0 && in.rng.Float64() < in.cfg.CorruptProb && len(frame) > 0 {
		in.st.Corrupted++
		mut := make([]byte, len(frame))
		copy(mut, frame)
		mut[in.rng.Intn(len(mut))] ^= 1 << uint(in.rng.Intn(8))
		frame = mut
	}
	if in.cfg.ReorderProb > 0 && len(in.held) == 0 && in.rng.Float64() < in.cfg.ReorderProb {
		in.st.Reordered++
		in.held = [][]byte{frame}
		return nil
	}
	return in.flush(frame)
}

// Flush releases any held frame; call it after the last input frame so a
// reorder at the tail is not silently dropped.
func (in *Injector) Flush() [][]byte {
	out := in.held
	in.held = nil
	return out
}

func (in *Injector) flush(frame []byte) [][]byte {
	if frame == nil {
		return in.Flush()
	}
	out := append([][]byte{frame}, in.held...)
	in.held = nil
	return out
}
