// Package tenant maps tenant ids to independent rule-set images served
// by one daemon. This is the production payoff of the paper's central
// size claim: decomposed MFA images are small enough to hold *many*
// pattern sets in memory at once, so one engine fleet can serve many
// isolated user populations where per-tenant DFA fleets would hit the
// memory wall.
//
// The package generalizes the single-rule-set generation machinery
// (internal/engine reload.go, internal/flow generation.go) to
// (tenant, generation) pairs:
//
//   - A Tenant owns a monotonic generation counter; every rule-set swap
//     for that tenant mints the next (tenant, generation) pair and swaps
//     only that tenant's flows, through exactly the same per-shard
//     command path as a whole-daemon reload — per-tenant hot reload
//     with the SelfCheck gate falls out rather than being rebuilt.
//   - Flows carry the tenant index in their pcap.FlowKey, assigned at
//     ingest (per-source binding or the CIDR classifier here), so flow
//     identity, shard affinity and flow-table isolation are all
//     per-tenant for free.
//   - Quotas (max flows, max buffered reassembly bytes) live in a
//     flow.TenantAcct shared by every shard, so they bound the tenant's
//     *global* footprint; each tenant's buffered bytes register as a
//     named component of the guard.Governor, and quota overruns shed
//     only that tenant's traffic — a noisy tenant degrades alone.
//
// The Registry is the one writer (admin CRUD, boot-time preload); the
// engine's dispatch path reads it lock-free via an atomic index table.
package tenant

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"matchfilter/internal/flow"
	"matchfilter/internal/guard"
	"matchfilter/internal/telemetry"
)

// ErrUnknown marks operations on a tenant id that is not registered.
var ErrUnknown = errors.New("tenant: unknown tenant")

// Quota bounds one tenant's resource usage. Zero fields mean unlimited.
type Quota struct {
	// MaxFlows caps the tenant's live flows across all shards; segments
	// that would create a flow beyond it are dropped (counted under the
	// tenant's label).
	MaxFlows int64 `json:"max_flows,omitempty"`
	// MaxBufferedBytes caps the tenant's out-of-order reassembly bytes
	// across all shards.
	MaxBufferedBytes int64 `json:"max_buffered_bytes,omitempty"`
}

// Tenant is one registered rule-set serving identity. Instances are
// immutable where the dispatch hot path reads them (id, index, telemetry
// block); mutable serving state (generation, quota, sources) is atomic.
type Tenant struct {
	id  string
	idx uint32
	gen atomic.Uint64 // last assigned per-tenant generation

	// The telemetry block persists across delete/re-create of the same
	// id (metric series are forever in the registry anyway), so governor
	// components and scrapers never see a tenant id's accounting reset
	// to a different instance.
	acct     *flow.TenantAcct
	matches  *telemetry.Counter
	events   *telemetry.EventRing
	genGauge *telemetry.Gauge

	sources atomic.Pointer[[]string]
	rules   atomic.Pointer[[]byte]
}

// ID returns the tenant's registered id.
func (t *Tenant) ID() string { return t.id }

// Index returns the tenant's dispatch index — the value carried in
// pcap.FlowKey.Tenant. Indexes are assigned once and never reused, so a
// stale tag can never alias a different tenant.
func (t *Tenant) Index() uint32 { return t.idx }

// Generation returns the tenant's current (last installed) generation.
func (t *Tenant) Generation() uint64 { return t.gen.Load() }

// NextGeneration mints the tenant's next generation number.
func (t *Tenant) NextGeneration() uint64 { return t.gen.Add(1) }

// Acct returns the tenant's shared accounting/quota block, handed to
// every shard's assembler with the tenant's generations.
func (t *Tenant) Acct() *flow.TenantAcct { return t.acct }

// Events returns the tenant's private match-event ring.
func (t *Tenant) Events() *telemetry.EventRing { return t.events }

// CountMatch records one confirmed match for the tenant: the per-tenant
// counter and the per-tenant event ring. Safe from any goroutine.
func (t *Tenant) CountMatch(ev telemetry.Event) {
	t.matches.Inc()
	t.events.Add(ev)
}

// Matches returns the tenant's confirmed-match total.
func (t *Tenant) Matches() int64 { return t.matches.Value() }

// Quota returns the tenant's current quota.
func (t *Tenant) Quota() Quota {
	return Quota{
		MaxFlows:         t.acct.MaxFlows.Load(),
		MaxBufferedBytes: t.acct.MaxBufferedBytes.Load(),
	}
}

// SetQuota replaces the tenant's quota; effective immediately on every
// shard (the assemblers read the atomics per decision).
func (t *Tenant) SetQuota(q Quota) {
	t.acct.MaxFlows.Store(q.MaxFlows)
	t.acct.MaxBufferedBytes.Store(q.MaxBufferedBytes)
}

// Sources returns the per-rule source strings of the tenant's current
// rule set (index = rule id), for match attribution.
func (t *Tenant) Sources() []string {
	if s := t.sources.Load(); s != nil {
		return *s
	}
	return nil
}

// Rules returns the raw rule text last installed for the tenant.
func (t *Tenant) Rules() []byte {
	if b := t.rules.Load(); b != nil {
		return *b
	}
	return nil
}

// Stats is one tenant's JSON-serializable snapshot (admin /statsz and
// GET /tenants).
type Stats struct {
	ID               string   `json:"id"`
	Index            uint32   `json:"index"`
	Generation       uint64   `json:"generation"`
	MaxFlows         int64    `json:"max_flows,omitempty"`
	MaxBufferedBytes int64    `json:"max_buffered_bytes,omitempty"`
	LiveFlows        int64    `json:"live_flows"`
	BufferedBytes    int64    `json:"buffered_bytes"`
	Matches          int64    `json:"matches"`
	FlowQuotaDrops   int64    `json:"flow_quota_drops"`
	ByteQuotaDrops   int64    `json:"byte_quota_drops"`
	Rules            int      `json:"rules"`
	Sources          []string `json:"sources,omitempty"`
}

// Stats snapshots the tenant.
func (t *Tenant) Stats() Stats {
	src := t.Sources()
	return Stats{
		ID:               t.id,
		Index:            t.idx,
		Generation:       t.gen.Load(),
		MaxFlows:         t.acct.MaxFlows.Load(),
		MaxBufferedBytes: t.acct.MaxBufferedBytes.Load(),
		LiveFlows:        t.acct.LiveFlows.Value(),
		BufferedBytes:    t.acct.BufferedBytes.Value(),
		Matches:          t.matches.Value(),
		FlowQuotaDrops:   t.acct.FlowQuotaDrops.Value(),
		ByteQuotaDrops:   t.acct.ByteQuotaDrops.Value(),
		Rules:            len(src),
		Sources:          src,
	}
}

// Swapper is the serving engine a Registry drives. *engine.Engine
// implements it; the indirection keeps the import pointing engine →
// tenant (the dispatch hot path needs Lookup) rather than both ways.
type Swapper interface {
	// ReloadTenant installs newRunner as the tenant's next generation on
	// every shard and returns the generation number. reset restarts the
	// tenant's live flows on the new set; false drains them on the old.
	ReloadTenant(t *Tenant, newRunner func() flow.Runner, reset bool) (uint64, error)
	// DropTenant tears down the tenant's flows and serving state on
	// every shard.
	DropTenant(t *Tenant) error
}

// Config wires a Registry. All fields are optional.
type Config struct {
	// Metrics, when non-nil, receives tenant-labeled mfa_tenant_* series
	// as tenants are created.
	Metrics *telemetry.Registry
	// Governor, when non-nil, gets one named component per tenant
	// ("tenant:<id>", the tenant's buffered reassembly bytes) so tenant
	// memory counts against the daemon ceiling under its own name.
	Governor *guard.Governor
	// EventsCap bounds each tenant's match-event ring; <= 0 means 256.
	EventsCap int
}

// telemetryBlock is the per-id accounting that survives delete and
// re-create, so a recreated tenant keeps its metric series, its event
// history and its governor component.
type telemetryBlock struct {
	acct     *flow.TenantAcct
	matches  *telemetry.Counter
	events   *telemetry.EventRing
	genGauge *telemetry.Gauge
}

// Registry maps tenant ids to serving state. One Registry serves one
// engine. All mutation is serialized on an internal mutex; Lookup and
// Tag are lock-free for the dispatch path.
type Registry struct {
	cfg Config

	mu     sync.Mutex
	eng    Swapper
	byID   map[string]*Tenant
	blocks map[string]*telemetryBlock
	govern map[string]bool // governor components registered, by id
	next   uint32          // last assigned index
	cidrs  []CIDRRule

	// byIdx is the dispatch index: slot idx-1 holds the tenant, nil
	// after delete. Copy-on-write under mu, read lock-free.
	byIdx atomic.Pointer[[]*Tenant]
	// tags is the resolved CIDR classifier table (classify.go).
	tags atomic.Pointer[[]tagEntry]

	puts    atomic.Int64
	deletes atomic.Int64
}

// NewRegistry creates an empty registry. Call Bind before Put.
func NewRegistry(cfg Config) *Registry {
	if cfg.EventsCap <= 0 {
		cfg.EventsCap = 256
	}
	return &Registry{
		cfg:    cfg,
		byID:   make(map[string]*Tenant),
		blocks: make(map[string]*telemetryBlock),
		govern: make(map[string]bool),
	}
}

// Bind attaches the serving engine. The registry and engine reference
// each other (engine dispatch reads Lookup; registry CRUD drives
// reloads), so construction is two-phase: NewRegistry → engine.New with
// the registry in its Config → Bind.
func (r *Registry) Bind(s Swapper) {
	r.mu.Lock()
	r.eng = s
	r.mu.Unlock()
}

// PutSpec describes one Put: the compiled rule set and its metadata.
// The caller is expected to have run the SelfCheck gate on the compiled
// set before calling Put — same contract as engine.Reload.
type PutSpec struct {
	// NewRunner allocates start-of-flow matching contexts for the
	// tenant's compiled rule set. Required.
	NewRunner func() flow.Runner
	// Sources are the per-rule source strings (index = rule id).
	Sources []string
	// Rules is the raw rule text, kept for admin GET round-trips.
	Rules []byte
	// Quota bounds the tenant; zero fields mean unlimited.
	Quota Quota
	// Reset restarts the tenant's live flows on the new rule set
	// (engine.ReloadReset semantics); false drains them (ReloadDrain).
	Reset bool
}

// Put creates tenant id or replaces its rule set, swapping in the next
// (tenant, generation) pair on every shard. A new tenant becomes
// visible to dispatch only after its first generation is installed on
// all shards, so a tagged segment can never race its own rule set. On
// error the registry and the tenant's serving state are unchanged.
func (r *Registry) Put(id string, spec PutSpec) (*Tenant, uint64, error) {
	if err := ValidateID(id); err != nil {
		return nil, 0, err
	}
	if spec.NewRunner == nil {
		return nil, 0, fmt.Errorf("tenant %q: nil runner factory", id)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.eng == nil {
		return nil, 0, fmt.Errorf("tenant %q: registry not bound to an engine", id)
	}
	t := r.byID[id]
	fresh := t == nil
	if fresh {
		blk := r.blocks[id]
		if blk == nil {
			blk = r.newBlock(id)
			r.blocks[id] = blk
		}
		r.next++
		t = &Tenant{
			id:       id,
			idx:      r.next,
			acct:     blk.acct,
			matches:  blk.matches,
			events:   blk.events,
			genGauge: blk.genGauge,
		}
	}
	t.SetQuota(spec.Quota)
	if spec.Sources != nil {
		s := spec.Sources
		t.sources.Store(&s)
	}
	if spec.Rules != nil {
		b := spec.Rules
		t.rules.Store(&b)
	}
	gen, err := r.eng.ReloadTenant(t, spec.NewRunner, spec.Reset)
	if err != nil {
		return nil, 0, err
	}
	if t.genGauge != nil {
		t.genGauge.Set(int64(gen))
	}
	if fresh {
		r.byID[id] = t
		r.publishLocked(t)
		if gov := r.cfg.Governor; gov != nil && !r.govern[id] {
			acct := t.acct
			gov.Register("tenant:"+id, func() int64 { return acct.BufferedBytes.Value() })
			r.govern[id] = true
		}
		r.retagLocked()
	}
	r.puts.Add(1)
	return t, gen, nil
}

// Delete removes tenant id: it disappears from dispatch first (new
// segments carrying its index drop as unknown), then every shard tears
// down its flows and serving state. The id may be re-Put later; it will
// get a fresh index but keep its metric series and event history.
func (r *Registry) Delete(id string) error {
	r.mu.Lock()
	t := r.byID[id]
	if t == nil {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknown, id)
	}
	delete(r.byID, id)
	r.unpublishLocked(t)
	r.retagLocked()
	eng := r.eng
	r.mu.Unlock()
	r.deletes.Add(1)
	if eng != nil {
		return eng.DropTenant(t)
	}
	return nil
}

// Lookup resolves a dispatch index to its tenant, lock-free. nil means
// unknown (never assigned, or deleted).
func (r *Registry) Lookup(idx uint32) *Tenant {
	s := r.byIdx.Load()
	if s == nil || idx == 0 || int(idx) > len(*s) {
		return nil
	}
	return (*s)[idx-1]
}

// ByID resolves a tenant id.
func (r *Registry) ByID(id string) *Tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byID[id]
}

// List snapshots every registered tenant, ordered by index.
func (r *Registry) List() []Stats {
	s := r.byIdx.Load()
	if s == nil {
		return nil
	}
	out := make([]Stats, 0, len(*s))
	for _, t := range *s {
		if t != nil {
			out = append(out, t.Stats())
		}
	}
	return out
}

// Len reports the number of registered tenants.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byID)
}

// BufferedBytes sums every registered tenant's buffered reassembly
// bytes. The engine subtracts this from its own governor component so
// tenant bytes are attributed to their "tenant:<id>" components instead
// of double-counting.
func (r *Registry) BufferedBytes() int64 {
	s := r.byIdx.Load()
	if s == nil {
		return 0
	}
	var n int64
	for _, t := range *s {
		if t != nil {
			n += t.acct.BufferedBytes.Value()
		}
	}
	return n
}

func (r *Registry) publishLocked(t *Tenant) {
	old := r.byIdx.Load()
	var next []*Tenant
	if old != nil {
		next = make([]*Tenant, len(*old))
		copy(next, *old)
	}
	for int(t.idx) > len(next) {
		next = append(next, nil)
	}
	next[t.idx-1] = t
	r.byIdx.Store(&next)
}

func (r *Registry) unpublishLocked(t *Tenant) {
	old := r.byIdx.Load()
	if old == nil || int(t.idx) > len(*old) {
		return
	}
	next := make([]*Tenant, len(*old))
	copy(next, *old)
	next[t.idx-1] = nil
	r.byIdx.Store(&next)
}

// newBlock builds one id's persistent telemetry block, registering its
// tenant-labeled series when a metrics registry is configured. Counter
// and Gauge registration is idempotent in telemetry.Registry, so a
// block rebuilt after process-internal churn resolves to the same
// series.
func (r *Registry) newBlock(id string) *telemetryBlock {
	blk := &telemetryBlock{
		acct:   &flow.TenantAcct{},
		events: telemetry.NewEventRing(r.cfg.EventsCap),
	}
	if reg := r.cfg.Metrics; reg != nil {
		l := telemetry.L("tenant", id)
		blk.acct.LiveFlows = reg.Gauge("mfa_tenant_live_flows",
			"Live flows per tenant.", l)
		blk.acct.BufferedBytes = reg.Gauge("mfa_tenant_buffered_bytes",
			"Out-of-order reassembly payload bytes buffered per tenant.", l)
		blk.acct.FlowQuotaDrops = reg.Counter("mfa_tenant_quota_flow_drops_total",
			"Segments dropped because the tenant hit its max-flows quota.", l)
		blk.acct.ByteQuotaDrops = reg.Counter("mfa_tenant_quota_byte_drops_total",
			"Segments dropped because the tenant hit its max-buffered-bytes quota.", l)
		blk.matches = reg.Counter("mfa_tenant_matches_total",
			"Confirmed matches per tenant.", l)
		blk.genGauge = reg.Gauge("mfa_tenant_generation",
			"Current rule-set generation per tenant.", l)
	} else {
		blk.acct.LiveFlows = new(telemetry.Gauge)
		blk.acct.BufferedBytes = new(telemetry.Gauge)
		blk.acct.FlowQuotaDrops = new(telemetry.Counter)
		blk.acct.ByteQuotaDrops = new(telemetry.Counter)
		blk.matches = new(telemetry.Counter)
	}
	return blk
}

// ValidateID enforces the tenant-id grammar: 1–64 characters drawn from
// [A-Za-z0-9_.-], not starting with a separator — safe as a metric
// label value, a URL path element and a query parameter.
func ValidateID(id string) error {
	if id == "" || len(id) > 64 {
		return fmt.Errorf("tenant id %q: must be 1-64 characters", id)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			(i > 0 && (c == '_' || c == '.' || c == '-'))
		if !ok {
			return fmt.Errorf("tenant id %q: invalid character %q at %d", id, c, i)
		}
	}
	return nil
}
