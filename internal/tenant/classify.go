// IP-range tenant classification.
//
// Sources that carry one tenant's traffic exclusively are bound with a
// per-source tag (input.SourceOptions.Tenant) — no classification
// needed. Mixed sources (a mirror port, a shared capture) tag per flow
// instead: the operator declares CIDR → tenant rules, and the ingest
// path asks Tag for every decoded segment's key. The resolved table is
// an atomic snapshot rebuilt on every registry mutation, so the hot
// path is a lock-free linear scan over a handful of masked compares —
// first match wins, in declaration order.

package tenant

import (
	"fmt"
	"strconv"
	"strings"

	"matchfilter/internal/pcap"
)

// CIDRRule maps one IPv4 range to a tenant id.
type CIDRRule struct {
	IP   uint32 // network address, host byte order
	Bits int    // prefix length 0..32
	ID   string // tenant id (resolved when the tenant exists)
}

// ParseCIDRRule parses "10.1.0.0/16=acme".
func ParseCIDRRule(spec string) (CIDRRule, error) {
	cidr, id, ok := strings.Cut(spec, "=")
	if !ok || id == "" {
		return CIDRRule{}, fmt.Errorf("tenant: cidr rule %q: want CIDR=tenant", spec)
	}
	if err := ValidateID(id); err != nil {
		return CIDRRule{}, err
	}
	prefix, bitsStr, ok := strings.Cut(cidr, "/")
	if !ok {
		return CIDRRule{}, fmt.Errorf("tenant: cidr rule %q: missing /bits", spec)
	}
	bits, err := strconv.Atoi(bitsStr)
	if err != nil || bits < 0 || bits > 32 {
		return CIDRRule{}, fmt.Errorf("tenant: cidr rule %q: bad prefix length", spec)
	}
	ip, err := parseIPv4(prefix)
	if err != nil {
		return CIDRRule{}, fmt.Errorf("tenant: cidr rule %q: %v", spec, err)
	}
	return CIDRRule{IP: ip & maskOf(bits), Bits: bits, ID: id}, nil
}

func parseIPv4(s string) (uint32, error) {
	var ip uint32
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("bad IPv4 %q", s)
	}
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 || (len(p) > 1 && p[0] == '0') {
			return 0, fmt.Errorf("bad IPv4 %q", s)
		}
		ip = ip<<8 | uint32(v)
	}
	return ip, nil
}

func maskOf(bits int) uint32 {
	if bits <= 0 {
		return 0
	}
	return ^uint32(0) << (32 - bits)
}

// tagEntry is one resolved classifier rule on the hot path.
type tagEntry struct {
	ip, mask uint32
	idx      uint32
}

// SetCIDRs replaces the classifier rule list. Rules naming tenants that
// do not exist yet stay latent and resolve when the tenant is Put.
func (r *Registry) SetCIDRs(rules []CIDRRule) {
	r.mu.Lock()
	r.cidrs = append([]CIDRRule(nil), rules...)
	r.retagLocked()
	r.mu.Unlock()
}

// retagLocked rebuilds the resolved classifier snapshot from the rule
// list and the current tenant set.
func (r *Registry) retagLocked() {
	if len(r.cidrs) == 0 {
		r.tags.Store(nil)
		return
	}
	entries := make([]tagEntry, 0, len(r.cidrs))
	for _, c := range r.cidrs {
		t := r.byID[c.ID]
		if t == nil {
			continue
		}
		entries = append(entries, tagEntry{ip: c.IP, mask: maskOf(c.Bits), idx: t.idx})
	}
	r.tags.Store(&entries)
}

// Tag classifies a flow key to a tenant index by source address, then
// destination address; 0 (the default rule set) when no rule matches.
// Lock-free; safe on the per-segment ingest path.
func (r *Registry) Tag(k pcap.FlowKey) uint32 {
	tbl := r.tags.Load()
	if tbl == nil {
		return 0
	}
	for _, e := range *tbl {
		if k.SrcIP&e.mask == e.ip || k.DstIP&e.mask == e.ip {
			return e.idx
		}
	}
	return 0
}
