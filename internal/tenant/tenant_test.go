// Registry, classifier and admin-CRUD tests for multi-tenant serving,
// plus the two ISSUE acceptance scenarios: two tenants on one daemon
// must match exactly like two single-tenant daemons, and a tenant
// driven past its quota must degrade alone. Package tenant_test so the
// suite can drive a real engine (engine imports tenant).
package tenant_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"matchfilter/internal/core"
	"matchfilter/internal/engine"
	"matchfilter/internal/flow"
	"matchfilter/internal/pcap"
	"matchfilter/internal/regexparse"
	"matchfilter/internal/telemetry"
	"matchfilter/internal/tenant"
	"matchfilter/internal/trace"
)

func buildMFA(t testing.TB, sources ...string) *core.MFA {
	t.Helper()
	rules := make([]core.Rule, len(sources))
	for i, src := range sources {
		p, err := regexparse.ParsePCRE(src)
		if err != nil {
			t.Fatal(err)
		}
		rules[i] = core.Rule{Pattern: p, ID: int32(i + 1)}
	}
	m, err := core.Compile(rules, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SelfCheck(); err != nil {
		t.Fatal(err)
	}
	return m
}

func factory(m *core.MFA) func() flow.Runner {
	return func() flow.Runner { return m.NewRunner() }
}

// compileRules is the test stand-in for mfaserve's rule compiler: the
// same parse → compile → SelfCheck gate the admin PUT handler must run.
func compileRules(body []byte) (func() flow.Runner, []string, error) {
	var rules []core.Rule
	var sources []string
	sc := bufio.NewScanner(bytes.NewReader(body))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		p, err := regexparse.ParsePCRE(line)
		if err != nil {
			return nil, nil, fmt.Errorf("rule %q: %w", line, err)
		}
		rules = append(rules, core.Rule{Pattern: p, ID: int32(len(rules) + 1)})
		sources = append(sources, line)
	}
	if len(rules) == 0 {
		return nil, nil, fmt.Errorf("no rules in body")
	}
	m, err := core.Compile(rules, core.Options{})
	if err != nil {
		return nil, nil, err
	}
	if err := m.SelfCheck(); err != nil {
		return nil, nil, err
	}
	return func() flow.Runner { return m.NewRunner() }, sources, nil
}

func tkey(ten uint32, n int) pcap.FlowKey {
	return pcap.FlowKey{
		Tenant:  ten,
		SrcIP:   0x0a000000 | uint32(n+1),
		DstIP:   0xc0a80101,
		SrcPort: uint16(20000 + n),
		DstPort: 443,
	}
}

// waitFor polls cond with a generous wall bound, for observations that
// trail the asynchronous shard pipeline.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// serving builds a bound registry + engine pair with the default rule
// set m and an optional match collector.
func serving(t *testing.T, cfg tenant.Config, ecfg engine.Config, m *core.MFA, onMatch func(engine.Match)) (*tenant.Registry, *engine.Engine) {
	t.Helper()
	reg := tenant.NewRegistry(cfg)
	ecfg.Tenants = reg
	e := engine.New(ecfg, factory(m), onMatch)
	reg.Bind(e)
	return reg, e
}

func TestRegistryLifecycle(t *testing.T) {
	metrics := telemetry.NewRegistry()
	def := buildMFA(t, "default")
	alpha := buildMFA(t, "alpha")
	bravo := buildMFA(t, "bravo")

	unbound := tenant.NewRegistry(tenant.Config{})
	if _, _, err := unbound.Put("acme", tenant.PutSpec{NewRunner: factory(alpha)}); err == nil {
		t.Fatal("Put on an unbound registry must fail")
	}

	reg, e := serving(t, tenant.Config{Metrics: metrics}, engine.Config{Shards: 2}, def, nil)
	defer e.Close()

	if _, _, err := reg.Put("bad id!", tenant.PutSpec{NewRunner: factory(alpha)}); err == nil {
		t.Fatal("invalid id accepted")
	}
	if _, _, err := reg.Put("acme", tenant.PutSpec{}); err == nil {
		t.Fatal("nil runner factory accepted")
	}

	ta, gen, err := reg.Put("acme", tenant.PutSpec{NewRunner: factory(alpha), Sources: []string{"alpha"}})
	if err != nil {
		t.Fatal(err)
	}
	if ta.Index() != 1 || gen != 1 {
		t.Fatalf("first tenant got (idx=%d, gen=%d), want (1, 1)", ta.Index(), gen)
	}
	if reg.Lookup(1) != ta || reg.ByID("acme") != ta {
		t.Fatal("Lookup/ByID do not resolve the new tenant")
	}

	// Per-tenant reload: same identity, next generation.
	ta2, gen2, err := reg.Put("acme", tenant.PutSpec{NewRunner: factory(bravo)})
	if err != nil {
		t.Fatal(err)
	}
	if ta2 != ta || gen2 != 2 {
		t.Fatalf("re-Put got (same=%v, gen=%d), want (true, 2)", ta2 == ta, gen2)
	}

	if err := reg.Delete("acme"); err != nil {
		t.Fatal(err)
	}
	if reg.Lookup(1) != nil || reg.ByID("acme") != nil || reg.Len() != 0 {
		t.Fatal("deleted tenant still resolvable")
	}
	if err := reg.Delete("acme"); err == nil {
		t.Fatal("double delete must report unknown tenant")
	}

	// Re-create: fresh index, same metric series — this Put panics if
	// the telemetry block were re-registered instead of reused.
	tb, gen3, err := reg.Put("acme", tenant.PutSpec{NewRunner: factory(alpha)})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Index() != 2 || gen3 != 1 {
		t.Fatalf("re-created tenant got (idx=%d, gen=%d), want (2, 1)", tb.Index(), gen3)
	}
	if reg.Lookup(1) != nil {
		t.Fatal("stale index still resolves after re-create")
	}

	list := reg.List()
	if len(list) != 1 || list[0].ID != "acme" || list[0].Index != 2 {
		t.Fatalf("List = %+v", list)
	}
}

func TestValidateID(t *testing.T) {
	for _, id := range []string{"a", "acme", "Acme-01", "t.one_2", strings.Repeat("x", 64)} {
		if err := tenant.ValidateID(id); err != nil {
			t.Errorf("ValidateID(%q) = %v, want nil", id, err)
		}
	}
	for _, id := range []string{"", "-lead", ".lead", "_lead", "has space", "slash/y", strings.Repeat("x", 65), "ütf"} {
		if err := tenant.ValidateID(id); err == nil {
			t.Errorf("ValidateID(%q) accepted", id)
		}
	}
}

func TestParseCIDRRule(t *testing.T) {
	r, err := tenant.ParseCIDRRule("10.1.2.3/16=acme")
	if err != nil {
		t.Fatal(err)
	}
	// Host bits must be masked off at parse time.
	if r.IP != 0x0a010000 || r.Bits != 16 || r.ID != "acme" {
		t.Fatalf("parsed %+v", r)
	}
	for _, bad := range []string{"", "10.0.0.0/8", "=acme", "10.0.0.0=acme", "10.0.0.0/33=acme", "10.0.0/8=acme", "300.0.0.0/8=acme", "10.0.0.0/8=bad id"} {
		if _, err := tenant.ParseCIDRRule(bad); err == nil {
			t.Errorf("ParseCIDRRule(%q) accepted", bad)
		}
	}
}

func TestClassifier(t *testing.T) {
	def := buildMFA(t, "default")
	alpha := buildMFA(t, "alpha")
	reg, e := serving(t, tenant.Config{}, engine.Config{Shards: 1}, def, nil)
	defer e.Close()

	mustRule := func(s string) tenant.CIDRRule {
		r, err := tenant.ParseCIDRRule(s)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	// "a" is latent (not Put yet); the narrower "b" rule comes second,
	// so declaration order, not specificity, must decide overlaps.
	reg.SetCIDRs([]tenant.CIDRRule{
		mustRule("10.0.0.0/8=a"),
		mustRule("10.9.0.0/16=b"),
		mustRule("192.168.1.0/24=b"),
	})
	inA := pcap.FlowKey{SrcIP: 0x0a090101, DstIP: 0x01020304, SrcPort: 1, DstPort: 2}
	if got := reg.Tag(inA); got != 0 {
		t.Fatalf("latent rule tagged %d before tenant exists", got)
	}

	ta, _, err := reg.Put("a", tenant.PutSpec{NewRunner: factory(alpha)})
	if err != nil {
		t.Fatal(err)
	}
	tb, _, err := reg.Put("b", tenant.PutSpec{NewRunner: factory(alpha)})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Tag(inA); got != ta.Index() {
		t.Fatalf("10.9/16 flow tagged %d, want first-match tenant a (%d)", got, ta.Index())
	}
	// Destination-address match when the source misses.
	dstB := pcap.FlowKey{SrcIP: 0x01020304, DstIP: 0xc0a80105, SrcPort: 1, DstPort: 2}
	if got := reg.Tag(dstB); got != tb.Index() {
		t.Fatalf("dst-classified flow tagged %d, want %d", got, tb.Index())
	}
	// No rule: default set.
	if got := reg.Tag(pcap.FlowKey{SrcIP: 0x08080808, DstIP: 0x08080404}); got != 0 {
		t.Fatalf("unmatched flow tagged %d, want 0", got)
	}

	if err := reg.Delete("a"); err != nil {
		t.Fatal(err)
	}
	// a's rule is latent again; the overlapping b rule takes over.
	if got := reg.Tag(inA); got != tb.Index() {
		t.Fatalf("after delete, 10.9/16 flow tagged %d, want %d", got, tb.Index())
	}
}

func TestAdminCRUD(t *testing.T) {
	def := buildMFA(t, "default")
	var mu sync.Mutex
	var got []engine.Match
	reg, e := serving(t, tenant.Config{}, engine.Config{Shards: 2}, def, func(m engine.Match) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	})
	defer e.Close()
	srv := httptest.NewServer(reg.AdminHandler(compileRules))
	defer srv.Close()

	do := func(method, path, body string) (int, string) {
		t.Helper()
		var rd *strings.Reader
		if body != "" {
			rd = strings.NewReader(body)
		} else {
			rd = strings.NewReader("")
		}
		req, err := http.NewRequest(method, srv.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}

	code, body := do(http.MethodGet, "/tenants", "")
	if code != 200 || !strings.Contains(body, "\"tenants\"") {
		t.Fatalf("empty list: %d %q", code, body)
	}

	rules := "# acme rules\nalpha.*mark\nspotted\n"
	code, body = do(http.MethodPut, "/tenants/acme/rules?max-flows=100", rules)
	if code != 200 {
		t.Fatalf("PUT: %d %q", code, body)
	}
	var put struct {
		Tenant     string `json:"tenant"`
		Index      uint32 `json:"index"`
		Generation uint64 `json:"generation"`
	}
	if err := json.Unmarshal([]byte(body), &put); err != nil {
		t.Fatalf("PUT response %q: %v", body, err)
	}
	if put.Tenant != "acme" || put.Generation != 1 {
		t.Fatalf("PUT response %+v", put)
	}

	// Round-trips.
	if code, body = do(http.MethodGet, "/tenants/acme/rules", ""); code != 200 || body != rules {
		t.Fatalf("rules round-trip: %d %q", code, body)
	}
	code, body = do(http.MethodGet, "/tenants/acme", "")
	var st tenant.Stats
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("stats %d %q: %v", code, body, err)
	}
	if st.Rules != 2 || st.MaxFlows != 100 || st.Index != put.Index {
		t.Fatalf("stats %+v", st)
	}

	// The installed set serves traffic.
	ten := reg.ByID("acme")
	send := func(n int, payload string) {
		t.Helper()
		seg := pcap.Segment{Key: tkey(ten.Index(), n), Seq: 0, Flags: pcap.FlagACK, Payload: []byte(payload)}
		if err := e.HandleSegment(seg); err != nil {
			t.Fatal(err)
		}
	}
	send(1, "an alpha quality mark and a spotted owl")
	waitFor(t, "first tenant matches", func() bool { return ten.Matches() == 2 })
	code, body = do(http.MethodGet, "/tenants/acme/events?n=10", "")
	if code != 200 || !strings.Contains(body, "\"events\"") || !strings.Contains(body, "\"pattern\"") {
		t.Fatalf("events: %d %q", code, body)
	}

	// The SelfCheck gate: a broken set answers 500 and the serving
	// generation keeps matching, untouched.
	code, body = do(http.MethodPut, "/tenants/acme/rules", "valid\n(broken\n")
	if code != 500 || !strings.Contains(body, "rules rejected") {
		t.Fatalf("broken PUT: %d %q", code, body)
	}
	if g := ten.Generation(); g != 1 {
		t.Fatalf("rejected PUT moved the generation to %d", g)
	}
	send(2, "another alpha banner mark here")
	waitFor(t, "post-rejection match", func() bool { return ten.Matches() == 3 })
	// Quota params are sticky across a PUT that omits them.
	if code, body = do(http.MethodPut, "/tenants/acme/rules", "spotted\n"); code != 200 {
		t.Fatalf("re-PUT: %d %q", code, body)
	}
	if q := ten.Quota(); q.MaxFlows != 100 {
		t.Fatalf("quota not sticky across PUT: %+v", q)
	}
	if g := ten.Generation(); g != 2 {
		t.Fatalf("accepted PUT did not advance the generation: %d", g)
	}

	if code, body = do(http.MethodDelete, "/tenants/acme", ""); code != 200 {
		t.Fatalf("DELETE: %d %q", code, body)
	}
	if code, _ = do(http.MethodGet, "/tenants/acme", ""); code != 404 {
		t.Fatalf("GET after delete: %d", code)
	}
	if code, _ = do(http.MethodDelete, "/tenants/acme", ""); code != 404 {
		t.Fatalf("double DELETE: %d", code)
	}
	if code, _ = do(http.MethodPut, "/tenants/bad/../id/rules", "x\n"); code == 200 {
		t.Fatal("path-mangled PUT accepted")
	}
}

// segment is one pre-built wire event for the equivalence tests so the
// multi-tenant engine and the reference engines see byte-identical
// traffic in identical order.
type segment struct {
	seq     uint32
	flags   uint8
	payload []byte
}

// tenantTraffic chunks per-flow TextLike streams (salted with the rule
// words) into SYN + data segments, with adjacent data chunks swapped
// periodically to exercise out-of-order reassembly.
func tenantTraffic(t *testing.T, nFlows, flowBytes, chunk int, words []string, salt int64) [][]segment {
	t.Helper()
	flows := make([][]segment, nFlows)
	for i := range flows {
		payload := trace.TextLike(flowBytes, salt+int64(i*37), words, 0.03)
		segs := []segment{{seq: 0, flags: pcap.FlagSYN}}
		for off := 0; off < len(payload); off += chunk {
			end := off + chunk
			if end > len(payload) {
				end = len(payload)
			}
			segs = append(segs, segment{seq: uint32(1 + off), flags: pcap.FlagACK, payload: payload[off:end]})
		}
		// Swap every third adjacent data pair; never the SYN.
		for j := 2; j+1 < len(segs); j += 3 {
			segs[j], segs[j+1] = segs[j+1], segs[j]
		}
		flows[i] = segs
	}
	return flows
}

// matchSeqs reduces a match list to per-flow ordered "id@pos" sequences
// with the tenant tag stripped, the canonical form for comparing a
// tenant's stream against a single-tenant daemon's.
func matchSeqs(ms []engine.Match, ten uint32) map[pcap.FlowKey][]string {
	out := make(map[pcap.FlowKey][]string)
	for _, m := range ms {
		if m.Flow.Tenant != ten {
			continue
		}
		k := m.Flow
		k.Tenant = 0
		out[k] = append(out[k], fmt.Sprintf("%d@%d", m.ID, m.Pos))
	}
	return out
}

func equalSeqs(a, b map[pcap.FlowKey][]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok || len(va) != len(vb) {
			return false
		}
		for i := range va {
			if va[i] != vb[i] {
				return false
			}
		}
	}
	return true
}

// TestTwoTenantEquivalence is the ISSUE acceptance scenario: two
// tenants with disjoint rule sets served by one daemon must produce
// byte-identical (id, pos) match streams to two single-tenant daemons
// fed the same interleaved traffic. Run under -race in CI.
func TestTwoTenantEquivalence(t *testing.T) {
	def := buildMFA(t, "default")
	setA := buildMFA(t, "alpha.*mark", "spotted")
	setB := buildMFA(t, "bravo[0-9]+", "spotted")

	const nFlows, flowBytes, chunk = 8, 6 << 10, 512
	trafficA := tenantTraffic(t, nFlows, flowBytes, chunk, []string{"alpha", "mark", "spotted"}, 1000)
	trafficB := tenantTraffic(t, nFlows, flowBytes, chunk, []string{"bravo77", "spotted"}, 5000)

	// The daemon under test: one engine, two tenants.
	var mu sync.Mutex
	var multi []engine.Match
	reg, e := serving(t, tenant.Config{}, engine.Config{Shards: 4}, def, func(m engine.Match) {
		mu.Lock()
		multi = append(multi, m)
		mu.Unlock()
	})
	ta, _, err := reg.Put("alpha", tenant.PutSpec{NewRunner: factory(setA)})
	if err != nil {
		t.Fatal(err)
	}
	tb, _, err := reg.Put("bravo", tenant.PutSpec{NewRunner: factory(setB)})
	if err != nil {
		t.Fatal(err)
	}

	// The reference: two single-tenant daemons, one per rule set.
	var refA, refB []engine.Match
	var muA, muB sync.Mutex
	eA := engine.New(engine.Config{Shards: 4}, factory(setA), func(m engine.Match) {
		muA.Lock()
		refA = append(refA, m)
		muA.Unlock()
	})
	eB := engine.New(engine.Config{Shards: 4}, factory(setB), func(m engine.Match) {
		muB.Lock()
		refB = append(refB, m)
		muB.Unlock()
	})

	// One interleaved schedule drives all three daemons: round-robin
	// across both tenants' flows, tagged for the multi-tenant engine,
	// untagged for the per-tenant references.
	send := func(eng *engine.Engine, ten uint32, flowN int, s segment) {
		t.Helper()
		key := tkey(ten, flowN)
		err := eng.HandleSegment(pcap.Segment{Key: key, Seq: s.seq, Flags: s.flags, Payload: s.payload})
		if err != nil {
			t.Fatal(err)
		}
	}
	maxLen := 0
	for _, f := range trafficA {
		if len(f) > maxLen {
			maxLen = len(f)
		}
	}
	for step := 0; step < maxLen; step++ {
		for i := 0; i < nFlows; i++ {
			if step < len(trafficA[i]) {
				send(e, ta.Index(), i, trafficA[i][step])
				send(eA, 0, i, trafficA[i][step])
			}
			if step < len(trafficB[i]) {
				send(e, tb.Index(), i, trafficB[i][step])
				send(eB, 0, i, trafficB[i][step])
			}
		}
	}
	for _, eng := range []*engine.Engine{e, eA, eB} {
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
	}

	wantA, wantB := matchSeqs(refA, 0), matchSeqs(refB, 0)
	if len(refA) == 0 || len(refB) == 0 {
		t.Fatalf("reference daemons found %d/%d matches; test would be vacuous", len(refA), len(refB))
	}
	if got := matchSeqs(multi, ta.Index()); !equalSeqs(wantA, got) {
		t.Errorf("tenant alpha diverges from its single-tenant daemon: ref %d matches, multi %d", len(refA), len(multi))
	}
	if got := matchSeqs(multi, tb.Index()); !equalSeqs(wantB, got) {
		t.Errorf("tenant bravo diverges from its single-tenant daemon: ref %d matches, multi %d", len(refB), len(multi))
	}
	// No leakage across rule sets: every multi-engine match belongs to
	// one of the two tenants, and the per-tenant counters agree.
	if got := matchSeqs(multi, 0); len(got) != 0 {
		t.Errorf("%d flows matched on the default set; traffic was all tagged", len(got))
	}
	if ta.Matches() != int64(len(refA)) || tb.Matches() != int64(len(refB)) {
		t.Errorf("tenant counters (%d, %d) disagree with references (%d, %d)",
			ta.Matches(), tb.Matches(), len(refA), len(refB))
	}
	st := e.Stats()
	if st.TenantDrops != 0 || st.UnknownTenantDrops != 0 {
		t.Errorf("unexpected tenant drops: %+v", st)
	}
}

// TestQuotaDegradationIsolation is the second acceptance scenario: a
// tenant driven past its max-flows quota sheds its own traffic, with
// drops accounted under its label, while the other tenant stays at
// tier-0 service and loses nothing.
func TestQuotaDegradationIsolation(t *testing.T) {
	def := buildMFA(t, "default")
	noisyM := buildMFA(t, "flood")
	quietM := buildMFA(t, "quiet")

	var mu sync.Mutex
	var got []engine.Match
	reg, e := serving(t, tenant.Config{}, engine.Config{Shards: 2}, def, func(m engine.Match) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	})
	noisy, _, err := reg.Put("noisy", tenant.PutSpec{
		NewRunner: factory(noisyM),
		Quota:     tenant.Quota{MaxFlows: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	quiet, _, err := reg.Put("quiet", tenant.PutSpec{NewRunner: factory(quietM)})
	if err != nil {
		t.Fatal(err)
	}

	// 64 distinct noisy flows against a 4-flow quota, interleaved with
	// 16 quiet flows that must all be served.
	const noisyFlows, quietFlows = 64, 16
	for i := 0; i < noisyFlows; i++ {
		seg := pcap.Segment{Key: tkey(noisy.Index(), i), Seq: 0, Flags: pcap.FlagACK, Payload: []byte("flood payload........")}
		if err := e.HandleSegment(seg); err != nil {
			t.Fatal(err)
		}
		if i%4 == 0 {
			q := i / 4
			seg := pcap.Segment{Key: tkey(quiet.Index(), 1000 + q), Seq: 0, Flags: pcap.FlagACK, Payload: []byte("a quiet word passes")}
			if err := e.HandleSegment(seg); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	nst, qst := noisy.Stats(), quiet.Stats()
	if nst.FlowQuotaDrops != noisyFlows-4 {
		t.Fatalf("noisy tenant: %d flow-quota drops, want %d", nst.FlowQuotaDrops, noisyFlows-4)
	}
	if nst.LiveFlows != 4 {
		t.Fatalf("noisy tenant holds %d live flows past a quota of 4", nst.LiveFlows)
	}
	if qst.FlowQuotaDrops != 0 || qst.ByteQuotaDrops != 0 {
		t.Fatalf("quiet tenant took drops: %+v", qst)
	}
	if qst.Matches != quietFlows || qst.LiveFlows != quietFlows {
		t.Fatalf("quiet tenant served %d matches on %d flows, want %d on %d", qst.Matches, qst.LiveFlows, quietFlows, quietFlows)
	}
	st := e.Stats()
	if st.TenantDrops != noisyFlows-4 {
		t.Fatalf("engine accounts %d tenant drops, want %d", st.TenantDrops, noisyFlows-4)
	}
	if st.Tier != engine.TierNormal || st.HardDrops != 0 || st.QueueDrops != 0 {
		t.Fatalf("quota overrun degraded global service: %+v", st)
	}
}

// TestLifecycleRace drives concurrent admin CRUD (direct and over
// HTTP), per-tenant reloads and live tagged traffic through one engine.
// Run under -race; the assertions are liveness and accounting, the
// detector does the heavy lifting.
func TestLifecycleRace(t *testing.T) {
	def := buildMFA(t, "default")
	alpha := buildMFA(t, "alpha")
	bravo := buildMFA(t, "bravo")
	reg, e := serving(t, tenant.Config{}, engine.Config{Shards: 4, QueueDepth: 256}, def, nil)
	srv := httptest.NewServer(reg.AdminHandler(compileRules))
	defer srv.Close()

	const tenants = 3
	var sent atomic.Int64
	stop := make(chan struct{})
	var wg, mutators sync.WaitGroup

	// Traffic: each producer sprays segments tagged with whatever index
	// its tenant currently has (or had — stale tags must drop cleanly,
	// never crash or misroute).
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var idx uint32
				if ten := reg.ByID(fmt.Sprintf("t%d", i%tenants)); ten != nil {
					idx = ten.Index()
				}
				seg := pcap.Segment{
					Key:     tkey(idx, p*100+i%7),
					Seq:     uint32(i * 20),
					Flags:   pcap.FlagACK,
					Payload: []byte("alpha bravo default."),
				}
				if err := e.HandleSegment(seg); err != nil {
					t.Errorf("HandleSegment: %v", err)
					return
				}
				sent.Add(1)
			}
		}(p)
	}

	// Mutators: create/reload/delete each tenant id in a loop, half via
	// the registry API, half via admin HTTP PUT/DELETE.
	iters := 30
	if testing.Short() {
		iters = 8
	}
	for w := 0; w < tenants; w++ {
		mutators.Add(1)
		go func(w int) {
			defer mutators.Done()
			id := fmt.Sprintf("t%d", w)
			for i := 0; i < iters; i++ {
				m := alpha
				if i%2 == 0 {
					m = bravo
				}
				if w%2 == 0 {
					if _, _, err := reg.Put(id, tenant.PutSpec{NewRunner: factory(m), Reset: i%3 == 0}); err != nil {
						t.Errorf("Put %s: %v", id, err)
					}
				} else {
					req, _ := http.NewRequest(http.MethodPut, srv.URL+"/tenants/"+id+"/rules", strings.NewReader("alpha\nbravo\n"))
					resp, err := http.DefaultClient.Do(req)
					if err != nil {
						t.Errorf("PUT %s: %v", id, err)
						return
					}
					resp.Body.Close()
					if resp.StatusCode != 200 {
						t.Errorf("PUT %s: status %d", id, resp.StatusCode)
					}
				}
				if i%5 == 4 {
					if w%2 == 0 {
						_ = reg.Delete(id)
					} else {
						req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/tenants/"+id, nil)
						if resp, err := http.DefaultClient.Do(req); err == nil {
							resp.Body.Close()
						}
					}
				}
			}
			// Leave the tenant serving so post-race traffic has a target.
			if _, _, err := reg.Put(id, tenant.PutSpec{NewRunner: factory(alpha)}); err != nil {
				t.Errorf("final Put %s: %v", id, err)
			}
		}(w)
	}

	// Concurrent readers over the snapshot surfaces.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			reg.List()
			reg.BufferedBytes()
			reg.Tag(tkey(0, i%5))
			e.Stats()
		}
	}()

	// Let the bounded mutators finish first, then stop traffic/readers.
	mutators.Wait()
	close(stop)
	wg.Wait()

	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.ShardPanics != 0 || st.UnhealthyShards != 0 {
		t.Fatalf("lifecycle churn broke a shard: %+v", st)
	}
	// Every dispatched segment is scanned or accounted in exactly one
	// drop bucket; stale-tag drops land in the tenant buckets.
	accounted := st.Packets + st.QueueDrops + st.HardDrops + st.PoisonedDrops +
		st.UnhealthyDrops + st.WedgeDrops + st.UnknownTenantDrops
	if accounted != sent.Load() {
		t.Fatalf("accounting identity broken: sent %d, accounted %d (%+v)", sent.Load(), accounted, st)
	}
	if reg.Len() != tenants {
		t.Fatalf("%d tenants registered at exit, want %d", reg.Len(), tenants)
	}
}
