// Tenant CRUD over the admin HTTP surface.
//
//	GET    /tenants                 JSON list of tenant snapshots
//	PUT    /tenants/<id>/rules      install/replace the tenant's rule set
//	                                (body: rule text; ?max-flows=N,
//	                                ?max-buffered=SIZE, ?reset=1)
//	GET    /tenants/<id>/rules      the raw rule text last installed
//	GET    /tenants/<id>            one tenant's snapshot
//	GET    /tenants/<id>/events     tail of the tenant's match ring (?n=)
//	DELETE /tenants/<id>[/rules]    remove the tenant
//
// PUT mirrors POST /reload's rejection semantics exactly: the body is
// compiled and gated (the Compiler callback runs the same parse →
// compile → SelfCheck pipeline as a whole-daemon reload), and a
// rejected set answers 500 with the reason while the tenant's serving
// generation — or its absence — is untouched.

package tenant

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"matchfilter/internal/flow"
	"matchfilter/internal/telemetry"
)

// Compiler turns raw rule text into a validated runner factory plus
// per-rule source strings. Implementations must run the SelfCheck gate
// and return an error on any defect — the handler treats an error as a
// rejected swap.
type Compiler func(rules []byte) (newRunner func() flow.Runner, sources []string, err error)

// maxRulesBody bounds a PUT body; rule sets beyond this are rejected
// before compilation.
const maxRulesBody = 16 << 20

// AdminHandler serves the tenant CRUD surface for this registry. Mount
// it at /tenants (telemetry.Admin.Tenants does).
func (r *Registry) AdminHandler(compile Compiler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		rest := strings.TrimPrefix(strings.TrimPrefix(req.URL.Path, "/tenants"), "/")
		id, sub, _ := strings.Cut(rest, "/")
		switch {
		case id == "":
			if req.Method != http.MethodGet {
				w.Header().Set("Allow", http.MethodGet)
				http.Error(w, "list requires GET", http.StatusMethodNotAllowed)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_ = telemetry.WriteJSONValue(w, struct {
				Tenants []Stats `json:"tenants"`
			}{Tenants: r.List()})
		case sub == "" || sub == "rules":
			r.serveTenant(w, req, compile, id, sub)
		case sub == "events":
			r.serveEvents(w, req, id)
		default:
			http.NotFound(w, req)
		}
	})
}

func (r *Registry) serveTenant(w http.ResponseWriter, req *http.Request, compile Compiler, id, sub string) {
	switch req.Method {
	case http.MethodGet:
		t := r.ByID(id)
		if t == nil {
			http.NotFound(w, req)
			return
		}
		if sub == "rules" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write(t.Rules())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = telemetry.WriteJSONValue(w, t.Stats())
	case http.MethodPut:
		if sub != "rules" {
			http.Error(w, "PUT targets /tenants/<id>/rules", http.StatusMethodNotAllowed)
			return
		}
		if compile == nil {
			http.Error(w, "no rule compiler wired", http.StatusNotImplemented)
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxRulesBody))
		if err != nil {
			http.Error(w, fmt.Sprintf("read rules: %v", err), http.StatusBadRequest)
			return
		}
		spec := PutSpec{Rules: body}
		q := req.URL.Query()
		if t := r.ByID(id); t != nil {
			spec.Quota = t.Quota() // absent params keep the current quota
		}
		if v := q.Get("max-flows"); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 0 {
				http.Error(w, "bad max-flows", http.StatusBadRequest)
				return
			}
			spec.Quota.MaxFlows = n
		}
		if v := q.Get("max-buffered"); v != "" {
			n, err := ParseSize(v)
			if err != nil {
				http.Error(w, "bad max-buffered: "+err.Error(), http.StatusBadRequest)
				return
			}
			spec.Quota.MaxBufferedBytes = n
		}
		spec.Reset = q.Get("reset") == "1" || q.Get("reset") == "true"
		// The gate: parse → compile → SelfCheck, exactly as POST /reload.
		// A rejected set must leave the tenant's serving state untouched,
		// which Put guarantees by swapping only after compile succeeds.
		spec.NewRunner, spec.Sources, err = compile(body)
		if err != nil {
			http.Error(w, fmt.Sprintf("rules rejected: %v", err), http.StatusInternalServerError)
			return
		}
		t, gen, err := r.Put(id, spec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"tenant\":%q,\"index\":%d,\"generation\":%d}\n", t.ID(), t.Index(), gen)
	case http.MethodDelete:
		if err := r.Delete(id); err != nil {
			code := http.StatusInternalServerError
			if strings.Contains(err.Error(), ErrUnknown.Error()) {
				code = http.StatusNotFound
			}
			http.Error(w, err.Error(), code)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"deleted\":%q}\n", id)
	default:
		w.Header().Set("Allow", "GET, PUT, DELETE")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (r *Registry) serveEvents(w http.ResponseWriter, req *http.Request, id string) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "events requires GET", http.StatusMethodNotAllowed)
		return
	}
	t := r.ByID(id)
	if t == nil {
		http.NotFound(w, req)
		return
	}
	n := 0
	if q := req.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		n = v
	}
	w.Header().Set("Content-Type", "application/json")
	_ = telemetry.WriteJSONValue(w, struct {
		Total  int64             `json:"total"`
		Events []telemetry.Event `json:"events"`
	}{Total: t.Events().Total(), Events: t.Events().Tail(n)})
}

// ParseSize parses a byte count with an optional K/M/G suffix
// (binary: K = 1024), as the mfaserve -max-memory flag does.
func ParseSize(s string) (int64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty size")
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		mult, s = 1<<10, s[:len(s)-1]
	case 'm', 'M':
		mult, s = 1<<20, s[:len(s)-1]
	case 'g', 'G':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}
