package bench

import (
	"bytes"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"matchfilter/internal/dfa"
	"matchfilter/internal/engine"
	"matchfilter/internal/flow"
)

// EngineTrace is the trace profile of the shard-scaling experiment: many
// concurrent flows (so every shard has work), moderate packets, light
// reordering. Scale multiplies the per-flow byte count.
func EngineTrace(scale float64) TraceProfile {
	if scale <= 0 {
		scale = 1
	}
	return TraceProfile{
		Name:      "SHARD",
		Flows:     64,
		FlowBytes: int(float64(64<<10) * scale),
		MSS:       1460,
		OOOProb:   0.01,
		WordProb:  0.008,
		Seed:      131,
	}
}

// EngineScalingResult is one row of the scaling experiment.
type EngineScalingResult struct {
	Set     string
	Shards  int // 0 = the sequential flow.ScanPcap baseline
	// BatchFlows and Layout are set on batched rows: the lockstep width K
	// and the table layout the batched runners used ("classed2", or
	// "classed" when the pair-table build fell back on that set).
	BatchFlows int
	Layout     string
	Throughput
	Matches int64
}

// EngineScaling measures the sharded engine (internal/engine) against the
// sequential scanner on a multi-flow trace, per pattern set, at each
// shard count. The speedup column is relative to the sequential baseline;
// it approaches the core count on parallel hardware and ≈1× on one core
// (the dispatch layer's channel handoff is the residual cost). When
// batchFlows > 1, each shard count is additionally measured with batched
// lockstep scanning (engine.Config.BatchFlows) over the 2-byte-stride
// layout — the DESIGN.md §18 configuration, whose single-core speedup is
// the headline number of that section.
func EngineScaling(w io.Writer, engines []*Engines, profile TraceProfile, shardCounts []int, batchFlows int) ([]EngineScalingResult, error) {
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4, 8}
	}
	fmt.Fprintf(w, "Engine scaling: sharded concurrent scan vs sequential (MFA, trace %s: %d flows x %d KB)\n",
		profile.Name, profile.Flows, profile.FlowBytes>>10)

	var all []EngineScalingResult
	for _, e := range engines {
		pcapBytes, err := SynthesizeTrace(profile, e.Set)
		if err != nil {
			return nil, err
		}
		newRunner := func() flow.Runner { return e.MFA.NewRunner() }

		// Sequential baseline (warmup + measured, as in RunTrace).
		if _, err := flow.ScanPcap(bytes.NewReader(pcapBytes), flow.Config{}, newRunner, nil); err != nil {
			return nil, err
		}
		var seqMatches int64
		start := time.Now()
		seqStats, err := flow.ScanPcap(bytes.NewReader(pcapBytes), flow.Config{}, newRunner,
			func(flow.Match) { seqMatches++ })
		if err != nil {
			return nil, err
		}
		seq := EngineScalingResult{
			Set: e.Set, Shards: 0, Matches: seqMatches,
			Throughput: throughputOf(seqStats.PayloadBytes, time.Since(start), seqMatches),
		}
		all = append(all, seq)

		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "[%s]\tconfig\tMB/s\tCpB\tspeedup\tmatches\n", e.Set)
		fmt.Fprintf(tw, "\tsequential\t%.1f\t%.0f\t1.00x\t%d\n",
			seq.MBps(), seq.CyclesPerByte, seq.Matches)

		for _, shards := range shardCounts {
			cfg := engine.Config{Shards: shards, QueueDepth: 4096}
			// Warmup, then measured.
			if _, err := engine.ScanPcap(bytes.NewReader(pcapBytes), cfg, newRunner, nil); err != nil {
				return nil, err
			}
			start := time.Now()
			st, err := engine.ScanPcap(bytes.NewReader(pcapBytes), cfg, newRunner, nil)
			if err != nil {
				return nil, err
			}
			res := EngineScalingResult{
				Set: e.Set, Shards: shards, Matches: st.Matches,
				Throughput: throughputOf(st.PayloadBytes, time.Since(start), st.Matches),
			}
			all = append(all, res)
			fmt.Fprintf(tw, "\tshards=%d\t%.1f\t%.0f\t%.2fx\t%d\n",
				shards, res.MBps(), res.CyclesPerByte, seq.Elapsed.Seconds()/res.Elapsed.Seconds(), res.Matches)
			if st.Matches != seqMatches {
				return nil, fmt.Errorf("bench: %s shards=%d: %d matches, sequential found %d",
					e.Set, shards, st.Matches, seqMatches)
			}
		}

		if batchFlows > 1 {
			// Batched lockstep rows: same trace, classed2 tables. The match
			// cross-check below is the layout/batching equivalence claim
			// exercised end-to-end at benchmark scale.
			m2, err := compileLayout(e.Set, dfa.LayoutClassed2)
			if err != nil {
				return nil, err
			}
			layout := m2.Stats().DFALayout
			newBatched := func() flow.Runner { return m2.NewRunner() }
			for _, shards := range shardCounts {
				cfg := engine.Config{Shards: shards, QueueDepth: 4096, BatchFlows: batchFlows}
				if _, err := engine.ScanPcap(bytes.NewReader(pcapBytes), cfg, newBatched, nil); err != nil {
					return nil, err
				}
				start := time.Now()
				st, err := engine.ScanPcap(bytes.NewReader(pcapBytes), cfg, newBatched, nil)
				if err != nil {
					return nil, err
				}
				res := EngineScalingResult{
					Set: e.Set, Shards: shards, BatchFlows: batchFlows, Layout: layout, Matches: st.Matches,
					Throughput: throughputOf(st.PayloadBytes, time.Since(start), st.Matches),
				}
				all = append(all, res)
				fmt.Fprintf(tw, "\tshards=%d batch=%d %s\t%.1f\t%.0f\t%.2fx\t%d\n",
					shards, batchFlows, layout, res.MBps(), res.CyclesPerByte,
					seq.Elapsed.Seconds()/res.Elapsed.Seconds(), res.Matches)
				if st.Matches != seqMatches {
					return nil, fmt.Errorf("bench: %s shards=%d batch=%d: %d matches, sequential found %d",
						e.Set, shards, batchFlows, st.Matches, seqMatches)
				}
			}
		}
		if err := tw.Flush(); err != nil {
			return nil, err
		}
	}
	return all, nil
}

// throughputOf fills the common Throughput fields from a measurement.
func throughputOf(bytes int64, elapsed time.Duration, matches int64) Throughput {
	nsPerByte := float64(elapsed.Nanoseconds()) / float64(bytes)
	return Throughput{
		Bytes:         bytes,
		Elapsed:       elapsed,
		MatchEvents:   matches,
		NsPerByte:     nsPerByte,
		CyclesPerByte: nsPerByte * NominalGHz,
	}
}

// MBps is the scan rate in MiB per second.
func (t Throughput) MBps() float64 {
	return float64(t.Bytes) / (1 << 20) / t.Elapsed.Seconds()
}
