package bench

import (
	"bytes"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"matchfilter/internal/flow"
	"matchfilter/internal/nfa"
	"matchfilter/internal/patterns"
	"matchfilter/internal/pcap"
	"matchfilter/internal/trace"
)

// TraceProfile describes one synthesized packet trace. The defaults
// stand in for the paper's real-life captures (DARPA LLx, CDX C1x,
// Nitroba N — see DESIGN.md for the substitution rationale): each profile
// fixes the flow mix, packet sizing, reordering rate and the density of
// rule-related content in the payload.
type TraceProfile struct {
	Name      string
	Flows     int
	FlowBytes int
	MSS       int
	OOOProb   float64
	// WordProb is the per-emission probability of embedding a literal
	// from the pattern set under test, controlling match density.
	WordProb float64
	Seed     int64
}

// DefaultTraces returns the seven profiles used by the Figure 4
// experiment, named after the paper's traces. The DP (LLx) profiles are
// the largest with full-size packets; the CDX (C1x) profiles are smaller
// with more reordering; N is small with short packets. C12 carries a
// much higher match density — the paper singles it out as the trace the
// MFA "performs quite poorly on" because of filter-action pressure.
func DefaultTraces(scale float64) []TraceProfile {
	if scale <= 0 {
		scale = 1
	}
	sz := func(n int) int { return int(float64(n) * scale) }
	return []TraceProfile{
		{Name: "LL1", Flows: 24, FlowBytes: sz(96 << 10), MSS: 1460, OOOProb: 0.01, WordProb: 0.004, Seed: 101},
		{Name: "LL2", Flows: 24, FlowBytes: sz(96 << 10), MSS: 1460, OOOProb: 0.01, WordProb: 0.010, Seed: 102},
		{Name: "LL3", Flows: 32, FlowBytes: sz(64 << 10), MSS: 1024, OOOProb: 0.02, WordProb: 0.006, Seed: 103},
		{Name: "C11", Flows: 16, FlowBytes: sz(48 << 10), MSS: 536, OOOProb: 0.05, WordProb: 0.008, Seed: 111},
		{Name: "C12", Flows: 16, FlowBytes: sz(48 << 10), MSS: 536, OOOProb: 0.05, WordProb: 0.120, Seed: 112},
		{Name: "C13", Flows: 16, FlowBytes: sz(48 << 10), MSS: 536, OOOProb: 0.05, WordProb: 0.015, Seed: 113},
		{Name: "N", Flows: 8, FlowBytes: sz(32 << 10), MSS: 256, OOOProb: 0.03, WordProb: 0.010, Seed: 121},
	}
}

// SynthesizeTrace builds the pcap bytes for a profile against a pattern
// set: flow payloads are protocol-like text salted with the set's own
// literals so partial and full matches occur at the profile's density.
func SynthesizeTrace(p TraceProfile, set string) ([]byte, error) {
	words, err := patterns.AllWords(set)
	if err != nil {
		return nil, err
	}
	payloads := make([][]byte, p.Flows)
	for i := range payloads {
		payloads[i] = trace.TextLike(p.FlowBytes, p.Seed+int64(i)*7919, words, p.WordProb)
	}
	var buf bytes.Buffer
	if err := pcap.Synthesize(&buf, payloads, p.MSS, p.OOOProb, p.Seed); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// TraceResult is one (set, trace, engine) throughput measurement over the
// full pcap path: decode, reassemble, scan.
type TraceResult struct {
	Set    string
	Trace  string
	Engine EngineKind
	Throughput
	Matches int64
}

// flowRunner adapts each engine to the flow.Runner interface.
func (e *Engines) flowRunner(k EngineKind) func() flow.Runner {
	switch k {
	case EngineNFA:
		return func() flow.Runner { return nfaFlowRunner{e.NFA.NewRunner()} }
	case EngineDFA:
		if e.DFA == nil {
			return nil
		}
		return func() flow.Runner { return e.DFA.NewRunner() }
	case EngineHFA:
		return func() flow.Runner { return e.HFA.NewRunner() }
	case EngineXFA:
		return func() flow.Runner { return e.XFA.NewRunner() }
	case EngineMFA:
		return func() flow.Runner { return e.MFA.NewRunner() }
	default:
		return nil
	}
}

// nfaFlowRunner adapts the NFA runner's int match ids to the flow
// interface's int32.
type nfaFlowRunner struct{ r *nfa.Runner }

func (a nfaFlowRunner) Feed(data []byte, fn func(id int32, pos int64)) {
	a.r.Feed(data, func(id int, pos int64) { fn(int32(id), pos) })
}

func (a nfaFlowRunner) Reset() { a.r.Reset() }

// RunTrace scans one synthesized pcap with one engine and measures
// cycles per payload byte (the Figure 4 metric: cycles divided by the
// payload size of the packets).
func (e *Engines) RunTrace(profile TraceProfile, pcapBytes []byte, k EngineKind) (TraceResult, bool) {
	newRunner := e.flowRunner(k)
	if newRunner == nil {
		return TraceResult{}, false
	}
	var matches int64
	onMatch := func(flow.Match) { matches++ }

	// Warmup pass (untimed), then the measured pass.
	if _, err := flow.ScanPcap(bytes.NewReader(pcapBytes), flow.Config{}, newRunner, nil); err != nil {
		return TraceResult{}, false
	}
	matches = 0
	start := time.Now()
	stats, err := flow.ScanPcap(bytes.NewReader(pcapBytes), flow.Config{}, newRunner, onMatch)
	if err != nil {
		return TraceResult{}, false
	}
	elapsed := time.Since(start)
	nsPerByte := float64(elapsed.Nanoseconds()) / float64(stats.PayloadBytes)
	return TraceResult{
		Set:    e.Set,
		Trace:  profile.Name,
		Engine: k,
		Throughput: Throughput{
			Bytes:         stats.PayloadBytes,
			Elapsed:       elapsed,
			MatchEvents:   matches,
			NsPerByte:     nsPerByte,
			CyclesPerByte: nsPerByte * NominalGHz,
		},
		Matches: matches,
	}, true
}

// Figure4 runs every engine over every trace for the given engines and
// renders the CpB matrix. It returns the raw results for further
// analysis.
func Figure4(w io.Writer, engines []*Engines, profiles []TraceProfile) ([]TraceResult, error) {
	fmt.Fprintln(w, "Figure 4: Throughput on packet traces (cycles per payload byte,")
	fmt.Fprintf(w, "          CpB = ns/B x %.1f GHz nominal; see EXPERIMENTS.md)\n", NominalGHz)

	var all []TraceResult
	for _, e := range engines {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "[%s]\ttrace\tNFA\tDFA\tHFA\tXFA\tMFA\tmatches(MFA)\n", e.Set)
		for _, p := range profiles {
			pcapBytes, err := SynthesizeTrace(p, e.Set)
			if err != nil {
				return nil, err
			}
			row := fmt.Sprintf("\t%s", p.Name)
			var mfaMatches int64
			for _, k := range AllEngines {
				res, ok := e.RunTrace(p, pcapBytes, k)
				if !ok {
					row += "\t—"
					continue
				}
				all = append(all, res)
				row += fmt.Sprintf("\t%.0f", res.CyclesPerByte)
				if k == EngineMFA {
					mfaMatches = res.Matches
				}
			}
			fmt.Fprintf(tw, "%s\t%d\n", row, mfaMatches)
		}
		if err := tw.Flush(); err != nil {
			return nil, err
		}
	}

	// Per-engine means, the numbers quoted in §V-D prose.
	fmt.Fprintln(w, "per-engine mean CpB (paper: DFA 19, MFA 49, XFA ~125, NFA ~130, HFA ~360):")
	for _, k := range AllEngines {
		var sum float64
		var n int
		for _, r := range all {
			if r.Engine == k {
				sum += r.CyclesPerByte
				n++
			}
		}
		if n > 0 {
			fmt.Fprintf(w, "  %s: %.0f CpB over %d runs\n", k, sum/float64(n), n)
		}
	}
	return all, nil
}
