package bench

import (
	"bytes"
	"strings"
	"testing"
)

// buildC8 builds the smallest pattern set once per test binary.
var builtC8 *Engines

func c8Engines(t *testing.T) *Engines {
	t.Helper()
	if builtC8 == nil {
		e, err := Build("C8")
		if err != nil {
			t.Fatal(err)
		}
		builtC8 = e
	}
	return builtC8
}

func TestBuildProducesAllEngines(t *testing.T) {
	e := c8Engines(t)
	if e.NFA == nil || e.DFA == nil || e.HFA == nil || e.XFA == nil || e.MFA == nil {
		t.Fatal("all five engines should construct for C8")
	}
	if len(e.Results) != 5 {
		t.Fatalf("results: %d", len(e.Results))
	}
	for _, k := range AllEngines {
		r, ok := e.Result(k)
		if !ok || r.Failed {
			t.Errorf("%v: %+v", k, r)
		}
		if r.States <= 0 || r.ImageBytes <= 0 || r.BuildTime <= 0 {
			t.Errorf("%v: incomplete result %+v", k, r)
		}
	}
}

func TestImageSizeOrdering(t *testing.T) {
	// The Figure 2 shape on a constructible set: NFA smallest-ish,
	// MFA < HFA < DFA.
	e := c8Engines(t)
	get := func(k EngineKind) int {
		r, _ := e.Result(k)
		return r.ImageBytes
	}
	mfa, hfa, dfaSz := get(EngineMFA), get(EngineHFA), get(EngineDFA)
	if !(mfa < hfa && hfa < dfaSz) {
		t.Errorf("image ordering MFA(%d) < HFA(%d) < DFA(%d) violated", mfa, hfa, dfaSz)
	}
}

func TestEnginesAgreeOnTrace(t *testing.T) {
	// All five engines must report the same number of confirmed matches
	// on the same pcap — the Figure 4 inputs double as an equivalence
	// check at packet scale.
	e := c8Engines(t)
	profile := DefaultTraces(0.05)[1] // LL2, scaled down
	pcapBytes, err := SynthesizeTrace(profile, "C8")
	if err != nil {
		t.Fatal(err)
	}
	counts := map[EngineKind]int64{}
	for _, k := range AllEngines {
		res, ok := e.RunTrace(profile, pcapBytes, k)
		if !ok {
			t.Fatalf("%v: trace run failed", k)
		}
		counts[k] = res.Matches
		if res.Bytes == 0 || res.NsPerByte <= 0 {
			t.Errorf("%v: empty measurement %+v", k, res.Throughput)
		}
	}
	// NFA reports raw per-rule events identically to DFA; HFA/XFA/MFA
	// report confirmed matches. All five must agree because the rule
	// semantics are identical.
	for _, k := range AllEngines {
		if counts[k] != counts[EngineMFA] {
			t.Errorf("match counts diverge: %v", counts)
			break
		}
	}
	if counts[EngineMFA] == 0 {
		t.Error("trace should contain matches (word salting)")
	}
}

func TestTableIRendering(t *testing.T) {
	var buf bytes.Buffer
	if err := TableI(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table I", "R1", "R2", "ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestConstructionReportRendering(t *testing.T) {
	e := c8Engines(t)
	engines := []*Engines{e}

	var buf bytes.Buffer
	if err := TableV(&buf, engines); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "C8") || !strings.Contains(buf.String(), "MFA Qs") {
		t.Errorf("TableV output:\n%s", buf.String())
	}

	buf.Reset()
	if err := Figure2(&buf, engines); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Memory image sizes") {
		t.Errorf("Figure2 output:\n%s", buf.String())
	}

	buf.Reset()
	if err := Figure3(&buf, engines); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Construction times") {
		t.Errorf("Figure3 output:\n%s", buf.String())
	}
}

func TestFigure4SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("trace scan")
	}
	e := c8Engines(t)
	var buf bytes.Buffer
	profiles := DefaultTraces(0.02)[:2]
	results, err := Figure4(&buf, []*Engines{e}, profiles)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2*len(AllEngines) {
		t.Fatalf("results: %d", len(results))
	}
	if !strings.Contains(buf.String(), "per-engine mean CpB") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestFigure5SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("synthetic scan")
	}
	e := c8Engines(t)
	var buf bytes.Buffer
	results, err := Figure5(&buf, []*Engines{e}, 64<<10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(AllEngines)*len(PaperPMs) {
		t.Fatalf("results: %d", len(results))
	}
	out := buf.String()
	for _, want := range []string{"rand", "pM=0.95", "degradation"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSyntheticDifficultyIncreasesMatches(t *testing.T) {
	if testing.Short() {
		t.Skip("synthetic scan")
	}
	e := c8Engines(t)
	low, _ := e.RunSynthetic(EngineMFA, 0.35, 256<<10, 9)
	high, _ := e.RunSynthetic(EngineMFA, 0.95, 256<<10, 9)
	if high.MatchEvents < low.MatchEvents {
		t.Errorf("pM=0.95 should produce at least as many events: %d vs %d",
			high.MatchEvents, low.MatchEvents)
	}
}

func TestMeasure(t *testing.T) {
	calls := 0
	fn := func(data []byte) int64 { calls++; return int64(len(data)) }
	tp := Measure(fn, make([]byte, 1000))
	if calls != 2 {
		t.Errorf("want warmup+measured calls, got %d", calls)
	}
	if tp.Bytes != 1000 || tp.MatchEvents != 1000 || tp.NsPerByte <= 0 {
		t.Errorf("throughput: %+v", tp)
	}
	if tp.CyclesPerByte != tp.NsPerByte*NominalGHz {
		t.Error("CpB conversion")
	}
}

func TestEngineKindString(t *testing.T) {
	names := map[EngineKind]string{
		EngineNFA: "NFA", EngineDFA: "DFA", EngineHFA: "HFA",
		EngineXFA: "XFA", EngineMFA: "MFA", EngineKind(99): "Engine(99)",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d: %q", int(k), k.String())
		}
	}
}

func TestActiveStatesReport(t *testing.T) {
	e := c8Engines(t)
	var buf bytes.Buffer
	rows, err := ActiveStates(&buf, []*Engines{e}, 32<<10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Set != "C8" {
		t.Fatalf("rows: %+v", rows)
	}
	if rows[0].MeanActive <= 0 || rows[0].MaxActive < int(rows[0].MeanActive) {
		t.Errorf("active stats: %+v", rows[0])
	}
	if !strings.Contains(buf.String(), "active-state") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestEnginesAgreeAcrossSets(t *testing.T) {
	// Cross-engine agreement on a second, structurally different set
	// (C10: short words, heavy multi-dot-star) over a match-dense trace.
	if testing.Short() {
		t.Skip("builds a full engine family")
	}
	e, err := Build("C10")
	if err != nil {
		t.Fatal(err)
	}
	profile := DefaultTraces(0.05)[4] // C12: highest match density
	pcapBytes, err := SynthesizeTrace(profile, "C10")
	if err != nil {
		t.Fatal(err)
	}
	counts := map[EngineKind]int64{}
	for _, k := range AllEngines {
		res, ok := e.RunTrace(profile, pcapBytes, k)
		if !ok {
			t.Fatalf("%v unavailable", k)
		}
		counts[k] = res.Matches
	}
	for _, k := range AllEngines {
		if counts[k] != counts[EngineMFA] {
			t.Fatalf("match counts diverge: %v", counts)
		}
	}
	if counts[EngineMFA] == 0 {
		t.Error("dense trace should match")
	}
}
