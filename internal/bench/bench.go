// Package bench is the experiment harness: for every table and figure in
// the paper's evaluation (§V) it regenerates the corresponding rows or
// series — Table I (state-count ratio), Table V (set properties),
// Figure 2 (memory image sizes), Figure 3 (construction times), Figure 4
// (throughput on packet traces) and Figure 5 (throughput vs. synthetic
// maliciousness). Absolute numbers differ from the paper (synthetic
// pattern sets, Go implementation, wall-clock timing); EXPERIMENTS.md
// records the shape comparisons that are expected to hold.
package bench

import (
	"errors"
	"fmt"
	"time"

	"matchfilter/internal/core"
	"matchfilter/internal/dfa"
	"matchfilter/internal/hfa"
	"matchfilter/internal/nfa"
	"matchfilter/internal/patterns"
	"matchfilter/internal/xfa"
)

// NominalGHz converts measured ns/byte into the paper's cycles-per-byte
// unit. The paper measured rdtsc cycles on an i7-4500U; Go has no
// portable cycle counter, so CpB here is ns/byte × NominalGHz. Shape
// comparisons (ratios between engines) are unaffected by the constant.
const NominalGHz = 3.0

// EngineKind identifies one of the five compared algorithms.
type EngineKind int

// The five engines of the paper's evaluation.
const (
	EngineNFA EngineKind = iota + 1
	EngineDFA
	EngineHFA
	EngineXFA
	EngineMFA
)

// AllEngines lists the engines in the paper's presentation order.
var AllEngines = []EngineKind{EngineNFA, EngineDFA, EngineHFA, EngineXFA, EngineMFA}

func (k EngineKind) String() string {
	switch k {
	case EngineNFA:
		return "NFA"
	case EngineDFA:
		return "DFA"
	case EngineHFA:
		return "HFA"
	case EngineXFA:
		return "XFA"
	case EngineMFA:
		return "MFA"
	default:
		return fmt.Sprintf("Engine(%d)", int(k))
	}
}

// BuildResult records one (set, engine) construction outcome.
type BuildResult struct {
	Set        string
	Engine     EngineKind
	States     int
	ImageBytes int
	BuildTime  time.Duration
	// Failed is true when construction exceeded its state budget — the
	// Table V "—" entry for B217p's DFA.
	Failed bool
}

// Engines bundles every constructed engine for one pattern set. DFA is
// nil when its construction failed.
type Engines struct {
	Set   string
	Rules []patterns.Rule
	NFA   *nfa.Engine
	DFA   *dfa.Engine
	HFA   *hfa.HFA
	XFA   *xfa.XFA
	MFA   *core.MFA

	Results []BuildResult
}

// Build constructs all five engines for a named pattern set, recording
// per-engine states, image sizes and construction times.
func Build(set string) (*Engines, error) {
	rules, err := patterns.Load(set)
	if err != nil {
		return nil, err
	}
	e := &Engines{Set: set, Rules: rules}

	// NFA.
	nfaRules := make([]nfa.Rule, len(rules))
	for i, r := range rules {
		nfaRules[i] = nfa.Rule{Pattern: r.Pattern, MatchID: int(r.ID)}
	}
	start := time.Now()
	n, err := nfa.Build(nfaRules)
	if err != nil {
		return nil, fmt.Errorf("bench: %s NFA: %w", set, err)
	}
	e.NFA = nfa.NewEngine(n)
	e.Results = append(e.Results, BuildResult{
		Set: set, Engine: EngineNFA,
		States:     n.NumStates(),
		ImageBytes: n.MemoryImageBytes(),
		BuildTime:  time.Since(start),
	})

	// DFA (may exceed its budget). The baseline keeps the paper's flat
	// one-load-per-byte table; the flat-vs-classed comparison is its own
	// experiment (layout.go), not a change to the Figure 2–5 baselines.
	start = time.Now()
	d, err := dfa.FromNFA(n, dfa.Options{Layout: dfa.LayoutFlat})
	switch {
	case errors.Is(err, dfa.ErrTooManyStates):
		e.Results = append(e.Results, BuildResult{
			Set: set, Engine: EngineDFA, Failed: true, BuildTime: time.Since(start),
		})
	case err != nil:
		return nil, fmt.Errorf("bench: %s DFA: %w", set, err)
	default:
		e.DFA = dfa.NewEngine(d)
		e.Results = append(e.Results, BuildResult{
			Set: set, Engine: EngineDFA,
			States:     d.NumStates(),
			ImageBytes: d.MemoryImageBytes(),
			BuildTime:  time.Since(start),
		})
	}

	// HFA.
	hfaRules := make([]hfa.Rule, len(rules))
	for i, r := range rules {
		hfaRules[i] = hfa.Rule{Pattern: r.Pattern, ID: r.ID}
	}
	h, err := hfa.Compile(hfaRules, hfa.Options{})
	if err != nil {
		return nil, fmt.Errorf("bench: %s HFA: %w", set, err)
	}
	e.HFA = h
	e.Results = append(e.Results, BuildResult{
		Set: set, Engine: EngineHFA,
		States:     h.NumStates(),
		ImageBytes: h.MemoryImageBytes(),
		BuildTime:  h.Stats().BuildTime,
	})

	// XFA.
	xfaRules := make([]xfa.Rule, len(rules))
	for i, r := range rules {
		xfaRules[i] = xfa.Rule{Pattern: r.Pattern, ID: r.ID}
	}
	x, err := xfa.Compile(xfaRules, xfa.Options{})
	if err != nil {
		return nil, fmt.Errorf("bench: %s XFA: %w", set, err)
	}
	e.XFA = x
	e.Results = append(e.Results, BuildResult{
		Set: set, Engine: EngineXFA,
		States:     x.NumStates(),
		ImageBytes: x.MemoryImageBytes(),
		BuildTime:  x.Stats().BuildTime,
	})

	// MFA.
	coreRules := make([]core.Rule, len(rules))
	for i, r := range rules {
		coreRules[i] = core.Rule{Pattern: r.Pattern, ID: r.ID}
	}
	m, err := core.Compile(coreRules, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("bench: %s MFA: %w", set, err)
	}
	e.MFA = m
	e.Results = append(e.Results, BuildResult{
		Set: set, Engine: EngineMFA,
		States:     m.Stats().DFAStates,
		ImageBytes: m.Stats().MemoryImageBytes(),
		BuildTime:  m.Stats().BuildTime,
	})
	return e, nil
}

// Result returns the build result for one engine.
func (e *Engines) Result(k EngineKind) (BuildResult, bool) {
	for _, r := range e.Results {
		if r.Engine == k {
			return r, true
		}
	}
	return BuildResult{}, false
}

// Throughput is one measured scan.
type Throughput struct {
	Bytes         int64
	Elapsed       time.Duration
	MatchEvents   int64
	NsPerByte     float64
	CyclesPerByte float64
}

// FeedFunc scans one payload from a fresh context and returns the number
// of match events. Each engine exposes one through feeders().
type FeedFunc func(data []byte) int64

// Measure times fn over data with one untimed warmup pass.
func Measure(fn FeedFunc, data []byte) Throughput {
	fn(data) // warmup: page in tables, train branch predictors
	start := time.Now()
	events := fn(data)
	elapsed := time.Since(start)
	nsPerByte := float64(elapsed.Nanoseconds()) / float64(len(data))
	return Throughput{
		Bytes:         int64(len(data)),
		Elapsed:       elapsed,
		MatchEvents:   events,
		NsPerByte:     nsPerByte,
		CyclesPerByte: nsPerByte * NominalGHz,
	}
}

// Feeder returns a fresh-context scan function for the given engine, or
// nil when that engine is unavailable (failed DFA).
func (e *Engines) Feeder(k EngineKind) FeedFunc {
	switch k {
	case EngineNFA:
		return func(data []byte) int64 {
			r := e.NFA.NewRunner()
			var n int64
			r.Feed(data, func(int, int64) { n++ })
			return n
		}
	case EngineDFA:
		if e.DFA == nil {
			return nil
		}
		return func(data []byte) int64 {
			return e.DFA.NewRunner().FeedCount(data)
		}
	case EngineHFA:
		return func(data []byte) int64 {
			return e.HFA.NewRunner().FeedCount(data)
		}
	case EngineXFA:
		return func(data []byte) int64 {
			return e.XFA.NewRunner().FeedCount(data)
		}
	case EngineMFA:
		return func(data []byte) int64 {
			return e.MFA.NewRunner().FeedCount(data)
		}
	default:
		return nil
	}
}
