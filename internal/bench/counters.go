package bench

import (
	"errors"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"matchfilter/internal/core"
	"matchfilter/internal/dfa"
	"matchfilter/internal/patterns"
	"matchfilter/internal/splitter"
)

// CounterSets are the pattern sets of the counter-register experiment
// (DESIGN.md §19): CTR8 builds under both encodings, CTR24 only under
// counters.
var CounterSets = patterns.CounterNames()

// CounterResult is one (set, encoding) build-and-measure outcome of the
// bounded-repeat experiment. Mode is "expanded" (bounded repeats
// state-expanded into the automaton) or "counters" (compiled to filter
// counter registers). A Failed row records an expansion that exceeded
// the DFA state budget — the acalculia failure the counter machine
// exists to fix — and carries no sizes or throughput.
type CounterResult struct {
	Set        string
	Mode       string
	Failed     bool
	States     int
	ImageBytes int
	Counters   int
	BuildTime  time.Duration
	Throughput Throughput
}

// compileCounterMode builds one set's MFA with bounded repeats either
// expanded or compiled to counters.
func compileCounterMode(set string, counters bool) (*core.MFA, error) {
	rules, err := patterns.Load(set)
	if err != nil {
		return nil, err
	}
	coreRules := make([]core.Rule, len(rules))
	for i, r := range rules {
		coreRules[i] = core.Rule{Pattern: r.Pattern, ID: r.ID}
	}
	var opts core.Options
	if counters {
		opts.Splitter = splitter.Options{EnableCounters: true}
	}
	return core.Compile(coreRules, opts)
}

// MeasureCounters builds one set both ways and measures scan throughput
// over the set's text-like payload. An expansion that exceeds the state
// budget yields a Failed "expanded" row; any other build error aborts.
func MeasureCounters(set string, bytesN int, seed int64) ([]CounterResult, error) {
	payload, err := layoutPayload(set, bytesN, seed)
	if err != nil {
		return nil, err
	}
	var out []CounterResult
	for _, mode := range []string{"expanded", "counters"} {
		start := time.Now()
		m, err := compileCounterMode(set, mode == "counters")
		build := time.Since(start)
		if mode == "expanded" && errors.Is(err, dfa.ErrTooManyStates) {
			out = append(out, CounterResult{Set: set, Mode: mode, Failed: true, BuildTime: build})
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("bench: %s %s MFA: %w", set, mode, err)
		}
		st := m.Stats()
		out = append(out, CounterResult{
			Set:        set,
			Mode:       mode,
			States:     st.DFAStates,
			ImageBytes: st.MemoryImageBytes(),
			Counters:   st.Counters,
			BuildTime:  st.BuildTime,
			Throughput: Measure(func(data []byte) int64 { return m.NewRunner().FeedCount(data) }, payload),
		})
	}
	return out, nil
}

// CounterComparison runs the bounded-repeat experiment over the given
// sets (default CounterSets) and renders the size/throughput table that
// EXPERIMENTS.md discusses: counter registers vs state expansion for
// X{n,m} gaps.
func CounterComparison(w io.Writer, sets []string, bytesN int, seed int64) ([]CounterResult, error) {
	if len(sets) == 0 {
		sets = CounterSets
	}
	fmt.Fprintln(w, "Bounded repeats X{n,m}: counter registers vs state expansion")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Set\tencoding\tstates\timage\tcounters\tbuild\tMB/s")
	var all []CounterResult
	for _, set := range sets {
		rows, err := MeasureCounters(set, bytesN, seed)
		if err != nil {
			return nil, err
		}
		all = append(all, rows...)
		for _, r := range rows {
			if r.Failed {
				fmt.Fprintf(tw, "%s\t%s\t—\t—\t—\t—\t—\n", r.Set, r.Mode)
				continue
			}
			fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%v\t%.0f\n",
				r.Set, r.Mode, r.States, r.ImageBytes, r.Counters,
				r.BuildTime.Round(time.Millisecond), r.Throughput.MBps())
		}
	}
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "(— marks an expansion that exceeded the DFA state budget: the set is")
	fmt.Fprintln(w, " unbuildable without counter registers. Same match stream either way —")
	fmt.Fprintln(w, " see the counter equivalence tests in internal/core.)")
	return all, nil
}
