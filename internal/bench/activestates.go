package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"matchfilter/internal/trace"
)

// ActiveStatesRow summarizes NFA active-set sizes for one pattern set,
// the quantity §V-D uses to explain the bimodal NFA throughput: "the
// number of active NFA states is about 10 times higher when matching the
// B217p pattern than others".
type ActiveStatesRow struct {
	Set        string
	MeanActive float64
	MaxActive  int
	CpB        float64
}

// ActiveStates measures, per pattern set, the mean and peak NFA active-set
// size over a sample of difficulty-0.55 traffic, together with the NFA's
// cycles per byte — making the §V-D correlation directly visible.
func ActiveStates(w io.Writer, engines []*Engines, sampleBytes int, seed int64) ([]ActiveStatesRow, error) {
	fmt.Fprintln(w, "NFA active-state analysis (explains Fig. 4's bimodal NFA results, §V-D)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Set\tmean active\tpeak active\tNFA CpB")

	rows := make([]ActiveStatesRow, 0, len(engines))
	for _, e := range engines {
		data := trace.NewGenerator(e.MFA.DFA(), seed).Generate(nil, sampleBytes, 0.55)

		r := e.NFA.NewRunner()
		var sum int64
		maxActive := 0
		const stride = 64 // sample the active-set size periodically
		samples := 0
		for off := 0; off < len(data); off += stride {
			end := off + stride
			if end > len(data) {
				end = len(data)
			}
			r.Feed(data[off:end], nil)
			n := r.ActiveStates()
			sum += int64(n)
			samples++
			if n > maxActive {
				maxActive = n
			}
		}

		tp := Measure(e.Feeder(EngineNFA), data)
		row := ActiveStatesRow{
			Set:        e.Set,
			MeanActive: float64(sum) / float64(samples),
			MaxActive:  maxActive,
			CpB:        tp.CyclesPerByte,
		}
		rows = append(rows, row)
		fmt.Fprintf(tw, "%s\t%.1f\t%d\t%.0f\n", row.Set, row.MeanActive, row.MaxActive, row.CpB)
	}
	return rows, tw.Flush()
}
