// Machine-readable benchmark output (-json). The tabular experiments
// stay human-oriented; this file flattens the raw rows the experiments
// already return into one uniform record shape so scripted consumers
// (regression dashboards, jq one-liners in CI) never parse the tables.
package bench

import (
	"io"

	"matchfilter/internal/telemetry"
)

// JSONRow is one flattened measurement. Fields that do not apply to a
// given experiment are omitted; every throughput-bearing row carries the
// same four derived columns so rows are comparable across experiments.
type JSONRow struct {
	Experiment string `json:"experiment"`
	Set        string `json:"set"`
	Engine     string `json:"engine,omitempty"`
	Trace      string `json:"trace,omitempty"`
	// Shards is set on engine-scaling rows; 0 is the sequential
	// flow-scanner baseline, hence the pointer (0 must still render).
	Shards *int `json:"shards,omitempty"`
	// PM is the Becchi traffic-difficulty knob for fig5 rows; -1 marks
	// the uniform-random baseline trace.
	PM *float64 `json:"p_m,omitempty"`

	Bytes         int64   `json:"bytes,omitempty"`
	ElapsedNs     int64   `json:"elapsed_ns,omitempty"`
	NsPerByte     float64 `json:"ns_per_byte,omitempty"`
	CyclesPerByte float64 `json:"cycles_per_byte,omitempty"`
	MBPerSec      float64 `json:"mb_per_s,omitempty"`
	Matches       int64   `json:"matches,omitempty"`

	// Active-state analysis columns (experiment "active").
	MeanActive float64 `json:"mean_active,omitempty"`
	MaxActive  int     `json:"max_active,omitempty"`

	// Table-layout columns (experiment "layout"): the layout under
	// measurement, its transition-table image size and, for classed rows,
	// the byte equivalence-class count. BatchK is the lockstep width on
	// batched rows (layout and engine experiments); 1 is the single-lane
	// path through the batcher, hence the pointer (1 must still render).
	Layout     string `json:"layout,omitempty"`
	TableBytes int    `json:"table_bytes,omitempty"`
	Classes    int    `json:"classes,omitempty"`
	BatchK     *int   `json:"batch_k,omitempty"`

	// Counter-experiment columns (experiment "counters"): the
	// bounded-repeat encoding under measurement ("expanded" or
	// "counters"), automaton and image sizes, the number of counter
	// registers, and build time. Failed marks an expansion that exceeded
	// the DFA state budget — such rows carry no sizes or throughput.
	Mode        string `json:"mode,omitempty"`
	States      int    `json:"states,omitempty"`
	ImageBytes  int    `json:"image_bytes,omitempty"`
	Counters    int    `json:"counters,omitempty"`
	BuildTimeNs int64  `json:"build_time_ns,omitempty"`
	Failed      bool   `json:"failed,omitempty"`
}

// JSONReport accumulates rows across the experiments of one mfabench run
// and is written as a single document by Write.
type JSONReport struct {
	Rows []JSONRow `json:"rows"`
}

func (r *JSONReport) throughputRow(experiment, set string, t Throughput) JSONRow {
	return JSONRow{
		Experiment:    experiment,
		Set:           set,
		Bytes:         t.Bytes,
		ElapsedNs:     t.Elapsed.Nanoseconds(),
		NsPerByte:     t.NsPerByte,
		CyclesPerByte: t.CyclesPerByte,
		MBPerSec:      t.MBps(),
	}
}

// AddTraces appends Figure 4 rows (experiment "fig4").
func (r *JSONReport) AddTraces(results []TraceResult) {
	for _, tr := range results {
		row := r.throughputRow("fig4", tr.Set, tr.Throughput)
		row.Engine = tr.Engine.String()
		row.Trace = tr.Trace
		row.Matches = tr.Matches
		r.Rows = append(r.Rows, row)
	}
}

// AddSynthetic appends Figure 5 rows (experiment "fig5").
func (r *JSONReport) AddSynthetic(results []SyntheticResult) {
	for _, sr := range results {
		row := r.throughputRow("fig5", sr.Set, sr.Throughput)
		row.Engine = sr.Engine.String()
		pm := sr.PM
		row.PM = &pm
		row.Matches = sr.MatchEvents
		r.Rows = append(r.Rows, row)
	}
}

// AddActiveStates appends active-state analysis rows (experiment
// "active").
func (r *JSONReport) AddActiveStates(rows []ActiveStatesRow) {
	for _, ar := range rows {
		r.Rows = append(r.Rows, JSONRow{
			Experiment:    "active",
			Set:           ar.Set,
			Engine:        EngineNFA.String(),
			CyclesPerByte: ar.CpB,
			MeanActive:    ar.MeanActive,
			MaxActive:     ar.MaxActive,
		})
	}
}

// AddEngineScaling appends shard-scaling rows (experiment "engine").
// Shards 0 is the sequential flow-scanner baseline.
func (r *JSONReport) AddEngineScaling(results []EngineScalingResult) {
	for _, er := range results {
		row := r.throughputRow("engine", er.Set, er.Throughput)
		row.Engine = EngineMFA.String()
		shards := er.Shards
		row.Shards = &shards
		row.Matches = er.Matches
		if er.BatchFlows > 0 {
			k := er.BatchFlows
			row.BatchK = &k
			row.Layout = er.Layout
		}
		r.Rows = append(r.Rows, row)
	}
}

// AddLayout appends table-layout rows (experiment "layout"): one
// single-flow row per (set, layout) — the classed2 row reports the layout
// the build actually produced, so a fallback set emits a second
// "classed" row rather than a fictitious "classed2" one — plus one
// batched row per (set, layout, K) lockstep measurement.
func (r *JSONReport) AddLayout(results []LayoutResult) {
	for _, lr := range results {
		flat := r.throughputRow("layout", lr.Set, lr.Flat)
		flat.Engine = EngineMFA.String()
		flat.Layout = "flat"
		flat.TableBytes = lr.FlatTableBytes
		r.Rows = append(r.Rows, flat)

		classed := r.throughputRow("layout", lr.Set, lr.Classed)
		classed.Engine = EngineMFA.String()
		classed.Layout = "classed"
		classed.TableBytes = lr.ClassedTableBytes
		classed.Classes = lr.Classes
		r.Rows = append(r.Rows, classed)

		classed2 := r.throughputRow("layout", lr.Set, lr.Classed2)
		classed2.Engine = EngineMFA.String()
		classed2.Layout = lr.Classed2Layout
		classed2.TableBytes = lr.Classed2TableBytes
		classed2.Classes = lr.Classes
		r.Rows = append(r.Rows, classed2)

		for _, bt := range lr.Batched {
			row := r.throughputRow("layout", lr.Set, bt.Throughput)
			row.Engine = EngineMFA.String()
			row.Layout = bt.Layout
			k := bt.K
			row.BatchK = &k
			r.Rows = append(r.Rows, row)
		}
	}
}

// AddCounters appends bounded-repeat experiment rows (experiment
// "counters"): one row per (set, encoding), including the Failed row of
// an expansion-infeasible set.
func (r *JSONReport) AddCounters(results []CounterResult) {
	for _, cr := range results {
		var row JSONRow
		if cr.Failed {
			// No measurement happened: a zero Throughput would derive
			// NaN columns (0/0), which JSON cannot carry.
			row = JSONRow{Experiment: "counters", Set: cr.Set}
		} else {
			row = r.throughputRow("counters", cr.Set, cr.Throughput)
		}
		row.Engine = EngineMFA.String()
		row.Mode = cr.Mode
		row.States = cr.States
		row.ImageBytes = cr.ImageBytes
		row.Counters = cr.Counters
		row.BuildTimeNs = cr.BuildTime.Nanoseconds()
		row.Failed = cr.Failed
		r.Rows = append(r.Rows, row)
	}
}

// Write renders the report through the telemetry JSON writer so all
// machine-readable surfaces in the repository format alike.
func (r *JSONReport) Write(w io.Writer) error {
	if r.Rows == nil {
		r.Rows = []JSONRow{} // an empty run still yields a valid document
	}
	return telemetry.WriteJSONValue(w, r)
}
