package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"matchfilter/internal/dfa"
	"matchfilter/internal/nfa"
	"matchfilter/internal/patterns"
	"matchfilter/internal/regexparse"
)

// BuildAll constructs every engine for each named set (all seven Table V
// sets when sets is empty).
func BuildAll(sets []string) ([]*Engines, error) {
	if len(sets) == 0 {
		sets = patterns.Names()
	}
	out := make([]*Engines, 0, len(sets))
	for _, s := range sets {
		e, err := Build(s)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// TableI reproduces the paper's Table I: the DFA state counts of the
// related rule sets R1 (three dot-star regexes) and R2 (their seven split
// segments). The paper reports 106 vs 23.
func TableI(w io.Writer) error {
	r1 := []string{"vi.*emacs", "bsd.*gnu", "abc.*mm?o.*xyz"}
	r2 := []string{"emacs", "gnu", "xyz", "vi", "bsd", "abc", "mm?o"}
	count := func(sources []string) (int, error) {
		rules := make([]nfa.Rule, len(sources))
		for i, src := range sources {
			p, err := regexparse.Parse(src)
			if err != nil {
				return 0, err
			}
			rules[i] = nfa.Rule{Pattern: p, MatchID: i + 1}
		}
		n, err := nfa.Build(rules)
		if err != nil {
			return 0, err
		}
		d, err := dfa.FromNFA(n, dfa.Options{Minimize: true})
		if err != nil {
			return 0, err
		}
		return d.NumStates(), nil
	}
	q1, err := count(r1)
	if err != nil {
		return err
	}
	q2, err := count(r2)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table I: Related regular expressions and # DFA states")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Id\tRegex\t# Qs\tpaper")
	fmt.Fprintf(tw, "R1\tvi.*emacs | bsd.*gnu | abc.*mm?o.*xyz\t%d\t106\n", q1)
	fmt.Fprintf(tw, "R2\temacs | gnu | xyz | vi | bsd | abc | mm?o\t%d\t23\n", q2)
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "ratio: %.1fx (paper: 4.6x)\n", float64(q1)/float64(q2))
	return nil
}

// TableV renders the pattern-set properties table: rule count, NFA
// states, DFA states (— on budget failure) and MFA states.
func TableV(w io.Writer, engines []*Engines) error {
	fmt.Fprintln(w, "Table V: RegEx set properties")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Set\tRegExes\tNFA Qs\tDFA Qs\tMFA Qs")
	for _, e := range engines {
		nfaR, _ := e.Result(EngineNFA)
		dfaR, _ := e.Result(EngineDFA)
		mfaR, _ := e.Result(EngineMFA)
		dfaCol := fmt.Sprintf("%d", dfaR.States)
		if dfaR.Failed {
			dfaCol = "—"
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%d\n",
			e.Set, len(e.Rules), nfaR.States, dfaCol, mfaR.States)
	}
	return tw.Flush()
}

// Figure2 renders memory image sizes in MB per (set, engine), the
// paper's Fig. 2 matrix, plus the MFA filter fraction the paper reports
// as averaging under 0.2%.
func Figure2(w io.Writer, engines []*Engines) error {
	fmt.Fprintln(w, "Figure 2: Memory image sizes (MB)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Pattern\tNFA\tDFA\tHFA\tXFA\tMFA\tHFA/MFA")
	var ratioSum float64
	var ratioN int
	for _, e := range engines {
		row := fmt.Sprintf("%s", e.Set)
		var hfaMB, mfaMB float64
		for _, k := range AllEngines {
			r, ok := e.Result(k)
			switch {
			case !ok || r.Failed:
				row += "\t—"
			default:
				mb := float64(r.ImageBytes) / (1 << 20)
				row += fmt.Sprintf("\t%.2f", mb)
				if k == EngineHFA {
					hfaMB = mb
				}
				if k == EngineMFA {
					mfaMB = mb
				}
			}
		}
		if mfaMB > 0 {
			ratio := hfaMB / mfaMB
			ratioSum += ratio
			ratioN++
			row += fmt.Sprintf("\t%.1fx", ratio)
		}
		fmt.Fprintln(tw, row)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if ratioN > 0 {
		fmt.Fprintf(w, "mean HFA/MFA image ratio: %.1fx (paper: ~30x)\n", ratioSum/float64(ratioN))
	}
	for _, e := range engines {
		st := e.MFA.Stats()
		frac := 100 * float64(st.FilterBytes) / float64(st.MemoryImageBytes())
		fmt.Fprintf(w, "  %s: MFA filters are %.3f%% of image (paper: <0.2%% avg)\n", e.Set, frac)
	}
	return nil
}

// Figure3 renders construction times in seconds per (set, engine).
func Figure3(w io.Writer, engines []*Engines) error {
	fmt.Fprintln(w, "Figure 3: Construction times (seconds)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Pattern\tNFA\tDFA\tHFA\tXFA\tMFA")
	for _, e := range engines {
		row := e.Set
		for _, k := range AllEngines {
			r, ok := e.Result(k)
			switch {
			case !ok:
				row += "\t—"
			case r.Failed:
				row += fmt.Sprintf("\tfail(%.1fs)", r.BuildTime.Seconds())
			default:
				row += fmt.Sprintf("\t%.3f", r.BuildTime.Seconds())
			}
		}
		fmt.Fprintln(tw, row)
	}
	return tw.Flush()
}
