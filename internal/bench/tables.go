package bench

import (
	"fmt"
	"io"
	"strings"

	"matchfilter/internal/core"
	"matchfilter/internal/dfa"
	"matchfilter/internal/regexparse"
)

// TablesIIToIV renders the paper's running example end to end: the raw
// fragment matches of the decomposed R1 set on the §I-C input (Table II),
// the generated filter program (Table III), and the almost-dot-star
// walkthrough (Table IV).
func TablesIIToIV(w io.Writer) error {
	if err := tableII(w); err != nil {
		return err
	}
	if err := tableIV(w); err != nil {
		return err
	}
	return nil
}

func compileRules(sources []string, opts core.Options) (*core.MFA, error) {
	rules := make([]core.Rule, len(sources))
	for i, src := range sources {
		p, err := regexparse.ParsePCRE(src)
		if err != nil {
			return nil, err
		}
		rules[i] = core.Rule{Pattern: p, ID: int32(i + 1)}
	}
	return core.Compile(rules, opts)
}

func tableII(w io.Writer) error {
	sources := []string{"vi.*emacs", "bsd.*gnu", "abc.*mm?o.*xyz"}
	input := "vi.emacs.gnu.bsd.gnu.abc.mo.xyz"

	m, err := compileRules(sources, core.Options{})
	if err != nil {
		return err
	}

	fmt.Fprintln(w, "Table II/III: matches of the decomposed R1 set on the running example")
	fmt.Fprintf(w, "input: %s\n", input)

	// Raw fragment matches (Table II's R2 row).
	var raw []string
	r := dfa.NewEngine(m.DFA()).NewRunner()
	r.Feed([]byte(input), func(id int32, pos int64) {
		raw = append(raw, fmt.Sprintf("id%d@%d", id, pos))
	})
	fmt.Fprintf(w, "raw fragment matches:  %s\n", strings.Join(raw, " "))

	// Confirmed matches (Table II's R1 row).
	var confirmed []string
	for _, ev := range m.Run([]byte(input)) {
		confirmed = append(confirmed, fmt.Sprintf("rule%d@%d", ev.RuleID, ev.Pos))
	}
	fmt.Fprintf(w, "confirmed (filtered):  %s\n", strings.Join(confirmed, " "))

	fmt.Fprintln(w, "filter program (Table III):")
	for _, line := range strings.Split(strings.TrimSpace(m.Program().String()), "\n") {
		fmt.Fprintf(w, "  %s\n", line)
	}
	return nil
}

func tableIV(w io.Writer) error {
	source := `abc[^\n]*xyz`
	input := "abc:\n:xyz\nabc:xyz\n"

	m, err := compileRules([]string{source}, core.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nTable IV: %s on %q\n", source, input)
	var raw []string
	r := dfa.NewEngine(m.DFA()).NewRunner()
	r.Feed([]byte(input), func(id int32, pos int64) {
		raw = append(raw, fmt.Sprintf("id%d@%d", id, pos))
	})
	fmt.Fprintf(w, "raw matches:       %s\n", strings.Join(raw, " "))
	var confirmed []string
	for _, ev := range m.Run([]byte(input)) {
		confirmed = append(confirmed, fmt.Sprintf("rule%d@%d", ev.RuleID, ev.Pos))
	}
	fmt.Fprintf(w, "confirmed matches: %s (only the third line's xyz)\n",
		strings.Join(confirmed, " "))
	return nil
}
