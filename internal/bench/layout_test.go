package bench

import (
	"io"
	"strings"
	"testing"

	"matchfilter/internal/dfa"
)

// BenchmarkClassedVsFlat scans the same salted text-like payload with
// all three table layouts of each set's MFA. CI runs it with
// -benchtime=1x as a smoke test; locally, -bench=Classed gives the real
// comparison.
func BenchmarkClassedVsFlat(b *testing.B) {
	const payloadBytes = 1 << 20
	for _, set := range LayoutSets {
		payload, err := layoutPayload(set, payloadBytes, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, layout := range []dfa.Layout{dfa.LayoutFlat, dfa.LayoutClassed, dfa.LayoutClassed2} {
			m, err := compileLayout(set, layout)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(set+"/"+layout.String(), func(b *testing.B) {
				r := m.NewRunner()
				b.SetBytes(int64(len(payload)))
				for i := 0; i < b.N; i++ {
					r.Reset()
					r.FeedCount(payload)
				}
			})
		}
	}
}

// TestLayoutComparison smoke-tests the experiment end to end on one
// small set and checks the acceptance-relevant invariants: the classed
// table is smaller than flat, all three layouts saw identical match
// counts on the shared payload, and every (layout, K) batched row was
// measured.
func TestLayoutComparison(t *testing.T) {
	results, err := LayoutComparison(io.Discard, []string{"C10"}, 1<<16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results, want 1", len(results))
	}
	res := results[0]
	if res.ClassedTableBytes >= res.FlatTableBytes {
		t.Fatalf("classed table %d B not smaller than flat %d B",
			res.ClassedTableBytes, res.FlatTableBytes)
	}
	if res.Classes <= 0 || res.Classes >= 256 {
		t.Fatalf("implausible class count %d", res.Classes)
	}
	if res.Flat.MatchEvents != res.Classed.MatchEvents ||
		res.Flat.MatchEvents != res.Classed2.MatchEvents {
		t.Fatalf("layouts disagree on match count: flat %d, classed %d, classed2 %d",
			res.Flat.MatchEvents, res.Classed.MatchEvents, res.Classed2.MatchEvents)
	}
	if res.Classed2Layout != "classed2" {
		t.Fatalf("C10 classed2 build fell back to %q; pair table should fit", res.Classed2Layout)
	}
	if want := 3 * len(BatchKs); len(res.Batched) != want {
		t.Fatalf("got %d batched rows, want %d", len(res.Batched), want)
	}
	for _, bt := range res.Batched {
		if bt.Bytes == 0 || bt.Elapsed <= 0 {
			t.Fatalf("batched row %s K=%d not measured: %+v", bt.Layout, bt.K, bt.Throughput)
		}
	}

	var report JSONReport
	report.AddLayout(results)
	var sb strings.Builder
	if err := report.Write(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"experiment": "layout"`, `"layout": "flat"`, `"layout": "classed"`,
		`"layout": "classed2"`, `"table_bytes"`, `"batch_k": 1`, `"batch_k": 16`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("JSON report missing %s:\n%s", want, sb.String())
		}
	}
}
