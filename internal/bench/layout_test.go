package bench

import (
	"io"
	"strings"
	"testing"
)

// BenchmarkClassedVsFlat scans the same salted text-like payload with
// both table layouts of each set's MFA. CI runs it with -benchtime=1x as
// a smoke test; locally, -bench=Classed gives the real comparison.
func BenchmarkClassedVsFlat(b *testing.B) {
	const payloadBytes = 1 << 20
	for _, set := range LayoutSets {
		flat, classed, err := layoutEngines(set)
		if err != nil {
			b.Fatal(err)
		}
		payload, err := layoutPayload(set, payloadBytes, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(set+"/flat", func(b *testing.B) {
			r := flat.NewRunner()
			b.SetBytes(int64(len(payload)))
			for i := 0; i < b.N; i++ {
				r.Reset()
				r.FeedCount(payload)
			}
		})
		b.Run(set+"/classed", func(b *testing.B) {
			r := classed.NewRunner()
			b.SetBytes(int64(len(payload)))
			for i := 0; i < b.N; i++ {
				r.Reset()
				r.FeedCount(payload)
			}
		})
	}
}

// TestLayoutComparison smoke-tests the experiment end to end on one
// small set and checks the acceptance-relevant invariants: the classed
// table is smaller and both layouts saw identical match counts on the
// shared payload.
func TestLayoutComparison(t *testing.T) {
	results, err := LayoutComparison(io.Discard, []string{"C10"}, 1<<16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results, want 1", len(results))
	}
	res := results[0]
	if res.ClassedTableBytes >= res.FlatTableBytes {
		t.Fatalf("classed table %d B not smaller than flat %d B",
			res.ClassedTableBytes, res.FlatTableBytes)
	}
	if res.Classes <= 0 || res.Classes >= 256 {
		t.Fatalf("implausible class count %d", res.Classes)
	}
	if res.Flat.MatchEvents != res.Classed.MatchEvents {
		t.Fatalf("layouts disagree on match count: flat %d, classed %d",
			res.Flat.MatchEvents, res.Classed.MatchEvents)
	}

	var report JSONReport
	report.AddLayout(results)
	var sb strings.Builder
	if err := report.Write(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"experiment": "layout"`, `"layout": "flat"`, `"layout": "classed"`, `"table_bytes"`} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("JSON report missing %s:\n%s", want, sb.String())
		}
	}
}
