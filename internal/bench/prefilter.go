package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"matchfilter/internal/core"
	"matchfilter/internal/patterns"
	"matchfilter/internal/prefilter"
	"matchfilter/internal/trace"
)

// PrefilterComparison runs the §II-A related-work comparison: a
// Snort-style Aho-Corasick content pre-filter with per-rule verification
// passes against the single-pass MFA, across clean and content-dense
// traffic. The paper's critique — multiple passes over the input — shows
// up as the dense-traffic collapse.
func PrefilterComparison(w io.Writer, sets []string, sampleBytes int, seed int64) error {
	if len(sets) == 0 {
		sets = []string{"C8", "C10", "S24"}
	}
	fmt.Fprintln(w, "Snort-style pre-filter vs MFA (§II-A), cycles per byte")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Set\ttraffic\tprefilter\tMFA\tverification passes")
	for _, set := range sets {
		rules, err := patterns.Load(set)
		if err != nil {
			return err
		}
		prules := make([]prefilter.Rule, len(rules))
		crules := make([]core.Rule, len(rules))
		for i, r := range rules {
			prules[i] = prefilter.Rule{Pattern: r.Pattern, ID: r.ID}
			crules[i] = core.Rule{Pattern: r.Pattern, ID: r.ID}
		}
		pf, err := prefilter.Compile(prules)
		if err != nil {
			return err
		}
		m, err := core.Compile(crules, core.Options{})
		if err != nil {
			return err
		}
		words, err := patterns.AllWords(set)
		if err != nil {
			return err
		}
		for _, kind := range []string{"clean", "dense"} {
			var data []byte
			if kind == "clean" {
				data = trace.TextLike(sampleBytes, seed, nil, 0)
			} else {
				data = trace.TextLike(sampleBytes, seed, words, 0.02)
			}
			pfT := Measure(pf.FeedCount, data)
			mfaT := Measure(func(d []byte) int64 { return m.NewRunner().FeedCount(d) }, data)
			fmt.Fprintf(tw, "%s\t%s\t%.0f\t%.0f\t%d of %d rules\n",
				set, kind, pfT.CyclesPerByte, mfaT.CyclesPerByte,
				countContentsHit(pf, data), pf.Stats().NumRules)
		}
	}
	return tw.Flush()
}

// countContentsHit reports how many distinct content literals the AC
// pass finds, i.e. how many verification passes the second stage pays.
func countContentsHit(pf *prefilter.Engine, data []byte) int {
	return pf.CandidateCount(data)
}
