package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"matchfilter/internal/core"
	"matchfilter/internal/dfa"
	"matchfilter/internal/patterns"
	"matchfilter/internal/trace"
)

// LayoutSets are the pattern sets of the flat-vs-classed layout
// experiment: the vendor and Snort families plus B217p, whose plain DFA
// is infeasible but whose MFA fragment automaton is the largest table in
// the suite and therefore the most interesting compression subject.
var LayoutSets = []string{"C7p", "C8", "C10", "S24", "B217p"}

// LayoutResult compares the two transition-table layouts of one set's
// MFA: identical automaton, flat 256-wide table versus the byte-class
// compressed one.
type LayoutResult struct {
	Set     string
	States  int
	Classes int
	// FlatTableBytes and ClassedTableBytes are the transition-table image
	// sizes (the classed figure includes its 256-byte class map);
	// Reduction is flat divided by classed.
	FlatTableBytes    int
	ClassedTableBytes int
	Reduction         float64
	// Flat and Classed are scan throughputs over the same payload: a
	// text-like trace salted with the set's own literals, the Figure 4
	// payload model.
	Flat    Throughput
	Classed Throughput
}

// layoutEngines compiles the same rule set twice, once per layout. The
// flat build is the paper's one-load-per-byte table; the classed build
// is what core.Compile produces by default when the set compresses.
func layoutEngines(set string) (flat, classed *core.MFA, err error) {
	rules, err := patterns.Load(set)
	if err != nil {
		return nil, nil, err
	}
	coreRules := make([]core.Rule, len(rules))
	for i, r := range rules {
		coreRules[i] = core.Rule{Pattern: r.Pattern, ID: r.ID}
	}
	flat, err = core.Compile(coreRules, core.Options{DFA: dfa.Options{Layout: dfa.LayoutFlat}})
	if err != nil {
		return nil, nil, fmt.Errorf("bench: %s flat MFA: %w", set, err)
	}
	classed, err = core.Compile(coreRules, core.Options{DFA: dfa.Options{Layout: dfa.LayoutClassed}})
	if err != nil {
		return nil, nil, fmt.Errorf("bench: %s classed MFA: %w", set, err)
	}
	return flat, classed, nil
}

// layoutPayload synthesizes the scan payload for one set: text-like
// traffic salted with the set's literals so the automaton leaves its
// start-state neighbourhood (word density as the LL1 trace profile).
func layoutPayload(set string, n int, seed int64) ([]byte, error) {
	words, err := patterns.AllWords(set)
	if err != nil {
		return nil, err
	}
	return trace.TextLike(n, seed, words, 0.004), nil
}

// MeasureLayout builds both layouts of one set's MFA and measures them
// over the same payload.
func MeasureLayout(set string, bytesN int, seed int64) (LayoutResult, error) {
	flat, classed, err := layoutEngines(set)
	if err != nil {
		return LayoutResult{}, err
	}
	payload, err := layoutPayload(set, bytesN, seed)
	if err != nil {
		return LayoutResult{}, err
	}
	fs, cs := flat.Stats(), classed.Stats()
	res := LayoutResult{
		Set:               set,
		States:            cs.DFAStates,
		Classes:           cs.DFAClasses,
		FlatTableBytes:    fs.DFATableBytes,
		ClassedTableBytes: cs.DFATableBytes,
		Flat:              Measure(func(data []byte) int64 { return flat.NewRunner().FeedCount(data) }, payload),
		Classed:           Measure(func(data []byte) int64 { return classed.NewRunner().FeedCount(data) }, payload),
	}
	if cs.DFATableBytes > 0 {
		res.Reduction = float64(fs.DFATableBytes) / float64(cs.DFATableBytes)
	}
	return res, nil
}

// LayoutComparison runs the flat-vs-classed experiment over the given
// sets (default LayoutSets) and renders the size and throughput table
// that DESIGN.md §13 and EXPERIMENTS.md discuss.
func LayoutComparison(w io.Writer, sets []string, bytesN int, seed int64) ([]LayoutResult, error) {
	if len(sets) == 0 {
		sets = LayoutSets
	}
	fmt.Fprintln(w, "Transition-table layouts: flat (256-wide) vs byte-class compressed")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Set\tstates\tclasses\tflat table\tclassed table\treduction\tflat MB/s\tclassed MB/s")
	var all []LayoutResult
	for _, set := range sets {
		res, err := MeasureLayout(set, bytesN, seed)
		if err != nil {
			return nil, err
		}
		all = append(all, res)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.1fx\t%.0f\t%.0f\n",
			res.Set, res.States, res.Classes,
			res.FlatTableBytes, res.ClassedTableBytes, res.Reduction,
			res.Flat.MBps(), res.Classed.MBps())
	}
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "(classed table bytes include the 256-byte class map; same automaton,")
	fmt.Fprintln(w, " same match stream — see the layout equivalence tests)")
	return all, nil
}
