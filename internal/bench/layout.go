package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"matchfilter/internal/core"
	"matchfilter/internal/dfa"
	"matchfilter/internal/patterns"
	"matchfilter/internal/trace"
)

// LayoutSets are the pattern sets of the table-layout experiment: the
// vendor and Snort families plus B217p, whose plain DFA is infeasible
// but whose MFA fragment automaton is the largest table in the suite and
// therefore the most interesting compression subject.
var LayoutSets = []string{"C7p", "C8", "C10", "S24", "B217p"}

// BatchKs are the lockstep widths of the batching experiment
// (DESIGN.md §18): 1 is the degenerate single-lane baseline through the
// batcher, 16 is core.MaxBatchFlows.
var BatchKs = []int{1, 4, 8, 16}

// BatchThroughput is one batched lockstep measurement: the payload
// split into K equal sub-streams scanned as K concurrent flows by one
// core.FlowBatcher.
type BatchThroughput struct {
	Layout string // layout the lanes ran on ("flat", "classed", "classed2")
	K      int
	Throughput
}

// LayoutResult compares the transition-table layouts of one set's MFA:
// identical automaton, flat 256-wide table, the byte-class compressed
// one, and the 2-byte-stride pair table built over the classes.
type LayoutResult struct {
	Set     string
	States  int
	Classes int
	// FlatTableBytes and ClassedTableBytes are the transition-table image
	// sizes (the classed figure includes its 256-byte class map);
	// Reduction is flat divided by classed. Classed2TableBytes adds the
	// derived pair table (it includes the retained 1-byte table the slow
	// and tail paths use).
	FlatTableBytes     int
	ClassedTableBytes  int
	Classed2TableBytes int
	Reduction          float64
	// Classed2Layout is the layout the classed2 build actually produced:
	// "classed2", or "classed" when the pair table would exceed
	// dfa.Classed2MaxTableBytes and the build fell back.
	Classed2Layout string
	// Flat, Classed and Classed2 are single-flow scan throughputs over
	// the same payload: a text-like trace salted with the set's own
	// literals, the Figure 4 payload model.
	Flat     Throughput
	Classed  Throughput
	Classed2 Throughput
	// Batched holds the lockstep measurements: layout × K over the same
	// payload split into K concurrent flows.
	Batched []BatchThroughput
}

// compileLayout builds one set's MFA with an explicit table layout.
func compileLayout(set string, layout dfa.Layout) (*core.MFA, error) {
	rules, err := patterns.Load(set)
	if err != nil {
		return nil, err
	}
	coreRules := make([]core.Rule, len(rules))
	for i, r := range rules {
		coreRules[i] = core.Rule{Pattern: r.Pattern, ID: r.ID}
	}
	m, err := core.Compile(coreRules, core.Options{DFA: dfa.Options{Layout: layout}})
	if err != nil {
		return nil, fmt.Errorf("bench: %s %v MFA: %w", set, layout, err)
	}
	return m, nil
}

// layoutPayload synthesizes the scan payload for one set: text-like
// traffic salted with the set's literals so the automaton leaves its
// start-state neighbourhood (word density as the LL1 trace profile).
func layoutPayload(set string, n int, seed int64) ([]byte, error) {
	words, err := patterns.AllWords(set)
	if err != nil {
		return nil, err
	}
	return trace.TextLike(n, seed, words, 0.004), nil
}

// measureBatched scans the payload as k concurrent flows stepped in
// lockstep: k equal sub-streams, one fresh runner each, one flush
// window. This is the steady-state cost of the lockstep loop itself —
// the shard's drain/flush cadence is measured by the engine experiment.
// Match counts differ from the single-stream scans (splitting severs
// cross-boundary matches) and are not compared.
func measureBatched(m *core.MFA, payload []byte, k int) Throughput {
	return Measure(func(data []byte) int64 {
		var events int64
		cb := func(int32, int64) { events++ }
		b := core.NewFlowBatcher(k)
		n := len(data) / k
		if n == 0 {
			n = len(data)
		}
		for i := 0; i < k && i*n < len(data); i++ {
			end := (i + 1) * n
			if i == k-1 || end > len(data) {
				end = len(data)
			}
			b.Add(m.NewRunner(), i, data[i*n:end], cb)
		}
		b.Flush()
		return events
	}, payload)
}

// MeasureLayout builds all three layouts of one set's MFA and measures
// them over the same payload, single-flow and batched.
func MeasureLayout(set string, bytesN int, seed int64) (LayoutResult, error) {
	flat, err := compileLayout(set, dfa.LayoutFlat)
	if err != nil {
		return LayoutResult{}, err
	}
	classed, err := compileLayout(set, dfa.LayoutClassed)
	if err != nil {
		return LayoutResult{}, err
	}
	classed2, err := compileLayout(set, dfa.LayoutClassed2)
	if err != nil {
		return LayoutResult{}, err
	}
	payload, err := layoutPayload(set, bytesN, seed)
	if err != nil {
		return LayoutResult{}, err
	}
	fs, cs, c2s := flat.Stats(), classed.Stats(), classed2.Stats()
	res := LayoutResult{
		Set:                set,
		States:             cs.DFAStates,
		Classes:            cs.DFAClasses,
		FlatTableBytes:     fs.DFATableBytes,
		ClassedTableBytes:  cs.DFATableBytes,
		Classed2TableBytes: c2s.DFATableBytes,
		Classed2Layout:     c2s.DFALayout,
		Flat:               Measure(func(data []byte) int64 { return flat.NewRunner().FeedCount(data) }, payload),
		Classed:            Measure(func(data []byte) int64 { return classed.NewRunner().FeedCount(data) }, payload),
		Classed2:           Measure(func(data []byte) int64 { return classed2.NewRunner().FeedCount(data) }, payload),
	}
	if cs.DFATableBytes > 0 {
		res.Reduction = float64(fs.DFATableBytes) / float64(cs.DFATableBytes)
	}
	for _, k := range BatchKs {
		res.Batched = append(res.Batched,
			BatchThroughput{Layout: "flat", K: k, Throughput: measureBatched(flat, payload, k)},
			BatchThroughput{Layout: "classed", K: k, Throughput: measureBatched(classed, payload, k)},
			BatchThroughput{Layout: c2s.DFALayout, K: k, Throughput: measureBatched(classed2, payload, k)},
		)
	}
	return res, nil
}

// LayoutComparison runs the layout-and-batching experiment over the
// given sets (default LayoutSets) and renders the size and throughput
// tables that DESIGN.md §13/§18 and EXPERIMENTS.md discuss.
func LayoutComparison(w io.Writer, sets []string, bytesN int, seed int64) ([]LayoutResult, error) {
	if len(sets) == 0 {
		sets = LayoutSets
	}
	fmt.Fprintln(w, "Transition-table layouts: flat (256-wide) vs byte-class compressed vs 2-byte stride")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Set\tstates\tclasses\tflat table\tclassed table\tclassed2 table\treduction\tflat MB/s\tclassed MB/s\tclassed2 MB/s")
	var all []LayoutResult
	for _, set := range sets {
		res, err := MeasureLayout(set, bytesN, seed)
		if err != nil {
			return nil, err
		}
		all = append(all, res)
		c2 := fmt.Sprintf("%d", res.Classed2TableBytes)
		if res.Classed2Layout != "classed2" {
			c2 += "*" // fell back: pair table over dfa.Classed2MaxTableBytes
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%s\t%.1fx\t%.0f\t%.0f\t%.0f\n",
			res.Set, res.States, res.Classes,
			res.FlatTableBytes, res.ClassedTableBytes, c2, res.Reduction,
			res.Flat.MBps(), res.Classed.MBps(), res.Classed2.MBps())
	}
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "(classed table bytes include the 256-byte class map; classed2 includes the")
	fmt.Fprintln(w, " retained 1-byte table; * marks a fallback to classed — pair table too large.")
	fmt.Fprintln(w, " Same automaton, same match stream — see the layout equivalence tests.)")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Batched lockstep: K concurrent flows per flush window (MB/s, aggregate)")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	header := "Set\tlayout"
	for _, k := range BatchKs {
		header += fmt.Sprintf("\tK=%d", k)
	}
	fmt.Fprintln(tw, header)
	for _, res := range all {
		byLayout := map[string][]BatchThroughput{}
		var order []string
		for _, bt := range res.Batched {
			if _, seen := byLayout[bt.Layout]; !seen {
				order = append(order, bt.Layout)
			}
			byLayout[bt.Layout] = append(byLayout[bt.Layout], bt)
		}
		for _, layout := range order {
			row := fmt.Sprintf("%s\t%s", res.Set, layout)
			for _, bt := range byLayout[layout] {
				row += fmt.Sprintf("\t%.0f", bt.MBps())
			}
			fmt.Fprintln(tw, row)
		}
	}
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "(one core; K=1 is the single-lane path through the batcher)")
	return all, nil
}
