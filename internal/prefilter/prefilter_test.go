package prefilter

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"matchfilter/internal/dfa"
	"matchfilter/internal/nfa"
	"matchfilter/internal/regexparse"
)

func mustRules(t *testing.T, sources ...string) []Rule {
	t.Helper()
	rules := make([]Rule, len(sources))
	for i, src := range sources {
		p, err := regexparse.ParsePCRE(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		rules[i] = Rule{Pattern: p, ID: int32(i + 1)}
	}
	return rules
}

func TestACBasic(t *testing.T) {
	ac := BuildAC([][]byte{[]byte("he"), []byte("she"), []byte("his"), []byte("hers")})
	var got []string
	ac.Scan([]byte("ushers"), func(p int32, pos int) {
		got = append(got, fmt.Sprintf("%d@%d", p, pos))
	})
	// Classic AC example: "she"@3, "he"@3, "hers"@5.
	want := []string{"1@3", "0@3", "3@5"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestACScanSet(t *testing.T) {
	ac := BuildAC([][]byte{[]byte("aa"), []byte("bb"), []byte("cc")})
	seen := make([]bool, 3)
	ac.ScanSet([]byte("xxaayybbzz"), seen)
	if !seen[0] || !seen[1] || seen[2] {
		t.Fatalf("seen: %v", seen)
	}
}

func TestACOverlappingPatterns(t *testing.T) {
	ac := BuildAC([][]byte{[]byte("aaa"), []byte("aa")})
	counts := make([]int, 2)
	ac.Scan([]byte("aaaa"), func(p int32, _ int) { counts[p]++ })
	if counts[0] != 2 || counts[1] != 3 {
		t.Fatalf("counts: %v (want aaa=2 aa=3)", counts)
	}
	if ac.NumStates() != 4 || ac.MemoryImageBytes() <= 0 {
		t.Errorf("states=%d", ac.NumStates())
	}
}

func TestLongestLiteral(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{"abcdef", "abcdef"},
		{"ab.*cdef", "cdef"},
		{"ab?cdef", "cdef"},
		{"(ab|cd)xyz", "xyz"},
		{"a[0-9]bcd", "bcd"},
		{"x{3}yz", "xxxyz"},
		{"a+bc", "bc"}, // runs: "a", "bc"
		{".*", ""},
		{"[ab][cd]", ""},
	}
	for _, tt := range tests {
		p, err := regexparse.Parse(tt.src)
		if err != nil {
			t.Fatal(err)
		}
		if got := string(longestLiteral(p.Root)); got != tt.want {
			t.Errorf("longestLiteral(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func groundTruth(t *testing.T, rules []Rule) *dfa.Engine {
	t.Helper()
	nfaRules := make([]nfa.Rule, len(rules))
	for i, r := range rules {
		nfaRules[i] = nfa.Rule{Pattern: r.Pattern, MatchID: int(r.ID)}
	}
	n, err := nfa.Build(nfaRules)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dfa.FromNFA(n, dfa.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return dfa.NewEngine(d)
}

func sortedEvents(evs []MatchEvent) []MatchEvent {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Pos != evs[j].Pos {
			return evs[i].Pos < evs[j].Pos
		}
		return evs[i].RuleID < evs[j].RuleID
	})
	return evs
}

func assertEquivalent(t *testing.T, sources []string, inputs [][]byte) {
	t.Helper()
	rules := mustRules(t, sources...)
	e, err := Compile(rules)
	if err != nil {
		t.Fatal(err)
	}
	gt := groundTruth(t, rules)
	for _, input := range inputs {
		got := sortedEvents(e.Run(input))
		var want []MatchEvent
		for _, ev := range gt.Run(input) {
			want = append(want, MatchEvent{RuleID: ev.ID, Pos: ev.Pos})
		}
		want = sortedEvents(want)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("rules %v input %q:\nprefilter %v\ntruth     %v", sources, input, got, want)
		}
	}
}

func TestEquivalenceFixed(t *testing.T) {
	assertEquivalent(t,
		[]string{"vi.*emacs", "bsd.*gnu", `foo[^\n]*bar`, "plain", "/short/i"},
		[][]byte{
			[]byte("vi then emacs, bsd then gnu"),
			[]byte("emacs vi"),
			[]byte("foo bar plain"),
			[]byte("foo\nbar SHORT"),
			[]byte(strings.Repeat("vi emacs ", 10)),
			[]byte("nothing relevant at all"),
		})
}

func TestEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	words := []string{"abc", "def", "gh", "xyz", "qq"}
	for trial := 0; trial < 20; trial++ {
		var sources []string
		for ri := 0; ri < 1+rng.Intn(4); ri++ {
			var sb strings.Builder
			for si := 0; si < 1+rng.Intn(3); si++ {
				if si > 0 {
					sb.WriteString(".*")
				}
				sb.WriteString(words[rng.Intn(len(words))])
			}
			sources = append(sources, sb.String())
		}
		var inputs [][]byte
		for ii := 0; ii < 4; ii++ {
			var sb strings.Builder
			for sb.Len() < 20+rng.Intn(80) {
				if rng.Intn(3) == 0 {
					sb.WriteString(words[rng.Intn(len(words))])
				} else {
					sb.WriteByte("abcdefghqxyz "[rng.Intn(13)])
				}
			}
			inputs = append(inputs, []byte(sb.String()))
		}
		assertEquivalent(t, sources, inputs)
	}
}

func TestPrefilterSkipsVerification(t *testing.T) {
	// On payloads without any content hit, only always-verify rules run.
	rules := mustRules(t, "needle.*stack", "/nocase/i")
	e, err := Compile(rules)
	if err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.NumContents != 1 || st.NumRules != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if len(e.alwaysVerify) != 1 {
		t.Fatalf("alwaysVerify: %v", e.alwaysVerify)
	}
	if got := e.Run([]byte("completely clean payload")); len(got) != 0 {
		t.Fatalf("clean payload: %v", got)
	}
	if e.MemoryImageBytes() <= 0 || st.ACStates <= 1 || st.VerifierQs <= 0 {
		t.Errorf("stats: %+v", st)
	}
}

func TestFeedCount(t *testing.T) {
	e, err := Compile(mustRules(t, "ab.*cd"))
	if err != nil {
		t.Fatal(err)
	}
	if c := e.FeedCount([]byte("ab cd ab cd")); c != 2 {
		t.Fatalf("FeedCount = %d", c)
	}
}
