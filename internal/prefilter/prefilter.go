package prefilter

import (
	"fmt"
	"time"

	"matchfilter/internal/dfa"
	"matchfilter/internal/nfa"
	"matchfilter/internal/regexparse"
)

// Rule is one input regex and the id reported when it matches.
type Rule struct {
	Pattern *regexparse.Pattern
	ID      int32
}

// Engine is the two-pass matcher: an AC pre-filter over each rule's
// longest required literal, plus one small per-rule DFA used to verify
// candidate rules with a second pass over the payload.
type Engine struct {
	ac *AC
	// contentRule[i] is the rule index whose content string is AC
	// pattern i.
	contentRule []int
	// verifiers[r] is rule r's own DFA engine; alwaysVerify lists rules
	// with no extractable content, which must be verified on every flow.
	verifiers    []*dfa.Engine
	alwaysVerify []int
	numContents  int
	stats        BuildStats
}

// BuildStats records construction results.
type BuildStats struct {
	NumRules    int
	NumContents int // rules with an extractable content literal
	ACStates    int
	VerifierQs  int // total states across per-rule verifier DFAs
	BuildTime   time.Duration
}

// Compile builds the two-pass engine.
func Compile(rules []Rule) (*Engine, error) {
	start := time.Now()
	e := &Engine{verifiers: make([]*dfa.Engine, len(rules))}

	var contents [][]byte
	for i, r := range rules {
		lit := longestLiteral(r.Pattern.Root)
		if len(lit) >= 2 && !r.Pattern.CaseInsensitive {
			contents = append(contents, lit)
			e.contentRule = append(e.contentRule, i)
		} else {
			e.alwaysVerify = append(e.alwaysVerify, i)
		}

		n, err := nfa.Build([]nfa.Rule{{Pattern: r.Pattern, MatchID: int(r.ID)}})
		if err != nil {
			return nil, fmt.Errorf("prefilter: rule %d: %w", r.ID, err)
		}
		d, err := dfa.FromNFA(n, dfa.Options{})
		if err != nil {
			return nil, fmt.Errorf("prefilter: rule %d: %w", r.ID, err)
		}
		e.verifiers[i] = dfa.NewEngine(d)
		e.stats.VerifierQs += d.NumStates()
	}
	e.ac = BuildAC(contents)
	e.numContents = len(contents)
	e.stats.NumRules = len(rules)
	e.stats.NumContents = len(contents)
	e.stats.ACStates = e.ac.NumStates()
	e.stats.BuildTime = time.Since(start)
	return e, nil
}

// Stats returns construction statistics.
func (e *Engine) Stats() BuildStats { return e.stats }

// MemoryImageBytes returns the static image: the AC automaton plus every
// per-rule verifier table.
func (e *Engine) MemoryImageBytes() int {
	total := e.ac.MemoryImageBytes()
	for _, v := range e.verifiers {
		total += v.DFA().MemoryImageBytes()
	}
	return total
}

// MatchEvent records one confirmed match.
type MatchEvent struct {
	RuleID int32
	Pos    int64
}

// Run matches the rules against one complete flow payload: pass 1 runs
// the AC pre-filter, pass 2 re-scans the payload once per candidate
// rule. Unlike the single-pass engines, this requires the entire payload
// to be buffered — the §II-A critique in executable form.
func (e *Engine) Run(data []byte) []MatchEvent {
	seen := make([]bool, e.numContents)
	e.ac.ScanSet(data, seen)

	candidates := append([]int(nil), e.alwaysVerify...)
	for ci, hit := range seen {
		if hit {
			candidates = append(candidates, e.contentRule[ci])
		}
	}

	var out []MatchEvent
	for _, ri := range candidates {
		r := e.verifiers[ri].NewRunner()
		r.Feed(data, func(id int32, pos int64) {
			out = append(out, MatchEvent{RuleID: id, Pos: pos})
		})
	}
	return out
}

// FeedCount is the benchmark entry point: match one payload, return the
// event count.
func (e *Engine) FeedCount(data []byte) int64 {
	return int64(len(e.Run(data)))
}

// longestLiteral extracts the longest byte string that every word of the
// node's language must contain, walking only constructs where the
// requirement is certain: concatenations of single-byte classes. A
// quantifier, alternation or multi-byte class ends the current run
// (quantified or alternative content is not *required*). This mirrors
// how Snort's content strings relate to its PCRE options.
func longestLiteral(n *regexparse.Node) []byte {
	var best, cur []byte
	flush := func() {
		if len(cur) > len(best) {
			best = append([]byte(nil), cur...)
		}
		cur = cur[:0]
	}
	var walk func(n *regexparse.Node)
	walk = func(n *regexparse.Node) {
		switch n.Op {
		case regexparse.OpClass:
			if c, ok := n.Class.SingleByte(); ok {
				cur = append(cur, c)
				return
			}
			flush()
		case regexparse.OpConcat:
			for _, s := range n.Subs {
				walk(s)
			}
		case regexparse.OpRepeat:
			// An exact repeat of a literal is required in full.
			if n.Min == n.Max {
				for i := 0; i < n.Min; i++ {
					walk(n.Sub)
				}
				return
			}
			// The first Min copies are required; the tail is optional.
			for i := 0; i < n.Min; i++ {
				walk(n.Sub)
			}
			flush()
		case regexparse.OpPlus:
			walk(n.Sub)
			flush()
		default:
			flush()
		}
	}
	walk(n)
	flush()
	return best
}

// CandidateCount reports how many rules the pre-filter pass would send to
// verification for this payload (content hits plus always-verify rules) —
// the direct driver of second-pass cost.
func (e *Engine) CandidateCount(data []byte) int {
	seen := make([]bool, e.numContents)
	e.ac.ScanSet(data, seen)
	n := len(e.alwaysVerify)
	for _, hit := range seen {
		if hit {
			n++
		}
	}
	return n
}
