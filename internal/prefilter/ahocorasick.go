// Package prefilter implements a Snort-style two-pass matcher, the
// approach §II-A of the paper calls "most similar" to match filtering:
// an Aho-Corasick string engine scans the payload once for each rule's
// literal "content" strings, and only rules whose contents all appeared
// are then verified by running their individual regexes over the payload
// again. The paper's criticism — "it requires multiple passes over the
// input content, increasing the total amount of work done and requiring
// more buffering" — is directly measurable against the MFA, which needs
// one pass and no payload retention.
package prefilter

import (
	"matchfilter/internal/regexparse"
)

// acNode is one Aho-Corasick trie state with dense transitions. Sets are
// small (hundreds of strings), so the dense layout is affordable and
// keeps the scan loop branch-free.
type acNode struct {
	next [regexparse.AlphabetSize]int32
	fail int32
	out  []int32 // pattern indices ending at this state
}

// AC is an Aho-Corasick automaton over byte strings.
type AC struct {
	nodes []acNode
}

// BuildAC constructs the automaton for the given patterns. Empty
// patterns are ignored (they would match everywhere).
func BuildAC(patterns [][]byte) *AC {
	a := &AC{nodes: make([]acNode, 1, 64)}

	// Phase 1: trie.
	for idx, p := range patterns {
		if len(p) == 0 {
			continue
		}
		state := int32(0)
		for _, c := range p {
			next := a.nodes[state].next[c]
			if next == 0 {
				next = int32(len(a.nodes))
				a.nodes = append(a.nodes, acNode{})
				a.nodes[state].next[c] = next
			}
			state = next
		}
		a.nodes[state].out = append(a.nodes[state].out, int32(idx))
	}

	// Phase 2: BFS failure links, then convert to a complete goto
	// function (next[c] always defined) so scanning needs no fail-chain
	// walking.
	queue := make([]int32, 0, len(a.nodes))
	for c := 0; c < regexparse.AlphabetSize; c++ {
		if child := a.nodes[0].next[c]; child != 0 {
			a.nodes[child].fail = 0
			queue = append(queue, child)
		}
	}
	for len(queue) > 0 {
		state := queue[0]
		queue = queue[1:]
		for c := 0; c < regexparse.AlphabetSize; c++ {
			child := a.nodes[state].next[c]
			if child == 0 {
				// Complete the goto function via the failure state.
				a.nodes[state].next[c] = a.nodes[a.nodes[state].fail].next[c]
				continue
			}
			fail := a.nodes[a.nodes[state].fail].next[c]
			a.nodes[child].fail = fail
			a.nodes[child].out = append(a.nodes[child].out, a.nodes[fail].out...)
			queue = append(queue, child)
		}
	}
	return a
}

// NumStates returns the automaton's state count.
func (a *AC) NumStates() int { return len(a.nodes) }

// MemoryImageBytes returns the static storage: dense transition rows plus
// failure links and output lists.
func (a *AC) MemoryImageBytes() int {
	total := len(a.nodes) * (regexparse.AlphabetSize*4 + 4 + 8)
	for i := range a.nodes {
		total += len(a.nodes[i].out) * 4
	}
	return total
}

// Scan runs the automaton over data, invoking fn for every occurrence of
// every pattern (pattern index, end offset).
func (a *AC) Scan(data []byte, fn func(pattern int32, pos int)) {
	state := int32(0)
	for i := 0; i < len(data); i++ {
		state = a.nodes[state].next[data[i]]
		for _, p := range a.nodes[state].out {
			fn(p, i)
		}
	}
}

// ScanSet marks, in seen, every pattern that occurs in data at least
// once. seen must have one entry per pattern; this is the pre-filter
// pass, which needs only presence, not positions.
func (a *AC) ScanSet(data []byte, seen []bool) {
	state := int32(0)
	for i := 0; i < len(data); i++ {
		state = a.nodes[state].next[data[i]]
		if out := a.nodes[state].out; len(out) != 0 {
			for _, p := range out {
				seen[p] = true
			}
		}
	}
}
