package nfa

import (
	"math/rand"
	"regexp"
	"strings"
	"testing"

	"matchfilter/internal/regexparse"
)

// compile builds an engine for the given pattern sources, assigning match
// ids 1..n in order, mirroring the paper's implicit {{1}}, {{2}} labels.
func compile(t *testing.T, sources ...string) *Engine {
	t.Helper()
	rules := make([]Rule, len(sources))
	for i, src := range sources {
		p, err := regexparse.ParsePCRE(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		rules[i] = Rule{Pattern: p, MatchID: i + 1}
	}
	n, err := Build(rules)
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(n)
}

func eventsOf(e *Engine, input string) []MatchEvent {
	return e.Run([]byte(input))
}

func TestLiteralMatch(t *testing.T) {
	e := compile(t, "abc")
	got := eventsOf(e, "xxabcxxabc")
	want := []MatchEvent{{1, 4}, {1, 9}}
	assertEvents(t, got, want)
}

func TestNoMatch(t *testing.T) {
	e := compile(t, "abc")
	if got := eventsOf(e, "abxacbxbca"); len(got) != 0 {
		t.Fatalf("want no matches, got %v", got)
	}
}

func TestAnchoredMatch(t *testing.T) {
	e := compile(t, "^abc")
	assertEvents(t, eventsOf(e, "abcxxabc"), []MatchEvent{{1, 2}})
	if got := eventsOf(e, "xabc"); len(got) != 0 {
		t.Fatalf("anchored pattern matched mid-flow: %v", got)
	}
}

func TestDotStarMatch(t *testing.T) {
	e := compile(t, "vi.*emacs")
	assertEvents(t, eventsOf(e, "vi...emacs"), []MatchEvent{{1, 9}})
	assertEvents(t, eventsOf(e, "viemacs"), []MatchEvent{{1, 6}})
	if got := eventsOf(e, "emacs...vi"); len(got) != 0 {
		t.Fatalf("order should matter: %v", got)
	}
	// Dot-star spans newlines (dotall).
	assertEvents(t, eventsOf(e, "vi\n\nemacs"), []MatchEvent{{1, 8}})
}

func TestAlternation(t *testing.T) {
	e := compile(t, "cat|dog")
	assertEvents(t, eventsOf(e, "a cat and a dog"), []MatchEvent{{1, 4}, {1, 14}})
}

func TestMultiPattern(t *testing.T) {
	e := compile(t, "abc", "bcd", "cde")
	got := eventsOf(e, "abcde")
	want := []MatchEvent{{1, 2}, {2, 3}, {3, 4}}
	assertEvents(t, got, want)
}

func TestQuantifiers(t *testing.T) {
	e := compile(t, "ab+c")
	assertEvents(t, eventsOf(e, "abc abbc ac"), []MatchEvent{{1, 2}, {1, 7}})

	e = compile(t, "ab?c")
	assertEvents(t, eventsOf(e, "abc ac abbc"), []MatchEvent{{1, 2}, {1, 5}})

	e = compile(t, "ab*c")
	assertEvents(t, eventsOf(e, "ac abc abbbc"), []MatchEvent{{1, 1}, {1, 5}, {1, 11}})
}

func TestBoundedRepeat(t *testing.T) {
	e := compile(t, "a{3}")
	assertEvents(t, eventsOf(e, "aaaa"), []MatchEvent{{1, 2}, {1, 3}})

	e = compile(t, "ba{2,3}b")
	assertEvents(t, eventsOf(e, "bab baab baaab baaaab"),
		[]MatchEvent{{1, 7}, {1, 13}})

	e = compile(t, "ba{2,}b")
	assertEvents(t, eventsOf(e, "bab baab baaaaab"),
		[]MatchEvent{{1, 7}, {1, 15}})
}

func TestCaseInsensitive(t *testing.T) {
	e := compile(t, "/abc/i")
	got := eventsOf(e, "ABC abc AbC")
	want := []MatchEvent{{1, 2}, {1, 6}, {1, 10}}
	assertEvents(t, got, want)
}

func TestNegatedClassStarPattern(t *testing.T) {
	// The almost-dot-star construct, undecomposed.
	e := compile(t, "abc[^\\n]*xyz")
	assertEvents(t, eventsOf(e, "abc:xyz"), []MatchEvent{{1, 6}})
	if got := eventsOf(e, "abc\nxyz"); len(got) != 0 {
		t.Fatalf("newline in gap must prevent match: %v", got)
	}
}

func TestStreamingAcrossFeedBoundaries(t *testing.T) {
	e := compile(t, "needle")
	r := e.NewRunner()
	var got []MatchEvent
	collect := func(id int, pos int64) { got = append(got, MatchEvent{id, pos}) }
	// Split the match across three Feed calls.
	r.Feed([]byte("hay nee"), collect)
	r.Feed([]byte("d"), collect)
	r.Feed([]byte("le hay"), collect)
	assertEvents(t, got, []MatchEvent{{1, 9}})
	if r.Pos() != 14 {
		t.Errorf("Pos() = %d, want 14", r.Pos())
	}
	// Reset starts a fresh flow.
	r.Reset()
	got = nil
	r.Feed([]byte("dle"), collect)
	if len(got) != 0 {
		t.Fatalf("stale state after Reset: %v", got)
	}
}

func TestDuplicateIDsDeduplicated(t *testing.T) {
	// Two alternates of one rule matching at the same position must
	// report the id once.
	e := compile(t, "ab|[ab]b")
	got := eventsOf(e, "ab")
	assertEvents(t, got, []MatchEvent{{1, 1}})
}

func TestNumStatesAndImage(t *testing.T) {
	e := compile(t, "abc", "defg")
	n := e.NFA()
	if n.NumStates() == 0 || n.NumTransitions() == 0 {
		t.Fatal("empty automaton")
	}
	if n.MemoryImageBytes() <= 0 {
		t.Fatal("non-positive memory image")
	}
	// More patterns, more states.
	bigger := compile(t, "abc", "defg", "hijkl").NFA()
	if bigger.NumStates() <= n.NumStates() {
		t.Errorf("adding a rule should add states: %d vs %d", bigger.NumStates(), n.NumStates())
	}
}

func TestActiveStatesGrowth(t *testing.T) {
	// Short patterns keep many states active, the paper's B217p effect.
	e := compile(t, "a", "b", "c", ".*")
	r := e.NewRunner()
	r.Feed([]byte("abc"), nil)
	if r.ActiveStates() == 0 {
		t.Fatal("no active states after input")
	}
}

func TestBuildSingle(t *testing.T) {
	p, err := regexparse.Parse("ab|cd")
	if err != nil {
		t.Fatal(err)
	}
	n, err := BuildSingle(p.Root)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(n)
	// BuildSingle is exact-match (no implicit .*): "xab" must not match
	// because the automaton is not started mid-flow... but simulation
	// starts once at position 0, so only prefixes of the input match.
	assertEvents(t, e.Run([]byte("ab")), []MatchEvent{{0, 1}})
	if got := e.Run([]byte("xab")); len(got) != 0 {
		t.Fatalf("anchored single build matched mid-flow: %v", got)
	}
}

func TestRepeatExpansionLimit(t *testing.T) {
	p, err := regexparse.Parse("a{200}")
	if err != nil {
		t.Fatal(err)
	}
	rep := p.Root
	// Nest repeats until the expansion (200^3 copies) must exceed the
	// builder's total state budget.
	nested := &regexparse.Node{Op: regexparse.OpRepeat, Min: 200, Max: 200, Sub: rep}
	nested = &regexparse.Node{Op: regexparse.OpRepeat, Min: 200, Max: 200, Sub: nested}
	if _, err := BuildSingle(nested); err == nil {
		t.Error("nested 200^3 repeat should exceed the state budget")
	}
}

// TestRepeatExpansionBoundary pins the expansion cap at exactly
// MaxExpandedRepeat parts for both repeat forms: a bounded {n,m} costs m
// copies (no trailing star), an unbounded {n,} costs n copies plus one
// star. The nodes are built directly because the parser's own repeat cap
// sits below MaxExpandedRepeat.
func TestRepeatExpansionBoundary(t *testing.T) {
	sub := regexparse.NewClassNode(regexparse.SingleClass('a'))
	cases := []struct {
		min, max int
		ok       bool
	}{
		{MaxExpandedRepeat, MaxExpandedRepeat, true},
		{0, MaxExpandedRepeat, true},
		{MaxExpandedRepeat, MaxExpandedRepeat + 1, false},
		{0, MaxExpandedRepeat + 1, false},
		{MaxExpandedRepeat - 1, regexparse.InfiniteRepeat, true},
		{MaxExpandedRepeat, regexparse.InfiniteRepeat, false},
	}
	for _, tc := range cases {
		n := &regexparse.Node{Op: regexparse.OpRepeat, Min: tc.min, Max: tc.max, Sub: sub}
		_, err := BuildSingle(n)
		if tc.ok && err != nil {
			t.Errorf("{%d,%d}: unexpected error: %v", tc.min, tc.max, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("{%d,%d}: expected expansion-limit error", tc.min, tc.max)
		}
	}

	// The bounded form at the cap must not just build but match.
	n := &regexparse.Node{Op: regexparse.OpRepeat, Min: MaxExpandedRepeat, Max: MaxExpandedRepeat, Sub: sub}
	a, err := BuildSingle(n)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(a)
	input := strings.Repeat("a", MaxExpandedRepeat)
	got := e.Run([]byte(input))
	want := []MatchEvent{{0, int64(MaxExpandedRepeat - 1)}}
	assertEvents(t, got, want)
}

// TestAgainstStdlibRegexp cross-checks match positions against Go's
// regexp package on random inputs for a set of patterns expressible in
// both engines.
func TestAgainstStdlibRegexp(t *testing.T) {
	patterns := []string{
		"abc",
		"a[bc]d",
		"x(yz|zy)w",
		"ab+c?",
		"foo[0-9]{2}bar",
		"(cat|dog|bird)s",
	}
	rng := rand.New(rand.NewSource(42))
	alphabet := "abcdefgxyzw0123456789 \n"
	for _, src := range patterns {
		e := compile(t, src)
		std := regexp.MustCompile(src)
		for trial := 0; trial < 50; trial++ {
			n := 1 + rng.Intn(60)
			var sb strings.Builder
			for i := 0; i < n; i++ {
				sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
			}
			// Occasionally embed a known matching substring.
			input := sb.String()
			if trial%5 == 0 {
				input += "abcd foo42bar cats"
			}
			gotEnds := map[int64]bool{}
			for _, ev := range e.Run([]byte(input)) {
				gotEnds[ev.Pos] = true
			}
			wantEnds := stdlibMatchEnds(std, input)
			for pos := range wantEnds {
				if !gotEnds[pos] {
					t.Fatalf("pattern %q input %q: stdlib match ending at %d missed", src, input, pos)
				}
			}
			for pos := range gotEnds {
				if !wantEnds[pos] {
					t.Fatalf("pattern %q input %q: spurious match ending at %d", src, input, pos)
				}
			}
		}
	}
}

// stdlibMatchEnds returns the set of 0-based end positions (inclusive) at
// which any match of re ends, computed by brute force over substrings so
// that overlapping and nested matches are all visible.
func stdlibMatchEnds(re *regexp.Regexp, input string) map[int64]bool {
	anch := regexp.MustCompile("^(?s)(?:" + re.String() + ")$")
	ends := map[int64]bool{}
	for end := 1; end <= len(input); end++ {
		for start := 0; start < end; start++ {
			if anch.MatchString(input[start:end]) {
				ends[int64(end-1)] = true
				break
			}
		}
	}
	return ends
}

func assertEvents(t *testing.T, got, want []MatchEvent) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d: got %v, want %v", i, got, want)
		}
	}
}
