// Package nfa implements Thompson construction of non-deterministic finite
// automata over the byte alphabet, and a sparse-set simulation engine. The
// NFA is both the paper's small-but-slow baseline and the substrate from
// which the DFA, HFA and MFA engines are built by subset construction.
package nfa

import (
	"fmt"
	"slices"

	"matchfilter/internal/regexparse"
)

// StateID indexes a state within an NFA.
type StateID = int32

// NoMatch is the sentinel used where a match id is absent.
const NoMatch = -1

// Transition is a consuming edge: on any byte in Class, move to state To.
type Transition struct {
	Class regexparse.Class
	To    StateID
}

// State is one NFA state: its consuming transitions, its epsilon
// transitions, and the match ids reported when the state is active.
type State struct {
	Trans   []Transition
	Eps     []StateID
	Matches []int
}

// NFA is a non-deterministic automaton with a single start state. Accepting
// states carry non-empty Matches.
type NFA struct {
	States []State
	Start  StateID
}

// Rule pairs a parsed pattern with the match id its acceptance reports.
type Rule struct {
	Pattern *regexparse.Pattern
	MatchID int
}

// MaxExpandedRepeat bounds the total number of fragment copies a single
// {n,m} node may expand to during construction.
const MaxExpandedRepeat = 1024

// MaxBuildStates bounds the total number of NFA states one Build call may
// create, guarding against pathological nested-repeat expansion.
const MaxBuildStates = 1 << 20

type builder struct {
	states []State
	// err latches the first construction failure (state-budget overflow)
	// so newState can keep a simple signature; Build checks it once per
	// compiled rule.
	err error
}

func (b *builder) newState() StateID {
	if len(b.states) >= MaxBuildStates {
		if b.err == nil {
			b.err = fmt.Errorf("automaton exceeds %d states during construction", MaxBuildStates)
		}
		return 0
	}
	b.states = append(b.states, State{})
	return StateID(len(b.states) - 1)
}

func (b *builder) addEps(from, to StateID) {
	b.states[from].Eps = append(b.states[from].Eps, to)
}

func (b *builder) addTrans(from StateID, cl regexparse.Class, to StateID) {
	b.states[from].Trans = append(b.states[from].Trans, Transition{Class: cl, To: to})
}

// frag is a Thompson fragment with one entry and one exit state.
type frag struct {
	start, end StateID
}

// Build constructs the union NFA of all rules. Unanchored patterns are
// given a leading .* so they match anywhere in the flow, mirroring how the
// paper treats the implicit search semantics of security rules.
func Build(rules []Rule) (*NFA, error) {
	b := &builder{states: make([]State, 0, 64)}
	start := b.newState()
	for _, r := range rules {
		root := r.Pattern.Root
		if !r.Pattern.Anchored {
			root = regexparse.NewConcat(regexparse.DotStar(), root.Clone())
		}
		f, err := b.compile(root)
		if err == nil {
			err = b.err
		}
		if err != nil {
			return nil, fmt.Errorf("nfa: rule %d (%s): %w", r.MatchID, r.Pattern.Source, err)
		}
		b.addEps(start, f.start)
		b.states[f.end].Matches = append(b.states[f.end].Matches, r.MatchID)
	}
	return &NFA{States: b.states, Start: start}, nil
}

// BuildSingle constructs an NFA for a bare AST node with its accepting
// state reporting match id 0. No implicit .* is prepended: the automaton
// accepts exactly the language of the node. It is used by the splitter's
// overlap analysis.
func BuildSingle(node *regexparse.Node) (*NFA, error) {
	b := &builder{}
	f, err := b.compile(node)
	if err == nil {
		err = b.err
	}
	if err != nil {
		return nil, fmt.Errorf("nfa: %w", err)
	}
	b.states[f.end].Matches = append(b.states[f.end].Matches, 0)
	return &NFA{States: b.states, Start: f.start}, nil
}

func (b *builder) compile(n *regexparse.Node) (frag, error) {
	if b.err != nil {
		// The state budget is already blown; stop walking what may be an
		// enormous expanded tree.
		return frag{}, b.err
	}
	switch n.Op {
	case regexparse.OpEmpty:
		s := b.newState()
		e := b.newState()
		b.addEps(s, e)
		return frag{s, e}, nil

	case regexparse.OpClass:
		s := b.newState()
		e := b.newState()
		b.addTrans(s, n.Class, e)
		return frag{s, e}, nil

	case regexparse.OpConcat:
		cur, err := b.compile(n.Subs[0])
		if err != nil {
			return frag{}, err
		}
		for _, sub := range n.Subs[1:] {
			next, err := b.compile(sub)
			if err != nil {
				return frag{}, err
			}
			b.addEps(cur.end, next.start)
			cur = frag{cur.start, next.end}
		}
		return cur, nil

	case regexparse.OpAlternate:
		s := b.newState()
		e := b.newState()
		for _, sub := range n.Subs {
			f, err := b.compile(sub)
			if err != nil {
				return frag{}, err
			}
			b.addEps(s, f.start)
			b.addEps(f.end, e)
		}
		return frag{s, e}, nil

	case regexparse.OpStar:
		f, err := b.compile(n.Sub)
		if err != nil {
			return frag{}, err
		}
		s := b.newState()
		e := b.newState()
		b.addEps(s, f.start)
		b.addEps(s, e)
		b.addEps(f.end, f.start)
		b.addEps(f.end, e)
		return frag{s, e}, nil

	case regexparse.OpPlus:
		f, err := b.compile(n.Sub)
		if err != nil {
			return frag{}, err
		}
		e := b.newState()
		b.addEps(f.end, f.start)
		b.addEps(f.end, e)
		return frag{f.start, e}, nil

	case regexparse.OpQuest:
		f, err := b.compile(n.Sub)
		if err != nil {
			return frag{}, err
		}
		s := b.newState()
		e := b.newState()
		b.addEps(s, f.start)
		b.addEps(s, e)
		b.addEps(f.end, e)
		return frag{s, e}, nil

	case regexparse.OpRepeat:
		return b.compileRepeat(n)

	default:
		return frag{}, fmt.Errorf("unknown AST op %v", n.Op)
	}
}

// compileRepeat expands {n,m} by duplication: n mandatory copies followed
// by m-n optional copies, or a trailing star for an unbounded tail.
func (b *builder) compileRepeat(n *regexparse.Node) (frag, error) {
	// Count the exact number of fragment copies the expansion below
	// creates: a bounded {n,m} becomes m copies (n mandatory, m-n
	// optional); an unbounded {n,} becomes n mandatory copies plus one
	// trailing star. The former guard charged every repeat for the
	// trailing star and so rejected bounded repeats one copy early.
	count := n.Min + 1
	if n.Max != regexparse.InfiniteRepeat {
		count = n.Max
	}
	if count > MaxExpandedRepeat {
		return frag{}, fmt.Errorf("repeat {%d,%d} expands beyond %d copies", n.Min, n.Max, MaxExpandedRepeat)
	}
	parts := make([]*regexparse.Node, 0, count)
	for i := 0; i < n.Min; i++ {
		parts = append(parts, n.Sub)
	}
	if n.Max == regexparse.InfiniteRepeat {
		parts = append(parts, regexparse.NewStar(n.Sub))
	} else {
		for i := n.Min; i < n.Max; i++ {
			parts = append(parts, &regexparse.Node{Op: regexparse.OpQuest, Sub: n.Sub})
		}
	}
	if len(parts) == 0 {
		return b.compile(&regexparse.Node{Op: regexparse.OpEmpty})
	}
	return b.compile(regexparse.NewConcat(parts...))
}

// NumStates returns the number of states, the "NFA Qs" column of Table V.
func (n *NFA) NumStates() int { return len(n.States) }

// NumTransitions returns the total number of consuming transitions.
func (n *NFA) NumTransitions() int {
	total := 0
	for i := range n.States {
		total += len(n.States[i].Trans)
	}
	return total
}

// MemoryImageBytes estimates the contiguous memory needed to store the
// automaton for matching: per-state headers plus each consuming transition
// (a 32-byte class bitmap and a 4-byte target) and epsilon edge.
func (n *NFA) MemoryImageBytes() int {
	const (
		stateHeader = 16 // offsets into the transition and epsilon arrays
		transSize   = 36 // 256-bit class + int32 target
		epsSize     = 4
		matchSize   = 4
	)
	total := len(n.States) * stateHeader
	for i := range n.States {
		total += len(n.States[i].Trans)*transSize +
			len(n.States[i].Eps)*epsSize +
			len(n.States[i].Matches)*matchSize
	}
	return total
}

// EpsClosure returns the epsilon closure of the given states (including
// themselves) as a sorted, deduplicated slice. The seen scratch slice must
// have length NumStates and be all-false; it is reset before return.
func (n *NFA) EpsClosure(states []StateID, seen []bool) []StateID {
	var out []StateID
	var stack []StateID
	for _, s := range states {
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, s)
		for _, t := range n.States[s].Eps {
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	for _, s := range out {
		seen[s] = false
	}
	slices.Sort(out)
	return out
}
