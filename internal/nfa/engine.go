package nfa

// MatchFunc receives a match event: the rule's match id and the 0-based
// offset of the byte at which the match completed.
type MatchFunc func(id int, pos int64)

// Engine is an immutable, shareable NFA matcher with precomputed epsilon
// closures. Per-flow mutable state lives in Runner, so one Engine serves
// any number of concurrently scanned flows.
type Engine struct {
	n        *NFA
	closures [][]StateID // epsilon closure of each state, sorted
	startSet []StateID   // closure of the start state
}

// NewEngine precomputes epsilon closures and returns a matcher for n.
func NewEngine(n *NFA) *Engine {
	seen := make([]bool, n.NumStates())
	closures := make([][]StateID, n.NumStates())
	for s := range closures {
		closures[s] = n.EpsClosure([]StateID{StateID(s)}, seen)
	}
	return &Engine{
		n:        n,
		closures: closures,
		startSet: closures[n.Start],
	}
}

// NFA returns the underlying automaton.
func (e *Engine) NFA() *NFA { return e.n }

// Runner holds the mutable matching state for one flow: the set of active
// NFA states and the running byte offset.
type Runner struct {
	e      *Engine
	cur    []StateID
	next   []StateID
	inNext []bool
	ids    []int // per-position match id scratch, for deduplication
	pos    int64
}

// NewRunner returns a runner positioned at the start of a flow.
func (e *Engine) NewRunner() *Runner {
	r := &Runner{
		e:      e,
		cur:    make([]StateID, 0, len(e.startSet)),
		next:   make([]StateID, 0, len(e.startSet)),
		inNext: make([]bool, e.n.NumStates()),
	}
	r.Reset()
	return r
}

// Reset rewinds the runner to the start of a new flow.
func (r *Runner) Reset() {
	r.cur = append(r.cur[:0], r.e.startSet...)
	r.pos = 0
}

// Pos returns the number of bytes consumed so far.
func (r *Runner) Pos() int64 { return r.pos }

// ActiveStates returns the number of currently active NFA states; the
// paper's explanation for the bimodal NFA throughput (§V-D) is exactly
// this number.
func (r *Runner) ActiveStates() int { return len(r.cur) }

// Feed advances the runner over data, invoking onMatch (if non-nil) for
// every match event. Matches of the empty pattern are not reported.
func (r *Runner) Feed(data []byte, onMatch MatchFunc) {
	n := r.e.n
	closures := r.e.closures
	for i := 0; i < len(data); i++ {
		c := data[i]
		r.next = r.next[:0]
		r.ids = r.ids[:0]
		for _, s := range r.cur {
			for _, t := range n.States[s].Trans {
				if !t.Class.Contains(c) {
					continue
				}
				for _, q := range closures[t.To] {
					if r.inNext[q] {
						continue
					}
					r.inNext[q] = true
					r.next = append(r.next, q)
					for _, id := range n.States[q].Matches {
						r.ids = appendUniqueID(r.ids, id)
					}
				}
			}
		}
		for _, q := range r.next {
			r.inNext[q] = false
		}
		if onMatch != nil {
			for _, id := range r.ids {
				onMatch(id, r.pos)
			}
		}
		r.cur, r.next = r.next, r.cur
		r.pos++
	}
}

// appendUniqueID appends id unless already present. Match sets at a single
// position are tiny, so a linear scan beats any map.
func appendUniqueID(ids []int, id int) []int {
	for _, v := range ids {
		if v == id {
			return ids
		}
	}
	return append(ids, id)
}

// Run scans data from the start of a fresh flow and returns all matches in
// order. It is a convenience wrapper for tests and one-shot scans.
func (e *Engine) Run(data []byte) []MatchEvent {
	var out []MatchEvent
	r := e.NewRunner()
	r.Feed(data, func(id int, pos int64) {
		out = append(out, MatchEvent{ID: id, Pos: pos})
	})
	return out
}

// MatchEvent records one reported match: the rule id and the offset of the
// final byte of the matching substring.
type MatchEvent struct {
	ID  int
	Pos int64
}
