package regexparse

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, src string) *Pattern {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return p
}

func TestParseLiteral(t *testing.T) {
	p := mustParse(t, "abc")
	if p.Root.Op != OpConcat || len(p.Root.Subs) != 3 {
		t.Fatalf("want 3-part concat, got %v", p.Root.Op)
	}
	for i, want := range []byte{'a', 'b', 'c'} {
		sub := p.Root.Subs[i]
		if sub.Op != OpClass {
			t.Fatalf("sub %d: want class, got %v", i, sub.Op)
		}
		if c, ok := sub.Class.SingleByte(); !ok || c != want {
			t.Fatalf("sub %d: want %q, got %q (ok=%v)", i, want, c, ok)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	p := mustParse(t, "")
	if p.Root.Op != OpEmpty {
		t.Fatalf("want OpEmpty, got %v", p.Root.Op)
	}
}

func TestParseAnchor(t *testing.T) {
	if !mustParse(t, "^abc").Anchored {
		t.Error("^abc should be anchored")
	}
	if mustParse(t, "abc").Anchored {
		t.Error("abc should not be anchored")
	}
}

func TestParseDot(t *testing.T) {
	p := mustParse(t, ".")
	if p.Root.Op != OpClass || p.Root.Class.Count() != AlphabetSize {
		t.Fatalf("dot should match all %d bytes, got %d", AlphabetSize, p.Root.Class.Count())
	}
	if !p.Root.Class.Contains('\n') {
		t.Error("dot must include newline (dotall semantics, per the paper)")
	}
}

func TestParseDotStar(t *testing.T) {
	p := mustParse(t, ".*abc")
	if p.Root.Op != OpConcat {
		t.Fatalf("want concat, got %v", p.Root.Op)
	}
	if !p.Root.Subs[0].IsDotStar() {
		t.Error("first element should be recognized as dot-star")
	}
}

func TestParseQuantifiers(t *testing.T) {
	tests := []struct {
		src string
		op  Op
	}{
		{"a*", OpStar},
		{"a+", OpPlus},
		{"a?", OpQuest},
		{"a{3}", OpRepeat},
		{"a{3,}", OpRepeat},
		{"a{3,7}", OpRepeat},
	}
	for _, tt := range tests {
		p := mustParse(t, tt.src)
		if p.Root.Op != tt.op {
			t.Errorf("%q: want %v, got %v", tt.src, tt.op, p.Root.Op)
		}
	}
	p := mustParse(t, "a{3,7}")
	if p.Root.Min != 3 || p.Root.Max != 7 {
		t.Errorf("a{3,7}: got min=%d max=%d", p.Root.Min, p.Root.Max)
	}
	p = mustParse(t, "a{3,}")
	if p.Root.Min != 3 || p.Root.Max != InfiniteRepeat {
		t.Errorf("a{3,}: got min=%d max=%d", p.Root.Min, p.Root.Max)
	}
}

func TestParseLiteralBrace(t *testing.T) {
	// A brace that is not a valid quantifier is a literal, like PCRE.
	for _, src := range []string{"a{", "a{b}", "a{1,2,3}", "{2}"} {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q) should accept literal brace: %v", src, err)
		}
	}
}

func TestParseClass(t *testing.T) {
	p := mustParse(t, "[a-f0-9]")
	cl := p.Root.Class
	if cl.Count() != 16 {
		t.Fatalf("[a-f0-9] should have 16 members, got %d", cl.Count())
	}
	for _, c := range []byte("abcdef0123456789") {
		if !cl.Contains(c) {
			t.Errorf("missing %q", c)
		}
	}
}

func TestParseNegatedClass(t *testing.T) {
	p := mustParse(t, `[^\n]`)
	cl := p.Root.Class
	if cl.Count() != 255 || cl.Contains('\n') {
		t.Fatalf("[^\\n]: count=%d contains \\n=%v", cl.Count(), cl.Contains('\n'))
	}
	x, ok := mustParse(t, `[^\n]*`).Root.NegatedClassStar()
	if !ok {
		t.Fatal("NegatedClassStar should recognize [^\\n]*")
	}
	if x.Count() != 1 || !x.Contains('\n') {
		t.Errorf("X should be {\\n}, got %d members", x.Count())
	}
}

func TestParseClassEdgeCases(t *testing.T) {
	// ']' as first member is a literal.
	p := mustParse(t, "[]a]")
	if !p.Root.Class.Contains(']') || !p.Root.Class.Contains('a') {
		t.Error("[]a] should contain ']' and 'a'")
	}
	// '-' at end is a literal.
	p = mustParse(t, "[a-]")
	if !p.Root.Class.Contains('-') {
		t.Error("[a-] should contain '-'")
	}
	// Shorthand inside class.
	p = mustParse(t, `[\d_]`)
	if p.Root.Class.Count() != 11 {
		t.Errorf(`[\d_] should have 11 members, got %d`, p.Root.Class.Count())
	}
}

func TestParseEscapes(t *testing.T) {
	tests := []struct {
		src  string
		want byte
	}{
		{`\n`, '\n'}, {`\t`, '\t'}, {`\r`, '\r'}, {`\f`, '\f'},
		{`\v`, '\v'}, {`\a`, 7}, {`\e`, 0x1b}, {`\0`, 0},
		{`\x41`, 'A'}, {`\xff`, 0xff}, {`\.`, '.'}, {`\*`, '*'},
		{`\\`, '\\'}, {`\[`, '['}, {`\/`, '/'},
	}
	for _, tt := range tests {
		p := mustParse(t, tt.src)
		c, ok := p.Root.Class.SingleByte()
		if !ok || c != tt.want {
			t.Errorf("%q: want byte %#x, got %#x (ok=%v)", tt.src, tt.want, c, ok)
		}
	}
}

func TestParseAlternationAndGroups(t *testing.T) {
	p := mustParse(t, "abc|def|ghi")
	if p.Root.Op != OpAlternate || len(p.Root.Subs) != 3 {
		t.Fatalf("want 3-way alternate, got %v/%d", p.Root.Op, len(p.Root.Subs))
	}
	p = mustParse(t, "a(b|c)d")
	if p.Root.Op != OpConcat || len(p.Root.Subs) != 3 {
		t.Fatalf("want 3-part concat, got %v/%d", p.Root.Op, len(p.Root.Subs))
	}
	if p.Root.Subs[1].Op != OpAlternate {
		t.Errorf("middle should be alternate, got %v", p.Root.Subs[1].Op)
	}
	// Non-capturing group syntax.
	if _, err := Parse("a(?:b|c)d"); err != nil {
		t.Errorf("(?:...) should parse: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"(", ")", "(a", "a)", "*a", "+", "?x", "[", "[a", "[z-a]", `\`, `\x4`, `\xzz`, "[^\x00-\xff]", "a{5,2}"}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseUnsupported(t *testing.T) {
	unsupported := []string{"a$", "a^b", `a\bword`, `(a)\1`, "(?=x)a", "(?<name>a)", "a{1001}", "a{2,9999}"}
	for _, src := range unsupported {
		_, err := Parse(src)
		if !errors.Is(err, ErrUnsupported) {
			t.Errorf("Parse(%q): want ErrUnsupported, got %v", src, err)
		}
	}
}

func TestParsePCRESlashed(t *testing.T) {
	p, err := ParsePCRE(`/abc/i`)
	if err != nil {
		t.Fatal(err)
	}
	if !p.CaseInsensitive {
		t.Error("/abc/i should be case-insensitive")
	}
	cl := p.Root.Subs[0].Class
	if !cl.Contains('a') || !cl.Contains('A') {
		t.Error("case folding should include both cases")
	}
	if _, err := ParsePCRE(`/a\/b/`); err != nil {
		t.Errorf(`escaped slash in body: %v`, err)
	}
	if _, err := ParsePCRE(`/abc/q`); !errors.Is(err, ErrUnsupported) {
		t.Errorf("unknown flag should be ErrUnsupported, got %v", err)
	}
	// Bare pattern through ParsePCRE.
	if p, err := ParsePCRE("xyz"); err != nil || p.Root.Op != OpConcat {
		t.Errorf("bare pattern via ParsePCRE: %v", err)
	}
}

func TestCaseFoldClasses(t *testing.T) {
	p, err := ParsePCRE(`/[a-c]x/i`)
	if err != nil {
		t.Fatal(err)
	}
	cl := p.Root.Subs[0].Class
	for _, c := range []byte("abcABC") {
		if !cl.Contains(c) {
			t.Errorf("folded [a-c] missing %q", c)
		}
	}
}

func TestSyntaxErrorFields(t *testing.T) {
	_, err := Parse("ab(")
	var serr *SyntaxError
	if !errors.As(err, &serr) {
		t.Fatalf("want *SyntaxError, got %T", err)
	}
	if serr.Pattern != "ab(" {
		t.Errorf("Pattern = %q", serr.Pattern)
	}
	if !strings.Contains(serr.Error(), "offset") {
		t.Errorf("Error() should mention offset: %s", serr.Error())
	}
}

func TestMatchesEmpty(t *testing.T) {
	tests := []struct {
		src  string
		want bool
	}{
		{"", true}, {"a", false}, {"a*", true}, {"a+", false},
		{"a?", true}, {"a{0,3}", true}, {"a{1,3}", false},
		{"ab", false}, {"a*b*", true}, {"a|", true}, {"a|b", false},
		{"(a*)+", true},
	}
	for _, tt := range tests {
		p := mustParse(t, tt.src)
		if got := p.Root.MatchesEmpty(); got != tt.want {
			t.Errorf("MatchesEmpty(%q) = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	// String() output must reparse to an AST with identical rendering.
	sources := []string{
		"abc", ".*abc.*def", "a|b|c", "(ab|cd)*x", "[a-f]{2,5}",
		`[^\n]*`, "a+b?c*", `\x00\xff`, "vi.*emacs|bsd.*gnu|abc.*mm?o.*xyz",
		"(a*)*", "x{3}", "x{3,}", "[-a]", "[]x]",
	}
	for _, src := range sources {
		p1 := mustParse(t, src)
		rendered := p1.String()
		p2, err := Parse(rendered)
		if err != nil {
			t.Errorf("reparse of %q (from %q) failed: %v", rendered, src, err)
			continue
		}
		if p2.String() != rendered {
			t.Errorf("round-trip not stable: %q -> %q -> %q", src, rendered, p2.String())
		}
	}
}

func TestClassOps(t *testing.T) {
	a := RangeClass('a', 'm')
	b := RangeClass('h', 'z')
	if got := a.Union(b).Count(); got != 26 {
		t.Errorf("union count = %d, want 26", got)
	}
	if got := a.Intersect(b).Count(); got != 6 {
		t.Errorf("intersect count = %d, want 6", got)
	}
	if got := a.Minus(b).Count(); got != 7 {
		t.Errorf("minus count = %d, want 7", got)
	}
	if !a.Negate().Negate().Equal(a) {
		t.Error("double negation should be identity")
	}
	var empty Class
	if !empty.IsEmpty() || empty.Count() != 0 {
		t.Error("zero value should be empty")
	}
	if AnyClass().Count() != AlphabetSize {
		t.Error("AnyClass should be full")
	}
}

func TestClassBytesSorted(t *testing.T) {
	cl := StringClass("zebra")
	bs := cl.Bytes()
	for i := 1; i < len(bs); i++ {
		if bs[i] <= bs[i-1] {
			t.Fatalf("Bytes() not strictly ascending: %v", bs)
		}
	}
	if len(bs) != 5 { // z e b r a
		t.Fatalf("want 5 distinct bytes, got %d", len(bs))
	}
}

func TestClassPropertyQuick(t *testing.T) {
	// De Morgan: ^(A ∪ B) == ^A ∩ ^B, and count(A)+count(^A) == 256.
	f := func(aw, bw [4]uint64) bool {
		a, b := Class(aw), Class(bw)
		if !a.Union(b).Negate().Equal(a.Negate().Intersect(b.Negate())) {
			return false
		}
		return a.Count()+a.Negate().Count() == AlphabetSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClassContainsMatchesBytes(t *testing.T) {
	f := func(w [4]uint64) bool {
		cl := Class(w)
		want := make(map[byte]bool, cl.Count())
		for _, b := range cl.Bytes() {
			want[b] = true
		}
		for c := 0; c < AlphabetSize; c++ {
			if cl.Contains(byte(c)) != want[byte(c)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNodeClone(t *testing.T) {
	p := mustParse(t, "a(b|c)*d{2,4}")
	clone := p.Root.Clone()
	if clone.String() != p.Root.String() {
		t.Fatalf("clone renders differently: %q vs %q", clone.String(), p.Root.String())
	}
	// Mutating the clone must not affect the original.
	clone.Subs[0].Class.Add('z')
	if p.Root.Subs[0].Class.Contains('z') {
		t.Error("clone shares class storage with original")
	}
}

func TestShorthandClasses(t *testing.T) {
	tests := []struct {
		src    string
		count  int
		member byte
		non    byte
	}{
		{`\d`, 10, '7', 'a'},
		{`\D`, 246, 'a', '7'},
		{`\w`, 63, '_', '-'},
		{`\W`, 193, '-', '_'},
		{`\s`, 6, ' ', 'x'},
		{`\S`, 250, 'x', ' '},
	}
	for _, tt := range tests {
		p := mustParse(t, tt.src)
		cl := p.Root.Class
		if cl.Count() != tt.count {
			t.Errorf("%s: count %d, want %d", tt.src, cl.Count(), tt.count)
		}
		if !cl.Contains(tt.member) || cl.Contains(tt.non) {
			t.Errorf("%s: membership wrong", tt.src)
		}
	}
}

func TestClassRemove(t *testing.T) {
	cl := StringClass("abc")
	cl.Remove('b')
	if cl.Contains('b') || !cl.Contains('a') || cl.Count() != 2 {
		t.Errorf("Remove: %v", cl.Bytes())
	}
}

func TestNewLiteralNode(t *testing.T) {
	if NewLiteralNode("").Op != OpEmpty {
		t.Error("empty literal should be OpEmpty")
	}
	n := NewLiteralNode("x")
	if n.Op != OpClass {
		t.Error("single-byte literal should be a class")
	}
	n = NewLiteralNode("abc")
	if n.Op != OpConcat || len(n.Subs) != 3 || n.String() != "abc" {
		t.Errorf("literal node: %v", n.String())
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{
		OpEmpty: "Empty", OpClass: "Class", OpConcat: "Concat",
		OpAlternate: "Alternate", OpStar: "Star", OpPlus: "Plus",
		OpQuest: "Quest", OpRepeat: "Repeat", Op(42): "Op(42)",
	} {
		if op.String() != want {
			t.Errorf("Op(%d).String() = %q", int(op), op.String())
		}
	}
}

func TestClassStringRoundTrip(t *testing.T) {
	// Class rendering must reparse to the same set, across negation,
	// ranges and control characters.
	classes := []Class{
		SingleClass('a'),
		SingleClass('\n'),
		SingleClass(0x00),
		RangeClass('a', 'z'),
		RangeClass('a', 'z').Negate(),
		StringClass("]^-\\"),
		AnyClass(),
	}
	for _, cl := range classes {
		src := cl.String()
		p, err := Parse(src)
		if err != nil {
			t.Errorf("class %q does not reparse: %v", src, err)
			continue
		}
		if p.Root.Op != OpClass || !p.Root.Class.Equal(cl) {
			t.Errorf("class %q round-trip mismatch", src)
		}
	}
}

func TestPatternString(t *testing.T) {
	p := mustParse(t, "^abc.*def")
	if p.String() != "^abc.*def" {
		t.Errorf("Pattern.String() = %q", p.String())
	}
}

func TestParseRepeatBoundary(t *testing.T) {
	// MaxRepeatCount itself is accepted on both bounds; one past it is
	// rejected (covered by TestParseUnsupported). The boundary matters:
	// counter-register rules (DESIGN.md §19) use windows far above the
	// old 255-expansion comfort zone.
	for _, src := range []string{"a{1000}", "a{1000,}", "a{2,1000}", "a{1000,1000}"} {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q) should accept counts up to MaxRepeatCount: %v", src, err)
		}
	}
	p := mustParse(t, "a{1000,1000}")
	if p.Root.Min != MaxRepeatCount || p.Root.Max != MaxRepeatCount {
		t.Errorf("a{1000,1000}: got min=%d max=%d", p.Root.Min, p.Root.Max)
	}
}

func TestBoundedGap(t *testing.T) {
	tests := []struct {
		src              string
		minGap, maxGap   int
		full, ok         bool
		negatedHasByte   byte
		negatedByteCount int
	}{
		{src: ".{3,7}", minGap: 3, maxGap: 7, full: true, ok: true},
		{src: ".{0,40}", minGap: 0, maxGap: 40, full: true, ok: true},
		{src: `[^\n]{2,9}`, minGap: 2, maxGap: 9, ok: true, negatedHasByte: '\n', negatedByteCount: 1},
		{src: "[^ab]{1,4}", minGap: 1, maxGap: 4, ok: true, negatedHasByte: 'b', negatedByteCount: 2},
		// A repeat of the 1-byte class {a} qualifies too: a bounded gap
		// over X = ¬{a} with 255 forbidden bytes.
		{src: "a{3,7}", minGap: 3, maxGap: 7, ok: true, negatedHasByte: 'b', negatedByteCount: 255},
		{src: ".{3,}"}, // unbounded: counting gap, not a bounded gap
		{src: ".*"},
		{src: "(ab){2,4}"}, // multi-byte sub: not a single-class gap
	}
	for _, tt := range tests {
		p := mustParse(t, tt.src)
		minGap, maxGap, negated, full, ok := p.Root.BoundedGap()
		if ok != tt.ok {
			t.Errorf("%q: BoundedGap ok=%v, want %v", tt.src, ok, tt.ok)
			continue
		}
		if !tt.ok {
			continue
		}
		if minGap != tt.minGap || maxGap != tt.maxGap || full != tt.full {
			t.Errorf("%q: got (%d,%d,full=%v), want (%d,%d,full=%v)",
				tt.src, minGap, maxGap, full, tt.minGap, tt.maxGap, tt.full)
		}
		if tt.negatedByteCount > 0 {
			if !negated.Contains(tt.negatedHasByte) || negated.Count() != tt.negatedByteCount {
				t.Errorf("%q: negated class wrong: has(%q)=%v count=%d",
					tt.src, tt.negatedHasByte, negated.Contains(tt.negatedHasByte), negated.Count())
			}
		}
	}
}
