package regexparse

import "testing"

func TestFixedLength(t *testing.T) {
	tests := []struct {
		src   string
		n     int
		fixed bool
	}{
		{"", 0, true},
		{"a", 1, true},
		{"abc", 3, true},
		{"a.c", 3, true},
		{"[xy][ab]", 2, true},
		{"ab|cd", 2, true},
		{"ab|c", 0, false},
		{"a?", 0, false},
		{"a*", 0, false},
		{"a+", 0, false},
		{"a{3}", 3, true},
		{"a{2,4}", 0, false},
		{"(ab|cd){2}x", 5, true},
		{"a(b|cd)e", 0, false},
	}
	for _, tt := range tests {
		p := mustParse(t, tt.src)
		n, fixed := p.Root.FixedLength()
		if fixed != tt.fixed || (fixed && n != tt.n) {
			t.Errorf("FixedLength(%q) = (%d,%v), want (%d,%v)", tt.src, n, fixed, tt.n, tt.fixed)
		}
	}
}

func TestCountGap(t *testing.T) {
	tests := []struct {
		src string
		n   int
		ok  bool
	}{
		{".{5,}", 5, true},
		{".{1,}", 1, true},
		{".{200,}", 200, true},
		{".{0,}", 0, false},    // equivalent to .*, not a counting gap
		{".{5}", 0, false},     // bounded: expanded, not decomposed
		{".{5,9}", 0, false},   // windowed: not supported
		{"[^a]{5,}", 0, false}, // class gap: not supported
		{".*", 0, false},
		{"a{5,}", 0, false},
	}
	for _, tt := range tests {
		p := mustParse(t, tt.src)
		n, ok := p.Root.CountGap()
		if ok != tt.ok || (ok && n != tt.n) {
			t.Errorf("CountGap(%q) = (%d,%v), want (%d,%v)", tt.src, n, ok, tt.n, tt.ok)
		}
	}
}

func TestFilterActionExtensionFields(t *testing.T) {
	// The node constructors used by the splitter must produce fixed-length
	// class nodes for gap fragments.
	n, fixed := NewClassNode(StringClass("\n")).FixedLength()
	if !fixed || n != 1 {
		t.Fatalf("class node: (%d,%v)", n, fixed)
	}
}
