package regexparse

import (
	"fmt"
	"strings"
)

// Op identifies the kind of an AST node.
type Op int

// The node kinds. OpEmpty matches the empty string; OpClass matches one
// byte drawn from a Class; the rest are the usual regular operators.
const (
	OpEmpty Op = iota + 1
	OpClass
	OpConcat
	OpAlternate
	OpStar
	OpPlus
	OpQuest
	OpRepeat
)

// InfiniteRepeat is the Max value of an OpRepeat node with no upper bound,
// as in {3,}.
const InfiniteRepeat = -1

func (op Op) String() string {
	switch op {
	case OpEmpty:
		return "Empty"
	case OpClass:
		return "Class"
	case OpConcat:
		return "Concat"
	case OpAlternate:
		return "Alternate"
	case OpStar:
		return "Star"
	case OpPlus:
		return "Plus"
	case OpQuest:
		return "Quest"
	case OpRepeat:
		return "Repeat"
	default:
		return fmt.Sprintf("Op(%d)", int(op))
	}
}

// Node is a regular-expression AST node. Which fields are meaningful
// depends on Op: Class for OpClass; Subs for OpConcat and OpAlternate;
// Sub for the quantifiers; Min and Max additionally for OpRepeat.
type Node struct {
	Op    Op
	Class Class
	Subs  []*Node
	Sub   *Node
	Min   int
	Max   int
}

// Pattern is one parsed rule: a root node plus pattern-level attributes.
type Pattern struct {
	// Root is the body of the pattern, excluding any leading ^ anchor.
	Root *Node
	// Anchored reports whether the pattern began with ^ and therefore
	// must match at the start of the flow.
	Anchored bool
	// CaseInsensitive records the /i flag. Folding has already been
	// applied to every class in Root; the flag is retained so the
	// splitter can propagate it onto decomposed fragments.
	CaseInsensitive bool
	// Source is the original pattern text as given to the parser.
	Source string
}

// NewClassNode returns an OpClass node matching the given class.
func NewClassNode(cl Class) *Node {
	return &Node{Op: OpClass, Class: cl}
}

// NewLiteralNode returns a node matching exactly the bytes of s, as an
// OpConcat of single-byte classes (or OpEmpty when s is empty).
func NewLiteralNode(s string) *Node {
	if s == "" {
		return &Node{Op: OpEmpty}
	}
	if len(s) == 1 {
		return NewClassNode(SingleClass(s[0]))
	}
	subs := make([]*Node, len(s))
	for i := 0; i < len(s); i++ {
		subs[i] = NewClassNode(SingleClass(s[i]))
	}
	return &Node{Op: OpConcat, Subs: subs}
}

// NewConcat returns the concatenation of nodes, flattening nested concats
// and eliding OpEmpty operands.
func NewConcat(nodes ...*Node) *Node {
	flat := make([]*Node, 0, len(nodes))
	for _, n := range nodes {
		switch n.Op {
		case OpEmpty:
			// Identity element of concatenation.
		case OpConcat:
			flat = append(flat, n.Subs...)
		default:
			flat = append(flat, n)
		}
	}
	switch len(flat) {
	case 0:
		return &Node{Op: OpEmpty}
	case 1:
		return flat[0]
	}
	return &Node{Op: OpConcat, Subs: flat}
}

// NewAlternate returns the alternation of nodes, flattening nested
// alternations.
func NewAlternate(nodes ...*Node) *Node {
	flat := make([]*Node, 0, len(nodes))
	for _, n := range nodes {
		if n.Op == OpAlternate {
			flat = append(flat, n.Subs...)
		} else {
			flat = append(flat, n)
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return &Node{Op: OpAlternate, Subs: flat}
}

// NewStar returns sub*.
func NewStar(sub *Node) *Node { return &Node{Op: OpStar, Sub: sub} }

// DotStar returns the node .* (any byte, repeated), the pattern the
// splitter treats as a decomposition point.
func DotStar() *Node { return NewStar(NewClassNode(AnyClass())) }

// Clone returns a deep copy of the node.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	out := &Node{Op: n.Op, Class: n.Class, Min: n.Min, Max: n.Max}
	if n.Sub != nil {
		out.Sub = n.Sub.Clone()
	}
	if n.Subs != nil {
		out.Subs = make([]*Node, len(n.Subs))
		for i, s := range n.Subs {
			out.Subs[i] = s.Clone()
		}
	}
	return out
}

// MatchesEmpty reports whether the language of n contains the empty string.
func (n *Node) MatchesEmpty() bool {
	switch n.Op {
	case OpEmpty, OpStar, OpQuest:
		return true
	case OpClass:
		return false
	case OpPlus:
		return n.Sub.MatchesEmpty()
	case OpRepeat:
		return n.Min == 0 || n.Sub.MatchesEmpty()
	case OpConcat:
		for _, s := range n.Subs {
			if !s.MatchesEmpty() {
				return false
			}
		}
		return true
	case OpAlternate:
		for _, s := range n.Subs {
			if s.MatchesEmpty() {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// IsDotStar reports whether n is exactly .* — a star over the full
// alphabet. This is the "dot-star" decomposition point of §IV-A.
func (n *Node) IsDotStar() bool {
	return n.Op == OpStar && n.Sub.Op == OpClass && n.Sub.Class.Count() == AlphabetSize
}

// NegatedClassStar reports whether n has the form [^X]* for a non-full,
// non-empty complement — the "almost-dot-star" decomposition point of
// §IV-B — and if so returns X, the *negated* class that must not occur in
// the gap.
func (n *Node) NegatedClassStar() (x Class, ok bool) {
	if n.Op != OpStar || n.Sub.Op != OpClass {
		return Class{}, false
	}
	inner := n.Sub.Class
	cnt := inner.Count()
	if cnt == 0 || cnt == AlphabetSize {
		return Class{}, false
	}
	return inner.Negate(), true
}

// FixedLength reports whether every word of the node's language has the
// same length, and that length. The counting-gap decomposition needs it:
// a fragment's start offset is only recoverable from its end offset when
// its match length is fixed.
func (n *Node) FixedLength() (int, bool) {
	switch n.Op {
	case OpEmpty:
		return 0, true
	case OpClass:
		return 1, true
	case OpConcat:
		total := 0
		for _, s := range n.Subs {
			l, ok := s.FixedLength()
			if !ok {
				return 0, false
			}
			total += l
		}
		return total, true
	case OpAlternate:
		first, ok := n.Subs[0].FixedLength()
		if !ok {
			return 0, false
		}
		for _, s := range n.Subs[1:] {
			l, ok := s.FixedLength()
			if !ok || l != first {
				return 0, false
			}
		}
		return first, true
	case OpRepeat:
		if n.Max != n.Min {
			return 0, false
		}
		l, ok := n.Sub.FixedLength()
		if !ok {
			return 0, false
		}
		return l * n.Min, true
	default: // Star, Plus, Quest
		// Quest/Star/Plus of a zero-length body would be fixed, but such
		// degenerate nodes do not occur in practice; report variable.
		return 0, false
	}
}

// CountGap reports whether n has the form .{n,} — an unbounded counting
// gap over the full alphabet, the §VI "counting conditions" construct —
// and returns the minimum gap length.
func (n *Node) CountGap() (minGap int, ok bool) {
	if n.Op != OpRepeat || n.Max != InfiniteRepeat || n.Min < 1 {
		return 0, false
	}
	if n.Sub.Op != OpClass || n.Sub.Class.Count() != AlphabetSize {
		return 0, false
	}
	return n.Min, true
}

// BoundedGap reports whether n has the form X{n,m} for a finite m ≥ 1 over
// a single-byte class — a bounded counting gap, the construct the counter
// registers of DESIGN.md §19 compile instead of expanding by duplication —
// and returns the bounds, the negated class that must not occur in the gap
// (empty when X is the full alphabet, i.e. the gap is `.{n,m}`), and
// whether the gap class is the full alphabet.
func (n *Node) BoundedGap() (minGap, maxGap int, negated Class, full bool, ok bool) {
	if n.Op != OpRepeat || n.Max == InfiniteRepeat || n.Max < 1 || n.Min > n.Max {
		return 0, 0, Class{}, false, false
	}
	if n.Sub.Op != OpClass {
		return 0, 0, Class{}, false, false
	}
	cnt := n.Sub.Class.Count()
	if cnt == 0 {
		return 0, 0, Class{}, false, false
	}
	if cnt == AlphabetSize {
		return n.Min, n.Max, Class{}, true, true
	}
	return n.Min, n.Max, n.Sub.Class.Negate(), false, true
}

// String renders the node back to regex source. The output reparses to an
// equivalent AST; it is not guaranteed to be byte-identical to the input.
func (n *Node) String() string {
	var sb strings.Builder
	n.render(&sb, precAlternate)
	return sb.String()
}

// Operator precedence levels for rendering.
const (
	precAlternate = iota
	precConcat
	precRepeat
)

func (n *Node) render(sb *strings.Builder, prec int) {
	switch n.Op {
	case OpEmpty:
		if prec > precAlternate {
			sb.WriteString("()")
		}
	case OpClass:
		sb.WriteString(n.Class.String())
	case OpConcat:
		if prec > precConcat {
			sb.WriteByte('(')
		}
		for _, s := range n.Subs {
			s.render(sb, precConcat+1)
		}
		if prec > precConcat {
			sb.WriteByte(')')
		}
	case OpAlternate:
		if prec > precAlternate {
			sb.WriteByte('(')
		}
		for i, s := range n.Subs {
			if i > 0 {
				sb.WriteByte('|')
			}
			s.render(sb, precConcat)
		}
		if prec > precAlternate {
			sb.WriteByte(')')
		}
	case OpStar, OpPlus, OpQuest, OpRepeat:
		switch n.Sub.Op {
		case OpStar, OpPlus, OpQuest, OpRepeat, OpEmpty:
			// A quantifier applied to a quantified (or empty) node needs
			// explicit grouping to reparse: (a*)* rather than a**.
			sb.WriteByte('(')
			n.Sub.render(sb, precAlternate)
			sb.WriteByte(')')
		default:
			n.Sub.render(sb, precRepeat)
		}
		switch n.Op {
		case OpStar:
			sb.WriteByte('*')
		case OpPlus:
			sb.WriteByte('+')
		case OpQuest:
			sb.WriteByte('?')
		case OpRepeat:
			sb.WriteByte('{')
			fmt.Fprintf(sb, "%d", n.Min)
			if n.Max == InfiniteRepeat {
				sb.WriteString(",}")
			} else if n.Max == n.Min {
				sb.WriteByte('}')
			} else {
				fmt.Fprintf(sb, ",%d}", n.Max)
			}
		}
	}
}

// String renders the pattern, including any anchor, back to source form.
func (p *Pattern) String() string {
	body := p.Root.String()
	if p.Anchored {
		body = "^" + body
	}
	return body
}
