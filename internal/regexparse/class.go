// Package regexparse parses the PCRE subset used by network-security
// pattern sets (Snort, Bro, vendor rules) into an AST consumed by the
// NFA/DFA constructors and by the regex splitter.
//
// Supported syntax: byte literals, escapes (\n \t \r \f \v \a \0 \xHH,
// shorthand classes \d \D \w \W \s \S), character classes with ranges and
// negation, the dot wildcard, the quantifiers * + ? {n} {n,} {n,m},
// alternation, grouping, a leading ^ anchor, and the /.../i slashed form
// with a case-insensitive flag. Following the paper's usage, the dot
// matches any byte including newline ("dotall" semantics); patterns that
// want line-bounded gaps write [^\n]* explicitly, which is exactly the
// almost-dot-star construct the splitter targets.
package regexparse

import (
	"fmt"
	"math/bits"
	"strings"
)

// AlphabetSize is the size of the input alphabet: all byte values.
const AlphabetSize = 256

// Class is a set of byte values represented as a 256-bit bitmap. The zero
// value is the empty class.
type Class [4]uint64

// Add inserts byte c into the class.
func (cl *Class) Add(c byte) {
	cl[c>>6] |= 1 << (c & 63)
}

// AddRange inserts every byte in [lo, hi] into the class. It is a no-op
// when lo > hi.
func (cl *Class) AddRange(lo, hi byte) {
	for c := int(lo); c <= int(hi); c++ {
		cl.Add(byte(c))
	}
}

// Remove deletes byte c from the class.
func (cl *Class) Remove(c byte) {
	cl[c>>6] &^= 1 << (c & 63)
}

// Contains reports whether byte c is in the class.
func (cl Class) Contains(c byte) bool {
	return cl[c>>6]&(1<<(c&63)) != 0
}

// Negate returns the complement of the class over the full byte alphabet.
func (cl Class) Negate() Class {
	return Class{^cl[0], ^cl[1], ^cl[2], ^cl[3]}
}

// Union returns the set union of cl and other.
func (cl Class) Union(other Class) Class {
	return Class{cl[0] | other[0], cl[1] | other[1], cl[2] | other[2], cl[3] | other[3]}
}

// Intersect returns the set intersection of cl and other.
func (cl Class) Intersect(other Class) Class {
	return Class{cl[0] & other[0], cl[1] & other[1], cl[2] & other[2], cl[3] & other[3]}
}

// Minus returns the bytes in cl that are not in other.
func (cl Class) Minus(other Class) Class {
	return Class{cl[0] &^ other[0], cl[1] &^ other[1], cl[2] &^ other[2], cl[3] &^ other[3]}
}

// IsEmpty reports whether the class contains no bytes.
func (cl Class) IsEmpty() bool {
	return cl[0]|cl[1]|cl[2]|cl[3] == 0
}

// Count returns the number of bytes in the class.
func (cl Class) Count() int {
	return bits.OnesCount64(cl[0]) + bits.OnesCount64(cl[1]) +
		bits.OnesCount64(cl[2]) + bits.OnesCount64(cl[3])
}

// Equal reports whether cl and other contain exactly the same bytes.
func (cl Class) Equal(other Class) bool {
	return cl == other
}

// Bytes returns the members of the class in ascending order.
func (cl Class) Bytes() []byte {
	out := make([]byte, 0, cl.Count())
	for w := 0; w < 4; w++ {
		word := cl[w]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			out = append(out, byte(w*64+b))
			word &^= 1 << b
		}
	}
	return out
}

// SingleByte returns the class's only member when the class holds exactly
// one byte; ok is false otherwise.
func (cl Class) SingleByte() (c byte, ok bool) {
	if cl.Count() != 1 {
		return 0, false
	}
	return cl.Bytes()[0], true
}

// SingleClass returns a class containing only byte c.
func SingleClass(c byte) Class {
	var cl Class
	cl.Add(c)
	return cl
}

// AnyClass returns the class containing every byte value.
func AnyClass() Class {
	return Class{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}
}

// RangeClass returns the class containing every byte in [lo, hi].
func RangeClass(lo, hi byte) Class {
	var cl Class
	cl.AddRange(lo, hi)
	return cl
}

// StringClass returns the class containing each byte of s.
func StringClass(s string) Class {
	var cl Class
	for i := 0; i < len(s); i++ {
		cl.Add(s[i])
	}
	return cl
}

// FoldCase returns the class closed under ASCII case folding: for every
// letter in the class, the opposite-case letter is added.
func (cl Class) FoldCase() Class {
	out := cl
	for c := byte('a'); c <= 'z'; c++ {
		if cl.Contains(c) {
			out.Add(c - 'a' + 'A')
		}
	}
	for c := byte('A'); c <= 'Z'; c++ {
		if cl.Contains(c) {
			out.Add(c - 'A' + 'a')
		}
	}
	return out
}

// String renders the class in regex syntax, preferring the shortest of a
// positive or negated bracket expression. It is intended for debugging and
// for round-trip tests, not byte-exact reproduction of source syntax.
func (cl Class) String() string {
	n := cl.Count()
	switch {
	case n == 0:
		return "[]"
	case n == AlphabetSize:
		return "."
	}
	if c, ok := cl.SingleByte(); ok {
		return escapeByte(c, false)
	}
	neg := cl.Negate()
	if n <= neg.Count() {
		return "[" + classBody(cl) + "]"
	}
	return "[^" + classBody(neg) + "]"
}

// classBody renders the members of cl as a bracket-expression body using
// ranges where they shorten the output.
func classBody(cl Class) string {
	var sb strings.Builder
	members := cl.Bytes()
	for i := 0; i < len(members); {
		j := i
		for j+1 < len(members) && members[j+1] == members[j]+1 {
			j++
		}
		if j-i >= 2 {
			sb.WriteString(escapeByte(members[i], true))
			sb.WriteByte('-')
			sb.WriteString(escapeByte(members[j], true))
		} else {
			for k := i; k <= j; k++ {
				sb.WriteString(escapeByte(members[k], true))
			}
		}
		i = j + 1
	}
	return sb.String()
}

// escapeByte renders a single byte as regex source. inClass selects the
// (smaller) set of metacharacters that need escaping inside brackets.
func escapeByte(c byte, inClass bool) string {
	switch c {
	case '\n':
		return `\n`
	case '\r':
		return `\r`
	case '\t':
		return `\t`
	case '\f':
		return `\f`
	case '\v':
		return `\v`
	case '\\':
		return `\\`
	}
	if inClass {
		switch c {
		case ']', '^', '-':
			return `\` + string(c)
		}
	} else {
		switch c {
		case '.', '*', '+', '?', '(', ')', '[', ']', '{', '}', '|', '^', '$', '/':
			return `\` + string(c)
		}
	}
	if c >= 0x20 && c < 0x7f {
		return string(c)
	}
	return fmt.Sprintf(`\x%02x`, c)
}
