package regexparse

import (
	"errors"
	"fmt"
	"strings"
)

// MaxRepeatCount bounds the {n,m} counts the parser accepts. It guards
// against absurd counts in hostile rule text; real blowup protection lives
// downstream — nfa.MaxExpandedRepeat caps duplication-expanded repeats,
// and large bounded gaps compile to counter registers (DESIGN.md §19)
// without expanding at all. Snort-style rules use counts in the hundreds
// (`[^\n]{500}` and the like), which this bound must admit.
const MaxRepeatCount = 1000

// ErrUnsupported wraps syntax the engine deliberately does not implement
// (back-references, look-around, the $ anchor). Callers can detect it with
// errors.Is to skip such rules rather than fail a whole set.
var ErrUnsupported = errors.New("unsupported regex construct")

// SyntaxError describes a parse failure with its byte offset in the
// pattern source.
type SyntaxError struct {
	Pattern string
	Offset  int
	Msg     string
	wrapped error
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("regexparse: %s at offset %d in %q", e.Msg, e.Offset, e.Pattern)
}

func (e *SyntaxError) Unwrap() error { return e.wrapped }

// Parse parses a bare pattern (no surrounding slashes, no flags).
func Parse(pattern string) (*Pattern, error) {
	return parse(pattern, false)
}

// ParsePCRE parses either a bare pattern or the slashed /body/flags form
// used by Snort rules. The only supported flags are i (case-insensitive),
// s (dotall; a no-op because dot is always dotall here) and m (a no-op
// because only the ^ start-of-flow anchor is supported).
func ParsePCRE(pattern string) (*Pattern, error) {
	body, flags, slashed := splitSlashed(pattern)
	if !slashed {
		return parse(pattern, false)
	}
	insensitive := false
	for i := 0; i < len(flags); i++ {
		switch flags[i] {
		case 'i':
			insensitive = true
		case 's', 'm':
			// Accepted, no behavioural change (see above).
		default:
			return nil, &SyntaxError{
				Pattern: pattern,
				Offset:  len(pattern) - len(flags) + i,
				Msg:     fmt.Sprintf("unsupported flag %q", flags[i]),
				wrapped: ErrUnsupported,
			}
		}
	}
	p, err := parse(body, insensitive)
	if err != nil {
		return nil, err
	}
	p.Source = pattern
	return p, nil
}

// splitSlashed recognizes /body/flags, honouring \/ escapes in the body.
func splitSlashed(pattern string) (body, flags string, ok bool) {
	if len(pattern) < 2 || pattern[0] != '/' {
		return "", "", false
	}
	end := -1
	for i := len(pattern) - 1; i > 0; i-- {
		if pattern[i] == '/' {
			end = i
			break
		}
		if !isFlagChar(pattern[i]) {
			return "", "", false
		}
	}
	if end <= 0 {
		return "", "", false
	}
	return pattern[1:end], pattern[end+1:], true
}

func isFlagChar(c byte) bool {
	return c >= 'a' && c <= 'z'
}

type parser struct {
	src         string
	pos         int
	insensitive bool
}

func parse(src string, insensitive bool) (*Pattern, error) {
	p := &parser{src: src, insensitive: insensitive}
	pat := &Pattern{Source: src, CaseInsensitive: insensitive}
	if p.peekByte() == '^' {
		pat.Anchored = true
		p.pos++
	}
	root, err := p.parseAlternate()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.src) {
		return nil, p.errorf("unexpected %q", p.src[p.pos])
	}
	pat.Root = root
	return pat, nil
}

func (p *parser) errorf(format string, args ...any) error {
	return &SyntaxError{Pattern: p.src, Offset: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) unsupported(what string) error {
	return &SyntaxError{Pattern: p.src, Offset: p.pos, Msg: what, wrapped: ErrUnsupported}
}

// peekByte returns the next byte without consuming it, or 0 at end.
func (p *parser) peekByte() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) parseAlternate() (*Node, error) {
	first, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	alts := []*Node{first}
	for !p.eof() && p.peekByte() == '|' {
		p.pos++
		next, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		alts = append(alts, next)
	}
	return NewAlternate(alts...), nil
}

func (p *parser) parseConcat() (*Node, error) {
	var parts []*Node
	for !p.eof() {
		c := p.peekByte()
		if c == '|' || c == ')' {
			break
		}
		atom, err := p.parseRepeat()
		if err != nil {
			return nil, err
		}
		parts = append(parts, atom)
	}
	return NewConcat(parts...), nil
}

// parseRepeat parses one atom plus any trailing quantifiers.
func (p *parser) parseRepeat() (*Node, error) {
	atom, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for !p.eof() {
		switch p.peekByte() {
		case '*':
			p.pos++
			atom = &Node{Op: OpStar, Sub: atom}
		case '+':
			p.pos++
			atom = &Node{Op: OpPlus, Sub: atom}
		case '?':
			p.pos++
			atom = &Node{Op: OpQuest, Sub: atom}
		case '{':
			rep, ok, err := p.parseBraceQuantifier()
			if err != nil {
				return nil, err
			}
			if !ok {
				return atom, nil
			}
			rep.Sub = atom
			atom = rep
		default:
			return atom, nil
		}
	}
	return atom, nil
}

// parseBraceQuantifier parses {n}, {n,} or {n,m} starting at '{'. A brace
// that does not form a valid quantifier is treated as a literal '{' by
// returning ok=false with the position unchanged, matching PCRE behaviour.
func (p *parser) parseBraceQuantifier() (*Node, bool, error) {
	start := p.pos
	p.pos++ // consume '{'
	min, ok := p.parseInt()
	if !ok {
		p.pos = start
		return nil, false, nil
	}
	max := min
	if p.peekByte() == ',' {
		p.pos++
		if p.peekByte() == '}' {
			max = InfiniteRepeat
		} else {
			max, ok = p.parseInt()
			if !ok {
				p.pos = start
				return nil, false, nil
			}
		}
	}
	if p.peekByte() != '}' {
		p.pos = start
		return nil, false, nil
	}
	p.pos++
	if min > MaxRepeatCount || (max != InfiniteRepeat && max > MaxRepeatCount) {
		p.pos = start
		return nil, false, fmt.Errorf("%w: repeat count above %d in %q",
			ErrUnsupported, MaxRepeatCount, p.src)
	}
	if max != InfiniteRepeat && max < min {
		p.pos = start
		return nil, false, p.errorf("invalid repeat range {%d,%d}", min, max)
	}
	return &Node{Op: OpRepeat, Min: min, Max: max}, true, nil
}

func (p *parser) parseInt() (int, bool) {
	start := p.pos
	n := 0
	for !p.eof() && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		n = n*10 + int(p.src[p.pos]-'0')
		if n > 1<<20 {
			return 0, false
		}
		p.pos++
	}
	return n, p.pos > start
}

func (p *parser) parseAtom() (*Node, error) {
	c := p.peekByte()
	switch c {
	case '(':
		p.pos++
		if strings.HasPrefix(p.src[p.pos:], "?") {
			// (?:...) non-capturing groups are common in Snort rules;
			// other (?...) constructs (look-around, named groups) are not
			// regular and are rejected.
			if strings.HasPrefix(p.src[p.pos:], "?:") {
				p.pos += 2
			} else {
				return nil, p.unsupported("(?...) construct")
			}
		}
		inner, err := p.parseAlternate()
		if err != nil {
			return nil, err
		}
		if p.peekByte() != ')' {
			return nil, p.errorf("missing closing parenthesis")
		}
		p.pos++
		return inner, nil
	case ')':
		return nil, p.errorf("unmatched closing parenthesis")
	case '*', '+', '?':
		return nil, p.errorf("quantifier %q with nothing to repeat", c)
	case '[':
		return p.parseClass()
	case '.':
		p.pos++
		return NewClassNode(AnyClass()), nil
	case '^':
		return nil, p.unsupported("mid-pattern ^ anchor")
	case '$':
		return nil, p.unsupported("$ anchor")
	case '\\':
		cl, err := p.parseEscape(false)
		if err != nil {
			return nil, err
		}
		return NewClassNode(p.fold(cl)), nil
	case 0:
		return nil, p.errorf("unexpected end of pattern")
	default:
		p.pos++
		return NewClassNode(p.fold(SingleClass(c))), nil
	}
}

// fold applies case-insensitive closure when the /i flag is active.
func (p *parser) fold(cl Class) Class {
	if p.insensitive {
		return cl.FoldCase()
	}
	return cl
}

// parseClass parses a bracket expression starting at '['.
func (p *parser) parseClass() (*Node, error) {
	p.pos++ // consume '['
	negate := false
	if p.peekByte() == '^' {
		negate = true
		p.pos++
	}
	var cl Class
	first := true
	for {
		if p.eof() {
			return nil, p.errorf("missing closing bracket")
		}
		c := p.peekByte()
		if c == ']' && !first {
			p.pos++
			break
		}
		first = false
		lo, loIsClass, loClass, err := p.parseClassAtom()
		if err != nil {
			return nil, err
		}
		if loIsClass {
			cl = cl.Union(loClass)
			continue
		}
		// Possible range lo-hi.
		if p.peekByte() == '-' && p.pos+1 < len(p.src) && p.src[p.pos+1] != ']' {
			p.pos++ // consume '-'
			hi, hiIsClass, _, err := p.parseClassAtom()
			if err != nil {
				return nil, err
			}
			if hiIsClass {
				return nil, p.errorf("invalid range endpoint (shorthand class)")
			}
			if hi < lo {
				return nil, p.errorf("invalid range %q-%q", lo, hi)
			}
			cl.AddRange(lo, hi)
			continue
		}
		cl.Add(lo)
	}
	if negate {
		cl = cl.Negate()
	}
	cl = p.fold(cl)
	if cl.IsEmpty() {
		return nil, p.errorf("empty character class")
	}
	return NewClassNode(cl), nil
}

// parseClassAtom parses one class member: a literal byte or an escape.
// isClass is true when the escape denoted a shorthand class (\d etc.),
// which cannot be a range endpoint.
func (p *parser) parseClassAtom() (b byte, isClass bool, cl Class, err error) {
	c := p.peekByte()
	if c == '\\' {
		cl, err := p.parseEscape(true)
		if err != nil {
			return 0, false, Class{}, err
		}
		if single, ok := cl.SingleByte(); ok {
			return single, false, Class{}, nil
		}
		return 0, true, cl, nil
	}
	p.pos++
	return c, false, Class{}, nil
}

// parseEscape parses a backslash escape starting at '\\' and returns the
// class of bytes it denotes. inClass relaxes which trailing bytes are
// accepted as identity escapes.
func (p *parser) parseEscape(inClass bool) (Class, error) {
	p.pos++ // consume '\\'
	if p.eof() {
		return Class{}, p.errorf("trailing backslash")
	}
	c := p.src[p.pos]
	p.pos++
	switch c {
	case 'n':
		return SingleClass('\n'), nil
	case 't':
		return SingleClass('\t'), nil
	case 'r':
		return SingleClass('\r'), nil
	case 'f':
		return SingleClass('\f'), nil
	case 'v':
		return SingleClass('\v'), nil
	case 'a':
		return SingleClass(7), nil
	case 'e':
		return SingleClass(0x1b), nil
	case '0':
		return SingleClass(0), nil
	case 'd':
		return RangeClass('0', '9'), nil
	case 'D':
		return RangeClass('0', '9').Negate(), nil
	case 'w':
		return wordClass(), nil
	case 'W':
		return wordClass().Negate(), nil
	case 's':
		return spaceClass(), nil
	case 'S':
		return spaceClass().Negate(), nil
	case 'x':
		hi, ok1 := hexVal(p.peekByte())
		if !ok1 {
			return Class{}, p.errorf(`\x needs two hex digits`)
		}
		p.pos++
		lo, ok2 := hexVal(p.peekByte())
		if !ok2 {
			return Class{}, p.errorf(`\x needs two hex digits`)
		}
		p.pos++
		return SingleClass(byte(hi<<4 | lo)), nil
	case 'b', 'B', 'A', 'Z', 'z', 'G':
		p.pos -= 2
		defer func() { p.pos += 2 }()
		return Class{}, p.unsupported(fmt.Sprintf(`\%c assertion`, c))
	}
	if c >= '1' && c <= '9' {
		p.pos -= 2
		defer func() { p.pos += 2 }()
		return Class{}, p.unsupported("back-reference")
	}
	if isASCIILetterOrDigit(c) && !inClass {
		return Class{}, p.errorf(`unknown escape \%c`, c)
	}
	// Identity escape of a metacharacter or punctuation.
	return SingleClass(c), nil
}

func isASCIILetterOrDigit(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func wordClass() Class {
	cl := RangeClass('a', 'z').Union(RangeClass('A', 'Z')).Union(RangeClass('0', '9'))
	cl.Add('_')
	return cl
}

func spaceClass() Class {
	return StringClass(" \t\n\r\f\v")
}

func hexVal(c byte) (int, bool) {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0'), true
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10, true
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10, true
	default:
		return 0, false
	}
}
