// Package xfa implements an XFA-style baseline [Smith et al., SIGCOMM
// 2008]: a deterministic automaton whose states carry small update
// programs over an auxiliary memory, executed whenever an annotated state
// is entered, with matches raised by instructions whose memory conditions
// hold.
//
// Substitution notes (see DESIGN.md): the original XFA construction is a
// search over non-deterministic update functions that the MFA paper
// itself could not run ("we present estimated throughput results"). This
// package instead derives the per-state programs from the same
// decomposition the MFA uses, preserving XFA's processing model — an
// interpreted instruction list attached to states, dispatched per visit —
// which is what distinguishes its online cost from the MFA's single
// merged bytecode per match id.
package xfa

import (
	"fmt"
	"time"

	"matchfilter/internal/dfa"
	"matchfilter/internal/filter"
	"matchfilter/internal/nfa"
	"matchfilter/internal/regexparse"
	"matchfilter/internal/splitter"
)

// Rule is one input regex and the id reported when it matches.
type Rule struct {
	Pattern *regexparse.Pattern
	ID      int32
}

// Opcode selects an instruction's behaviour.
type Opcode uint8

// The instruction set: elementary memory updates and conditional reports,
// the "few CPU instructions" granularity of the XFA model.
const (
	OpSetBit Opcode = iota + 1
	OpClearBit
	OpTestSetBit // if mem[A] then set mem[B]
	OpTestReport // if mem[A] then report Rule
	OpReport     // unconditionally report Rule
	// OpClearGroup clears the word-masked bit group indexed by Rule
	// (1-based), the shared-gap-fragment merge of the splitter.
	OpClearGroup
)

// Instr is one program instruction (8 bytes in the memory image).
type Instr struct {
	Op   Opcode
	_    uint8
	A, B int16
	Rule int32
}

// Options configures construction.
type Options struct {
	// MaxStates caps subset construction; 0 means dfa.DefaultMaxStates.
	MaxStates int
}

// XFA is the compiled automaton.
type XFA struct {
	d           *dfa.DFA
	trans       []uint32
	acceptStart uint32
	// starts[i] .. starts[i+1] index instrs for accepting state
	// acceptStart+i.
	starts []uint32
	instrs []Instr
	groups [][]filter.ClearOp // 1-based via instruction Rule field
	prog   *filter.Program
	stats  BuildStats
}

// BuildStats records construction results.
type BuildStats struct {
	NumStates int
	NumInstrs int
	MemBits   int
	BuildTime time.Duration
}

// Compile builds the XFA for a rule set.
func Compile(rules []Rule, opts Options) (*XFA, error) {
	start := time.Now()

	srules := make([]splitter.Rule, len(rules))
	for i, r := range rules {
		srules[i] = splitter.Rule{Pattern: r.Pattern, RuleID: r.ID}
	}
	res, err := splitter.Split(srules, splitter.Options{})
	if err != nil {
		return nil, fmt.Errorf("xfa: %w", err)
	}
	nfaRules := make([]nfa.Rule, len(res.Fragments))
	for i, f := range res.Fragments {
		nfaRules[i] = nfa.Rule{Pattern: f.Pattern, MatchID: int(f.InternalID)}
	}
	n, err := nfa.Build(nfaRules)
	if err != nil {
		return nil, fmt.Errorf("xfa: %w", err)
	}
	// The XFA baseline keeps the paper's flat one-load-per-byte table —
	// it is the layout the original XFA work assumes, and Compile
	// repacks TransitionTable directly below.
	d, err := dfa.FromNFA(n, dfa.Options{MaxStates: opts.MaxStates, Layout: dfa.LayoutFlat})
	if err != nil {
		return nil, fmt.Errorf("xfa: %w", err)
	}

	prog := res.Program()
	x := &XFA{
		d:           d,
		trans:       d.TransitionTable(),
		acceptStart: d.AcceptStart(),
		prog:        prog,
	}
	x.groups = make([][]filter.ClearOp, prog.NumClearGroups())
	for g := range x.groups {
		x.groups[g] = prog.ClearGroupOps(int32(g + 1))
	}
	numAccept := d.NumStates() - int(d.AcceptStart())
	x.starts = make([]uint32, numAccept+1)
	for i := 0; i < numAccept; i++ {
		s := d.AcceptStart() + uint32(i)
		for _, id := range d.Matches(s) {
			x.instrs = append(x.instrs, compileAction(prog.Action(id))...)
		}
		x.starts[i+1] = uint32(len(x.instrs))
	}
	x.stats = BuildStats{
		NumStates: d.NumStates(),
		NumInstrs: len(x.instrs),
		MemBits:   res.MemBits,
		BuildTime: time.Since(start),
	}
	return x, nil
}

// compileAction lowers one filter action to instructions. The splitter
// only emits three action shapes (set-with-optional-test, unconditional
// clear, test-to-report / plain report), so each lowers to one
// instruction; the general cases are handled anyway for robustness.
func compileAction(a filter.Action) []Instr {
	var out []Instr
	if a.Set != filter.NoBit {
		if a.Test != filter.NoBit {
			out = append(out, Instr{Op: OpTestSetBit, A: a.Test, B: a.Set})
		} else {
			out = append(out, Instr{Op: OpSetBit, A: a.Set})
		}
	}
	if a.Clear != filter.NoBit {
		// The splitter's clear actions are unconditional; a conditional
		// clear would need a dedicated opcode, which no decomposition
		// currently produces.
		out = append(out, Instr{Op: OpClearBit, A: a.Clear})
	}
	if a.ClearGroup != 0 {
		out = append(out, Instr{Op: OpClearGroup, Rule: a.ClearGroup})
	}
	if a.Report != filter.NoReport {
		if a.Test != filter.NoBit {
			out = append(out, Instr{Op: OpTestReport, A: a.Test, Rule: a.Report})
		} else {
			out = append(out, Instr{Op: OpReport, Rule: a.Report})
		}
	}
	return out
}

// Stats returns construction statistics.
func (x *XFA) Stats() BuildStats { return x.stats }

// NumStates returns the number of automaton states.
func (x *XFA) NumStates() int { return x.d.NumStates() }

// MemoryImageBytes returns the static image: the transition table, the
// per-state program index, and the instruction array.
func (x *XFA) MemoryImageBytes() int {
	return len(x.trans)*4 + len(x.starts)*4 + len(x.instrs)*8
}

// MatchFunc receives a confirmed match.
type MatchFunc = func(ruleID int32, pos int64)

// Runner is one flow's context: automaton state plus auxiliary memory.
type Runner struct {
	x   *XFA
	st  uint32
	mem filter.Memory
	pos int64
}

// NewRunner returns a runner at the start of a fresh flow.
func (x *XFA) NewRunner() *Runner {
	return &Runner{x: x, st: x.d.Start(), mem: x.prog.NewMemory()}
}

// Reset rewinds the runner for a new flow.
func (r *Runner) Reset() {
	r.st = r.x.d.Start()
	r.mem.Reset()
	r.pos = 0
}

// Pos returns the number of bytes consumed.
func (r *Runner) Pos() int64 { return r.pos }

// Feed advances the flow, interpreting the program of every annotated
// state it enters.
func (r *Runner) Feed(data []byte, onMatch MatchFunc) {
	x := r.x
	trans := x.trans
	acceptStart := x.acceptStart
	mem := r.mem
	st := r.st
	pos := r.pos
	for i := 0; i < len(data); i++ {
		st = trans[int(st)<<8|int(data[i])]
		if st >= acceptStart {
			idx := st - acceptStart
			for _, ins := range x.instrs[x.starts[idx]:x.starts[idx+1]] {
				switch ins.Op {
				case OpSetBit:
					mem[ins.A>>6] |= 1 << (ins.A & 63)
				case OpClearBit:
					mem[ins.A>>6] &^= 1 << (ins.A & 63)
				case OpTestSetBit:
					if mem.Bit(ins.A) {
						mem[ins.B>>6] |= 1 << (ins.B & 63)
					}
				case OpClearGroup:
					for _, op := range x.groups[ins.Rule-1] {
						mem[op.Word] &^= op.Mask
					}
				case OpTestReport:
					if mem.Bit(ins.A) && onMatch != nil {
						onMatch(ins.Rule, pos)
					}
				case OpReport:
					if onMatch != nil {
						onMatch(ins.Rule, pos)
					}
				}
			}
		}
		pos++
	}
	r.st = st
	r.pos = pos
}

// FeedCount advances the flow and returns the number of confirmed
// matches.
func (r *Runner) FeedCount(data []byte) int64 {
	var count int64
	r.Feed(data, func(int32, int64) { count++ })
	return count
}

// MatchEvent records one confirmed match.
type MatchEvent struct {
	RuleID int32
	Pos    int64
}

// Run scans data as one fresh flow.
func (x *XFA) Run(data []byte) []MatchEvent {
	var out []MatchEvent
	r := x.NewRunner()
	r.Feed(data, func(id int32, pos int64) {
		out = append(out, MatchEvent{RuleID: id, Pos: pos})
	})
	return out
}
