package xfa

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"matchfilter/internal/dfa"
	"matchfilter/internal/filter"
	"matchfilter/internal/nfa"
	"matchfilter/internal/regexparse"
)

func mustRules(t *testing.T, sources ...string) []Rule {
	t.Helper()
	rules := make([]Rule, len(sources))
	for i, src := range sources {
		p, err := regexparse.ParsePCRE(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		rules[i] = Rule{Pattern: p, ID: int32(i + 1)}
	}
	return rules
}

func groundTruth(t *testing.T, rules []Rule) *dfa.Engine {
	t.Helper()
	nfaRules := make([]nfa.Rule, len(rules))
	for i, r := range rules {
		nfaRules[i] = nfa.Rule{Pattern: r.Pattern, MatchID: int(r.ID)}
	}
	n, err := nfa.Build(nfaRules)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dfa.FromNFA(n, dfa.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return dfa.NewEngine(d)
}

type event struct {
	id  int32
	pos int64
}

func sorted(evs []event) []event {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].pos != evs[j].pos {
			return evs[i].pos < evs[j].pos
		}
		return evs[i].id < evs[j].id
	})
	return evs
}

func assertEquivalent(t *testing.T, sources []string, inputs [][]byte) {
	t.Helper()
	rules := mustRules(t, sources...)
	x, err := Compile(rules, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gt := groundTruth(t, rules)
	for _, input := range inputs {
		var got, want []event
		for _, ev := range x.Run(input) {
			got = append(got, event{ev.RuleID, ev.Pos})
		}
		for _, ev := range gt.Run(input) {
			want = append(want, event{ev.ID, ev.Pos})
		}
		got, want = sorted(got), sorted(want)
		if len(got) != len(want) {
			t.Fatalf("rules %v input %q:\nXFA   %v\ntruth %v", sources, input, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("rules %v input %q:\nXFA   %v\ntruth %v", sources, input, got, want)
			}
		}
	}
}

func TestEquivalenceFixed(t *testing.T) {
	assertEquivalent(t,
		[]string{"vi.*emacs", "bsd.*gnu", "abc.*mm?o.*xyz", `foo[^\n]*bar`},
		[][]byte{
			[]byte("vi.emacs.gnu.bsd.gnu.abc.mo.xyz"),
			[]byte("foo bar"),
			[]byte("foo\nbar foo bar"),
			[]byte(strings.Repeat("vi emacs ", 10)),
		})
}

func TestEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	words := []string{"ab", "cde", "fgh", "xyz", "qq", "rst"}
	gaps := []string{".*", "[^\\n]*", "[^#]*"}
	for trial := 0; trial < 25; trial++ {
		var sources []string
		for ri := 0; ri < 1+rng.Intn(3); ri++ {
			var sb strings.Builder
			for si := 0; si < 1+rng.Intn(3); si++ {
				if si > 0 {
					sb.WriteString(gaps[rng.Intn(len(gaps))])
				}
				sb.WriteString(words[rng.Intn(len(words))])
			}
			sources = append(sources, sb.String())
		}
		var inputs [][]byte
		for ii := 0; ii < 4; ii++ {
			var sb strings.Builder
			for sb.Len() < 10+rng.Intn(100) {
				switch rng.Intn(5) {
				case 0:
					sb.WriteString(words[rng.Intn(len(words))])
				case 1:
					sb.WriteByte('\n')
				case 2:
					sb.WriteByte('#')
				default:
					sb.WriteByte("abcdefghqrstxyz "[rng.Intn(16)])
				}
			}
			inputs = append(inputs, []byte(sb.String()))
		}
		assertEquivalent(t, sources, inputs)
	}
}

func TestCompileActionLowering(t *testing.T) {
	tests := []struct {
		a    filter.Action
		want []Opcode
	}{
		{filter.Action{Test: filter.NoBit, Set: 3, Clear: filter.NoBit}, []Opcode{OpSetBit}},
		{filter.Action{Test: 1, Set: 2, Clear: filter.NoBit}, []Opcode{OpTestSetBit}},
		{filter.Action{Test: filter.NoBit, Set: filter.NoBit, Clear: 4}, []Opcode{OpClearBit}},
		{filter.Action{Test: 0, Set: filter.NoBit, Clear: filter.NoBit, Report: 9}, []Opcode{OpTestReport}},
		{filter.Action{Test: filter.NoBit, Set: filter.NoBit, Clear: filter.NoBit, Report: 9}, []Opcode{OpReport}},
	}
	for _, tt := range tests {
		got := compileAction(tt.a)
		if len(got) != len(tt.want) {
			t.Errorf("%+v: got %d instrs, want %d", tt.a, len(got), len(tt.want))
			continue
		}
		for i := range got {
			if got[i].Op != tt.want[i] {
				t.Errorf("%+v instr %d: op %v, want %v", tt.a, i, got[i].Op, tt.want[i])
			}
		}
	}
}

func TestStatsAndImage(t *testing.T) {
	rules := mustRules(t, "alpha.*omega", "plain")
	x, err := Compile(rules, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := x.Stats()
	if st.NumStates != x.NumStates() || st.NumStates == 0 {
		t.Errorf("stats: %+v", st)
	}
	if st.NumInstrs == 0 || st.MemBits != 1 {
		t.Errorf("stats: %+v", st)
	}
	if x.MemoryImageBytes() < x.NumStates()*256*4 {
		t.Errorf("image below table floor")
	}
}

func TestStreamingRunner(t *testing.T) {
	rules := mustRules(t, "aa.*bb")
	x, err := Compile(rules, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := x.NewRunner()
	var got []event
	r.Feed([]byte("a"), func(id int32, pos int64) { got = append(got, event{id, pos}) })
	r.Feed([]byte("a.b"), func(id int32, pos int64) { got = append(got, event{id, pos}) })
	r.Feed([]byte("b"), func(id int32, pos int64) { got = append(got, event{id, pos}) })
	if len(got) != 1 || got[0].pos != 4 {
		t.Fatalf("streaming: %v", got)
	}
	r.Reset()
	if c := r.FeedCount([]byte("aabb aabb")); c != 2 {
		t.Errorf("FeedCount = %d", c)
	}
}
