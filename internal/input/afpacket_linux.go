//go:build linux

// AF_PACKET live capture: a raw packet socket bound to one interface,
// delivering whole Ethernet frames into the pipeline — the production
// front door. Requires CAP_NET_RAW (root); the expected failure mode on
// an unprivileged run is a permanent EPERM from the supervisor's
// restart policy, with the rest of the pipeline unaffected.
package input

import (
	"context"
	"errors"
	"fmt"
	"net"
	"syscall"
	"time"
)

// AFPacket captures live traffic from one Linux network interface.
type AFPacket struct {
	Iface string
	// SnapLen bounds one captured frame; 0 means 64KiB.
	SnapLen int
}

// NewAFPacket returns a live-capture source on iface ("eth0").
func NewAFPacket(iface string) *AFPacket { return &AFPacket{Iface: iface} }

// Describe implements Source.
func (a *AFPacket) Describe() Description {
	return Description{Name: "afpacket:" + a.Iface, Kind: "afpacket", Detail: a.Iface, Finite: false}
}

// Run implements Source. The socket gets a short receive timeout so
// cancellation is observed within one beat even on a silent wire.
func (a *AFPacket) Run(ctx context.Context, em *Emitter) error {
	snapLen := a.SnapLen
	if snapLen <= 0 {
		snapLen = 64 << 10
	}
	ifi, err := net.InterfaceByName(a.Iface)
	if err != nil {
		return Permanent(fmt.Errorf("input: afpacket: %w", err))
	}
	// ETH_P_ALL in network byte order, as packet(7) requires.
	const ethPAll = 0x0003
	proto := (ethPAll<<8)&0xff00 | ethPAll>>8
	fd, err := syscall.Socket(syscall.AF_PACKET, syscall.SOCK_RAW, proto)
	if err != nil {
		if errors.Is(err, syscall.EPERM) || errors.Is(err, syscall.EACCES) {
			return Permanent(fmt.Errorf("input: afpacket: socket: %w (CAP_NET_RAW required)", err))
		}
		return fmt.Errorf("input: afpacket: socket: %w", err)
	}
	defer syscall.Close(fd)
	if err := syscall.Bind(fd, &syscall.SockaddrLinklayer{Protocol: uint16(proto), Ifindex: ifi.Index}); err != nil {
		return fmt.Errorf("input: afpacket: bind %s: %w", a.Iface, err)
	}
	tv := syscall.NsecToTimeval(int64(200 * time.Millisecond))
	if err := syscall.SetsockoptTimeval(fd, syscall.SOL_SOCKET, syscall.SO_RCVTIMEO, &tv); err != nil {
		return fmt.Errorf("input: afpacket: SO_RCVTIMEO: %w", err)
	}

	for {
		if ctx.Err() != nil {
			return nil
		}
		lease := em.Lease(snapLen)
		n, _, err := syscall.Recvfrom(fd, lease.Data(), 0)
		if err != nil {
			lease.Release()
			if errors.Is(err, syscall.EAGAIN) || errors.Is(err, syscall.EWOULDBLOCK) ||
				errors.Is(err, syscall.EINTR) {
				continue // receive timeout: poll cancellation and retry
			}
			return fmt.Errorf("input: afpacket: recvfrom %s: %w", a.Iface, err)
		}
		if n == 0 {
			lease.Release()
			continue
		}
		if err := em.Frame(lease.Data()[:n], lease); err != nil {
			return err
		}
	}
}
