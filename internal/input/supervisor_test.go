package input

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"matchfilter/internal/leakcheck"
)

func runSupervisor(t *testing.T, cfg Config, srcs ...Source) ([]SourceStats, error) {
	t.Helper()
	leakcheck.Check(t)
	sup := NewSupervisor(cfg)
	for _, s := range srcs {
		sup.Add(s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := sup.Run(ctx)
	if ctx.Err() != nil {
		t.Fatal("supervisor did not finish")
	}
	return sup.Stats(), err
}

// TestAccountingSumsToSinkTotals is the core bookkeeping invariant:
// with no drops, per-source segment and byte counters sum exactly to
// what the sink accepted — three concurrent sources, one of them
// restarting, all under the race detector in CI.
func TestAccountingSumsToSinkTotals(t *testing.T) {
	sink := newCollectSink()
	a := &memSource{name: "a", flows: [][]byte{make([]byte, 4096), make([]byte, 100)}}
	b := &memSource{name: "b", flows: [][]byte{make([]byte, 10000)}, chunk: 333}
	flaky := &memSource{name: "flaky", flows: [][]byte{make([]byte, 2048)}, failBefore: 2}
	stats, err := runSupervisor(t, Config{Sink: sink, QueueDepth: 4, BackoffBase: time.Millisecond}, a, b, flaky)
	if err != nil {
		t.Fatal(err)
	}

	wantSegs := a.segCount() + b.segCount() + flaky.segCount()
	wantBytes := a.byteCount() + b.byteCount() + flaky.byteCount()
	gotSegs, gotBytes := sink.counts()
	if gotSegs != wantSegs || gotBytes != wantBytes {
		t.Fatalf("sink got %d segments / %d bytes, want %d / %d", gotSegs, gotBytes, wantSegs, wantBytes)
	}
	var sumSegs, sumBytes int64
	for _, row := range stats {
		sumSegs += row.Segments
		sumBytes += row.PayloadBytes
		if row.State != "done" {
			t.Fatalf("source %s ended %s", row.Name, row.State)
		}
	}
	if sumSegs != gotSegs || sumBytes != gotBytes {
		t.Fatalf("per-source sums %d/%d != sink totals %d/%d", sumSegs, sumBytes, gotSegs, gotBytes)
	}
	for _, row := range stats {
		if row.Name == "flaky" && row.Restarts != 2 {
			t.Fatalf("flaky restarts: got %d, want 2", row.Restarts)
		}
	}
}

// TestFailingSourceDoesNotPerturbOthers: a permanently failing source is
// abandoned while its peers deliver their full traffic.
func TestFailingSourceDoesNotPerturbOthers(t *testing.T) {
	sink := newCollectSink()
	good := &memSource{name: "good", flows: [][]byte{make([]byte, 8192)}}
	bad := &memSource{name: "bad", permanent: true}
	stats, err := runSupervisor(t, Config{Sink: sink, QueueDepth: 4}, good, bad)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range stats {
		switch row.Name {
		case "good":
			if row.State != "done" || row.Segments != good.segCount() {
				t.Fatalf("good source perturbed: %+v", row)
			}
		case "bad":
			if row.State != "failed" || row.Segments != 0 {
				t.Fatalf("bad source: %+v", row)
			}
			if !strings.Contains(row.LastError, "scripted permanent failure") {
				t.Fatalf("bad source lastErr: %q", row.LastError)
			}
		}
	}
}

// TestRestartBudgetExhaustion: a source that never stops failing is
// abandoned after its budget, with the restart count visible.
func TestRestartBudgetExhaustion(t *testing.T) {
	sink := newCollectSink()
	hopeless := &memSource{name: "hopeless", failBefore: 1 << 30}
	stats, err := runSupervisor(t, Config{
		Sink: sink, RestartBudget: 3, BackoffBase: time.Microsecond, BackoffMax: time.Millisecond,
	}, hopeless)
	if err != nil {
		t.Fatal(err)
	}
	row := stats[0]
	if row.State != "failed" || row.Restarts != 4 {
		t.Fatalf("hopeless source: state %s, restarts %d (want failed after budget 3)", row.State, row.Restarts)
	}
}

// panicSource panics mid-run: the supervisor must treat it as a failing
// source, not crash the process.
type panicSource struct{ attempts int32 }

func (p *panicSource) Describe() Description {
	return Description{Name: "panicky", Kind: "mem", Finite: true}
}

func (p *panicSource) Run(ctx context.Context, em *Emitter) error {
	if p.attempts++; p.attempts == 1 {
		panic("scripted source panic")
	}
	return nil
}

func TestSourcePanicIsAFailure(t *testing.T) {
	stats, err := runSupervisor(t, Config{
		Sink: newCollectSink(), BackoffBase: time.Microsecond,
	}, &panicSource{})
	if err != nil {
		t.Fatal(err)
	}
	if row := stats[0]; row.State != "done" || row.Restarts != 1 {
		t.Fatalf("panicking source: %+v", row)
	}
}

// malformedSource pushes one undecodable frame through the policy.
type malformedSource struct{}

func (malformedSource) Describe() Description {
	return Description{Name: "mal", Kind: "mem", Finite: true}
}

func (malformedSource) Run(ctx context.Context, em *Emitter) error {
	return em.Frame([]byte{0x01, 0x02, 0x03}, nil)
}

func TestStrictPolicy(t *testing.T) {
	// Lenient: counted, skipped, clean run.
	stats, err := runSupervisor(t, Config{Sink: newCollectSink()}, malformedSource{})
	if err != nil {
		t.Fatalf("lenient mode: %v", err)
	}
	if row := stats[0]; row.State != "done" || row.Malformed != 1 {
		t.Fatalf("lenient row: %+v", row)
	}

	// Strict: the typed abort surfaces from Run, attributed to the source.
	stats, err = runSupervisor(t, Config{Sink: newCollectSink(), Strict: true}, malformedSource{})
	var se *StrictError
	if !errors.As(err, &se) {
		t.Fatalf("strict mode: got %v, want *StrictError", err)
	}
	if se.Source != "mal" {
		t.Fatalf("strict error source: %q", se.Source)
	}
	if row := stats[0]; row.State != "failed" {
		t.Fatalf("strict row: %+v", row)
	}
}

// TestStrictAbortStopsPeers: one source's strict abort cancels the
// others promptly even when they are infinite.
func TestStrictAbortStopsPeers(t *testing.T) {
	sink := newCollectSink()
	sup := NewSupervisor(Config{Sink: sink, Strict: true})
	sup.Add(&Spool{Dir: t.TempDir(), Poll: time.Millisecond}) // infinite
	sup.Add(malformedSource{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := sup.Run(ctx)
	if ctx.Err() != nil {
		t.Fatal("strict abort did not stop the infinite peer")
	}
	var se *StrictError
	if !errors.As(err, &se) {
		t.Fatalf("got %v, want *StrictError", err)
	}
}

// TestSinkErrorIsFatal: a sink shutting down underneath the pipeline
// terminates Run with the sink's error.
func TestSinkErrorIsFatal(t *testing.T) {
	sink := newCollectSink()
	sink.fail = errors.New("engine closed")
	_, err := runSupervisor(t, Config{Sink: sink},
		&memSource{name: "m", flows: [][]byte{make([]byte, 64)}})
	if err == nil || !strings.Contains(err.Error(), "engine closed") {
		t.Fatalf("got %v, want the sink's terminal error", err)
	}
}

// TestNameDeduplication: two sources with the same name get distinct
// telemetry labels.
func TestNameDeduplication(t *testing.T) {
	stats, err := runSupervisor(t, Config{Sink: newCollectSink()},
		&memSource{name: "dup"}, &memSource{name: "dup"})
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Name == stats[1].Name {
		t.Fatalf("duplicate source names survived: %q / %q", stats[0].Name, stats[1].Name)
	}
}
