// Spool source: a directory watcher that tails rotating capture files.
//
// A capture daemon (tcpdump -G, suricata's pcap-log) writes into a
// directory, rotating by rename or by truncate-in-place. The spool
// polls the directory (no kernel watch API — polling is portable,
// allocation-free at steady state, and rotation happens on second
// granularity anyway), tails every matching file from its current read
// offset, and parses appended bytes incrementally: a partial record at
// the tail simply waits for the next poll. Rotation shapes handled:
//
//   - New file appears: scanned from the beginning.
//   - Truncate-in-place (size < read offset): reset to offset 0 and
//     reparse from the new header.
//   - Rename rotation (foo.pcap -> foo.pcap.1, fresh foo.pcap): the
//     open descriptor still reads the renamed inode, so the tail is
//     finished there first, then the descriptor is reopened onto the
//     new inode (detected via os.SameFile).
//   - File disappears: its tail state is dropped.
//
// A file whose bytes stop being parseable (bad magic, implausible
// record) is marked dead and skipped until it is truncated or replaced;
// in strict mode it aborts the pipeline like any malformed input.
package input

import (
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"matchfilter/internal/pcap"
)

// Spool tails rotating capture files in a directory.
type Spool struct {
	Dir string
	// Pattern filters directory entries (filepath.Match); "" means
	// "*.pcap".
	Pattern string
	// Poll is the directory scan interval; 0 means 500ms.
	Poll time.Duration
}

// NewSpool returns a spool source over dir.
func NewSpool(dir string) *Spool { return &Spool{Dir: dir} }

// Describe implements Source.
func (s *Spool) Describe() Description {
	return Description{Name: "spool:" + s.Dir, Kind: "spool", Detail: s.Dir, Finite: false}
}

// Run implements Source.
func (s *Spool) Run(ctx context.Context, em *Emitter) error {
	pattern := s.Pattern
	if pattern == "" {
		pattern = "*.pcap"
	}
	poll := s.Poll
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	if st, err := os.Stat(s.Dir); err != nil {
		return fmt.Errorf("input: spool: %w", err)
	} else if !st.IsDir() {
		return Permanent(fmt.Errorf("input: spool: %s is not a directory", s.Dir))
	}

	tails := make(map[string]*tailFile)
	defer func() {
		for _, tf := range tails {
			tf.close()
		}
	}()
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		if err := s.sweep(ctx, em, pattern, tails); err != nil {
			return err
		}
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C:
		}
	}
}

// sweep reconciles the tail set with the directory and drains appended
// bytes from every live tail.
func (s *Spool) sweep(ctx context.Context, em *Emitter, pattern string, tails map[string]*tailFile) error {
	matches, err := filepath.Glob(filepath.Join(s.Dir, pattern))
	if err != nil {
		return Permanent(fmt.Errorf("input: spool: bad pattern: %w", err))
	}
	seen := make(map[string]bool, len(matches))
	for _, path := range matches {
		seen[path] = true
		tf := tails[path]
		if tf == nil {
			f, err := os.Open(path)
			if err != nil {
				continue // raced with rotation; next poll retries
			}
			tf = &tailFile{path: path, f: f}
			tails[path] = tf
		}
		if err := tf.drain(ctx, em); err != nil {
			return err
		}
	}
	for path, tf := range tails {
		if !seen[path] {
			// Gone from the directory: finish whatever the descriptor
			// still holds, then forget it.
			if err := tf.drain(ctx, em); err != nil {
				return err
			}
			tf.close()
			delete(tails, path)
		}
	}
	return nil
}

// tailFile incrementally parses one capture file.
type tailFile struct {
	path string
	f    *os.File
	off  int64 // bytes consumed from the file

	hdr     pcapHeader
	hdrDone bool
	dead    bool   // unresyncable: skip until truncate/replace
	partial []byte // unconsumed tail bytes (shorter than one record)
}

// pcapHeader is the parsed global header state a tail needs.
type pcapHeader struct {
	order binary.ByteOrder
}

func (tf *tailFile) close() {
	if tf.f != nil {
		tf.f.Close()
		tf.f = nil
	}
}

// reset rewinds to offset 0 (truncate-in-place rotation).
func (tf *tailFile) reset() {
	tf.off = 0
	tf.hdrDone = false
	tf.dead = false
	tf.partial = tf.partial[:0]
}

// drain reads appended bytes and emits every complete record. It also
// detects rotation: truncation rewinds, a swapped inode finishes the
// old descriptor and reopens the new file.
func (tf *tailFile) drain(ctx context.Context, em *Emitter) error {
	st, err := tf.f.Stat()
	if err != nil {
		return nil // descriptor went bad; the sweep will reopen next poll
	}
	if st.Size() < tf.off {
		tf.reset()
	}
	if err := tf.consume(ctx, em, st.Size()); err != nil {
		return err
	}
	// Rename rotation: if the path now names a different inode, finish
	// was already done above — reopen onto the new file.
	if pathSt, err := os.Stat(tf.path); err == nil && !os.SameFile(st, pathSt) {
		if f, err := os.Open(tf.path); err == nil {
			tf.close()
			tf.f = f
			tf.reset()
			newSt, err := f.Stat()
			if err != nil {
				return nil
			}
			return tf.consume(ctx, em, newSt.Size())
		}
	}
	return nil
}

// consume parses bytes [tf.off, size) into records.
func (tf *tailFile) consume(ctx context.Context, em *Emitter, size int64) error {
	if tf.dead || size <= tf.off {
		return nil
	}
	n := size - tf.off
	if n > 8<<20 {
		n = 8 << 20 // bound one poll's bite; the rest next round
	}
	buf := make([]byte, n)
	read, err := tf.f.ReadAt(buf, tf.off)
	if read == 0 && err != nil {
		return nil
	}
	tf.off += int64(read)
	tf.partial = append(tf.partial, buf[:read]...)
	return tf.parse(ctx, em)
}

// parse emits every complete record in partial, keeping the remainder.
func (tf *tailFile) parse(ctx context.Context, em *Emitter) error {
	p := tf.partial
	if !tf.hdrDone {
		if len(p) < 24 {
			tf.partial = p
			return nil
		}
		switch binary.LittleEndian.Uint32(p[0:]) {
		case pcap.MagicLE:
			tf.hdr.order = binary.LittleEndian
		case 0xd4c3b2a1:
			tf.hdr.order = binary.BigEndian
		default:
			tf.dead = true
			tf.partial = nil
			return em.Malformed(fmt.Errorf("%w: spool file %s", pcap.ErrBadMagic, tf.path))
		}
		if lt := tf.hdr.order.Uint32(p[20:]); lt != pcap.LinkTypeEthernet {
			tf.dead = true
			tf.partial = nil
			return em.Malformed(fmt.Errorf("%w: %d in spool file %s", pcap.ErrBadLinkType, lt, tf.path))
		}
		p = p[24:]
		tf.hdrDone = true
	}
	for {
		if ctx.Err() != nil {
			break
		}
		if len(p) < 16 {
			break
		}
		inclLen := tf.hdr.order.Uint32(p[8:])
		if inclLen > 16*1024*1024 {
			tf.dead = true
			tf.partial = nil
			return em.Malformed(fmt.Errorf("%w: implausible packet length %d in spool file %s",
				pcap.ErrBadRecord, inclLen, tf.path))
		}
		if len(p) < 16+int(inclLen) {
			break // partial record: wait for the next poll
		}
		lease := em.Lease(int(inclLen))
		copy(lease.Data(), p[16:16+inclLen])
		p = p[16+inclLen:]
		if err := em.Frame(lease.Data(), lease); err != nil {
			tf.partial = nil
			return err
		}
	}
	// Keep the remainder without aliasing the old backing array forever.
	rest := make([]byte, len(p))
	copy(rest, p)
	tf.partial = rest
	return nil
}
