// Ingest-policy tests: per-source replay pacing, tenant tagging at the
// emitter, and the UDP listener's sequenced delivery accounting.
package input

import (
	"context"
	"net"
	"testing"
	"time"

	"matchfilter/internal/pcap"
)

func TestRateLimiterPacing(t *testing.T) {
	rl := newRateLimiter(1 << 20) // 1 MiB/s, 10 ms burst = ~10 KiB
	ctx := context.Background()
	start := time.Now()
	const chunk, chunks = 8 << 10, 12 // 96 KiB total
	for i := 0; i < chunks; i++ {
		if err := rl.wait(ctx, chunk); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	// 96 KiB minus the burst window at 1 MiB/s is ~84 ms of required
	// pacing; accept generous slop above, none below.
	if min := 60 * time.Millisecond; elapsed < min {
		t.Fatalf("96 KiB at 1 MiB/s took %v, want >= %v", elapsed, min)
	}
	if rl.paused() <= 0 {
		t.Fatal("limiter paced without accounting paused time")
	}

	// A cancelled context unblocks the debt sleep promptly.
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := rl.wait(cctx, 64<<20); err == nil {
		t.Fatal("wait succeeded on a cancelled context")
	}
}

// policySource emits segs segments of payload on one flow.
type policySource struct {
	name    string
	segs    int
	payload string
	key     pcap.FlowKey
	tagged  bool // pre-tag the segment's key with tenant 3
}

func (m *policySource) Describe() Description {
	return Description{Name: m.name, Kind: "mem", Detail: "test", Finite: true}
}

func (m *policySource) Run(ctx context.Context, em *Emitter) error {
	for i := 0; i < m.segs; i++ {
		lease := em.Lease(len(m.payload))
		copy(lease.Data(), m.payload)
		key := m.key
		if m.tagged {
			key.Tenant = 3
		}
		seg := pcap.Segment{Key: key, Seq: uint32(i * len(m.payload)), Flags: pcap.FlagACK, Payload: lease.Data()}
		if err := em.Segment(seg, lease); err != nil {
			return err
		}
	}
	return nil
}

func TestSourceRateLimitsEmission(t *testing.T) {
	sink := newCollectSink()
	sup := NewSupervisor(Config{Sink: sink, QueueDepth: 64})
	// 32 KiB at 256 KiB/s is ~125 ms of pacing beyond the burst.
	src := &policySource{name: "paced", segs: 32, payload: string(make([]byte, 1024)), key: synthFlowKey(9001, 1, nil, 80)}
	sup.AddOptions(src, SourceOptions{RateBytesPerSec: 256 << 10})
	start := time.Now()
	if err := sup.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if min := 80 * time.Millisecond; elapsed < min {
		t.Fatalf("32 KiB at 256 KiB/s replayed in %v, want >= %v", elapsed, min)
	}
	if _, b := sink.counts(); b != 32<<10 {
		t.Fatalf("delivered %d bytes, want %d", b, 32<<10)
	}
	row := sup.Stats()[0]
	if row.RateBytesPerSec != 256<<10 {
		t.Fatalf("stats advertise rate %d, want %d", row.RateBytesPerSec, 256<<10)
	}
}

func TestEmitterTenantTagging(t *testing.T) {
	sink := newCollectSink()
	taggedKey := synthFlowKey(9100, 1, nil, 80)
	sup := NewSupervisor(Config{
		Sink:       sink,
		QueueDepth: 64,
		Tagger: func(k pcap.FlowKey) uint32 {
			if k == taggedKey {
				return 9
			}
			return 0
		},
	})
	// Source-bound tenant wins for untagged segments.
	bound := &policySource{name: "bound", segs: 4, payload: "abcd", key: synthFlowKey(9200, 1, nil, 80)}
	sup.AddOptions(bound, SourceOptions{Tenant: 7})
	// A segment the source pre-tagged keeps its tag even on a bound source.
	pre := &policySource{name: "pre", segs: 4, payload: "efgh", key: synthFlowKey(9300, 1, nil, 80), tagged: true}
	sup.AddOptions(pre, SourceOptions{Tenant: 7})
	// Unbound source falls through to the classifier.
	classified := &policySource{name: "cidr", segs: 4, payload: "ijkl", key: taggedKey}
	sup.Add(classified)
	if err := sup.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	sink.mu.Lock()
	defer sink.mu.Unlock()
	wantTag := map[uint32]int{7: 0, 3: 0, 9: 0}
	for key := range sink.payloads {
		wantTag[key.Tenant]++
	}
	if wantTag[7] != 1 || wantTag[3] != 1 || wantTag[9] != 1 {
		t.Fatalf("tenant tags wrong: %v (keys %v)", wantTag, sink.payloads)
	}
	for _, row := range sup.Stats() {
		if row.Name == "bound" && row.Tenant != 7 {
			t.Fatalf("bound source advertises tenant %d, want 7", row.Tenant)
		}
	}
}

func TestUDPListenerSeqAccounting(t *testing.T) {
	src := NewUDPListener("127.0.0.1:0")
	src.Seq = true
	sink, sup, shutdown := startSocketSupervisor(t, src)
	waitFor(t, 5*time.Second, "socket bound", func() bool { return src.Bound() != nil })

	conn, err := net.Dial("udp", src.Bound().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	send := func(seq uint32, payload string) {
		t.Helper()
		dgram := append([]byte{byte(seq >> 24), byte(seq >> 16), byte(seq >> 8), byte(seq)}, payload...)
		if _, err := conn.Write(dgram); err != nil {
			t.Fatal(err)
		}
	}
	// Baseline 10, in-order 11, gap to 13 (skips 12), late 12, in-order
	// 14, gap to 20 (skips 15..19): gaps 6, reorders 1. The payloads
	// still deliver in arrival order — accounting, not reassembly.
	var wantBytes int64
	for _, d := range []struct {
		seq     uint32
		payload string
	}{
		{10, "aa"}, {11, "bb"}, {13, "cc"}, {12, "dd"}, {14, "ee"}, {20, "ff"},
	} {
		send(d.seq, d.payload)
		wantBytes += int64(len(d.payload))
	}
	// A datagram too short for the header counts as malformed.
	if _, err := conn.Write([]byte{0, 1}); err != nil {
		t.Fatal(err)
	}

	waitFor(t, 10*time.Second, "sequenced datagrams accounted", func() bool {
		row := sup.Stats()[0]
		_, b := sink.counts()
		return b == wantBytes && row.Gaps == 6 && row.Reorders == 1 && row.Malformed == 1
	})
	shutdown()
}

func TestSeqAfterWrap(t *testing.T) {
	cases := []struct {
		a, b uint32
		want bool
	}{
		{1, 0, true},
		{0, 1, false},
		{0, 0xffffffff, true}, // wrap: 0 is after 2^32-1
		{0xffffffff, 0, false},
		{5, 5, false},
	}
	for _, c := range cases {
		if got := seqAfter(c.a, c.b); got != c.want {
			t.Errorf("seqAfter(%d, %d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
