package input

import "testing"

func TestArenaLeaseSizing(t *testing.T) {
	var a Arena
	for _, n := range []int{0, 1, 100, 2 << 10, 2<<10 + 1, 16 << 10, 64 << 10, 256 << 10, 256<<10 + 1, 1 << 20} {
		b := a.Lease(n)
		if len(b.Data()) != n {
			t.Fatalf("Lease(%d): got %d bytes", n, len(b.Data()))
		}
		b.Release()
	}
	st := a.Stats()
	if st.Leases != st.Releases {
		t.Fatalf("lease/release imbalance: %+v", st)
	}
}

func TestArenaRecycles(t *testing.T) {
	var a Arena
	// Same size class, strictly sequential: the second lease should come
	// from the pool. sync.Pool may shed entries under GC pressure, so
	// accept recycling on any of a few attempts.
	recycled := false
	for i := 0; i < 8 && !recycled; i++ {
		b := a.Lease(1000)
		before := a.Stats().Misses
		b.Release()
		b2 := a.Lease(1500) // same class, different length
		if len(b2.Data()) != 1500 {
			t.Fatalf("resized lease: got %d bytes", len(b2.Data()))
		}
		recycled = a.Stats().Misses == before
		b2.Release()
	}
	if !recycled {
		t.Fatal("pool never recycled a released buffer")
	}
}

func TestArenaDoubleReleaseCounted(t *testing.T) {
	var a Arena
	b := a.Lease(64)
	b.Release()
	b.Release()
	st := a.Stats()
	if st.DoubleReleases != 1 {
		t.Fatalf("double releases: got %d, want 1", st.DoubleReleases)
	}
	if st.Releases != 1 {
		t.Fatalf("releases: got %d, want 1 (second call must be a no-op)", st.Releases)
	}
}

func TestArenaOversizeGoesToGC(t *testing.T) {
	var a Arena
	b := a.Lease(1 << 20)
	if b.class != -1 {
		t.Fatalf("oversize lease got class %d", b.class)
	}
	b.Release()
	if st := a.Stats(); st.Misses != 1 {
		t.Fatalf("oversize lease should count as a miss: %+v", st)
	}
}
