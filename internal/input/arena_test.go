package input

import (
	"strings"
	"testing"
)

func TestArenaLeaseSizing(t *testing.T) {
	var a Arena
	for _, n := range []int{0, 1, 100, 2 << 10, 2<<10 + 1, 16 << 10, 64 << 10, 256 << 10, 256<<10 + 1, 1 << 20} {
		b := a.Lease(n)
		if len(b.Data()) != n {
			t.Fatalf("Lease(%d): got %d bytes", n, len(b.Data()))
		}
		b.Release()
	}
	st := a.Stats()
	if st.Leases != st.Releases {
		t.Fatalf("lease/release imbalance: %+v", st)
	}
}

func TestArenaRecycles(t *testing.T) {
	var a Arena
	// Same size class, strictly sequential: the second lease should come
	// from the pool. sync.Pool may shed entries under GC pressure, so
	// accept recycling on any of a few attempts.
	recycled := false
	for i := 0; i < 8 && !recycled; i++ {
		b := a.Lease(1000)
		before := a.Stats().Misses
		b.Release()
		b2 := a.Lease(1500) // same class, different length
		if len(b2.Data()) != 1500 {
			t.Fatalf("resized lease: got %d bytes", len(b2.Data()))
		}
		recycled = a.Stats().Misses == before
		b2.Release()
	}
	if !recycled {
		t.Fatal("pool never recycled a released buffer")
	}
}

func TestArenaDoubleReleaseCounted(t *testing.T) {
	var a Arena
	a.SetDebug(false) // the counted-no-op production policy, not the panic guard
	b := a.Lease(64)
	b.Release()
	b.Release()
	st := a.Stats()
	if st.DoubleReleases != 1 {
		t.Fatalf("double releases: got %d, want 1", st.DoubleReleases)
	}
	if st.Releases != 1 {
		t.Fatalf("releases: got %d, want 1 (second call must be a no-op)", st.Releases)
	}
}

// TestArenaDoubleReleaseDebugGuard is the regression test for the debug
// guard: with the guard on, a second Release panics and the message
// names the file:line of the Lease call, so the bug is caught at its
// source instead of surfacing as a silently shared buffer.
func TestArenaDoubleReleaseDebugGuard(t *testing.T) {
	var a Arena
	a.SetDebug(true)
	b := a.Lease(64)
	b.Release()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("second Release did not panic with the debug guard on")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "double release") || !strings.Contains(msg, "arena_test.go:") {
			t.Fatalf("panic %v does not name the lease origin", r)
		}
	}()
	b.Release()
}

func TestArenaBytesLeased(t *testing.T) {
	var a Arena
	b1 := a.Lease(100)     // 2K class
	b2 := a.Lease(3 << 10) // 16K class
	b3 := a.Lease(1 << 20) // oversize: exact
	want := int64(2<<10 + 16<<10 + 1<<20)
	if got := a.BytesLeased(); got != want {
		t.Fatalf("BytesLeased with three leases out = %d, want %d", got, want)
	}
	b1.Release()
	b2.Release()
	b3.Release()
	if got := a.BytesLeased(); got != 0 {
		t.Fatalf("BytesLeased after all releases = %d, want 0", got)
	}
	if st := a.Stats(); st.BytesLeased != 0 {
		t.Fatalf("Stats.BytesLeased = %d, want 0", st.BytesLeased)
	}
}

func TestArenaOversizeGoesToGC(t *testing.T) {
	var a Arena
	b := a.Lease(1 << 20)
	if b.class != -1 {
		t.Fatalf("oversize lease got class %d", b.class)
	}
	b.Release()
	if st := a.Stats(); st.Misses != 1 {
		t.Fatalf("oversize lease should count as a miss: %+v", st)
	}
}
