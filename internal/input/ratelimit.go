// Per-source replay rate limiting.
//
// Replaying a capture file at wire speed is the wrong tool for two jobs
// this daemon is actually used for: soak-testing a rule set against a
// recorded day of traffic (the replay should take minutes, not
// milliseconds, so memory pressure and idle sweeps behave as they would
// live), and driving a staging instance at a controlled offered load. A
// source created with SourceOptions.RateBytesPerSec paces its payload
// bytes through a token bucket: Emitter.Segment debits the bucket and
// sleeps off any debt before enqueueing, so the handoff queue sees
// traffic at the configured rate regardless of how fast the file reads.
//
// The bucket allows a burst of one bucketWindow's worth of bytes, so
// pacing wakes at a granularity the scheduler can honor instead of
// sleeping per-segment at microsecond scale.
package input

import (
	"context"
	"sync"
	"time"
)

// bucketWindow is the burst the token bucket tolerates, expressed as
// time at the configured rate. 10ms keeps bursts small (1MB at 100MB/s)
// while staying far above timer granularity.
const bucketWindow = 10 * time.Millisecond

// rateLimiter is a token bucket over payload bytes. One per source;
// guarded by a mutex because socket sources emit from per-connection
// goroutines.
type rateLimiter struct {
	mu     sync.Mutex
	rate   float64 // tokens (bytes) per second
	burst  float64 // bucket capacity
	tokens float64 // may go negative: accumulated debt to sleep off
	last   time.Time

	pausedNanos int64 // cumulative time spent sleeping, for telemetry
}

func newRateLimiter(bytesPerSec int64) *rateLimiter {
	r := float64(bytesPerSec)
	burst := r * bucketWindow.Seconds()
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{rate: r, burst: burst, tokens: burst}
}

// wait debits n bytes and blocks until the bucket is non-negative again
// (or ctx is cancelled, returning its error). Segments larger than the
// burst still pass — they just sleep proportionally longer.
func (l *rateLimiter) wait(ctx context.Context, n int) error {
	l.mu.Lock()
	now := time.Now()
	l.tokens += now.Sub(l.last).Seconds() * l.rate
	l.last = now
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
	l.tokens -= float64(n)
	debt := -l.tokens
	l.mu.Unlock()
	if debt <= 0 {
		return nil
	}
	d := time.Duration(debt / l.rate * float64(time.Second))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		l.mu.Lock()
		l.pausedNanos += int64(d)
		l.mu.Unlock()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// paused reports cumulative pacing sleep.
func (l *rateLimiter) paused() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return time.Duration(l.pausedNanos)
}
