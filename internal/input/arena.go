// Buffer arena: the zero-copy half of the handoff contract.
//
// Sources lease a buffer, read a frame or payload into it, and pass the
// lease to the sink as the segment's pcap.Owner; the engine's shard
// releases it after the scan (the assembler copies anything it must
// retain, so post-scan release is safe). Buffers are pooled in a few
// size classes over sync.Pool, so N concurrent sources keep a working
// set proportional to in-flight segments — queue depth, not traffic —
// instead of allocating per packet.
package input

import (
	"sync"
	"sync/atomic"
)

// arenaClasses are the lease size classes. Most Ethernet frames fit the
// first class; socket reads and jumbo captures use the larger ones.
// Leases beyond the last class fall back to a plain allocation that is
// handed to the garbage collector on release.
var arenaClasses = [...]int{2 << 10, 16 << 10, 64 << 10, 256 << 10}

// Arena is a size-classed sync.Pool of payload buffers. The zero value
// is ready to use; an Arena must not be copied after first use.
type Arena struct {
	pools [len(arenaClasses)]sync.Pool

	// Accounting (exposed as telemetry by the supervisor). leases and
	// releases should track each other; misses are pool misses (fresh
	// allocations, including oversize leases); doubleReleases counts
	// Release called twice on one lease — always a bug upstream, made
	// harmless here (the second call is a no-op) but counted so it is
	// visible.
	leases         atomic.Int64
	releases       atomic.Int64
	misses         atomic.Int64
	doubleReleases atomic.Int64
}

// Buf is one leased buffer. It implements pcap.Owner: Release returns
// the buffer to its arena exactly once; further calls are counted
// no-ops. A Buf must not be used after Release.
type Buf struct {
	arena    *Arena
	class    int // index into arenaClasses; -1 = oversize, GC-owned
	data     []byte
	released atomic.Bool
}

// Data returns the leased storage, sized as requested by Lease. Its
// capacity may be larger (the size class).
func (b *Buf) Data() []byte { return b.data }

// Release returns the buffer to the arena. Safe to call from any
// goroutine; only the first call has effect.
func (b *Buf) Release() {
	if b.released.Swap(true) {
		b.arena.doubleReleases.Add(1)
		return
	}
	b.arena.releases.Add(1)
	if b.class < 0 {
		return // oversize: let the GC have it
	}
	b.arena.pools[b.class].Put(b)
}

// Lease returns a buffer whose Data() has length n. The buffer must be
// handed to the sink as an Owner or released by the caller; losing it is
// not a leak (the GC reclaims it) but defeats the pooling.
func (a *Arena) Lease(n int) *Buf {
	a.leases.Add(1)
	class := -1
	for i, size := range arenaClasses {
		if n <= size {
			class = i
			break
		}
	}
	if class < 0 {
		a.misses.Add(1)
		return &Buf{arena: a, class: -1, data: make([]byte, n)}
	}
	if v := a.pools[class].Get(); v != nil {
		b := v.(*Buf)
		b.released.Store(false)
		b.data = b.data[:cap(b.data)][:n]
		return b
	}
	a.misses.Add(1)
	return &Buf{arena: a, class: class, data: make([]byte, n, arenaClasses[class])}
}

// ArenaStats is a point-in-time accounting snapshot.
type ArenaStats struct {
	Leases         int64
	Releases       int64
	Misses         int64
	DoubleReleases int64
}

// Stats reads the arena's counters.
func (a *Arena) Stats() ArenaStats {
	return ArenaStats{
		Leases:         a.leases.Load(),
		Releases:       a.releases.Load(),
		Misses:         a.misses.Load(),
		DoubleReleases: a.doubleReleases.Load(),
	}
}
