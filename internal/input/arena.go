// Buffer arena: the zero-copy half of the handoff contract.
//
// Sources lease a buffer, read a frame or payload into it, and pass the
// lease to the sink as the segment's pcap.Owner; the engine's shard
// releases it after the scan (the assembler copies anything it must
// retain, so post-scan release is safe). Buffers are pooled in a few
// size classes over sync.Pool, so N concurrent sources keep a working
// set proportional to in-flight segments — queue depth, not traffic —
// instead of allocating per packet.
package input

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
)

// arenaClasses are the lease size classes. Most Ethernet frames fit the
// first class; socket reads and jumbo captures use the larger ones.
// Leases beyond the last class fall back to a plain allocation that is
// handed to the garbage collector on release.
var arenaClasses = [...]int{2 << 10, 16 << 10, 64 << 10, 256 << 10}

// Arena is a size-classed sync.Pool of payload buffers. The zero value
// is ready to use; an Arena must not be copied after first use.
type Arena struct {
	pools [len(arenaClasses)]sync.Pool

	// Accounting (exposed as telemetry by the supervisor). leases and
	// releases should track each other; misses are pool misses (fresh
	// allocations, including oversize leases); doubleReleases counts
	// Release called twice on one lease — always a bug upstream, made
	// harmless here (the second call is a no-op) but counted so it is
	// visible.
	leases         atomic.Int64
	releases       atomic.Int64
	misses         atomic.Int64
	doubleReleases atomic.Int64

	// bytesOut is the capacity of every outstanding lease — the arena's
	// component callback for the unified memory governor (BytesLeased).
	bytesOut atomic.Int64

	// debug selects the double-release policy: 0 follows the build
	// (panic under -race, count otherwise), 1 forces panic-with-origin,
	// -1 forces counted-no-op. See SetDebug.
	debug atomic.Int32
}

// SetDebug overrides the double-release debug guard: enabled, a second
// Release on one lease panics with the lease's origin (file:line of the
// Lease call) instead of being a counted no-op. The default — without a
// SetDebug call — is enabled in race-instrumented builds (`go test
// -race`) and disabled otherwise.
func (a *Arena) SetDebug(enabled bool) {
	if enabled {
		a.debug.Store(1)
	} else {
		a.debug.Store(-1)
	}
}

func (a *Arena) debugOn() bool {
	switch a.debug.Load() {
	case 1:
		return true
	case -1:
		return false
	default:
		return raceEnabled
	}
}

// BytesLeased reports the bytes currently out on lease (buffer
// capacities, not requested lengths) — what the arena pins until the
// engine releases the buffers back.
func (a *Arena) BytesLeased() int64 { return a.bytesOut.Load() }

// leaseOrigin names the first caller outside this file, for the
// double-release diagnostic.
func leaseOrigin() string {
	var pcs [8]uintptr
	n := runtime.Callers(3, pcs[:])
	frames := runtime.CallersFrames(pcs[:n])
	for {
		f, more := frames.Next()
		if !strings.HasSuffix(f.File, "arena.go") {
			return fmt.Sprintf("%s:%d", f.File, f.Line)
		}
		if !more {
			return "unknown"
		}
	}
}

// Buf is one leased buffer. It implements pcap.Owner: Release returns
// the buffer to its arena exactly once; further calls are counted
// no-ops. A Buf must not be used after Release.
type Buf struct {
	arena    *Arena
	class    int // index into arenaClasses; -1 = oversize, GC-owned
	data     []byte
	released atomic.Bool
	// origin is the file:line of the Lease call, captured only while
	// the debug guard is on, so a double-release panic names the lease
	// site rather than the second Release site.
	origin string
}

// Data returns the leased storage, sized as requested by Lease. Its
// capacity may be larger (the size class).
func (b *Buf) Data() []byte { return b.data }

// Release returns the buffer to the arena. Safe to call from any
// goroutine; only the first call has effect.
func (b *Buf) Release() {
	if b.released.Swap(true) {
		b.arena.doubleReleases.Add(1)
		if b.arena.debugOn() {
			origin := b.origin
			if origin == "" {
				origin = "unknown (lease predates debug guard)"
			}
			panic(fmt.Sprintf("input: double release of arena buffer leased at %s", origin))
		}
		return
	}
	b.arena.releases.Add(1)
	b.arena.bytesOut.Add(-int64(cap(b.data)))
	if b.class < 0 {
		return // oversize: let the GC have it
	}
	b.arena.pools[b.class].Put(b)
}

// Lease returns a buffer whose Data() has length n. The buffer must be
// handed to the sink as an Owner or released by the caller; losing it is
// not a leak (the GC reclaims it) but defeats the pooling.
func (a *Arena) Lease(n int) *Buf {
	a.leases.Add(1)
	origin := ""
	if a.debugOn() {
		origin = leaseOrigin()
	}
	class := -1
	for i, size := range arenaClasses {
		if n <= size {
			class = i
			break
		}
	}
	if class < 0 {
		a.misses.Add(1)
		a.bytesOut.Add(int64(n))
		return &Buf{arena: a, class: -1, data: make([]byte, n), origin: origin}
	}
	a.bytesOut.Add(int64(arenaClasses[class]))
	if v := a.pools[class].Get(); v != nil {
		b := v.(*Buf)
		b.released.Store(false)
		b.data = b.data[:cap(b.data)][:n]
		b.origin = origin
		return b
	}
	a.misses.Add(1)
	return &Buf{arena: a, class: class, data: make([]byte, n, arenaClasses[class]), origin: origin}
}

// ArenaStats is a point-in-time accounting snapshot.
type ArenaStats struct {
	Leases         int64
	Releases       int64
	Misses         int64
	DoubleReleases int64
	BytesLeased    int64
}

// Stats reads the arena's counters.
func (a *Arena) Stats() ArenaStats {
	return ArenaStats{
		Leases:         a.leases.Load(),
		Releases:       a.releases.Load(),
		Misses:         a.misses.Load(),
		DoubleReleases: a.doubleReleases.Load(),
		BytesLeased:    a.bytesOut.Load(),
	}
}
