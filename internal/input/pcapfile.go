// Capture-file sources: a single pcap file or stream, and the glob
// expansion that turns one spec into N concurrently-scanned files.
//
// Concurrency note: each file is its own source, so two files scan in
// parallel. Per-flow segment order is preserved within a file (one
// source, one handoff queue), which is the property flow reassembly
// needs; when the same 4-tuple appears in two files the interleaving
// across them is nondeterministic — capture sets split by flow (the
// normal rotation shape) are match-equivalent to a sequential scan.
package input

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"matchfilter/internal/pcap"
)

// PcapFile scans one capture file to EOF (finite). Parse failures
// follow the supervisor's malformed policy; a truncated tail ends the
// source the way the serving loop always treated it — everything before
// the cut was valid, nothing after it can be framed.
type PcapFile struct {
	Path string
}

// NewPcapFile returns a source scanning one capture file.
func NewPcapFile(path string) *PcapFile { return &PcapFile{Path: path} }

// Describe implements Source.
func (p *PcapFile) Describe() Description {
	return Description{
		Name:   "pcap:" + filepath.Base(p.Path),
		Kind:   "pcap",
		Detail: p.Path,
		Finite: true,
	}
}

// Run implements Source.
func (p *PcapFile) Run(ctx context.Context, em *Emitter) error {
	f, err := os.Open(p.Path)
	if err != nil {
		return Permanent(err)
	}
	defer f.Close()
	return pumpPcapStream(ctx, em, bufio.NewReaderSize(f, 1<<20))
}

// PcapStream scans one already-open capture stream (stdin) to EOF.
// Unlike PcapFile it cannot be restarted — the bytes are gone — so all
// its failures are permanent.
type PcapStream struct {
	Name string
	R    io.Reader
}

// NewPcapStream returns a source scanning r. name labels telemetry
// ("stdin" for the classic invocation).
func NewPcapStream(name string, r io.Reader) *PcapStream {
	return &PcapStream{Name: name, R: r}
}

// Describe implements Source.
func (p *PcapStream) Describe() Description {
	return Description{Name: "pcap:" + p.Name, Kind: "pcap", Detail: p.Name, Finite: true}
}

// Run implements Source.
func (p *PcapStream) Run(ctx context.Context, em *Emitter) error {
	err := pumpPcapStream(ctx, em, bufio.NewReaderSize(p.R, 1<<20))
	if err != nil && !errors.As(err, new(*StrictError)) {
		return Permanent(err) // a consumed stream cannot be re-read
	}
	return err
}

// pumpPcapStream is the one capture-scanning loop both file and stream
// sources share: packet bodies land in leased arena buffers and ride to
// the engine as frame leases.
func pumpPcapStream(ctx context.Context, em *Emitter, r io.Reader) error {
	pr, err := pcap.NewReader(r)
	if err != nil {
		// An unusable header (bad magic, non-Ethernet) is a malformed
		// *stream*: strict mode aborts, lenient mode counts it and lets
		// the source end — there is nothing to resynchronize to.
		if serr := em.Malformed(err); serr != nil {
			return serr
		}
		return Permanent(fmt.Errorf("input: unusable capture: %w", err))
	}
	var lease *Buf
	pr.SetAlloc(func(n int) []byte {
		lease = em.Lease(n)
		return lease.Data()
	})
	for {
		if ctx.Err() != nil {
			return nil
		}
		lease = nil
		pkt, err := pr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			if lease != nil {
				lease.Release() // body read failed after the lease
			}
			if serr := em.Malformed(err); serr != nil {
				return serr
			}
			// Both failure shapes end the stream: a truncated tail has
			// nothing after it, and an implausible record header cannot
			// be resynchronized past.
			return nil
		}
		if err := em.Frame(pkt.Data, lease); err != nil {
			return err
		}
	}
}

// ExpandPcaps resolves a pcap spec — a literal path, or a glob pattern —
// into one PcapFile source per matching file, sorted for deterministic
// registration order. A spec of "-" yields a single stdin stream source.
func ExpandPcaps(spec string) ([]Source, error) {
	if spec == "-" {
		return []Source{NewPcapStream("stdin", os.Stdin)}, nil
	}
	matches, err := filepath.Glob(spec)
	if err != nil {
		return nil, fmt.Errorf("input: bad pcap pattern %q: %w", spec, err)
	}
	if len(matches) == 0 {
		// Not a pattern match: treat as a literal path so the error the
		// user sees is the open failure, not a silent empty pipeline.
		if _, statErr := os.Stat(spec); statErr != nil {
			return nil, fmt.Errorf("input: pcap %q: %w", spec, statErr)
		}
		matches = []string{spec}
	}
	sort.Strings(matches)
	srcs := make([]Source, len(matches))
	for i, m := range matches {
		srcs[i] = NewPcapFile(m)
	}
	return srcs, nil
}
