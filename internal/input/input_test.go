// Shared test fixtures: an in-memory sink that honors the ownership
// contract, an in-memory source with scriptable failures, and small
// wait/synthesis helpers.
package input

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"matchfilter/internal/pcap"
	"matchfilter/internal/trace"
)

// collectSink records every accepted segment, releasing leases like the
// real engine does after its scan. Safe for concurrent delivery from
// many pumps.
type collectSink struct {
	mu       sync.Mutex
	segments int64
	bytes    int64
	payloads map[pcap.FlowKey][]byte // in-order payload concatenation
	fail     error                   // when set, reject everything
}

func newCollectSink() *collectSink {
	return &collectSink{payloads: make(map[pcap.FlowKey][]byte)}
}

func (c *collectSink) HandleSegmentOwned(seg pcap.Segment, owner pcap.Owner) error {
	c.mu.Lock()
	if c.fail != nil {
		err := c.fail
		c.mu.Unlock()
		if owner != nil {
			owner.Release()
		}
		return err
	}
	c.segments++
	c.bytes += int64(len(seg.Payload))
	if len(seg.Payload) > 0 {
		c.payloads[seg.Key] = append(c.payloads[seg.Key], seg.Payload...)
	}
	c.mu.Unlock()
	if owner != nil {
		owner.Release()
	}
	return nil
}

func (c *collectSink) counts() (segments, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.segments, c.bytes
}

func (c *collectSink) flowBytes(key pcap.FlowKey) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return bytes.Clone(c.payloads[key])
}

// memSource emits scripted flows through the leasing path, optionally
// failing its first failBefore Run attempts (transient) or permanently.
type memSource struct {
	name       string
	flows      [][]byte // one flow per payload
	chunk      int
	failBefore int  // Run attempts that fail before one succeeds
	permanent  bool // fail with Permanent instead

	attempts int32
	mu       sync.Mutex
}

func (m *memSource) Describe() Description {
	return Description{Name: m.name, Kind: "mem", Detail: "test", Finite: true}
}

func (m *memSource) Run(ctx context.Context, em *Emitter) error {
	m.mu.Lock()
	m.attempts++
	attempt := m.attempts
	m.mu.Unlock()
	if m.permanent {
		return Permanent(errors.New("scripted permanent failure"))
	}
	if int(attempt) <= m.failBefore {
		return errors.New("scripted transient failure")
	}
	chunk := m.chunk
	if chunk <= 0 {
		chunk = 512
	}
	srcID := sourceIDs.Add(1)
	for i, payload := range m.flows {
		fr := newFramer(synthFlowKey(srcID, uint32(i+1), nil, 7))
		if err := em.Segment(fr.syn(), nil); err != nil {
			return err
		}
		for off := 0; off < len(payload); off += chunk {
			end := off + chunk
			if end > len(payload) {
				end = len(payload)
			}
			lease := em.Lease(end - off)
			copy(lease.Data(), payload[off:end])
			if err := em.Segment(fr.data(lease.Data()), lease); err != nil {
				return err
			}
		}
		if err := em.Segment(fr.fin(), nil); err != nil {
			return err
		}
	}
	return nil
}

// segCount is the segment count a memSource's flows produce: SYN + data
// chunks + FIN per flow.
func (m *memSource) segCount() int64 {
	chunk := m.chunk
	if chunk <= 0 {
		chunk = 512
	}
	var n int64
	for _, payload := range m.flows {
		n += 2 + int64((len(payload)+chunk-1)/chunk)
	}
	return n
}

func (m *memSource) byteCount() int64 {
	var n int64
	for _, payload := range m.flows {
		n += int64(len(payload))
	}
	return n
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// synthCapture renders nFlows text-like flows as one capture.
func synthCapture(t testing.TB, nFlows, flowBytes int, words []string, seed int64) []byte {
	t.Helper()
	payloads := make([][]byte, nFlows)
	for i := range payloads {
		payloads[i] = trace.TextLike(flowBytes, seed+int64(i*37), words, 0.05)
	}
	var buf bytes.Buffer
	if err := pcap.Synthesize(&buf, payloads, 512, 0.05, seed); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// countCapture parses a capture and reports its frame count and total
// TCP payload bytes — the ground truth a lenient scan must account for.
func countCapture(t testing.TB, capture []byte) (frames, payload int64) {
	t.Helper()
	pr, err := pcap.NewReader(bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	for {
		pkt, err := pr.Next()
		if err != nil {
			return frames, payload
		}
		frames++
		if seg, err := pcap.DecodeTCP(pkt.Data); err == nil {
			payload += int64(len(seg.Payload))
		}
	}
}
