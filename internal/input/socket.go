// Socket sources: TCP and UDP listeners that treat each accepted
// connection (TCP) or each remote peer (UDP) as one flow. The wire
// bytes never carry Ethernet/IP framing — the source synthesizes the
// flow key and TCP-shaped segment stream itself (a framer), so the
// engine sees exactly what a capture of the same bytes would have
// produced: SYN, in-order data segments, FIN.
package input

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"

	"matchfilter/internal/pcap"
)

// defaultChunk bounds the payload bytes of one synthesized segment — a
// single socket read, hence a single arena lease.
const defaultChunk = 16 << 10

// sourceIDs hands every socket source a process-unique id that is baked
// into its synthesized flow keys, so two sources can never collide on a
// 4-tuple and interleave their payloads into one flow.
var sourceIDs atomic.Uint32

// framer synthesizes the TCP-shaped segment stream for one flow: a SYN
// claiming sequence 0, data from sequence 1, and a FIN at the end —
// mirroring pcap.Synthesize so socket flows and capture flows look
// identical to reassembly. It is a pure state machine (no I/O), which
// is what FuzzSocketFraming drives.
type framer struct {
	key pcap.FlowKey
	seq uint32
}

func newFramer(key pcap.FlowKey) *framer { return &framer{key: key} }

// syn opens the flow. The SYN occupies sequence 0; data starts at 1.
func (f *framer) syn() pcap.Segment {
	f.seq = 1
	return pcap.Segment{Key: f.key, Seq: 0, Flags: pcap.FlagSYN}
}

// data emits one in-order payload segment and advances the sequence.
func (f *framer) data(p []byte) pcap.Segment {
	seg := pcap.Segment{Key: f.key, Seq: f.seq, Flags: pcap.FlagACK | pcap.FlagPSH, Payload: p}
	f.seq += uint32(len(p))
	return seg
}

// fin closes the flow (the engine tears the flow down and recycles its
// runner).
func (f *framer) fin() pcap.Segment {
	return pcap.Segment{Key: f.key, Seq: f.seq, Flags: pcap.FlagFIN | pcap.FlagACK}
}

// synthFlowKey derives the flow key for connection conn of source
// srcID. The real remote IPv4 address and port are used when available
// (so match reports name the actual peer); otherwise the connection
// ordinal stands in as the client address. The destination encodes the
// source id, so keys are collision-free across sources, and the
// SYN-restart path covers 4-tuple reuse by a later connection.
func synthFlowKey(srcID uint32, conn uint32, remote net.Addr, localPort uint16) pcap.FlowKey {
	key := pcap.FlowKey{
		SrcIP:   conn,
		SrcPort: uint16(conn>>16) ^ uint16(conn),
		DstIP:   0x0a000000 | (srcID & 0x00ffffff), // 10.x.y.z encodes the source
		DstPort: localPort,
	}
	switch ra := remote.(type) {
	case *net.TCPAddr:
		if ip4 := ra.IP.To4(); ip4 != nil {
			key.SrcIP = uint32(ip4[0])<<24 | uint32(ip4[1])<<16 | uint32(ip4[2])<<8 | uint32(ip4[3])
			key.SrcPort = uint16(ra.Port)
		}
	case *net.UDPAddr:
		if ip4 := ra.IP.To4(); ip4 != nil {
			key.SrcIP = uint32(ip4[0])<<24 | uint32(ip4[1])<<16 | uint32(ip4[2])<<8 | uint32(ip4[3])
			key.SrcPort = uint16(ra.Port)
		}
	}
	return key
}

// localPortOf extracts the listener port for key synthesis.
func localPortOf(addr net.Addr) uint16 {
	switch la := addr.(type) {
	case *net.TCPAddr:
		return uint16(la.Port)
	case *net.UDPAddr:
		return uint16(la.Port)
	}
	return 0
}

// TCPListener accepts connections and scans each connection's byte
// stream as one flow.
type TCPListener struct {
	Addr string
	// Chunk bounds one synthesized segment's payload (one read, one
	// lease). 0 means 16KiB.
	Chunk int

	id    uint32
	bound atomic.Value // net.Addr once listening (tests bind port 0)
}

// Bound returns the listening address, or nil before Run has bound it.
func (t *TCPListener) Bound() net.Addr {
	a, _ := t.bound.Load().(net.Addr)
	return a
}

// NewTCPListener returns a TCP socket source listening on addr
// (":9999", "127.0.0.1:9999").
func NewTCPListener(addr string) *TCPListener {
	return &TCPListener{Addr: addr, id: sourceIDs.Add(1)}
}

// Describe implements Source.
func (t *TCPListener) Describe() Description {
	return Description{Name: "tcp:" + t.Addr, Kind: "tcp", Detail: t.Addr, Finite: false}
}

// Run implements Source. Listen failures are transient (the address may
// be in TIME_WAIT from a previous run) and restart under the backoff
// policy.
func (t *TCPListener) Run(ctx context.Context, em *Emitter) error {
	chunk := t.Chunk
	if chunk <= 0 {
		chunk = defaultChunk
	}
	ln, err := net.Listen("tcp", t.Addr)
	if err != nil {
		return fmt.Errorf("input: tcp listen %s: %w", t.Addr, err)
	}
	t.bound.Store(ln.Addr())
	stop := context.AfterFunc(ctx, func() { ln.Close() })
	defer stop()
	defer ln.Close()

	localPort := localPortOf(ln.Addr())
	var conns atomic.Uint32
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil // listener closed by cancellation: clean stop
			}
			return fmt.Errorf("input: tcp accept %s: %w", t.Addr, err)
		}
		wg.Add(1)
		go func(conn net.Conn, n uint32) {
			defer wg.Done()
			defer conn.Close()
			stopConn := context.AfterFunc(ctx, func() { conn.Close() })
			defer stopConn()
			key := synthFlowKey(t.id, n, conn.RemoteAddr(), localPort)
			pumpStreamConn(ctx, em, conn, key, chunk)
		}(conn, conns.Add(1))
	}
}

// pumpStreamConn frames one byte-stream connection into SYN / data /
// FIN segments. Read errors just end the flow — a peer resetting its
// connection is traffic, not a source failure.
func pumpStreamConn(ctx context.Context, em *Emitter, conn net.Conn, key pcap.FlowKey, chunk int) {
	fr := newFramer(key)
	if em.Segment(fr.syn(), nil) != nil {
		return
	}
	for {
		lease := em.Lease(chunk)
		n, err := conn.Read(lease.Data())
		if n > 0 {
			if em.Segment(fr.data(lease.Data()[:n]), lease) != nil {
				return // lease ownership transferred (released inside)
			}
		} else {
			lease.Release()
		}
		if err != nil {
			_ = em.Segment(fr.fin(), nil)
			return
		}
	}
}

// UDPListener binds a datagram socket and scans each peer's datagrams
// as one flow: every datagram is one in-order segment, sequence numbers
// advance by payload length, and flows end by engine idle eviction
// (datagrams have no FIN).
//
// Delivery accounting: UDP gives the daemon no loss signal by itself,
// so two optional mechanisms fill in. With Seq enabled ("udp:addr?seq")
// the sender prefixes every datagram with a 4-byte big-endian per-peer
// sequence number; the listener strips it, counts skipped-over numbers
// as gaps and late arrivals as reorders (a gap that later arrives is
// counted in both, keeping each counter monotonic — gaps minus reorders
// approximates true loss). Independently, on Linux the socket opts into
// SO_RXQ_OVFL and accounts datagrams the kernel shed before userspace
// saw them. Both feed /statsz and the per-source mfa_input_* series.
type UDPListener struct {
	Addr string
	// MaxPeers bounds the peer→flow table; when full, the oldest half
	// is forgotten (their flows idle out in the engine; a returning
	// peer restarts as a fresh flow via SYN). 0 means 16384.
	MaxPeers int
	// Seq enables the 4-byte sequence-header protocol described above.
	Seq bool

	id    uint32
	bound atomic.Value // net.Addr once bound (tests bind port 0)
}

// Bound returns the bound address, or nil before Run has bound it.
func (u *UDPListener) Bound() net.Addr {
	a, _ := u.bound.Load().(net.Addr)
	return a
}

// NewUDPListener returns a UDP socket source bound to addr.
func NewUDPListener(addr string) *UDPListener {
	return &UDPListener{Addr: addr, id: sourceIDs.Add(1)}
}

// Describe implements Source.
func (u *UDPListener) Describe() Description {
	detail := u.Addr
	if u.Seq {
		detail += "?seq"
	}
	return Description{Name: "udp:" + detail, Kind: "udp", Detail: detail, Finite: false}
}

// udpPeer is one remote address's flow state.
type udpPeer struct {
	fr   *framer
	tick uint64 // last-seen stamp for eviction
	// Seq-mode delivery tracking: next is the sequence number expected
	// from this peer; meaningful once haveSeq (the first datagram seeds
	// it, so a mid-stream join is not misread as a giant gap).
	next    uint32
	haveSeq bool
}

// Run implements Source.
func (u *UDPListener) Run(ctx context.Context, em *Emitter) error {
	maxPeers := u.MaxPeers
	if maxPeers <= 0 {
		maxPeers = 16384
	}
	pc, err := net.ListenPacket("udp", u.Addr)
	if err != nil {
		return fmt.Errorf("input: udp listen %s: %w", u.Addr, err)
	}
	u.bound.Store(pc.LocalAddr())
	stop := context.AfterFunc(ctx, func() { pc.Close() })
	defer stop()
	defer pc.Close()

	localPort := localPortOf(pc.LocalAddr())
	var oob []byte
	if enableKernelDropCount(pc) {
		oob = make([]byte, 64)
	}
	var lastKernelDrops uint32
	var haveBaseline bool
	peers := make(map[string]*udpPeer)
	var conns uint32
	var tick uint64
	for {
		lease := em.Lease(64 << 10) // max datagram
		n, addr, kdrops, haveKD, err := readUDP(pc, lease.Data(), oob)
		if err != nil {
			lease.Release()
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("input: udp read %s: %w", u.Addr, err)
		}
		if haveKD {
			// SO_RXQ_OVFL reports the socket's cumulative drop count;
			// credit the delta (wrap-safe uint32 subtraction). The first
			// observation seeds the baseline — drops before this Run
			// started belong to no one.
			if haveBaseline {
				if d := kdrops - lastKernelDrops; d != 0 {
					em.CountKernelDrops(int64(d))
				}
			}
			lastKernelDrops, haveBaseline = kdrops, true
		}
		tick++
		pk := addr.String()
		peer, ok := peers[pk]
		if !ok {
			if len(peers) >= maxPeers {
				evictOldestPeers(peers, len(peers)/2)
			}
			conns++
			peer = &udpPeer{fr: newFramer(synthFlowKey(u.id, conns, addr, localPort))}
			peers[pk] = peer
			if em.Segment(peer.fr.syn(), nil) != nil {
				lease.Release()
				return nil
			}
		}
		peer.tick = tick
		payload := lease.Data()[:n]
		if u.Seq {
			if n < 4 {
				lease.Release()
				if err := em.Malformed(fmt.Errorf("input: udp %s: seq-mode datagram shorter than its 4-byte header (%d bytes)", u.Addr, n)); err != nil {
					return err
				}
				continue
			}
			seq := uint32(payload[0])<<24 | uint32(payload[1])<<16 | uint32(payload[2])<<8 | uint32(payload[3])
			payload = payload[4:]
			switch {
			case !peer.haveSeq:
				peer.haveSeq = true
				peer.next = seq + 1
			case seq == peer.next:
				peer.next++
			case seqAfter(seq, peer.next):
				em.CountGaps(int64(seq - peer.next))
				peer.next = seq + 1
			default:
				em.CountReorders(1)
			}
		}
		if len(payload) == 0 {
			lease.Release()
			continue
		}
		if em.Segment(peer.fr.data(payload), lease) != nil {
			return nil
		}
	}
}

// seqAfter reports whether a is ahead of b in wrapping uint32 sequence
// space.
func seqAfter(a, b uint32) bool { return int32(a-b) > 0 }

// evictOldestPeers forgets the n least-recently-seen peers: one pass to
// collect last-seen stamps, a sort to find the age cutoff, one pass to
// delete. The single read loop owns the map, so no locking; eviction is
// rare (every maxPeers/2 new peers at saturation).
func evictOldestPeers(peers map[string]*udpPeer, n int) {
	if n <= 0 {
		return
	}
	ticks := make([]uint64, 0, len(peers))
	for _, p := range peers {
		ticks = append(ticks, p.tick)
	}
	sort.Slice(ticks, func(i, j int) bool { return ticks[i] < ticks[j] })
	if n > len(ticks) {
		n = len(ticks)
	}
	cutoff := ticks[n-1]
	for k, p := range peers {
		if n > 0 && p.tick <= cutoff {
			delete(peers, k)
			n--
		}
	}
}

// errNotSupported marks platform-gated sources on the wrong platform.
var errNotSupported = errors.New("input: not supported on this platform")
