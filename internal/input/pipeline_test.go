// Integration tests against the real engine: the multi-pcap
// match-equivalence property and the per-source-counters-sum-to-engine-
// totals invariant, both exercised under -race in CI.
package input

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"matchfilter/internal/core"
	"matchfilter/internal/engine"
	"matchfilter/internal/flow"
	"matchfilter/internal/pcap"
	"matchfilter/internal/regexparse"
)

func buildMFA(t testing.TB, sources ...string) *core.MFA {
	t.Helper()
	rules := make([]core.Rule, len(sources))
	for i, src := range sources {
		p, err := regexparse.ParsePCRE(src)
		if err != nil {
			t.Fatal(err)
		}
		rules[i] = core.Rule{Pattern: p, ID: int32(i + 1)}
	}
	m, err := core.Compile(rules, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// matchRecorder collects engine matches from concurrent shards.
type matchRecorder struct {
	mu      sync.Mutex
	matches []engine.Match
}

func (r *matchRecorder) record(m engine.Match) {
	r.mu.Lock()
	r.matches = append(r.matches, m)
	r.mu.Unlock()
}

// flowMatches reduces matches to a per-flow sorted multiset, the
// granularity at which parallel ingestion must agree with sequential.
func (r *matchRecorder) flowMatches() map[pcap.FlowKey][]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[pcap.FlowKey][]string)
	for _, m := range r.matches {
		out[m.Flow] = append(out[m.Flow], fmt.Sprintf("%d@%d", m.ID, m.Pos))
	}
	for _, v := range out {
		sort.Strings(v)
	}
	return out
}

func equalFlowMatches(a, b map[pcap.FlowKey][]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok || len(va) != len(vb) {
			return false
		}
		for i := range va {
			if va[i] != vb[i] {
				return false
			}
		}
	}
	return true
}

// splitCaptureByFlow routes a capture's frames into two flow-disjoint
// captures — the shape a rotating capture daemon produces — so parallel
// per-file scanning is well-defined.
func splitCaptureByFlow(t *testing.T, capture []byte, dir string) (pathA, pathB string) {
	t.Helper()
	pr, err := pcap.NewReader(bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	var bufA, bufB bytes.Buffer
	wrA, wrB := pcap.NewWriter(&bufA), pcap.NewWriter(&bufB)
	for {
		pkt, err := pr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		seg, err := pcap.DecodeTCP(pkt.Data)
		if err != nil {
			t.Fatal(err)
		}
		w := wrA
		if seg.Key.SrcIP&1 == 0 {
			w = wrB
		}
		if err := w.WritePacket(pkt); err != nil {
			t.Fatal(err)
		}
	}
	pathA = filepath.Join(dir, "a.pcap")
	pathB = filepath.Join(dir, "b.pcap")
	for path, buf := range map[string]*bytes.Buffer{pathA: &bufA, pathB: &bufB} {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return pathA, pathB
}

// newTestEngine builds a no-drop engine: backpressure mode with a queue
// far larger than any test's traffic and watermarks at 1.0, so the
// degradation ladder never engages and accounting is exact.
func newTestEngine(m *core.MFA, rec *matchRecorder) *engine.Engine {
	return engine.New(engine.Config{
		Shards: 4, QueueDepth: 1 << 14,
		SoftWatermark: 1, HardWatermark: 1,
	}, func() flow.Runner { return m.NewRunner() }, rec.record)
}

// TestMultiPcapParallelEqualsSequential is the PR's acceptance property:
// a flow-disjoint capture set scanned as concurrent sources produces the
// same per-flow match multiset as one sequential scan of the same bytes.
func TestMultiPcapParallelEqualsSequential(t *testing.T) {
	words := []string{"kabra", "kacem", "kadol"}
	m := buildMFA(t, "kabra.*kacem", "kadol")
	capture := synthCapture(t, 8, 20000, words, 7)
	pathA, pathB := splitCaptureByFlow(t, capture, t.TempDir())

	// Sequential baseline: one engine, frames fed in capture order.
	seqRec := &matchRecorder{}
	seq := newTestEngine(m, seqRec)
	pr, err := pcap.NewReader(bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	for {
		pkt, err := pr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := seq.HandleFrame(pkt.Data); err != nil {
			t.Fatal(err)
		}
	}
	if err := seq.Close(); err != nil {
		t.Fatal(err)
	}
	if seqRec.flowMatches() == nil || len(seqRec.flowMatches()) == 0 {
		t.Fatal("baseline found no matches; the property test would be vacuous")
	}

	// Parallel: both files as concurrent supervisor sources.
	parRec := &matchRecorder{}
	par := newTestEngine(m, parRec)
	sup := NewSupervisor(Config{Sink: par, QueueDepth: 16})
	sup.Add(NewPcapFile(pathA))
	sup.Add(NewPcapFile(pathB))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sup.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if err := par.Close(); err != nil {
		t.Fatal(err)
	}

	if !equalFlowMatches(seqRec.flowMatches(), parRec.flowMatches()) {
		t.Fatalf("parallel scan diverged from sequential:\nseq: %v\npar: %v",
			seqRec.flowMatches(), parRec.flowMatches())
	}
}

// TestPerSourceCountersSumToEngineTotals runs three concurrent sources —
// two capture files and a flaky in-memory source that restarts — into
// one engine with no drop paths enabled, and checks the supervisor's
// per-source accounting against the engine's own totals, and that the
// restarting source did not perturb its peers.
func TestPerSourceCountersSumToEngineTotals(t *testing.T) {
	m := buildMFA(t, "kabra")
	capture := synthCapture(t, 6, 8000, []string{"kabra"}, 11)
	pathA, pathB := splitCaptureByFlow(t, capture, t.TempDir())
	wantFrames, wantPayload := countCapture(t, capture)

	rec := &matchRecorder{}
	e := newTestEngine(m, rec)
	flaky := &memSource{name: "flaky", flows: [][]byte{make([]byte, 4096)}, failBefore: 2}
	sup := NewSupervisor(Config{Sink: e, QueueDepth: 8, BackoffBase: time.Millisecond})
	sup.Add(NewPcapFile(pathA))
	sup.Add(NewPcapFile(pathB))
	sup.Add(flaky)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sup.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	st := e.Stats()
	var sumSegs, sumBytes, pcapSegs, pcapBytes int64
	for _, row := range sup.Stats() {
		sumSegs += row.Segments
		sumBytes += row.PayloadBytes
		if row.Kind == "pcap" {
			pcapSegs += row.Segments
			pcapBytes += row.PayloadBytes
			if row.Restarts != 0 || row.State != "done" {
				t.Fatalf("pcap source perturbed by flaky peer: %+v", row)
			}
		}
	}
	if sumSegs != st.Packets || sumBytes != st.PayloadBytes {
		t.Fatalf("per-source sums %d segs / %d bytes != engine totals %d / %d",
			sumSegs, sumBytes, st.Packets, st.PayloadBytes)
	}
	// The capture files delivered exactly their on-disk traffic.
	if pcapSegs != wantFrames || pcapBytes != wantPayload {
		t.Fatalf("pcap sources delivered %d/%d, capture holds %d/%d",
			pcapSegs, pcapBytes, wantFrames, wantPayload)
	}
	if flakySt := sup.Stats()[2]; flakySt.Restarts != 2 {
		t.Fatalf("flaky restarts: %+v", flakySt)
	}
	// The leases the sources took all came back: the engine released
	// every buffer it scanned.
	ast := sup.Arena().Stats()
	if ast.Leases != ast.Releases || ast.DoubleReleases != 0 {
		t.Fatalf("arena imbalance after drain: %+v", ast)
	}
}

// TestExpandPcaps covers the spec shapes: literal, glob, missing.
func TestExpandPcaps(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"x1.pcap", "x2.pcap"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte{}, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	srcs, err := ExpandPcaps(filepath.Join(dir, "x*.pcap"))
	if err != nil || len(srcs) != 2 {
		t.Fatalf("glob: %d sources, err %v", len(srcs), err)
	}
	srcs, err = ExpandPcaps(filepath.Join(dir, "x1.pcap"))
	if err != nil || len(srcs) != 1 {
		t.Fatalf("literal: %d sources, err %v", len(srcs), err)
	}
	if _, err := ExpandPcaps(filepath.Join(dir, "missing.pcap")); err == nil {
		t.Fatal("missing path: want error")
	}
	srcs, err = ExpandPcaps("-")
	if err != nil || len(srcs) != 1 || srcs[0].Describe().Name != "pcap:stdin" {
		t.Fatalf("stdin: %v, err %v", srcs, err)
	}
}
