//go:build race

package input

// raceEnabled makes the arena's double-release debug guard default to
// on under `go test -race` / race-instrumented builds: a double release
// is a lifetime bug of exactly the kind the race detector hunts, and
// panicking with the lease's origin beats a counter nobody watches.
const raceEnabled = true
