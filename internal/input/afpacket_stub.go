//go:build !linux

// AF_PACKET stub for non-Linux platforms: the source exists (specs
// parse, telemetry registers) but fails permanently at start, so a
// config written for a Linux fleet degrades loudly, not mysteriously.
package input

import (
	"context"
	"fmt"
)

// AFPacket captures live traffic from one Linux network interface.
// On this platform it is a stub that fails permanently.
type AFPacket struct {
	Iface string
	// SnapLen bounds one captured frame; 0 means 64KiB. Unused here.
	SnapLen int
}

// NewAFPacket returns the stub source for iface.
func NewAFPacket(iface string) *AFPacket { return &AFPacket{Iface: iface} }

// Describe implements Source.
func (a *AFPacket) Describe() Description {
	return Description{Name: "afpacket:" + a.Iface, Kind: "afpacket", Detail: a.Iface, Finite: false}
}

// Run implements Source.
func (a *AFPacket) Run(ctx context.Context, em *Emitter) error {
	return Permanent(fmt.Errorf("input: afpacket %s: %w", a.Iface, errNotSupported))
}
