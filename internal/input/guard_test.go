// Resource-governance tests for the input layer: the circuit breaker
// that replaces permanent source death, the healthy-run budget refill,
// and the memory governor's admission gate on leasing.
package input

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"matchfilter/internal/guard"
	"matchfilter/internal/leakcheck"
	"matchfilter/internal/pcap"
)

// flakyInfiniteSource is an infinite source (Finite=false, so it gets a
// breaker) that fails its first failBefore Run attempts, then emits a
// short flow and returns.
type flakyInfiniteSource struct {
	name       string
	failBefore int32
	segs       int
	runFor     time.Duration // how long each failing run lasts
	attempts   atomic.Int32
}

func (f *flakyInfiniteSource) Describe() Description {
	return Description{Name: f.name, Kind: "mem", Detail: "test", Finite: false}
}

func (f *flakyInfiniteSource) Run(ctx context.Context, em *Emitter) error {
	if f.attempts.Add(1) <= f.failBefore {
		if f.runFor > 0 {
			select {
			case <-time.After(f.runFor):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		return errors.New("scripted flap")
	}
	srcID := sourceIDs.Add(1)
	fr := newFramer(synthFlowKey(srcID, 1, nil, 7))
	if err := em.Segment(fr.syn(), nil); err != nil {
		return err
	}
	for i := 0; i < f.segs; i++ {
		lease := em.Lease(100)
		if err := em.Segment(fr.data(lease.Data()), lease); err != nil {
			return err
		}
	}
	return em.Segment(fr.fin(), nil)
}

// TestBreakerReentersViaHalfOpenProbe is the acceptance scenario: a
// flapping infinite source exhausts its restart budget, the breaker
// opens with a doubling capped interval instead of abandoning the
// source, and a half-open probe re-enters service.
func TestBreakerReentersViaHalfOpenProbe(t *testing.T) {
	leakcheck.Check(t)
	sink := newCollectSink()
	// Budget 2: failures 1-2 restart normally, failure 3 opens the
	// breaker, the first probe (attempt 4) fails and re-opens it, the
	// second probe (attempt 5) succeeds.
	flaky := &flakyInfiniteSource{name: "flap", failBefore: 4, segs: 8}
	sup := NewSupervisor(Config{
		Sink: sink, RestartBudget: 2,
		BackoffBase: time.Microsecond, BackoffMax: time.Millisecond,
		BreakerOpenBase: 2 * time.Millisecond, BreakerOpenMax: 8 * time.Millisecond,
	})
	sup.Add(flaky)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sup.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if ctx.Err() != nil {
		t.Fatal("supervisor did not finish")
	}
	row := sup.Stats()[0]
	if row.State != "done" {
		t.Fatalf("source state %q, want done (re-entered via probing): %+v", row.State, row)
	}
	if row.Breaker != "closed" {
		t.Fatalf("breaker %q after successful probe, want closed", row.Breaker)
	}
	if row.BreakerOpens != 2 {
		t.Fatalf("BreakerOpens = %d, want 2 (budget spend + failed probe)", row.BreakerOpens)
	}
	if row.Restarts != 4 {
		t.Fatalf("Restarts = %d, want 4", row.Restarts)
	}
	if n := sup.OpenBreakers(); n != 0 {
		t.Fatalf("OpenBreakers = %d after recovery, want 0", n)
	}
	if segs, _ := sink.counts(); segs != row.Segments || segs == 0 {
		t.Fatalf("sink saw %d segments, source row says %d", segs, row.Segments)
	}
}

// TestBudgetRefillsAfterHealthyRun is the regression test for the
// budget bugfix: a finite source whose failures are separated by
// sustained healthy running must not be abandoned, even when lifetime
// failures exceed the budget — only consecutive quick failures spend
// it.
func TestBudgetRefillsAfterHealthyRun(t *testing.T) {
	leakcheck.Check(t)
	src := &healthyThenFailSource{name: "steady", failBefore: 6, runFor: 8 * time.Millisecond}
	stats, err := runSupervisor(t, Config{
		Sink: newCollectSink(), RestartBudget: 2, HealthyReset: 2 * time.Millisecond,
		BackoffBase: time.Microsecond, BackoffMax: time.Millisecond,
	}, src)
	if err != nil {
		t.Fatal(err)
	}
	row := stats[0]
	if row.State != "done" {
		t.Fatalf("source abandoned despite healthy runs between failures: %+v", row)
	}
	if row.Restarts != 6 {
		t.Fatalf("Restarts = %d, want 6 (more than budget 2, each after a healthy run)", row.Restarts)
	}
}

// healthyThenFailSource runs for runFor before each scripted failure, so
// every failure follows a "healthy" stretch.
type healthyThenFailSource struct {
	name       string
	failBefore int32
	runFor     time.Duration
	attempts   atomic.Int32
}

func (h *healthyThenFailSource) Describe() Description {
	return Description{Name: h.name, Kind: "mem", Detail: "test", Finite: true}
}

func (h *healthyThenFailSource) Run(ctx context.Context, em *Emitter) error {
	if h.attempts.Add(1) <= h.failBefore {
		select {
		case <-time.After(h.runFor):
		case <-ctx.Done():
			return ctx.Err()
		}
		return errors.New("scripted late failure")
	}
	return nil
}

// holdSink accepts segments but parks their leases until told to let
// go — a stand-in for a slow engine whose scans retain buffers.
type holdSink struct {
	mu       sync.Mutex
	held     []pcap.Owner
	segments int64
}

func (h *holdSink) HandleSegmentOwned(seg pcap.Segment, owner pcap.Owner) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.segments++
	if owner != nil {
		h.held = append(h.held, owner)
	}
	return nil
}

func (h *holdSink) releaseAll() {
	h.mu.Lock()
	held := h.held
	h.held = nil
	h.mu.Unlock()
	for _, o := range held {
		o.Release()
	}
}

// leasingSource emits segs leased data segments on one flow.
type leasingSource struct {
	name  string
	segs  int
	lease int
}

func (l *leasingSource) Describe() Description {
	return Description{Name: l.name, Kind: "mem", Detail: "test", Finite: true}
}

func (l *leasingSource) Run(ctx context.Context, em *Emitter) error {
	srcID := sourceIDs.Add(1)
	fr := newFramer(synthFlowKey(srcID, 1, nil, 7))
	if err := em.Segment(fr.syn(), nil); err != nil {
		return err
	}
	for i := 0; i < l.segs; i++ {
		lease := em.Lease(l.lease)
		if err := em.Segment(fr.data(lease.Data()), lease); err != nil {
			return err
		}
	}
	return em.Segment(fr.fin(), nil)
}

// TestGovernorPausesLeasing is the -max-memory acceptance scenario at
// the input layer: with leases retained downstream, a burst that would
// have grown the arena past the ceiling instead pauses the source at
// the admission gate, and leased bytes plateau below the limit until
// the pressure drains.
func TestGovernorPausesLeasing(t *testing.T) {
	leakcheck.Check(t)
	const limit = 64 << 10
	arena := &Arena{}
	gov := guard.NewGovernor(guard.GovernorConfig{Limit: limit, PauseAt: 0.5, Poll: time.Millisecond})
	gov.Register("arena", arena.BytesLeased)

	sink := &holdSink{}
	// 50 leases in the 2K class = 100K total churn, well past the 64K
	// ceiling if nothing paused.
	src := &leasingSource{name: "burst", segs: 50, lease: 2 << 10}
	sup := NewSupervisor(Config{Sink: sink, Arena: arena, Governor: gov})
	sup.Add(src)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- sup.Run(ctx) }()

	// The source must hit the gate: usage ≥ PauseAt×limit with the sink
	// holding every lease.
	deadline := time.Now().Add(5 * time.Second)
	for gov.Stats().Pauses == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("governor never paused; leased=%d", arena.BytesLeased())
		}
		time.Sleep(time.Millisecond)
	}
	if leased := arena.BytesLeased(); leased > limit {
		t.Fatalf("leased bytes %d exceeded the %d ceiling", leased, limit)
	}

	// Drain like a recovering engine would, watching the plateau.
	var maxLeased int64
	for {
		if l := arena.BytesLeased(); l > maxLeased {
			maxLeased = l
		}
		sink.releaseAll()
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			sink.releaseAll()
			if maxLeased > limit {
				t.Fatalf("leased bytes peaked at %d, above the %d ceiling", maxLeased, limit)
			}
			if st := gov.Stats(); st.Pauses == 0 || st.PausedNanos <= 0 {
				t.Fatalf("pause accounting missing: %+v", st)
			}
			if got := arena.BytesLeased(); got != 0 {
				t.Fatalf("leaked leases: %d bytes still out", got)
			}
			return
		case <-time.After(time.Millisecond):
		}
	}
}