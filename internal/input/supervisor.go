// Supervisor: the plugin runner. One goroutine pair per source — the
// source's Run producing into a bounded handoff channel, and a pump
// draining that channel into the sink — plus restart-with-backoff
// supervision and centralized strict/lenient malformed-input policy.
package input

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"matchfilter/internal/guard"
	"matchfilter/internal/pcap"
	"matchfilter/internal/telemetry"
)

// Config sizes the pipeline.
type Config struct {
	// Sink receives every decoded segment. Required.
	Sink Sink
	// Strict aborts the whole pipeline on the first malformed frame or
	// record anywhere (Run returns a *StrictError); the default counts
	// and skips, as a daemon on a hostile wire must.
	Strict bool
	// QueueDepth bounds each source's handoff channel (segments).
	// 0 means 256. A full queue backpressures the producing source
	// without touching the others.
	QueueDepth int
	// RestartBudget is how many restarts a failing source is granted
	// before the supervisor escalates. For finite sources (files,
	// spools) exhausting it abandons the source (state "failed") while
	// the other sources keep serving. For infinite sources (sockets,
	// live capture) it opens a circuit breaker instead: the source
	// moves to capped-interval half-open probing rather than dying
	// permanently. 0 means 8.
	RestartBudget int
	// BackoffBase and BackoffMax bound the exponential restart backoff.
	// 0 means 100ms and 5s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerOpenBase and BreakerOpenMax bound an infinite source's
	// open-circuit interval: the first open waits BreakerOpenBase
	// before a half-open probe, doubling per consecutive open up to
	// BreakerOpenMax. 0 means 10s and 2m.
	BreakerOpenBase time.Duration
	BreakerOpenMax  time.Duration
	// HealthyReset is how long a source must run cleanly for its
	// restart budget to refill — a source that served for minutes and
	// then hiccuped is not crash-looping, and transient early failures
	// must not permanently eat the budget. Applies to both the finite
	// budget and the breaker's failure budget. 0 means 30s.
	HealthyReset time.Duration
	// Governor, when non-nil, gates buffer leasing against the unified
	// memory ceiling: Emitter.Lease blocks while governed usage sits
	// above the governor's pause threshold, so sources stop pulling
	// bytes off the wire before the arena can OOM the process.
	Governor *guard.Governor
	// Metrics, when non-nil, receives per-source series (segments,
	// bytes, skips, malformed, restarts, queue depth/capacity, state)
	// labeled source=<name>, plus the arena's lease accounting.
	Metrics *telemetry.Registry
	// Arena overrides the buffer arena; nil allocates a private one.
	// Share one arena across supervisors to share the buffer pool.
	Arena *Arena
	// Tagger, when non-nil, classifies untagged flows to a tenant index
	// at ingest (tenant.Registry.Tag is the intended implementation). It
	// runs once per emitted segment on keys whose Tenant is still 0 — a
	// per-source binding (SourceOptions.Tenant) wins over it. Must be
	// safe for concurrent use and lock-free cheap.
	Tagger func(pcap.FlowKey) uint32
	// Logf receives supervision events (restarts, abandonments); nil
	// logs to stderr.
	Logf func(format string, args ...any)
}

func (c *Config) setDefaults() {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.RestartBudget <= 0 {
		c.RestartBudget = 8
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.BreakerOpenBase <= 0 {
		c.BreakerOpenBase = 10 * time.Second
	}
	if c.BreakerOpenMax <= 0 {
		c.BreakerOpenMax = 2 * time.Minute
	}
	if c.HealthyReset <= 0 {
		c.HealthyReset = 30 * time.Second
	}
	if c.Arena == nil {
		c.Arena = &Arena{}
	}
	if c.Logf == nil {
		c.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
}

// SourceState is a source's lifecycle position.
type SourceState int32

const (
	// StatePending: registered, Run not yet started.
	StatePending SourceState = iota
	// StateRunning: the source's Run is active.
	StateRunning
	// StateBackoff: between a failure and its restart.
	StateBackoff
	// StateDone: completed cleanly (finite source EOF, or cancelled).
	StateDone
	// StateFailed: abandoned — restart budget exhausted (finite
	// sources), permanent error, or strict abort.
	StateFailed
	// StateOpen: an infinite source's circuit breaker is open — the
	// source is left alone for a capped, doubling interval before a
	// half-open probe.
	StateOpen
	// StateHalfOpen: one probe run is in flight; success closes the
	// breaker, failure re-opens it.
	StateHalfOpen
)

func (s SourceState) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateRunning:
		return "running"
	case StateBackoff:
		return "backoff"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("SourceState(%d)", int32(s))
	}
}

// SourceOptions carries per-source ingest policy, set at registration.
type SourceOptions struct {
	// Tenant tags every segment this source emits with a tenant index
	// (tenant.Registry indexes; 0 means untagged — the default rule
	// set, or fall through to Config.Tagger). Use it when a source
	// carries exactly one tenant's traffic.
	Tenant uint32
	// RateBytesPerSec paces the source's payload bytes through a token
	// bucket (ratelimit.go); 0 means unpaced. Meant for capture replay
	// ('pcap:file.pcap?rate=100M').
	RateBytesPerSec int64
}

// sourceState is the supervisor's per-source record.
type sourceState struct {
	id   int
	src  Source
	desc Description
	opts SourceOptions
	rl   *rateLimiter // non-nil iff opts.RateBytesPerSec > 0
	ch   chan queuedSeg
	// br is the circuit breaker; nil for finite sources, which keep the
	// abandon-after-budget policy (probing a consumed file forever
	// would just hold Run open after the pipeline's work is done).
	br *guard.Breaker

	segments  atomic.Int64 // segments accepted by the sink
	bytes     atomic.Int64 // payload bytes of those segments
	skips     atomic.Int64 // non-TCP frames skipped
	malformed atomic.Int64 // parse failures counted (lenient mode)
	restarts  atomic.Int64
	state     atomic.Int32
	// Datagram delivery accounting, maintained by sources that can see
	// sequencing (udp:addr?seq) or kernel drops (SO_RXQ_OVFL): gaps are
	// datagrams the sender numbered but we never saw; reorders are
	// datagrams that arrived behind a higher number.
	gaps        atomic.Int64
	reorders    atomic.Int64
	kernelDrops atomic.Int64

	errMu   sync.Mutex
	lastErr string
}

func (st *sourceState) setErr(err error) {
	st.errMu.Lock()
	st.lastErr = err.Error()
	st.errMu.Unlock()
}

func (st *sourceState) lastError() string {
	st.errMu.Lock()
	defer st.errMu.Unlock()
	return st.lastErr
}

// queuedSeg rides a handoff channel: one decoded segment plus the lease
// on its payload buffer.
type queuedSeg struct {
	seg   pcap.Segment
	owner pcap.Owner
}

// Supervisor runs registered sources concurrently into one sink.
type Supervisor struct {
	cfg     Config
	sources []*sourceState
	names   map[string]int // dedup: name -> count

	started atomic.Bool
	cancel  context.CancelFunc

	fatalMu  sync.Mutex
	fatalErr error
}

// NewSupervisor creates a supervisor; register sources with Add, then
// call Run once.
func NewSupervisor(cfg Config) *Supervisor {
	if cfg.Sink == nil {
		panic("input: Config.Sink is required")
	}
	cfg.setDefaults()
	s := &Supervisor{cfg: cfg, names: make(map[string]int)}
	if reg := cfg.Metrics; reg != nil {
		a := cfg.Arena
		reg.CounterFunc("mfa_input_arena_leases_total",
			"Payload buffers leased from the input arena.",
			func() float64 { return float64(a.leases.Load()) })
		reg.CounterFunc("mfa_input_arena_releases_total",
			"Leased buffers returned to the input arena (by the engine after scan, or by sources on error paths).",
			func() float64 { return float64(a.releases.Load()) })
		reg.CounterFunc("mfa_input_arena_misses_total",
			"Arena leases served by a fresh allocation (pool miss or oversize).",
			func() float64 { return float64(a.misses.Load()) })
		reg.CounterFunc("mfa_input_arena_double_release_total",
			"Release called twice on one lease (a bug upstream, made harmless).",
			func() float64 { return float64(a.doubleReleases.Load()) })
	}
	return s
}

// Arena returns the buffer arena sources lease from.
func (s *Supervisor) Arena() *Arena { return s.cfg.Arena }

// Add registers a source with default options. It must be called before
// Run. Name collisions are resolved by suffixing an ordinal, so
// telemetry labels stay unique.
func (s *Supervisor) Add(src Source) { s.AddOptions(src, SourceOptions{}) }

// AddOptions registers a source with per-source ingest policy (tenant
// binding, replay rate limit).
func (s *Supervisor) AddOptions(src Source, opts SourceOptions) {
	if s.started.Load() {
		panic("input: Add after Run")
	}
	desc := src.Describe()
	if desc.Name == "" {
		desc.Name = desc.Kind
	}
	if n := s.names[desc.Name]; n > 0 {
		s.names[desc.Name] = n + 1
		desc.Name = fmt.Sprintf("%s#%d", desc.Name, n+1)
	} else {
		s.names[desc.Name] = 1
	}
	st := &sourceState{
		id:   len(s.sources),
		src:  src,
		desc: desc,
		opts: opts,
		ch:   make(chan queuedSeg, s.cfg.QueueDepth),
	}
	if opts.RateBytesPerSec > 0 {
		st.rl = newRateLimiter(opts.RateBytesPerSec)
	}
	if !desc.Finite {
		st.br = guard.NewBreaker(guard.BreakerConfig{
			FailureBudget: s.cfg.RestartBudget,
			OpenBase:      s.cfg.BreakerOpenBase,
			OpenMax:       s.cfg.BreakerOpenMax,
			HealthyAfter:  s.cfg.HealthyReset,
		})
	}
	s.sources = append(s.sources, st)
	if reg := s.cfg.Metrics; reg != nil {
		label := telemetry.L("source", desc.Name)
		reg.CounterFunc("mfa_input_segments_total",
			"TCP segments this source delivered to the engine.",
			func() float64 { return float64(st.segments.Load()) }, label)
		reg.CounterFunc("mfa_input_payload_bytes_total",
			"Payload bytes this source delivered to the engine.",
			func() float64 { return float64(st.bytes.Load()) }, label)
		reg.CounterFunc("mfa_input_skipped_frames_total",
			"Non-TCP frames this source skipped.",
			func() float64 { return float64(st.skips.Load()) }, label)
		reg.CounterFunc("mfa_input_malformed_total",
			"Malformed frames/records this source counted and skipped.",
			func() float64 { return float64(st.malformed.Load()) }, label)
		reg.CounterFunc("mfa_input_restarts_total",
			"Times this source was restarted after a transient failure.",
			func() float64 { return float64(st.restarts.Load()) }, label)
		reg.CounterFunc("mfa_input_gaps_total",
			"Sender-numbered datagrams this source never received (udp ?seq mode).",
			func() float64 { return float64(st.gaps.Load()) }, label)
		reg.CounterFunc("mfa_input_reorders_total",
			"Datagrams this source received behind a higher sequence number (udp ?seq mode).",
			func() float64 { return float64(st.reorders.Load()) }, label)
		reg.CounterFunc("mfa_input_kernel_drops_total",
			"Datagrams the kernel dropped on this source's socket buffer (SO_RXQ_OVFL; Linux only).",
			func() float64 { return float64(st.kernelDrops.Load()) }, label)
		if st.rl != nil {
			reg.GaugeFunc("mfa_input_rate_bytes_per_sec",
				"Configured replay rate limit for this source.",
				func() float64 { return float64(st.opts.RateBytesPerSec) }, label)
			reg.CounterFunc("mfa_input_rate_paused_seconds_total",
				"Cumulative time this source slept in its replay rate limiter.",
				func() float64 { return st.rl.paused().Seconds() }, label)
		}
		reg.GaugeFunc("mfa_input_queue_depth",
			"Segments waiting in this source's handoff queue right now.",
			func() float64 { return float64(len(st.ch)) }, label)
		reg.GaugeFunc("mfa_input_queue_capacity",
			"Handoff queue capacity of this source.",
			func() float64 { return float64(cap(st.ch)) }, label)
		reg.GaugeFunc("mfa_input_state",
			"Source lifecycle: 0 pending, 1 running, 2 backoff, 3 done, 4 failed, 5 open, 6 half-open.",
			func() float64 { return float64(st.state.Load()) }, label)
		if st.br != nil {
			reg.GaugeFunc("mfa_guard_breaker_state",
				"Circuit state of this source's breaker: 0 closed, 1 open, 2 half-open.",
				func() float64 { return float64(st.br.State()) }, label)
			reg.CounterFunc("mfa_guard_breaker_opens_total",
				"Times this source's breaker opened (failure budget spent).",
				func() float64 { return float64(st.br.Opens()) }, label)
			reg.CounterFunc("mfa_guard_breaker_probes_total",
				"Half-open probes attempted for this source.",
				func() float64 { return float64(st.br.Probes()) }, label)
		}
	}
}

// Run starts every source and blocks until they have all finished:
// finite sources complete on their own, infinite sources when ctx is
// cancelled. The returned error is nil for a clean stop (including ctx
// cancellation); a *StrictError for a strict-mode abort; or the sink's
// terminal error if the sink shut down underneath the pipeline. Run may
// be called once.
func (s *Supervisor) Run(ctx context.Context) error {
	if s.started.Swap(true) {
		return errors.New("input: Run called twice")
	}
	ctx, cancel := context.WithCancel(ctx)
	s.cancel = cancel
	defer cancel()

	var wg sync.WaitGroup
	for _, st := range s.sources {
		wg.Add(2)
		go func(st *sourceState) {
			defer wg.Done()
			s.pump(st)
		}(st)
		go func(st *sourceState) {
			defer wg.Done()
			defer close(st.ch)
			s.supervise(ctx, st)
		}(st)
	}
	wg.Wait()

	s.fatalMu.Lock()
	defer s.fatalMu.Unlock()
	return s.fatalErr
}

// fatal records the first pipeline-terminal error and cancels every
// source.
func (s *Supervisor) fatal(err error) {
	s.fatalMu.Lock()
	if s.fatalErr == nil {
		s.fatalErr = err
	}
	s.fatalMu.Unlock()
	s.cancel()
}

// pump drains one source's handoff channel into the sink. A sink error
// is terminal for the whole pipeline: the pump keeps draining (so the
// producer can finish and close the channel) but releases instead of
// delivering.
func (s *Supervisor) pump(st *sourceState) {
	dead := false
	for q := range st.ch {
		if dead {
			release(q.owner)
			continue
		}
		if err := s.cfg.Sink.HandleSegmentOwned(q.seg, q.owner); err != nil {
			dead = true
			s.fatal(fmt.Errorf("input: sink rejected segment from %s: %w", st.desc.Name, err))
			continue
		}
		st.segments.Add(1)
		st.bytes.Add(int64(len(q.seg.Payload)))
	}
}

// supervise runs one source through its restart policy. Finite sources
// keep the abandon-after-budget policy; infinite sources escalate to
// their circuit breaker (capped-interval half-open probing) instead of
// dying permanently. Either way, a run that lasted HealthyReset refills
// the budget, so transient early failures do not permanently eat it.
func (s *Supervisor) supervise(ctx context.Context, st *sourceState) {
	em := &Emitter{sup: s, st: st, ctx: ctx}
	backoff := s.cfg.BackoffBase
	budgetUsed := 0 // finite-source failures since the last healthy run
	for {
		if st.br != nil && st.br.State() == guard.BreakerHalfOpen {
			st.state.Store(int32(StateHalfOpen))
		} else {
			st.state.Store(int32(StateRunning))
		}
		started := time.Now()
		var healthTimer *time.Timer
		if st.br != nil {
			// If this run survives HealthyReset, refill the breaker's
			// budget mid-run (a later crash starts from a full budget)
			// and promote a half-open probe to plain running.
			healthTimer = time.AfterFunc(s.cfg.HealthyReset, func() {
				st.br.Healthy()
				st.state.CompareAndSwap(int32(StateHalfOpen), int32(StateRunning))
			})
		}
		err := runGuarded(ctx, st.src, em)
		ranFor := time.Since(started)
		if healthTimer != nil {
			healthTimer.Stop()
		}
		switch {
		case err == nil:
			if st.br != nil {
				st.br.Success()
			}
			st.state.Store(int32(StateDone))
			return
		case ctx.Err() != nil:
			// Cancelled mid-run: whatever the source returned, the stop
			// was requested. Keep a strict abort's failed state honest,
			// though — it may be the very cancellation cause.
			if se := (*StrictError)(nil); errors.As(err, &se) {
				st.state.Store(int32(StateFailed))
				st.setErr(err)
			} else {
				st.state.Store(int32(StateDone))
			}
			return
		default:
		}
		st.setErr(err)
		var se *StrictError
		if errors.As(err, &se) {
			st.state.Store(int32(StateFailed))
			s.fatal(se)
			return
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			st.state.Store(int32(StateFailed))
			s.cfg.Logf("input: source %s failed permanently: %v", st.desc.Name, err)
			return
		}
		st.restarts.Add(1)
		if st.br != nil {
			brState, wait := st.br.Failure(ranFor)
			if brState == guard.BreakerOpen {
				s.cfg.Logf("input: source %s opened its circuit breaker (%v), probing in %v",
					st.desc.Name, err, wait)
				st.state.Store(int32(StateOpen))
				select {
				case <-time.After(wait):
				case <-ctx.Done():
					st.state.Store(int32(StateDone))
					return
				}
				st.br.Probe()
				backoff = s.cfg.BackoffBase
				continue
			}
		} else {
			if ranFor >= s.cfg.HealthyReset {
				budgetUsed = 0
				backoff = s.cfg.BackoffBase
			}
			budgetUsed++
			if budgetUsed > s.cfg.RestartBudget {
				st.state.Store(int32(StateFailed))
				s.cfg.Logf("input: source %s exhausted its restart budget (%d): %v",
					st.desc.Name, s.cfg.RestartBudget, err)
				return
			}
		}
		s.cfg.Logf("input: source %s failed (%v), restarting in %v", st.desc.Name, err, backoff)
		st.state.Store(int32(StateBackoff))
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			st.state.Store(int32(StateDone))
			return
		}
		if backoff *= 2; backoff > s.cfg.BackoffMax {
			backoff = s.cfg.BackoffMax
		}
	}
}

// runGuarded invokes Run under a panic supervisor: a panicking source is
// a failing source, not a crashed daemon.
func runGuarded(ctx context.Context, src Source, em *Emitter) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("input: source panic: %v", r)
		}
	}()
	return src.Run(ctx, em)
}

// SourceStats is one source's accounting row, served by /statsz.
type SourceStats struct {
	Name          string
	Kind          string
	Detail        string
	State         string
	Segments      int64
	PayloadBytes  int64
	SkippedFrames int64
	Malformed     int64
	Restarts      int64
	QueueDepth    int
	QueueCap      int
	// Datagram delivery accounting; nonzero only for sources that can
	// observe it (udp ?seq mode, SO_RXQ_OVFL).
	Gaps        int64 `json:",omitempty"`
	Reorders    int64 `json:",omitempty"`
	KernelDrops int64 `json:",omitempty"`
	// Tenant is the per-source tenant binding (index); 0 when unbound.
	Tenant uint32 `json:",omitempty"`
	// RateBytesPerSec is the configured replay pace; 0 when unpaced.
	RateBytesPerSec int64 `json:",omitempty"`
	// Breaker is the circuit state ("closed"/"open"/"half-open") for
	// infinite sources; empty for finite sources, which have none.
	Breaker      string `json:",omitempty"`
	BreakerOpens int64  `json:",omitempty"`
	LastError    string `json:",omitempty"`
}

// Stats snapshots every source's accounting.
func (s *Supervisor) Stats() []SourceStats {
	out := make([]SourceStats, len(s.sources))
	for i, st := range s.sources {
		out[i] = SourceStats{
			Name:          st.desc.Name,
			Kind:          st.desc.Kind,
			Detail:        st.desc.Detail,
			State:         SourceState(st.state.Load()).String(),
			Segments:      st.segments.Load(),
			PayloadBytes:  st.bytes.Load(),
			SkippedFrames: st.skips.Load(),
			Malformed:     st.malformed.Load(),
			Restarts:      st.restarts.Load(),
			QueueDepth:    len(st.ch),
			QueueCap:      cap(st.ch),
			Gaps:          st.gaps.Load(),
			Reorders:      st.reorders.Load(),
			KernelDrops:   st.kernelDrops.Load(),
			Tenant:        st.opts.Tenant,
			LastError:     st.lastError(),
		}
		out[i].RateBytesPerSec = st.opts.RateBytesPerSec
		if st.br != nil {
			out[i].Breaker = st.br.State().String()
			out[i].BreakerOpens = st.br.Opens()
		}
	}
	return out
}

// OpenBreakers counts sources whose circuit breaker is not closed —
// open or probing half-open. The admin layer reports /healthz degraded
// while this is non-zero.
func (s *Supervisor) OpenBreakers() int {
	n := 0
	for _, st := range s.sources {
		if st.br != nil && st.br.State() != guard.BreakerClosed {
			n++
		}
	}
	return n
}

// Malformed totals the malformed count across sources — the number the
// old single-reader loop reported as its skip count.
func (s *Supervisor) Malformed() int64 {
	var n int64
	for _, st := range s.sources {
		n += st.malformed.Load()
	}
	return n
}

// release settles a lease that will not reach the sink.
func release(o pcap.Owner) {
	if o != nil {
		o.Release()
	}
}

// Emitter is the per-source handle the supervisor passes to Run: the
// leasing, decoding, accounting and policy surface of the pipeline.
// Emitter methods are safe for concurrent use by one source's internal
// goroutines (socket sources emit from per-connection goroutines).
type Emitter struct {
	sup *Supervisor
	st  *sourceState
	ctx context.Context
}

// Lease leases an n-byte buffer from the pipeline's arena. When a
// memory governor is configured it is the admission gate: Lease blocks
// while governed usage sits above the pause threshold, so the source
// stops pulling bytes off the wire until in-flight work lands. If the
// pipeline stops while paused, the lease proceeds anyway — the source's
// next Segment/Frame call observes the cancellation and returns.
func (em *Emitter) Lease(n int) *Buf {
	_ = em.sup.cfg.Governor.Admit(em.ctx)
	return em.sup.cfg.Arena.Lease(n)
}

// Segment hands one pre-decoded segment (socket and live sources
// synthesize their own flow keys) to the sink via the source's bounded
// handoff queue, transferring ownership of owner. It blocks while the
// queue is full — that is the per-source backpressure — and returns a
// non-nil error only when the pipeline is stopping; the source should
// return that error from Run.
//
// Ingest policy is applied here, once, for every source kind: the
// segment is tenant-tagged (per-source binding first, then the
// classifier callback) and paced through the source's replay rate
// limiter when one is configured.
func (em *Emitter) Segment(seg pcap.Segment, owner pcap.Owner) error {
	if seg.Key.Tenant == 0 {
		if t := em.st.opts.Tenant; t != 0 {
			seg.Key.Tenant = t
		} else if tag := em.sup.cfg.Tagger; tag != nil {
			seg.Key.Tenant = tag(seg.Key)
		}
	}
	if em.st.rl != nil && len(seg.Payload) > 0 {
		if err := em.st.rl.wait(em.ctx, len(seg.Payload)); err != nil {
			release(owner)
			return err
		}
	}
	select {
	case em.st.ch <- queuedSeg{seg: seg, owner: owner}:
		return nil
	case <-em.ctx.Done():
		release(owner)
		return em.ctx.Err()
	}
}

// Frame decodes one Ethernet frame and hands its segment to the sink,
// transferring ownership of owner on every path. Non-TCP frames are
// counted and skipped; malformed TCP frames go through the malformed
// policy (counted in lenient mode, pipeline abort in strict mode). The
// returned error is non-nil only when the pipeline is stopping.
func (em *Emitter) Frame(frame []byte, owner pcap.Owner) error {
	seg, err := pcap.DecodeTCP(frame)
	if err != nil {
		release(owner)
		if errors.Is(err, pcap.ErrNotTCP) {
			em.st.skips.Add(1)
			return nil
		}
		return em.Malformed(err)
	}
	return em.Segment(seg, owner)
}

// Malformed reports one unparseable frame or record. In lenient mode it
// is counted and nil is returned — the source skips and continues. In
// strict mode it returns the *StrictError the source must return from
// Run, aborting the pipeline with exit-code-2 semantics.
func (em *Emitter) Malformed(err error) error {
	em.st.malformed.Add(1)
	if !em.sup.cfg.Strict {
		return nil
	}
	return &StrictError{Source: em.st.desc.Name, Err: err}
}

// Strict reports whether the pipeline is in strict mode, for sources
// whose skip behavior differs structurally (a spool marking a file dead
// vs. aborting).
func (em *Emitter) Strict() bool { return em.sup.cfg.Strict }

// CountGaps credits sender-numbered datagrams that never arrived (udp
// ?seq mode). A gap that later turns out to be a reorder is also
// counted by CountReorders, so gaps-reorders approximates true loss
// while both counters stay monotonic.
func (em *Emitter) CountGaps(n int64) { em.st.gaps.Add(n) }

// CountReorders credits datagrams that arrived behind a higher sequence
// number.
func (em *Emitter) CountReorders(n int64) { em.st.reorders.Add(n) }

// CountKernelDrops credits datagrams the kernel reports dropped on the
// source's socket buffer (SO_RXQ_OVFL).
func (em *Emitter) CountKernelDrops(n int64) { em.st.kernelDrops.Add(n) }
