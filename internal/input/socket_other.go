//go:build !linux

// Non-Linux stubs: kernel-drop accounting is a SO_RXQ_OVFL feature;
// elsewhere the UDP listener reads normally and the drop counter stays
// zero.

package input

import "net"

func enableKernelDropCount(net.PacketConn) bool { return false }

func readUDP(pc net.PacketConn, buf, _ []byte) (n int, addr net.Addr, drops uint32, haveDrops bool, err error) {
	n, addr, err = pc.ReadFrom(buf)
	return
}
