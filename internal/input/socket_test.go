package input

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"matchfilter/internal/flow"
	"matchfilter/internal/pcap"
)

// startSocketSupervisor runs one socket source against a collect sink
// and returns the sink plus a shutdown func.
func startSocketSupervisor(t *testing.T, src Source) (*collectSink, *Supervisor, func()) {
	t.Helper()
	sink := newCollectSink()
	sup := NewSupervisor(Config{Sink: sink, QueueDepth: 64})
	sup.Add(src)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- sup.Run(ctx) }()
	shutdown := func() {
		cancel()
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	return sink, sup, shutdown
}

func TestTCPListenerScansConnections(t *testing.T) {
	src := NewTCPListener("127.0.0.1:0")
	sink, _, shutdown := startSocketSupervisor(t, src)
	waitFor(t, 5*time.Second, "listener bound", func() bool { return src.Bound() != nil })

	payloads := [][]byte{[]byte("alpha payload"), bytes.Repeat([]byte("b"), 40000)}
	for _, p := range payloads {
		conn, err := net.Dial("tcp", src.Bound().String())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(p); err != nil {
			t.Fatal(err)
		}
		conn.Close()
	}
	var want int64
	for _, p := range payloads {
		want += int64(len(p))
	}
	waitFor(t, 10*time.Second, "all connection bytes delivered", func() bool {
		_, b := sink.counts()
		return b == want
	})
	shutdown()

	// Each connection surfaced as its own flow carrying exactly its
	// bytes, in order.
	sink.mu.Lock()
	flows := len(sink.payloads)
	sink.mu.Unlock()
	if flows != len(payloads) {
		t.Fatalf("got %d flows, want %d", flows, len(payloads))
	}
}

func TestUDPListenerScansPeers(t *testing.T) {
	src := NewUDPListener("127.0.0.1:0")
	sink, _, shutdown := startSocketSupervisor(t, src)
	waitFor(t, 5*time.Second, "socket bound", func() bool { return src.Bound() != nil })

	conn, err := net.Dial("udp", src.Bound().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for _, dgram := range []string{"first datagram ", "second datagram"} {
		if _, err := conn.Write([]byte(dgram)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "datagrams delivered", func() bool {
		_, b := sink.counts()
		return b == int64(len("first datagram second datagram"))
	})
	shutdown()

	// One peer socket → one flow, datagrams concatenated in order.
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.payloads) != 1 {
		t.Fatalf("got %d flows, want 1", len(sink.payloads))
	}
	for _, stream := range sink.payloads {
		if string(stream) != "first datagram second datagram" {
			t.Fatalf("reassembled stream: %q", stream)
		}
	}
}

// recordRunner concatenates everything the assembler feeds it.
type recordRunner struct{ buf *[]byte }

func (r *recordRunner) Feed(data []byte, onMatch func(id int32, pos int64)) {
	*r.buf = append(*r.buf, data...)
}
func (r *recordRunner) Reset() {}

// FuzzSocketFraming drives the framer the way a socket source does —
// SYN, arbitrary read-sized data segments, FIN — through real flow
// reassembly, asserting the flow's reassembled byte stream equals the
// wire bytes for any payload and any chunking.
func FuzzSocketFraming(f *testing.F) {
	f.Add([]byte("hello framing world"), 3)
	f.Add([]byte(""), 1)
	f.Add(bytes.Repeat([]byte("xyz"), 10000), 1460)
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, 1)
	f.Fuzz(func(t *testing.T, payload []byte, chunk int) {
		if chunk <= 0 {
			chunk = 1
		}
		if chunk > 1<<16 {
			chunk %= 1 << 16
			chunk++
		}
		if len(payload) > 1<<20 {
			payload = payload[:1<<20]
		}
		key := synthFlowKey(uint32(0xfff), 1, nil, 80)
		fr := newFramer(key)
		var got []byte
		asm := flow.NewAssembler(flow.Config{},
			func() flow.Runner { return &recordRunner{buf: &got} },
			func(flow.Match) {})
		asm.HandleSegment(fr.syn())
		for off := 0; off < len(payload); off += chunk {
			end := off + chunk
			if end > len(payload) {
				end = len(payload)
			}
			asm.HandleSegment(fr.data(payload[off:end]))
		}
		asm.HandleSegment(fr.fin())
		if !bytes.Equal(got, payload) {
			t.Fatalf("reassembled %d bytes, want %d; framer seq drifted from stream offset",
				len(got), len(payload))
		}
	})
}

// TestSynthFlowKeysDisjointAcrossSources: two sources' synthesized keys
// never collide, even for the same connection ordinals.
func TestSynthFlowKeysDisjointAcrossSources(t *testing.T) {
	a, b := sourceIDs.Add(1), sourceIDs.Add(1)
	seen := make(map[pcap.FlowKey]bool)
	for _, src := range []uint32{a, b} {
		for conn := uint32(1); conn <= 100; conn++ {
			key := synthFlowKey(src, conn, nil, 9)
			if seen[key] {
				t.Fatalf("duplicate key %+v", key)
			}
			seen[key] = true
		}
	}
}
