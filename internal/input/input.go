// Package input is the pluggable ingestion pipeline in front of the
// sharded engine: a heka-style plugin runner where N independent
// traffic Sources — capture files, directory spools, socket listeners,
// live interfaces — run concurrently under one Supervisor and fan into
// the engine's dispatch path.
//
// The shape (DESIGN.md §15):
//
//   - A Source is one traffic producer. Its Run method pumps frames or
//     pre-decoded segments into the Emitter the supervisor hands it and
//     returns when the source is exhausted (finite sources: a capture
//     file) or its context is cancelled (live sources: sockets, spools,
//     interfaces).
//   - The Supervisor runs every source on its own goroutine with a
//     bounded handoff channel into the sink, so one slow or bursty
//     source backpressures against its own queue without starving the
//     others. A source that fails is restarted with exponential backoff
//     under a restart budget (the crash-budget idiom from the shard
//     supervisor); a source that keeps failing is abandoned — counted
//     and reported — while the rest keep serving.
//   - Malformed-input policy is centralized here, not per source: every
//     parse failure reports through Emitter.Malformed, which counts it
//     in lenient mode and converts it into a *StrictError in strict
//     mode, aborting the whole pipeline with the exit-code-2 semantics
//     cmd/mfaserve documents.
//   - Payload buffers are leased from a sync.Pool-backed Arena and
//     returned by the engine after the scan (pcap.Owner), so multi-
//     source fan-in does not multiply steady-state allocations: the
//     pipeline's hot path recycles a small working set of buffers.
//
// Every source gets per-source telemetry (segments, bytes, skips,
// malformed, restarts, queue depth) on the shared registry and a row in
// the supervisor's Stats, which cmd/mfaserve serves under /statsz.
package input

import (
	"context"
	"fmt"

	"matchfilter/internal/pcap"
)

// Source is one traffic producer managed by a Supervisor.
//
// Run pumps traffic into em until ctx is done or the source is
// exhausted. A nil return means the source completed cleanly (a finite
// capture reached EOF, or a live source observed ctx cancellation); an
// error return invokes the supervisor's restart policy — transient
// errors restart the source with backoff, errors wrapped by Permanent
// and *StrictError do not. Run is called from a dedicated goroutine and
// may block; it must return promptly once ctx is cancelled. On restart,
// Run is called again from scratch on the same Source value.
type Source interface {
	// Describe returns static metadata: the telemetry label, the source
	// kind, and whether the source is finite (completes on its own).
	Describe() Description
	Run(ctx context.Context, em *Emitter) error
}

// Description is a source's static metadata.
type Description struct {
	// Name uniquely identifies this source instance; it becomes the
	// "source" telemetry label and the Stats row key. The supervisor
	// de-duplicates collisions by suffixing an ordinal.
	Name string
	// Kind is the plugin family: "pcap", "spool", "tcp", "udp",
	// "afpacket", "mem", ...
	Kind string
	// Detail is a human hint (path, address, interface).
	Detail string
	// Finite marks sources that complete on their own. The supervisor's
	// Run returns once every finite source is done when no infinite
	// sources are registered; infinite sources run until ctx cancels.
	Finite bool
}

// Sink is where the pipeline delivers decoded segments — in production
// internal/engine's *Engine. The sink takes ownership of owner on every
// call and must release it exactly once, scanned or dropped. A non-nil
// error is terminal: the sink has shut down and the pipeline stops.
type Sink interface {
	HandleSegmentOwned(seg pcap.Segment, owner pcap.Owner) error
}

// StrictError is the typed abort of strict mode: the first malformed
// frame or record anywhere in the pipeline, attributed to its source.
// cmd/mfaserve maps it to exit code 2.
type StrictError struct {
	Source string
	Err    error
}

func (e *StrictError) Error() string {
	return fmt.Sprintf("input: strict: source %s: %v", e.Source, e.Err)
}

func (e *StrictError) Unwrap() error { return e.Err }

// permanentError marks a source failure that restarting cannot heal (a
// damaged capture file, an unsupported platform).
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so the supervisor abandons the source immediately
// instead of restarting it with backoff.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}
