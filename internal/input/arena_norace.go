//go:build !race

package input

// raceEnabled is false in ordinary builds: double releases are counted
// and made harmless, not fatal. See arena_race.go and Arena.SetDebug.
const raceEnabled = false
