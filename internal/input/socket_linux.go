//go:build linux

// Linux kernel-drop visibility for UDP sources: SO_RXQ_OVFL attaches
// the socket's cumulative receive-queue drop counter as ancillary data
// to every datagram, so the listener can account packets the kernel
// shed before userspace ever saw them — the drops a pure read loop is
// structurally blind to.

package input

import (
	"encoding/binary"
	"net"
	"syscall"
)

// soRXQOvfl is SO_RXQ_OVFL; spelled numerically because older syscall
// packages lack the constant.
const soRXQOvfl = 40

// enableKernelDropCount turns SO_RXQ_OVFL on; false when the socket
// type or kernel does not support it (the caller just loses the drop
// counter, never datagrams).
func enableKernelDropCount(pc net.PacketConn) bool {
	uc, ok := pc.(*net.UDPConn)
	if !ok {
		return false
	}
	sc, err := uc.SyscallConn()
	if err != nil {
		return false
	}
	enabled := false
	_ = sc.Control(func(fd uintptr) {
		enabled = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soRXQOvfl, 1) == nil
	})
	return enabled
}

// readUDP reads one datagram and, when SO_RXQ_OVFL is active, the
// kernel's cumulative drop counter for the socket (haveDrops reports
// whether drops is meaningful for this datagram).
func readUDP(pc net.PacketConn, buf, oob []byte) (n int, addr net.Addr, drops uint32, haveDrops bool, err error) {
	uc, ok := pc.(*net.UDPConn)
	if !ok || len(oob) == 0 {
		n, addr, err = pc.ReadFrom(buf)
		return
	}
	var oobn int
	var uaddr *net.UDPAddr
	n, oobn, _, uaddr, err = uc.ReadMsgUDP(buf, oob)
	if uaddr != nil {
		addr = uaddr
	}
	if err != nil || oobn == 0 {
		return
	}
	msgs, perr := syscall.ParseSocketControlMessage(oob[:oobn])
	if perr != nil {
		return
	}
	for _, m := range msgs {
		if m.Header.Level == syscall.SOL_SOCKET && m.Header.Type == soRXQOvfl && len(m.Data) >= 4 {
			drops = binary.NativeEndian.Uint32(m.Data)
			haveDrops = true
			return
		}
	}
	return
}
