package input

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestSpoolTailsAndRotates walks a spool directory through the life of a
// rotating capture daemon: initial file, append, rename rotation with a
// fresh file, truncate-in-place. Every phase's bytes must be delivered
// exactly once.
func TestSpoolTailsAndRotates(t *testing.T) {
	dir := t.TempDir()
	live := filepath.Join(dir, "live.pcap")

	capA := synthCapture(t, 2, 3000, nil, 1)
	capB := synthCapture(t, 2, 3000, nil, 2) // appended as header-stripped records
	capC := synthCapture(t, 2, 3000, nil, 3) // fresh file after rename rotation
	capD := synthCapture(t, 1, 1000, nil, 4) // small: truncate-in-place
	framesA, bytesA := countCapture(t, capA)
	framesB, bytesB := countCapture(t, capB)
	framesC, bytesC := countCapture(t, capC)
	framesD, bytesD := countCapture(t, capD)

	sink := newCollectSink()
	sup := NewSupervisor(Config{Sink: sink, QueueDepth: 64})
	sup.Add(&Spool{Dir: dir, Poll: 5 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- sup.Run(ctx) }()

	atLeast := func(wantSegs, wantBytes int64, phase string) {
		t.Helper()
		waitFor(t, 10*time.Second, phase, func() bool {
			s, b := sink.counts()
			return s >= wantSegs && b >= wantBytes
		})
		if s, b := sink.counts(); s != wantSegs || b != wantBytes {
			t.Fatalf("%s: got %d segs / %d bytes, want %d / %d", phase, s, b, wantSegs, wantBytes)
		}
	}

	// Phase 1: a complete capture appears.
	if err := os.WriteFile(live, capA, 0o644); err != nil {
		t.Fatal(err)
	}
	atLeast(framesA, bytesA, "initial file")

	// Phase 2: records appended to the live file (no global header).
	f, err := os.OpenFile(live, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(capB[24:]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	atLeast(framesA+framesB, bytesA+bytesB, "appended records")

	// Phase 3: rename rotation — the old file moves out of the pattern,
	// a fresh capture takes its name.
	if err := os.Rename(live, live+".1"); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(live, capC, 0o644); err != nil {
		t.Fatal(err)
	}
	atLeast(framesA+framesB+framesC, bytesA+bytesB+bytesC, "rename rotation")

	// Phase 4: truncate-in-place — a smaller capture overwrites the file.
	if err := os.WriteFile(live, capD, 0o644); err != nil {
		t.Fatal(err)
	}
	atLeast(framesA+framesB+framesC+framesD, bytesA+bytesB+bytesC+bytesD, "truncate rotation")

	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestSpoolDeadFileSkipped: a file with a bad magic is counted malformed
// once and then ignored, without killing the source.
func TestSpoolDeadFileSkipped(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "junk.pcap"),
		make([]byte, 100), 0o644); err != nil {
		t.Fatal(err)
	}
	capA := synthCapture(t, 1, 2000, nil, 9)
	framesA, bytesA := countCapture(t, capA)

	sink := newCollectSink()
	sup := NewSupervisor(Config{Sink: sink, QueueDepth: 16})
	sup.Add(&Spool{Dir: dir, Poll: 5 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- sup.Run(ctx) }()

	if err := os.WriteFile(filepath.Join(dir, "good.pcap"), capA, 0o644); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "good file scanned past dead one", func() bool {
		s, b := sink.counts()
		return s == framesA && b == bytesA
	})
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if rows := sup.Stats(); rows[0].Malformed != 1 {
		t.Fatalf("dead file should count malformed once: %+v", rows[0])
	}
}
