// Package hfa implements a History-based Finite Automaton baseline in the
// style of HFA [Kumar et al. 2007] as refined by HASIC [Liu et al. 2013]:
// a deterministic automaton whose transitions test and modify a small
// history register as they fire.
//
// Substitution notes (see DESIGN.md): HASIC itself is not public. This
// baseline factors only plain dot-star progress into history bits — the
// construct the original HFA paper targets — so almost-dot-star patterns
// keep their states, reproducing HFA's two reported properties relative
// to the MFA: a considerably larger memory image (every transition is a
// 16-byte conditional cell rather than a 4-byte target, and the automaton
// retains more states) and slower per-byte processing (each step loads a
// 4× larger cell and evaluates its condition/action inline).
package hfa

import (
	"fmt"
	"time"

	"matchfilter/internal/dfa"
	"matchfilter/internal/filter"
	"matchfilter/internal/nfa"
	"matchfilter/internal/regexparse"
	"matchfilter/internal/splitter"
)

// Rule is one input regex and the id reported when it matches.
type Rule struct {
	Pattern *regexparse.Pattern
	ID      int32
}

// Cell is one conditional transition: the next state plus the history
// operation performed on entering it. Kind discriminates the fast path
// (kindPlain: no memory interaction at all) from inline single actions
// and the rare multi-action overflow. The 16-byte layout is the memory
// image unit reported by Figure 2.
type Cell struct {
	Next   uint32
	Kind   uint8
	_      uint8
	Cond   int16 // history bit tested, filter.NoBit if unconditional
	Set    int16
	Clear  int16
	Report int32 // rule id to report, or overflow index for kindMulti
}

// Cell kinds.
const (
	kindPlain uint8 = iota
	kindAction
	kindMulti
)

// Options configures construction.
type Options struct {
	// MaxStates caps subset construction; 0 means dfa.DefaultMaxStates.
	MaxStates int
}

// HFA is the compiled automaton.
type HFA struct {
	numStates int
	start     uint32
	cells     []Cell
	overflow  [][]filter.Action
	prog      *filter.Program
	stats     BuildStats
}

// BuildStats records construction results.
type BuildStats struct {
	NumStates   int
	MemBits     int
	BuildTime   time.Duration
	SplitStats  splitter.Stats
	NFAStates   int
	OverflowLen int
}

// Compile builds the HFA for a rule set.
func Compile(rules []Rule, opts Options) (*HFA, error) {
	start := time.Now()

	srules := make([]splitter.Rule, len(rules))
	for i, r := range rules {
		srules[i] = splitter.Rule{Pattern: r.Pattern, RuleID: r.ID}
	}
	// History bits track dot-star progress only; almost-dot-star gaps
	// remain in the automaton, as in the original HFA design.
	res, err := splitter.Split(srules, splitter.Options{DisableAlmostDotStar: true})
	if err != nil {
		return nil, fmt.Errorf("hfa: %w", err)
	}

	nfaRules := make([]nfa.Rule, len(res.Fragments))
	for i, f := range res.Fragments {
		nfaRules[i] = nfa.Rule{Pattern: f.Pattern, MatchID: int(f.InternalID)}
	}
	n, err := nfa.Build(nfaRules)
	if err != nil {
		return nil, fmt.Errorf("hfa: %w", err)
	}
	// The HFA repacks the flat 256-wide table into its 8-byte history
	// cells below; request that layout directly rather than expanding a
	// classed table back out.
	d, err := dfa.FromNFA(n, dfa.Options{MaxStates: opts.MaxStates, Layout: dfa.LayoutFlat})
	if err != nil {
		return nil, fmt.Errorf("hfa: %w", err)
	}

	h := repack(d, res)
	h.stats.BuildTime = time.Since(start)
	h.stats.SplitStats = res.Stats
	h.stats.NFAStates = n.NumStates()
	return h, nil
}

// repack converts the flat DFA into conditional-cell form: the filter
// action of each accepting state is folded into every transition entering
// it, so history tests and updates happen during the transition, the
// defining behaviour of the HFA processing model.
func repack(d *dfa.DFA, res *splitter.Result) *HFA {
	prog := res.Program()
	numStates := d.NumStates()

	// Per-state entry behaviour.
	type entry struct {
		kind    uint8
		action  filter.Action
		actions []filter.Action
	}
	entries := make([]entry, numStates)
	var overflow [][]filter.Action
	for s := uint32(0); s < uint32(numStates); s++ {
		ids := d.Matches(s)
		switch len(ids) {
		case 0:
			entries[s] = entry{kind: kindPlain}
		case 1:
			entries[s] = entry{kind: kindAction, action: prog.Action(ids[0])}
		default:
			acts := make([]filter.Action, len(ids))
			for i, id := range ids {
				acts[i] = prog.Action(id)
			}
			entries[s] = entry{kind: kindMulti, actions: acts}
			overflow = append(overflow, acts)
		}
	}

	trans := d.TransitionTable()
	cells := make([]Cell, len(trans))
	overflowIdx := make(map[uint32]int32, len(overflow))
	nextOverflow := int32(0)
	for i, next := range trans {
		e := entries[next]
		cell := Cell{Next: next, Kind: e.kind, Cond: filter.NoBit, Set: filter.NoBit, Clear: filter.NoBit}
		switch e.kind {
		case kindAction:
			cell.Cond = e.action.Test
			cell.Set = e.action.Set
			cell.Clear = e.action.Clear
			cell.Report = e.action.Report
		case kindMulti:
			idx, ok := overflowIdx[next]
			if !ok {
				idx = nextOverflow
				nextOverflow++
				overflowIdx[next] = idx
			}
			cell.Report = idx
		}
		cells[i] = cell
	}
	// Rebuild overflow in index order.
	ordered := make([][]filter.Action, nextOverflow)
	for s, idx := range overflowIdx {
		ordered[idx] = entries[s].actions
	}

	return &HFA{
		numStates: numStates,
		start:     d.Start(),
		cells:     cells,
		overflow:  ordered,
		prog:      prog,
		stats: BuildStats{
			NumStates:   numStates,
			MemBits:     res.MemBits,
			OverflowLen: len(ordered),
		},
	}
}

// Stats returns construction statistics.
func (h *HFA) Stats() BuildStats { return h.stats }

// NumStates returns the number of automaton states.
func (h *HFA) NumStates() int { return h.numStates }

// MemoryImageBytes returns the static image: the conditional-cell table
// (16 bytes per state per byte value) plus overflow action lists.
func (h *HFA) MemoryImageBytes() int {
	total := len(h.cells) * 16
	total += len(h.overflow) * 8
	for _, acts := range h.overflow {
		total += len(acts) * 12
	}
	return total
}

// MatchFunc receives a confirmed match.
type MatchFunc = func(ruleID int32, pos int64)

// Runner is one flow's context: automaton state plus history register.
type Runner struct {
	h   *HFA
	st  uint32
	mem filter.Memory
	pos int64
}

// NewRunner returns a runner at the start of a fresh flow.
func (h *HFA) NewRunner() *Runner {
	return &Runner{h: h, st: h.start, mem: h.prog.NewMemory()}
}

// Reset rewinds the runner for a new flow.
func (r *Runner) Reset() {
	r.st = r.h.start
	r.mem.Reset()
	r.pos = 0
}

// Pos returns the number of bytes consumed.
func (r *Runner) Pos() int64 { return r.pos }

// Feed advances the flow, evaluating each transition's condition and
// history operation inline.
func (r *Runner) Feed(data []byte, onMatch MatchFunc) {
	h := r.h
	cells := h.cells
	mem := r.mem
	st := r.st
	pos := r.pos
	for i := 0; i < len(data); i++ {
		cell := cells[int(st)<<8|int(data[i])]
		st = cell.Next
		if cell.Kind != kindPlain {
			if cell.Kind == kindAction {
				if cell.Cond == filter.NoBit || mem.Bit(cell.Cond) {
					if cell.Set != filter.NoBit {
						mem[cell.Set>>6] |= 1 << (cell.Set & 63)
					}
					if cell.Clear != filter.NoBit {
						mem[cell.Clear>>6] &^= 1 << (cell.Clear & 63)
					}
					if cell.Report != filter.NoReport && onMatch != nil {
						onMatch(cell.Report, pos)
					}
				}
			} else {
				for _, a := range h.overflow[cell.Report] {
					if a.Test != filter.NoBit && !mem.Bit(a.Test) {
						continue
					}
					if a.Set != filter.NoBit {
						mem[a.Set>>6] |= 1 << (a.Set & 63)
					}
					if a.Clear != filter.NoBit {
						mem[a.Clear>>6] &^= 1 << (a.Clear & 63)
					}
					if a.Report != filter.NoReport && onMatch != nil {
						onMatch(a.Report, pos)
					}
				}
			}
		}
		pos++
	}
	r.st = st
	r.pos = pos
}

// FeedCount advances the flow and returns the number of confirmed
// matches, the benchmark loop.
func (r *Runner) FeedCount(data []byte) int64 {
	var count int64
	r.Feed(data, func(int32, int64) { count++ })
	return count
}

// MatchEvent records one confirmed match.
type MatchEvent struct {
	RuleID int32
	Pos    int64
}

// Run scans data as one fresh flow.
func (h *HFA) Run(data []byte) []MatchEvent {
	var out []MatchEvent
	r := h.NewRunner()
	r.Feed(data, func(id int32, pos int64) {
		out = append(out, MatchEvent{RuleID: id, Pos: pos})
	})
	return out
}
