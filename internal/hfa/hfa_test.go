package hfa

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"matchfilter/internal/dfa"
	"matchfilter/internal/nfa"
	"matchfilter/internal/regexparse"
)

func mustRules(t *testing.T, sources ...string) []Rule {
	t.Helper()
	rules := make([]Rule, len(sources))
	for i, src := range sources {
		p, err := regexparse.ParsePCRE(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		rules[i] = Rule{Pattern: p, ID: int32(i + 1)}
	}
	return rules
}

func groundTruth(t *testing.T, rules []Rule) *dfa.Engine {
	t.Helper()
	nfaRules := make([]nfa.Rule, len(rules))
	for i, r := range rules {
		nfaRules[i] = nfa.Rule{Pattern: r.Pattern, MatchID: int(r.ID)}
	}
	n, err := nfa.Build(nfaRules)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dfa.FromNFA(n, dfa.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return dfa.NewEngine(d)
}

type event struct {
	id  int32
	pos int64
}

func sorted(evs []event) []event {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].pos != evs[j].pos {
			return evs[i].pos < evs[j].pos
		}
		return evs[i].id < evs[j].id
	})
	return evs
}

func assertEquivalent(t *testing.T, sources []string, inputs [][]byte) {
	t.Helper()
	rules := mustRules(t, sources...)
	h, err := Compile(rules, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gt := groundTruth(t, rules)
	for _, input := range inputs {
		var got, want []event
		for _, ev := range h.Run(input) {
			got = append(got, event{ev.RuleID, ev.Pos})
		}
		for _, ev := range gt.Run(input) {
			want = append(want, event{ev.ID, ev.Pos})
		}
		got, want = sorted(got), sorted(want)
		if len(got) != len(want) {
			t.Fatalf("rules %v input %q:\nHFA   %v\ntruth %v", sources, input, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("rules %v input %q:\nHFA   %v\ntruth %v", sources, input, got, want)
			}
		}
	}
}

func TestEquivalenceFixed(t *testing.T) {
	assertEquivalent(t,
		[]string{"vi.*emacs", "bsd.*gnu", "abc.*mm?o.*xyz"},
		[][]byte{
			[]byte("vi.emacs.gnu.bsd.gnu.abc.mo.xyz"),
			[]byte("emacs vi"),
			[]byte("vi emacs vi emacs"),
			[]byte(strings.Repeat("bsd gnu ", 10)),
		})
}

func TestEquivalenceAlmostDotStarKeptWhole(t *testing.T) {
	// HFA does not decompose [^X]* gaps; correctness must hold anyway.
	assertEquivalent(t,
		[]string{`foo[^\n]*bar`, "alpha.*omega"},
		[][]byte{
			[]byte("foo bar"),
			[]byte("foo\nbar"),
			[]byte("alpha foo omega bar"),
			[]byte("foo foo\nbar bar"),
		})
}

func TestEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	words := []string{"ab", "cde", "fgh", "xyz", "qq"}
	gaps := []string{".*", "[^\\n]*"}
	for trial := 0; trial < 25; trial++ {
		var sources []string
		for ri := 0; ri < 1+rng.Intn(3); ri++ {
			var sb strings.Builder
			for si := 0; si < 1+rng.Intn(3); si++ {
				if si > 0 {
					sb.WriteString(gaps[rng.Intn(len(gaps))])
				}
				sb.WriteString(words[rng.Intn(len(words))])
			}
			sources = append(sources, sb.String())
		}
		var inputs [][]byte
		for ii := 0; ii < 4; ii++ {
			var sb strings.Builder
			for sb.Len() < 10+rng.Intn(80) {
				switch rng.Intn(4) {
				case 0:
					sb.WriteString(words[rng.Intn(len(words))])
				case 1:
					sb.WriteByte('\n')
				default:
					sb.WriteByte("abcdefghqxyz "[rng.Intn(13)])
				}
			}
			inputs = append(inputs, []byte(sb.String()))
		}
		assertEquivalent(t, sources, inputs)
	}
}

func TestImageLargerThanDFAEquivalent(t *testing.T) {
	// The HFA cell table is 4x a flat DFA table of the same state count.
	rules := mustRules(t, "alpha.*omega", "foo.*bar")
	h, err := Compile(rules, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if h.MemoryImageBytes() < h.NumStates()*256*16 {
		t.Errorf("image %d below cell-table floor", h.MemoryImageBytes())
	}
}

func TestStreamingRunner(t *testing.T) {
	rules := mustRules(t, "needle.*haystack")
	h, err := Compile(rules, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := h.NewRunner()
	var got []event
	r.Feed([]byte("need"), func(id int32, pos int64) { got = append(got, event{id, pos}) })
	r.Feed([]byte("le hays"), func(id int32, pos int64) { got = append(got, event{id, pos}) })
	r.Feed([]byte("tack"), func(id int32, pos int64) { got = append(got, event{id, pos}) })
	if len(got) != 1 || got[0].pos != 14 {
		t.Fatalf("streaming: %v", got)
	}
	if r.Pos() != 15 {
		t.Errorf("Pos = %d", r.Pos())
	}
	r.Reset()
	if c := r.FeedCount([]byte("needle haystack")); c != 1 {
		t.Errorf("FeedCount = %d", c)
	}
}

func TestMultiMatchOverflowCells(t *testing.T) {
	// Rules engineered so one state reports several ids at once.
	assertEquivalent(t,
		[]string{"abc", "bc", "c"},
		[][]byte{[]byte("abc"), []byte("xbc"), []byte("ccc")})
	rules := mustRules(t, "abc", "bc", "c")
	h, err := Compile(rules, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if h.Stats().OverflowLen == 0 {
		t.Error("expected overflow cells for coinciding matches")
	}
}
