// Fault-injection tests: every recovery path the engine claims —
// quarantine, crash budget, degradation tiers, deadline shutdown — is
// forced here with internal/faultinject rather than trusted.
package engine

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"matchfilter/internal/faultinject"
	"matchfilter/internal/flow"
	"matchfilter/internal/pcap"
	"matchfilter/internal/trace"
)

// poisonedCapture builds an interleaved capture where exactly one flow
// (index poisonIdx) carries the poison token, and returns the capture
// plus that flow's key (following pcap.Synthesize's addressing scheme).
func poisonedCapture(t *testing.T, nFlows int, words []string, token string, poisonIdx int) ([]byte, pcap.FlowKey) {
	t.Helper()
	payloads := make([][]byte, nFlows)
	for i := range payloads {
		payloads[i] = trace.TextLike(4<<10, int64(500+i*13), words, 0.02)
	}
	// Plant the token mid-payload so the poisoned flow has delivered some
	// clean segments before the fault fires.
	mid := len(payloads[poisonIdx]) / 2
	copy(payloads[poisonIdx][mid:], token)
	var buf bytes.Buffer
	if err := pcap.Synthesize(&buf, payloads, 512, 0.05, 99); err != nil {
		t.Fatal(err)
	}
	key := pcap.FlowKey{
		SrcIP: 0x0a000000 | uint32(poisonIdx+1), DstIP: 0xc0a80101,
		SrcPort: uint16(20000 + poisonIdx), DstPort: 80,
	}
	return buf.Bytes(), key
}

// TestPanicPoisonsOneFlow is the acceptance scenario: a forced matcher
// panic poisons exactly one flow, and every other flow's match set stays
// byte-identical to the sequential scanner's.
func TestPanicPoisonsOneFlow(t *testing.T) {
	m := buildMFA(t, "attack.*payload", "evil[^\n]*string", "xmrig")
	words := []string{"attack", "payload", "evil", "string", "xmrig"}
	const token = "\x00POISON\x00"
	capture, poisonKey := poisonedCapture(t, 10, words, token, 3)

	// Ground truth: sequential scan with clean runners.
	var seq []Match
	_, err := flow.ScanPcap(bytes.NewReader(capture), flow.Config{},
		func() flow.Runner { return m.NewRunner() },
		func(mt flow.Match) { seq = append(seq, mt) })
	if err != nil {
		t.Fatal(err)
	}
	want := flowMatches(seq)
	if len(want) < 2 {
		t.Fatal("need matches on multiple flows for a meaningful test")
	}

	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			var mu sync.Mutex
			var got []Match
			st, err := ScanPcap(bytes.NewReader(capture), Config{Shards: shards},
				func() flow.Runner { return faultinject.PanicOn([]byte(token), m.NewRunner()) },
				func(mt Match) {
					mu.Lock()
					got = append(got, mt)
					mu.Unlock()
				})
			if err != nil {
				t.Fatal(err)
			}
			if st.PoisonedFlows != 1 {
				t.Fatalf("PoisonedFlows = %d, want 1 (stats %+v)", st.PoisonedFlows, st)
			}
			if st.ShardPanics != 1 {
				t.Errorf("ShardPanics = %d, want 1", st.ShardPanics)
			}
			if st.UnhealthyShards != 0 {
				t.Errorf("one panic must not condemn a shard: %d unhealthy", st.UnhealthyShards)
			}
			if st.PoisonedDrops == 0 {
				t.Errorf("the poisoned flow's later segments should be drop-counted")
			}
			have := flowMatches(got)
			for k, w := range want {
				if k == poisonKey {
					continue
				}
				h := have[k]
				if len(h) != len(w) {
					t.Fatalf("flow %v: %d matches, sequential %d", k, len(h), len(w))
				}
				for i := range w {
					if h[i] != w[i] {
						t.Fatalf("flow %v match %d: engine %q, sequential %q", k, i, h[i], w[i])
					}
				}
			}
			for k := range have {
				if _, ok := want[k]; !ok && k != poisonKey {
					t.Fatalf("engine matched flow %v the sequential scan did not", k)
				}
			}
		})
	}
}

// TestQuarantineIsSticky: after the panic, more segments of the poisoned
// flow are dropped with accounting, without re-entering the matcher.
func TestQuarantineIsSticky(t *testing.T) {
	e := New(Config{Shards: 1}, func() flow.Runner {
		return faultinject.PanicOn([]byte("BAD"), faultinject.Discard)
	}, nil)
	k := pcap.FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4}
	segs := []string{"ok1", "BAD", "after1", "after2", "after3"}
	seq := uint32(1)
	for _, p := range segs {
		if err := e.HandleSegment(pcap.Segment{Key: k, Seq: seq, Flags: pcap.FlagACK, Payload: []byte(p)}); err != nil {
			t.Fatal(err)
		}
		seq += uint32(len(p))
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.PoisonedFlows != 1 || st.ShardPanics != 1 {
		t.Fatalf("poisoned=%d panics=%d, want 1/1", st.PoisonedFlows, st.ShardPanics)
	}
	if st.PoisonedDrops != 3 {
		t.Errorf("PoisonedDrops = %d, want 3 (the post-poison segments)", st.PoisonedDrops)
	}
	// Accounting identity: every accepted segment is scanned or counted.
	if st.Packets+st.PoisonedDrops != int64(len(segs)) {
		t.Errorf("accounting: scanned %d + poisoned-dropped %d != sent %d",
			st.Packets, st.PoisonedDrops, len(segs))
	}
}

// TestCrashBudget: a shard that keeps panicking is marked unhealthy
// after CrashBudget panics; its traffic is drop-counted and the engine
// survives to Close with exact accounting.
func TestCrashBudget(t *testing.T) {
	e := New(Config{Shards: 1, CrashBudget: 2}, func() flow.Runner {
		return faultinject.PanicOn([]byte("BAD"), faultinject.Discard)
	}, nil)
	mkKey := func(i int) pcap.FlowKey {
		return pcap.FlowKey{SrcIP: uint32(i + 1), DstIP: 99, SrcPort: 1000, DstPort: 80}
	}
	var sent int64
	send := func(i int, payload string, seq uint32) {
		t.Helper()
		if err := e.HandleSegment(pcap.Segment{Key: mkKey(i), Seq: seq, Flags: pcap.FlagACK, Payload: []byte(payload)}); err != nil {
			t.Fatal(err)
		}
		sent++
	}
	send(0, "BAD", 1) // panic 1: flow 0 quarantined
	send(1, "BAD", 1) // panic 2: flow 1 quarantined, budget exhausted
	for i := 0; i < 5; i++ {
		send(2, "clean traffic", uint32(1+13*i)) // lands on an unhealthy shard
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.UnhealthyShards != 1 {
		t.Fatalf("UnhealthyShards = %d, want 1 (stats %+v)", st.UnhealthyShards, st)
	}
	if st.PoisonedFlows != 2 || st.ShardPanics != 2 {
		t.Errorf("poisoned=%d panics=%d, want 2/2", st.PoisonedFlows, st.ShardPanics)
	}
	if st.UnhealthyDrops != 5 {
		t.Errorf("UnhealthyDrops = %d, want 5", st.UnhealthyDrops)
	}
	if got := st.Packets + st.PoisonedDrops + st.UnhealthyDrops; got != sent {
		t.Errorf("accounting: %d accounted != %d sent", got, sent)
	}
}

// TestCloseContextDeadline is the acceptance scenario for deadline
// shutdown: with a shard wedged mid-Feed, CloseContext returns promptly
// with ctx.Err() and accurate per-shard drain progress instead of
// hanging; releasing the wedge lets a later Close finish the drain.
func TestCloseContextDeadline(t *testing.T) {
	gate := make(chan struct{})
	e := New(Config{Shards: 1, QueueDepth: 16, SoftWatermark: 1.1, HardWatermark: 1.2},
		func() flow.Runner { return faultinject.Stall(gate, faultinject.Discard) }, nil)
	k := pcap.FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4}
	const total = 8
	for i := 0; i < total; i++ {
		if err := e.HandleSegment(pcap.Segment{Key: k, Seq: uint32(1 + i), Flags: pcap.FlagACK, Payload: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := e.CloseContext(ctx)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("CloseContext succeeded with a wedged shard")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("CloseContext took %v, expected prompt return", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
	var sderr *ShutdownError
	if !errors.As(err, &sderr) {
		t.Fatalf("error %T is not *ShutdownError", err)
	}
	if len(sderr.Progress) != 1 {
		t.Fatalf("progress for %d shards, want 1", len(sderr.Progress))
	}
	p := sderr.Progress[0]
	if p.Done {
		t.Error("wedged shard reported Done")
	}
	// The shard consumed the first segment (wedged inside Feed); the rest
	// must still be visible as queued work.
	if p.Processed != 1 || p.Queued != total-1 {
		t.Errorf("drain progress processed=%d queued=%d, want 1/%d", p.Processed, p.Queued, total-1)
	}

	// Intake must already be fenced even though the drain is incomplete.
	if err := e.HandleSegment(pcap.Segment{Key: k, Seq: 99, Flags: pcap.FlagACK, Payload: []byte("x")}); err != ErrClosed {
		t.Fatalf("HandleSegment during wedged shutdown: %v, want ErrClosed", err)
	}

	close(gate) // unwedge
	if err := e.Close(); err != nil {
		t.Fatalf("Close after unwedge: %v", err)
	}
	st := e.Stats()
	if st.Packets != total {
		t.Errorf("Packets = %d after full drain, want %d", st.Packets, total)
	}
	for _, d := range e.DrainProgress() {
		if !d.Done || d.Queued != 0 {
			t.Errorf("shard %d not fully drained: %+v", d.Shard, d)
		}
	}
}

// TestDegradationLadder drives the engine through normal → hard and back:
// a wedged shard fills its queue, the hard watermark flips dispatch into
// drop-with-accounting (even under the backpressure policy, so the
// producer is never stranded), and draining steps the ladder back down.
func TestDegradationLadder(t *testing.T) {
	gate := make(chan struct{})
	e := New(Config{Shards: 1, QueueDepth: 8},
		func() flow.Runner { return faultinject.Stall(gate, faultinject.Discard) }, nil)
	k := pcap.FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4}
	const total = 40
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			if err := e.HandleSegment(pcap.Segment{Key: k, Seq: uint32(1 + i), Flags: pcap.FlagACK, Payload: []byte("x")}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("producer stranded: hard tier did not engage on a full queue")
	}
	st := e.Stats()
	if st.Tier != TierHard {
		t.Fatalf("Tier = %v with a wedged full queue, want hard", st.Tier)
	}
	if st.HardDrops == 0 {
		t.Fatal("no HardDrops recorded")
	}
	if st.TierEnters[TierHard] == 0 {
		t.Error("hard entry not counted")
	}

	close(gate)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if st.Tier != TierNormal {
		t.Errorf("Tier = %v after drain, want normal (pressure receded)", st.Tier)
	}
	if st.TierTime[TierHard] <= 0 {
		t.Errorf("no time accounted to the hard tier: %+v", st.TierTime)
	}
	if got := st.Packets + st.HardDrops + st.QueueDrops; got != total {
		t.Errorf("accounting: scanned %d + hard %d + queue %d != sent %d",
			st.Packets, st.HardDrops, st.QueueDrops, total)
	}
}

// TestSoftTierDegradesAndRecovers: soft watermark shrinks reassembly
// buffers and steps back to normal with hysteresis once pressure
// recedes, with every segment still scanned (no drops at soft).
func TestSoftTierDegradesAndRecovers(t *testing.T) {
	gate := make(chan struct{})
	e := New(Config{Shards: 1, QueueDepth: 8, SoftWatermark: 0.5, HardWatermark: 0.95},
		func() flow.Runner { return faultinject.Stall(gate, faultinject.Discard) }, nil)
	k := pcap.FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4}
	const total = 6 // fills to 5/8 = 0.625: above soft, below hard
	for i := 0; i < total; i++ {
		if err := e.HandleSegment(pcap.Segment{Key: k, Seq: uint32(1 + i), Flags: pcap.FlagACK, Payload: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.Stats(); st.Tier != TierSoft {
		t.Fatalf("Tier = %v at 0.625 occupancy, want soft", st.Tier)
	}
	close(gate)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Tier != TierNormal {
		t.Errorf("Tier = %v after drain, want normal", st.Tier)
	}
	if st.Packets != total || st.HardDrops != 0 || st.QueueDrops != 0 {
		t.Errorf("soft tier must scan everything: %+v", st)
	}
	if st.TierEnters[TierSoft] == 0 || st.TierTime[TierSoft] <= 0 {
		t.Errorf("soft transition not accounted: enters=%v time=%v", st.TierEnters, st.TierTime)
	}
}

// TestMangledCaptureEquivalence wires the wire-fault injector into both
// scanning paths: the same deterministic schedule of truncated,
// corrupted, reordered, and dropped frames must leave the sharded engine
// and the sequential scanner with identical per-flow match sets — fault
// handling must not depend on which path sees the damage.
func TestMangledCaptureEquivalence(t *testing.T) {
	m := buildMFA(t, "attack.*payload", "needle")
	capture := interleavedCapture(t, 8, 4<<10, []string{"attack", "payload", "needle"})

	// Mangle once; feed the identical frame list to both paths.
	pr, err := pcap.NewReader(bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(faultinject.Config{
		Seed: 11, TruncateProb: 0.05, CorruptProb: 0.05, ReorderProb: 0.1, DropProb: 0.02,
	})
	var frames [][]byte
	for {
		pkt, err := pr.Next()
		if err != nil {
			break
		}
		frames = append(frames, inj.Frame(pkt.Data)...)
	}
	frames = append(frames, inj.Flush()...)
	if st := inj.Stats(); st.Truncated == 0 || st.Corrupted == 0 {
		t.Fatalf("schedule applied no wire faults: %+v", st)
	}

	var seq []Match
	asm := flow.NewAssembler(flow.Config{}, func() flow.Runner { return m.NewRunner() },
		func(mt flow.Match) { seq = append(seq, mt) })
	for _, f := range frames {
		_ = asm.HandleFrame(f) // lenient: skip malformed, as mfaserve does
	}
	want := flowMatches(seq)

	var mu sync.Mutex
	var got []Match
	e := New(Config{Shards: 4}, func() flow.Runner { return m.NewRunner() },
		func(mt Match) {
			mu.Lock()
			got = append(got, mt)
			mu.Unlock()
		})
	for _, f := range frames {
		_ = e.HandleFrame(f)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if !equalFlowMatches(want, flowMatches(got)) {
		t.Errorf("per-flow matches diverge on a mangled capture: seq %d, engine %d", len(seq), len(got))
	}
}
