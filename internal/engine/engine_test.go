package engine

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"

	"matchfilter/internal/core"
	"matchfilter/internal/flow"
	"matchfilter/internal/pcap"
	"matchfilter/internal/regexparse"
	"matchfilter/internal/trace"
)

func buildMFA(t testing.TB, sources ...string) *core.MFA {
	t.Helper()
	rules := make([]core.Rule, len(sources))
	for i, src := range sources {
		p, err := regexparse.ParsePCRE(src)
		if err != nil {
			t.Fatal(err)
		}
		rules[i] = core.Rule{Pattern: p, ID: int32(i + 1)}
	}
	m, err := core.Compile(rules, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// interleavedCapture synthesizes a pcap of nFlows streams salted with the
// pattern literals, with reordering, so reassembly and matching are both
// exercised.
func interleavedCapture(t testing.TB, nFlows, flowBytes int, words []string) []byte {
	t.Helper()
	payloads := make([][]byte, nFlows)
	for i := range payloads {
		payloads[i] = trace.TextLike(flowBytes, int64(1000+i*37), words, 0.02)
	}
	var buf bytes.Buffer
	if err := pcap.Synthesize(&buf, payloads, 512, 0.05, 42); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// flowMatches groups matches by flow and sorts each flow's matches, the
// canonical form for equivalence: per-flow order is guaranteed, global
// interleaving is not.
func flowMatches(ms []Match) map[pcap.FlowKey][]string {
	out := make(map[pcap.FlowKey][]string)
	for _, m := range ms {
		out[m.Flow] = append(out[m.Flow], fmt.Sprintf("%d@%d", m.ID, m.Pos))
	}
	for _, v := range out {
		sort.Strings(v)
	}
	return out
}

func equalFlowMatches(a, b map[pcap.FlowKey][]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok || len(va) != len(vb) {
			return false
		}
		for i := range va {
			if va[i] != vb[i] {
				return false
			}
		}
	}
	return true
}

// TestShardedEquivalence is the core soundness claim: for every shard
// count, the sharded engine produces exactly the sequential scanner's
// per-flow match sets on an interleaved multi-flow capture.
func TestShardedEquivalence(t *testing.T) {
	m := buildMFA(t, "attack.*payload", "evil[^\n]*string", "xmrig")
	capture := interleavedCapture(t, 12, 8<<10, []string{"attack", "payload", "evil", "string", "xmrig"})

	var seq []Match
	seqStats, err := flow.ScanPcap(bytes.NewReader(capture), flow.Config{},
		func() flow.Runner { return m.NewRunner() },
		func(mt flow.Match) { seq = append(seq, mt) })
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) == 0 {
		t.Fatal("trace produced no sequential matches; test would be vacuous")
	}
	want := flowMatches(seq)

	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			var mu sync.Mutex
			var got []Match
			st, err := ScanPcap(bytes.NewReader(capture), Config{Shards: shards},
				func() flow.Runner { return m.NewRunner() },
				func(mt Match) {
					mu.Lock()
					got = append(got, mt)
					mu.Unlock()
				})
			if err != nil {
				t.Fatal(err)
			}
			if !equalFlowMatches(want, flowMatches(got)) {
				t.Errorf("per-flow matches diverge from sequential scan\nseq: %d matches, engine: %d", len(seq), len(got))
			}
			if st.PayloadBytes != seqStats.PayloadBytes {
				t.Errorf("payload bytes: engine %d, sequential %d", st.PayloadBytes, seqStats.PayloadBytes)
			}
			if st.Matches != int64(len(got)) {
				t.Errorf("Stats.Matches = %d, delivered %d", st.Matches, len(got))
			}
			if st.Packets != seqStats.Packets {
				t.Errorf("packets: engine %d, sequential %d", st.Packets, seqStats.Packets)
			}
		})
	}
}

// TestConcurrentProducers drives one engine from many goroutines at once
// (the -race test backing the engine's concurrent-dispatch contract):
// each producer feeds disjoint flows, and every flow's matches must equal
// a sequential scan of its payload.
func TestConcurrentProducers(t *testing.T) {
	m := buildMFA(t, "aa.*zz", "needle")
	const producers = 8
	const segsPerFlow = 32

	// Build per-producer segment lists up front (one flow per producer).
	type flowInput struct {
		key  pcap.FlowKey
		segs []pcap.Segment
		data []byte
	}
	inputs := make([]flowInput, producers)
	for i := range inputs {
		data := trace.TextLike(segsPerFlow*64, int64(i*131+7), []string{"aa", "zz", "needle"}, 0.05)
		k := pcap.FlowKey{SrcIP: 0x0a00000a + uint32(i), DstIP: 2, SrcPort: uint16(40000 + i), DstPort: 80}
		var segs []pcap.Segment
		for off := 0; off < len(data); off += 64 {
			end := off + 64
			if end > len(data) {
				end = len(data)
			}
			segs = append(segs, pcap.Segment{
				Key: k, Seq: uint32(1 + off), Flags: pcap.FlagACK, Payload: data[off:end],
			})
		}
		inputs[i] = flowInput{key: k, segs: segs, data: data}
	}

	var mu sync.Mutex
	got := make(map[pcap.FlowKey][]string)
	e := New(Config{Shards: 4}, func() flow.Runner { return m.NewRunner() }, func(mt Match) {
		mu.Lock()
		got[mt.Flow] = append(got[mt.Flow], fmt.Sprintf("%d@%d", mt.ID, mt.Pos))
		mu.Unlock()
	})

	var wg sync.WaitGroup
	for i := range inputs {
		wg.Add(1)
		go func(in flowInput) {
			defer wg.Done()
			for _, seg := range in.segs {
				if err := e.HandleSegment(seg); err != nil {
					t.Error(err)
					return
				}
			}
		}(inputs[i])
	}
	wg.Wait()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	for _, in := range inputs {
		var want []string
		r := m.NewRunner()
		r.Feed(in.data, func(id int32, pos int64) {
			want = append(want, fmt.Sprintf("%d@%d", id, pos))
		})
		sort.Strings(want)
		have := got[in.key]
		sort.Strings(have)
		if len(want) != len(have) {
			t.Fatalf("flow %v: engine %d matches, sequential %d", in.key, len(have), len(want))
		}
		for j := range want {
			if want[j] != have[j] {
				t.Fatalf("flow %v match %d: engine %q, sequential %q", in.key, j, have[j], want[j])
			}
		}
	}
}

// TestCloseSemantics: Close drains, is idempotent, and fails intake
// afterwards.
func TestCloseSemantics(t *testing.T) {
	m := buildMFA(t, "ab")
	e := New(Config{Shards: 2}, func() flow.Runner { return m.NewRunner() }, nil)
	seg := pcap.Segment{
		Key:     pcap.FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4},
		Seq:     1, Flags: pcap.FlagACK, Payload: []byte("ab"),
	}
	if err := e.HandleSegment(seg); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.HandleSegment(seg); err != ErrClosed {
		t.Fatalf("HandleSegment after Close: %v, want ErrClosed", err)
	}
	// After Close the snapshot is exact: the one segment was scanned.
	if st := e.Stats(); st.Packets != 1 || st.PayloadBytes != 2 || st.QueueDepth != 0 {
		t.Errorf("stats after close: %+v", st)
	}
}

// blockingRunner lets the test stall a shard to observe queue behavior.
type blockingRunner struct{ gate chan struct{} }

func (r *blockingRunner) Feed(data []byte, onMatch func(int32, int64)) { <-r.gate }
func (r *blockingRunner) Reset()                                      {}

// TestDropWhenFull verifies explicit drop accounting under overload: with
// the shard stalled, a bounded queue overflows into QueueDrops and no
// segment is silently lost from the books. Watermarks above 1.0 keep the
// degradation ladder out of the way so the overflow path itself is
// exercised (the ladder's own drops are covered in fault_test.go).
func TestDropWhenFull(t *testing.T) {
	gate := make(chan struct{})
	e := New(Config{Shards: 1, QueueDepth: 4, DropWhenFull: true,
		SoftWatermark: 1.1, HardWatermark: 1.2},
		func() flow.Runner { return &blockingRunner{gate: gate} }, nil)
	k := pcap.FlowKey{SrcIP: 9, DstIP: 8, SrcPort: 7, DstPort: 6}
	const total = 32
	for i := 0; i < total; i++ {
		seg := pcap.Segment{Key: k, Seq: uint32(1 + i), Flags: pcap.FlagACK, Payload: []byte("x")}
		if err := e.HandleSegment(seg); err != nil {
			t.Fatal(err)
		}
	}
	close(gate) // release the shard
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.QueueDrops == 0 {
		t.Fatal("expected drops with a stalled shard and a 4-deep queue")
	}
	if st.Packets+st.QueueDrops != total {
		t.Errorf("accounting: processed %d + dropped %d != sent %d", st.Packets, st.QueueDrops, total)
	}
}

// TestIdleSweep verifies shards run the idle eviction policy.
func TestIdleSweep(t *testing.T) {
	m := buildMFA(t, "x")
	e := New(Config{Shards: 1, IdleAfter: 8, SweepEvery: 4},
		func() flow.Runner { return m.NewRunner() }, nil)
	quiet := pcap.FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4}
	busy := pcap.FlowKey{SrcIP: 5, DstIP: 6, SrcPort: 7, DstPort: 8}
	if err := e.HandleSegment(pcap.Segment{Key: quiet, Seq: 1, Flags: pcap.FlagACK, Payload: []byte("y")}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := e.HandleSegment(pcap.Segment{Key: busy, Seq: uint32(1 + i), Flags: pcap.FlagACK, Payload: []byte("y")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.EvictedIdle == 0 {
		t.Errorf("idle flow not swept: %+v", st)
	}
	if st.FlowsLive != 1 {
		t.Errorf("busy flow should survive: %+v", st)
	}
}

// TestShardAffinity pins the routing invariant: every segment of a key
// lands on the same shard, and the hash spreads distinct keys — even the
// *sequential* client addresses and ports real traffic (and the trace
// synthesizer) produces, whose correlated low bits defeat a bare
// FNV-mod-N (the regression the avalanche finalizer fixes).
func TestShardAffinity(t *testing.T) {
	patterns := map[string]func(i int) pcap.FlowKey{
		"scattered": func(i int) pcap.FlowKey {
			return pcap.FlowKey{SrcIP: uint32(i * 2654435761), DstIP: 0xc0a80101, SrcPort: uint16(i), DstPort: 443}
		},
		// The synthesizer's shape: 10.0.0.i clients, ports 20000+i.
		"sequential": func(i int) pcap.FlowKey {
			return pcap.FlowKey{SrcIP: 0x0a000000 | uint32(i+1), DstIP: 0xc0a80101, SrcPort: uint16(20000 + i), DstPort: 80}
		},
	}
	for name, mk := range patterns {
		t.Run(name, func(t *testing.T) {
			for _, shards := range []int{2, 4, 8} {
				counts := make(map[int]int)
				for i := 0; i < 1024; i++ {
					k := mk(i)
					idx := shardIndex(k, shards)
					if again := shardIndex(k, shards); again != idx {
						t.Fatalf("unstable shard index for %v: %d then %d", k, idx, again)
					}
					counts[idx]++
				}
				if len(counts) != shards {
					t.Errorf("n=%d: 1024 distinct keys hit only %d shards: %v", shards, len(counts), counts)
				}
				for idx, n := range counts {
					if n < 1024/shards/4 {
						t.Errorf("n=%d: shard %d badly underloaded: %d/1024 keys", shards, idx, n)
					}
				}
			}
		})
	}
}
