// Multi-tenant serving: (tenant, generation) swaps and dispatch gating.
//
// A tenant's rule-set swap rides the same machinery as a whole-daemon
// reload (reload.go): a generation is installed, a command is delivered
// to every shard, and each shard applies it on its own goroutine before
// the next segment it scans. Two differences:
//
//   - Identity. Tenant generations are numbered per tenant and packed
//     into the flow-layer generation id as tenant<<32 | generation, so
//     one assembler-wide generation table serves all tenants without
//     collision (the default rule set is tenant 0 and keeps its small
//     ids — a single-tenant daemon's ids are unchanged).
//   - Delivery. Whole-daemon reloads keep their newest-wins atomic slot;
//     tenant commands for *different* tenants must all arrive, so they
//     ride a small mutex-guarded pending list per shard, drained at the
//     same points the reload slot is checked. The dispatch hot path
//     pays one atomic bool load per segment for it.
//
// Dispatch admits a tagged segment only while its tenant is published
// in the registry; Put publishes a new tenant only after its first
// generation's command is queued on every shard, and Delete unpublishes
// before the teardown command is queued. A tagged segment can therefore
// never create a flow on the wrong rule set — at worst it lands on a
// shard after the teardown command and is dropped by the assembler's
// unknown-tenant check (counted in Stats.TenantDrops).
package engine

import (
	"errors"
	"strconv"

	"matchfilter/internal/flow"
	"matchfilter/internal/telemetry"
	"matchfilter/internal/tenant"
)

// tenantCmd is one pending per-tenant serving change for a shard:
// install gen as the tenant's current generation, or — when gen is nil
// — tear the tenant down.
type tenantCmd struct {
	ten   uint32
	gen   *generation
	reset bool
}

// packGen builds the assembler-wide generation id for a tenant's
// per-tenant generation number.
func packGen(idx uint32, gen uint64) uint64 {
	return uint64(idx)<<32 | (gen & 0xffffffff)
}

// ReloadTenant installs newRunner as tenant t's next generation on
// every shard and returns the per-tenant generation number. Semantics
// mirror Reload exactly, scoped to the tenant: segments dispatched
// after it returns are scanned post-swap; reset restarts the tenant's
// live flows on the new set, otherwise they drain on the old; the call
// never blocks on shard queues. Implements tenant.Swapper.
func (e *Engine) ReloadTenant(t *tenant.Tenant, newRunner func() flow.Runner, reset bool) (uint64, error) {
	if newRunner == nil {
		return 0, errors.New("engine: tenant reload with nil runner factory")
	}
	e.reloadMu.Lock()
	defer e.reloadMu.Unlock()
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return 0, ErrClosed
	}
	gen := t.NextGeneration()
	g := &generation{
		id:        packGen(t.Index(), gen),
		newRunner: newRunner,
		acct:      t.Acct(),
	}
	if e.cfg.Metrics != nil {
		g.live = registerTenantGenerationGauge(e.cfg.Metrics, t.ID(), gen)
	}
	e.tenantMu.Lock()
	if e.tenantCur == nil {
		e.tenantCur = make(map[uint32]*generation)
	}
	e.tenantCur[t.Index()] = g
	e.tenantMu.Unlock()
	cmd := tenantCmd{ten: t.Index(), gen: g, reset: reset}
	for _, s := range e.shards {
		s.queueTenantCmd(cmd)
	}
	return gen, nil
}

// DropTenant tears tenant t down on every shard: its flows are removed
// (runners discarded — they belong to a dead automaton) and later
// segments carrying its index are dropped. Implements tenant.Swapper.
func (e *Engine) DropTenant(t *tenant.Tenant) error {
	e.reloadMu.Lock()
	defer e.reloadMu.Unlock()
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	e.tenantMu.Lock()
	delete(e.tenantCur, t.Index())
	e.tenantMu.Unlock()
	cmd := tenantCmd{ten: t.Index()}
	for _, s := range e.shards {
		s.queueTenantCmd(cmd)
	}
	return nil
}

// queueTenantCmd appends one tenant command to the shard's pending list
// and nudges an idle shard. Never blocks.
func (s *shard) queueTenantCmd(cmd tenantCmd) {
	s.tenantMu.Lock()
	s.tenantCmds = append(s.tenantCmds, cmd)
	s.tenantPending.Store(true)
	s.tenantMu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default: // a wake is already pending; the shard will drain the list
	}
}

// applyTenantCmds drains the pending tenant-command list in arrival
// order. Runs on the shard goroutine only.
func (s *shard) applyTenantCmds() {
	s.tenantMu.Lock()
	cmds := s.tenantCmds
	s.tenantCmds = nil
	s.tenantPending.Store(false)
	s.tenantMu.Unlock()
	if len(cmds) == 0 {
		return
	}
	for _, c := range cmds {
		if c.gen == nil {
			s.asm.DropTenant(c.ten)
		} else {
			s.asm.SetTenantGeneration(c.ten, c.gen.flowGen(), c.gen.acct, c.reset)
		}
	}
	s.publish()
}

// installTenants replays every tenant's current generation onto a fresh
// assembler — the rebuild path, so a shard recovering from corruption
// serves the same tenant set as its siblings.
func (e *Engine) installTenants(a *flow.Assembler) {
	e.tenantMu.Lock()
	for idx, g := range e.tenantCur {
		a.SetTenantGeneration(idx, g.flowGen(), g.acct, false)
	}
	e.tenantMu.Unlock()
}

// registerTenantGenerationGauge is the tenant-scoped counterpart of
// registerGenerationGauge: live flows per (tenant, generation), so a
// per-tenant drain can be watched complete.
func registerTenantGenerationGauge(reg *telemetry.Registry, id string, gen uint64) *telemetry.Gauge {
	return reg.Gauge("mfa_tenant_generation_live_flows",
		"Live flows on each (tenant, generation) pair (exact; drained generations read 0).",
		telemetry.L("tenant", id),
		telemetry.L("generation", strconv.FormatUint(gen, 10)))
}
