package engine

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"matchfilter/internal/core"
	"matchfilter/internal/dfa"
	"matchfilter/internal/faultinject"
	"matchfilter/internal/flow"
	"matchfilter/internal/pcap"
	"matchfilter/internal/regexparse"
)

func buildLayoutMFA(t testing.TB, layout dfa.Layout, sources ...string) *core.MFA {
	t.Helper()
	rules := make([]core.Rule, len(sources))
	for i, src := range sources {
		p, err := regexparse.ParsePCRE(src)
		if err != nil {
			t.Fatal(err)
		}
		rules[i] = core.Rule{Pattern: p, ID: int32(i + 1)}
	}
	m, err := core.Compile(rules, core.Options{DFA: dfa.Options{Layout: layout}})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestBatchedShardedEquivalence extends the core soundness claim to the
// batched lockstep path: for every (shards, BatchFlows, layout)
// combination, per-flow match sets are byte-identical to the sequential
// scanner's, and no payload is lost at close (the final lockstep window
// flushes before the shard exits).
func TestBatchedShardedEquivalence(t *testing.T) {
	sources := []string{"attack.*payload", "evil[^\n]*string", "xmrig"}
	capture := interleavedCapture(t, 12, 8<<10, []string{"attack", "payload", "evil", "string", "xmrig"})

	flat := buildLayoutMFA(t, dfa.LayoutFlat, sources...)
	var seq []Match
	seqStats, err := flow.ScanPcap(bytes.NewReader(capture), flow.Config{},
		func() flow.Runner { return flat.NewRunner() },
		func(mt flow.Match) { seq = append(seq, mt) })
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) == 0 {
		t.Fatal("capture produced no matches; test would be vacuous")
	}
	want := flowMatches(seq)

	for _, layout := range []dfa.Layout{dfa.LayoutClassed, dfa.LayoutClassed2} {
		m := buildLayoutMFA(t, layout, sources...)
		for _, shards := range []int{1, 4} {
			for _, k := range []int{4, core.MaxBatchFlows} {
				t.Run(fmt.Sprintf("%v/shards=%d/k=%d", layout, shards, k), func(t *testing.T) {
					var mu sync.Mutex
					var got []Match
					st, err := ScanPcap(bytes.NewReader(capture),
						Config{Shards: shards, BatchFlows: k},
						func() flow.Runner { return m.NewRunner() },
						func(mt Match) {
							mu.Lock()
							got = append(got, mt)
							mu.Unlock()
						})
					if err != nil {
						t.Fatal(err)
					}
					if !equalFlowMatches(want, flowMatches(got)) {
						t.Errorf("batched per-flow matches diverge from sequential scan (seq %d, batched %d)", len(seq), len(got))
					}
					if st.PayloadBytes != seqStats.PayloadBytes {
						t.Errorf("payload bytes: batched %d, sequential %d", st.PayloadBytes, seqStats.PayloadBytes)
					}
				})
			}
		}
	}
}

// TestBatchedInlineFallback checks that a batching engine still serves
// runners the batcher cannot lockstep (fault-injection decorators are
// not *core.Runner): they fall back to scan-on-arrival and their flows'
// match sets stay exact.
func TestBatchedInlineFallback(t *testing.T) {
	m := buildMFA(t, "attack.*payload", "xmrig")
	capture := interleavedCapture(t, 6, 4<<10, []string{"attack", "payload", "xmrig"})

	var seq []Match
	_, err := flow.ScanPcap(bytes.NewReader(capture), flow.Config{},
		func() flow.Runner { return m.NewRunner() },
		func(mt flow.Match) { seq = append(seq, mt) })
	if err != nil {
		t.Fatal(err)
	}
	want := flowMatches(seq)

	var mu sync.Mutex
	var got []Match
	_, err = ScanPcap(bytes.NewReader(capture), Config{Shards: 2, BatchFlows: 8},
		// PanicOn with an absent token is a pass-through decorator: it
		// never fires, but it hides the *core.Runner from the batcher.
		func() flow.Runner { return faultinject.PanicOn([]byte("\x00NEVER\x00"), m.NewRunner()) },
		func(mt Match) {
			mu.Lock()
			got = append(got, mt)
			mu.Unlock()
		})
	if err != nil {
		t.Fatal(err)
	}
	if !equalFlowMatches(want, flowMatches(got)) {
		t.Error("inline-fallback matches diverge from sequential scan")
	}
}

// TestBatchedCallbackPanicQuarantinesOneFlow forces a panic inside a
// match callback during a lockstep flush: the engine must quarantine
// exactly the flow whose callback panicked (attributed through the
// batcher's Scanning tag) and keep every other flow's match set intact.
func TestBatchedCallbackPanicQuarantinesOneFlow(t *testing.T) {
	sources := []string{"attack.*payload", "evil[^\n]*string", "xmrig"}
	words := []string{"attack", "payload", "evil", "string", "xmrig"}
	capture, poisonKey := poisonedCapture(t, 10, words, "xmrig", 3)
	m := buildLayoutMFA(t, dfa.LayoutClassed2, sources...)

	var seq []Match
	_, err := flow.ScanPcap(bytes.NewReader(capture), flow.Config{},
		func() flow.Runner { return m.NewRunner() },
		func(mt flow.Match) { seq = append(seq, mt) })
	if err != nil {
		t.Fatal(err)
	}
	want := flowMatches(seq)
	if len(want[poisonKey]) == 0 {
		t.Fatal("poisoned flow has no matches; panic would never fire")
	}

	var mu sync.Mutex
	var got []Match
	st, err := ScanPcap(bytes.NewReader(capture), Config{Shards: 2, BatchFlows: 8},
		func() flow.Runner { return m.NewRunner() },
		func(mt Match) {
			if mt.Flow == poisonKey {
				panic("hostile match handler")
			}
			mu.Lock()
			got = append(got, mt)
			mu.Unlock()
		})
	if err != nil {
		t.Fatal(err)
	}
	if st.PoisonedFlows != 1 {
		t.Fatalf("PoisonedFlows = %d, want 1", st.PoisonedFlows)
	}
	gm := flowMatches(got)
	for k, v := range want {
		if k == poisonKey {
			continue
		}
		if fmt.Sprint(gm[k]) != fmt.Sprint(v) {
			t.Fatalf("clean flow %v lost matches after sibling's callback panic", k)
		}
	}
	if _, hit := gm[poisonKey]; hit {
		// Matches before the first panic were delivered... but the panic
		// fires on the flow's first match, so none should have landed.
		t.Fatalf("poisoned flow delivered matches: %v", gm[poisonKey])
	}
	_ = pcap.FlowKey{}
}
