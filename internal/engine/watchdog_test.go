// Stall-watchdog tests: a scan step wedged in matcher code is detected
// within the configured deadline, the offending flow is quarantined
// through the poison path when the step returns, and a wedged shard
// sheds its traffic with exact accounting — all without stalling
// sibling shards or leaking goroutines.
package engine

import (
	"testing"
	"time"

	"matchfilter/internal/faultinject"
	"matchfilter/internal/flow"
	"matchfilter/internal/leakcheck"
	"matchfilter/internal/pcap"
)

// keyOnShard finds a flow key that shardIndex maps to the wanted shard.
func keyOnShard(t *testing.T, want, shards int) pcap.FlowKey {
	t.Helper()
	for port := 1; port < 1<<16; port++ {
		k := pcap.FlowKey{SrcIP: 0x0a000001, DstIP: 0xc0a80101, SrcPort: uint16(port), DstPort: 80}
		if shardIndex(k, shards) == want {
			return k
		}
	}
	t.Fatalf("no key maps to shard %d of %d", want, shards)
	return pcap.FlowKey{}
}

// waitStats polls the engine until cond holds or the deadline passes.
func waitStats(t *testing.T, e *Engine, what string, cond func(Stats) bool) Stats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var st Stats
	for time.Now().Before(deadline) {
		st = e.Stats()
		if cond(st) {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s; stats %+v", what, st)
	return st
}

// TestStallWatchdogQuarantinesFlow is the acceptance scenario: a flow
// that wedges its shard mid-scan is detected within the deadline and
// quarantined when the scan returns, while a sibling shard keeps
// scanning throughout, and the accounting identity holds.
func TestStallWatchdogQuarantinesFlow(t *testing.T) {
	leakcheck.Check(t)
	const token = "\x00WEDGE\x00"
	gate := make(chan struct{})
	e := New(Config{
		Shards: 2, QueueDepth: 64,
		StallDeadline: 10 * time.Millisecond,
		WedgeAfter:    time.Hour, // stall only; wedging is the next test
		SoftWatermark: 1.1, HardWatermark: 1.2,
	}, func() flow.Runner { return faultinject.StallOn([]byte(token), gate, faultinject.Discard) }, nil)
	defer e.Close()

	stallKey := keyOnShard(t, 0, 2)
	okKey := keyOnShard(t, 1, 2)
	var sent int64

	// Wedge shard 0 on the poisoned flow's first payload.
	if err := e.HandleSegment(pcap.Segment{Key: stallKey, Seq: 1, Flags: pcap.FlagACK, Payload: []byte(token)}); err != nil {
		t.Fatal(err)
	}
	sent++

	// The watchdog must flag the stuck step within the deadline (plus
	// polling slack) — while the step is still stuck.
	waitStats(t, e, "watchdog fire", func(st Stats) bool { return st.StallFires >= 1 })

	// The sibling shard keeps scanning while shard 0 is stuck. (The
	// published Stats snapshot lags by up to statsEvery segments, so
	// read the sibling's exact processed counter directly.)
	for i := 0; i < 32; i++ {
		if err := e.HandleSegment(pcap.Segment{Key: okKey, Seq: uint32(1 + i), Flags: pcap.FlagACK, Payload: []byte("x")}); err != nil {
			t.Fatal(err)
		}
		sent++
	}
	sibling := e.shards[1]
	waitStats(t, e, "sibling progress", func(Stats) bool { return sibling.processed.Load() >= 32 })
	if st := e.Stats(); st.StallsRecovered != 0 || st.PoisonedFlows != 0 {
		t.Fatalf("recovery accounted before the step returned: %+v", st)
	}

	// Release the stuck scan: the shard must quarantine the flow through
	// the poison path and count the recovery.
	close(gate)
	waitStats(t, e, "stall recovery", func(st Stats) bool { return st.StallsRecovered == 1 })
	st := e.Stats()
	if st.PoisonedFlows != 1 {
		t.Fatalf("PoisonedFlows = %d after recovery, want 1", st.PoisonedFlows)
	}
	if st.ShardPanics != 0 {
		t.Fatalf("a stall is not a panic: ShardPanics = %d", st.ShardPanics)
	}
	if st.UnhealthyShards != 0 || st.WedgedShards != 0 {
		t.Fatalf("un-wedged stall must not bench the shard: %+v", st)
	}

	// The quarantine is sticky: later segments of the stalled flow are
	// drop-counted without re-entering the matcher.
	for i := 0; i < 5; i++ {
		if err := e.HandleSegment(pcap.Segment{Key: stallKey, Seq: uint32(100 + i), Flags: pcap.FlagACK, Payload: []byte("y")}); err != nil {
			t.Fatal(err)
		}
		sent++
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if st.PoisonedDrops != 5 {
		t.Errorf("PoisonedDrops = %d, want 5", st.PoisonedDrops)
	}
	if got := st.Packets + st.QueueDrops + st.HardDrops + st.PoisonedDrops + st.UnhealthyDrops + st.WedgeDrops; got != sent {
		t.Errorf("accounting: %d accounted != %d sent (%+v)", got, sent, st)
	}
	if st.QueuedBytes != 0 {
		t.Errorf("QueuedBytes = %d after drain, want 0", st.QueuedBytes)
	}
}

// TestWedgeEscalationShedsAndRecovers: a stall that outlives WedgeAfter
// benches the shard — dispatch sheds its traffic with accounting instead
// of blocking — and the shard re-enters service when the stuck step
// finally returns.
func TestWedgeEscalationShedsAndRecovers(t *testing.T) {
	leakcheck.Check(t)
	const token = "\x00WEDGE\x00"
	gate := make(chan struct{})
	e := New(Config{
		Shards: 1, QueueDepth: 64,
		StallDeadline: 5 * time.Millisecond,
		WedgeAfter:    20 * time.Millisecond,
		SoftWatermark: 1.1, HardWatermark: 1.2,
	}, func() flow.Runner { return faultinject.StallOn([]byte(token), gate, faultinject.Discard) }, nil)
	defer e.Close()

	wedgeKey := pcap.FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4}
	var sent int64
	if err := e.HandleSegment(pcap.Segment{Key: wedgeKey, Seq: 1, Flags: pcap.FlagACK, Payload: []byte(token)}); err != nil {
		t.Fatal(err)
	}
	sent++

	// Escalation: the shard is benched and counts as unhealthy.
	waitStats(t, e, "wedge", func(st Stats) bool { return st.WedgedShards == 1 })
	if st := e.Stats(); st.UnhealthyShards != 1 {
		t.Fatalf("wedged shard not counted unhealthy: %+v", st)
	}

	// Dispatch now sheds instead of blocking behind the stuck goroutine
	// (this would deadlock under backpressure without the wedge gate).
	const shed = 10
	for i := 0; i < shed; i++ {
		if err := e.HandleSegment(pcap.Segment{Key: wedgeKey, Seq: uint32(10 + i), Flags: pcap.FlagACK, Payload: []byte("z")}); err != nil {
			t.Fatal(err)
		}
		sent++
	}
	if st := e.Stats(); st.WedgeDrops != shed {
		t.Fatalf("WedgeDrops = %d, want %d", st.WedgeDrops, shed)
	}

	// The step returns: flow quarantined, shard back in service.
	close(gate)
	waitStats(t, e, "recovery", func(st Stats) bool {
		return st.StallsRecovered == 1 && st.WedgedShards == 0 && st.UnhealthyShards == 0
	})

	// A fresh flow scans normally on the recovered shard.
	okKey := pcap.FlowKey{SrcIP: 9, DstIP: 8, SrcPort: 7, DstPort: 6}
	if err := e.HandleSegment(pcap.Segment{Key: okKey, Seq: 1, Flags: pcap.FlagACK, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	sent++
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Packets != 2 { // the stalled segment itself + the fresh flow's
		t.Errorf("Packets = %d, want 2", st.Packets)
	}
	if got := st.Packets + st.QueueDrops + st.HardDrops + st.PoisonedDrops + st.UnhealthyDrops + st.WedgeDrops; got != sent {
		t.Errorf("accounting: %d accounted != %d sent (%+v)", got, sent, st)
	}
}

// TestWatchdogNoFalsePositives: ordinary traffic under a generous
// deadline must never trip the watchdog or touch the poison path.
func TestWatchdogNoFalsePositives(t *testing.T) {
	leakcheck.Check(t)
	e := New(Config{
		Shards: 2, QueueDepth: 64,
		StallDeadline: time.Second,
	}, func() flow.Runner { return faultinject.Discard }, nil)
	for f := 0; f < 8; f++ {
		k := pcap.FlowKey{SrcIP: uint32(f + 1), DstIP: 2, SrcPort: 3, DstPort: 4}
		for i := 0; i < 50; i++ {
			if err := e.HandleSegment(pcap.Segment{Key: k, Seq: uint32(1 + i), Flags: pcap.FlagACK, Payload: []byte("x")}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.StallFires != 0 || st.StallsRecovered != 0 || st.PoisonedFlows != 0 || st.WedgeDrops != 0 {
		t.Fatalf("false positive on clean traffic: %+v", st)
	}
	if st.Packets != 400 {
		t.Fatalf("Packets = %d, want 400", st.Packets)
	}
}
