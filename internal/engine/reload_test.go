package engine

// Hot-reload semantics under the sharded engine: zero-disruption drain,
// deterministic reset, rule-set swap visibility, and liveness of the
// dispatch path against stalled shards during Close.

import (
	"bytes"
	"context"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"matchfilter/internal/faultinject"
	"matchfilter/internal/flow"
	"matchfilter/internal/leakcheck"
	"matchfilter/internal/pcap"
)

// waitProcessed blocks until the shards have consumed n segments (the
// processed counter is exact, unlike the periodic stats snapshots).
func waitProcessed(t *testing.T, e *Engine, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var got int64
		for _, d := range e.DrainProgress() {
			got += d.Processed
		}
		if got >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("shards processed %d segments, want %d", got, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// A drain-mode reload in the middle of a live capture must be invisible:
// no flow dropped, and the per-flow match streams byte-identical to an
// uninterrupted sequential scan.
func TestReloadDrainEquivalence(t *testing.T) {
	leakcheck.Check(t)
	m := buildMFA(t, "attack.*payload", "evil[^\n]*string", "xmrig")
	capture := interleavedCapture(t, 10, 8<<10, []string{"attack", "payload", "evil", "string", "xmrig"})

	var seq []Match
	_, err := flow.ScanPcap(bytes.NewReader(capture), flow.Config{},
		func() flow.Runner { return m.NewRunner() },
		func(mt flow.Match) { seq = append(seq, mt) })
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) == 0 {
		t.Fatal("trace produced no sequential matches; test would be vacuous")
	}
	want := flowMatches(seq)

	// Decode the capture into frames so the reload can land mid-stream.
	var frames [][]byte
	pr, err := pcap.NewReader(bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	for {
		pkt, err := pr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, append([]byte(nil), pkt.Data...))
	}

	var mu sync.Mutex
	var got []Match
	e := New(Config{Shards: 4}, func() flow.Runner { return m.NewRunner() },
		func(mt Match) {
			mu.Lock()
			got = append(got, mt)
			mu.Unlock()
		})
	for i, f := range frames {
		if i == len(frames)/2 {
			gen, err := e.Reload(func() flow.Runner { return m.NewRunner() }, ReloadDrain)
			if err != nil {
				t.Fatal(err)
			}
			if gen != 2 {
				t.Fatalf("generation after reload = %d, want 2", gen)
			}
		}
		if err := e.HandleFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	if !equalFlowMatches(want, flowMatches(got)) {
		t.Errorf("per-flow matches diverge across a drain reload\nseq: %d matches, engine: %d", len(seq), len(got))
	}
	st := e.Stats()
	if st.QueueDrops != 0 || st.DroppedSegs != 0 {
		t.Errorf("reload dropped traffic: queue=%d reasm=%d", st.QueueDrops, st.DroppedSegs)
	}
	if st.Generation != 2 {
		t.Errorf("Stats.Generation = %d, want 2", st.Generation)
	}
}

// Drain vs reset on one straddling flow: "ab" before the reload, "cd"
// after. Drain keeps the old automaton mid-flow (match); reset restarts
// matching on the new generation ("cd" alone — no match).
func TestReloadPolicies(t *testing.T) {
	k := pcap.FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4}
	for _, tc := range []struct {
		name    string
		policy  ReloadPolicy
		matches int
	}{
		{"drain", ReloadDrain, 1},
		{"reset", ReloadReset, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := buildMFA(t, "ab.*cd")
			var mu sync.Mutex
			var got []Match
			e := New(Config{Shards: 1}, func() flow.Runner { return m.NewRunner() },
				func(mt Match) {
					mu.Lock()
					got = append(got, mt)
					mu.Unlock()
				})
			if err := e.HandleSegment(pcap.Segment{Key: k, Seq: 1, Flags: pcap.FlagACK, Payload: []byte("ab")}); err != nil {
				t.Fatal(err)
			}
			// The flow must exist before the swap for the policy to act on
			// it; segments dispatched after Reload are scanned post-swap.
			waitProcessed(t, e, 1)
			if _, err := e.Reload(func() flow.Runner { return m.NewRunner() }, tc.policy); err != nil {
				t.Fatal(err)
			}
			if err := e.HandleSegment(pcap.Segment{Key: k, Seq: 3, Flags: pcap.FlagACK, Payload: []byte("cd")}); err != nil {
				t.Fatal(err)
			}
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
			if len(got) != tc.matches {
				t.Fatalf("matches = %v, want %d", got, tc.matches)
			}
			st := e.Stats()
			if st.Generation != 2 {
				t.Errorf("Generation = %d, want 2", st.Generation)
			}
			wantGen := uint64(1) // drain: the straddling flow stays on gen 1
			if tc.policy == ReloadReset {
				wantGen = 2
				if st.StaleRunners != 1 {
					t.Errorf("StaleRunners = %d, want 1", st.StaleRunners)
				}
			}
			// The serving generation also reports (possibly 0) live flows.
			if st.GenFlows[wantGen] != 1 || st.GenFlows[1]+st.GenFlows[2] != 1 {
				t.Errorf("GenFlows = %v, want the one flow on generation %d", st.GenFlows, wantGen)
			}
		})
	}
}

// A reload that changes the rule set: flows already in flight keep the
// rules they started with (drain), flows created after it match only the
// new rules.
func TestReloadSwapsRuleSet(t *testing.T) {
	leakcheck.Check(t)
	m1 := buildMFA(t, "aaa")
	m2 := buildMFA(t, "bbb")
	kOld := pcap.FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4}
	kNew := pcap.FlowKey{SrcIP: 5, DstIP: 6, SrcPort: 7, DstPort: 8}

	var mu sync.Mutex
	var got []Match
	e := New(Config{Shards: 1}, func() flow.Runner { return m1.NewRunner() },
		func(mt Match) {
			mu.Lock()
			got = append(got, mt)
			mu.Unlock()
		})
	if err := e.HandleSegment(pcap.Segment{Key: kOld, Seq: 1, Flags: pcap.FlagACK, Payload: []byte("aa")}); err != nil {
		t.Fatal(err)
	}
	waitProcessed(t, e, 1)
	if _, err := e.Reload(func() flow.Runner { return m2.NewRunner() }, ReloadDrain); err != nil {
		t.Fatal(err)
	}
	// Old flow finishes its old-rules match; a new flow sees only new
	// rules ("aaa" is dead there, "bbb" fires).
	if err := e.HandleSegment(pcap.Segment{Key: kOld, Seq: 3, Flags: pcap.FlagACK, Payload: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	if err := e.HandleSegment(pcap.Segment{Key: kNew, Seq: 1, Flags: pcap.FlagACK, Payload: []byte("aaabbb")}); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	byFlow := flowMatches(got)
	if len(byFlow[kOld]) != 1 {
		t.Errorf("old flow on old rules: %v", byFlow[kOld])
	}
	if len(byFlow[kNew]) != 1 {
		t.Errorf("new flow on new rules: %v", byFlow[kNew])
	}
}

func TestReloadErrors(t *testing.T) {
	m := buildMFA(t, "x")
	e := New(Config{Shards: 1}, func() flow.Runner { return m.NewRunner() }, nil)
	if _, err := e.Reload(nil, ReloadDrain); err == nil {
		t.Error("nil factory accepted")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Reload(func() flow.Runner { return m.NewRunner() }, ReloadDrain); err != ErrClosed {
		t.Errorf("Reload after Close: %v, want ErrClosed", err)
	}
}

// Regression: a backpressure dispatcher blocked on a full queue holds the
// engine mutex's read side; CloseContext must still be able to proceed
// (it unblocks the dispatcher via the closing channel before taking the
// write lock). Before that fix this test deadlocked.
func TestCloseUnblocksBackpressure(t *testing.T) {
	leakcheck.Check(t)
	gate := make(chan struct{})
	e := New(Config{Shards: 1, QueueDepth: 1, SoftWatermark: 1.1, HardWatermark: 1.2},
		func() flow.Runner { return faultinject.Stall(gate, faultinject.Discard) }, nil)
	k := pcap.FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4}

	// Segment 1 wedges the shard inside Feed; segment 2 fills the queue;
	// segment 3 parks its dispatcher in the backpressure send.
	sendErr := make(chan error, 1)
	go func() {
		var last error
		for i := 0; i < 3; i++ {
			last = e.HandleSegment(pcap.Segment{Key: k, Seq: uint32(1 + 2*i), Flags: pcap.FlagACK, Payload: []byte("xx")})
			if last != nil {
				break
			}
		}
		sendErr <- last
	}()
	waitProcessed(t, e, 1) // the shard is now inside the stalled Feed
	time.Sleep(10 * time.Millisecond)

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		defer cancel()
		done <- e.CloseContext(ctx)
	}()
	select {
	case err := <-done:
		var sderr *ShutdownError
		if !errors.As(err, &sderr) {
			t.Fatalf("CloseContext with a wedged shard: %v, want *ShutdownError", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("CloseContext deadlocked against a blocked backpressure dispatcher")
	}
	select {
	case err := <-sendErr:
		if err != ErrClosed {
			t.Fatalf("blocked HandleSegment returned %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("backpressure dispatcher still blocked after CloseContext")
	}

	close(gate) // unwedge and finish the drain
	if err := e.Close(); err != nil {
		t.Fatalf("Close after unwedge: %v", err)
	}
}
