// Package engine is the sharded, concurrent session engine: the scaling
// layer the paper's §III-B flow model makes possible. Because a flow's
// entire matching context is the tiny (q, m) pair, flows are independent
// and embarrassingly parallel — the engine demultiplexes TCP segments by
// hash(FlowKey) onto N shard goroutines, each owning a private
// flow.Assembler (flow table, runner pool, reassembly buffers) that it
// alone touches. The hot path takes no exclusive locks: dispatch is one
// hash, one shared read-lock, and one bounded-channel send; everything
// after that is shard-local.
//
// Guarantees:
//
//   - Flow affinity: every segment of a flow reaches the same shard, so
//     each flow sees its bytes strictly in capture order and produces
//     exactly the matches the sequential scanner would. Only the global
//     interleaving of *different* flows' matches is nondeterministic.
//   - Bounded memory: per-shard queues are bounded (block or drop, by
//     config), flow tables are capped with LRU eviction, and idle flows
//     are swept on a logical clock.
//   - Fault isolation: a panic inside a shard (a poisoned flow hitting a
//     matcher bug) quarantines that one flow and the shard keeps
//     serving; a shard that exhausts its crash budget is marked
//     unhealthy and drop-counts its traffic instead of crashing the
//     process. See shard.go.
//   - Graceful degradation: watermarks on aggregate queue depth and
//     flow-table occupancy step the engine through a documented ladder
//     (normal → soft → hard) instead of letting it fall over. See
//     degrade.go and DESIGN.md §10.
//   - Deterministic shutdown: Close drains every queued segment before
//     returning, and Stats after Close is exact. CloseContext bounds the
//     drain with a deadline and reports per-shard progress when a shard
//     wedges. Handle calls may race with Close: they return ErrClosed,
//     never panic.
package engine

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"matchfilter/internal/core"
	"matchfilter/internal/flow"
	"matchfilter/internal/guard"
	"matchfilter/internal/pcap"
	"matchfilter/internal/telemetry"
	"matchfilter/internal/tenant"
)

// Match is one confirmed match attributed to a flow (alias of
// flow.Match so callers can share handlers between the sequential and
// sharded paths).
type Match = flow.Match

// ErrClosed is returned by HandleFrame after Close.
var ErrClosed = errors.New("engine: closed")

// Config sizes the engine.
type Config struct {
	// Shards is the number of shard goroutines (and private flow
	// tables). 0 means GOMAXPROCS.
	Shards int
	// QueueDepth bounds each shard's input queue (segments). 0 means 1024.
	QueueDepth int
	// DropWhenFull selects the overload policy: false (default) applies
	// backpressure — dispatch blocks until the shard drains; true drops
	// the segment and counts it in Stats.QueueDrops. Inline scanners
	// want backpressure; live-capture front-ends usually prefer drops.
	// Independent of this policy, the hard degradation tier drops at
	// dispatch with accounting (Stats.HardDrops).
	DropWhenFull bool
	// Flow configures each shard's reassembler. Flow.MaxFlows is a
	// per-shard cap, so the engine tracks at most Shards×MaxFlows flows.
	Flow flow.Config
	// BatchFlows, when > 1, switches each shard from scan-on-arrival to
	// batched lockstep scanning (DESIGN.md §18): after dequeuing a
	// segment the shard drains whatever else its queue already holds
	// (bounded), defers every in-order payload into a core.FlowBatcher
	// of this width (capped at core.MaxBatchFlows), and flushes once —
	// stepping up to BatchFlows independent flows' DFA walks in lockstep
	// so their transition loads overlap in the memory system. Match
	// streams per flow are byte-identical to the sequential path; only
	// cross-flow emission order changes (it was already nondeterministic
	// across shards). When fewer flows are ready the batcher degrades to
	// the plain single-flow scan. Ignored when Flow.NewBatcher is set
	// (the caller supplied its own batcher factory).
	BatchFlows int
	// IdleAfter evicts flows whose last segment is more than this many
	// segments in the past on the owning shard's clock. 0 disables
	// idle sweeping at the normal tier (degraded tiers still sweep, see
	// DegradedIdleAfter).
	IdleAfter int64
	// SweepEvery is how often (in segments) a shard runs its idle sweep.
	// 0 means 4096.
	SweepEvery int64
	// CrashBudget is how many recovered panics a shard tolerates before
	// it is marked unhealthy: its remaining and future segments are
	// drop-counted (Stats.UnhealthyDrops) instead of scanned, and the
	// engine keeps serving on the other shards. 0 means 8.
	CrashBudget int
	// SoftWatermark and HardWatermark are pressure thresholds in (0,1]
	// over max(queued/queueCapacity, liveFlows/flowCapacity); the flow
	// term only applies when Flow.MaxFlows > 0. Crossing soft triggers
	// aggressive idle eviction and shrinks reassembly buffers; crossing
	// hard additionally drops new segments at dispatch with accounting.
	// Tiers exit with hysteresis at 3/4 of their entry threshold.
	// 0 means 0.5 (soft) and 0.9 (hard).
	SoftWatermark float64
	HardWatermark float64
	// DegradedIdleAfter is the aggressive idle age (in segments) used
	// while at or above the soft tier. 0 means IdleAfter/4 when idle
	// sweeping is configured, else 1024.
	DegradedIdleAfter int64
	// StallDeadline arms the shard stall watchdog: a scan step that runs
	// longer than this is treated as a stall — the watchdog flags the
	// step, and when it finally returns the shard quarantines the
	// offending flow through the poison path (Stats.StallsRecovered).
	// 0 disables the watchdog. The heartbeat costs the hot path two
	// atomic stores per scanned segment and takes no locks.
	StallDeadline time.Duration
	// WedgeAfter escalates a stall that is still stuck: the shard is
	// marked wedged (and unhealthy), and dispatch sheds its traffic
	// with accounting (Stats.WedgeDrops) instead of queueing behind a
	// goroutine that may never return. If the step does eventually
	// return, the shard recovers: the flow is quarantined and the
	// wedged/unhealthy marks are lifted (crash budget permitting).
	// 0 means 4×StallDeadline.
	WedgeAfter time.Duration
	// MemPressure, when non-nil, is an external pressure signal in
	// [0,1] — usage over limit from the unified memory governor
	// (guard.Governor.Pressure) — folded into the degradation ladder's
	// pressure computation alongside queue and flow occupancy.
	MemPressure func() float64
	// Metrics, when non-nil, receives the engine's telemetry: callback
	// counters/gauges bridging the Stats counters, shared reassembly
	// gauges, and per-shard scan-latency histograms (the one metric the
	// hot path pays for directly — two monotonic clock reads and a
	// histogram observe per scanned segment; see EXPERIMENTS.md for the
	// measured overhead). The registry must not already hold metrics
	// from another engine: series names would collide.
	Metrics *telemetry.Registry
	// Events, when non-nil, receives every confirmed match as a bounded
	// ring entry (flow key, pattern id, byte offset) for the admin
	// /events endpoint. May be shared with other writers.
	Events *telemetry.EventRing
	// Tenants, when non-nil, enables multi-tenant serving (tenant.go):
	// dispatch admits nonzero-tagged segments only for tenants published
	// in the registry, shards serve per-tenant rule generations, and
	// matches on tenant flows feed the tenant's counters and event ring.
	// Wire it by building the registry first, passing it here, then
	// calling Registry.Bind(engine). Untagged traffic never touches it.
	Tenants *tenant.Registry
}

func (c *Config) setDefaults() {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = 4096
	}
	if c.CrashBudget <= 0 {
		c.CrashBudget = 8
	}
	if c.SoftWatermark <= 0 {
		c.SoftWatermark = 0.5
	}
	if c.HardWatermark <= 0 {
		c.HardWatermark = 0.9
	}
	if c.HardWatermark < c.SoftWatermark {
		c.HardWatermark = c.SoftWatermark
	}
	if c.DegradedIdleAfter <= 0 {
		if c.IdleAfter > 0 {
			c.DegradedIdleAfter = (c.IdleAfter + 3) / 4
		} else {
			c.DegradedIdleAfter = 1024
		}
	}
}

// Engine fans TCP segments out to per-shard flow scanners.
//
// HandleFrame/HandleSegment may be called from many goroutines
// concurrently; the match handler is invoked from shard goroutines (also
// concurrently) and must be safe for that. Close may race with in-flight
// Handle calls: once Close has begun, Handle calls return ErrClosed.
type Engine struct {
	cfg    Config
	shards []*shard
	wg     sync.WaitGroup

	// mu orders Handle calls against Close: dispatchers hold the read
	// side while touching shard channels, Close takes the write side to
	// flip closed and close the channels, so a send on a closed channel
	// is impossible by construction. A dispatcher blocked in a
	// backpressure send selects on closing as well — Close closes it
	// before taking the write lock, so a stalled shard's full queue can
	// never hold the read lock forever and wedge shutdown.
	mu        sync.RWMutex
	closed    bool
	closing   chan struct{} // closed at the start of Close, before the write lock
	closeOnce sync.Once
	drained   chan struct{} // closed when every shard goroutine has exited

	// gen is the pattern generation new flows start on (reload.go).
	// reloadMu serializes Reload/ReloadTenant/DropTenant calls.
	gen      atomic.Pointer[generation]
	reloadMu sync.Mutex

	// Tenant serving state (tenant.go): tenantCur maps tenant index to
	// its current generation so rebuilt assemblers replay the tenant
	// set; tenantUnknown counts tagged segments shed at dispatch because
	// their tenant is not published in Config.Tenants.
	tenantMu      sync.Mutex
	tenantCur     map[uint32]*generation
	tenantUnknown atomic.Int64

	skipped    atomic.Int64 // non-TCP frames
	queueDrops atomic.Int64 // segments dropped by DropWhenFull
	hardDrops  atomic.Int64 // segments dropped at dispatch by the hard tier

	// Stall watchdog (watchdog.go): dog polls the shards' heartbeats
	// when Config.StallDeadline is set; lastStallRecovery is the Unix
	// nanosecond of the most recent stall recovery, for the /healthz
	// degraded window.
	dog               *guard.Watchdog
	lastStallRecovery atomic.Int64

	// Memory accounting for the governor: flowGauges is always present
	// (registry-backed when Config.Metrics is set, bare atomics
	// otherwise) so BufferedBytes is exact; queuedBytes tracks payload
	// bytes of non-leased segments sitting in shard queues (leased
	// payloads are already accounted by their arena).
	flowGauges  *flow.Gauges
	queuedBytes atomic.Int64

	// Degradation ladder state (degrade.go).
	tier       atomic.Int32
	dispatches atomic.Int64
	evalEvery  int64
	queueCap   int
	flowCap    int
	tierMu     sync.Mutex
	tierSince  time.Time
	tierTime   [3]time.Duration
	tierEnters [3]int64
}

// New starts an engine with Shards goroutines. newRunner must be safe
// for concurrent use (engine compilations in this repository are; the
// per-flow state they return need not be). onMatch may be nil.
func New(cfg Config, newRunner func() flow.Runner, onMatch func(Match)) *Engine {
	cfg.setDefaults()
	// Shared exact reassembly gauges: every shard's assembler feeds the
	// same three atomics (flow.Gauges composes by addition). Registered
	// on the registry when one is configured; bare atomics otherwise, so
	// MemoryUsage is exact either way.
	var fg *flow.Gauges
	if cfg.Metrics != nil {
		fg = registerFlowGauges(cfg.Metrics)
	} else {
		fg = &flow.Gauges{
			LiveFlows:       &telemetry.Gauge{},
			PendingSegments: &telemetry.Gauge{},
			BufferedBytes:   &telemetry.Gauge{},
		}
	}
	cfg.Flow.Gauges = fg
	if cfg.BatchFlows > 1 && cfg.Flow.NewBatcher == nil {
		k := cfg.BatchFlows
		cfg.Flow.NewBatcher = func() flow.Batcher { return core.NewFlowBatcher(k) }
	}
	e := &Engine{
		cfg:       cfg,
		shards:    make([]*shard, cfg.Shards),
		closing:   make(chan struct{}),
		drained:   make(chan struct{}),
		queueCap:  cfg.Shards * cfg.QueueDepth,
		flowCap:   cfg.Shards * cfg.Flow.MaxFlows,
		tierSince: time.Now(),
	}
	e.flowGauges = fg
	// Generation 1 is the factory the engine was built with; Reload
	// installs successors.
	gen1 := &generation{id: 1, newRunner: newRunner}
	if cfg.Metrics != nil {
		gen1.live = registerGenerationGauge(cfg.Metrics, 1)
	}
	e.gen.Store(gen1)
	// Re-evaluate pressure well before any single queue can fill between
	// two evaluations; cheap enough that small queues check every call.
	e.evalEvery = int64(cfg.QueueDepth / 4)
	if e.evalEvery < 1 {
		e.evalEvery = 1
	}
	if e.evalEvery > 256 {
		e.evalEvery = 256
	}
	events := cfg.Events
	tenants := cfg.Tenants
	for i := range e.shards {
		s := &shard{
			idx:         i,
			in:          make(chan queued, cfg.QueueDepth),
			wake:        make(chan struct{}, 1),
			quarantined: make(map[pcap.FlowKey]struct{}),
			evClock:     events != nil,
			hb:          cfg.StallDeadline > 0,
			batching:    cfg.Flow.NewBatcher != nil,
		}
		// Matches fire on the shard goroutine only, so the one-entry
		// flow-string cache below needs no lock. Match-dense flows hit it
		// on every event after the first; formatting the key is the
		// dominant per-event cost otherwise.
		var lastKey pcap.FlowKey
		var lastFlow string
		shardMatch := func(m Match) {
			s.matches.Add(1)
			var tn *tenant.Tenant
			if tenants != nil && m.Flow.Tenant != 0 {
				tn = tenants.Lookup(m.Flow.Tenant)
			}
			if events != nil || tn != nil {
				if m.Flow != lastKey || lastFlow == "" {
					lastKey, lastFlow = m.Flow, m.Flow.String()
				}
				ev := telemetry.Event{TimeUnixNano: s.evNano, Flow: lastFlow, Pattern: m.ID, Offset: m.Pos}
				if events != nil {
					events.Add(ev)
				}
				if tn != nil {
					tn.CountMatch(ev)
				}
			}
			if onMatch != nil {
				onMatch(m)
			}
		}
		// rebuild consults the *current* generation — and the current
		// tenant set — so an assembler rebuilt after corruption — or
		// built fresh here — starts its flows on whatever pattern sets
		// are serving now, not the ones the engine booted with.
		s.rebuild = func() *flow.Assembler {
			g := e.gen.Load()
			a := flow.NewAssembler(cfg.Flow, g.newRunner, shardMatch)
			a.SetGeneration(g.flowGen(), false)
			e.installTenants(a)
			return a
		}
		s.asm = s.rebuild()
		s.publish()
		e.shards[i] = s
	}
	if cfg.StallDeadline > 0 {
		// Arm the watchdog before metrics registration (callbacks read
		// e.dog) and before the shard goroutines start. The watchdog's
		// own goroutine only reads heartbeat atomics, so starting it
		// against idle shards is safe.
		targets := make([]guard.Target, len(e.shards))
		for i, s := range e.shards {
			targets[i] = &shardTarget{e: e, s: s}
		}
		e.dog = guard.NewWatchdog(guard.WatchdogConfig{
			Deadline:   cfg.StallDeadline,
			WedgeAfter: cfg.WedgeAfter,
		}, targets...)
	}
	if cfg.Metrics != nil {
		// Register before the shard goroutines start: registration also
		// hands each shard its scan-latency histogram, and the goroutine
		// launch below is the publication barrier for that write.
		e.registerMetrics(cfg.Metrics)
	}
	for _, s := range e.shards {
		e.wg.Add(1)
		go s.run(e)
	}
	return e
}

// HandleFrame decodes one Ethernet frame and routes its segment to the
// owning shard. Non-TCP frames are counted and skipped; decode errors on
// TCP frames are returned. The frame's payload bytes are referenced until
// the shard has scanned them, so callers must not reuse the buffer
// (pcap.Reader allocates per packet and is safe).
func (e *Engine) HandleFrame(frame []byte) error {
	return e.HandleFrameOwned(frame, nil)
}

// HandleFrameOwned is HandleFrame for leased frame buffers: the engine
// takes ownership of owner on every path — skip, error, drop or scan —
// and releases it exactly once when the frame's bytes can no longer be
// referenced. This is the zero-copy handoff of the input pipeline
// (internal/input): sources lease buffers from a pool and the engine
// returns them after the shard has scanned the payload (the assembler
// copies any bytes it buffers, so post-scan release is safe).
func (e *Engine) HandleFrameOwned(frame []byte, owner pcap.Owner) error {
	seg, err := pcap.DecodeTCP(frame)
	if err != nil {
		release(owner)
		if errors.Is(err, pcap.ErrNotTCP) {
			e.skipped.Add(1)
			return nil
		}
		return err
	}
	return e.HandleSegmentOwned(seg, owner)
}

// HandleSegment routes one decoded segment to its flow's shard. It may
// race with Close: after Close has begun it returns ErrClosed.
func (e *Engine) HandleSegment(seg pcap.Segment) error {
	return e.HandleSegmentOwned(seg, nil)
}

// HandleSegmentOwned is HandleSegment for segments whose payload lives
// in a leased buffer. The engine owns owner from this call on and
// releases it exactly once, whether the segment is scanned or dropped
// (queue overflow, hard degradation tier, quarantine, closed engine).
func (e *Engine) HandleSegmentOwned(seg pcap.Segment, owner pcap.Owner) error {
	if e.dispatches.Add(1)%e.evalEvery == 0 {
		e.evalPressure()
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		release(owner)
		return ErrClosed
	}
	if Tier(e.tier.Load()) == TierHard {
		// Hard degradation: shed at the cheapest possible point, before
		// the segment touches a queue, and account for it.
		e.hardDrops.Add(1)
		release(owner)
		return nil
	}
	if seg.Key.Tenant != 0 {
		// Tagged segment: admit only while the tenant is published (one
		// lock-free index load). A tag with no registry, or one whose
		// tenant was deleted, is shed here with accounting — never
		// scanned under the wrong rule set. Untagged traffic skips this
		// entirely.
		if e.cfg.Tenants == nil || e.cfg.Tenants.Lookup(seg.Key.Tenant) == nil {
			e.tenantUnknown.Add(1)
			release(owner)
			return nil
		}
	}
	s := e.shards[shardIndex(seg.Key, len(e.shards))]
	if s.wedged.Load() {
		// The shard is stuck mid-scan past WedgeAfter: queueing behind a
		// goroutine that may never return would strand this buffer (and,
		// under backpressure, this dispatcher). Shed with accounting;
		// sibling shards are unaffected.
		s.wedgeDrops.Add(1)
		release(owner)
		return nil
	}
	q := queued{seg: seg, owner: owner}
	// Track non-leased payload bytes entering a queue (leased payloads
	// are accounted by their arena until released). Added before the
	// send and withdrawn by the shard at dequeue — or below on a drop.
	var nb int64
	if owner == nil && len(seg.Payload) > 0 {
		nb = int64(len(seg.Payload))
		e.queuedBytes.Add(nb)
	}
	if e.cfg.DropWhenFull {
		select {
		case s.in <- q:
		default:
			e.queueDrops.Add(1)
			e.queuedBytes.Add(-nb)
			release(owner)
		}
		return nil
	}
	// Backpressure: block until the shard drains — but never while
	// deaf to shutdown. This send holds e.mu's read side; a bare
	// blocking send against a stalled shard (faultinject.Stall, a
	// matcher wedged in user code) would pin the read lock forever and
	// CloseContext could neither take the write lock nor fire its
	// deadline. Selecting on closing bounds the hold: once Close
	// begins, blocked dispatchers return ErrClosed and release.
	select {
	case s.in <- q:
	case <-e.closing:
		e.queuedBytes.Add(-nb)
		release(owner)
		return ErrClosed
	}
	return nil
}

// MemoryUsage reports the bytes the engine currently holds that are not
// accounted elsewhere: reassembly buffers (exact, via the shared flow
// gauges) plus non-leased payload bytes parked in shard queues. It is
// the engine's component callback for the unified memory governor.
func (e *Engine) MemoryUsage() int64 {
	n := e.flowGauges.BufferedBytes.Value() + e.queuedBytes.Load()
	if e.cfg.Tenants != nil {
		// Tenant-attributed reassembly bytes answer to their own governor
		// components ("tenant:<id>"); subtract them so the engine
		// component does not double-bill the same buffers.
		if tb := e.cfg.Tenants.BufferedBytes(); tb < n {
			n -= tb
		}
	}
	return n
}

// LastStallRecovery reports when a stall was last recovered (a flagged
// scan step returned and its flow was quarantined); the zero time if
// never. The admin layer uses it for the /healthz degraded window.
func (e *Engine) LastStallRecovery() time.Time {
	n := e.lastStallRecovery.Load()
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

// release settles a leased buffer; nil means the payload was ordinarily
// allocated and the garbage collector owns it.
func release(o pcap.Owner) {
	if o != nil {
		o.Release()
	}
}

// shardIndex hashes a flow key onto a shard. All segments of a flow
// share a key, hence a shard — the flow-affinity guarantee. FNV-1a alone
// is not enough here: real traffic has sequential client addresses and
// ports whose parities correlate, which collapses `fnv % n` onto a few
// shards — so the hash is finished with a 64-bit avalanche (splitmix64's
// finalizer) that diffuses every input bit into the low bits the modulo
// looks at.
func shardIndex(k pcap.FlowKey, n int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, w := range [3]uint32{
		k.SrcIP, k.DstIP, uint32(k.SrcPort)<<16 | uint32(k.DstPort),
	} {
		for shift := 0; shift < 32; shift += 8 {
			h ^= uint64(byte(w >> shift))
			h *= prime64
		}
	}
	if k.Tenant != 0 {
		// Fold the tenant tag in so tenants replaying overlapping address
		// space spread independently; untagged traffic keeps its historic
		// shard mapping (and pays nothing here).
		for shift := 0; shift < 32; shift += 8 {
			h ^= uint64(byte(k.Tenant >> shift))
			h *= prime64
		}
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return int(h % uint64(n))
}

// Stats is a point-in-time engine snapshot, aggregated over shards. While
// the engine runs, per-shard counters may lag the hot path by a few dozen
// segments; after Close the snapshot is exact.
type Stats struct {
	Shards int
	// Aggregates of the per-shard reassembly counters (see flow.Stats).
	Packets       int64
	PayloadBytes  int64
	FlowsLive     int64
	FlowsTotal    int64
	OutOfOrder    int64
	DroppedSegs   int64
	EvictedCap    int64
	EvictedIdle   int64
	RunnersReused int64
	// Matches is the number of confirmed matches delivered (exact at all
	// times, unlike the mirrored reassembly counters).
	Matches int64
	// SkippedFrames counts non-TCP frames seen by HandleFrame.
	SkippedFrames int64
	// QueueDrops counts segments dropped under the DropWhenFull policy.
	QueueDrops int64
	// QueueDepth is the instantaneous total of queued segments.
	QueueDepth int64
	// ShardMatches and ShardPackets expose the per-shard balance.
	ShardMatches []int64
	ShardPackets []int64

	// Fault-isolation counters (shard.go).
	//
	// PoisonedFlows counts flows quarantined after a panic inside their
	// matcher; PoisonedDrops counts later segments of quarantined flows,
	// dropped without scanning. ShardPanics counts every recovered panic,
	// ShardRestarts the rarer assembler rebuilds (a panic during flow
	// excision, i.e. assembler-wide corruption), and LostFlows the live
	// flows discarded by those rebuilds. UnhealthyShards counts shards
	// that exhausted their crash budget; their traffic lands in
	// UnhealthyDrops.
	PoisonedFlows   int64
	PoisonedDrops   int64
	ShardPanics     int64
	ShardRestarts   int64
	LostFlows       int64
	UnhealthyShards int
	UnhealthyDrops  int64

	// Stall-watchdog state (watchdog.go). StallFires counts scan steps
	// flagged past StallDeadline; StallsRecovered counts flagged steps
	// that returned and had their flow quarantined. WedgedShards is the
	// shards currently stuck past WedgeAfter; WedgeDrops counts
	// segments shed at dispatch because their shard was wedged.
	// QueuedBytes is the engine's non-leased queued payload footprint.
	StallFires      int64
	StallsRecovered int64
	WedgedShards    int
	WedgeDrops      int64
	QueuedBytes     int64

	// Degradation-ladder state (degrade.go). Tier is the current tier;
	// TierEnters counts entries into each tier and TierTime the
	// cumulative wall-clock time spent there (index by Tier). HardDrops
	// counts segments shed at dispatch while at the hard tier.
	Tier       Tier
	HardDrops  int64
	TierEnters [3]int64
	TierTime   [3]time.Duration

	// Hot-reload state (reload.go). Generation is the id new flows
	// start on; GenFlows maps generation id to the live flows still on
	// it (drain-mode flows keep old generations alive until they end).
	// FlowRestarts counts 4-tuple-reuse flow restarts; StaleRunners
	// counts superseded-generation runners discarded instead of
	// recycled.
	Generation   uint64
	GenFlows     map[uint64]int64
	FlowRestarts int64
	StaleRunners int64

	// Multi-tenant serving (tenant.go). TenantDrops counts segments
	// refused inside shard assemblers by tenant policy (quota overrun or
	// an unknown tag that raced a delete through a queue); the
	// per-tenant split lives in each tenant's own counters.
	// UnknownTenantDrops counts tagged segments shed at dispatch because
	// their tenant was not published.
	TenantDrops        int64
	UnknownTenantDrops int64
}

// Stats aggregates the engine's counters.
func (e *Engine) Stats() Stats {
	st := Stats{
		Shards:        len(e.shards),
		Generation:    e.gen.Load().id,
		SkippedFrames: e.skipped.Load(),
		QueueDrops:    e.queueDrops.Load(),
		HardDrops:     e.hardDrops.Load(),
		ShardMatches:  make([]int64, len(e.shards)),
		ShardPackets:  make([]int64, len(e.shards)),
	}
	st.UnknownTenantDrops = e.tenantUnknown.Load()
	for i, s := range e.shards {
		a := s.snap.Load()
		st.Packets += a.Packets
		st.PayloadBytes += a.PayloadBytes
		st.FlowsLive += int64(a.Flows)
		st.FlowsTotal += a.FlowsTotal
		st.OutOfOrder += a.OutOfOrder
		st.DroppedSegs += a.DroppedSegs
		st.EvictedCap += a.EvictedCap
		st.EvictedIdle += a.EvictedIdle
		st.RunnersReused += a.RunnersReused
		st.FlowRestarts += a.FlowRestarts
		st.StaleRunners += a.StaleRunners
		st.TenantDrops += a.TenantDrops
		for id, n := range a.FlowsByGen {
			if st.GenFlows == nil {
				st.GenFlows = make(map[uint64]int64)
			}
			st.GenFlows[id] += n
		}
		st.QueueDepth += int64(len(s.in))
		st.ShardMatches[i] = s.matches.Load()
		st.ShardPackets[i] = a.Packets
		st.Matches += st.ShardMatches[i]

		st.PoisonedFlows += s.poisoned.Load()
		st.PoisonedDrops += s.poisonedDrops.Load()
		st.ShardPanics += s.panics.Load()
		st.ShardRestarts += s.restarts.Load()
		st.LostFlows += s.lostFlows.Load()
		st.UnhealthyDrops += s.unhealthyDrops.Load()
		if s.unhealthy.Load() {
			st.UnhealthyShards++
		}
		st.StallsRecovered += s.stallRecovered.Load()
		st.WedgeDrops += s.wedgeDrops.Load()
		if s.wedged.Load() {
			st.WedgedShards++
		}
	}
	if e.dog != nil {
		st.StallFires = e.dog.Fires()
	}
	st.QueuedBytes = e.queuedBytes.Load()
	e.tierMu.Lock()
	st.Tier = Tier(e.tier.Load())
	st.TierEnters = e.tierEnters
	st.TierTime = e.tierTime
	st.TierTime[st.Tier] += time.Since(e.tierSince)
	e.tierMu.Unlock()
	return st
}

// ScanPcap reads a full capture from r and scans it through a fresh
// engine, closing it when the capture ends. It is the concurrent
// counterpart of flow.ScanPcap: same per-flow match sets, N-way
// parallel. onMatch is called from shard goroutines.
func ScanPcap(r io.Reader, cfg Config, newRunner func() flow.Runner, onMatch func(Match)) (Stats, error) {
	pr, err := pcap.NewReader(r)
	if err != nil {
		return Stats{}, err
	}
	e := New(cfg, newRunner, onMatch)
	defer e.Close()
	for {
		pkt, err := pr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			e.Close()
			return e.Stats(), fmt.Errorf("engine: %w", err)
		}
		if err := e.HandleFrame(pkt.Data); err != nil {
			e.Close()
			return e.Stats(), fmt.Errorf("engine: %w", err)
		}
	}
	e.Close()
	return e.Stats(), nil
}
