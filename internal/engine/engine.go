// Package engine is the sharded, concurrent session engine: the scaling
// layer the paper's §III-B flow model makes possible. Because a flow's
// entire matching context is the tiny (q, m) pair, flows are independent
// and embarrassingly parallel — the engine demultiplexes TCP segments by
// hash(FlowKey) onto N shard goroutines, each owning a private
// flow.Assembler (flow table, runner pool, reassembly buffers) that it
// alone touches. The hot path takes no locks: dispatch is one hash and
// one bounded-channel send; everything after that is shard-local.
//
// Guarantees:
//
//   - Flow affinity: every segment of a flow reaches the same shard, so
//     each flow sees its bytes strictly in capture order and produces
//     exactly the matches the sequential scanner would. Only the global
//     interleaving of *different* flows' matches is nondeterministic.
//   - Bounded memory: per-shard queues are bounded (block or drop, by
//     config), flow tables are capped with LRU eviction, and idle flows
//     are swept on a logical clock.
//   - Deterministic shutdown: Close drains every queued segment before
//     returning, and Stats after Close is exact.
package engine

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"matchfilter/internal/flow"
	"matchfilter/internal/pcap"
)

// Match is one confirmed match attributed to a flow (alias of
// flow.Match so callers can share handlers between the sequential and
// sharded paths).
type Match = flow.Match

// ErrClosed is returned by HandleFrame after Close.
var ErrClosed = errors.New("engine: closed")

// Config sizes the engine.
type Config struct {
	// Shards is the number of shard goroutines (and private flow
	// tables). 0 means GOMAXPROCS.
	Shards int
	// QueueDepth bounds each shard's input queue (segments). 0 means 1024.
	QueueDepth int
	// DropWhenFull selects the overload policy: false (default) applies
	// backpressure — dispatch blocks until the shard drains; true drops
	// the segment and counts it in Stats.QueueDrops. Inline scanners
	// want backpressure; live-capture front-ends usually prefer drops.
	DropWhenFull bool
	// Flow configures each shard's reassembler. Flow.MaxFlows is a
	// per-shard cap, so the engine tracks at most Shards×MaxFlows flows.
	Flow flow.Config
	// IdleAfter evicts flows whose last segment is more than this many
	// segments in the past on the owning shard's clock. 0 disables
	// idle sweeping.
	IdleAfter int64
	// SweepEvery is how often (in segments) a shard runs its idle sweep.
	// 0 means 4096.
	SweepEvery int64
}

func (c *Config) setDefaults() {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = 4096
	}
}

// Engine fans TCP segments out to per-shard flow scanners.
//
// HandleFrame/HandleSegment may be called from many goroutines
// concurrently; the match handler is invoked from shard goroutines (also
// concurrently) and must be safe for that. Close must not race with
// in-flight Handle calls — stop producers first.
type Engine struct {
	cfg    Config
	shards []*shard
	wg     sync.WaitGroup

	closed     atomic.Bool
	skipped    atomic.Int64 // non-TCP frames
	queueDrops atomic.Int64 // segments dropped by DropWhenFull
}

// New starts an engine with Shards goroutines. newRunner must be safe
// for concurrent use (engine compilations in this repository are; the
// per-flow state they return need not be). onMatch may be nil.
func New(cfg Config, newRunner func() flow.Runner, onMatch func(Match)) *Engine {
	cfg.setDefaults()
	e := &Engine{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	for i := range e.shards {
		s := &shard{in: make(chan pcap.Segment, cfg.QueueDepth)}
		shardMatch := func(m Match) {
			s.matches.Add(1)
			if onMatch != nil {
				onMatch(m)
			}
		}
		s.asm = flow.NewAssembler(cfg.Flow, newRunner, shardMatch)
		s.publish()
		e.shards[i] = s
		e.wg.Add(1)
		go s.run(&e.wg, cfg.IdleAfter, cfg.SweepEvery)
	}
	return e
}

// HandleFrame decodes one Ethernet frame and routes its segment to the
// owning shard. Non-TCP frames are counted and skipped; decode errors on
// TCP frames are returned. The frame's payload bytes are referenced until
// the shard has scanned them, so callers must not reuse the buffer
// (pcap.Reader allocates per packet and is safe).
func (e *Engine) HandleFrame(frame []byte) error {
	seg, err := pcap.DecodeTCP(frame)
	if err != nil {
		if errors.Is(err, pcap.ErrNotTCP) {
			e.skipped.Add(1)
			return nil
		}
		return err
	}
	return e.HandleSegment(seg)
}

// HandleSegment routes one decoded segment to its flow's shard.
func (e *Engine) HandleSegment(seg pcap.Segment) error {
	if e.closed.Load() {
		return ErrClosed
	}
	s := e.shards[shardIndex(seg.Key, len(e.shards))]
	if e.cfg.DropWhenFull {
		select {
		case s.in <- seg:
		default:
			e.queueDrops.Add(1)
		}
		return nil
	}
	s.in <- seg
	return nil
}

// Close stops intake, drains every shard's queue, and waits for the
// shard goroutines to exit. After Close, Stats is exact and Handle calls
// return ErrClosed. Close is idempotent but must not be called
// concurrently with Handle calls.
func (e *Engine) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	for _, s := range e.shards {
		close(s.in)
	}
	e.wg.Wait()
	return nil
}

// shardIndex hashes a flow key onto a shard. All segments of a flow
// share a key, hence a shard — the flow-affinity guarantee. FNV-1a alone
// is not enough here: real traffic has sequential client addresses and
// ports whose parities correlate, which collapses `fnv % n` onto a few
// shards — so the hash is finished with a 64-bit avalanche (splitmix64's
// finalizer) that diffuses every input bit into the low bits the modulo
// looks at.
func shardIndex(k pcap.FlowKey, n int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, w := range [3]uint32{
		k.SrcIP, k.DstIP, uint32(k.SrcPort)<<16 | uint32(k.DstPort),
	} {
		for shift := 0; shift < 32; shift += 8 {
			h ^= uint64(byte(w >> shift))
			h *= prime64
		}
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return int(h % uint64(n))
}

// shard is one goroutine's private scanning lane.
type shard struct {
	in  chan pcap.Segment
	asm *flow.Assembler

	// matches is updated on every confirmed match; snap mirrors the
	// assembler's counters every statsEvery segments and at exit, so
	// outside observers never touch the assembler itself.
	matches atomic.Int64
	snap    atomic.Pointer[flow.Stats]
}

// statsEvery is how often (in segments) a shard refreshes its published
// stats snapshot. Snapshots are therefore at most this stale while the
// engine runs; Close publishes a final exact snapshot.
const statsEvery = 64

func (s *shard) publish() {
	st := s.asm.Stats()
	s.snap.Store(&st)
}

func (s *shard) run(wg *sync.WaitGroup, idleAfter, sweepEvery int64) {
	defer wg.Done()
	var n int64
	for seg := range s.in {
		s.asm.HandleSegment(seg)
		n++
		if idleAfter > 0 && n%sweepEvery == 0 {
			s.asm.EvictIdle(idleAfter)
		}
		if n%statsEvery == 0 {
			s.publish()
		}
	}
	s.publish()
}

// Stats is a point-in-time engine snapshot, aggregated over shards. While
// the engine runs, per-shard counters may lag the hot path by a few dozen
// segments; after Close the snapshot is exact.
type Stats struct {
	Shards int
	// Aggregates of the per-shard reassembly counters (see flow.Stats).
	Packets       int64
	PayloadBytes  int64
	FlowsLive     int64
	FlowsTotal    int64
	OutOfOrder    int64
	DroppedSegs   int64
	EvictedCap    int64
	EvictedIdle   int64
	RunnersReused int64
	// Matches is the number of confirmed matches delivered (exact at all
	// times, unlike the mirrored reassembly counters).
	Matches int64
	// SkippedFrames counts non-TCP frames seen by HandleFrame.
	SkippedFrames int64
	// QueueDrops counts segments dropped under the DropWhenFull policy.
	QueueDrops int64
	// QueueDepth is the instantaneous total of queued segments.
	QueueDepth int64
	// ShardMatches and ShardPackets expose the per-shard balance.
	ShardMatches []int64
	ShardPackets []int64
}

// Stats aggregates the engine's counters.
func (e *Engine) Stats() Stats {
	st := Stats{
		Shards:        len(e.shards),
		SkippedFrames: e.skipped.Load(),
		QueueDrops:    e.queueDrops.Load(),
		ShardMatches:  make([]int64, len(e.shards)),
		ShardPackets:  make([]int64, len(e.shards)),
	}
	for i, s := range e.shards {
		a := s.snap.Load()
		st.Packets += a.Packets
		st.PayloadBytes += a.PayloadBytes
		st.FlowsLive += int64(a.Flows)
		st.FlowsTotal += a.FlowsTotal
		st.OutOfOrder += a.OutOfOrder
		st.DroppedSegs += a.DroppedSegs
		st.EvictedCap += a.EvictedCap
		st.EvictedIdle += a.EvictedIdle
		st.RunnersReused += a.RunnersReused
		st.QueueDepth += int64(len(s.in))
		st.ShardMatches[i] = s.matches.Load()
		st.ShardPackets[i] = a.Packets
		st.Matches += st.ShardMatches[i]
	}
	return st
}

// ScanPcap reads a full capture from r and scans it through a fresh
// engine, closing it when the capture ends. It is the concurrent
// counterpart of flow.ScanPcap: same per-flow match sets, N-way
// parallel. onMatch is called from shard goroutines.
func ScanPcap(r io.Reader, cfg Config, newRunner func() flow.Runner, onMatch func(Match)) (Stats, error) {
	pr, err := pcap.NewReader(r)
	if err != nil {
		return Stats{}, err
	}
	e := New(cfg, newRunner, onMatch)
	defer e.Close()
	for {
		pkt, err := pr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			e.Close()
			return e.Stats(), fmt.Errorf("engine: %w", err)
		}
		if err := e.HandleFrame(pkt.Data); err != nil {
			e.Close()
			return e.Stats(), fmt.Errorf("engine: %w", err)
		}
	}
	e.Close()
	return e.Stats(), nil
}
