// Zero-downtime pattern-set hot reload.
//
// A long-lived daemon cannot restart to pick up a new rule set, and the
// paper's flow model says it never needs to: per-flow matching state is
// an opaque context tied to the automaton that created it, so swapping
// automata is just swapping runner factories. The engine versions those
// factories as *generations*. Reload installs generation N+1 atomically
// for dispatch purposes — the factory the shards consult lives in one
// atomic pointer — and then delivers a swap command to every shard,
// which applies it on its own goroutine between segments (shards own
// their assemblers exclusively; nothing else may touch them). From the
// moment a shard applies the command, every flow it creates runs the
// new generation; what happens to flows already in flight is the
// ReloadPolicy:
//
//   - ReloadDrain: in-flight flows keep matching on the generation they
//     started with until they end (FIN/RST, eviction, idle sweep). No
//     flow is dropped and no in-flight match stream is perturbed — the
//     old automaton stays referenced until its last flow drains, then
//     becomes garbage.
//   - ReloadReset: in-flight flows restart matching on the new
//     generation immediately (TCP reassembly state is preserved;
//     matcher state restarts from q0). Matches already confirmed stand;
//     partially-advanced old-generation state is discarded.
//
// Either way the per-shard runner free lists are emptied on swap, so a
// recycled runner compiled for a superseded automaton can never serve a
// new flow (flow.SetGeneration), and validation of the *candidate*
// automaton — decode plus a self-check scan — is the caller's job
// before Reload is invoked (core.MFA.SelfCheck; cmd/mfaserve wires it).
//
// Reload itself never blocks on shard queues: commands land in per-shard
// atomic slots with a non-blocking wake, so a reload completes promptly
// even against a backlogged or stalled shard (the stalled shard applies
// the swap when it next breathes — its flows are exactly the ones a
// drain policy would leave on the old generation anyway).

package engine

import (
	"errors"
	"fmt"
	"strconv"

	"matchfilter/internal/flow"
	"matchfilter/internal/telemetry"
)

// ReloadPolicy selects what happens to in-flight flows when Reload
// installs a new generation.
type ReloadPolicy int

const (
	// ReloadDrain lets existing flows finish on the generation they
	// started with; only new flows use the new one. Zero disruption.
	ReloadDrain ReloadPolicy = iota
	// ReloadReset restarts every existing flow's matching state on the
	// new generation immediately.
	ReloadReset
)

func (p ReloadPolicy) String() string {
	switch p {
	case ReloadDrain:
		return "drain"
	case ReloadReset:
		return "reset"
	default:
		return fmt.Sprintf("ReloadPolicy(%d)", int(p))
	}
}

// ParseReloadPolicy maps the flag spellings to a policy.
func ParseReloadPolicy(s string) (ReloadPolicy, error) {
	switch s {
	case "drain":
		return ReloadDrain, nil
	case "reset":
		return ReloadReset, nil
	default:
		return 0, fmt.Errorf("engine: unknown reload policy %q (want drain or reset)", s)
	}
}

// generation is one installed runner factory. Engine.gen always points
// at the newest; shards hold older ones alive through their assemblers
// until the last drain-mode flow ends.
type generation struct {
	id        uint64
	newRunner func() flow.Runner
	live      *telemetry.Gauge // per-generation live-flow gauge; may be nil
	// acct is the owning tenant's accounting block, handed to
	// flow.SetTenantGeneration so shards enforce that tenant's quotas;
	// nil for the default (tenant-0) rule set, which is unquota'd here
	// (the engine-wide governor covers it).
	acct *flow.TenantAcct
}

// flowGen is the generation in the shape flow.SetGeneration consumes.
func (g *generation) flowGen() flow.Generation {
	return flow.Generation{ID: g.id, New: g.newRunner, Live: g.live}
}

// genCommand is one pending swap, delivered to every shard.
type genCommand struct {
	gen   *generation
	reset bool
}

// Generation reports the id of the generation new flows start on. It
// begins at 1 and bumps on every successful Reload.
func (e *Engine) Generation() uint64 { return e.gen.Load().id }

// Reload atomically installs newRunner as the next pattern generation
// and delivers the swap to every shard. It returns the new generation
// id. Segments dispatched after Reload returns are guaranteed to see
// the swap before they are scanned (shards apply pending commands
// before each segment), so a flow whose first segment arrives after a
// reload always starts on the new generation. Reload never waits on
// shard queues and is safe to call concurrently with Handle calls;
// concurrent Reloads serialize. After Close it returns ErrClosed.
//
// Validation is deliberately not Reload's job: callers must vet the
// candidate (decode + core.MFA.SelfCheck or equivalent) first, so that
// a bad rules file is rejected while the running generation keeps
// serving untouched.
func (e *Engine) Reload(newRunner func() flow.Runner, policy ReloadPolicy) (uint64, error) {
	if newRunner == nil {
		return 0, errors.New("engine: reload with nil runner factory")
	}
	e.reloadMu.Lock()
	defer e.reloadMu.Unlock()
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return 0, ErrClosed
	}
	next := &generation{id: e.gen.Load().id + 1, newRunner: newRunner}
	if e.cfg.Metrics != nil {
		next.live = registerGenerationGauge(e.cfg.Metrics, next.id)
	}
	e.gen.Store(next)
	cmd := &genCommand{gen: next, reset: policy == ReloadReset}
	for _, s := range e.shards {
		s.genCmd.Store(cmd)
		select {
		case s.wake <- struct{}{}:
		default: // a wake is already pending; the shard will see the newest command
		}
	}
	return next.id, nil
}

// applyGeneration consumes a pending swap command, if any. Runs on the
// shard goroutine only.
func (s *shard) applyGeneration(e *Engine) {
	cmd := s.genCmd.Swap(nil)
	if cmd == nil {
		return
	}
	s.asm.SetGeneration(cmd.gen.flowGen(), cmd.reset)
	s.publish()
}

// registerGenerationGauge creates the exact live-flow gauge for one
// generation, labelled by id. Superseded generations read 0 once their
// flows drain; the series stays registered (one per reload) so a scrape
// can watch a drain complete.
func registerGenerationGauge(reg *telemetry.Registry, id uint64) *telemetry.Gauge {
	return reg.Gauge("mfa_generation_live_flows",
		"Live flows on each pattern generation (exact; drained generations read 0).",
		telemetry.L("generation", strconv.FormatUint(id, 10)))
}
