package engine

// Shard-scaling benchmarks. The dispatch work (decode + hash + channel
// send) is measured apart from the scan work so the scaling headroom is
// visible: on a multi-core host the scan parallelizes across shards
// while dispatch stays a single producer. Numbers are recorded in
// EXPERIMENTS.md ("Shard scaling").

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	"matchfilter/internal/flow"
	"matchfilter/internal/pcap"
	"matchfilter/internal/telemetry"
)

// benchCapture builds a 32-flow interleaved capture and pre-decodes its
// segments so the benchmark loop measures dispatch + scan, not pcap
// parsing.
func benchCapture(b *testing.B) (segs []pcap.Segment, payload int64) {
	b.Helper()
	capture := interleavedCapture(b, 32, 32<<10,
		[]string{"attack", "payload", "evil", "string", "xmrig"})
	pr, err := pcap.NewReader(bytes.NewReader(capture))
	if err != nil {
		b.Fatal(err)
	}
	for {
		pkt, err := pr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			b.Fatal(err)
		}
		seg, err := pcap.DecodeTCP(pkt.Data)
		if err != nil {
			continue
		}
		segs = append(segs, seg)
		payload += int64(len(seg.Payload))
	}
	return segs, payload
}

// BenchmarkShardScaling scans the same pre-decoded capture through 1, 2,
// 4 and 8 shards. Throughput (MB/s column) versus the shards=1 row is
// the scaling curve; on a single-core host expect ≈1× with a small
// channel-handoff tax, on N cores up to ≈N×.
func BenchmarkShardScaling(b *testing.B) {
	m := buildMFA(b, "attack.*payload", "evil[^\n]*string", "xmrig")
	segs, payload := benchCapture(b)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.SetBytes(payload)
			for i := 0; i < b.N; i++ {
				e := New(Config{Shards: shards, QueueDepth: 4096},
					func() flow.Runner { return m.NewRunner() }, nil)
				for _, seg := range segs {
					if err := e.HandleSegment(seg); err != nil {
						b.Fatal(err)
					}
				}
				if err := e.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSequentialBaseline is the flow.Assembler equivalent of the
// shards=1 row, without any queueing: the cost floor the engine's
// dispatch layer is measured against.
func BenchmarkSequentialBaseline(b *testing.B) {
	m := buildMFA(b, "attack.*payload", "evil[^\n]*string", "xmrig")
	segs, payload := benchCapture(b)
	b.SetBytes(payload)
	for i := 0; i < b.N; i++ {
		a := flow.NewAssembler(flow.Config{}, func() flow.Runner { return m.NewRunner() }, nil)
		for _, seg := range segs {
			a.HandleSegment(seg)
		}
	}
}

// BenchmarkDispatchOnly isolates the engine's routing overhead: hash +
// bounded-channel send to a shard that discards instantly. It bounds the
// per-segment tax the sharding layer adds over the sequential scanner.
func BenchmarkDispatchOnly(b *testing.B) {
	segs, payload := benchCapture(b)
	e := New(Config{Shards: 4, QueueDepth: 4096},
		func() flow.Runner { return nopRunner{} }, nil)
	defer e.Close()
	b.SetBytes(payload)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, seg := range segs {
			if err := e.HandleSegment(seg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

type nopRunner struct{}

func (nopRunner) Feed(data []byte, onMatch func(int32, int64)) {}
func (nopRunner) Reset()                                       {}

// BenchmarkShardScalingInstrumented repeats the shard-scaling
// measurement with telemetry attached — the delta against
// BenchmarkShardScaling is the scan-path cost of instrumentation. Two
// modes separate the per-segment cost from the per-match cost:
//
//   - metrics: registry only — per-segment latency observation on each
//     shard plus atomic reassembly-gauge accounting in the assembler.
//     This is the cost every deployment pays.
//   - metrics+events: adds the match-event ring. The bench capture is
//     adversarially match-dense (a match every ~130 payload bytes, salted
//     with the patterns' own literals), so this mode bounds the per-event
//     cost from above; realistic traffic with rare true matches pays the
//     metrics-only figure.
//
// EXPERIMENTS.md ("Instrumentation overhead") records the measured
// numbers; the budget for the always-on metrics mode is <= 3%.
func BenchmarkShardScalingInstrumented(b *testing.B) {
	m := buildMFA(b, "attack.*payload", "evil[^\n]*string", "xmrig")
	segs, payload := benchCapture(b)
	for _, mode := range []string{"metrics", "metrics+events"} {
		for _, shards := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/shards=%d", mode, shards), func(b *testing.B) {
				b.SetBytes(payload)
				for i := 0; i < b.N; i++ {
					cfg := Config{
						Shards:     shards,
						QueueDepth: 4096,
						Metrics:    telemetry.NewRegistry(),
					}
					if mode == "metrics+events" {
						cfg.Events = telemetry.NewEventRing(1024)
					}
					e := New(cfg, func() flow.Runner { return m.NewRunner() }, nil)
					for _, seg := range segs {
						if err := e.HandleSegment(seg); err != nil {
							b.Fatal(err)
						}
					}
					if err := e.Close(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
