// Shard-side adapter for the guard stall watchdog.
//
// Policy lives here, detection in internal/guard: the watchdog tells us
// a shard's scan step has run past StallDeadline (stall) or WedgeAfter
// (wedge), and this adapter translates that into the engine's existing
// fault vocabulary — the poison path for the flow, the unhealthy mark
// for the shard. The division of labor with the shard goroutine is
// deliberate: the watchdog goroutine never touches the quarantine map
// or the assembler (both shard-private); it only stores the flagged
// sequence number (stall) or flips atomics dispatch already reads
// (wedge). The shard itself performs the quarantine when the stuck step
// finally returns — see shard.recoverStall — because only it knows the
// offending flow key and only it may mutate its assembler.
package engine

// shardTarget implements guard.Target for one shard.
type shardTarget struct {
	e *Engine
	s *shard
}

// Beat exposes the shard's heartbeat atomics (see shard.run for the
// writer's ordering).
func (t *shardTarget) Beat() (seq, startNano int64) {
	return t.s.hbSeq.Load(), t.s.hbStart.Load()
}

// Stall remembers the flagged step. When the step returns, the shard
// compares this against its own sequence and quarantines the flow.
func (t *shardTarget) Stall(seq int64) {
	t.s.stalledSeq.Store(seq)
}

// Wedge fails the shard over: dispatch starts shedding its traffic
// (wedgeDrops) and the shard counts as unhealthy for /healthz and exit
// codes. Re-checks the heartbeat first — the step may have completed
// between the watchdog's poll and this call, and a live shard must not
// be benched for a stall it already survived (recoverStall handles
// that case when the step's return races this store: it clears both
// marks after the swap below, because it runs strictly after the step
// it recovers).
func (t *shardTarget) Wedge(seq int64) {
	if t.s.hbStart.Load() == 0 || t.s.hbSeq.Load() != seq {
		return
	}
	t.s.wedged.Store(true)
	t.s.unhealthy.Store(true)
}
