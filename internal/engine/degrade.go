// Graceful-degradation ladder.
//
// A DPI engine's worth is decided under hostile load, not at peak
// throughput: when traffic outruns the scanners the failure mode must be
// a documented, accounted, reversible loss of service — never an OOM
// kill or an unbounded latency cliff. The engine therefore tracks one
// scalar "pressure" signal — the worst of aggregate queue occupancy and
// flow-table occupancy — and steps through three tiers:
//
//	normal  full service: buffered reassembly, configured idle policy.
//	soft    pressure ≥ SoftWatermark: shards shrink per-flow
//	        out-of-order buffers (dropping the excess, counted) and
//	        sweep idle flows aggressively on a short clock. Scanning
//	        continues for every segment; matches on in-order traffic are
//	        unaffected.
//	hard    pressure ≥ HardWatermark: dispatch drops new segments with
//	        accounting (Stats.HardDrops) before they touch a queue, so
//	        queued work drains and memory recedes. Already-queued
//	        segments are still scanned.
//
// Tiers exit with hysteresis at 3/4 of their entry threshold so the
// ladder doesn't flap at a boundary. Pressure is evaluated on the
// dispatch path every evalEvery segments and by each shard every
// statsEvery segments, so the ladder steps down as queues drain even if
// producers have gone quiet. Every transition is counted and timed in
// Stats (TierEnters, TierTime).
package engine

import "time"

// Tier is a degradation level. Higher is more degraded.
type Tier int32

const (
	TierNormal Tier = iota
	TierSoft
	TierHard
)

func (t Tier) String() string {
	switch t {
	case TierNormal:
		return "normal"
	case TierSoft:
		return "soft"
	case TierHard:
		return "hard"
	default:
		return "unknown"
	}
}

// pressure computes the load signal in [0,1]: the worst of queue
// occupancy, (when flow tables are capped) flow-table occupancy, and
// (when a memory governor is wired in) governed memory usage over its
// ceiling — so the ladder reacts to an approaching -max-memory limit
// exactly as it reacts to a filling queue.
func (e *Engine) pressure() float64 {
	queued := 0
	for _, s := range e.shards {
		queued += len(s.in)
	}
	p := float64(queued) / float64(e.queueCap)
	if e.flowCap > 0 {
		var live int64
		for _, s := range e.shards {
			live += int64(s.snap.Load().Flows)
		}
		if fp := float64(live) / float64(e.flowCap); fp > p {
			p = fp
		}
	}
	if e.cfg.MemPressure != nil {
		if mp := e.cfg.MemPressure(); mp > p {
			p = mp
		}
	}
	return p
}

// evalPressure recomputes the tier from current pressure, applying exit
// hysteresis, and records the transition (count and wall-clock time per
// tier) under tierMu.
func (e *Engine) evalPressure() {
	e.tierMu.Lock()
	defer e.tierMu.Unlock()
	p := e.pressure()
	soft, hard := e.cfg.SoftWatermark, e.cfg.HardWatermark
	cur := Tier(e.tier.Load())
	next := cur
	switch cur {
	case TierNormal:
		if p >= hard {
			next = TierHard
		} else if p >= soft {
			next = TierSoft
		}
	case TierSoft:
		if p >= hard {
			next = TierHard
		} else if p < soft*0.75 {
			next = TierNormal
		}
	case TierHard:
		if p < hard*0.75 {
			if p < soft*0.75 {
				next = TierNormal
			} else {
				next = TierSoft
			}
		}
	}
	if next == cur {
		return
	}
	now := time.Now()
	e.tierTime[cur] += now.Sub(e.tierSince)
	e.tierSince = now
	e.tierEnters[next]++
	e.tier.Store(int32(next))
}
