// Deadline-bounded shutdown.
//
// Close drains every queue before returning — the right default for
// batch scans, but a liveness hazard for a daemon: one wedged shard (a
// matcher stuck in user code, a poisoned flow looping) would hang the
// process forever on exit. CloseContext bounds the drain with a
// context; on expiry it returns a ShutdownError that wraps ctx.Err()
// and carries exact per-shard drain progress, so the operator's logs
// say *which* shard wedged and how much work it still held.
package engine

import (
	"context"
	"fmt"
	"strings"
)

// ShardDrain is one shard's shutdown progress.
type ShardDrain struct {
	Shard     int   // shard index
	Queued    int   // segments still waiting in the shard's queue
	Processed int64 // segments the shard has consumed (scanned or drop-counted)
	Done      bool  // the shard goroutine has exited
}

// ShutdownError reports an incomplete drain: the deadline expired while
// at least one shard still held queued segments. It wraps the context's
// error, so errors.Is(err, context.DeadlineExceeded) works.
type ShutdownError struct {
	Cause    error
	Progress []ShardDrain
}

func (err *ShutdownError) Error() string {
	done := 0
	var stuck []string
	for _, d := range err.Progress {
		if d.Done {
			done++
		} else {
			stuck = append(stuck, fmt.Sprintf("s%d queued=%d processed=%d", d.Shard, d.Queued, d.Processed))
		}
	}
	return fmt.Sprintf("engine: shutdown incomplete (%v): %d/%d shards drained; %s",
		err.Cause, done, len(err.Progress), strings.Join(stuck, ", "))
}

func (err *ShutdownError) Unwrap() error { return err.Cause }

// Close stops intake, drains every shard's queue, and waits for the
// shard goroutines to exit. After Close, Stats is exact and Handle calls
// return ErrClosed. Close is idempotent and safe against concurrent
// Handle calls (they observe ErrClosed).
func (e *Engine) Close() error { return e.CloseContext(context.Background()) }

// CloseContext is Close with a deadline: it stops intake, then waits for
// the shards to drain until ctx expires. On expiry it returns a
// *ShutdownError wrapping ctx.Err() with per-shard drain progress; the
// shards keep draining in the background, and CloseContext may be called
// again (with a fresh context) to keep waiting.
func (e *Engine) CloseContext(ctx context.Context) error {
	// Unblock backpressure dispatchers first: they select on closing
	// while holding mu's read side, and the write lock below cannot be
	// taken while one of them is parked against a full (possibly
	// stalled) shard queue.
	e.closeOnce.Do(func() { close(e.closing) })
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		if e.dog != nil {
			// Stop the watchdog before the drain: a shard slow to chew
			// through its final backlog is shutting down, not stalling,
			// and must not be benched mid-drain. Stop only waits for the
			// poll goroutine, which never blocks.
			e.dog.Stop()
		}
		for _, s := range e.shards {
			close(s.in)
		}
		go func() {
			e.wg.Wait()
			close(e.drained)
		}()
	}
	e.mu.Unlock()
	// Prefer "drained" when both are ready, so an already-expired
	// context still reports success if the drain in fact finished.
	select {
	case <-e.drained:
		return nil
	default:
	}
	select {
	case <-e.drained:
		return nil
	case <-ctx.Done():
		return &ShutdownError{Cause: ctx.Err(), Progress: e.DrainProgress()}
	}
}

// DrainProgress reports each shard's shutdown progress. It is meaningful
// at any time but primarily read after a CloseContext deadline expired.
func (e *Engine) DrainProgress() []ShardDrain {
	out := make([]ShardDrain, len(e.shards))
	for i, s := range e.shards {
		out[i] = ShardDrain{
			Shard:     i,
			Queued:    len(s.in),
			Processed: s.processed.Load(),
			Done:      s.exited.Load(),
		}
	}
	return out
}
